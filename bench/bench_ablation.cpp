// Ablations of the design choices DESIGN.md calls out:
//
//   A1 - lease lifetime sweep. Leases exist for fault tolerance (a failed
//        client must not wedge a key forever); the cost is that a lifetime
//        shorter than a session reintroduces staleness: the lease expires
//        mid-session, the key is deleted, a concurrent reader re-populates
//        it from a pre-commit snapshot, and the late SaR is dropped.
//        Expect: staleness 0% once the lifetime comfortably exceeds the
//        session duration, plus expiry-delete counts shrinking to zero.
//
//   A2 - the Section 3.3 deferred-delete optimization on/off. With the
//        optimization, readers hit the old version during the quarantine
//        (the re-arrangement window, Figure 4); without it, they back off.
//        Expect: same 0% staleness both ways, but higher hit rate and
//        fewer backoffs with the optimization.
//
//   A3 - back-off policy under an I-lease thundering herd: N readers miss
//        the same hot key while one recomputes. Exponential back-off with
//        jitter issues far fewer futile lookups than a tight fixed delay.
#include "bench_common.h"

#include "core/iq_client.h"
#include "net/remote_backend.h"
#include "util/worker_group.h"

using namespace iq;
using namespace iq::bench;

namespace {

void LeaseLifetimeSweep(BenchScale& scale) {
  sql::Database::Config db_cfg;
  db_cfg.read_delay = 100 * kNanosPerMicro;   // sessions take ~0.5-1ms
  db_cfg.write_delay = 200 * kNanosPerMicro;
  BenchUniverse universe(scale.small_graph, db_cfg, scale.seed);

  PrintHeader("A1: lease lifetime sweep (IQ refresh, high-write mix)");
  std::printf("%-14s %10s %14s %14s\n", "lifetime", "stale%", "expiry-dels",
              "actions/s");
  const Nanos lifetimes[] = {200 * kNanosPerMicro, kNanosPerMilli,
                             10 * kNanosPerMilli, 100 * kNanosPerMilli,
                             10 * kNanosPerSec};
  for (Nanos lifetime : lifetimes) {
    IQServer::Config server_cfg;
    server_cfg.lease_lifetime = lifetime;
    IQServer server(CacheStore::Config{}, server_cfg);
    auto cfg = MakeCasqlConfig(casql::Technique::kRefresh,
                               casql::Consistency::kIQ);
    auto result = universe.RunCellWithServer(server, cfg, bg::HighWriteMix(),
                                             32, scale.cell_duration);
    std::printf("%10.1fms %9.2f%% %14llu %14.0f\n",
                static_cast<double>(lifetime) / kNanosPerMilli,
                result.validation.StalePercent(),
                static_cast<unsigned long long>(server.Stats().expiry_deletes),
                result.Throughput());
    std::fflush(stdout);
  }
}

void DeferredDeleteAblation(BenchScale& scale) {
  sql::Database::Config db_cfg;
  db_cfg.read_delay = 50 * kNanosPerMicro;
  db_cfg.write_delay = 100 * kNanosPerMicro;
  BenchUniverse universe(scale.small_graph, db_cfg, scale.seed + 7);

  PrintHeader("A2: Section 3.3 deferred delete (IQ invalidate, high writes)");
  std::printf("%-14s %10s %12s %12s %14s\n", "mode", "stale%", "hit-rate",
              "backoffs", "actions/s");
  for (bool deferred : {true, false}) {
    IQServer::Config server_cfg;
    server_cfg.deferred_delete = deferred;
    IQServer server(CacheStore::Config{}, server_cfg);
    auto cfg = MakeCasqlConfig(casql::Technique::kInvalidate,
                               casql::Consistency::kIQ);
    auto result = universe.RunCellWithServer(server, cfg, bg::HighWriteMix(),
                                             32, scale.cell_duration,
                                             /*warm_cache=*/true);
    auto stats = server.store().Stats();
    double hit_rate =
        stats.gets == 0
            ? 0
            : 100.0 * static_cast<double>(stats.get_hits) /
                  static_cast<double>(stats.gets);
    std::printf("%-14s %9.2f%% %11.1f%% %12llu %14.0f\n",
                deferred ? "deferred" : "eager",
                result.validation.StalePercent(), hit_rate,
                static_cast<unsigned long long>(server.Stats().backoffs),
                result.Throughput());
    std::fflush(stdout);
  }
}

void BackoffAblation(BenchScale& scale) {
  PrintHeader("A3: thundering herd on one missing hot key (32 readers)");
  std::printf("%-14s %14s %14s\n", "policy", "kvs lookups", "elapsed(ms)");
  for (bool exponential : {true, false}) {
    IQServer server;
    IQClient::Config ccfg;
    ccfg.exponential_backoff = exponential;
    ccfg.backoff_base = 20 * kNanosPerMicro;
    ccfg.backoff_cap = 5 * kNanosPerMilli;
    ccfg.seed = scale.seed;
    IQClient client(server, ccfg);

    Nanos t0 = server.clock().Now();
    WorkerGroup group;
    group.Start(32, [&](int id, const std::atomic<bool>&) {
      auto session = client.NewSession();
      auto r = session->Get("hot", 100000);
      if (r.status == ClientGetResult::Status::kMissRecompute) {
        // The one lease holder "recomputes" for a while (models an
        // expensive RDBMS query), then installs.
        SleepFor(server.clock(), 5 * kNanosPerMilli);
        session->Put("hot", "value");
      }
      (void)id;
    });
    group.StopAndJoin();
    Nanos elapsed = server.clock().Now() - t0;
    auto stats = server.store().Stats();
    std::printf("%-14s %14llu %14.2f\n",
                exponential ? "exponential" : "fixed",
                static_cast<unsigned long long>(stats.gets),
                static_cast<double>(elapsed) / kNanosPerMilli);
    std::fflush(stdout);
  }
  std::printf(
      "\nOne session recomputes; everyone else converges on its value\n"
      "(Facebook's thundering-herd protection via the I lease).\n");
}

void EvictionAblation(BenchScale& scale) {
  PrintHeader("A4: LRU vs CAMP eviction under heterogeneous recompute costs");
  std::printf("%-8s %14s %14s %16s\n", "policy", "hit-rate", "evictions",
              "recompute cost");
  // Two key classes: frequently-read cheap values and COLD but very
  // expensive ones (multi-join query results touched occasionally). LRU is
  // cost-blind: it keeps recently-seen cheap items and re-pays the dear
  // recompute every time; CAMP holds on to the dear items.
  constexpr int kCheapKeys = 4000;
  constexpr int kDearKeys = 800;
  constexpr std::uint64_t kCheapCost = 1;
  constexpr std::uint64_t kDearCost = 500;
  for (auto policy : {EvictionPolicy::kLru, EvictionPolicy::kCamp}) {
    CacheStore::Config cfg;
    cfg.shard_count = 4;
    cfg.memory_budget_bytes = 60'000;  // ~600 items of ~100B
    cfg.eviction = policy;
    CacheStore store(cfg);
    Rng rng(scale.seed);
    ZipfianGenerator cheap_zipf(kCheapKeys, 0.73);
    std::uint64_t recompute_cost = 0;
    std::string value(40, 'v');
    for (int i = 0; i < 400'000; ++i) {
      bool dear = rng.NextBool(0.04);
      std::string key =
          dear ? "dear:" + std::to_string(rng.NextUint64(kDearKeys))
               : "cheap:" + std::to_string(cheap_zipf.Next(rng));
      if (!store.Get(key)) {
        std::uint64_t cost = dear ? kDearCost : kCheapCost;
        recompute_cost += cost;  // "query the RDBMS"
        store.Set(key, value, 0, 0, cost);
      }
    }
    auto stats = store.Stats();
    double hit_rate = 100.0 * static_cast<double>(stats.get_hits) /
                      static_cast<double>(stats.gets);
    std::printf("%-8s %13.1f%% %14llu %16llu\n",
                policy == EvictionPolicy::kLru ? "LRU" : "CAMP", hit_rate,
                static_cast<unsigned long long>(stats.evictions),
                static_cast<unsigned long long>(recompute_cost));
    std::fflush(stdout);
  }
  std::printf(
      "\nCAMP may take slightly more misses but pays far less total\n"
      "recomputation cost by protecting the expensive items.\n");
}

void TransportAblation(BenchScale& scale) {
  PrintHeader("A5: transport - in-process vs wire protocol (refresh cycle)");
  std::printf("%-26s %16s\n", "backend", "sessions/sec");
  // One full refresh write cycle per session: QaRead + SaR + commit.
  auto run = [&](KvsBackend& backend) {
    IQClient client(backend);
    backend.Set("K", "0");
    Nanos t0 = backend.clock().Now();
    constexpr int kSessions = 20000;
    for (int i = 0; i < kSessions; ++i) {
      auto session = client.NewSession();
      std::optional<std::string> old;
      if (session->QaRead("K", old) == ClientQResult::kGranted && old) {
        session->SaR("K", std::to_string(std::stoll(*old) + 1));
      }
      session->Commit();
    }
    Nanos elapsed = backend.clock().Now() - t0;
    return static_cast<double>(kSessions) /
           (static_cast<double>(elapsed) / kNanosPerSec);
  };
  {
    IQServer server;
    std::printf("%-26s %16.0f\n", "in-process", run(server));
  }
  {
    IQServer server;
    net::LoopbackChannel channel(server);
    net::RemoteBackend backend(channel);
    std::printf("%-26s %16.0f\n", "wire (loopback)", run(backend));
  }
  {
    IQServer server;
    net::LoopbackChannel channel(server, /*one_way_latency=*/50 * kNanosPerMicro);
    net::RemoteBackend backend(channel);
    std::printf("%-26s %16.0f\n", "wire (100us RTT)", run(backend));
  }
  (void)scale;
  std::printf(
      "\nThe protocol codec costs ~2-4x; network latency dominates real\n"
      "deployments (which is why the paper's absolute SoAR is ~30k/s).\n");
}

}  // namespace

int main() {
  BenchScale scale = BenchScale::FromEnv();
  LeaseLifetimeSweep(scale);
  DeferredDeleteAblation(scale);
  BackoffAblation(scale);
  EvictionAblation(scale);
  TransportAblation(scale);
  return 0;
}
