// Shared support for the table/figure benchmark binaries.
//
// Scale knobs (environment variables, all optional):
//   IQ_BENCH_MEMBERS       members in the small graph        (default 1000)
//   IQ_BENCH_MEMBERS_LARGE members in the large graph        (default 4000)
//   IQ_BENCH_SECONDS       measurement window per cell, sec  (default 1.0)
//   IQ_BENCH_SEED          RNG seed                          (default 42)
//
// The paper ran 10K/100K-member graphs on a multi-host testbed; this
// harness runs everything in-process on whatever machine it gets, so the
// defaults are scaled down. The *shape* of each table (who wins, where
// staleness appears, what IQ drives to zero) is the reproduction target,
// not the absolute numbers. See EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/iq_server.h"
#include "bg/workload.h"
#include "casql/casql.h"

namespace iq::bench {

inline std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

struct BenchScale {
  bg::GraphConfig small_graph;
  bg::GraphConfig large_graph;
  Nanos cell_duration;
  std::uint64_t seed;

  static BenchScale FromEnv() {
    BenchScale s;
    s.small_graph.members = EnvInt("IQ_BENCH_MEMBERS", 1000);
    s.small_graph.friends_per_member = 10;
    s.small_graph.resources_per_member = 2;
    s.small_graph.comments_per_resource = 2;
    s.large_graph = s.small_graph;
    s.large_graph.members = EnvInt("IQ_BENCH_MEMBERS_LARGE", 4000);
    s.cell_duration =
        static_cast<Nanos>(EnvDouble("IQ_BENCH_SECONDS", 1.0) * kNanosPerSec);
    s.seed = static_cast<std::uint64_t>(EnvInt("IQ_BENCH_SEED", 42));
    return s;
  }
};

/// One loaded CASQL universe: database + graph + pools, reusable across
/// measurement cells (each cell re-snapshots ground truth and gets a fresh
/// cache server).
class BenchUniverse {
 public:
  BenchUniverse(bg::GraphConfig graph, sql::Database::Config db_config,
                std::uint64_t seed)
      : graph_(graph), db_(db_config), seed_(seed) {
    bg::CreateBgTables(db_);
    bg::LoadGraph(db_, graph_);
    pools_.SeedFromGraph(graph_);
  }

  /// Run one measurement cell: fresh IQ-Server (cold or warmed cache),
  /// validator snapshotted from the live database.
  bg::WorkloadResult RunCell(const casql::CasqlConfig& casql_config,
                             const bg::Mix& mix, int threads,
                             Nanos duration, bool warm_cache = false,
                             bool validate = true,
                             IQServer::Config server_config = {}) {
    IQServer server(CacheStore::Config{}, server_config);
    return RunCellWithServer(server, casql_config, mix, threads, duration,
                             warm_cache, validate);
  }

  /// Variant taking a caller-owned server so its stats can be inspected.
  bg::WorkloadResult RunCellWithServer(IQServer& server,
                                       const casql::CasqlConfig& casql_config,
                                       const bg::Mix& mix, int threads,
                                       Nanos duration, bool warm_cache = false,
                                       bool validate = true) {
    casql::CasqlSystem system(db_, server, casql_config);
    if (warm_cache) bg::WarmCache(system, graph_);
    bg::WorkloadConfig wl;
    wl.mix = mix;
    wl.threads = threads;
    wl.duration = duration;
    wl.seed = seed_++;
    wl.validate = validate;
    wl.seed_validator_from_db = true;
    return bg::RunWorkload(system, pools_, graph_, wl);
  }

  const bg::GraphConfig& graph() const { return graph_; }
  sql::Database& db() { return db_; }
  bg::ActionPools& pools() { return pools_; }

 private:
  bg::GraphConfig graph_;
  sql::Database db_;
  bg::ActionPools pools_;
  std::uint64_t seed_;
};

inline casql::CasqlConfig MakeCasqlConfig(casql::Technique t,
                                          casql::Consistency c,
                                          casql::LeasePlacement p =
                                              casql::LeasePlacement::kInsideTxn) {
  casql::CasqlConfig cfg;
  cfg.technique = t;
  cfg.consistency = c;
  cfg.placement = p;
  cfg.client.backoff_base = 20 * kNanosPerMicro;
  cfg.client.backoff_cap = 2 * kNanosPerMilli;
  return cfg;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  for (std::size_t i = 0; i < title.size(); ++i) std::printf("=");
  std::printf("\n");
}

}  // namespace iq::bench
