// Figures 2, 3, 6, 7, 8: the paper's race-condition schedules, executed
// deterministically. Each row runs the exact interleaving the figure
// depicts with (a) the vulnerable client and (b) the IQ framework, and
// prints the resulting RDBMS vs KVS values.
#include <cstdio>

#include "sim/scenarios.h"

using namespace iq::sim;

namespace {

void Report(const char* figure, const char* description,
            ScenarioResult (*run)(bool)) {
  ScenarioResult base = run(false);
  ScenarioResult with_iq = run(true);
  std::printf("%-8s %-46s\n", figure, description);
  std::printf("         vulnerable: rdbms=%-6s kvs=%-6s -> %s\n",
              base.rdbms_value.c_str(), base.kvs_value.c_str(),
              !base.schedule_ok      ? "SCHEDULE FAILED"
              : base.Consistent()    ? "consistent (unexpected!)"
                                     : "STALE (as the paper shows)");
  std::printf("         IQ leases:  rdbms=%-6s kvs=%-6s -> %s\n\n",
              with_iq.rdbms_value.c_str(), with_iq.kvs_value.c_str(),
              !with_iq.schedule_ok   ? "SCHEDULE FAILED"
              : with_iq.Consistent() ? "consistent (race prevented)"
                                     : "STALE (bug!)");
}

}  // namespace

int main() {
  std::printf("Race-condition figures: vulnerable client vs IQ framework\n");
  std::printf("==========================================================\n\n");
  Report("Fig. 2", "cas cannot order two R-M-W write sessions", RunFigure2);
  Report("Fig. 3", "snapshot isolation + trigger invalidate", RunFigure3);
  Report("Fig. 6", "dirty read when a refresh session aborts", RunFigure6);
  Report("Fig. 7", "snapshot isolation + delta: append lost", RunFigure7);
  Report("Fig. 8", "post-commit delta: append applied twice", RunFigure8);
  return 0;
}
