// bench_kvs: read-hit scaling of the CacheStore hot path, optimistic
// (mutex-free seqlock mirrors, DESIGN.md §4.6) vs locked (per-shard mutex),
// plus single-thread hit latency for both — the numbers behind the claim
// that lease-free read hits no longer serialize on shard mutexes.
//
// All threads share one hot keyspace (the worst case for the mutex: every
// hit funnels through the shard locks; the best case for the seqlock:
// readers share nothing writable but two relaxed touch-buffer slots).
//
// Environment:
//   IQ_BENCH_SECONDS   measurement window per cell in seconds (default 1.0)
//   IQ_BENCH_KVS_OUT   JSON artifact path (default BENCH_kvs.json)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/iq_server.h"
#include "kvs/kvs.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kKeys = 256;
constexpr int kValueBytes = 64;

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

iq::CacheStore::Config StoreConfig(bool optimistic) {
  iq::CacheStore::Config cfg;
  cfg.shard_count = 16;
  cfg.memory_budget_bytes = 0;
  if (!optimistic) cfg.optimistic_value_cap = 0;
  return cfg;
}

std::vector<std::string> MakeKeys() {
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (int i = 0; i < kKeys; ++i) keys.push_back("hot" + std::to_string(i));
  return keys;
}

void Fill(iq::CacheStore& store, const std::vector<std::string>& keys) {
  const std::string value(kValueBytes, 'v');
  for (const auto& k : keys) store.Set(k, value);
}

/// Aggregate Get/sec across `threads` readers over the window.
double RunReadCell(bool optimistic, int threads, double seconds) {
  iq::CacheStore store(StoreConfig(optimistic));
  const auto keys = MakeKeys();
  Fill(store, keys);
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t ops = 0;
      std::size_t i = static_cast<std::size_t>(t) * 37;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int b = 0; b < 64; ++b) {
          auto item = store.Get(keys[i++ % kKeys]);
          if (item) ++ops;
        }
      }
      total.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  return elapsed > 0 ? static_cast<double>(total.load()) / elapsed : 0;
}

/// Single-thread ns per hit through CacheStore::Get.
double RunLatencyCell(bool optimistic, double seconds) {
  iq::CacheStore store(StoreConfig(optimistic));
  const auto keys = MakeKeys();
  Fill(store, keys);
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  std::uint64_t ops = 0;
  const auto start = Clock::now();
  std::size_t i = 0;
  while (Clock::now() < deadline) {
    for (int b = 0; b < 256; ++b) {
      auto item = store.Get(keys[i++ % kKeys]);
      if (item) ++ops;
    }
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  return ops > 0 ? elapsed * 1e9 / static_cast<double>(ops) : 0;
}

/// Single-thread ns per lease-free IQget hit (the paper's Table 8 path).
double RunIQgetLatencyCell(bool optimistic, double seconds) {
  iq::IQServer server(StoreConfig(optimistic), iq::IQServer::Config{});
  const auto keys = MakeKeys();
  Fill(server.store(), keys);
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  std::uint64_t ops = 0;
  const auto start = Clock::now();
  std::size_t i = 0;
  while (Clock::now() < deadline) {
    for (int b = 0; b < 256; ++b) {
      iq::GetReply r = server.IQget(keys[i++ % kKeys], 0);
      if (r.status == iq::GetReply::Status::kHit) ++ops;
    }
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  return ops > 0 ? elapsed * 1e9 / static_cast<double>(ops) : 0;
}

}  // namespace

int main() {
  const double seconds = EnvDouble("IQ_BENCH_SECONDS", 1.0);
  const unsigned hw = std::thread::hardware_concurrency();
  const int thread_counts[] = {1, 2, 4, 8};

  std::printf("bench_kvs: shared-keyspace read hits, %d keys x %d-byte "
              "values, %.1fs per cell, %u hardware threads\n\n",
              kKeys, kValueBytes, seconds, hw);

  struct Cell {
    int threads;
    double opt_ops;
    double locked_ops;
  };
  std::vector<Cell> cells;
  std::printf("  %-8s %18s %18s %10s\n", "threads", "optimistic ops/s",
              "locked ops/s", "ratio");
  for (int n : thread_counts) {
    Cell c;
    c.threads = n;
    c.opt_ops = RunReadCell(/*optimistic=*/true, n, seconds);
    c.locked_ops = RunReadCell(/*optimistic=*/false, n, seconds);
    cells.push_back(c);
    std::printf("  %-8d %18.0f %18.0f %9.2fx\n", n, c.opt_ops, c.locked_ops,
                c.locked_ops > 0 ? c.opt_ops / c.locked_ops : 0);
  }

  const double lat_opt = RunLatencyCell(true, seconds);
  const double lat_locked = RunLatencyCell(false, seconds);
  const double iq_lat_opt = RunIQgetLatencyCell(true, seconds);
  const double iq_lat_locked = RunIQgetLatencyCell(false, seconds);
  std::printf("\n  single-thread Get hit:   optimistic %.0f ns, locked %.0f ns\n",
              lat_opt, lat_locked);
  std::printf("  single-thread IQget hit: optimistic %.0f ns, locked %.0f ns\n",
              iq_lat_opt, iq_lat_locked);

  const double scaling_8_vs_1 =
      cells[0].opt_ops > 0 ? cells[3].opt_ops / cells[0].opt_ops : 0;
  const char* note =
      hw <= 1 ? "single-CPU host: every reader thread timeshares one core, so "
                "threads-vs-1 ratios attribute scheduler overhead, not "
                "parallel scaling; the meaningful single-host signals are the "
                "optimistic-vs-locked ratios and the single-thread latencies. "
                "Rerun on a multicore host for the scaling check."
              : "";
  if (note[0] != '\0') std::printf("\n  note: %s\n", note);

  const char* out_path = std::getenv("IQ_BENCH_KVS_OUT");
  if (out_path == nullptr) out_path = "BENCH_kvs.json";
  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_kvs: cannot write %s\n", out_path);
    return 1;
  }
  // `mode`/`workers` mirror BENCH_tpc.json so the artifacts compare
  // like-for-like: bench_kvs drives the in-process store (the shared-mode
  // execution model — any thread touches any shard), with `workers` = the
  // largest reader count exercised.
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_kvs\",\n"
               "  \"mode\": \"shared\",\n"
               "  \"workers\": %d,\n"
               "  \"keys\": %d,\n"
               "  \"value_bytes\": %d,\n"
               "  \"window_seconds\": %.2f,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"read_hit_cells\": [\n",
               thread_counts[3], kKeys, kValueBytes, seconds, hw);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::fprintf(f,
                 "    {\"threads\": %d, \"optimistic_ops_per_sec\": %.0f, "
                 "\"locked_ops_per_sec\": %.0f}%s\n",
                 cells[i].threads, cells[i].opt_ops, cells[i].locked_ops,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"optimistic_scaling_8_threads_vs_1\": %.2f,\n"
               "  \"single_thread_get_hit_ns\": "
               "{\"optimistic\": %.0f, \"locked\": %.0f},\n"
               "  \"single_thread_iqget_hit_ns\": "
               "{\"optimistic\": %.0f, \"locked\": %.0f},\n"
               "  \"note\": \"%s\"\n"
               "}\n",
               scaling_8_vs_1, lat_opt, lat_locked, iq_lat_opt, iq_lat_locked,
               note);
  std::fclose(f);
  std::printf("  wrote %s\n", out_path);
  return 0;
}
