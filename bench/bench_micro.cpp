// Microbenchmarks (google-benchmark): raw costs of the substrate
// operations - KVS commands, lease acquisition/release, RDBMS transactions,
// SQL parse/execute - to back up the Table 8 claim that the lease machinery
// adds negligible overhead to the cache hot path.
#include "core/iq_server.h"
#include <benchmark/benchmark.h>

#include "core/iq_client.h"
#include "rdbms/sql.h"

namespace iq {
namespace {

// ---- KVS ---------------------------------------------------------------------

void BM_KvsSet(benchmark::State& state) {
  CacheStore store;
  std::string value(128, 'x');
  std::uint64_t i = 0;
  for (auto _ : state) {
    store.Set("key" + std::to_string(i++ % 1024), value);
  }
}
BENCHMARK(BM_KvsSet);

void BM_KvsGetHit(benchmark::State& state) {
  CacheStore store;
  for (int i = 0; i < 1024; ++i) store.Set("key" + std::to_string(i), "value");
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Get("key" + std::to_string(i++ % 1024)));
  }
}
BENCHMARK(BM_KvsGetHit);

void BM_KvsGetHitLocked(benchmark::State& state) {
  // A/B baseline: same hit path with optimistic reads disabled, so every
  // read takes the shard mutex.
  CacheStore store({.shard_count = 16,
                    .memory_budget_bytes = 0,
                    .optimistic_value_cap = 0});
  for (int i = 0; i < 1024; ++i) store.Set("key" + std::to_string(i), "value");
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Get("key" + std::to_string(i++ % 1024)));
  }
}
BENCHMARK(BM_KvsGetHitLocked);

// Shared-keyspace read-hit scaling: every thread reads the SAME hot keys,
// the worst case for the mutex (all hits funnel through 16 shard locks) and
// the best case for the seqlock mirror (readers never write shared state
// except two relaxed touch-buffer ops).
void BM_KvsGetHitThreaded(benchmark::State& state) {
  static CacheStore* store = nullptr;
  if (state.thread_index() == 0) {
    store = new CacheStore({.shard_count = 16, .memory_budget_bytes = 0});
    for (int i = 0; i < 256; ++i) store->Set("hot" + std::to_string(i), "value");
  }
  std::uint64_t i = state.thread_index() * 37;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->Get("hot" + std::to_string(i++ % 256)));
  }
  if (state.thread_index() == 0) {
    delete store;
    store = nullptr;
  }
}
BENCHMARK(BM_KvsGetHitThreaded)->Threads(8)->UseRealTime();

void BM_KvsGetHitThreadedLocked(benchmark::State& state) {
  static CacheStore* store = nullptr;
  if (state.thread_index() == 0) {
    store = new CacheStore({.shard_count = 16,
                            .memory_budget_bytes = 0,
                            .optimistic_value_cap = 0});
    for (int i = 0; i < 256; ++i) store->Set("hot" + std::to_string(i), "value");
  }
  std::uint64_t i = state.thread_index() * 37;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->Get("hot" + std::to_string(i++ % 256)));
  }
  if (state.thread_index() == 0) {
    delete store;
    store = nullptr;
  }
}
BENCHMARK(BM_KvsGetHitThreadedLocked)->Threads(8)->UseRealTime();

void BM_KvsGetMiss(benchmark::State& state) {
  CacheStore store;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Get("absent"));
  }
}
BENCHMARK(BM_KvsGetMiss);

void BM_KvsCas(benchmark::State& state) {
  CacheStore store;
  store.Set("key", "0");
  for (auto _ : state) {
    auto item = store.Get("key");
    store.Cas("key", item->value, item->cas);
  }
}
BENCHMARK(BM_KvsCas);

void BM_KvsIncr(benchmark::State& state) {
  CacheStore store;
  store.Set("n", "0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Incr("n", 1));
  }
}
BENCHMARK(BM_KvsIncr);

// ---- IQ lease path -------------------------------------------------------------

void BM_IQgetHit(benchmark::State& state) {
  // The Table 8 hot path: a plain hit through the lease-checking read.
  IQServer server;
  server.store().Set("key", "value");
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.IQget("key", 1));
  }
}
BENCHMARK(BM_IQgetHit);

void BM_ILeaseGrantInstall(benchmark::State& state) {
  IQServer server;
  for (auto _ : state) {
    GetReply r = server.IQget("key", 1);
    server.IQset("key", "value", r.token);
    state.PauseTiming();
    server.store().Delete("key");
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ILeaseGrantInstall);

// ---- contended IQ lease paths ------------------------------------------------
// These run with ->Threads(): one shared server, per-thread keyspaces, so
// the only cross-thread sharing is whatever the server itself imposes. The
// original implementation serialized every lease grant/backoff/commit on a
// process-global stats mutex; with per-shard counters the threads should
// scale with the shard count.

void BM_IQgetHitThreaded(benchmark::State& state) {
  static IQServer* server = nullptr;
  if (state.thread_index() == 0) {
    server = new IQServer;
    for (int t = 0; t < state.threads(); ++t) {
      for (int i = 0; i < 256; ++i) {
        server->store().Set("t" + std::to_string(t) + "-" + std::to_string(i),
                            "value");
      }
    }
  }
  std::string prefix = "t" + std::to_string(state.thread_index()) + "-";
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        server->IQget(prefix + std::to_string(i++ % 256), 1));
  }
  if (state.thread_index() == 0) {
    delete server;
    server = nullptr;
  }
}
BENCHMARK(BM_IQgetHitThreaded)->Threads(8)->UseRealTime();

void BM_ILeaseGrantInstallThreaded(benchmark::State& state) {
  // Full I-lease lifecycle per iteration: miss -> grant -> install ->
  // delete. Every grant bumps a server counter, so this was the worst case
  // for the global stats mutex.
  static IQServer* server = nullptr;
  if (state.thread_index() == 0) server = new IQServer;
  std::string prefix = "g" + std::to_string(state.thread_index()) + "-";
  std::uint64_t i = 0;
  for (auto _ : state) {
    std::string key = prefix + std::to_string(i++ % 256);
    GetReply r = server->IQget(key, 1);
    if (r.status == GetReply::Status::kMissGrantedI) {
      server->IQset(key, "value", r.token);
    }
    server->store().Delete(key);
  }
  if (state.thread_index() == 0) {
    delete server;
    server = nullptr;
  }
}
BENCHMARK(BM_ILeaseGrantInstallThreaded)->Threads(8)->UseRealTime();

void BM_QaReadSaRThreaded(benchmark::State& state) {
  static IQServer* server = nullptr;
  if (state.thread_index() == 0) {
    server = new IQServer;
    for (int t = 0; t < state.threads(); ++t) {
      server->store().Set("q" + std::to_string(t), "value");
    }
  }
  std::string key = "q" + std::to_string(state.thread_index());
  SessionId session = static_cast<SessionId>(state.thread_index()) + 1;
  for (auto _ : state) {
    QaReadReply q = server->QaRead(key, session);
    server->SaR(key, "value", q.token);
  }
  if (state.thread_index() == 0) {
    delete server;
    server = nullptr;
  }
}
BENCHMARK(BM_QaReadSaRThreaded)->Threads(8)->UseRealTime();

void BM_QaReadSaR(benchmark::State& state) {
  IQServer server;
  server.store().Set("key", "value");
  for (auto _ : state) {
    QaReadReply q = server.QaRead("key", 1);
    server.SaR("key", "value", q.token);
  }
}
BENCHMARK(BM_QaReadSaR);

void BM_QuarantineCommit(benchmark::State& state) {
  IQServer server;
  for (auto _ : state) {
    state.PauseTiming();
    server.store().Set("key", "value");
    state.ResumeTiming();
    SessionId tid = server.GenID();
    server.QaReg(tid, "key");
    server.Commit(tid);
  }
}
BENCHMARK(BM_QuarantineCommit);

void BM_DeltaCommit(benchmark::State& state) {
  IQServer server;
  server.store().Set("n", "0");
  for (auto _ : state) {
    SessionId tid = server.GenID();
    server.IQDelta(tid, "n", DeltaOp{DeltaOp::Kind::kIncr, {}, 1});
    server.Commit(tid);
  }
}
BENCHMARK(BM_DeltaCommit);

// ---- RDBMS ---------------------------------------------------------------------

class RdbmsFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (db) return;
    db = std::make_unique<sql::Database>();
    db->CreateTable(sql::SchemaBuilder("T")
                        .AddInt("id")
                        .AddInt("n")
                        .PrimaryKey({"id"})
                        .Build());
    auto txn = db->Begin();
    for (int i = 0; i < 1024; ++i) txn->Insert("T", {sql::V(i), sql::V(0)});
    txn->Commit();
  }
  std::unique_ptr<sql::Database> db;
};

BENCHMARK_F(RdbmsFixture, PointRead)(benchmark::State& state) {
  std::int64_t i = 0;
  for (auto _ : state) {
    auto txn = db->Begin();
    benchmark::DoNotOptimize(txn->SelectByPk("T", {sql::V(i++ % 1024)}));
    txn->Rollback();
  }
}

BENCHMARK_F(RdbmsFixture, UpdateCommit)(benchmark::State& state) {
  std::int64_t i = 0;
  for (auto _ : state) {
    auto txn = db->Begin();
    txn->UpdateByPk("T", {sql::V(i++ % 1024)}, [](sql::Row& row) {
      row[1] = sql::V(*sql::AsInt(row[1]) + 1);
    });
    txn->Commit();
  }
}

BENCHMARK_F(RdbmsFixture, SqlPrepare)(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sql::Prepare("SELECT n FROM T WHERE id = ? AND n >= 0"));
  }
}

BENCHMARK_F(RdbmsFixture, SqlExecutePrepared)(benchmark::State& state) {
  auto stmt = sql::Prepare("SELECT n FROM T WHERE id = ?");
  std::int64_t i = 0;
  for (auto _ : state) {
    auto txn = db->Begin();
    benchmark::DoNotOptimize(sql::Execute(*txn, stmt, {sql::V(i++ % 1024)}));
    txn->Rollback();
  }
}

BENCHMARK_F(RdbmsFixture, SqlUpdateArithmetic)(benchmark::State& state) {
  auto stmt = sql::Prepare("UPDATE T SET n = n + 1 WHERE id = ?");
  std::int64_t i = 0;
  for (auto _ : state) {
    auto txn = db->Begin();
    sql::Execute(*txn, stmt, {sql::V(i++ % 1024)});
    txn->Commit();
  }
}

}  // namespace
}  // namespace iq

BENCHMARK_MAIN();
