// bench_near: what a client-side near cache with validity leases buys on
// the read path (DESIGN.md §4.10).
//
// Three cells over loopback TCP, identical read-heavy workload, differing
// only in the server-granted validity interval:
//   - off       near_validity = 0 (every read is a wire round trip)
//   - ttl 1ms   short grants: frequent self-expiry, frequent re-fetch
//   - ttl 10ms  long grants: most reads served from the client process
//
// Each cell runs kClientThreads threads, one TCP connection + IQClient +
// session each, over a warmed hot keyspace. Per-read latency lands in a
// log2 histogram split hit-vs-near-hit, so the report shows the shape of
// the win: near hits cost a mutex + map lookup (hundreds of ns), wire hits
// cost two syscalls + epoll (tens of µs).
//
// Attribution note: client and server share this host. On a 1-CPU runner
// the req/s delta UNDERstates the win — every wire round trip burns both
// client cycles (syscalls) and server cycles (epoll/parse/dispatch) from
// the same budget, so a near hit refunds both sides at once; on a real
// deployment the refunded server cycles belong to other clients. Treat the
// near-hit RTT histogram as the robust signal, not absolute req/s.
//
// Output: human table on stdout and BENCH_near.json (override with
// IQ_BENCH_NEAR_OUT). Env knobs: IQ_BENCH_SECONDS (window, default 1.0).
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/iq_client.h"
#include "core/iq_server.h"
#include "core/near_cache.h"
#include "net/remote_backend.h"
#include "net/tcp_channel.h"
#include "net/tcp_server.h"

using namespace iq;

namespace {

constexpr int kClientThreads = 4;
// Small enough that a thread revisits a key well inside a 1ms grant once
// near hits start (at wire speed a revisit costs kKeys round trips), so
// the 1ms cell sits between "always lapsed" and "always fresh" instead of
// degenerating to one of them.
constexpr int kKeys = 8;
constexpr std::size_t kValueBytes = 100;
constexpr int kBuckets = 32;  // bucket i counts latencies in [2^i, 2^(i+1)) ns

struct Histogram {
  std::uint64_t bucket[kBuckets] = {};
  std::uint64_t count = 0;

  void Record(Nanos ns) {
    if (ns < 1) ns = 1;
    int b = 0;
    while ((Nanos{1} << (b + 1)) <= ns && b + 1 < kBuckets) ++b;
    ++bucket[b];
    ++count;
  }
  void Merge(const Histogram& o) {
    for (int i = 0; i < kBuckets; ++i) bucket[i] += o.bucket[i];
    count += o.count;
  }
  /// Upper bound (ns) of the bucket holding the q-th quantile sample.
  Nanos Quantile(double q) const {
    if (count == 0) return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += bucket[i];
      if (seen > rank) return Nanos{1} << (i + 1);
    }
    return Nanos{1} << kBuckets;
  }
};

struct CellResult {
  long long ttl_ms = 0;
  double rps = 0;
  std::uint64_t reads = 0;
  std::uint64_t near_hits = 0;
  std::uint64_t wire_requests = 0;  // server-side request count for the cell
  Histogram wire_hist;              // reads answered over the wire
  Histogram near_hist;              // reads served from the near cache
};

/// One measurement cell: fresh server + TCP front end with the given
/// validity, warmed keyspace, read storm from kClientThreads clients.
CellResult RunCell(long long ttl_ms, Nanos window) {
  CellResult cell;
  cell.ttl_ms = ttl_ms;

  IQServer::Config scfg;
  scfg.near_validity = ttl_ms * kNanosPerMilli;
  IQServer server(CacheStore::Config{}, scfg);
  const std::string value(kValueBytes, 'v');
  for (int k = 0; k < kKeys; ++k) {
    server.store().Set("n:" + std::to_string(k), value);
  }

  net::TcpServer::Config tcfg;
  tcfg.workers = 2;
  net::TcpServer tcp(server, tcfg);
  std::string error;
  if (!tcp.Start(&error)) {
    std::fprintf(stderr, "bench_near: %s\n", error.c_str());
    std::exit(1);
  }

  const Clock& clock = SteadyClock::Instance();
  Nanos deadline = clock.Now() + window;
  std::mutex merge_mu;
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> near_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&, t] {
      std::string err;
      auto channel = net::TcpChannel::Connect("127.0.0.1", tcp.port(), &err);
      if (!channel) {
        std::fprintf(stderr, "bench_near: %s\n", err.c_str());
        std::exit(1);
      }
      net::RemoteBackend remote(*channel);
      IQClient::Config ccfg;
      ccfg.near_capacity = ttl_ms > 0 ? kKeys : 0;
      ccfg.seed = 42 + static_cast<std::uint64_t>(t);
      IQClient client(remote, ccfg);
      auto session = client.NewSession();

      Histogram wire, near;
      std::uint64_t n = static_cast<std::uint64_t>(t) * 7;  // decorrelate
      std::uint64_t local_reads = 0, local_near = 0;
      while (clock.Now() < deadline) {
        std::string key = "n:" + std::to_string(n++ % kKeys);
        Nanos t0 = clock.Now();
        ClientGetResult r = session->Get(key, /*max_retries=*/2);
        Nanos dt = clock.Now() - t0;
        ++local_reads;
        if (r.status == ClientGetResult::Status::kHit) {
          (r.near_hit ? near : wire).Record(dt);
          if (r.near_hit) ++local_near;
        } else if (r.status == ClientGetResult::Status::kMissRecompute) {
          session->Put(key, value);  // re-warm (evicted or invalidated)
        }
      }
      session->Abort();
      reads.fetch_add(local_reads, std::memory_order_relaxed);
      near_hits.fetch_add(local_near, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(merge_mu);
      cell.wire_hist.Merge(wire);
      cell.near_hist.Merge(near);
    });
  }
  for (auto& th : threads) th.join();
  cell.wire_requests = tcp.Stats().requests;
  tcp.Stop();

  cell.reads = reads.load();
  cell.near_hits = near_hits.load();
  cell.rps = static_cast<double>(cell.reads) /
             (static_cast<double>(window) / kNanosPerSec);
  return cell;
}

void PrintHist(const char* label, const Histogram& h) {
  if (h.count == 0) {
    std::printf("    %-10s (no samples)\n", label);
    return;
  }
  std::printf("    %-10s p50 <= %8lld ns   p99 <= %8lld ns   (%llu samples)\n",
              label, static_cast<long long>(h.Quantile(0.50)),
              static_cast<long long>(h.Quantile(0.99)),
              static_cast<unsigned long long>(h.count));
}

void JsonHist(FILE* f, const char* name, const Histogram& h, bool last) {
  std::fprintf(f, "      \"%s\": {\"samples\": %llu, \"p50_ns\": %lld, "
               "\"p99_ns\": %lld, \"log2_buckets\": [",
               name, static_cast<unsigned long long>(h.count),
               static_cast<long long>(h.Quantile(0.50)),
               static_cast<long long>(h.Quantile(0.99)));
  int top = kBuckets;
  while (top > 1 && h.bucket[top - 1] == 0) --top;
  for (int i = 0; i < top; ++i) {
    std::fprintf(f, "%s%llu", i ? ", " : "",
                 static_cast<unsigned long long>(h.bucket[i]));
  }
  std::fprintf(f, "]}%s\n", last ? "" : ",");
}

}  // namespace

int main() {
  Nanos window = static_cast<Nanos>(
      bench::EnvDouble("IQ_BENCH_SECONDS", 1.0) * kNanosPerSec);

  const long long ttls_ms[] = {0, 1, 10};
  std::vector<CellResult> cells;
  std::printf(
      "bench_near: loopback TCP reads, %d hot keys, %zu-byte values, "
      "%d client threads\n"
      "  (client+server share this host: wire round trips burn both sides' "
      "cycles,\n   so req/s understates the win — see the RTT histograms)\n\n",
      kKeys, kValueBytes, kClientThreads);
  for (long long ttl : ttls_ms) {
    CellResult cell = RunCell(ttl, window);
    double ratio = cell.reads > 0 ? 100.0 * static_cast<double>(cell.near_hits) /
                                        static_cast<double>(cell.reads)
                                  : 0;
    std::printf("  near ttl %2lldms  %12.0f reads/s  %5.1f%% near hits  "
                "%llu wire requests\n",
                cell.ttl_ms, cell.rps, ratio,
                static_cast<unsigned long long>(cell.wire_requests));
    PrintHist("wire hit", cell.wire_hist);
    PrintHist("near hit", cell.near_hist);
    cells.push_back(std::move(cell));
  }

  double speedup = cells.front().rps > 0 ? cells.back().rps / cells.front().rps : 0;
  std::printf("\n  ttl 10ms vs off: %.2fx reads/s, %llu vs %llu wire requests\n",
              speedup, static_cast<unsigned long long>(cells.back().wire_requests),
              static_cast<unsigned long long>(cells.front().wire_requests));

  const char* out_path = std::getenv("IQ_BENCH_NEAR_OUT");
  if (out_path == nullptr) out_path = "BENCH_near.json";
  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_near: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_near\",\n"
               "  \"note\": \"client and server share one host; req/s "
               "understates the near-cache win because each wire round trip "
               "burns both client and server cycles from the same CPU "
               "budget\",\n"
               "  \"client_threads\": %d,\n"
               "  \"keys\": %d,\n"
               "  \"cells\": [\n",
               kClientThreads, kKeys);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(f,
                 "    {\"near_ttl_ms\": %lld, \"reads_per_sec\": %.0f, "
                 "\"reads\": %llu, \"near_hits\": %llu, "
                 "\"wire_requests\": %llu,\n",
                 c.ttl_ms, c.rps, static_cast<unsigned long long>(c.reads),
                 static_cast<unsigned long long>(c.near_hits),
                 static_cast<unsigned long long>(c.wire_requests));
    JsonHist(f, "wire_hit_rtt", c.wire_hist, false);
    JsonHist(f, "near_hit_rtt", c.near_hist, true);
    std::fprintf(f, "    }%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"speedup_ttl10_vs_off\": %.2f\n"
               "}\n",
               speedup);
  std::fclose(f);
  std::printf("  wrote %s\n", out_path);
  return 0;
}
