// bench_net: round trips/sec over loopback TCP vs pipeline depth.
//
// Measures the cost the LoopbackChannel was hiding (syscalls, wakeups) and
// what client-side pipelining buys back:
//   - loopback       in-process Channel baseline, depth 1
//   - tcp depth 1    one request per write/read pair (memcached default)
//   - tcp depth 8/64 SendNoWait x N -> Flush (one write) -> Drain
//
// Every cell runs kClientThreads concurrent clients (one connection each
// for TCP), the way a cache server is actually loaded: the server drains
// whatever is ready per epoll wakeup, so per-round-trip scheduler costs
// amortize across connections instead of being serialized through one.
//
// The op mix is 1 set : 3 get over a small keyspace with 100-byte values —
// small requests, where per-round-trip overhead dominates, i.e. the case
// pipelining exists for.
//
// Output: a human table on stdout and a JSON record (BENCH_net.json by
// default, override with IQ_BENCH_NET_OUT) so CI can track the trajectory.
// Env knobs: IQ_BENCH_SECONDS (measurement window per cell, default 1.0).
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/iq_server.h"
#include "net/channel.h"
#include "net/tcp_channel.h"
#include "net/tcp_server.h"

using namespace iq;

namespace {

constexpr int kClientThreads = 4;
constexpr int kKeys = 64;
constexpr std::size_t kValueBytes = 100;

/// Build the i-th request of the 1-set:3-get mix.
net::Request MixRequest(std::uint64_t i) {
  net::Request r;
  std::string key = "k:" + std::to_string(i % kKeys);
  if (i % 4 == 0) {
    r.command = net::Command::kSet;
    r.key = std::move(key);
    r.data.assign(kValueBytes, 'v');
  } else {
    r.command = net::Command::kGet;
    r.key = std::move(key);
  }
  return r;
}

/// Aggregate requests/sec of kClientThreads threads, each driving its own
/// channel until the shared deadline. make_channel is called per thread.
double MeasureThreads(
    const std::function<std::unique_ptr<net::Channel>()>& make_channel,
    int depth, Nanos window) {
  const Clock& clock = SteadyClock::Instance();
  Nanos deadline = clock.Now() + window;
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&, t] {
      std::unique_ptr<net::Channel> channel = make_channel();
      auto* pipelined = dynamic_cast<net::PipelinedChannel*>(channel.get());
      std::uint64_t count = static_cast<std::uint64_t>(t) * 7;  // decorrelate
      std::string bytes;
      std::string reply;
      while (clock.Now() < deadline) {
        if (depth == 1 || pipelined == nullptr) {
          bytes.clear();
          net::AppendTo(MixRequest(count), &bytes);
          if (!channel->RoundTrip(bytes, &reply)) {
            std::fprintf(stderr, "bench_net: transport failure\n");
            std::exit(1);
          }
          ++count;
          total.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (int i = 0; i < depth; ++i) {
          pipelined->SendNoWait(MixRequest(count + static_cast<std::uint64_t>(i)));
        }
        pipelined->Flush();
        std::vector<net::Response> responses = pipelined->Drain();
        if (static_cast<int>(responses.size()) != depth) {
          std::fprintf(stderr, "bench_net: short drain (%zu of %d)\n",
                       responses.size(), depth);
          std::exit(1);
        }
        count += static_cast<std::uint64_t>(depth);
        total.fetch_add(static_cast<std::uint64_t>(depth),
                        std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  return static_cast<double>(total.load()) /
         (static_cast<double>(window) / kNanosPerSec);
}

/// Round trips/sec of a bare 1-byte TCP echo between two threads: no epoll,
/// no parsing, no dispatch — just the syscall + scheduler floor this host
/// imposes on any depth-1 request/response protocol. Everything the real
/// server adds on top of this is our overhead; the rest is the machine's.
double MeasureWireFloor(Nanos window) {
  int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (lfd < 0 || ::bind(lfd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) != 0 ||
      ::listen(lfd, 1) != 0) {
    return 0;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len);
  // Loopback connect completes through the backlog, so accept() after it
  // cannot block.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (fd >= 0) ::close(fd);
    ::close(lfd);
    return 0;
  }
  int srv = ::accept(lfd, nullptr, nullptr);
  ::close(lfd);
  if (srv < 0) {
    ::close(fd);
    return 0;
  }
  int on = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
  ::setsockopt(srv, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
  std::thread echo([srv] {
    char b[16];
    while (::read(srv, b, sizeof(b)) > 0) {
      if (::write(srv, b, 1) != 1) break;
    }
    ::close(srv);
  });
  const Clock& clock = SteadyClock::Instance();
  Nanos deadline = clock.Now() + window;
  std::uint64_t count = 0;
  char b[16] = {'x'};
  while (clock.Now() < deadline) {
    if (::write(fd, b, 1) != 1 || ::read(fd, b, sizeof(b)) <= 0) break;
    ++count;
  }
  ::close(fd);  // echo thread's read() returns 0 -> joins
  echo.join();
  return static_cast<double>(count) /
         (static_cast<double>(window) / kNanosPerSec);
}

}  // namespace

int main() {
  Nanos window = static_cast<Nanos>(
      bench::EnvDouble("IQ_BENCH_SECONDS", 1.0) * kNanosPerSec);

  // Loopback baseline: same serialize/parse/dispatch work, no sockets.
  double loopback_rps;
  {
    IQServer server;
    loopback_rps = MeasureThreads(
        [&server] { return std::make_unique<net::LoopbackChannel>(server); },
        1, window);
  }

  // What this host charges for any depth-1 TCP round trip at all.
  double floor_rps = MeasureWireFloor(window);

  // TCP over 127.0.0.1, one connection per client thread, depths 1/8/64.
  IQServer server;
  net::TcpServer::Config cfg;
  cfg.workers = 2;
  net::TcpServer tcp(server, cfg);
  std::string error;
  if (!tcp.Start(&error)) {
    std::fprintf(stderr, "bench_net: %s\n", error.c_str());
    return 1;
  }
  auto connect = [&tcp]() -> std::unique_ptr<net::Channel> {
    std::string err;
    auto ch = net::TcpChannel::Connect("127.0.0.1", tcp.port(), &err);
    if (!ch) {
      std::fprintf(stderr, "bench_net: %s\n", err.c_str());
      std::exit(1);
    }
    return ch;
  };

  const int depths[] = {1, 8, 64};
  std::vector<double> tcp_rps;
  std::printf(
      "bench_net: loopback TCP, 1 set : 3 get, %zu-byte values, "
      "%d client threads\n\n",
      kValueBytes, kClientThreads);
  std::printf("  %-18s %14.0f req/s\n", "loopback (no net)", loopback_rps);
  std::printf("  %-18s %14.0f req/s\n", "wire floor (echo)", floor_rps);
  for (int depth : depths) {
    double rps = MeasureThreads(connect, depth, window);
    tcp_rps.push_back(rps);
    std::printf("  tcp depth %-8d %14.0f req/s\n", depth, rps);
  }
  tcp.Stop();

  double speedup = tcp_rps.back() / tcp_rps.front();
  double vs_loopback = loopback_rps / tcp_rps.front();
  double pct_of_floor = floor_rps > 0 ? 100.0 * tcp_rps.front() / floor_rps : 0;
  std::printf("\n  depth 64 vs depth 1:   %.2fx\n", speedup);
  std::printf("  loopback vs tcp d1:    %.2fx\n", vs_loopback);
  std::printf("  tcp d1 vs wire floor:  %.0f%% of the attainable rate\n",
              pct_of_floor);

  const char* out_path = std::getenv("IQ_BENCH_NET_OUT");
  if (out_path == nullptr) out_path = "BENCH_net.json";
  if (FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"bench_net\",\n"
                 "  \"mix\": \"1 set : 3 get, %zu-byte values\",\n"
                 "  \"client_threads\": %d,\n"
                 "  \"loopback_rps\": %.0f,\n"
                 "  \"wire_floor_rps\": %.0f,\n"
                 "  \"tcp\": [\n",
                 kValueBytes, kClientThreads, loopback_rps, floor_rps);
    for (std::size_t i = 0; i < tcp_rps.size(); ++i) {
      std::fprintf(f, "    {\"depth\": %d, \"rps\": %.0f}%s\n", depths[i],
                   tcp_rps[i], i + 1 < tcp_rps.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"speedup_depth64_vs_depth1\": %.2f,\n"
                 "  \"loopback_over_tcp_depth1\": %.2f,\n"
                 "  \"tcp_depth1_pct_of_wire_floor\": %.1f\n"
                 "}\n",
                 speedup, vs_loopback, pct_of_floor);
    std::fclose(f);
    std::printf("  wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "bench_net: cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}
