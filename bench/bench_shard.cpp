// bench_shard: throughput of a sharded cache tier vs shard count.
//
// The tier is 1, 2, or 4 in-process IQServer children behind a
// ShardedBackend consistent-hash ring, each child configured with a
// single-shard CacheStore so the child itself is the serialization point —
// the way a real deployment scales by adding servers, not by adding locks
// inside one. A direct (router-free) IQServer row isolates what the ring
// and session fan-out cost on top.
//
// The op mix is 25% counter increments via the refresh protocol
// (GenID -> QaRead -> SaR -> Commit, abort + retry on rejection) and 75%
// plain gets over a larger keyspace. Every cell ends with two exact checks:
//   - each counter equals the number of increments the clients committed;
//   - the children's summed commit counters equal that same total.
// A lease leak, a mis-routed fan-out, or a ring disagreement between
// threads fails the run (nonzero exit), so CI can gate on it.
//
// Output: a human table on stdout and a JSON record (BENCH_shard.json by
// default, override with IQ_BENCH_SHARD_OUT). On a single-CPU host the
// shards all contend for one core, so the scaling column attributes
// routing overhead rather than parallel speedup; the JSON carries an
// attribution note when hardware_concurrency == 1.
// Env knobs: IQ_BENCH_SECONDS (measurement window per cell, default 1.0).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/iq_server.h"
#include "core/sharded_backend.h"
#include "util/backoff.h"
#include "util/rng.h"

using namespace iq;

namespace {

constexpr int kThreads = 4;
constexpr int kCounters = 32;
constexpr int kDataKeys = 256;
constexpr int kWritePct = 25;

/// One committed increment of `key` through the refresh protocol. Retries
/// on Q-lease rejection; every session ends with Commit/Abort so the
/// router can retire its per-shard session state.
bool Increment(KvsBackend& backend, const std::string& key) {
  for (int attempt = 0; attempt < 100000; ++attempt) {
    SessionId session = backend.GenID();
    QaReadReply q = backend.QaRead(key, session);
    if (q.status != QaReadReply::Status::kGranted) {
      backend.Abort(session);
      SleepFor(backend.clock(), 20 * kNanosPerMicro);
      continue;
    }
    long long current = q.value ? std::atoll(q.value->c_str()) : 0;
    std::string next = std::to_string(current + 1);
    if (backend.SaR(key, std::string_view(next), q.token) ==
        StoreResult::kStored) {
      backend.Commit(session);
      return true;
    }
    backend.Abort(session);
  }
  return false;
}

struct CellResult {
  double ops_per_sec = 0;
  long long increments = 0;
  bool balanced = false;
  // Fraction of the keyspace the lightest/heaviest shard owns (1.0/n ideal).
  double min_share = 1.0;
  double max_share = 1.0;
};

/// Run one cell against per-thread routing stacks built by `make_backend`
/// (shared_ptr so the direct cell can lend out one caller-owned server).
/// The final counter check sees a fresh stack; `commits` must return the
/// summed commit counter of every child.
CellResult RunCell(
    const std::function<std::shared_ptr<KvsBackend>()>& make_backend,
    const std::function<long long()>& commits, Nanos window) {
  const Clock& clock = SteadyClock::Instance();
  {
    auto setup = make_backend();
    for (int i = 0; i < kCounters; ++i) {
      setup->Set("ctr:" + std::to_string(i), "0");
    }
    for (int i = 0; i < kDataKeys; ++i) {
      setup->Set("data:" + std::to_string(i), std::string(100, 'x'));
    }
  }
  std::vector<std::atomic<long long>> committed(kCounters);
  for (auto& c : committed) c.store(0);
  std::atomic<std::uint64_t> ops{0};
  std::atomic<bool> failed{false};
  Nanos deadline = clock.Now() + window;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto backend = make_backend();
      Rng rng(0x5eed + static_cast<std::uint64_t>(t) * 7919);
      std::uint64_t local = 0;
      while (clock.Now() < deadline) {
        if (rng.NextUint64(100) < kWritePct) {
          int idx = static_cast<int>(rng.NextUint64(kCounters));
          if (!Increment(*backend, "ctr:" + std::to_string(idx))) {
            failed.store(true);
            return;
          }
          committed[idx].fetch_add(1, std::memory_order_relaxed);
        } else {
          backend->Get("data:" + std::to_string(rng.NextUint64(kDataKeys)));
        }
        ++local;
      }
      ops.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();

  CellResult r;
  r.ops_per_sec = static_cast<double>(ops.load()) /
                  (static_cast<double>(window) / kNanosPerSec);
  r.balanced = !failed.load();
  auto verify = make_backend();
  for (int i = 0; i < kCounters; ++i) {
    auto item = verify->Get("ctr:" + std::to_string(i));
    long long expect = committed[i].load();
    long long got = item ? std::atoll(item->value.c_str()) : -1;
    r.increments += expect;
    if (got != expect) {
      std::fprintf(stderr, "bench_shard: ctr:%d = %lld, expected %lld\n", i,
                   got, expect);
      r.balanced = false;
    }
  }
  if (commits() != r.increments) {
    std::fprintf(stderr,
                 "bench_shard: children committed %lld sessions, clients "
                 "tallied %lld\n",
                 commits(), r.increments);
    r.balanced = false;
  }
  return r;
}

/// Cell for an n-shard tier: shared children, a ShardedBackend per thread
/// (identical shard names, so every thread's ring agrees on placement).
CellResult RunSharded(int shard_count, Nanos window) {
  std::vector<std::unique_ptr<IQServer>> children;
  for (int i = 0; i < shard_count; ++i) {
    children.push_back(std::make_unique<IQServer>(
        CacheStore::Config{.shard_count = 1},
        IQServer::Config{.lease_lifetime = 0}));
  }
  auto make_backend = [&]() -> std::shared_ptr<KvsBackend> {
    std::vector<ShardedBackend::Shard> shards;
    for (int i = 0; i < shard_count; ++i) {
      IQServer* child = children[static_cast<std::size_t>(i)].get();
      shards.push_back({"s" + std::to_string(i), child, 1,
                        [child] { return child->Stats(); }, {}, {}, {}});
    }
    return std::make_shared<ShardedBackend>(std::move(shards));
  };
  auto commits = [&] {
    long long total = 0;
    for (const auto& c : children) {
      total += static_cast<long long>(c->Stats().commits);
    }
    return total;
  };
  CellResult r = RunCell(make_backend, commits, window);

  // How evenly the ring spreads this cell's keyspace across the children.
  auto router = make_backend();
  auto* sharded = static_cast<ShardedBackend*>(router.get());
  std::vector<int> owned(static_cast<std::size_t>(shard_count), 0);
  for (int i = 0; i < kCounters; ++i) {
    ++owned[sharded->ShardFor("ctr:" + std::to_string(i))];
  }
  for (int i = 0; i < kDataKeys; ++i) {
    ++owned[sharded->ShardFor("data:" + std::to_string(i))];
  }
  const double total_keys = kCounters + kDataKeys;
  r.min_share = 1.0;
  r.max_share = 0.0;
  for (int count : owned) {
    double share = count / total_keys;
    r.min_share = std::min(r.min_share, share);
    r.max_share = std::max(r.max_share, share);
  }
  return r;
}

/// Router-free baseline: the same workload straight into one IQServer.
CellResult RunDirect(Nanos window) {
  IQServer server(CacheStore::Config{.shard_count = 1},
                  IQServer::Config{.lease_lifetime = 0});
  // The cell scope owns the server; lend it out with a no-op deleter.
  auto make_backend = [&]() -> std::shared_ptr<KvsBackend> {
    return std::shared_ptr<KvsBackend>(&server, [](KvsBackend*) {});
  };
  auto commits = [&] { return static_cast<long long>(server.Stats().commits); };
  return RunCell(make_backend, commits, window);
}

}  // namespace

int main() {
  Nanos window = static_cast<Nanos>(
      bench::EnvDouble("IQ_BENCH_SECONDS", 1.0) * kNanosPerSec);
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf(
      "bench_shard: %d%% refresh increments : %d%% gets, %d client threads, "
      "%u hardware threads\n\n",
      kWritePct, 100 - kWritePct, kThreads, hw);

  CellResult direct = RunDirect(window);
  const int shard_counts[] = {1, 2, 4};
  std::vector<CellResult> cells;

  std::printf("  %-16s %14s %12s %10s %16s\n", "tier", "ops/sec", "increments",
              "balance", "key share min/max");
  std::printf("  %-16s %14.0f %12lld %10s %16s\n", "direct (1 srv)",
              direct.ops_per_sec, direct.increments,
              direct.balanced ? "exact" : "VIOLATED", "-");
  bool all_balanced = direct.balanced;
  for (int n : shard_counts) {
    CellResult r = RunSharded(n, window);
    cells.push_back(r);
    all_balanced = all_balanced && r.balanced;
    char share[32];
    std::snprintf(share, sizeof(share), "%.2f / %.2f", r.min_share,
                  r.max_share);
    char tier[32];
    std::snprintf(tier, sizeof(tier), "sharded x%d", n);
    std::printf("  %-16s %14.0f %12lld %10s %16s\n", tier, r.ops_per_sec,
                r.increments, r.balanced ? "exact" : "VIOLATED", share);
  }

  double router_overhead = cells[0].ops_per_sec > 0
                               ? direct.ops_per_sec / cells[0].ops_per_sec
                               : 0;
  double scaling_4x = cells[0].ops_per_sec > 0
                          ? cells[2].ops_per_sec / cells[0].ops_per_sec
                          : 0;
  std::printf("\n  direct vs sharded x1:  %.2fx (ring + session-map cost)\n",
              router_overhead);
  std::printf("  sharded x4 vs x1:      %.2fx\n", scaling_4x);
  const char* note =
      hw <= 1 ? "single-CPU host: all shards contend for one core, so the "
                "x4-vs-x1 figure attributes routing overhead, not parallel "
                "scaling; rerun on a multicore host for the >=2x check"
              : "";
  if (note[0] != '\0') std::printf("  note: %s\n", note);

  const char* out_path = std::getenv("IQ_BENCH_SHARD_OUT");
  if (out_path == nullptr) out_path = "BENCH_shard.json";
  if (FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"bench_shard\",\n"
                 "  \"mix\": \"%d%% refresh increments : %d%% gets\",\n"
                 "  \"client_threads\": %d,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"direct_ops_per_sec\": %.0f,\n"
                 "  \"tiers\": [\n",
                 kWritePct, 100 - kWritePct, kThreads, hw,
                 direct.ops_per_sec);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::fprintf(f,
                   "    {\"shards\": %d, \"ops_per_sec\": %.0f, "
                   "\"increments\": %lld, \"balanced\": %s, "
                   "\"key_share_min\": %.3f, \"key_share_max\": %.3f}%s\n",
                   shard_counts[i], cells[i].ops_per_sec, cells[i].increments,
                   cells[i].balanced ? "true" : "false", cells[i].min_share,
                   cells[i].max_share, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"scaling_4_shards_vs_1\": %.2f,\n"
                 "  \"router_overhead_vs_direct\": %.2f,\n"
                 "  \"note\": \"%s\"\n"
                 "}\n",
                 scaling_4x, router_overhead, note);
    std::fclose(f);
    std::printf("  wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "bench_shard: cannot write %s\n", out_path);
    return 1;
  }
  return all_balanced ? 0 : 1;
}
