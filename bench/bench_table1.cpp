// Table 1 (Section 1): percentage of read actions observing unpredictable
// (stale) data with invalidate / refresh / incremental-update sessions and
// NO Q leases, as the number of concurrent sessions grows. The final block
// repeats the highest load with the IQ framework, which must report 0%.
//
// Paper numbers (1% write mix, Twemcache with read leases):
//   1 session:    0% / 0% / 0%
//   10 sessions:  0.5% / 0% / 0.01%
//   100 sessions: 1.1% / 1.4% / 0.2%
//   200 sessions: 1.3% / 1.8% / 2.9%
#include "bench_common.h"

using namespace iq;
using namespace iq::bench;

int main() {
  BenchScale scale = BenchScale::FromEnv();
  // A dash of per-operation RDBMS latency widens the race windows the way a
  // networked MySQL does in the paper's testbed.
  sql::Database::Config db_cfg;
  db_cfg.read_delay = 30 * kNanosPerMicro;
  db_cfg.write_delay = 30 * kNanosPerMicro;
  // The gap between a trigger's KVS delete and the transaction commit is
  // where Figure 3 strikes; a networked RDBMS commit keeps it open.
  db_cfg.commit_delay = 300 * kNanosPerMicro;
  BenchUniverse universe(scale.small_graph, db_cfg, scale.seed);

  const casql::Technique techniques[] = {casql::Technique::kInvalidate,
                                         casql::Technique::kRefresh,
                                         casql::Technique::kIncremental};
  const int session_counts[] = {1, 10, 100, 200};

  PrintHeader("Table 1: % unpredictable reads, no Q leases (read-lease client)");
  std::printf("%-10s %12s %12s %12s\n", "sessions", "invalidate", "refresh",
              "incremental");
  for (int sessions : session_counts) {
    std::printf("%-10d", sessions);
    for (auto technique : techniques) {
      auto cfg = MakeCasqlConfig(technique, casql::Consistency::kReadLease);
      cfg.max_cas_retries = 1;  // the paper's single-shot cas client
      cfg.baseline_rmw_delay = 200 * kNanosPerMicro;  // networked R-M-W window
      auto result = universe.RunCell(cfg, bg::LowWriteMix(), sessions,
                                     scale.cell_duration);
      std::printf(" %11.2f%%", result.validation.StalePercent());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  PrintHeader("Same load with the IQ framework (paper: all zero)");
  std::printf("%-10s %12s %12s %12s\n", "sessions", "invalidate", "refresh",
              "incremental");
  std::printf("%-10d", 200);
  for (auto technique : techniques) {
    auto cfg = MakeCasqlConfig(technique, casql::Consistency::kIQ);
    auto result =
        universe.RunCell(cfg, bg::LowWriteMix(), 200, scale.cell_duration);
    std::printf(" %11.2f%%", result.validation.StalePercent());
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
