// Table 6 (Section 6.2): average and maximum number of times an aborted
// write session restarts due to Q-lease conflicts, comparing the two client
// designs of Figure 9: QaRead issued PRIOR TO the RDBMS transaction vs
// DURING it. High load (200 threads in the paper), Zipfian theta=0.27.
//
// Paper numbers (avg / max):
//   0.1% writes:  2 / 4      vs  0 / 0
//   1%   writes:  6.02 / 74  vs  1.18 / 5
//   10%  writes:  4.61 / 77  vs  1.33 / 9
//
// Holding Q leases across the whole acquisition + backoff cycle (prior)
// makes a session lose its leases to competitors repeatedly - there is no
// queue, so restarts pile up; acquiring inside the transaction shortens the
// hold time and bounds the restarts.
#include "bench_common.h"

using namespace iq;
using namespace iq::bench;

int main() {
  BenchScale scale = BenchScale::FromEnv();
  sql::Database::Config db_cfg;
  // RDBMS work inside the transaction separates the two designs: with
  // "prior" the leases are held across backoffs of the full session.
  db_cfg.read_delay = 30 * kNanosPerMicro;
  db_cfg.write_delay = 60 * kNanosPerMicro;
  BenchUniverse universe(scale.small_graph, db_cfg, scale.seed);

  const double mixes[] = {0.1, 1.0, 10.0};
  const int threads = static_cast<int>(EnvInt("IQ_BENCH_THREADS", 64));

  PrintHeader(
      "Table 6: restarts of aborted sessions (Q conflicts), refresh client");
  std::printf("%-10s | %-25s | %-25s\n", "", "QaRead prior to txn",
              "QaRead during txn");
  std::printf("%-10s | %12s %12s | %12s %12s\n", "write mix", "avg", "max",
              "avg", "max");
  for (double mix : mixes) {
    std::printf("%-9.1f%%", mix);
    for (auto placement : {casql::LeasePlacement::kPriorToTxn,
                           casql::LeasePlacement::kInsideTxn}) {
      auto cfg = MakeCasqlConfig(casql::Technique::kRefresh,
                                 casql::Consistency::kIQ, placement);
      auto result =
          universe.RunCell(cfg, bg::MixForWritePercent(mix), threads,
                           scale.cell_duration, /*warm_cache=*/true,
                           /*validate=*/false);
      std::printf(" | %12.2f %12llu", result.restarts.AvgRestarts(),
                  static_cast<unsigned long long>(
                      result.restarts.max_q_restarts));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
