// Table 7 (Section 6.3): percentage of unpredictable reads with the
// Twemcache baseline (Facebook read leases, no Q leases) using invalidate
// and refresh, across two social graph sizes and three load levels, then
// the same cells with IQ-Twemcached (paper: all reduced to zero).
//
// The "100K members" configuration in the paper is RDBMS-disk-bound
// (15-25 actions/sec); we emulate that regime by injecting per-operation
// RDBMS latency so the database is again the bottleneck.
//
// Paper shape to reproduce:
//   small graph:  invalidate staleness grows with load (0.2% - 2%);
//                 refresh staleness explodes at high write mixes (up to 8.3%)
//   large graph:  invalidate ~0% (less contention); refresh ~3% flat
//                 (stale values linger; RDBMS caps concurrency)
//   IQ:           0% everywhere
#include "bench_common.h"

using namespace iq;
using namespace iq::bench;

namespace {

struct Load {
  const char* label;
  int threads;
};

void RunGraph(const char* title, BenchUniverse& universe, Nanos duration) {
  const Load loads[] = {{"Low (10)", 10}, {"Moderate (100)", 100},
                        {"High (200)", 200}};
  const double mixes[] = {0.1, 1.0, 10.0};

  PrintHeader(std::string(title) + " - Twemcache (read leases only)");
  std::printf("%-16s %-9s | %12s %12s | %12s %12s\n", "load", "mix",
              "invalidate", "refresh", "IQ-inval", "IQ-refresh");
  for (const Load& load : loads) {
    for (double mix : mixes) {
      std::printf("%-16s %-7.1f%% |", load.label, mix);
      for (auto consistency :
           {casql::Consistency::kReadLease, casql::Consistency::kIQ}) {
        for (auto technique :
             {casql::Technique::kInvalidate, casql::Technique::kRefresh}) {
          auto cfg = MakeCasqlConfig(technique, consistency);
          // The paper's baseline refresh client applies its R-M-W with a
          // single cas attempt; a failed cas means the cache update is
          // lost and the stale value lingers (Section 6.3's ~3% plateau).
          cfg.max_cas_retries = 1;
          cfg.baseline_rmw_delay = 200 * kNanosPerMicro;
          auto result = universe.RunCell(cfg, bg::MixForWritePercent(mix),
                                         load.threads, duration);
          std::printf(" %11.2f%%", result.validation.StalePercent());
          std::fflush(stdout);
        }
        if (consistency == casql::Consistency::kReadLease) std::printf(" |");
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main() {
  BenchScale scale = BenchScale::FromEnv();

  {
    // Small graph: fits "in memory", RDBMS fast, hundreds of actions/sec.
    sql::Database::Config db_cfg;
    db_cfg.read_delay = 30 * kNanosPerMicro;
    db_cfg.write_delay = 30 * kNanosPerMicro;
    db_cfg.commit_delay = 300 * kNanosPerMicro;
    BenchUniverse small(scale.small_graph, db_cfg, scale.seed);
    RunGraph("Table 7a: small graph (paper: 10K members)", small,
             scale.cell_duration);
  }
  {
    // Large graph: emulate the disk-bound RDBMS (the paper's 100K-member
    // configuration sustains only 15-25 actions/sec) with heavy per-op
    // latency; concurrency is then capped by the database.
    // Disk-bound regime: RDBMS operations take milliseconds, so a reader's
    // recompute window is wide open while writers commit around it. Under
    // refresh the stale install lingers (nothing deletes it); under
    // invalidate the next write cleans it - the paper's Table 7 contrast.
    sql::Database::Config db_cfg;
    db_cfg.read_delay = kNanosPerMilli;
    db_cfg.write_delay = 2 * kNanosPerMilli;
    db_cfg.commit_delay = 2 * kNanosPerMilli;
    BenchUniverse large(scale.large_graph, db_cfg, scale.seed + 1);
    RunGraph("Table 7b: large graph (paper: 100K members, disk-bound)", large,
             2 * scale.cell_duration);
  }
  return 0;
}
