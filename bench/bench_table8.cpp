// Table 8 (Section 6.3): SoAR (highest throughput meeting the SLA: 95% of
// actions under 100 ms) of the Twemcache baseline vs IQ-Twemcached, warm
// cache, cache-server CPU-bound. The paper's claim: the IQ framework's
// overhead is negligible - the two columns are within ~1% of each other.
//
// Paper numbers (actions/sec):
//              Invalidate              Refresh
//   mix     Twem     IQ-Twem       Twem     IQ-Twem
//   0.1%  31,492     31,473      31,338     31,184
//   1%    31,144     31,246      30,615     30,352
//   10%   29,317     29,204      29,194     29,277
#include "bench_common.h"

using namespace iq;
using namespace iq::bench;

int main() {
  BenchScale scale = BenchScale::FromEnv();
  sql::Database::Config db_cfg;  // in-memory-fast RDBMS; cache is hot path
  BenchUniverse universe(scale.small_graph, db_cfg, scale.seed);

  const double mixes[] = {0.1, 1.0, 10.0};
  std::vector<int> thread_sweep = {1, 2, 4};

  PrintHeader("Table 8: SoAR (actions/sec), warm cache");
  std::printf("%-8s | %-25s | %-25s\n", "", "Invalidate", "Refresh");
  std::printf("%-8s | %12s %12s | %12s %12s\n", "mix", "Twemcache",
              "IQ-Twem", "Twemcache", "IQ-Twem");
  for (double mix : mixes) {
    std::printf("%-7.1f%% |", mix);
    for (auto technique :
         {casql::Technique::kInvalidate, casql::Technique::kRefresh}) {
      for (auto consistency :
           {casql::Consistency::kReadLease, casql::Consistency::kIQ}) {
        auto cfg = MakeCasqlConfig(technique, consistency);
        auto soar = bg::ComputeSoar(
            [&](int threads) {
              // Best of three trials per point: a single 1-core run is
              // noisy under oversubscription.
              bg::WorkloadResult best;
              for (int trial = 0; trial < 3; ++trial) {
                auto r = universe.RunCell(cfg, bg::MixForWritePercent(mix),
                                          threads, scale.cell_duration / 2,
                                          /*warm_cache=*/trial == 0,
                                          /*validate=*/false);
                if (r.Throughput() > best.Throughput()) best = std::move(r);
              }
              return best;
            },
            thread_sweep);
        std::printf(" %12.0f", soar.soar);
        std::fflush(stdout);
      }
      if (technique == casql::Technique::kInvalidate) std::printf(" |");
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: each IQ column should be within a few percent of its\n"
      "Twemcache neighbor (the IQ framework's overhead is negligible).\n");
  return 0;
}
