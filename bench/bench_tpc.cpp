// bench_tpc: thread-per-core A/B for the TCP front end — the numbers behind
// DESIGN.md §4.7. Each cell starts a real iqcached stack (IQServer behind
// TcpServer) in shared or shard-affinity mode with N workers, drives it with
// N pipelined client connections issuing IQget hits over loopback, and
// measures aggregate responses/sec. A mixed cell adds sets (cross-shard
// writes) and multi-key gets (control-plane fan-out) to exercise the
// forwarding mailbox and the inline-fallback path, not just the hot loop.
//
// Environment:
//   IQ_BENCH_SECONDS      measurement window per cell in seconds (default 1.0)
//   IQ_BENCH_TPC_OUT      JSON artifact path (default BENCH_tpc.json)
//   IQ_BENCH_TPC_ASSERT   "1" = fail (exit 1) when the affinity mode shows no
//                         benefit. Only meaningful on a multicore host; the
//                         checks are skipped (with a note) when
//                         hardware_concurrency <= 1, where workers timeshare
//                         one core and the comparison attributes scheduler
//                         noise, not the architecture.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/iq_server.h"
#include "net/channel.h"
#include "net/tcp_channel.h"
#include "net/tcp_server.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kKeys = 256;
constexpr int kValueBytes = 64;
constexpr int kPipelineDepth = 64;

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

struct CellResult {
  double ops_per_sec = 0;
  // Placement breakdown, affinity mode only (all zero in shared mode).
  std::uint64_t forwards = 0;
  std::uint64_t inline_ops = 0;
  std::uint64_t fallbacks = 0;
};

/// One A/B cell: `clients` pipelined connections of IQget hits (plus a
/// set / multi-get slice when `mixed`) against a fresh server.
CellResult RunCell(bool affinity, int workers, int clients, bool mixed,
                   double seconds) {
  iq::IQServer server(iq::CacheStore::Config{.shard_count = 16,
                                             .memory_budget_bytes = 0},
                      iq::IQServer::Config{});
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  const std::string value(kValueBytes, 'v');
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back("hot" + std::to_string(i));
    server.store().Set(keys.back(), value);
  }

  iq::net::TcpServer::Config cfg;
  cfg.workers = workers;
  cfg.affinity = affinity;
  cfg.spin_polls = 0;  // apples-to-apples: no spin advantage either way
  iq::net::TcpServer tcp(server, cfg);
  std::string error;
  if (!tcp.Start(&error)) {
    std::fprintf(stderr, "bench_tpc: %s\n", error.c_str());
    std::exit(1);
  }

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::string conn_error;
      auto channel =
          iq::net::TcpChannel::Connect("127.0.0.1", tcp.port(), &conn_error);
      if (channel == nullptr) {
        std::fprintf(stderr, "bench_tpc: %s\n", conn_error.c_str());
        return;
      }
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t ops = 0;
      std::size_t i = static_cast<std::size_t>(c) * 37;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int b = 0; b < kPipelineDepth; ++b) {
          iq::net::Request r;
          std::size_t n = i++ % kKeys;
          if (mixed && b % 8 == 7) {
            // Write slice: cross-shard sets keep the owners' mutation path
            // (and, in affinity mode, the forwarding mailbox) hot.
            r.command = iq::net::Command::kSet;
            r.key = keys[n];
            r.data = value;
          } else if (mixed && b % 16 == 2) {
            // Control slice: multi-key get fans out across shards.
            r.command = iq::net::Command::kGet;
            r.keys = {keys[n], keys[(n + kKeys / 2) % kKeys]};
          } else {
            r.command = iq::net::Command::kIQGet;
            r.key = keys[n];
            r.session = 0;
          }
          channel->SendNoWait(r);
        }
        if (!channel->Flush()) break;
        std::vector<iq::net::Response> got = channel->Drain();
        if (got.size() != static_cast<std::size_t>(kPipelineDepth)) {
          break;  // transport died
        }
        ops += got.size();
      }
      total.fetch_add(ops, std::memory_order_relaxed);
    });
  }

  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  CellResult r;
  r.ops_per_sec =
      elapsed > 0 ? static_cast<double>(total.load()) / elapsed : 0;
  iq::net::TcpServerStats s = tcp.Stats();
  r.forwards = s.affinity_forwards;
  r.inline_ops = s.affinity_inline;
  r.fallbacks = s.affinity_fallbacks;
  tcp.Stop();
  return r;
}

}  // namespace

int main() {
  const double seconds = EnvDouble("IQ_BENCH_SECONDS", 1.0);
  const unsigned hw = std::thread::hardware_concurrency();
  const bool assert_scaling =
      std::getenv("IQ_BENCH_TPC_ASSERT") != nullptr &&
      std::strcmp(std::getenv("IQ_BENCH_TPC_ASSERT"), "1") == 0;
  const int worker_counts[] = {1, 2, 4};

  std::printf("bench_tpc: pipelined IQget hits over loopback, depth %d, "
              "%d keys x %d-byte values, %.1fs per cell, %u hardware "
              "threads\n\n",
              kPipelineDepth, kKeys, kValueBytes, seconds, hw);

  struct Row {
    int workers;
    CellResult shared;
    CellResult affinity;
  };
  std::vector<Row> rows;
  std::printf("  %-8s %16s %16s %9s %10s\n", "workers", "shared ops/s",
              "affinity ops/s", "ratio", "fwd-share");
  for (int w : worker_counts) {
    Row row;
    row.workers = w;
    // Clients match workers so every worker has traffic to own.
    row.shared = RunCell(/*affinity=*/false, w, /*clients=*/w,
                         /*mixed=*/false, seconds);
    row.affinity = RunCell(/*affinity=*/true, w, /*clients=*/w,
                           /*mixed=*/false, seconds);
    rows.push_back(row);
    const double routed = static_cast<double>(
        row.affinity.forwards + row.affinity.inline_ops +
        row.affinity.fallbacks);
    std::printf("  %-8d %16.0f %16.0f %8.2fx %9.2f%%\n", w,
                row.shared.ops_per_sec, row.affinity.ops_per_sec,
                row.shared.ops_per_sec > 0
                    ? row.affinity.ops_per_sec / row.shared.ops_per_sec
                    : 0,
                routed > 0
                    ? 100.0 * static_cast<double>(row.affinity.forwards) /
                          routed
                    : 0);
  }

  const int max_workers = worker_counts[2];
  CellResult mixed_shared = RunCell(false, max_workers, max_workers,
                                    /*mixed=*/true, seconds);
  CellResult mixed_affinity = RunCell(true, max_workers, max_workers,
                                      /*mixed=*/true, seconds);
  std::printf("\n  mixed (set + multi-get slices), %d workers: shared %.0f "
              "ops/s, affinity %.0f ops/s (%.2fx, %llu fallbacks)\n",
              max_workers, mixed_shared.ops_per_sec,
              mixed_affinity.ops_per_sec,
              mixed_shared.ops_per_sec > 0
                  ? mixed_affinity.ops_per_sec / mixed_shared.ops_per_sec
                  : 0,
              static_cast<unsigned long long>(mixed_affinity.fallbacks));

  const double affinity_scaling_4_vs_1 =
      rows[0].affinity.ops_per_sec > 0
          ? rows[2].affinity.ops_per_sec / rows[0].affinity.ops_per_sec
          : 0;
  const double affinity_vs_shared_at_4 =
      rows[2].shared.ops_per_sec > 0
          ? rows[2].affinity.ops_per_sec / rows[2].shared.ops_per_sec
          : 0;
  const char* note =
      hw <= 1 ? "single-CPU host: workers and clients timeshare one core, so "
                "a cross-core forward pays two context switches and can buy "
                "zero parallelism — multi-worker affinity ratios below 1.0 "
                "attribute that handoff cost, not the architecture. The "
                "meaningful single-host signals are the 1-worker cells "
                "(affinity == shared modulo noise: partitions=1 routes "
                "everything inline) and the unchanged shared-mode baseline. "
                "Rerun on a multicore host for the scaling claim (CI runs "
                "with IQ_BENCH_TPC_ASSERT=1)."
              : "";
  if (note[0] != '\0') std::printf("\n  note: %s\n", note);

  const char* out_path = std::getenv("IQ_BENCH_TPC_OUT");
  if (out_path == nullptr) out_path = "BENCH_tpc.json";
  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_tpc: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_tpc\",\n"
               "  \"keys\": %d,\n"
               "  \"value_bytes\": %d,\n"
               "  \"pipeline_depth\": %d,\n"
               "  \"window_seconds\": %.2f,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"iqget_hit_cells\": [\n",
               kKeys, kValueBytes, kPipelineDepth, seconds, hw);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"workers\": %d, \"shared_ops_per_sec\": %.0f, "
        "\"affinity_ops_per_sec\": %.0f, \"affinity_forwards\": %llu, "
        "\"affinity_inline\": %llu, \"affinity_fallbacks\": %llu}%s\n",
        r.workers, r.shared.ops_per_sec, r.affinity.ops_per_sec,
        static_cast<unsigned long long>(r.affinity.forwards),
        static_cast<unsigned long long>(r.affinity.inline_ops),
        static_cast<unsigned long long>(r.affinity.fallbacks),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"mixed_cells\": {\"workers\": %d, "
               "\"shared_ops_per_sec\": %.0f, "
               "\"affinity_ops_per_sec\": %.0f, "
               "\"affinity_fallbacks\": %llu},\n"
               "  \"affinity_scaling_4_workers_vs_1\": %.2f,\n"
               "  \"affinity_vs_shared_at_4_workers\": %.2f,\n"
               "  \"note\": \"%s\"\n"
               "}\n",
               max_workers, mixed_shared.ops_per_sec,
               mixed_affinity.ops_per_sec,
               static_cast<unsigned long long>(mixed_affinity.fallbacks),
               affinity_scaling_4_vs_1, affinity_vs_shared_at_4, note);
  std::fclose(f);
  std::printf("  wrote %s\n", out_path);

  if (assert_scaling) {
    if (hw <= 1) {
      std::printf("  assert: skipped (hardware_concurrency <= 1)\n");
      return 0;
    }
    // Conservative floors — the claim is "the architecture helps and
    // scales", not a specific speedup on unknown CI silicon.
    bool ok = true;
    if (affinity_scaling_4_vs_1 < 1.1) {
      std::fprintf(stderr,
                   "bench_tpc: FAIL affinity 4-vs-1 worker scaling %.2f < "
                   "1.1\n",
                   affinity_scaling_4_vs_1);
      ok = false;
    }
    if (affinity_vs_shared_at_4 < 0.8) {
      std::fprintf(stderr,
                   "bench_tpc: FAIL affinity/shared at 4 workers %.2f < "
                   "0.8\n",
                   affinity_vs_shared_at_4);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("  assert: ok (scaling %.2f, mode ratio %.2f)\n",
                affinity_scaling_4_vs_1, affinity_vs_shared_at_4);
  }
  return 0;
}
