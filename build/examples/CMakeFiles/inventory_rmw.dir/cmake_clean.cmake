file(REMOVE_RECURSE
  "CMakeFiles/inventory_rmw.dir/inventory_rmw.cpp.o"
  "CMakeFiles/inventory_rmw.dir/inventory_rmw.cpp.o.d"
  "inventory_rmw"
  "inventory_rmw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inventory_rmw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
