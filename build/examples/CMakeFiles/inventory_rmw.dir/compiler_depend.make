# Empty compiler generated dependencies file for inventory_rmw.
# This may be replaced when dependencies are built.
