file(REMOVE_RECURSE
  "CMakeFiles/race_anatomy.dir/race_anatomy.cpp.o"
  "CMakeFiles/race_anatomy.dir/race_anatomy.cpp.o.d"
  "race_anatomy"
  "race_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
