# Empty dependencies file for race_anatomy.
# This may be replaced when dependencies are built.
