file(REMOVE_RECURSE
  "CMakeFiles/social_site.dir/social_site.cpp.o"
  "CMakeFiles/social_site.dir/social_site.cpp.o.d"
  "social_site"
  "social_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
