# Empty compiler generated dependencies file for social_site.
# This may be replaced when dependencies are built.
