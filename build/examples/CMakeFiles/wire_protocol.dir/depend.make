# Empty dependencies file for wire_protocol.
# This may be replaced when dependencies are built.
