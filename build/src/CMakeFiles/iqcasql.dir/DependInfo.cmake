
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bg/actions.cpp" "src/CMakeFiles/iqcasql.dir/bg/actions.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/bg/actions.cpp.o.d"
  "/root/repo/src/bg/codec.cpp" "src/CMakeFiles/iqcasql.dir/bg/codec.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/bg/codec.cpp.o.d"
  "/root/repo/src/bg/social_graph.cpp" "src/CMakeFiles/iqcasql.dir/bg/social_graph.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/bg/social_graph.cpp.o.d"
  "/root/repo/src/bg/validation.cpp" "src/CMakeFiles/iqcasql.dir/bg/validation.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/bg/validation.cpp.o.d"
  "/root/repo/src/bg/workload.cpp" "src/CMakeFiles/iqcasql.dir/bg/workload.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/bg/workload.cpp.o.d"
  "/root/repo/src/casql/casql.cpp" "src/CMakeFiles/iqcasql.dir/casql/casql.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/casql/casql.cpp.o.d"
  "/root/repo/src/casql/multi_txn.cpp" "src/CMakeFiles/iqcasql.dir/casql/multi_txn.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/casql/multi_txn.cpp.o.d"
  "/root/repo/src/casql/query_cache.cpp" "src/CMakeFiles/iqcasql.dir/casql/query_cache.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/casql/query_cache.cpp.o.d"
  "/root/repo/src/casql/trigger_invalidation.cpp" "src/CMakeFiles/iqcasql.dir/casql/trigger_invalidation.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/casql/trigger_invalidation.cpp.o.d"
  "/root/repo/src/core/iq_client.cpp" "src/CMakeFiles/iqcasql.dir/core/iq_client.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/core/iq_client.cpp.o.d"
  "/root/repo/src/core/iq_server.cpp" "src/CMakeFiles/iqcasql.dir/core/iq_server.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/core/iq_server.cpp.o.d"
  "/root/repo/src/kvs/camp.cpp" "src/CMakeFiles/iqcasql.dir/kvs/camp.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/kvs/camp.cpp.o.d"
  "/root/repo/src/kvs/kvs.cpp" "src/CMakeFiles/iqcasql.dir/kvs/kvs.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/kvs/kvs.cpp.o.d"
  "/root/repo/src/leases/lease_table.cpp" "src/CMakeFiles/iqcasql.dir/leases/lease_table.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/leases/lease_table.cpp.o.d"
  "/root/repo/src/net/channel.cpp" "src/CMakeFiles/iqcasql.dir/net/channel.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/net/channel.cpp.o.d"
  "/root/repo/src/net/protocol.cpp" "src/CMakeFiles/iqcasql.dir/net/protocol.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/net/protocol.cpp.o.d"
  "/root/repo/src/net/server.cpp" "src/CMakeFiles/iqcasql.dir/net/server.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/net/server.cpp.o.d"
  "/root/repo/src/rdbms/database.cpp" "src/CMakeFiles/iqcasql.dir/rdbms/database.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/rdbms/database.cpp.o.d"
  "/root/repo/src/rdbms/sql_executor.cpp" "src/CMakeFiles/iqcasql.dir/rdbms/sql_executor.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/rdbms/sql_executor.cpp.o.d"
  "/root/repo/src/rdbms/sql_parser.cpp" "src/CMakeFiles/iqcasql.dir/rdbms/sql_parser.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/rdbms/sql_parser.cpp.o.d"
  "/root/repo/src/rdbms/table.cpp" "src/CMakeFiles/iqcasql.dir/rdbms/table.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/rdbms/table.cpp.o.d"
  "/root/repo/src/rdbms/value.cpp" "src/CMakeFiles/iqcasql.dir/rdbms/value.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/rdbms/value.cpp.o.d"
  "/root/repo/src/rdbms/wal.cpp" "src/CMakeFiles/iqcasql.dir/rdbms/wal.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/rdbms/wal.cpp.o.d"
  "/root/repo/src/sim/scenarios.cpp" "src/CMakeFiles/iqcasql.dir/sim/scenarios.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/sim/scenarios.cpp.o.d"
  "/root/repo/src/sim/step_scheduler.cpp" "src/CMakeFiles/iqcasql.dir/sim/step_scheduler.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/sim/step_scheduler.cpp.o.d"
  "/root/repo/src/util/backoff.cpp" "src/CMakeFiles/iqcasql.dir/util/backoff.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/util/backoff.cpp.o.d"
  "/root/repo/src/util/clock.cpp" "src/CMakeFiles/iqcasql.dir/util/clock.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/util/clock.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/iqcasql.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/iqcasql.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/worker_group.cpp" "src/CMakeFiles/iqcasql.dir/util/worker_group.cpp.o" "gcc" "src/CMakeFiles/iqcasql.dir/util/worker_group.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
