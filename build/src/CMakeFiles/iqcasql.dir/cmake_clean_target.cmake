file(REMOVE_RECURSE
  "libiqcasql.a"
)
