# Empty compiler generated dependencies file for iqcasql.
# This may be replaced when dependencies are built.
