# Empty dependencies file for iqcasql.
# This may be replaced when dependencies are built.
