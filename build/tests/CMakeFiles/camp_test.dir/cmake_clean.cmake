file(REMOVE_RECURSE
  "CMakeFiles/camp_test.dir/camp_test.cpp.o"
  "CMakeFiles/camp_test.dir/camp_test.cpp.o.d"
  "camp_test"
  "camp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
