# Empty dependencies file for camp_test.
# This may be replaced when dependencies are built.
