file(REMOVE_RECURSE
  "CMakeFiles/casql_test.dir/casql_test.cpp.o"
  "CMakeFiles/casql_test.dir/casql_test.cpp.o.d"
  "casql_test"
  "casql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
