# Empty compiler generated dependencies file for casql_test.
# This may be replaced when dependencies are built.
