file(REMOVE_RECURSE
  "CMakeFiles/iq_client_test.dir/iq_client_test.cpp.o"
  "CMakeFiles/iq_client_test.dir/iq_client_test.cpp.o.d"
  "iq_client_test"
  "iq_client_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
