file(REMOVE_RECURSE
  "CMakeFiles/iq_server_test.dir/iq_server_test.cpp.o"
  "CMakeFiles/iq_server_test.dir/iq_server_test.cpp.o.d"
  "iq_server_test"
  "iq_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
