# Empty dependencies file for iq_server_test.
# This may be replaced when dependencies are built.
