file(REMOVE_RECURSE
  "CMakeFiles/rdbms_table_test.dir/rdbms_table_test.cpp.o"
  "CMakeFiles/rdbms_table_test.dir/rdbms_table_test.cpp.o.d"
  "rdbms_table_test"
  "rdbms_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdbms_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
