# Empty compiler generated dependencies file for rdbms_table_test.
# This may be replaced when dependencies are built.
