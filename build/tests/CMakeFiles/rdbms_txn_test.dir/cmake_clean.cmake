file(REMOVE_RECURSE
  "CMakeFiles/rdbms_txn_test.dir/rdbms_txn_test.cpp.o"
  "CMakeFiles/rdbms_txn_test.dir/rdbms_txn_test.cpp.o.d"
  "rdbms_txn_test"
  "rdbms_txn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdbms_txn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
