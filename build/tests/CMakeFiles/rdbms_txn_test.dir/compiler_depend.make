# Empty compiler generated dependencies file for rdbms_txn_test.
# This may be replaced when dependencies are built.
