file(REMOVE_RECURSE
  "CMakeFiles/remote_stack_test.dir/remote_stack_test.cpp.o"
  "CMakeFiles/remote_stack_test.dir/remote_stack_test.cpp.o.d"
  "remote_stack_test"
  "remote_stack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
