# Empty compiler generated dependencies file for remote_stack_test.
# This may be replaced when dependencies are built.
