file(REMOVE_RECURSE
  "CMakeFiles/trigger_invalidation_test.dir/trigger_invalidation_test.cpp.o"
  "CMakeFiles/trigger_invalidation_test.dir/trigger_invalidation_test.cpp.o.d"
  "trigger_invalidation_test"
  "trigger_invalidation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trigger_invalidation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
