# Empty dependencies file for trigger_invalidation_test.
# This may be replaced when dependencies are built.
