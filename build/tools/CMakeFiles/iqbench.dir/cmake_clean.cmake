file(REMOVE_RECURSE
  "CMakeFiles/iqbench.dir/iqbench.cpp.o"
  "CMakeFiles/iqbench.dir/iqbench.cpp.o.d"
  "iqbench"
  "iqbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iqbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
