# Empty dependencies file for iqbench.
# This may be replaced when dependencies are built.
