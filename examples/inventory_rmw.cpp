// E-commerce inventory: the classic R-M-W workload where compare-and-swap
// is NOT enough (paper Figure 2). Concurrent orders decrement stock while
// clearance sessions write stock down by 10% - a non-commutative mix, so
// applying the modifications to the cache in a different order than the
// RDBMS serialized them yields a different value. cas keeps each cache
// update atomic but cannot fix the ORDER; the IQ client (QaRead/SaR)
// serializes the sessions and converges exactly.
//
// Build & run:  ./build/examples/inventory_rmw
#include <cstdio>

#include "core/iq_server.h"
#include "casql/casql.h"
#include "rdbms/sql.h"
#include "util/worker_group.h"

using namespace iq;

namespace {

constexpr int kItems = 16;
constexpr int kShoppers = 8;
constexpr int kOrdersEach = 60;

std::string StockKey(int item) { return "stock:" + std::to_string(item); }

casql::ComputeFn ComputeStock(int item) {
  return [item](sql::Transaction& txn) -> std::optional<std::string> {
    auto rows =
        sql::Query(txn, "SELECT stock FROM Inventory WHERE id = ?", {sql::V(item)});
    if (rows.rows.empty()) return std::nullopt;
    return std::to_string(*sql::AsInt(rows.rows[0][0]));
  };
}

/// A clearance: write the item's stock down by 10% (non-commutative with
/// the decrements of OrderSpec - order of application matters).
casql::WriteSpec WritedownSpec(int item) {
  casql::WriteSpec spec;
  spec.body = [item](sql::Transaction& txn) {
    return txn.UpdateByPk("Inventory", {sql::V(item)}, [](sql::Row& row) {
             auto v = *sql::AsInt(row[1]);
             row[1] = sql::V(v - v / 10);
           }) == sql::TxnResult::kOk;
  };
  casql::KeyUpdate u;
  u.key = StockKey(item);
  u.refresh = [](const std::optional<std::string>& old)
      -> std::optional<std::string> {
    if (!old) return std::nullopt;
    SleepFor(SteadyClock::Instance(), 50 * kNanosPerMicro);
    std::int64_t v = std::stoll(*old);
    return std::to_string(v - v / 10);
  };
  spec.updates.push_back(std::move(u));
  return spec;
}

/// One order: decrement the item's stock by `qty` in the database and
/// refresh the cached value with the same delta.
casql::WriteSpec OrderSpec(int item, int qty) {
  casql::WriteSpec spec;
  spec.body = [item, qty](sql::Transaction& txn) {
    static const sql::Statement stmt = sql::Prepare(
        "UPDATE Inventory SET stock = stock - ? WHERE id = ?");
    auto r = sql::Execute(txn, stmt, {sql::V(qty), sql::V(item)});
    return r.ok() && r.affected == 1;
  };
  casql::KeyUpdate u;
  u.key = StockKey(item);
  u.refresh = [qty](const std::optional<std::string>& old)
      -> std::optional<std::string> {
    if (!old) return std::nullopt;
    // Simulated application work between the R and the W widens the race
    // window that cas cannot close.
    SleepFor(SteadyClock::Instance(), 50 * kNanosPerMicro);
    return std::to_string(std::stoll(*old) - qty);
  };
  spec.updates.push_back(std::move(u));
  return spec;
}

struct RunResult {
  int mismatched_items = 0;
  std::int64_t total_db = 0;
  std::int64_t total_cache = 0;
};

RunResult RunStore(casql::Consistency consistency) {
  sql::Database db;
  db.CreateTable(sql::SchemaBuilder("Inventory")
                     .AddInt("id")
                     .AddInt("stock")
                     .PrimaryKey({"id"})
                     .Build());
  {
    auto txn = db.Begin();
    for (int i = 0; i < kItems; ++i) {
      txn->Insert("Inventory", {sql::V(i), sql::V(100000)});
    }
    txn->Commit();
  }

  IQServer server;
  casql::CasqlConfig cfg;
  cfg.technique = casql::Technique::kRefresh;
  cfg.consistency = consistency;
  cfg.client.backoff_base = 20 * kNanosPerMicro;
  cfg.client.backoff_cap = kNanosPerMilli;
  casql::CasqlSystem store(db, server, cfg);

  // Warm every stock key.
  {
    auto conn = store.Connect();
    for (int i = 0; i < kItems; ++i) conn->Read(StockKey(i), ComputeStock(i));
  }

  WorkerGroup shoppers;
  shoppers.Start(kShoppers, [&](int id, const std::atomic<bool>&) {
    Rng rng(static_cast<std::uint64_t>(id) + 77);
    auto conn = store.Connect();
    for (int i = 0; i < kOrdersEach; ++i) {
      int item = static_cast<int>(rng.NextUint64(kItems));
      if (i % 10 == 9) {
        conn->Write(WritedownSpec(item));  // the non-commutative ingredient
      } else {
        int qty = static_cast<int>(rng.NextUint64(3)) + 1;
        conn->Write(OrderSpec(item, qty));
      }
    }
  });
  shoppers.StopAndJoin();

  RunResult result;
  auto conn = store.Connect();
  auto txn = db.Begin();
  for (int i = 0; i < kItems; ++i) {
    std::int64_t db_stock =
        *sql::AsInt((*txn->SelectByPk("Inventory", {sql::V(i)}))[1]);
    auto cached = server.store().Get(StockKey(i));
    std::int64_t cache_stock = cached ? std::stoll(cached->value) : db_stock;
    result.total_db += db_stock;
    result.total_cache += cache_stock;
    if (db_stock != cache_stock) ++result.mismatched_items;
  }
  return result;
}

}  // namespace

int main() {
  std::printf("inventory torture: %d shoppers x %d orders over %d items\n\n",
              kShoppers, kOrdersEach, kItems);

  RunResult cas = RunStore(casql::Consistency::kCas);
  std::printf("cas client (Figure 10): %d/%d cached stocks diverged\n",
              cas.mismatched_items, kItems);
  std::printf("  database total stock: %lld, cache total: %lld (drift %lld)\n\n",
              static_cast<long long>(cas.total_db),
              static_cast<long long>(cas.total_cache),
              static_cast<long long>(cas.total_cache - cas.total_db));

  RunResult iq = RunStore(casql::Consistency::kIQ);
  std::printf("IQ client (QaRead/SaR): %d/%d cached stocks diverged\n",
              iq.mismatched_items, kItems);
  std::printf("  database total stock: %lld, cache total: %lld (drift %lld)\n",
              static_cast<long long>(iq.total_db),
              static_cast<long long>(iq.total_cache),
              static_cast<long long>(iq.total_cache - iq.total_db));
  return iq.mismatched_items == 0 ? 0 : 1;
}
