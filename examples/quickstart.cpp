// Quickstart: the IQ framework in ~80 lines.
//
// A CASQL deployment has three pieces:
//   1. an RDBMS            (iq::sql::Database - snapshot isolation),
//   2. an IQ-Server        (iq::IQServer - memcached + I/Q leases),
//   3. application sessions (iq::IQSession via iq::IQClient).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/iq_server.h"
#include "core/iq_client.h"
#include "rdbms/sql.h"

using namespace iq;

int main() {
  // -- 1. the database ----------------------------------------------------
  sql::Database db;
  db.CreateTable(sql::SchemaBuilder("Users")
                     .AddInt("id")
                     .AddText("name")
                     .AddInt("logins")
                     .PrimaryKey({"id"})
                     .Build());
  {
    auto txn = db.Begin();
    sql::Query(*txn, "INSERT INTO Users VALUES (1, 'alice', 0)");
    txn->Commit();
  }

  // -- 2. the cache server --------------------------------------------------
  IQServer server;
  IQClient client(server);

  // -- 3a. a read session: look up, recompute on miss, install under the
  //        I lease. Tokens and back-off live inside the session object.
  auto ReadUser = [&](const char* key) {
    auto session = client.NewSession();
    ClientGetResult got = session->Get(key);
    if (got.status == ClientGetResult::Status::kHit) {
      std::printf("  [read] cache hit:  %s = %s\n", key, got.value.c_str());
      return;
    }
    // Miss: this session alone recomputes (thundering-herd protection).
    auto txn = db.Begin();
    auto rows = sql::Query(*txn, "SELECT name, logins FROM Users WHERE id = 1");
    txn->Rollback();
    std::string value = std::get<std::string>(rows.rows[0][0]) + "|" +
                        std::to_string(*sql::AsInt(rows.rows[0][1]));
    if (got.status == ClientGetResult::Status::kMissRecompute) {
      session->Put(key, value);  // dropped automatically if a writer raced us
    }
    std::printf("  [read] recomputed: %s = %s\n", key, value.c_str());
  };

  // -- 3b. a write session: quarantine the key, mutate the database, then
  //        commit - which deletes the quarantined key and releases leases.
  auto LoginUser = [&](const char* key) {
    auto session = client.NewSession();
    session->Quarantine(key);  // Q lease: readers cannot install stale data
    auto txn = db.Begin();
    sql::Query(*txn, "UPDATE Users SET logins = logins + 1 WHERE id = 1");
    if (txn->Commit() != sql::TxnResult::kOk) {
      session->Abort();  // leases released, current value left intact
      return;
    }
    session->Commit();  // invalidated key deleted atomically w.r.t. leases
    std::printf("  [write] logins incremented; %s invalidated\n", key);
  };

  std::printf("cold read (computes from the RDBMS, installs under I lease):\n");
  ReadUser("user:1");
  std::printf("warm read (served by the cache):\n");
  ReadUser("user:1");
  std::printf("write session (invalidate technique):\n");
  LoginUser("user:1");
  std::printf("read after write (recomputes the fresh value):\n");
  ReadUser("user:1");

  auto stats = server.Stats();
  std::printf(
      "\nserver stats: %llu I leases granted, %llu Q leases, "
      "%llu stale installs dropped\n",
      static_cast<unsigned long long>(stats.i_granted),
      static_cast<unsigned long long>(stats.q_inv_granted),
      static_cast<unsigned long long>(stats.stale_sets_dropped));
  return 0;
}
