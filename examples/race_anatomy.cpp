// Anatomy of the paper's race conditions: executes each figure's exact
// interleaving (deterministically) with a step-by-step narration, first
// with the vulnerable client, then with the IQ framework.
//
// Build & run:  ./build/examples/race_anatomy
#include "core/iq_server.h"
#include <cstdio>

#include "sim/scenarios.h"

using namespace iq::sim;

namespace {

void Explain(const char* figure, const char* story,
             ScenarioResult (*run)(bool)) {
  std::printf("%s\n", figure);
  std::printf("  %s\n", story);
  ScenarioResult base = run(false);
  ScenarioResult iq = run(true);
  std::printf("  without IQ: database says '%s' but the cache serves '%s'%s\n",
              base.rdbms_value.c_str(), base.kvs_value.c_str(),
              base.Consistent() ? "" : "   <-- STALE");
  std::printf("  with IQ:    database says '%s' and the cache serves '%s'%s\n\n",
              iq.rdbms_value.c_str(), iq.kvs_value.c_str(),
              iq.Consistent() ? "   (consistent)" : "   <-- BUG");
}

}  // namespace

int main() {
  std::printf("How a cache goes stale - and how I/Q leases stop it\n");
  std::printf("====================================================\n\n");

  Explain(
      "Figure 2: compare-and-swap cannot order two write sessions",
      "S1 adds 50, S2 multiplies by 10. The RDBMS serializes S1 before S2\n"
      "  ((100+50)*10 = 1500), but S2's cache R-M-W lands first, so the\n"
      "  cache computes 100*10 then +50 = 1050. Each cas succeeded - order\n"
      "  is the problem, not atomicity. Q leases force S2 to wait or abort.",
      RunFigure2);

  Explain(
      "Figure 3: snapshot isolation vs trigger-based invalidation",
      "S1's trigger deletes the key inside its transaction. S2 misses,\n"
      "  queries the database - and snapshot isolation serves it the\n"
      "  PRE-update rows because S1 has not committed. S2 installs that\n"
      "  stale value after S1's delete. The Q lease makes S2 back off until\n"
      "  S1 commits and releases.",
      RunFigure3);

  Explain(
      "Figure 6: dirty read - refresh before the transaction aborts",
      "S1 writes the refreshed value to the cache, then its transaction\n"
      "  aborts. Readers consume data that never existed in the database.\n"
      "  Under IQ, SaR happens only after commit; Abort() releases the\n"
      "  Q lease leaving the old value.",
      RunFigure6);

  Explain(
      "Figure 7: a reader overwrites a delta",
      "S2 misses and computes 'A' from a pre-commit snapshot. S1 commits\n"
      "  'AB' and appends 'B' to the (non-resident) key - a no-op. S2 then\n"
      "  installs 'A': the append is lost. IQ-delta voids S2's I lease, so\n"
      "  its install is dropped.",
      RunFigure7);

  Explain(
      "Figure 8: the same delta lands twice",
      "S1 commits 'AB' and only then appends 'B' to the cache. Meanwhile S2\n"
      "  recomputed 'AB' from the committed data and installed it - so the\n"
      "  append makes 'ABB'. With IQ the delta is buffered under a Q lease\n"
      "  taken BEFORE commit, and S2 backs off until it is applied.",
      RunFigure8);

  return 0;
}
