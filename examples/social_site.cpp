// A miniature social networking site on the CASQL layer - the workload the
// paper's introduction motivates. Members view profiles (read sessions,
// cached) and extend/accept friend invitations (write sessions that keep
// the cached profiles consistent via the refresh technique under IQ).
//
// Build & run:  ./build/examples/social_site
#include <cstdio>

#include "core/iq_server.h"
#include "bg/actions.h"
#include "bg/social_graph.h"
#include "bg/workload.h"
#include "casql/casql.h"

using namespace iq;

namespace {

void ShowProfile(IQServer& server, bg::MemberId id) {
  auto item = server.store().Get(bg::ProfileKey(id));
  if (!item) {
    std::printf("  member %lld: (not cached)\n", static_cast<long long>(id));
    return;
  }
  auto p = bg::DecodeProfile(item->value);
  std::printf("  member %lld: %s - %lld friends, %lld pending invitations\n",
              static_cast<long long>(id), p->name.c_str(),
              static_cast<long long>(p->friend_count),
              static_cast<long long>(p->pending_count));
}

}  // namespace

int main() {
  // A small town: 100 members, each starting with 6 ring friends.
  bg::GraphConfig town{100, 6, 3, 2};
  sql::Database db;
  bg::CreateBgTables(db);
  bg::LoadGraph(db, town);
  bg::ActionPools pools;
  pools.SeedFromGraph(town);

  IQServer server;
  casql::CasqlConfig cfg;
  cfg.technique = casql::Technique::kRefresh;  // update cached values in place
  cfg.consistency = casql::Consistency::kIQ;
  casql::CasqlSystem site(db, server, cfg);

  bg::BGActions user(site, pools, town, nullptr, Rng(2024));

  std::printf("-- Alice (member 10) browses some profiles --\n");
  user.ViewProfile(10);
  user.ViewProfile(42);
  ShowProfile(server, 10);
  ShowProfile(server, 42);

  std::printf("\n-- member 10 invites member 42 to be friends --\n");
  if (user.InviteFriend(10, 42)) {
    std::printf("  invitation sent.\n");
  }
  ShowProfile(server, 42);  // pending count refreshed in the cache

  std::printf("\n-- member 42 checks their invitations and accepts --\n");
  user.ViewFriendRequests(42);
  if (user.AcceptFriend()) {
    std::printf("  accepted!\n");
  }
  ShowProfile(server, 10);
  ShowProfile(server, 42);

  std::printf("\n-- their friend lists agree with the database --\n");
  user.ListFriends(10);
  auto cached = server.store().Get(bg::FriendsKey(10));
  std::printf("  cached friends of 10: %s\n", cached->value.c_str());
  auto txn = db.Begin();
  auto rows = txn->SelectWhereEq("Friendship", "inviterID", sql::V(10));
  std::size_t confirmed = 0;
  for (const auto& row : rows) {
    if (*sql::AsInt(row[2]) == bg::kConfirmed) ++confirmed;
  }
  std::printf("  confirmed rows in the RDBMS: %zu\n", confirmed);
  std::printf("  cached set size:             %zu\n",
              bg::DecodeIdList(cached->value).size());

  std::printf("\n-- a short concurrent rush hour, validated --\n");
  bg::WorkloadConfig wl;
  wl.mix = bg::HighWriteMix();
  wl.threads = 8;
  wl.duration = 500 * kNanosPerMilli;
  wl.seed_validator_from_db = true;
  auto result = bg::RunWorkload(site, pools, town, wl);
  std::printf("  %llu actions at %.0f actions/sec; %s\n",
              static_cast<unsigned long long>(result.actions),
              result.Throughput(), result.latency.Summary().c_str());
  std::printf("  unpredictable reads: %llu of %llu (%.2f%%)\n",
              static_cast<unsigned long long>(result.validation.unpredictable),
              static_cast<unsigned long long>(result.validation.reads_checked),
              result.validation.StalePercent());
  return 0;
}
