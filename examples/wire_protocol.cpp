// The IQ command set over the memcached text protocol: what actually goes
// on the wire between an application (IQ-Client / Whalin) and the cache
// server (IQ-Twemcached). Useful for eyeballing the protocol and for
// writing clients in other languages.
//
// Build & run:  ./build/examples/wire_protocol
#include "core/iq_server.h"
#include <cstdio>

#include "net/channel.h"

using namespace iq;
using namespace iq::net;

namespace {

/// A channel wrapper that prints every exchange.
class TracingChannel final : public Channel {
 public:
  explicit TracingChannel(Channel& inner) : inner_(inner) {}

  bool RoundTrip(const std::string& request_bytes,
                 std::string* reply) override {
    bool ok = inner_.RoundTrip(request_bytes, reply);
    Show(">", request_bytes);
    Show("<", ok ? *reply : "(transport failure)");
    return ok;
  }

 private:
  static void Show(const char* dir, const std::string& bytes) {
    std::string printable;
    for (char c : bytes) {
      if (c == '\r') {
        printable += "\\r";
      } else if (c == '\n') {
        printable += "\\n  ";
      } else {
        printable += c;
      }
    }
    while (printable.size() >= 2 && printable.ends_with("  ")) {
      printable.pop_back();
    }
    std::printf("  %s %s\n", dir, printable.c_str());
  }

  Channel& inner_;
};

}  // namespace

int main() {
  IQServer server;
  LoopbackChannel loopback(server);
  TracingChannel wire(loopback);
  RemoteCacheClient client(wire);

  std::printf("-- read session: miss, I lease, recompute, install --\n");
  SessionId reader = client.GenID();
  GetReply miss = client.IQget("profile:1", reader);
  client.IQset("profile:1", "alice|7|0", miss.token);
  client.IQget("profile:1", reader);

  std::printf("\n-- write session (refresh): QaRead ... SaR --\n");
  SessionId writer = client.GenID();
  QaReadReply q = client.QaRead("profile:1", writer);
  client.SaR("profile:1", std::optional<std::string>("alice|7|1"), q.token);

  std::printf("\n-- write session (invalidate): QaReg ... DaR --\n");
  SessionId tid = client.GenID();
  client.QaReg(tid, "profile:1");
  client.DaR(tid);

  std::printf("\n-- write session (incremental): IQ-delta ... commit --\n");
  client.Set("pending:1", "3");
  SessionId delta_tid = client.GenID();
  client.IQDelta(delta_tid, "pending:1", DeltaOp{DeltaOp::Kind::kIncr, {}, 1});
  client.Commit(delta_tid);
  client.Get("pending:1");

  std::printf("\n-- server statistics --\n");
  std::string stats = client.Stats();
  std::printf("%s", stats.c_str());
  return 0;
}
