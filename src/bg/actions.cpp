#include "bg/actions.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

#include "rdbms/sql.h"

namespace iq::bg {
namespace {

// Validated-entity identifiers.
EntityId PcEntity(MemberId id) { return "pc:" + std::to_string(id); }
EntityId FcEntity(MemberId id) { return "fc:" + std::to_string(id); }
EntityId FriendsEntity(MemberId id) { return "friends:" + std::to_string(id); }
EntityId PendingEntity(MemberId id) { return "pending:" + std::to_string(id); }

/// Sentinel counter logged when a cached value fails to decode: it lies
/// outside every legal range, so the read counts as unpredictable.
constexpr std::int64_t kCorrupt = std::numeric_limits<std::int64_t>::min();

std::optional<std::int64_t> ParseCounter(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno != 0) return std::nullopt;
  return v;
}

// ---- compute-from-RDBMS functions (cache-miss paths) ------------------------

casql::ComputeFn ComputeProfile(MemberId id) {
  return [id](sql::Transaction& txn) -> std::optional<std::string> {
    static const sql::Statement stmt = sql::Prepare(
        "SELECT name, friendCount, pendingCount FROM Users WHERE userid = ?");
    auto r = sql::Execute(txn, stmt, {sql::V(id)});
    if (r.rows.empty()) return std::nullopt;
    ProfileValue p;
    p.name = *sql::AsText(r.rows[0][0]);
    p.friend_count = *sql::AsInt(r.rows[0][1]);
    p.pending_count = *sql::AsInt(r.rows[0][2]);
    return EncodeProfile(p);
  };
}

casql::ComputeFn ComputeFriends(MemberId id) {
  return [id](sql::Transaction& txn) -> std::optional<std::string> {
    static const sql::Statement stmt = sql::Prepare(
        "SELECT inviteeID FROM Friendship WHERE inviterID = ? AND status = 2");
    auto r = sql::Execute(txn, stmt, {sql::V(id)});
    std::set<MemberId> ids;
    for (const auto& row : r.rows) ids.insert(*sql::AsInt(row[0]));
    return EncodeIdList(ids);
  };
}

casql::ComputeFn ComputePending(MemberId id) {
  return [id](sql::Transaction& txn) -> std::optional<std::string> {
    static const sql::Statement stmt = sql::Prepare(
        "SELECT inviterID FROM Friendship WHERE inviteeID = ? AND status = 1");
    auto r = sql::Execute(txn, stmt, {sql::V(id)});
    std::set<MemberId> ids;
    for (const auto& row : r.rows) ids.insert(*sql::AsInt(row[0]));
    return EncodeIdList(ids);
  };
}

casql::ComputeFn ComputePendingCount(MemberId id) {
  return [id](sql::Transaction& txn) -> std::optional<std::string> {
    static const sql::Statement stmt =
        sql::Prepare("SELECT pendingCount FROM Users WHERE userid = ?");
    auto r = sql::Execute(txn, stmt, {sql::V(id)});
    if (r.rows.empty()) return std::nullopt;
    return std::to_string(*sql::AsInt(r.rows[0][0]));
  };
}

casql::ComputeFn ComputeFriendCount(MemberId id) {
  return [id](sql::Transaction& txn) -> std::optional<std::string> {
    static const sql::Statement stmt =
        sql::Prepare("SELECT friendCount FROM Users WHERE userid = ?");
    auto r = sql::Execute(txn, stmt, {sql::V(id)});
    if (r.rows.empty()) return std::nullopt;
    return std::to_string(*sql::AsInt(r.rows[0][0]));
  };
}

// ---- refresh helpers ----------------------------------------------------------

/// Refresh a cached profile by adjusting its counters; skips on KVS miss or
/// corrupt value (paper Section 4.2: the application may skip).
casql::KeyUpdate ProfileAdjust(MemberId id, std::int64_t d_friends,
                               std::int64_t d_pending) {
  casql::KeyUpdate u;
  u.key = ProfileKey(id);
  u.refresh = [d_friends, d_pending](const std::optional<std::string>& old)
      -> std::optional<std::string> {
    if (!old) return std::nullopt;
    auto p = DecodeProfile(*old);
    if (!p) return std::nullopt;
    p->friend_count += d_friends;
    p->pending_count += d_pending;
    return EncodeProfile(*p);
  };
  return u;
}

casql::KeyUpdate ListAdjust(std::string key, MemberId element, bool add) {
  casql::KeyUpdate u;
  u.key = std::move(key);
  u.refresh = [element, add](const std::optional<std::string>& old)
      -> std::optional<std::string> {
    if (!old) return std::nullopt;
    return add ? IdListAdd(*old, element) : IdListRemove(*old, element);
  };
  return u;
}

casql::KeyUpdate CounterDelta(std::string key, std::int64_t delta) {
  casql::KeyUpdate u;
  u.key = std::move(key);
  u.delta = delta >= 0
                ? DeltaOp{DeltaOp::Kind::kIncr, {}, static_cast<std::uint64_t>(delta)}
                : DeltaOp{DeltaOp::Kind::kDecr, {},
                          static_cast<std::uint64_t>(-delta)};
  return u;
}

casql::KeyUpdate Invalidate(std::string key) {
  casql::KeyUpdate u;
  u.key = std::move(key);
  u.invalidate = true;
  return u;
}

}  // namespace

const char* ToString(ActionKind a) {
  switch (a) {
    case ActionKind::kViewProfile: return "ViewProfile";
    case ActionKind::kListFriends: return "ListFriends";
    case ActionKind::kViewFriendRequests: return "ViewFriendRequests";
    case ActionKind::kInviteFriend: return "InviteFriend";
    case ActionKind::kAcceptFriend: return "AcceptFriend";
    case ActionKind::kRejectFriend: return "RejectFriend";
    case ActionKind::kThawFriendship: return "ThawFriendship";
    case ActionKind::kViewTopKResources: return "ViewTopKResources";
    case ActionKind::kViewComments: return "ViewComments";
  }
  return "?";
}

BGActions::BGActions(casql::CasqlSystem& system, ActionPools& pools,
                     const GraphConfig& graph, ThreadLog* log, Rng rng)
    : system_(system),
      pools_(pools),
      graph_(graph),
      log_(log),
      rng_(rng),
      conn_(system.Connect()) {}

Nanos BGActions::Now() const { return system_.backend().clock().Now(); }

void BGActions::RecordWrite(const casql::WriteOutcome& res) {
  ++restart_stats_.write_sessions;
  if (res.q_restarts > 0) {
    ++restart_stats_.restarted_sessions;
    restart_stats_.total_q_restarts += static_cast<std::uint64_t>(res.q_restarts);
    restart_stats_.max_q_restarts =
        std::max(restart_stats_.max_q_restarts,
                 static_cast<std::uint64_t>(res.q_restarts));
  }
  restart_stats_.total_rdbms_restarts +=
      static_cast<std::uint64_t>(res.rdbms_restarts);
}

bool BGActions::Run(ActionKind kind, MemberId member) {
  switch (kind) {
    case ActionKind::kViewProfile:
      return ViewProfile(member);
    case ActionKind::kListFriends:
      return ListFriends(member);
    case ActionKind::kViewFriendRequests:
      return ViewFriendRequests(member);
    case ActionKind::kInviteFriend: {
      MemberId other =
          static_cast<MemberId>(rng_.NextUint64(
              static_cast<std::uint64_t>(graph_.members)));
      if (other == member) other = (other + 1) % graph_.members;
      return InviteFriend(member, other);
    }
    case ActionKind::kAcceptFriend:
      return AcceptFriend();
    case ActionKind::kRejectFriend:
      return RejectFriend();
    case ActionKind::kThawFriendship:
      return ThawFriendship();
    case ActionKind::kViewTopKResources:
      return ViewTopKResources(member);
    case ActionKind::kViewComments: {
      std::int64_t total =
          graph_.members * static_cast<std::int64_t>(graph_.resources_per_member);
      if (total == 0) return false;
      return ViewComments(
          static_cast<std::int64_t>(rng_.NextUint64(
              static_cast<std::uint64_t>(total))));
    }
  }
  return false;
}

bool BGActions::ReadCounterKey(const std::string& key, const EntityId& entity,
                               const casql::ComputeFn& compute) {
  Nanos start = Now();
  auto out = conn_->Read(key, compute);
  Nanos end = Now();
  if (!out.value) return false;
  if (log_ != nullptr) {
    auto v = ParseCounter(*out.value);
    log_->LogCounterRead(entity, start, end, v ? *v : kCorrupt);
  }
  return true;
}

bool BGActions::ViewProfile(MemberId id) {
  if (incremental()) {
    bool a = ReadCounterKey(PendingCountKey(id), PcEntity(id),
                            ComputePendingCount(id));
    bool b = ReadCounterKey(FriendCountKey(id), FcEntity(id),
                            ComputeFriendCount(id));
    return a && b;
  }
  Nanos start = Now();
  auto out = conn_->Read(ProfileKey(id), ComputeProfile(id));
  Nanos end = Now();
  if (!out.value) return false;
  if (log_ != nullptr) {
    auto p = DecodeProfile(*out.value);
    log_->LogCounterRead(PcEntity(id), start, end,
                         p ? p->pending_count : kCorrupt);
    log_->LogCounterRead(FcEntity(id), start, end,
                         p ? p->friend_count : kCorrupt);
  }
  return true;
}

bool BGActions::ListFriends(MemberId id) {
  Nanos start = Now();
  auto out = conn_->Read(FriendsKey(id), ComputeFriends(id));
  Nanos end = Now();
  if (!out.value) return false;
  if (log_ != nullptr) {
    log_->LogSetRead(FriendsEntity(id), start, end, DecodeIdList(*out.value));
  }
  return true;
}

bool BGActions::ViewFriendRequests(MemberId id) {
  Nanos start = Now();
  auto out = conn_->Read(PendingKey(id), ComputePending(id));
  Nanos end = Now();
  if (!out.value) return false;
  if (log_ != nullptr) {
    log_->LogSetRead(PendingEntity(id), start, end, DecodeIdList(*out.value));
  }
  return true;
}

bool BGActions::InviteFriend(MemberId inviter, MemberId invitee) {
  if (inviter == invitee) return false;
  casql::WriteSpec spec;
  spec.body = [inviter, invitee](sql::Transaction& txn) {
    static const sql::Statement ins = sql::Prepare(
        "INSERT INTO Friendship (inviterID, inviteeID, status) VALUES (?, ?, 1)");
    static const sql::Statement upd = sql::Prepare(
        "UPDATE Users SET pendingCount = pendingCount + 1 WHERE userid = ?");
    auto r = sql::Execute(txn, ins, {sql::V(inviter), sql::V(invitee)});
    if (!r.ok()) return false;  // duplicate invite or existing friendship
    auto u = sql::Execute(txn, upd, {sql::V(invitee)});
    return u.ok() && u.affected == 1;
  };
  if (incremental()) {
    spec.updates.push_back(CounterDelta(PendingCountKey(invitee), +1));
    spec.updates.push_back(Invalidate(PendingKey(invitee)));
  } else {
    spec.updates.push_back(ProfileAdjust(invitee, 0, +1));
    spec.updates.push_back(ListAdjust(PendingKey(invitee), inviter, true));
  }

  Nanos start = Now();
  auto res = conn_->Write(spec);
  Nanos end = Now();
  RecordWrite(res);
  if (!res.committed) return false;
  pools_.pending.Add(inviter, invitee);
  if (log_ != nullptr) {
    log_->LogCounterWrite(PcEntity(invitee), start, end, +1);
    log_->LogSetWrite(PendingEntity(invitee), start, end, true, inviter);
  }
  return true;
}

bool BGActions::AcceptFriend() {
  auto pair = pools_.pending.TakeRandom(rng_);
  if (!pair) return false;
  auto [inviter, invitee] = *pair;
  casql::WriteSpec spec;
  spec.body = [inviter, invitee](sql::Transaction& txn) {
    static const sql::Statement upd_status = sql::Prepare(
        "UPDATE Friendship SET status = 2 "
        "WHERE inviterID = ? AND inviteeID = ? AND status = 1");
    static const sql::Statement ins = sql::Prepare(
        "INSERT INTO Friendship (inviterID, inviteeID, status) VALUES (?, ?, 2)");
    static const sql::Statement dec_pending = sql::Prepare(
        "UPDATE Users SET pendingCount = pendingCount - 1 WHERE userid = ?");
    static const sql::Statement inc_friends = sql::Prepare(
        "UPDATE Users SET friendCount = friendCount + 1 WHERE userid = ?");
    auto r = sql::Execute(txn, upd_status, {sql::V(inviter), sql::V(invitee)});
    if (!r.ok() || r.affected != 1) return false;
    if (!sql::Execute(txn, ins, {sql::V(invitee), sql::V(inviter)}).ok()) {
      return false;
    }
    if (!sql::Execute(txn, dec_pending, {sql::V(invitee)}).ok()) return false;
    if (!sql::Execute(txn, inc_friends, {sql::V(inviter)}).ok()) return false;
    return sql::Execute(txn, inc_friends, {sql::V(invitee)}).ok();
  };
  if (incremental()) {
    spec.updates.push_back(CounterDelta(FriendCountKey(inviter), +1));
    spec.updates.push_back(CounterDelta(FriendCountKey(invitee), +1));
    spec.updates.push_back(CounterDelta(PendingCountKey(invitee), -1));
    spec.updates.push_back(Invalidate(FriendsKey(inviter)));
    spec.updates.push_back(Invalidate(FriendsKey(invitee)));
    spec.updates.push_back(Invalidate(PendingKey(invitee)));
  } else {
    spec.updates.push_back(ProfileAdjust(inviter, +1, 0));
    spec.updates.push_back(ProfileAdjust(invitee, +1, -1));
    spec.updates.push_back(ListAdjust(FriendsKey(inviter), invitee, true));
    spec.updates.push_back(ListAdjust(FriendsKey(invitee), inviter, true));
    spec.updates.push_back(ListAdjust(PendingKey(invitee), inviter, false));
  }

  Nanos start = Now();
  auto res = conn_->Write(spec);
  Nanos end = Now();
  RecordWrite(res);
  if (!res.committed) return false;
  pools_.confirmed.Add(inviter, invitee);
  if (log_ != nullptr) {
    log_->LogCounterWrite(FcEntity(inviter), start, end, +1);
    log_->LogCounterWrite(FcEntity(invitee), start, end, +1);
    log_->LogCounterWrite(PcEntity(invitee), start, end, -1);
    log_->LogSetWrite(FriendsEntity(inviter), start, end, true, invitee);
    log_->LogSetWrite(FriendsEntity(invitee), start, end, true, inviter);
    log_->LogSetWrite(PendingEntity(invitee), start, end, false, inviter);
  }
  return true;
}

bool BGActions::RejectFriend() {
  auto pair = pools_.pending.TakeRandom(rng_);
  if (!pair) return false;
  auto [inviter, invitee] = *pair;
  casql::WriteSpec spec;
  spec.body = [inviter, invitee](sql::Transaction& txn) {
    static const sql::Statement del = sql::Prepare(
        "DELETE FROM Friendship "
        "WHERE inviterID = ? AND inviteeID = ? AND status = 1");
    static const sql::Statement dec_pending = sql::Prepare(
        "UPDATE Users SET pendingCount = pendingCount - 1 WHERE userid = ?");
    auto r = sql::Execute(txn, del, {sql::V(inviter), sql::V(invitee)});
    if (!r.ok() || r.affected != 1) return false;
    return sql::Execute(txn, dec_pending, {sql::V(invitee)}).ok();
  };
  if (incremental()) {
    spec.updates.push_back(CounterDelta(PendingCountKey(invitee), -1));
    spec.updates.push_back(Invalidate(PendingKey(invitee)));
  } else {
    spec.updates.push_back(ProfileAdjust(invitee, 0, -1));
    spec.updates.push_back(ListAdjust(PendingKey(invitee), inviter, false));
  }

  Nanos start = Now();
  auto res = conn_->Write(spec);
  Nanos end = Now();
  RecordWrite(res);
  if (!res.committed) return false;
  if (log_ != nullptr) {
    log_->LogCounterWrite(PcEntity(invitee), start, end, -1);
    log_->LogSetWrite(PendingEntity(invitee), start, end, false, inviter);
  }
  return true;
}

bool BGActions::ThawFriendship() {
  auto pair = pools_.confirmed.TakeRandom(rng_);
  if (!pair) return false;
  auto [a, b] = *pair;
  casql::WriteSpec spec;
  spec.body = [a, b](sql::Transaction& txn) {
    static const sql::Statement del = sql::Prepare(
        "DELETE FROM Friendship WHERE inviterID = ? AND inviteeID = ?");
    static const sql::Statement dec_friends = sql::Prepare(
        "UPDATE Users SET friendCount = friendCount - 1 WHERE userid = ?");
    auto r1 = sql::Execute(txn, del, {sql::V(a), sql::V(b)});
    if (!r1.ok() || r1.affected != 1) return false;
    auto r2 = sql::Execute(txn, del, {sql::V(b), sql::V(a)});
    if (!r2.ok() || r2.affected != 1) return false;
    if (!sql::Execute(txn, dec_friends, {sql::V(a)}).ok()) return false;
    return sql::Execute(txn, dec_friends, {sql::V(b)}).ok();
  };
  if (incremental()) {
    spec.updates.push_back(CounterDelta(FriendCountKey(a), -1));
    spec.updates.push_back(CounterDelta(FriendCountKey(b), -1));
    spec.updates.push_back(Invalidate(FriendsKey(a)));
    spec.updates.push_back(Invalidate(FriendsKey(b)));
  } else {
    spec.updates.push_back(ProfileAdjust(a, -1, 0));
    spec.updates.push_back(ProfileAdjust(b, -1, 0));
    spec.updates.push_back(ListAdjust(FriendsKey(a), b, false));
    spec.updates.push_back(ListAdjust(FriendsKey(b), a, false));
  }

  Nanos start = Now();
  auto res = conn_->Write(spec);
  Nanos end = Now();
  RecordWrite(res);
  if (!res.committed) return false;
  if (log_ != nullptr) {
    log_->LogCounterWrite(FcEntity(a), start, end, -1);
    log_->LogCounterWrite(FcEntity(b), start, end, -1);
    log_->LogSetWrite(FriendsEntity(a), start, end, false, b);
    log_->LogSetWrite(FriendsEntity(b), start, end, false, a);
  }
  return true;
}

bool BGActions::ViewTopKResources(MemberId id, int k) {
  auto compute = [id, k](sql::Transaction& txn) -> std::optional<std::string> {
    static const sql::Statement stmt =
        sql::Prepare("SELECT rid FROM Resources WHERE wallUserID = ?");
    auto r = sql::Execute(txn, stmt, {sql::V(id)});
    std::set<MemberId> ids;
    for (const auto& row : r.rows) ids.insert(*sql::AsInt(row[0]));
    // "Top-K": highest k resource ids on the wall.
    std::set<MemberId> top;
    for (auto it = ids.rbegin(); it != ids.rend() && static_cast<int>(top.size()) < k;
         ++it) {
      top.insert(*it);
    }
    return EncodeIdList(top);
  };
  auto out = conn_->Read(TopKKey(id), compute);
  return out.value.has_value();
}

bool BGActions::ViewComments(std::int64_t resource_id) {
  auto compute = [resource_id](sql::Transaction& txn) -> std::optional<std::string> {
    static const sql::Statement stmt =
        sql::Prepare("SELECT mid FROM Manipulation WHERE rid = ?");
    auto r = sql::Execute(txn, stmt, {sql::V(resource_id)});
    std::set<MemberId> ids;
    for (const auto& row : r.rows) ids.insert(*sql::AsInt(row[0]));
    return EncodeIdList(ids);
  };
  auto out = conn_->Read(CommentsKey(resource_id), compute);
  return out.value.has_value();
}

}  // namespace iq::bg
