// The nine BG actions (Table 5), each implemented as a CASQL session per
// Section 6.1's description, instrumented for validation.
//
// Read actions log what they returned to the "user" together with the
// session's wall-clock interval; write actions log the change they applied.
// The Validator then flags unpredictable reads offline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "bg/social_graph.h"
#include "bg/validation.h"
#include "casql/casql.h"
#include "util/rng.h"

namespace iq::bg {

enum class ActionKind {
  kViewProfile,
  kListFriends,
  kViewFriendRequests,
  kInviteFriend,
  kAcceptFriend,
  kRejectFriend,
  kThawFriendship,
  kViewTopKResources,
  kViewComments,
};

const char* ToString(ActionKind a);

/// Per-worker executor of BG actions. Owns one CASQL connection. Not
/// thread-safe; construct one per worker thread.
class BGActions {
 public:
  BGActions(casql::CasqlSystem& system, ActionPools& pools,
            const GraphConfig& graph, ThreadLog* log, Rng rng);

  /// Dispatch by kind; member/resource targets are drawn internally.
  /// Returns false when the action could not run (empty pool, precondition
  /// lost, restart budget exhausted).
  bool Run(ActionKind kind, MemberId member);

  bool ViewProfile(MemberId id);
  bool ListFriends(MemberId id);
  bool ViewFriendRequests(MemberId id);
  bool InviteFriend(MemberId inviter, MemberId invitee);
  bool AcceptFriend();   // consumes a pending pair
  bool RejectFriend();   // consumes a pending pair
  bool ThawFriendship(); // consumes a confirmed pair
  bool ViewTopKResources(MemberId id, int k = 5);
  bool ViewComments(std::int64_t resource_id);

  /// Per-write-session restart statistics (drives Table 6: "average and
  /// maximum number of times an aborted session restarts").
  struct RestartStats {
    std::uint64_t write_sessions = 0;
    std::uint64_t restarted_sessions = 0;  // sessions with >= 1 Q restart
    std::uint64_t total_q_restarts = 0;
    std::uint64_t max_q_restarts = 0;
    std::uint64_t total_rdbms_restarts = 0;

    void Merge(const RestartStats& o) {
      write_sessions += o.write_sessions;
      restarted_sessions += o.restarted_sessions;
      total_q_restarts += o.total_q_restarts;
      max_q_restarts = std::max(max_q_restarts, o.max_q_restarts);
      total_rdbms_restarts += o.total_rdbms_restarts;
    }
    /// Mean restarts among sessions that restarted at least once.
    double AvgRestarts() const {
      return restarted_sessions == 0
                 ? 0.0
                 : static_cast<double>(total_q_restarts) /
                       static_cast<double>(restarted_sessions);
    }
  };

  const RestartStats& restart_stats() const { return restart_stats_; }

 private:
  bool incremental() const {
    return system_.config().technique == casql::Technique::kIncremental;
  }
  Nanos Now() const;

  /// Read one numeric counter key (incremental mode).
  bool ReadCounterKey(const std::string& key, const EntityId& entity,
                      const casql::ComputeFn& compute);

  casql::CasqlSystem& system_;
  ActionPools& pools_;
  GraphConfig graph_;
  ThreadLog* log_;  // may be null (validation off)
  Rng rng_;
  void RecordWrite(const casql::WriteOutcome& res);

  std::unique_ptr<casql::CasqlConnection> conn_;
  RestartStats restart_stats_;
};

}  // namespace iq::bg
