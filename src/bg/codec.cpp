#include "bg/codec.h"

#include <charconv>

namespace iq::bg {
namespace {

std::optional<std::int64_t> ParseInt(std::string_view s) {
  std::int64_t out = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return out;
}

}  // namespace

std::string EncodeProfile(const ProfileValue& p) {
  return p.name + "|" + std::to_string(p.friend_count) + "|" +
         std::to_string(p.pending_count);
}

std::optional<ProfileValue> DecodeProfile(const std::string& raw) {
  auto first = raw.find('|');
  if (first == std::string::npos) return std::nullopt;
  auto second = raw.find('|', first + 1);
  if (second == std::string::npos) return std::nullopt;
  auto fc = ParseInt(std::string_view(raw).substr(first + 1, second - first - 1));
  auto pc = ParseInt(std::string_view(raw).substr(second + 1));
  if (!fc || !pc) return std::nullopt;
  ProfileValue p;
  p.name = raw.substr(0, first);
  p.friend_count = *fc;
  p.pending_count = *pc;
  return p;
}

std::string EncodeIdList(const std::set<MemberId>& ids) {
  std::string out;
  for (MemberId id : ids) {
    if (!out.empty()) out += ',';
    out += std::to_string(id);
  }
  return out;
}

std::set<MemberId> DecodeIdList(const std::string& raw) {
  std::set<MemberId> ids;
  std::size_t pos = 0;
  while (pos < raw.size()) {
    std::size_t next = raw.find(',', pos);
    if (next == std::string::npos) next = raw.size();
    auto id = ParseInt(std::string_view(raw).substr(pos, next - pos));
    if (id) ids.insert(*id);
    pos = next + 1;
  }
  return ids;
}

std::string IdListAdd(const std::string& raw, MemberId id) {
  auto ids = DecodeIdList(raw);
  ids.insert(id);
  return EncodeIdList(ids);
}

std::string IdListRemove(const std::string& raw, MemberId id) {
  auto ids = DecodeIdList(raw);
  ids.erase(id);
  return EncodeIdList(ids);
}

std::string ProfileKey(MemberId id) { return "Profile:" + std::to_string(id); }
std::string FriendsKey(MemberId id) { return "Friends:" + std::to_string(id); }
std::string PendingKey(MemberId id) { return "Pending:" + std::to_string(id); }
std::string TopKKey(MemberId id) { return "TopK:" + std::to_string(id); }
std::string CommentsKey(std::int64_t resource_id) {
  return "Comments:" + std::to_string(resource_id);
}
std::string PendingCountKey(MemberId id) { return "PC:" + std::to_string(id); }
std::string FriendCountKey(MemberId id) { return "FC:" + std::to_string(id); }

}  // namespace iq::bg
