// Value codecs for BG's key-value pairs.
//
// Key scheme (one key per cached query result, Section 6.1):
//   Profile:<id>   -> "name|friendCount|pendingCount"
//   Friends:<id>   -> comma-separated sorted friend ids
//   Pending:<id>   -> comma-separated sorted inviter ids
//   TopK:<id>      -> comma-separated resource ids (static)
//   Comments:<rid> -> comma-separated comment ids (static)
// Incremental-update mode additionally uses numeric counter keys
//   PC:<id> / FC:<id> so incr/decr deltas apply (see DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace iq::bg {

using MemberId = std::int64_t;

struct ProfileValue {
  std::string name;
  std::int64_t friend_count = 0;
  std::int64_t pending_count = 0;
};

std::string EncodeProfile(const ProfileValue& p);
std::optional<ProfileValue> DecodeProfile(const std::string& raw);

/// Id lists are stored sorted and deduplicated so refresh is deterministic.
std::string EncodeIdList(const std::set<MemberId>& ids);
std::set<MemberId> DecodeIdList(const std::string& raw);

/// Add/remove one id in an encoded list (refresh-technique helpers).
std::string IdListAdd(const std::string& raw, MemberId id);
std::string IdListRemove(const std::string& raw, MemberId id);

// Key builders.
std::string ProfileKey(MemberId id);
std::string FriendsKey(MemberId id);
std::string PendingKey(MemberId id);
std::string TopKKey(MemberId id);
std::string CommentsKey(std::int64_t resource_id);
std::string PendingCountKey(MemberId id);  // incremental mode
std::string FriendCountKey(MemberId id);   // incremental mode

}  // namespace iq::bg
