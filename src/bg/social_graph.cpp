#include "bg/social_graph.h"

#include "rdbms/schema.h"

namespace iq::bg {

void CreateBgTables(sql::Database& db) {
  db.CreateTable(sql::SchemaBuilder("Users")
                     .AddInt("userid")
                     .AddText("name")
                     .AddInt("pendingCount")
                     .AddInt("friendCount")
                     .PrimaryKey({"userid"})
                     .Build());
  db.CreateTable(sql::SchemaBuilder("Friendship")
                     .AddInt("inviterID")
                     .AddInt("inviteeID")
                     .AddInt("status")
                     .PrimaryKey({"inviterID", "inviteeID"})
                     .Index("inviterID")
                     .Index("inviteeID")
                     .Build());
  db.CreateTable(sql::SchemaBuilder("Resources")
                     .AddInt("rid")
                     .AddInt("creatorid")
                     .AddInt("wallUserID")
                     .PrimaryKey({"rid"})
                     .Index("wallUserID")
                     .Build());
  db.CreateTable(sql::SchemaBuilder("Manipulation")
                     .AddInt("mid")
                     .AddInt("rid")
                     .AddInt("creatorid")
                     .AddText("comment")
                     .PrimaryKey({"mid"})
                     .Index("rid")
                     .Build());
}

std::set<MemberId> InitialFriends(const GraphConfig& config, MemberId id) {
  std::set<MemberId> friends;
  MemberId m = config.members;
  int half = config.friends_per_member / 2;
  for (int k = 1; k <= half; ++k) {
    friends.insert((id + k) % m);
    friends.insert(((id - k) % m + m) % m);
  }
  friends.erase(id);
  return friends;
}

std::size_t LoadGraph(sql::Database& db, const GraphConfig& config) {
  std::size_t rows = 0;
  // Batch inserts into chunked transactions so version chains stay short
  // and the commit mutex is not taken per row.
  constexpr std::size_t kBatch = 2000;
  auto txn = db.Begin();
  std::size_t in_batch = 0;
  auto tick = [&] {
    if (++in_batch >= kBatch) {
      txn->Commit();
      txn = db.Begin();
      in_batch = 0;
    }
    ++rows;
  };

  for (MemberId id = 0; id < config.members; ++id) {
    auto friends = InitialFriends(config, id);
    txn->Insert("Users",
                {sql::V(id), sql::V("member" + std::to_string(id)),
                 sql::V(0), sql::V(static_cast<std::int64_t>(friends.size()))});
    tick();
  }
  // Confirmed ring friendships, both directions.
  for (MemberId id = 0; id < config.members; ++id) {
    for (MemberId f : InitialFriends(config, id)) {
      txn->Insert("Friendship", {sql::V(id), sql::V(f), sql::V(kConfirmed)});
      tick();
    }
  }
  // Resources on the creator's own wall.
  std::int64_t rid = 0;
  std::int64_t mid = 0;
  for (MemberId id = 0; id < config.members; ++id) {
    for (int r = 0; r < config.resources_per_member; ++r) {
      txn->Insert("Resources", {sql::V(rid), sql::V(id), sql::V(id)});
      tick();
      for (int c = 0; c < config.comments_per_resource; ++c) {
        txn->Insert("Manipulation",
                    {sql::V(mid), sql::V(rid), sql::V((id + c) % config.members),
                     sql::V("comment" + std::to_string(mid))});
        ++mid;
        tick();
      }
      ++rid;
    }
  }
  txn->Commit();
  return rows;
}

void PairPool::Add(MemberId a, MemberId b) {
  std::lock_guard lock(mu_);
  pairs_.emplace_back(a, b);
}

std::optional<std::pair<MemberId, MemberId>> PairPool::TakeRandom(Rng& rng) {
  std::lock_guard lock(mu_);
  if (pairs_.empty()) return std::nullopt;
  std::size_t idx = rng.NextUint64(pairs_.size());
  std::swap(pairs_[idx], pairs_.back());
  auto pair = pairs_.back();
  pairs_.pop_back();
  return pair;
}

std::size_t PairPool::Size() const {
  std::lock_guard lock(mu_);
  return pairs_.size();
}

void ActionPools::SeedFromGraph(const GraphConfig& config) {
  for (MemberId id = 0; id < config.members; ++id) {
    for (MemberId f : InitialFriends(config, id)) {
      if (id < f) confirmed.Add(id, f);  // one entry per unordered pair
    }
  }
}

}  // namespace iq::bg
