// BG social graph: relational schema, deterministic loader, and the
// action-sequencing pools that keep write actions well-formed (an Accept
// needs an outstanding invite, a Thaw needs an existing friendship).
//
// Schema (physical design of [6], simplified to what the nine actions
// touch):
//   Users(userid PK, name, pendingCount, friendCount)
//   Friendship(inviterID, inviteeID PK composite, status)   status 1=pending 2=confirmed
//       secondary indexes on inviterID and inviteeID
//   Resources(rid PK, creatorid, wallUserID)                 indexed on wallUserID
//   Manipulation(mid PK, rid, creatorid, comment)            indexed on rid
//
// The loader creates M members, phi confirmed friends per member (a ring:
// member i befriends i+-1..i+-phi/2 mod M), rho resources per member posted
// on their own wall, and a fixed number of comments per resource.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "bg/codec.h"
#include "rdbms/database.h"
#include "util/rng.h"

namespace iq::bg {

struct GraphConfig {
  MemberId members = 1000;        // M
  int friends_per_member = 20;    // phi (even)
  int resources_per_member = 10;  // rho
  int comments_per_resource = 3;
};

/// Friendship status values.
constexpr std::int64_t kPending = 1;
constexpr std::int64_t kConfirmed = 2;

/// Create the four tables in `db` (fails silently if they exist).
void CreateBgTables(sql::Database& db);

/// Populate `db` per `config`. Returns the number of rows inserted.
std::size_t LoadGraph(sql::Database& db, const GraphConfig& config);

/// The initial confirmed-friend set of a member under the ring loader.
std::set<MemberId> InitialFriends(const GraphConfig& config, MemberId id);

/// Thread-safe pool of (inviter, invitee) pairs driving the action mix:
/// Invite produces pending pairs, Accept/Reject consume them; the loader
/// seeds confirmed pairs, Accept produces them, Thaw consumes them.
class PairPool {
 public:
  void Add(MemberId a, MemberId b);
  /// Remove and return a pseudo-random pair, or nullopt if empty.
  std::optional<std::pair<MemberId, MemberId>> TakeRandom(Rng& rng);
  std::size_t Size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<MemberId, MemberId>> pairs_;
};

/// Both pools bundled, seeded to match the loaded graph.
struct ActionPools {
  PairPool pending;    // invitations awaiting Accept/Reject
  PairPool confirmed;  // friendships available to Thaw

  /// Seed `confirmed` with the loader's ring friendships.
  void SeedFromGraph(const GraphConfig& config);
};

}  // namespace iq::bg
