#include "bg/validation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace iq::bg {

void Validator::SetInitialCounter(const EntityId& entity, std::int64_t value) {
  std::lock_guard lock(mu_);
  initial_counters_[entity] = value;
}

void Validator::SetInitialSet(const EntityId& entity, std::set<MemberId> value) {
  std::lock_guard lock(mu_);
  initial_sets_[entity] = std::move(value);
}

void Validator::Absorb(ThreadLog&& log) {
  std::lock_guard lock(mu_);
  writes_.insert(writes_.end(), std::make_move_iterator(log.writes_.begin()),
                 std::make_move_iterator(log.writes_.end()));
  reads_.insert(reads_.end(), std::make_move_iterator(log.reads_.begin()),
                std::make_move_iterator(log.reads_.end()));
  log.writes_.clear();
  log.reads_.clear();
}

namespace {

struct EntityTimeline {
  std::vector<const WriteLogRecord*> writes;  // sorted by end time
  std::vector<const ReadLogRecord*> reads;    // sorted by start time
};

/// Incremental settled state for one set entity.
struct SetState {
  std::set<MemberId> members;
  /// Elements whose settled ops were mutually overlapping: their final
  /// settled membership is order-dependent, so treat them as always
  /// acceptable (conservative, avoids false positives).
  std::unordered_set<MemberId> ambiguous;
  /// End time of the last settled op per element, to detect overlap.
  std::unordered_map<MemberId, Nanos> last_op_end;

  void Apply(const WriteLogRecord& w) {
    auto it = last_op_end.find(w.element);
    if (it != last_op_end.end() && w.start < it->second) {
      ambiguous.insert(w.element);
    }
    last_op_end[w.element] = w.end;
    if (w.set_add) {
      members.insert(w.element);
    } else {
      members.erase(w.element);
    }
  }
};

}  // namespace

ValidationReport Validator::Validate() const {
  std::lock_guard lock(mu_);
  ValidationReport report;

  std::unordered_map<EntityId, EntityTimeline> timelines;
  for (const auto& w : writes_) timelines[w.entity].writes.push_back(&w);
  for (const auto& r : reads_) timelines[r.entity].reads.push_back(&r);

  for (auto& [entity, tl] : timelines) {
    std::sort(tl.writes.begin(), tl.writes.end(),
              [](const auto* a, const auto* b) { return a->end < b->end; });
    std::sort(tl.reads.begin(), tl.reads.end(),
              [](const auto* a, const auto* b) { return a->start < b->start; });

    std::int64_t settled_counter = 0;
    {
      auto it = initial_counters_.find(entity);
      if (it != initial_counters_.end()) settled_counter = it->second;
    }
    SetState set_state;
    {
      auto it = initial_sets_.find(entity);
      if (it != initial_sets_.end()) set_state.members = it->second;
    }

    std::size_t settled_idx = 0;  // writes[0..settled_idx) applied
    for (const ReadLogRecord* read : tl.reads) {
      // Advance the settled frontier: writes that completed strictly before
      // this read began are visible in every legal serialization.
      while (settled_idx < tl.writes.size() &&
             tl.writes[settled_idx]->end < read->start) {
        const WriteLogRecord& w = *tl.writes[settled_idx];
        if (w.is_set_op) {
          set_state.Apply(w);
        } else {
          settled_counter += w.delta;
        }
        ++settled_idx;
      }

      ++report.reads_checked;
      if (!read->is_set) {
        // In-flight deltas widen the acceptable interval.
        std::int64_t lo = settled_counter;
        std::int64_t hi = settled_counter;
        for (std::size_t i = settled_idx; i < tl.writes.size(); ++i) {
          const WriteLogRecord& w = *tl.writes[i];
          if (w.start > read->end || w.is_set_op) continue;
          if (w.delta < 0) {
            lo += w.delta;
          } else {
            hi += w.delta;
          }
        }
        if (read->observed_counter < lo || read->observed_counter > hi) {
          ++report.unpredictable;
        }
        continue;
      }

      // Set entity: collect in-flight elements (membership may go either way).
      std::unordered_set<MemberId> flexible = set_state.ambiguous;
      for (std::size_t i = settled_idx; i < tl.writes.size(); ++i) {
        const WriteLogRecord& w = *tl.writes[i];
        if (w.start > read->end || !w.is_set_op) continue;
        flexible.insert(w.element);
      }
      bool ok = true;
      for (MemberId m : read->observed_set) {
        if (flexible.contains(m)) continue;
        if (!set_state.members.contains(m)) {
          ok = false;  // observed an element no settled write produced
          break;
        }
      }
      if (ok) {
        for (MemberId m : set_state.members) {
          if (flexible.contains(m)) continue;
          if (!read->observed_set.contains(m)) {
            ok = false;  // a settled element is missing
            break;
          }
        }
      }
      if (!ok) ++report.unpredictable;
    }
  }
  return report;
}

}  // namespace iq::bg
