// BG-style validation: quantifying unpredictable (stale) reads.
//
// BG knows the initial state of every data item and the change applied by
// every write action. For each read it computes the range of values that
// SOME legal serialization of the overlapping sessions could produce; an
// observation outside that range is "unpredictable data" (Section 6.1).
//
// We implement the interval form of this check. Every session logs
// [start, end] wall-clock intervals:
//   - a write session logs, per entity, either a counter delta or a
//     set add/remove;
//   - a read session logs the observed counter value or id-set.
// Offline, for each read:
//   - writes whose interval ended before the read began are "settled":
//     every legal serialization includes them;
//   - writes overlapping the read are "in-flight": a serialization may or
//     may not include them (this is exactly the re-arrangement window of
//     Figure 4 - IQ may order a reader before a mid-flight writer);
//   - writes that began after the read ended cannot be included.
// A counter observation is valid iff it lies in
//   [init + settled + sum(negative in-flight), init + settled + sum(positive in-flight)].
// A set observation is valid iff every member's presence/absence matches
// the settled state or the member is touched by an in-flight write.
//
// Logging is per-thread (ThreadLog) and merged after the run; the check is
// exact for counters and per-element for sets.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bg/codec.h"
#include "util/clock.h"

namespace iq::bg {

/// Stable identity of a validated quantity, e.g. "pc:42" (pending count of
/// member 42) or "friends:7".
using EntityId = std::string;

struct WriteLogRecord {
  EntityId entity;
  Nanos start = 0;
  Nanos end = 0;
  /// Counter entities: the applied delta.
  std::int64_t delta = 0;
  /// Set entities: one element added or removed (0 delta).
  bool is_set_op = false;
  bool set_add = false;
  MemberId element = 0;
};

struct ReadLogRecord {
  EntityId entity;
  Nanos start = 0;
  Nanos end = 0;
  bool is_set = false;
  std::int64_t observed_counter = 0;
  std::set<MemberId> observed_set;
};

/// Per-worker log; no locking on the hot path.
class ThreadLog {
 public:
  void LogCounterWrite(EntityId entity, Nanos start, Nanos end,
                       std::int64_t delta) {
    writes_.push_back({std::move(entity), start, end, delta, false, false, 0});
  }
  void LogSetWrite(EntityId entity, Nanos start, Nanos end, bool add,
                   MemberId element) {
    writes_.push_back({std::move(entity), start, end, 0, true, add, element});
  }
  void LogCounterRead(EntityId entity, Nanos start, Nanos end,
                      std::int64_t observed) {
    reads_.push_back({std::move(entity), start, end, false, observed, {}});
  }
  void LogSetRead(EntityId entity, Nanos start, Nanos end,
                  std::set<MemberId> observed) {
    reads_.push_back(
        {std::move(entity), start, end, true, 0, std::move(observed)});
  }

 private:
  friend class Validator;
  std::vector<WriteLogRecord> writes_;
  std::vector<ReadLogRecord> reads_;
};

struct ValidationReport {
  std::uint64_t reads_checked = 0;
  std::uint64_t unpredictable = 0;

  double StalePercent() const {
    return reads_checked == 0
               ? 0.0
               : 100.0 * static_cast<double>(unpredictable) /
                     static_cast<double>(reads_checked);
  }
};

/// Collects thread logs and initial states, then validates offline.
class Validator {
 public:
  /// Register the pre-run state of a counter entity (default 0).
  void SetInitialCounter(const EntityId& entity, std::int64_t value);
  /// Register the pre-run state of a set entity (default empty).
  void SetInitialSet(const EntityId& entity, std::set<MemberId> value);

  /// Merge a worker's log (call once per worker after the run).
  void Absorb(ThreadLog&& log);

  /// Run the interval check over everything absorbed so far.
  ValidationReport Validate() const;

 private:
  std::map<EntityId, std::int64_t> initial_counters_;
  std::map<EntityId, std::set<MemberId>> initial_sets_;
  std::vector<WriteLogRecord> writes_;
  std::vector<ReadLogRecord> reads_;
  mutable std::mutex mu_;
};

}  // namespace iq::bg
