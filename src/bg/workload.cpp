#include "bg/workload.h"

#include <functional>
#include <map>
#include <vector>

#include "util/worker_group.h"

namespace iq::bg {

// Table 5 columns. Order: ViewProfile, ListFriends, ViewFriendRequests,
// InviteFriend, AcceptFriend, RejectFriend, ThawFriendship,
// ViewTopKResources, ViewComments.
Mix VeryLowWriteMix() {
  return Mix{{0.40, 0.05, 0.05, 0.0002, 0.0002, 0.0003, 0.0003, 0.40, 0.099}};
}

Mix LowWriteMix() {
  return Mix{{0.40, 0.05, 0.05, 0.002, 0.002, 0.003, 0.003, 0.40, 0.09}};
}

Mix HighWriteMix() {
  return Mix{{0.35, 0.05, 0.05, 0.02, 0.02, 0.03, 0.03, 0.35, 0.10}};
}

Mix MixForWritePercent(double percent) {
  if (percent <= 0.5) return VeryLowWriteMix();
  if (percent <= 5.0) return LowWriteMix();
  return HighWriteMix();
}

void SeedValidator(Validator& validator, const GraphConfig& graph) {
  for (MemberId id = 0; id < graph.members; ++id) {
    auto friends = InitialFriends(graph, id);
    validator.SetInitialCounter("pc:" + std::to_string(id), 0);
    validator.SetInitialCounter(
        "fc:" + std::to_string(id),
        static_cast<std::int64_t>(friends.size()));
    validator.SetInitialSet("friends:" + std::to_string(id), std::move(friends));
    validator.SetInitialSet("pending:" + std::to_string(id), {});
  }
}

void SeedValidatorFromDb(Validator& validator, sql::Database& db,
                         const GraphConfig& graph) {
  auto txn = db.Begin();
  for (const auto& row : txn->SelectAll("Users")) {
    auto id = *sql::AsInt(row[0]);
    validator.SetInitialCounter("pc:" + std::to_string(id), *sql::AsInt(row[2]));
    validator.SetInitialCounter("fc:" + std::to_string(id), *sql::AsInt(row[3]));
  }
  std::map<MemberId, std::set<MemberId>> friends;
  std::map<MemberId, std::set<MemberId>> pending;
  for (const auto& row : txn->SelectAll("Friendship")) {
    auto inviter = *sql::AsInt(row[0]);
    auto invitee = *sql::AsInt(row[1]);
    if (*sql::AsInt(row[2]) == kConfirmed) {
      friends[inviter].insert(invitee);
    } else {
      pending[invitee].insert(inviter);
    }
  }
  txn->Rollback();
  for (MemberId id = 0; id < graph.members; ++id) {
    auto f = friends.find(id);
    validator.SetInitialSet("friends:" + std::to_string(id),
                            f == friends.end() ? std::set<MemberId>{}
                                               : std::move(f->second));
    auto p = pending.find(id);
    validator.SetInitialSet("pending:" + std::to_string(id),
                            p == pending.end() ? std::set<MemberId>{}
                                               : std::move(p->second));
  }
}

void WarmCache(casql::CasqlSystem& system, const GraphConfig& graph) {
  ActionPools unused_pools;
  BGActions actions(system, unused_pools, graph, nullptr, Rng(1));
  for (MemberId id = 0; id < graph.members; ++id) {
    actions.ViewProfile(id);
    actions.ListFriends(id);
    actions.ViewFriendRequests(id);
    actions.ViewTopKResources(id);
  }
}

namespace {

ActionKind PickAction(const Mix& mix, Rng& rng) {
  double u = rng.NextDouble();
  double acc = 0;
  for (std::size_t i = 0; i < mix.probability.size(); ++i) {
    acc += mix.probability[i];
    if (u < acc) return static_cast<ActionKind>(i);
  }
  return ActionKind::kViewProfile;
}

}  // namespace

WorkloadResult RunWorkload(casql::CasqlSystem& system, ActionPools& pools,
                           const GraphConfig& graph,
                           const WorkloadConfig& config) {
  const Clock& clock = system.backend().clock();
  const int n = config.threads;

  std::vector<ThreadLog> logs(static_cast<std::size_t>(n));
  std::vector<LatencyHistogram> hists(static_cast<std::size_t>(n));
  std::vector<BGActions::RestartStats> restarts(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> action_counts(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> failed_counts(static_cast<std::size_t>(n), 0);

  Validator validator;
  if (config.validate) {
    if (config.seed_validator_from_db) {
      SeedValidatorFromDb(validator, system.db(), graph);
    } else {
      SeedValidator(validator, graph);
    }
  }

  Rng seed_rng(config.seed);
  std::vector<Rng> worker_rngs;
  worker_rngs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) worker_rngs.push_back(seed_rng.Fork());

  Nanos t0 = clock.Now();
  WorkerGroup::RunFor(
      n, config.duration, clock,
      [&](int worker, const std::atomic<bool>& stop) {
        auto w = static_cast<std::size_t>(worker);
        Rng rng = worker_rngs[w];
        // BG's theta convention: exponent = 1 - theta, so theta=0.27 yields
        // the 70/20 skew of Section 6.2.
        ZipfianGenerator zipf(static_cast<std::uint64_t>(graph.members),
                              1.0 - config.zipf_theta);
        BGActions actions(system, pools, graph,
                          config.validate ? &logs[w] : nullptr, rng.Fork());
        while (!stop.load(std::memory_order_acquire)) {
          ActionKind kind = PickAction(config.mix, rng);
          auto member = static_cast<MemberId>(zipf.Next(rng));
          Nanos start = clock.Now();
          bool ok = actions.Run(kind, member);
          hists[w].Record(clock.Now() - start);
          ++action_counts[w];
          if (!ok) ++failed_counts[w];
        }
        restarts[w] = actions.restart_stats();
      });
  Nanos elapsed = clock.Now() - t0;

  WorkloadResult result;
  result.elapsed = elapsed;
  for (int i = 0; i < n; ++i) {
    auto w = static_cast<std::size_t>(i);
    result.actions += action_counts[w];
    result.failed_actions += failed_counts[w];
    result.latency.Merge(hists[w]);
    result.restarts.Merge(restarts[w]);
    if (config.validate) validator.Absorb(std::move(logs[w]));
  }
  if (config.validate) result.validation = validator.Validate();
  return result;
}

SoarResult ComputeSoar(const std::function<WorkloadResult(int)>& run,
                       const std::vector<int>& thread_counts, Nanos sla) {
  SoarResult best;
  for (int t : thread_counts) {
    WorkloadResult r = run(t);
    // SLA: 95% of actions faster than `sla`.
    if (r.latency.FractionBelow(sla) < 0.95) continue;
    double tput = r.Throughput();
    if (tput > best.soar) {
      best.soar = tput;
      best.best_threads = t;
    }
  }
  return best;
}

}  // namespace iq::bg
