// BG workload driver: the four action mixes of Table 5, Zipfian member
// selection, a multi-threaded measurement loop, and the SoAR computation
// (highest throughput whose 95th-percentile latency stays under the SLA,
// Section 6.1).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "bg/actions.h"
#include "bg/social_graph.h"
#include "bg/validation.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace iq::bg {

/// Action probabilities, summing to 1. Order matches ActionKind.
struct Mix {
  std::array<double, 9> probability{};

  /// Total probability of the four write actions.
  double WritePercent() const {
    return 100.0 * (probability[3] + probability[4] + probability[5] +
                    probability[6]);
  }
};

/// Table 5's mixes: 0.1% / 1% / 10% write actions.
Mix VeryLowWriteMix();  // 0.1%
Mix LowWriteMix();      // 1%
Mix HighWriteMix();     // 10%
/// Select by the paper's row label: 0.1, 1 or 10 (percent writes).
Mix MixForWritePercent(double percent);

struct WorkloadConfig {
  Mix mix;
  int threads = 10;
  Nanos duration = 2 * kNanosPerSec;
  /// BG's Zipfian skew: theta=0.27 makes ~70% of requests reference ~20%
  /// of members (Section 6.2).
  double zipf_theta = 0.27;
  std::uint64_t seed = 42;
  bool validate = true;
  /// Snapshot the validator's initial state from the live database instead
  /// of the loader's formula (required when the graph has been mutated by
  /// earlier runs).
  bool seed_validator_from_db = false;
};

struct WorkloadResult {
  std::uint64_t actions = 0;
  std::uint64_t failed_actions = 0;  // empty pools / lost preconditions
  LatencyHistogram latency;
  ValidationReport validation;
  BGActions::RestartStats restarts;
  Nanos elapsed = 0;

  double Throughput() const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(actions) /
                              (static_cast<double>(elapsed) / kNanosPerSec);
  }
};

/// Seed a Validator with the loader's initial state for every member.
void SeedValidator(Validator& validator, const GraphConfig& graph);

/// Seed a Validator from the database's CURRENT committed state. Lets a
/// benchmark reuse one loaded (and since mutated) graph across many
/// measurement cells: each cell re-snapshots the ground truth.
void SeedValidatorFromDb(Validator& validator, sql::Database& db,
                         const GraphConfig& graph);

/// Issue one read per cacheable key so the run starts with a warm cache
/// (the paper's Table 8 setting).
void WarmCache(casql::CasqlSystem& system, const GraphConfig& graph);

/// Run `config.threads` workers for `config.duration`.
WorkloadResult RunWorkload(casql::CasqlSystem& system, ActionPools& pools,
                           const GraphConfig& graph,
                           const WorkloadConfig& config);

/// SoAR: sweep thread counts, return the highest throughput whose p95
/// latency meets `sla` (default 100 ms, 95% of actions). Each trial calls
/// `run(threads)` and must return a WorkloadResult.
struct SoarResult {
  double soar = 0;      // actions/sec
  int best_threads = 0;
};
SoarResult ComputeSoar(const std::function<WorkloadResult(int)>& run,
                       const std::vector<int>& thread_counts,
                       Nanos sla = 100 * kNanosPerMilli);

}  // namespace iq::bg
