#include "casql/casql.h"

#include "util/backoff.h"

namespace iq::casql {

const char* ToString(Technique t) {
  switch (t) {
    case Technique::kInvalidate: return "invalidate";
    case Technique::kRefresh: return "refresh";
    case Technique::kIncremental: return "incremental";
  }
  return "?";
}

const char* ToString(Consistency c) {
  switch (c) {
    case Consistency::kNone: return "none";
    case Consistency::kCas: return "cas";
    case Consistency::kReadLease: return "read-lease";
    case Consistency::kIQ: return "IQ";
  }
  return "?";
}

const char* ToString(LeasePlacement p) {
  switch (p) {
    case LeasePlacement::kPriorToTxn: return "prior-to-txn";
    case LeasePlacement::kInsideTxn: return "inside-txn";
  }
  return "?";
}

CasqlSystem::CasqlSystem(sql::Database& db, KvsBackend& backend,
                         CasqlConfig config)
    : db_(db),
      backend_(backend),
      config_(config),
      client_(backend, config.client) {}

std::unique_ptr<CasqlConnection> CasqlSystem::Connect() {
  // Each connection's audit sampler gets an independent, reproducible
  // stream: same seed + connection order => same audited hits.
  std::uint64_t n = connections_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<CasqlConnection>(new CasqlConnection(
      *this, client_.NewSession(),
      config_.client.seed ^ (0x9E3779B97F4A7C15ULL * (n + 1))));
}

CasqlConnection::CasqlConnection(CasqlSystem& system,
                                 std::unique_ptr<IQSession> session,
                                 std::uint64_t audit_seed)
    : system_(system), session_(std::move(session)), audit_rng_(audit_seed) {}

void CasqlConnection::LogOp(check::OpKind kind, std::string_view key,
                            const std::optional<std::string>& value) {
  check::OpLog* log = system_.config_.op_log;
  if (log == nullptr) return;
  log->Record(session_->id(), kind, TraceKeyHash(key),
              check::OpValueHash(value));
}

void CasqlConnection::LogKeyOp(check::OpKind kind, std::string_view key) {
  check::OpLog* log = system_.config_.op_log;
  if (log == nullptr) return;
  log->Record(session_->id(), kind, TraceKeyHash(key));
}

void CasqlConnection::LogSessionEnd(check::OpKind kind) {
  check::OpLog* log = system_.config_.op_log;
  if (log == nullptr) return;
  log->Record(session_->id(), kind, 0);
}

std::optional<std::string> CasqlConnection::ComputeFresh(
    const ComputeFn& compute) {
  // A dedicated (fresh) RDBMS connection/transaction, so a miss inside a
  // write session never observes that session's uncommitted changes
  // (paper Section 6.2, the multi-connection approach).
  auto txn = system_.db_.Begin();
  auto value = compute(*txn);
  txn->Rollback();
  return value;
}

void CasqlConnection::MaybeAudit(const std::string& key,
                                 const std::optional<std::string>& observed,
                                 const ComputeFn& compute, bool near_hit,
                                 Nanos near_remaining) {
  const CasqlConfig& cfg = system_.config_;
  if (cfg.audit_rate <= 0 || !audit_rng_.NextBool(cfg.audit_rate)) return;
  if (cfg.consistency == Consistency::kIQ) {
    // Serialize against writers: a granted Q(refresh) lease proves no write
    // session is in flight on this key, so strong consistency demands the
    // value under the lease equal the RDBMS ground truth right now. The
    // just-observed hit value is NOT the comparand — a writer may have
    // legitimately committed between the hit and the audit.
    std::optional<std::string> current;
    if (session_->QaRead(key, current) != ClientQResult::kGranted) {
      // Conflict (a writer is mid-session) or transport error: no verdict.
      system_.audit_skipped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (current) {
      LogOp(check::OpKind::kReadHit, key, current);
    } else {
      LogKeyOp(check::OpKind::kReadMiss, key);
    }
    std::optional<std::string> truth = ComputeFresh(compute);
    LogOp(check::OpKind::kReadDb, key, truth);
    // A KVS miss under the lease is never stale (the KVS is a subset of the
    // RDBMS); a present value disagreeing with the ground truth is.
    bool stale = current && (!truth || *truth != *current);
    session_->SaR(key, std::nullopt);  // release, leave the value in place
    system_.audit_samples_.fetch_add(1, std::memory_order_relaxed);
    if (near_hit && observed && (!truth || *truth != *observed)) {
      // A hit served from the client's near cache may trail the serialized
      // ground truth — that is the validity-interval contract working as
      // designed, but ONLY while the entry is inside its interval. The near
      // cache never serves expired entries, so near_remaining > 0 always
      // holds here; a violation of that invariant is real staleness.
      if (near_remaining > 0) {
        system_.audit_bounded_.fetch_add(1, std::memory_order_relaxed);
      } else {
        stale = true;
      }
    }
    if (stale) {
      system_.stale_reads_detected_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  // Baselines are audited lease-free (a Q lease would drop their concurrent
  // plain Sets, perturbing the system under measurement): compare the hit
  // the application saw against fresh ground truth. Racy by construction —
  // but unbounded staleness is exactly what the baselines exhibit.
  std::optional<std::string> truth = ComputeFresh(compute);
  LogOp(check::OpKind::kReadDb, key, truth);
  bool stale = observed && (!truth || *truth != *observed);
  system_.audit_samples_.fetch_add(1, std::memory_order_relaxed);
  if (stale) {
    system_.stale_reads_detected_.fetch_add(1, std::memory_order_relaxed);
  }
}

// ---- read sessions ----------------------------------------------------------

ReadOutcome CasqlConnection::Read(const std::string& key,
                                  const ComputeFn& compute) {
  switch (system_.config_.consistency) {
    case Consistency::kNone:
    case Consistency::kCas:
      return ReadPlain(key, compute);
    case Consistency::kReadLease:
    case Consistency::kIQ:
      return ReadLeased(key, compute);
  }
  return {};
}

ReadOutcome CasqlConnection::ReadPlain(const std::string& key,
                                       const ComputeFn& compute) {
  ReadOutcome out;
  auto item = system_.backend_.Get(key);
  if (item) {
    out.hit = true;
    out.value = std::move(item->value);
    LogOp(check::OpKind::kReadHit, key, out.value);
    MaybeAudit(key, out.value, compute);
    return out;
  }
  LogKeyOp(check::OpKind::kReadMiss, key);
  out.computed = true;
  out.value = ComputeFresh(compute);
  LogOp(check::OpKind::kReadDb, key, out.value);
  // Race-prone: any number of concurrent sessions may install here, and a
  // value computed from a pre-update snapshot overwrites fresher data.
  if (out.value) system_.backend_.Set(key, *out.value);
  return out;
}

ReadOutcome CasqlConnection::ReadLeased(const std::string& key,
                                        const ComputeFn& compute) {
  ReadOutcome out;
  ClientGetResult got = session_->Get(key);
  switch (got.status) {
    case ClientGetResult::Status::kHit:
      out.hit = true;
      out.value = std::move(got.value);
      LogOp(check::OpKind::kReadHit, key, out.value);
      MaybeAudit(key, out.value, compute, got.near_hit, got.near_remaining);
      return out;
    case ClientGetResult::Status::kMissRecompute:
      LogKeyOp(check::OpKind::kReadMiss, key);
      out.computed = true;
      out.value = ComputeFresh(compute);
      // read_db justifies the hash BEFORE Put installs it, so a concurrent
      // reader hitting the fresh value is always covered.
      LogOp(check::OpKind::kReadDb, key, out.value);
      if (out.value) {
        session_->Put(key, *out.value);
      } else {
        session_->DropLease(key);  // nothing to install; unblock others
      }
      return out;
    case ClientGetResult::Status::kMissNoInstall:
      // Our own quarantined key: recompute (observing our own RDBMS update)
      // but do not install - the key dies at our commit anyway.
      LogKeyOp(check::OpKind::kReadMiss, key);
      out.computed = true;
      out.value = ComputeFresh(compute);
      LogOp(check::OpKind::kReadDb, key, out.value);
      return out;
    case ClientGetResult::Status::kTimeout:
      LogKeyOp(check::OpKind::kReadMiss, key);
      out.computed = true;
      out.value = ComputeFresh(compute);
      LogOp(check::OpKind::kReadDb, key, out.value);
      return out;
  }
  return out;
}

// ---- write sessions ----------------------------------------------------------

WriteOutcome CasqlConnection::Write(const WriteSpec& spec) {
  if (system_.config_.consistency == Consistency::kIQ) {
    switch (system_.config_.technique) {
      case Technique::kInvalidate: return WriteIQInvalidate(spec);
      case Technique::kRefresh: return WriteIQRefresh(spec);
      case Technique::kIncremental: return WriteIQIncremental(spec);
    }
  }
  return WriteBaseline(spec);
}

WriteOutcome CasqlConnection::WriteBaseline(const WriteSpec& spec) {
  WriteOutcome out;
  KvsBackend& store = system_.backend_;
  const CasqlConfig& cfg = system_.config_;
  // Baseline restarts only ever call Backoff() — never Commit()/Abort() on
  // the IQ session — so without an explicit reset the escalation counter
  // leaks across Write() calls and every later conflict waits the cap
  // delay (the "stuck backoff" bug).
  session_->ResetBackoff();
  for (int attempt = 0; attempt < cfg.max_session_restarts; ++attempt) {
    auto txn = system_.db_.Begin();
    bool ok = spec.body(*txn);
    if (txn->state() == sql::Transaction::State::kAborted) {
      LogSessionEnd(check::OpKind::kAbort);
      ++out.rdbms_restarts;
      session_->Backoff();
      continue;
    }
    if (!ok) {
      txn->Rollback();
      LogSessionEnd(check::OpKind::kAbort);
      return out;
    }
    if (cfg.technique == Technique::kInvalidate) {
      // Trigger-style placement: the delete executes inside the RDBMS
      // transaction, before commit - the race-prone shape of Figure 3.
      for (const auto& u : spec.updates) {
        LogKeyOp(check::OpKind::kInval, u.key);
        system_.backend_.DeleteVoid(u.key);
      }
      txn->Commit();
      LogSessionEnd(check::OpKind::kCommit);
      out.committed = true;
      return out;
    }
    // Mixed-mode updates that force invalidation are deleted trigger-style.
    for (const auto& u : spec.updates) {
      if (!u.invalidate) continue;
      LogKeyOp(check::OpKind::kInval, u.key);
      system_.backend_.DeleteVoid(u.key);
    }
    txn->Commit();
    switch (cfg.technique) {
      case Technique::kRefresh:
        for (const auto& u : spec.updates) {
          if (u.invalidate || !u.refresh) continue;
          if (cfg.consistency == Consistency::kNone) {
            // Figure 1b: read, modify in application memory, set.
            auto item = store.Get(u.key);
            std::optional<std::string> old =
                item ? std::optional<std::string>(std::move(item->value))
                     : std::nullopt;
            LogOp(old ? check::OpKind::kReadHit : check::OpKind::kReadMiss,
                  u.key, old);
            auto v_new = u.refresh(old);
            if (cfg.baseline_rmw_delay > 0) {
              SleepFor(SteadyClock::Instance(), cfg.baseline_rmw_delay);
            }
            if (v_new) {
              LogOp(check::OpKind::kWrite, u.key, v_new);
              store.Set(u.key, *v_new);
            }
          } else {
            // Figure 10: R-M-W via compare-and-swap with retry. Atomic per
            // key, yet still unable to impose the RDBMS serial order
            // (Figure 2), so stale values survive.
            for (int i = 0; i < cfg.max_cas_retries; ++i) {
              auto item = store.Get(u.key);
              if (!item) {
                LogKeyOp(check::OpKind::kReadMiss, u.key);
                auto v_new = u.refresh(std::nullopt);
                if (!v_new) break;
                LogOp(check::OpKind::kWrite, u.key, v_new);
                if (store.Add(u.key, *v_new) == StoreResult::kStored) break;
                continue;  // lost the add race; retry as an update
              }
              LogOp(check::OpKind::kReadHit, u.key,
                    std::optional<std::string>(item->value));
              auto v_new = u.refresh(item->value);
              if (!v_new) break;
              if (cfg.baseline_rmw_delay > 0) {
                SleepFor(SteadyClock::Instance(), cfg.baseline_rmw_delay);
              }
              LogOp(check::OpKind::kWrite, u.key, v_new);
              if (store.Cas(u.key, *v_new, item->cas) == StoreResult::kStored) {
                break;
              }
            }
          }
        }
        break;
      case Technique::kIncremental:
        for (const auto& u : spec.updates) {
          if (u.invalidate || !u.delta) continue;
          LogKeyOp(check::OpKind::kDelta, u.key);
          switch (u.delta->kind) {
            case DeltaOp::Kind::kAppend:
              store.Append(u.key, u.delta->blob);
              break;
            case DeltaOp::Kind::kPrepend:
              store.Prepend(u.key, u.delta->blob);
              break;
            case DeltaOp::Kind::kIncr:
              store.Incr(u.key, u.delta->amount);
              break;
            case DeltaOp::Kind::kDecr:
              store.Decr(u.key, u.delta->amount);
              break;
          }
        }
        break;
      case Technique::kInvalidate:
        break;  // handled above
    }
    LogSessionEnd(check::OpKind::kCommit);
    out.committed = true;
    return out;
  }
  return out;
}

namespace {

/// Bump the matching restart counter for a failed quarantine/lease request.
void CountRestart(ClientQResult r, WriteOutcome* out) {
  if (r == ClientQResult::kQConflict) {
    ++out->q_restarts;
  } else {
    ++out->transport_restarts;
  }
}

}  // namespace

WriteOutcome CasqlConnection::WriteIQInvalidate(const WriteSpec& spec) {
  WriteOutcome out;
  const CasqlConfig& cfg = system_.config_;
  for (int attempt = 0; attempt < cfg.max_session_restarts; ++attempt) {
    // QaReg is always granted by a reachable server (Figure 5a), so
    // placement only changes when the quarantine window opens. A transport
    // error means the quarantine is NOT in place: abort and retry —
    // committing the RDBMS txn anyway would leave the cached value
    // permanently stale, the exact anomaly the framework exists to prevent.
    ClientQResult q = ClientQResult::kGranted;
    if (cfg.placement == LeasePlacement::kPriorToTxn) {
      for (const auto& u : spec.updates) {
        q = session_->Quarantine(u.key);
        if (q != ClientQResult::kGranted) break;
        LogKeyOp(check::OpKind::kInval, u.key);
      }
      if (q != ClientQResult::kGranted) {
        session_->Abort();
        LogSessionEnd(check::OpKind::kAbort);
        CountRestart(q, &out);
        session_->Backoff();
        continue;
      }
    }
    auto txn = system_.db_.Begin();
    bool ok = spec.body(*txn);
    if (txn->state() == sql::Transaction::State::kAborted) {
      session_->Abort();
      LogSessionEnd(check::OpKind::kAbort);
      ++out.rdbms_restarts;
      session_->Backoff();
      continue;
    }
    if (!ok) {
      txn->Rollback();
      session_->Abort();  // leaves current versions in the KVS
      LogSessionEnd(check::OpKind::kAbort);
      return out;
    }
    if (cfg.placement == LeasePlacement::kInsideTxn) {
      for (const auto& u : spec.updates) {
        q = session_->Quarantine(u.key);
        if (q != ClientQResult::kGranted) break;
        LogKeyOp(check::OpKind::kInval, u.key);
      }
      if (q != ClientQResult::kGranted) {
        txn->Rollback();
        session_->Abort();
        LogSessionEnd(check::OpKind::kAbort);
        CountRestart(q, &out);
        session_->Backoff();
        continue;
      }
    }
    txn->Commit();
    // Past this point failures are tolerable: the quarantines are in place,
    // so even if this DaR never reaches the server the Q leases expire and
    // delete the keys — the KVS stays a subset of the RDBMS.
    session_->Commit();  // DaR: delete quarantined keys, release Q leases
    LogSessionEnd(check::OpKind::kCommit);
    out.committed = true;
    return out;
  }
  return out;
}

WriteOutcome CasqlConnection::WriteIQRefresh(const WriteSpec& spec) {
  WriteOutcome out;
  const CasqlConfig& cfg = system_.config_;
  const std::size_t n = spec.updates.size();
  for (int attempt = 0; attempt < cfg.max_session_restarts; ++attempt) {
    std::vector<std::optional<std::string>> olds(n);
    std::vector<std::optional<std::string>> news(n);
    std::unique_ptr<sql::Transaction> txn;

    if (cfg.placement == LeasePlacement::kInsideTxn) {
      txn = system_.db_.Begin();
      if (!spec.body(*txn) ||
          txn->state() == sql::Transaction::State::kAborted) {
        bool conflicted = txn->state() == sql::Transaction::State::kAborted;
        txn->Rollback();
        session_->Abort();
        LogSessionEnd(check::OpKind::kAbort);
        if (!conflicted) return out;
        ++out.rdbms_restarts;
        session_->Backoff();
        continue;
      }
    }

    ClientQResult q = ClientQResult::kGranted;
    for (std::size_t i = 0; i < n; ++i) {
      q = spec.updates[i].invalidate
              ? session_->Quarantine(spec.updates[i].key)
              : session_->QaRead(spec.updates[i].key, olds[i]);
      if (q != ClientQResult::kGranted) break;
      if (spec.updates[i].invalidate) {
        LogKeyOp(check::OpKind::kInval, spec.updates[i].key);
      } else {
        LogOp(olds[i] ? check::OpKind::kReadHit : check::OpKind::kReadMiss,
              spec.updates[i].key, olds[i]);
      }
    }
    if (q != ClientQResult::kGranted) {
      // Figure 5b: release every lease, roll back the RDBMS transaction,
      // back off, restart the whole session. A transport error takes the
      // same path — the Q lease may not be held, so committing would race
      // unprotected against concurrent readers.
      if (txn) txn->Rollback();
      session_->Abort();
      LogSessionEnd(check::OpKind::kAbort);
      CountRestart(q, &out);
      session_->Backoff();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (spec.updates[i].invalidate) continue;
      news[i] = spec.updates[i].refresh ? spec.updates[i].refresh(olds[i])
                                        : std::nullopt;
    }

    if (cfg.placement == LeasePlacement::kPriorToTxn) {
      txn = system_.db_.Begin();
      if (!spec.body(*txn) ||
          txn->state() == sql::Transaction::State::kAborted) {
        bool conflicted = txn->state() == sql::Transaction::State::kAborted;
        txn->Rollback();
        session_->Abort();
        LogSessionEnd(check::OpKind::kAbort);
        if (!conflicted) return out;
        ++out.rdbms_restarts;
        session_->Backoff();
        continue;
      }
    }

    txn->Commit();
    // Post-RDBMS-commit failures are tolerable: every impacted key holds a
    // Q lease, and an unreleased Q lease expires server-side and deletes
    // the key — stale values cannot survive a lost SaR/Commit.
    for (std::size_t i = 0; i < n; ++i) {
      if (spec.updates[i].invalidate) continue;
      auto v = news[i] ? std::optional<std::string_view>(*news[i])
                       : std::nullopt;
      // Write intent BEFORE the install (check/oplog.h soundness rule).
      if (news[i]) LogOp(check::OpKind::kWrite, spec.updates[i].key, news[i]);
      session_->SaR(spec.updates[i].key, v);
    }
    session_->Commit();  // also deletes any quarantined (invalidate) keys
    LogSessionEnd(check::OpKind::kCommit);
    out.committed = true;
    return out;
  }
  return out;
}

WriteOutcome CasqlConnection::WriteIQIncremental(const WriteSpec& spec) {
  WriteOutcome out;
  const CasqlConfig& cfg = system_.config_;
  for (int attempt = 0; attempt < cfg.max_session_restarts; ++attempt) {
    std::unique_ptr<sql::Transaction> txn;
    if (cfg.placement == LeasePlacement::kInsideTxn) {
      txn = system_.db_.Begin();
      if (!spec.body(*txn) ||
          txn->state() == sql::Transaction::State::kAborted) {
        bool conflicted = txn->state() == sql::Transaction::State::kAborted;
        txn->Rollback();
        session_->Abort();
        LogSessionEnd(check::OpKind::kAbort);
        if (!conflicted) return out;
        ++out.rdbms_restarts;
        session_->Backoff();
        continue;
      }
    }

    ClientQResult q = ClientQResult::kGranted;
    for (const auto& u : spec.updates) {
      if (u.invalidate) {
        q = session_->Quarantine(u.key);
        if (q == ClientQResult::kGranted) {
          LogKeyOp(check::OpKind::kInval, u.key);
        }
      } else if (u.delta) {
        q = session_->Delta(u.key, *u.delta);
        if (q == ClientQResult::kGranted) {
          LogKeyOp(check::OpKind::kDelta, u.key);
        }
      } else {
        continue;
      }
      if (q != ClientQResult::kGranted) break;
    }
    if (q != ClientQResult::kGranted) {
      if (txn) txn->Rollback();
      session_->Abort();
      LogSessionEnd(check::OpKind::kAbort);
      CountRestart(q, &out);
      session_->Backoff();
      continue;
    }

    if (cfg.placement == LeasePlacement::kPriorToTxn) {
      txn = system_.db_.Begin();
      if (!spec.body(*txn) ||
          txn->state() == sql::Transaction::State::kAborted) {
        bool conflicted = txn->state() == sql::Transaction::State::kAborted;
        txn->Rollback();
        session_->Abort();
        LogSessionEnd(check::OpKind::kAbort);
        if (!conflicted) return out;
        ++out.rdbms_restarts;
        session_->Backoff();
        continue;
      }
    }

    txn->Commit();
    session_->Commit();  // server applies the buffered deltas
    LogSessionEnd(check::OpKind::kCommit);
    out.committed = true;
    return out;
  }
  return out;
}

}  // namespace iq::casql
