// The CASQL application layer: read and write sessions combining an RDBMS
// transaction with KVS maintenance, parameterized over
//
//   Technique    - how writers maintain impacted key-value pairs (Figure 1):
//                  invalidate (delete), refresh (R-M-W), incremental (delta);
//   Consistency  - the client design under evaluation:
//                  kNone      plain memcached ops (race-prone baseline),
//                  kCas       R-M-W via compare-and-swap (Figure 10),
//                  kReadLease Twemcache + Facebook read leases [27]
//                             (the paper's "Twemcache" baseline, Table 7),
//                  kIQ        the full IQ framework (this paper);
//   LeasePlacement - Q leases acquired prior to vs inside the RDBMS
//                  transaction (Figure 9 / Table 6, refresh & delta only).
//
// A write session describes its RDBMS work as a transaction body plus the
// set of impacted keys with per-technique update rules; the connection
// drives the right command sequence, restarting the whole session on RDBMS
// write-write conflicts or Q-lease rejections (non-blocking, deadlock-free).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/oplog.h"
#include "core/iq_client.h"
#include "rdbms/database.h"
#include "util/rng.h"

namespace iq::casql {

enum class Technique { kInvalidate, kRefresh, kIncremental };
enum class Consistency { kNone, kCas, kReadLease, kIQ };
enum class LeasePlacement { kPriorToTxn, kInsideTxn };

const char* ToString(Technique t);
const char* ToString(Consistency c);
const char* ToString(LeasePlacement p);

struct CasqlConfig {
  Technique technique = Technique::kInvalidate;
  Consistency consistency = Consistency::kIQ;
  LeasePlacement placement = LeasePlacement::kInsideTxn;
  /// Give up restarting a session after this many attempts.
  int max_session_restarts = 10000;
  /// Retry budget for baseline cas loops.
  int max_cas_retries = 100;
  /// Baselines only: artificial delay between the R and the W of a
  /// baseline R-M-W (models the client<->server round trips of a networked
  /// deployment, which widen the Figure 2 window; IQ paths ignore it).
  Nanos baseline_rmw_delay = 0;
  /// Online staleness auditor: on this fraction of cache hits, re-read the
  /// RDBMS ground truth inside the same session and compare. In IQ mode the
  /// audit serializes against writers via QaRead, so any mismatch is a real
  /// consistency violation (zero false positives); baselines are audited
  /// lease-free (taking a Q lease would drop their concurrent plain Sets,
  /// perturbing the system under measurement), so their count is the racy
  /// staleness the paper's Table 1 quantifies. 0 disables auditing.
  double audit_rate = 0.0;
  /// Optional client-side op log for the offline history checker
  /// (src/check, tools/iqcheck): every client-visible read, write intent,
  /// delta, invalidation, commit, and abort is recorded with the session
  /// id and key/value hashes. Write intents are logged before the install
  /// (see check/oplog.h). Null disables logging. Not owned; must outlive
  /// the system and be thread-safe (check::OpLog is).
  check::OpLog* op_log = nullptr;
  IQClient::Config client;
};

/// Shared tally of the online staleness auditor (see CasqlConfig).
struct AuditStats {
  std::uint64_t samples = 0;              // hits audited to a verdict
  std::uint64_t stale_reads_detected = 0; // audited hits that mismatched
  std::uint64_t skipped = 0;              // audits abandoned (Q conflict /
                                          // transport error)
  std::uint64_t bounded = 0;              // near-cache hits that trailed the
                                          // serialized truth while still
                                          // inside their granted validity
                                          // interval (allowed by design,
                                          // DESIGN.md §4.10) — not stale
};

/// One impacted key in a write session.
struct KeyUpdate {
  std::string key;
  /// Refresh: map the old value (nullopt = KVS miss) to the new value;
  /// return nullopt to skip the update (paper Section 4.2: the application
  /// "may check and skip updating of the value").
  std::function<std::optional<std::string>(const std::optional<std::string>&)>
      refresh;
  /// Incremental update: the delta to apply.
  std::optional<DeltaOp> delta;
  /// Force the invalidate technique for this key even when the session's
  /// technique is refresh/incremental (the paper's mixed-mode support:
  /// e.g. delta-update a counter key while deleting a list key).
  bool invalidate = false;
};

/// A write session: one RDBMS transaction plus its impacted keys.
struct WriteSpec {
  /// The transaction body. Return false to abort the session (e.g. a
  /// constraint violation); conflicts surface via the transaction state.
  std::function<bool(sql::Transaction&)> body;
  std::vector<KeyUpdate> updates;
};

struct WriteOutcome {
  bool committed = false;
  /// Restarts forced by Q-lease rejections (Table 6's metric).
  int q_restarts = 0;
  /// Restarts forced by RDBMS write-write conflicts.
  int rdbms_restarts = 0;
  /// Restarts forced by cache transport errors before the RDBMS commit.
  /// The write path NEVER commits "uncached": a quarantine/lease that may
  /// not be in place means abort, back off, reconnect, retry.
  int transport_restarts = 0;
};

struct ReadOutcome {
  bool hit = false;        // value came straight from the KVS
  bool computed = false;   // value recomputed from the RDBMS
  std::optional<std::string> value;
};

/// Computes a key's value from the database (used on KVS misses).
using ComputeFn = std::function<std::optional<std::string>(sql::Transaction&)>;

class CasqlSystem;

/// Per-thread handle. Not thread-safe; create one per worker.
class CasqlConnection {
 public:
  /// Read session: KVS lookup, recompute-on-miss per the consistency mode.
  ReadOutcome Read(const std::string& key, const ComputeFn& compute);

  /// Write session per the configured technique/consistency/placement.
  WriteOutcome Write(const WriteSpec& spec);

 private:
  friend class CasqlSystem;
  CasqlConnection(CasqlSystem& system, std::unique_ptr<IQSession> session,
                  std::uint64_t audit_seed);

  ReadOutcome ReadPlain(const std::string& key, const ComputeFn& compute);
  ReadOutcome ReadLeased(const std::string& key, const ComputeFn& compute);

  WriteOutcome WriteBaseline(const WriteSpec& spec);
  WriteOutcome WriteIQInvalidate(const WriteSpec& spec);
  WriteOutcome WriteIQRefresh(const WriteSpec& spec);
  WriteOutcome WriteIQIncremental(const WriteSpec& spec);

  /// Recompute a key's value in a fresh RDBMS transaction (the paper's
  /// separate-connection approach, Section 6.2).
  std::optional<std::string> ComputeFresh(const ComputeFn& compute);

  /// Staleness auditor: with probability config.audit_rate, re-read the
  /// RDBMS ground truth for a key that just hit in the KVS and bump the
  /// system-wide AuditStats. `observed` is the hit value handed to the
  /// application (the comparand in the lease-free baseline audit).
  /// `near_hit`/`near_remaining` describe a hit served from the client's
  /// near cache: such a hit may legitimately trail the serialized ground
  /// truth, but only while inside its granted validity interval — a
  /// mismatch with near_remaining > 0 counts as `bounded`, one without is
  /// a real staleness violation.
  void MaybeAudit(const std::string& key,
                  const std::optional<std::string>& observed,
                  const ComputeFn& compute, bool near_hit = false,
                  Nanos near_remaining = 0);

  /// Op-log helpers (no-ops when CasqlConfig::op_log is null).
  void LogOp(check::OpKind kind, std::string_view key,
             const std::optional<std::string>& value);
  void LogKeyOp(check::OpKind kind, std::string_view key);
  void LogSessionEnd(check::OpKind kind);

  CasqlSystem& system_;
  std::unique_ptr<IQSession> session_;
  Rng audit_rng_;
};

/// Binds a Database and a cache backend (in-process IQServer or a
/// net::RemoteBackend speaking the wire protocol) under one configuration.
class CasqlSystem {
 public:
  CasqlSystem(sql::Database& db, KvsBackend& backend, CasqlConfig config);

  std::unique_ptr<CasqlConnection> Connect();

  sql::Database& db() { return db_; }
  KvsBackend& backend() { return backend_; }
  const CasqlConfig& config() const { return config_; }
  /// The shared IQ client behind every connection's session (backoff
  /// policy, process-wide near cache).
  IQClient& client() { return client_; }

  /// Snapshot of the staleness-auditor tally across all connections.
  AuditStats audit_stats() const {
    AuditStats s;
    s.samples = audit_samples_.load(std::memory_order_relaxed);
    s.stale_reads_detected =
        stale_reads_detected_.load(std::memory_order_relaxed);
    s.skipped = audit_skipped_.load(std::memory_order_relaxed);
    s.bounded = audit_bounded_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  friend class CasqlConnection;

  sql::Database& db_;
  KvsBackend& backend_;
  CasqlConfig config_;
  IQClient client_;
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> audit_samples_{0};
  std::atomic<std::uint64_t> stale_reads_detected_{0};
  std::atomic<std::uint64_t> audit_skipped_{0};
  std::atomic<std::uint64_t> audit_bounded_{0};
};

}  // namespace iq::casql
