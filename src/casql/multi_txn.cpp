#include "casql/multi_txn.h"

namespace iq::casql {

MultiWriteOutcome ExecuteMultiTxn(CasqlSystem& system,
                                  const MultiWriteSpec& spec) {
  MultiWriteOutcome out;
  if (system.config().consistency != Consistency::kIQ) return out;
  const int max_restarts = system.config().max_session_restarts;
  KvsBackend& server = system.backend();

  IQClient client(server, system.config().client);
  for (int attempt = 0; attempt < max_restarts; ++attempt) {
    auto iq_session = client.NewSession();

    // Growing phase: every lease before the first transaction.
    std::vector<std::optional<std::string>> olds(spec.updates.size());
    bool conflict = false;
    for (std::size_t i = 0; i < spec.updates.size(); ++i) {
      if (iq_session->QaRead(spec.updates[i].key, olds[i]) ==
          ClientQResult::kQConflict) {
        conflict = true;
        break;
      }
    }
    if (conflict) {
      iq_session->Abort();
      ++out.q_restarts;
      iq_session->Backoff();
      continue;
    }

    // Run the transaction sequence. Individual conflicts retry that
    // transaction; a body returning false aborts the session.
    std::size_t committed_txns = 0;
    bool session_failed = false;
    for (const auto& body : spec.bodies) {
      bool txn_done = false;
      for (int txn_try = 0; txn_try < max_restarts && !txn_done; ++txn_try) {
        auto txn = system.db().Begin();
        ++out.transactions_run;
        bool ok = body(*txn);
        if (txn->state() == sql::Transaction::State::kAborted) {
          iq_session->Backoff();
          continue;  // write-write conflict: retry this transaction
        }
        if (!ok) {
          txn->Rollback();
          session_failed = true;
          break;
        }
        if (txn->Commit() == sql::TxnResult::kOk) {
          txn_done = true;
          ++committed_txns;
        }
      }
      if (session_failed || !txn_done) {
        session_failed = true;
        break;
      }
    }

    if (session_failed) {
      if (committed_txns == 0) {
        // Nothing reached the database: plain abort, values intact.
        iq_session->Abort();
        return out;
      }
      // Mid-sequence failure after some commits: the cached values can no
      // longer be refreshed consistently, so fall back to deleting them -
      // a delete is always safe and readers recompute from the database.
      for (const auto& u : spec.updates) {
        iq_session->SaR(u.key, std::nullopt);  // release without writing
        server.DeleteVoid(u.key);
      }
      iq_session->Commit();
      out.degraded_to_invalidate = true;
      return out;
    }

    // Shrinking phase: apply every refresh after the LAST commit.
    for (std::size_t i = 0; i < spec.updates.size(); ++i) {
      const auto& u = spec.updates[i];
      std::optional<std::string> v_new =
          u.refresh ? u.refresh(olds[i]) : std::nullopt;
      iq_session->SaR(u.key, v_new ? std::optional<std::string_view>(*v_new)
                                   : std::nullopt);
    }
    iq_session->Commit();
    out.committed = true;
    return out;
  }
  return out;
}

}  // namespace iq::casql
