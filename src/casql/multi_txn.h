// Multi-transaction sessions - the paper's Section 8 research question:
// "whether the framework provides strong consistency guarantees for
// sessions consisting of multiple RDBMS transactions".
//
// The answer implemented here: yes, provided the Q leases span the entire
// sequence (the growing phase covers every transaction, the shrinking phase
// happens after the LAST commit). The session:
//
//   1. acquires Q(refresh) leases on every impacted key up front (so a
//      conflicting session aborts instead of interleaving);
//   2. runs its transactions one after another, retrying an individual
//      transaction on write-write conflict;
//   3. applies all KVS updates (SaR) after the final commit and releases.
//
// Caveat that makes this an extension rather than a drop-in: the RDBMS
// cannot atomically roll back transactions that already committed, so if a
// LATER transaction aborts permanently, the session falls back to
// invalidation - it deletes every impacted key (always safe) so readers
// recompute from whatever the database now says. KVS-level atomicity is
// preserved; cross-transaction RDBMS atomicity is the application's
// responsibility (exactly the open question the paper poses).
#pragma once

#include "casql/casql.h"

namespace iq::casql {

/// A session spanning several RDBMS transactions.
struct MultiWriteSpec {
  /// Transaction bodies, executed in order. Each returns false to abort
  /// the whole session.
  std::vector<std::function<bool(sql::Transaction&)>> bodies;
  /// Impacted keys, refreshed after the last commit (refresh callbacks are
  /// applied to the values captured at lease-acquisition time).
  std::vector<KeyUpdate> updates;
};

struct MultiWriteOutcome {
  bool committed = false;      // every transaction committed and KVS updated
  int transactions_run = 0;    // including retries
  int q_restarts = 0;
  /// True when a mid-sequence failure forced the invalidation fallback.
  bool degraded_to_invalidate = false;
};

/// Execute `spec` against `system` with leases spanning all transactions.
/// Only Consistency::kIQ systems are supported (returns !committed
/// otherwise); the technique is forced to refresh semantics.
MultiWriteOutcome ExecuteMultiTxn(CasqlSystem& system, const MultiWriteSpec& spec);

}  // namespace iq::casql
