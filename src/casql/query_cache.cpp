#include "casql/query_cache.h"

#include <charconv>

namespace iq::casql {
namespace {

/// FNV-1a over the statement text and encoded parameters.
std::uint64_t HashQuery(const std::string& sql,
                        const std::vector<sql::Value>& params) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h = (h ^ static_cast<unsigned char>(data[i])) * 0x100000001b3ULL;
    }
  };
  mix(sql.data(), sql.size());
  for (const auto& p : params) {
    std::string s = sql::ToString(p);
    mix("|", 1);
    mix(s.data(), s.size());
  }
  return h;
}

void AppendValue(std::string& out, const sql::Value& v) {
  if (sql::IsNull(v)) {
    out += "N;";
  } else if (auto i = sql::AsInt(v)) {
    out += "I" + std::to_string(*i) + ";";
  } else {
    const std::string& s = std::get<std::string>(v);
    out += "S" + std::to_string(s.size()) + ":" + s + ";";
  }
}

/// Parse one value at `pos`; advances pos past the trailing ';'.
bool ParseValue(const std::string& raw, std::size_t& pos, sql::Value* out) {
  if (pos >= raw.size()) return false;
  char tag = raw[pos++];
  if (tag == 'N') {
    if (pos >= raw.size() || raw[pos] != ';') return false;
    ++pos;
    *out = sql::Null{};
    return true;
  }
  if (tag == 'I') {
    std::size_t end = raw.find(';', pos);
    if (end == std::string::npos) return false;
    std::int64_t v = 0;
    auto [p, ec] = std::from_chars(raw.data() + pos, raw.data() + end, v);
    if (ec != std::errc{} || p != raw.data() + end) return false;
    pos = end + 1;
    *out = v;
    return true;
  }
  if (tag == 'S') {
    std::size_t colon = raw.find(':', pos);
    if (colon == std::string::npos) return false;
    std::size_t len = 0;
    auto [p, ec] = std::from_chars(raw.data() + pos, raw.data() + colon, len);
    if (ec != std::errc{} || p != raw.data() + colon) return false;
    pos = colon + 1;
    if (pos + len >= raw.size() + 1 || pos + len > raw.size()) return false;
    std::string s = raw.substr(pos, len);
    pos += len;
    if (pos >= raw.size() || raw[pos] != ';') return false;
    ++pos;
    *out = std::move(s);
    return true;
  }
  return false;
}

}  // namespace

std::string EncodeResultSet(const sql::QueryResult& result) {
  std::string out = "R" + std::to_string(result.rows.size()) + "," +
                    std::to_string(result.columns.size()) + "\n";
  for (const auto& c : result.columns) {
    out += "C" + std::to_string(c.size()) + ":" + c + ";";
  }
  out += "\n";
  for (const auto& row : result.rows) {
    for (const auto& v : row) AppendValue(out, v);
    out += "\n";
  }
  return out;
}

bool DecodeResultSet(const std::string& raw, sql::QueryResult* out) {
  out->rows.clear();
  out->columns.clear();
  out->status = sql::TxnResult::kOk;
  std::size_t pos = 0;
  if (pos >= raw.size() || raw[pos] != 'R') return false;
  ++pos;
  std::size_t comma = raw.find(',', pos);
  std::size_t eol = raw.find('\n', pos);
  if (comma == std::string::npos || eol == std::string::npos || comma > eol) {
    return false;
  }
  std::size_t n_rows = 0, n_cols = 0;
  std::from_chars(raw.data() + pos, raw.data() + comma, n_rows);
  std::from_chars(raw.data() + comma + 1, raw.data() + eol, n_cols);
  pos = eol + 1;
  for (std::size_t c = 0; c < n_cols; ++c) {
    if (pos >= raw.size() || raw[pos] != 'C') return false;
    ++pos;
    std::size_t colon = raw.find(':', pos);
    if (colon == std::string::npos) return false;
    std::size_t len = 0;
    std::from_chars(raw.data() + pos, raw.data() + colon, len);
    pos = colon + 1;
    if (pos + len > raw.size()) return false;
    out->columns.push_back(raw.substr(pos, len));
    pos += len;
    if (pos >= raw.size() || raw[pos] != ';') return false;
    ++pos;
  }
  if (pos >= raw.size() || raw[pos] != '\n') return false;
  ++pos;
  for (std::size_t r = 0; r < n_rows; ++r) {
    sql::Row row;
    row.reserve(n_cols);
    for (std::size_t c = 0; c < n_cols; ++c) {
      sql::Value v;
      if (!ParseValue(raw, pos, &v)) return false;
      row.push_back(std::move(v));
    }
    if (pos >= raw.size() || raw[pos] != '\n') return false;
    ++pos;
    out->rows.push_back(std::move(row));
  }
  return pos == raw.size();
}

QueryCache::QueryCache(sql::Database& db, KvsBackend& server)
    : db_(db), server_(server), client_(server) {}

std::string QueryCache::SentinelKey(const std::string& table) {
  return "qv:" + table;
}

std::string QueryCache::ResultKey(const std::string& table,
                                  const std::string& version,
                                  const std::string& sql,
                                  const std::vector<sql::Value>& params) {
  return "qc:" + table + ":" + version + ":" +
         std::to_string(HashQuery(sql, params));
}

std::string QueryCache::TableVersion(IQSession& session,
                                     const std::string& table) {
  ClientGetResult got = session.Get(SentinelKey(table));
  switch (got.status) {
    case ClientGetResult::Status::kHit:
      return got.value;
    case ClientGetResult::Status::kMissRecompute: {
      // New version tag: the last commit timestamp is monotonic, so a
      // retired keyspace can never be resurrected.
      std::string version = "v" + std::to_string(db_.LastCommitTs());
      session.Put(SentinelKey(table), version);
      {
        std::lock_guard lock(stats_mu_);
        ++stats_.version_refreshes;
      }
      return version;
    }
    default:
      return {};  // quarantined or contended: fall through to the database
  }
}

sql::QueryResult QueryCache::Select(const std::string& sql,
                                    const std::vector<sql::Value>& params) {
  sql::Statement stmt = sql::Prepare(sql);
  if (stmt.kind != sql::StatementKind::kSelect) {
    auto txn = db_.Begin();
    auto r = sql::Execute(*txn, stmt, params);
    txn->Commit();
    return r;
  }

  auto session = client_.NewSession();
  std::string version = TableVersion(*session, stmt.table);
  std::string key;
  if (!version.empty()) {
    key = ResultKey(stmt.table, version, sql, params);
    ClientGetResult got = session->Get(key);
    if (got.status == ClientGetResult::Status::kHit) {
      sql::QueryResult cached;
      if (DecodeResultSet(got.value, &cached)) {
        std::lock_guard lock(stats_mu_);
        ++stats_.result_hits;
        return cached;
      }
      // Corrupt entry: fall through and recompute (cannot happen unless
      // someone writes the key out-of-band).
      got.status = ClientGetResult::Status::kTimeout;
    }
    if (got.status != ClientGetResult::Status::kMissRecompute) {
      key.clear();  // contended: compute without installing
    }
  }

  auto txn = db_.Begin();
  sql::QueryResult result = sql::Execute(*txn, stmt, params);
  txn->Rollback();
  if (!key.empty() && result.ok()) {
    session->Put(key, EncodeResultSet(result));
  }
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.result_misses;
  }
  return result;
}

bool QueryCache::Write(const std::vector<std::string>& tables,
                       const std::function<bool(sql::Transaction&)>& body,
                       int max_attempts) {
  auto session = client_.NewSession();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto txn = db_.Begin();
    bool ok = body(*txn);
    if (txn->state() == sql::Transaction::State::kAborted) {
      session->Abort();
      session->Backoff();
      continue;
    }
    if (!ok) {
      txn->Rollback();
      session->Abort();
      return false;
    }
    // Quarantine every touched table's sentinel inside the transaction
    // (always granted; voids racing readers' I leases on the sentinel),
    // then delete them at commit - retiring those tables' keyspaces.
    for (const auto& table : tables) session->Quarantine(SentinelKey(table));
    if (txn->Commit() != sql::TxnResult::kOk) {
      session->Abort();
      continue;
    }
    session->Commit();
    std::lock_guard lock(stats_mu_);
    ++stats_.writes;
    return true;
  }
  return false;
}

QueryCache::Stats QueryCache::GetStats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

}  // namespace iq::casql
