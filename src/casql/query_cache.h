// QueryCache: application-transparent caching of SELECT results, in the
// spirit of the transparent CASQL middlewares the paper builds on
// (COSAR-CQN [17], SQLTrig [16]): the developer issues plain SQL and the
// middleware handles keys, caching, and consistency.
//
// Design: table-version sentinel keys, made correct by the IQ protocol.
//
//   - Every table has a sentinel key "qv:<table>" whose value is a version
//     tag. Readers fetch the sentinel (IQget), then look up the result
//     under "qc:<table>:<version>:<hash(sql,params)>".
//   - A write transaction quarantines (QaReg) the sentinel of every table
//     it touches *inside* the transaction and deletes it at commit (DaR).
//     The next reader misses the sentinel, takes an I lease on it, and
//     installs a fresh version tag (the database's last commit timestamp),
//     which retires the entire cached keyspace of that table at once.
//
// Why this is strongly consistent: the sentinel is just the invalidate
// technique applied to a version key, so all of Section 3's machinery
// carries over. A reader holding the pre-write version either hits old
// cached results (and serializes before the in-flight writer - the
// Figure 4 re-arrangement window) or recomputes from a pre-commit
// snapshot and installs into the *retired* keyspace, which no reader that
// begins after the writer's commit will ever consult. A reader that
// begins after the commit misses the sentinel and recomputes both the
// version and the result from post-commit data. The races of Figures 2/3
// cannot leak a stale value into a live keyspace.
//
// Granularity: table-level (one write retires every cached query on that
// table), like COSAR-CQN's query change notification. Finer granularity is
// the application-managed KeyUpdate path in casql.h.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/iq_client.h"
#include "rdbms/sql.h"

namespace iq::casql {

class QueryCache {
 public:
  struct Stats {
    std::uint64_t result_hits = 0;
    std::uint64_t result_misses = 0;
    std::uint64_t version_refreshes = 0;  // sentinel recomputations
    std::uint64_t writes = 0;
  };

  QueryCache(sql::Database& db, KvsBackend& server);

  /// Execute a SELECT with read-through caching. Non-SELECT statements are
  /// executed uncached (but see Write() for invalidation-correct DML).
  sql::QueryResult Select(const std::string& sql,
                          const std::vector<sql::Value>& params = {});

  /// Run a write transaction; `tables` lists every table the body mutates
  /// (their cached queries are retired at commit). Retries on write-write
  /// conflict. Returns true iff committed.
  bool Write(const std::vector<std::string>& tables,
             const std::function<bool(sql::Transaction&)>& body,
             int max_attempts = 10);

  Stats GetStats() const;

 private:
  static std::string SentinelKey(const std::string& table);
  static std::string ResultKey(const std::string& table,
                               const std::string& version,
                               const std::string& sql,
                               const std::vector<sql::Value>& params);

  /// Current version tag for `table`, resolving misses via an I lease.
  /// Returns empty on repeated contention (caller falls through to the
  /// database).
  std::string TableVersion(IQSession& session, const std::string& table);

  sql::Database& db_;
  KvsBackend& server_;
  IQClient client_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

/// Result-set codec (exposed for tests): length-prefixed, loss-free for
/// arbitrary bytes in text values.
std::string EncodeResultSet(const sql::QueryResult& result);
bool DecodeResultSet(const std::string& raw, sql::QueryResult* out);

}  // namespace iq::casql
