#include "casql/trigger_invalidation.h"

namespace iq::casql {
namespace {

// The trigger fires on the thread executing the DML, so the active managed
// session is thread-local state.
thread_local SessionId t_active_tid = 0;

}  // namespace

TriggerInvalidator::TriggerInvalidator(sql::Database& db, KvsBackend& server)
    : db_(db), server_(server) {}

void TriggerInvalidator::Register(const std::string& table, sql::DmlOp op,
                                  KeyMapper mapper) {
  db_.RegisterTrigger(
      table, op,
      [this, mapper = std::move(mapper)](sql::Transaction&,
                                         const sql::TriggerEvent& event) {
        OnTrigger(mapper, event);
      });
}

void TriggerInvalidator::OnTrigger(const KeyMapper& mapper,
                                   const sql::TriggerEvent& event) {
  if (t_active_tid == 0) return;  // DML outside a managed session
  for (const std::string& key : mapper(event)) {
    // QaReg is always granted (Figure 5a); voids I leases so racing readers
    // cannot install values computed from pre-commit snapshots.
    server_.QaReg(t_active_tid, key);
  }
}

SessionId TriggerInvalidator::ActiveTid() { return t_active_tid; }

std::unique_ptr<TriggerInvalidator::ManagedSession>
TriggerInvalidator::BeginSession() {
  SessionId tid = server_.GenID();
  auto txn = db_.Begin();
  t_active_tid = tid;
  return std::unique_ptr<ManagedSession>(
      new ManagedSession(*this, tid, std::move(txn)));
}

TriggerInvalidator::ManagedSession::ManagedSession(
    TriggerInvalidator& owner, SessionId tid,
    std::unique_ptr<sql::Transaction> txn)
    : owner_(owner), tid_(tid), txn_(std::move(txn)) {}

TriggerInvalidator::ManagedSession::~ManagedSession() {
  if (!finished_) Abort();
}

bool TriggerInvalidator::ManagedSession::Commit() {
  if (finished_) return false;
  finished_ = true;
  t_active_tid = 0;
  if (txn_->state() != sql::Transaction::State::kActive ||
      txn_->Commit() != sql::TxnResult::kOk) {
    txn_->Rollback();
    owner_.server_.Abort(tid_);  // leases released, values untouched
    return false;
  }
  owner_.server_.DaR(tid_);  // delete quarantined keys, release Q leases
  return true;
}

void TriggerInvalidator::ManagedSession::Abort() {
  if (finished_) return;
  finished_ = true;
  t_active_tid = 0;
  txn_->Rollback();
  owner_.server_.Abort(tid_);
}

}  // namespace iq::casql
