// Application-transparent invalidation via RDBMS triggers, in the spirit of
// SQLTrig (Ghandeharizadeh & Yap, cited as [16]) and the trigger-based
// arrangement of Figure 3 - but made *correct* by the IQ framework: instead
// of deleting impacted keys inside the transaction (the race of Section
// 3.1), the trigger quarantines them (QaReg) under the session's TID and
// the keys are deleted at commit (DaR).
//
// The developer registers, per (table, DML) pair, a KeyMapper that derives
// the impacted cache keys from the affected row - the "query to trigger
// translation" - then runs write transactions through ManagedSession:
//
//   TriggerInvalidator ti(db, server);
//   ti.Register("Users", sql::DmlOp::kUpdate, [](const sql::TriggerEvent& e) {
//     return std::vector<std::string>{"Profile:" + ToString((*e.new_row)[0])};
//   });
//   auto session = ti.BeginSession();
//   sql::Query(session->txn(), "UPDATE Users SET ... WHERE id = ?", {...});
//   session->Commit();   // commits the txn, then DaRs the quarantined keys
//
// Reads need no cooperation: any IQget-based reader observes strong
// consistency. DML executed outside a ManagedSession does NOT quarantine
// keys (the trigger has no session to attach to) - route all writes to
// covered tables through ManagedSession.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/kvs_backend.h"
#include "rdbms/database.h"

namespace iq::casql {

/// Derives the impacted cache keys from one DML event.
using KeyMapper = std::function<std::vector<std::string>(const sql::TriggerEvent&)>;

class TriggerInvalidator {
 public:
  TriggerInvalidator(sql::Database& db, KvsBackend& server);

  /// Quarantine the keys `mapper` derives whenever `op` fires on `table`
  /// inside a managed session.
  void Register(const std::string& table, sql::DmlOp op, KeyMapper mapper);

  /// One managed write session: an RDBMS transaction whose covered DMLs
  /// quarantine their impacted keys automatically. Not thread-safe; use
  /// from one thread. Destroying an uncommitted session aborts it.
  class ManagedSession {
   public:
    ~ManagedSession();
    ManagedSession(const ManagedSession&) = delete;

    sql::Transaction& txn() { return *txn_; }

    /// Commit the transaction, then delete the quarantined keys and
    /// release the Q leases. False if the transaction had already failed.
    bool Commit();

    /// Roll back and release leases, leaving cached values in place.
    void Abort();

   private:
    friend class TriggerInvalidator;
    ManagedSession(TriggerInvalidator& owner, SessionId tid,
                   std::unique_ptr<sql::Transaction> txn);

    TriggerInvalidator& owner_;
    SessionId tid_;
    std::unique_ptr<sql::Transaction> txn_;
    bool finished_ = false;
  };

  std::unique_ptr<ManagedSession> BeginSession();

  /// The session id active on this thread, or 0 (testing / diagnostics).
  static SessionId ActiveTid();

 private:
  void OnTrigger(const KeyMapper& mapper, const sql::TriggerEvent& event);

  sql::Database& db_;
  KvsBackend& server_;
};

}  // namespace iq::casql
