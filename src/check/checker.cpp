#include "check/checker.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace iq::check {
namespace {

/// One row per AnomalyClass, indexed by the enum value.
constexpr const char* kClassNames[kAnomalyClassCount] = {
    "drops",            "protocol",         "overlap_q",
    "unmatched_end",    "unjustified_read", "non_monotonic_session",
};

std::string Printf(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return std::string(buf, n > 0 ? std::min<std::size_t>(
                                      static_cast<std::size_t>(n),
                                      sizeof buf - 1)
                                : 0);
}

/// Live lease state of one key, rebuilt from the merged trace.
struct KeyState {
  enum class Kind : std::uint8_t { kNone, kI, kQRef, kQInv };
  Kind kind = Kind::kNone;
  std::uint64_t holder = 0;             // kI / kQRef
  std::set<std::uint64_t> inv_holders;  // kQInv (QaReg shares, Figure 5a)

  const char* Name() const {
    switch (kind) {
      case Kind::kNone: return "none";
      case Kind::kI: return "I";
      case Kind::kQRef: return "Q_ref";
      case Kind::kQInv: return "Q_inv";
    }
    return "?";
  }
};

struct TaggedEvent {
  const TraceEvent* e;
  std::uint32_t source;
};

class HistoryChecker {
 public:
  HistoryChecker(const CheckerOptions& options) : options_(options) {}

  void Emit(AnomalyClass cls, std::uint64_t session, std::uint64_t key,
            Nanos at, std::string detail) {
    report_.counts[static_cast<std::size_t>(cls)]++;
    if (report_.anomalies.size() >= options_.max_anomalies) return;
    Anomaly a;
    a.cls = cls;
    a.session = session;
    a.key_hash = key;
    a.at = at;
    a.detail = std::move(detail);
    report_.anomalies.push_back(std::move(a));
  }

  void CheckCompleteness(const std::vector<TraceSource>& sources) {
    for (const TraceSource& s : sources) {
      report_.trace_events += s.events.size();
      std::string problem;
      if (!s.has_info) {
        problem = "no TRACE_INFO header (completeness unknown)";
      } else if (s.info.dropped != 0) {
        problem = Printf("ring wrapped: %llu of %llu events dropped",
                         static_cast<unsigned long long>(s.info.dropped),
                         static_cast<unsigned long long>(s.info.recorded));
      } else if (s.info.recorded > s.events.size()) {
        problem = Printf("short drain: %llu of %llu events",
                         static_cast<unsigned long long>(s.events.size()),
                         static_cast<unsigned long long>(s.info.recorded));
      }
      if (problem.empty()) continue;
      report_.complete = false;
      if (!options_.allow_drops) {
        Emit(AnomalyClass::kDrops, 0, 0, 0, s.name + ": " + problem);
      }
    }
  }

  void CheckLifecycles(const std::vector<TraceSource>& sources) {
    // A truncated history makes every lifecycle rule unsound (the matching
    // grant may simply predate the drain horizon), so check only complete
    // ones.
    if (!report_.complete) {
      report_.lifecycle_checked = false;
      return;
    }
    // Stable merge on (at, source, shard, seq). Any one key's events all
    // live in one (source, shard) ring where seq is program order and at
    // is non-decreasing, so this total order preserves every key's true
    // lifecycle — and equal timestamps (ManualClock) stay deterministic.
    std::vector<TaggedEvent> merged;
    merged.reserve(report_.trace_events);
    for (std::uint32_t i = 0; i < sources.size(); ++i) {
      for (const TraceEvent& e : sources[i].events) {
        merged.push_back(TaggedEvent{&e, i});
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const TaggedEvent& a, const TaggedEvent& b) {
                if (a.e->at != b.e->at) return a.e->at < b.e->at;
                if (a.source != b.source) return a.source < b.source;
                if (a.e->shard != b.e->shard) return a.e->shard < b.e->shard;
                return a.e->seq < b.e->seq;
              });
    for (const TaggedEvent& t : merged) Step(*t.e);

    for (const auto& [key, st] : keys_) {
      if (st.kind == KeyState::Kind::kNone) continue;
      report_.open_leases++;
      if (options_.require_quiescent) {
        Emit(AnomalyClass::kProtocol, st.holder, key, 0,
             Printf("%s lease still live at end of history", st.Name()));
      }
    }
  }

  /// Advance one key's lease state machine by one trace event.
  void Step(const TraceEvent& e) {
    using Kind = KeyState::Kind;
    KeyState& st = keys_[e.key_hash];
    switch (e.kind) {
      case LeaseTraceKind::kIGrant:
        report_.grants++;
        if (st.kind != Kind::kNone) {
          Emit(AnomalyClass::kProtocol, e.session, e.key_hash, e.at,
               Printf("i_grant while %s lease live (holder %llu)", st.Name(),
                      static_cast<unsigned long long>(st.holder)));
        }
        st = KeyState{};
        st.kind = Kind::kI;
        st.holder = e.session;
        return;
      case LeaseTraceKind::kQRefGrant:
        report_.grants++;
        if (st.kind == Kind::kQRef) {
          // Legitimate same-session re-acquisition never emits a grant, so
          // ANY q_ref_grant inside a live Q window is an exclusivity
          // violation: two write sessions now race this key.
          Emit(AnomalyClass::kOverlapQ, e.session, e.key_hash, e.at,
               Printf("q_ref_grant while session %llu holds Q_ref",
                      static_cast<unsigned long long>(st.holder)));
        } else if (st.kind != Kind::kNone) {
          Emit(AnomalyClass::kProtocol, e.session, e.key_hash, e.at,
               Printf("q_ref_grant while %s lease live", st.Name()));
        }
        st = KeyState{};
        st.kind = Kind::kQRef;
        st.holder = e.session;
        return;
      case LeaseTraceKind::kQInvGrant:
        report_.grants++;
        if (st.kind == Kind::kQInv || st.kind == Kind::kNone) {
          // Q(invalidate) shares: deletes are idempotent (Figure 5a).
          st.kind = Kind::kQInv;
          st.holder = 0;
          st.inv_holders.insert(e.session);
        } else {
          // The server voids an I/Q_ref first (traced); a direct grant
          // over either is a protocol violation.
          Emit(AnomalyClass::kProtocol, e.session, e.key_hash, e.at,
               Printf("q_inv_grant while %s lease live", st.Name()));
          st = KeyState{};
          st.kind = Kind::kQInv;
          st.inv_holders.insert(e.session);
        }
        return;
      case LeaseTraceKind::kIVoid:
        report_.ends++;
        if (st.kind != Kind::kI || st.holder != e.session) {
          Emit(AnomalyClass::kProtocol, e.session, e.key_hash, e.at,
               Printf("i_void without matching I lease (state %s)",
                      st.Name()));
        }
        if (st.kind == Kind::kI) st = KeyState{};
        return;
      case LeaseTraceKind::kQRefVoid:
        report_.ends++;
        if (st.kind != Kind::kQRef || st.holder != e.session) {
          Emit(AnomalyClass::kProtocol, e.session, e.key_hash, e.at,
               Printf("q_ref_void without matching Q_ref lease (state %s)",
                      st.Name()));
        }
        if (st.kind == Kind::kQRef) st = KeyState{};
        return;
      case LeaseTraceKind::kReject:
        // No state change; the contender got nothing.
        return;
      case LeaseTraceKind::kExpire:
      case LeaseTraceKind::kExpireDelete:
        report_.ends++;
        CloseLease(e, /*allow_i=*/true,
                   e.kind == LeaseTraceKind::kExpireDelete ? "expire_delete"
                                                           : "expire");
        return;
      case LeaseTraceKind::kCommit:
        report_.ends++;
        CloseLease(e, /*allow_i=*/false, "commit");
        return;
      case LeaseTraceKind::kAbort:
        report_.ends++;
        CloseLease(e, /*allow_i=*/false, "abort");
        return;
      case LeaseTraceKind::kRelease:
        report_.ends++;
        CloseLease(e, /*allow_i=*/true, "release");
        return;
    }
  }

  /// End one session's lease on a key: the ISSUE's core protocol rule —
  /// every commit/abort/release (and expiry) must land on a matching live
  /// grant for that session+key. Expiry of a shared Q(invalidate) entry is
  /// traced once with session 0 and clears every holder.
  void CloseLease(const TraceEvent& e, bool allow_i, const char* what) {
    using Kind = KeyState::Kind;
    KeyState& st = keys_[e.key_hash];
    switch (st.kind) {
      case Kind::kQInv:
        if (e.session == 0) {  // whole-entry expiry
          st = KeyState{};
          return;
        }
        if (st.inv_holders.erase(e.session) == 0) break;
        if (st.inv_holders.empty()) st = KeyState{};
        return;
      case Kind::kQRef:
        if (st.holder != e.session) break;
        st = KeyState{};
        return;
      case Kind::kI:
        if (!allow_i || st.holder != e.session) break;
        st = KeyState{};
        return;
      case Kind::kNone:
        break;
    }
    Emit(AnomalyClass::kUnmatchedEnd, e.session, e.key_hash, e.at,
         Printf("%s without matching grant (state %s)", what, st.Name()));
  }

  void CheckOps(const std::vector<OpRecord>& ops) {
    report_.op_records = ops.size();
    // ops are replayed in append order: the OpLog mutex serializes records
    // consistently with real time, and write intents are logged before the
    // value is installed, so set-inclusion here can over-approximate but
    // never miss a justification.
    for (const OpRecord& r : ops) {
      KeyFacts& kf = key_facts_[r.key_hash];
      switch (r.kind) {
        case OpKind::kSeed:
          kf.justified.insert(r.value_hash);
          break;
        case OpKind::kWrite:
          kf.justified.insert(r.value_hash);
          Touched(r).wrote = true;
          break;
        case OpKind::kDelta:
          // The delta result is unknowable client-side; hash justification
          // is impossible for this key from here on.
          kf.exempt = true;
          Touched(r).wrote = true;
          break;
        case OpKind::kInval:
          Touched(r).wrote = true;
          break;
        case OpKind::kReadHit: {
          if (kf.exempt) {
            report_.reads_exempt++;
          } else {
            report_.reads_checked++;
            if (kf.justified.count(r.value_hash) == 0) {
              Emit(AnomalyClass::kUnjustifiedRead, r.session, r.key_hash,
                   r.at,
                   Printf("observed hash %llu never seeded/written/db-read",
                          static_cast<unsigned long long>(r.value_hash)));
            }
          }
          Observe(r);
          break;
        }
        case OpKind::kReadDb:
          if (r.value_hash != kNoValueHash) kf.justified.insert(r.value_hash);
          Observe(r);
          break;
        case OpKind::kReadMiss:
          break;
        case OpKind::kReadOwn: {
          // The own-update probe: this read ran under the session's own
          // live Q lease after its own delta, so the pre-delta value can
          // only reappear if the server stopped replaying the session's
          // buffered updates (Section 4.2.2).
          report_.reads_exempt++;
          SessKey& sk = Touched(r);
          if (r.value_hash != kNoValueHash && sk.wrote &&
              sk.pre_hashes.count(r.value_hash) != 0) {
            Emit(AnomalyClass::kNonMonotonicSession, r.session, r.key_hash,
                 r.at,
                 Printf("re-read under own Q lease observed pre-update hash "
                        "%llu again",
                        static_cast<unsigned long long>(r.value_hash)));
          }
          break;
        }
        case OpKind::kCommit:
        case OpKind::kAbort:
        case OpKind::kTransportError:
          // Server session ids are re-used across logical sessions within
          // one connection; own-update tracking resets with each one. A
          // transport error ends the logical session the same way — the
          // surviving shards' traces account for its leases (expiry), so
          // fault-injection histories can be joined instead of excluded.
          sessions_.erase(r.session);
          break;
      }
    }
  }

  CheckReport Finish() { return std::move(report_); }

 private:
  struct KeyFacts {
    std::unordered_set<std::uint64_t> justified;
    bool exempt = false;
  };
  struct SessKey {
    std::unordered_set<std::uint64_t> pre_hashes;  // observed before wrote
    bool wrote = false;
  };

  SessKey& Touched(const OpRecord& r) {
    return sessions_[r.session][r.key_hash];
  }
  /// Track what the session saw on this key before its first own write.
  void Observe(const OpRecord& r) {
    SessKey& sk = Touched(r);
    if (!sk.wrote && r.value_hash != kNoValueHash) {
      sk.pre_hashes.insert(r.value_hash);
    }
  }

  CheckerOptions options_;
  CheckReport report_;
  std::unordered_map<std::uint64_t, KeyState> keys_;
  std::unordered_map<std::uint64_t, KeyFacts> key_facts_;
  std::unordered_map<std::uint64_t, std::unordered_map<std::uint64_t, SessKey>>
      sessions_;
};

}  // namespace

const char* ToString(AnomalyClass c) {
  auto i = static_cast<std::size_t>(c);
  return i < kAnomalyClassCount ? kClassNames[i] : "?";
}

CheckReport CheckHistory(const std::vector<TraceSource>& sources,
                         const std::vector<OpRecord>& ops,
                         const CheckerOptions& options) {
  HistoryChecker checker(options);
  checker.CheckCompleteness(sources);
  checker.CheckLifecycles(sources);
  checker.CheckOps(ops);
  return checker.Finish();
}

std::string CheckReport::Summary() const {
  std::string out;
  out += certified() ? "verdict: CERTIFIED\n"
         : clean()   ? "verdict: NOT CERTIFIED (incomplete history)\n"
                     : "verdict: ANOMALOUS\n";
  out += Printf(
      "history: trace_events=%llu op_records=%llu grants=%llu ends=%llu "
      "open_leases=%llu\n",
      static_cast<unsigned long long>(trace_events),
      static_cast<unsigned long long>(op_records),
      static_cast<unsigned long long>(grants),
      static_cast<unsigned long long>(ends),
      static_cast<unsigned long long>(open_leases));
  out += Printf("reads: checked=%llu exempt=%llu\n",
                static_cast<unsigned long long>(reads_checked),
                static_cast<unsigned long long>(reads_exempt));
  out += Printf("complete=%s lifecycle_checked=%s\n",
                complete ? "true" : "false",
                lifecycle_checked ? "true" : "false");
  out += Printf("anomalies: total=%llu",
                static_cast<unsigned long long>(total_anomalies()));
  for (std::size_t i = 0; i < kAnomalyClassCount; ++i) {
    out += Printf(" %s=%llu", kClassNames[i],
                  static_cast<unsigned long long>(counts[i]));
  }
  out += "\n";
  const std::size_t shown = std::min<std::size_t>(anomalies.size(), 10);
  for (std::size_t i = 0; i < shown; ++i) {
    const Anomaly& a = anomalies[i];
    out += Printf("  [%s] session=%llu key=%llu at=%lld: ",
                  ToString(a.cls),
                  static_cast<unsigned long long>(a.session),
                  static_cast<unsigned long long>(a.key_hash),
                  static_cast<long long>(a.at));
    out += a.detail;
    out += "\n";
  }
  if (anomalies.size() > shown) {
    out += Printf("  ... %llu more\n",
                  static_cast<unsigned long long>(anomalies.size() - shown));
  }
  return out;
}

}  // namespace iq::check
