// Offline execution-history checker: replays a run's server-side lease
// traces and client-side op log against the IQ protocol and the
// snapshot-isolation session axioms (Raad/Lahav/Vafeiadis, arXiv
// 1805.06196), flagging whole-history anomalies the online per-read
// staleness auditor cannot see — lost updates, overlapping write windows,
// sessions that stop reading their own writes.
//
// Inputs:
//  - One TraceSource per drained server (the `trace` verb / --trace-dump /
//    IQServer::TraceSnapshot), carrying its TRACE_INFO completeness header.
//  - The client op log (check/oplog.h), in append order.
//
// Per-key event ordering is exact, not heuristic: any one key lives in
// exactly one (source, shard) trace ring, where `seq` is program order and
// `at` is non-decreasing, so the (at, source, shard, seq) stable merge
// reconstructs every key's true lease lifecycle.
//
// Anomaly classes (DESIGN.md §4.8):
//   drops            trace incomplete (ring wrapped / short drain / missing
//                    TRACE_INFO) — the checker refuses to certify, and the
//                    lifecycle checks are skipped (they would be unsound
//                    against a truncated history)
//   protocol         a lease granted/voided from an illegal state (e.g. an
//                    I grant while any lease is live)
//   overlap_q        a Q(refresh) grant inside another live Q window on the
//                    key — two write sessions racing one key (Figure 5b
//                    must reject instead)
//   unmatched_end    a commit/abort/release/expire with no matching live
//                    grant for that session+key
//   unjustified_read a client-observed value no seed, write intent, or
//                    RDBMS ground-truth read ever produced (lost update /
//                    phantom value)
//   non_monotonic_session  a session re-read a key under its own live Q
//                    lease after buffering a delta and observed a pre-delta
//                    value again — it stopped seeing its own update
//                    (Section 4.2.2; the PR 5 own-update bug)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/oplog.h"
#include "util/trace_ring.h"

namespace iq::check {

enum class AnomalyClass : std::uint8_t {
  kDrops,
  kProtocol,
  kOverlapQ,
  kUnmatchedEnd,
  kUnjustifiedRead,
  kNonMonotonicSession,
};
inline constexpr std::size_t kAnomalyClassCount =
    static_cast<std::size_t>(AnomalyClass::kNonMonotonicSession) + 1;

const char* ToString(AnomalyClass c);

struct Anomaly {
  AnomalyClass cls = AnomalyClass::kProtocol;
  std::uint64_t session = 0;
  std::uint64_t key_hash = 0;
  Nanos at = 0;
  std::string detail;
};

/// One drained server's events plus its completeness accounting.
struct TraceSource {
  std::string name;  // label for anomaly details ("127.0.0.1:19311", file)
  std::vector<TraceEvent> events;
  TraceInfo info;
  bool has_info = false;
};

struct CheckerOptions {
  /// Downgrade incomplete traces from anomaly to warning: drops stop
  /// certification either way, but with allow_drops a wrapped ring does
  /// not count against clean() (used by stress tests that only assert "no
  /// anomalies besides drops").
  bool allow_drops = false;
  /// Flag leases still live at the end of the history as protocol
  /// anomalies. Only sound for runs that quiesce (every session
  /// committed/aborted and expiry drained) before the drain.
  bool require_quiescent = false;
  /// Keep at most this many Anomaly records (counters keep counting).
  std::size_t max_anomalies = 100;
};

struct CheckReport {
  std::vector<Anomaly> anomalies;
  std::uint64_t counts[kAnomalyClassCount] = {};

  // History shape (for reporting and for "the run actually ran" checks).
  std::uint64_t trace_events = 0;
  std::uint64_t op_records = 0;
  std::uint64_t grants = 0;         // i_grant + q_inv_grant + q_ref_grant
  std::uint64_t ends = 0;           // commit/abort/release/expire/void
  std::uint64_t reads_checked = 0;  // read_hit records hash-verified
  std::uint64_t reads_exempt = 0;   // read_own + reads of delta-exempt keys
  std::uint64_t open_leases = 0;    // still live at end of history

  /// Every source carried a TRACE_INFO header and drained every recorded
  /// event (dropped == 0 and nothing short-drained).
  bool complete = true;
  /// False when incompleteness forced the lease-lifecycle checks off.
  bool lifecycle_checked = true;

  std::uint64_t total_anomalies() const {
    std::uint64_t n = 0;
    for (std::uint64_t c : counts) n += c;
    return n;
  }
  /// No anomalies (drops excluded only under allow_drops, which keeps them
  /// out of the counters entirely).
  bool clean() const { return total_anomalies() == 0; }
  /// The bar for iqcheck exit 0: a clean AND complete history.
  bool certified() const { return clean() && complete; }

  /// Human-readable multi-line summary (counts, verdict, first anomalies).
  std::string Summary() const;
};

/// Replay `sources` + `ops` and check them. `ops` must be in op-log append
/// order (ParseOpLog/OpLog::Snapshot order); sources may be in any order.
CheckReport CheckHistory(const std::vector<TraceSource>& sources,
                         const std::vector<OpRecord>& ops,
                         const CheckerOptions& options = {});

}  // namespace iq::check
