#include "check/oplog.h"

#include <charconv>
#include <cstdio>

namespace iq::check {
namespace {

/// One row per OpKind, indexed by the enum value.
constexpr const char* kOpKindNames[kOpKindCount] = {
    "seed",     "write",     "delta",    "inval",  "read_hit",
    "read_db",  "read_miss", "read_own", "commit", "abort",
    "transport_error",
};

bool ParseU64(std::string_view v, std::uint64_t* out) {
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), *out);
  return ec == std::errc{} && ptr == v.data() + v.size();
}

bool ParseI64(std::string_view v, std::int64_t* out) {
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), *out);
  return ec == std::errc{} && ptr == v.data() + v.size();
}

}  // namespace

const char* ToString(OpKind k) {
  auto i = static_cast<std::size_t>(k);
  return i < kOpKindCount ? kOpKindNames[i] : "?";
}

std::optional<OpKind> ParseOpKind(std::string_view name) {
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    if (name == kOpKindNames[i]) return static_cast<OpKind>(i);
  }
  return std::nullopt;
}

OpLog::OpLog(const Clock* clock)
    : clock_(clock != nullptr ? *clock : SteadyClock::Instance()) {}

void OpLog::Record(std::uint64_t session, OpKind kind, std::uint64_t key_hash,
                   std::uint64_t value_hash) {
  OpRecord r;
  r.at = clock_.Now();
  r.session = session;
  r.kind = kind;
  r.key_hash = key_hash;
  r.value_hash = value_hash;
  Append(r);
}

void OpLog::Append(const OpRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(record);
}

std::vector<OpRecord> OpLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::size_t OpLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::string OpLog::Dump() const {
  std::vector<OpRecord> records = Snapshot();
  char head[48];
  int n = std::snprintf(head, sizeof head, "OPLOG_INFO %llu\r\n",
                        static_cast<unsigned long long>(records.size()));
  std::string out(head, n > 0 ? static_cast<std::size_t>(n) : 0);
  out += FormatOpRecords(records);
  return out;
}

bool OpLog::DumpToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = Dump();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

std::string FormatOpRecords(const std::vector<OpRecord>& records) {
  std::string out;
  out.reserve(records.size() * 56);
  char line[160];
  for (const OpRecord& r : records) {
    int n = std::snprintf(line, sizeof line, "OP %lld %llu %s %llu %llu\r\n",
                          static_cast<long long>(r.at),
                          static_cast<unsigned long long>(r.session),
                          ToString(r.kind),
                          static_cast<unsigned long long>(r.key_hash),
                          static_cast<unsigned long long>(r.value_hash));
    if (n > 0) out.append(line, static_cast<std::size_t>(n));
  }
  return out;
}

bool ParseOpLog(std::string_view text, std::vector<OpRecord>* out) {
  // All-or-nothing: parse into locals, publish only on full success.
  std::vector<OpRecord> records;
  std::uint64_t declared = 0;
  bool has_info = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

    if (line.rfind("OPLOG_INFO ", 0) == 0) {
      std::uint64_t count = 0;
      if (!ParseU64(line.substr(11), &count)) return false;
      declared += count;
      has_info = true;
      continue;
    }
    if (line.rfind("OP ", 0) != 0) continue;  // noise: skip

    // OP <at> <session> <kind> <key_hash> <value_hash>
    std::string_view rest = line.substr(3);
    std::string_view tok[5];
    std::size_t count = 0;
    while (!rest.empty() && count < 5) {
      std::size_t sp = rest.find(' ');
      tok[count++] = rest.substr(0, sp);
      rest = sp == std::string_view::npos ? std::string_view{}
                                          : rest.substr(sp + 1);
    }
    if (count != 5 || !rest.empty()) return false;

    OpRecord r;
    auto kind = ParseOpKind(tok[2]);
    if (!ParseI64(tok[0], &r.at) || !ParseU64(tok[1], &r.session) || !kind ||
        !ParseU64(tok[3], &r.key_hash) || !ParseU64(tok[4], &r.value_hash)) {
      return false;
    }
    r.kind = *kind;
    records.push_back(r);
  }
  // The truncation guard: a dump that lost its tail (killed process, full
  // disk) declares more records than it carries.
  if (has_info && declared != records.size()) return false;
  out->insert(out->end(), records.begin(), records.end());
  return true;
}

}  // namespace iq::check
