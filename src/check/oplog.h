// Client-side operation log for the offline execution-history checker
// (tools/iqcheck). While the server's lease-trace ring records every lease
// transition, the op log records what *clients actually observed*: one
// record per client-visible read/write/commit/abort with the session id,
// the key hash, and the observed/installed value hash. iqcheck joins the
// two against the IQ protocol + snapshot-isolation axioms (see
// check/checker.h and DESIGN.md §4.8).
//
// Soundness rule for writers: a write intent is logged BEFORE the value is
// installed (SaR/IQset/Set), so by the time any concurrent reader can
// observe the new value its hash is already in the justified set — the log
// can over-approximate the justified hashes (a failed SaR leaves a harmless
// extra entry) but can never make a genuinely committed read look
// unjustified. The mutex-serialized append also gives the file a total
// order consistent with real time, so the checker replays records in file
// order without re-sorting.
//
// Values are recorded as FNV-1a hashes, like the trace ring's key hashes:
// constant-size records, and no payload data leaves the client through the
// log.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"
#include "util/trace_ring.h"

namespace iq::check {

/// What one op-log record describes.
enum class OpKind : std::uint8_t {
  kSeed,      // ground-truth install before the run; justifies its hash
  kWrite,     // write intent: the exact value about to be installed
              // (SaR / IQset / baseline Set); justifies its hash
  kDelta,     // value-changing incremental update intent (IQDelta); the
              // resulting value is unknowable client-side, so the key
              // becomes exempt from hash justification from here on
  kInval,     // delete intent (QaReg)
  kReadHit,   // client-visible cache read; must be justified by a prior
              // seed/write/read_db hash (unless the key is delta-exempt)
  kReadDb,    // RDBMS ground-truth read; justifies its hash
  kReadMiss,  // cache read observed no value
  kReadOwn,   // read served under the session's own live Q lease after its
              // own buffered delta(s) — the own-update visibility probe:
              // observing a pre-delta hash again means the session stopped
              // seeing its own update (Section 4.2.2)
  kCommit,    // logical session committed (key/value fields are 0)
  kAbort,     // logical session aborted
  kTransportError,  // a transport failure ended the logical session (shard
                    // down, connection lost); the session's server-side
                    // fate is unknown, so the checker treats this as a
                    // session end — it lets fault-injection runs join
                    // surviving-shard traces instead of excluding them
};
inline constexpr std::size_t kOpKindCount =
    static_cast<std::size_t>(OpKind::kTransportError) + 1;

const char* ToString(OpKind k);
std::optional<OpKind> ParseOpKind(std::string_view name);

/// Hash recorded when a read observed no value (kReadMiss) or the record
/// carries no value at all (kInval/kCommit/kAbort).
inline constexpr std::uint64_t kNoValueHash = 0;

/// FNV-1a of a value. Never returns kNoValueHash, so "no value" stays
/// distinguishable from every real value.
inline std::uint64_t OpValueHash(std::string_view value) {
  const std::uint64_t h = TraceKeyHash(value);
  return h == kNoValueHash ? 1 : h;
}
inline std::uint64_t OpValueHash(const std::optional<std::string>& value) {
  return value ? OpValueHash(std::string_view(*value)) : kNoValueHash;
}
// Exact-match overloads: a std::string (or literal) argument would otherwise
// convert equally well to string_view and optional<string> and be ambiguous.
inline std::uint64_t OpValueHash(const std::string& value) {
  return OpValueHash(std::string_view(value));
}
inline std::uint64_t OpValueHash(const char* value) {
  return OpValueHash(std::string_view(value));
}

/// One op-log record.
struct OpRecord {
  Nanos at = 0;
  std::uint64_t session = 0;
  OpKind kind = OpKind::kReadHit;
  std::uint64_t key_hash = 0;
  std::uint64_t value_hash = kNoValueHash;
};

/// Thread-safe append-only sink shared by every connection of a run.
class OpLog {
 public:
  /// `clock` stamps `at`; null = process steady clock. Timestamps are
  /// informational (the append order is the authoritative order).
  explicit OpLog(const Clock* clock = nullptr);

  OpLog(const OpLog&) = delete;
  OpLog& operator=(const OpLog&) = delete;

  /// Append one record, stamping `at` from the clock.
  void Record(std::uint64_t session, OpKind kind, std::uint64_t key_hash,
              std::uint64_t value_hash = kNoValueHash);
  /// Append a pre-built record verbatim (tests, replays).
  void Append(const OpRecord& record);

  std::vector<OpRecord> Snapshot() const;
  std::size_t size() const;

  /// Render the full log: an "OPLOG_INFO <count>\r\n" truncation guard
  /// followed by one OP line per record (see FormatOpRecords).
  std::string Dump() const;
  /// Dump() to a file; false on I/O failure.
  bool DumpToFile(const std::string& path) const;

 private:
  const Clock& clock_;
  mutable std::mutex mu_;
  std::vector<OpRecord> records_;
};

/// One "OP <at> <session> <kind> <key_hash> <value_hash>\r\n" line per
/// record (no OPLOG_INFO header).
std::string FormatOpRecords(const std::vector<OpRecord>& records);

/// Inverse of Dump()/FormatOpRecords: parses OP lines in order, ignoring
/// unrecognized lines. All-or-nothing: a malformed OP/OPLOG_INFO line
/// leaves *out untouched and returns false. When OPLOG_INFO headers are
/// present their counts must sum to the number of OP lines (a truncated
/// dump fails instead of half-ingesting as a valid history).
bool ParseOpLog(std::string_view text, std::vector<OpRecord>* out);

}  // namespace iq::check
