// FaultBackend: deterministic transport-error injection at the KvsBackend
// seam, for tests above the wire layer (IQSession restart discipline,
// ShardedBackend circuit breaking) that don't want a real channel in the
// loop. Each verb can be armed to fail its next N calls with the verb's
// transport-error shape (kTransportError, id 0, nullopt, false — exactly
// what net::RemoteBackend reports for a dead connection), or the whole
// backend can be taken down.
//
// Void verbs (DaR/Commit/Abort/ReleaseKey) "fail" by not forwarding — the
// wire-layer reality of a commit that never reached the server.
//
// Thread safety: as safe as the wrapped backend; the armed counters are
// atomics.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/kvs_backend.h"

namespace iq {

class FaultBackend final : public KvsBackend {
 public:
  enum class Verb {
    kGenID,
    kIQget,
    kIQset,
    kQaRead,
    kSaR,
    kQaReg,
    kDaR,
    kIQDelta,
    kCommit,
    kAbort,
    kReleaseKey,
    kPlainRead,   // Get / Incr / Decr
    kPlainWrite,  // Set / Add / Cas / Append / Prepend / DeleteVoid
  };
  static constexpr std::size_t kVerbCount = 13;

  explicit FaultBackend(KvsBackend& inner) : inner_(inner) {}

  /// Arm `verb` to fail its next `n` calls.
  void FailNext(Verb verb, int n = 1) {
    armed_[static_cast<std::size_t>(verb)].store(n, std::memory_order_relaxed);
  }
  /// Every verb fails while true (a crashed server).
  void SetDown(bool down) { down_.store(down, std::memory_order_relaxed); }
  std::uint64_t faults_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  const Clock& clock() const override { return inner_.clock(); }

  SessionId GenID() override {
    if (Fire(Verb::kGenID)) return 0;
    return inner_.GenID();
  }
  GetReply IQget(std::string_view key, SessionId session = 0) override {
    if (Fire(Verb::kIQget)) {
      GetReply r;
      r.status = GetReply::Status::kTransportError;
      return r;
    }
    return inner_.IQget(key, session);
  }
  StoreResult IQset(std::string_view key, std::string_view value,
                    LeaseToken token) override {
    if (Fire(Verb::kIQset)) return StoreResult::kTransportError;
    return inner_.IQset(key, value, token);
  }
  QaReadReply QaRead(std::string_view key, SessionId session) override {
    if (Fire(Verb::kQaRead)) {
      QaReadReply r;
      r.status = QaReadReply::Status::kTransportError;
      return r;
    }
    return inner_.QaRead(key, session);
  }
  StoreResult SaR(std::string_view key, std::optional<std::string_view> v_new,
                  LeaseToken token) override {
    if (Fire(Verb::kSaR)) return StoreResult::kTransportError;
    return inner_.SaR(key, v_new, token);
  }
  QuarantineResult QaReg(SessionId tid, std::string_view key) override {
    if (Fire(Verb::kQaReg)) return QuarantineResult::kTransportError;
    return inner_.QaReg(tid, key);
  }
  void DaR(SessionId tid) override {
    if (Fire(Verb::kDaR)) return;
    inner_.DaR(tid);
  }
  QuarantineResult IQDelta(SessionId tid, std::string_view key,
                           DeltaOp delta) override {
    if (Fire(Verb::kIQDelta)) return QuarantineResult::kTransportError;
    return inner_.IQDelta(tid, key, std::move(delta));
  }
  void Commit(SessionId tid) override {
    if (Fire(Verb::kCommit)) return;
    inner_.Commit(tid);
  }
  void Abort(SessionId tid) override {
    if (Fire(Verb::kAbort)) return;
    inner_.Abort(tid);
  }
  void ReleaseKey(SessionId tid, std::string_view key) override {
    if (Fire(Verb::kReleaseKey)) return;
    inner_.ReleaseKey(tid, key);
  }

  std::optional<CacheItem> Get(std::string_view key) override {
    if (Fire(Verb::kPlainRead)) return std::nullopt;
    return inner_.Get(key);
  }
  StoreResult Set(std::string_view key, std::string_view value) override {
    if (Fire(Verb::kPlainWrite)) return StoreResult::kTransportError;
    return inner_.Set(key, value);
  }
  StoreResult Add(std::string_view key, std::string_view value) override {
    if (Fire(Verb::kPlainWrite)) return StoreResult::kTransportError;
    return inner_.Add(key, value);
  }
  StoreResult Cas(std::string_view key, std::string_view value,
                  std::uint64_t cas) override {
    if (Fire(Verb::kPlainWrite)) return StoreResult::kTransportError;
    return inner_.Cas(key, value, cas);
  }
  StoreResult Append(std::string_view key, std::string_view blob) override {
    if (Fire(Verb::kPlainWrite)) return StoreResult::kTransportError;
    return inner_.Append(key, blob);
  }
  StoreResult Prepend(std::string_view key, std::string_view blob) override {
    if (Fire(Verb::kPlainWrite)) return StoreResult::kTransportError;
    return inner_.Prepend(key, blob);
  }
  std::optional<std::uint64_t> Incr(std::string_view key,
                                    std::uint64_t amount) override {
    if (Fire(Verb::kPlainRead)) return std::nullopt;
    return inner_.Incr(key, amount);
  }
  std::optional<std::uint64_t> Decr(std::string_view key,
                                    std::uint64_t amount) override {
    if (Fire(Verb::kPlainRead)) return std::nullopt;
    return inner_.Decr(key, amount);
  }
  bool DeleteVoid(std::string_view key) override {
    if (Fire(Verb::kPlainWrite)) return false;
    return inner_.DeleteVoid(key);
  }

 private:
  /// True when this call must fail: the backend is down, or the verb's
  /// armed budget was positive (decremented by one).
  bool Fire(Verb verb) {
    if (down_.load(std::memory_order_relaxed)) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    std::atomic<int>& armed = armed_[static_cast<std::size_t>(verb)];
    int n = armed.load(std::memory_order_relaxed);
    while (n > 0) {
      if (armed.compare_exchange_weak(n, n - 1, std::memory_order_relaxed)) {
        injected_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  KvsBackend& inner_;
  std::atomic<int> armed_[kVerbCount] = {};
  std::atomic<bool> down_{false};
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace iq
