#include "core/iq_client.h"

namespace iq {

IQClient::IQClient(KvsBackend& backend, Config config)
    : backend_(backend), config_(config), seed_rng_(config.seed) {
  if (config_.exponential_backoff) {
    backoff_ = std::make_unique<ExponentialBackoff>(config_.backoff_base,
                                                    config_.backoff_cap);
  } else {
    backoff_ = std::make_unique<FixedBackoff>(config_.backoff_base);
  }
}

IQClient::IQClient(KvsBackend& backend) : IQClient(backend, Config{}) {}

std::unique_ptr<IQSession> IQClient::NewSession() {
  return std::unique_ptr<IQSession>(new IQSession(*this, backend_.GenID()));
}

IQSession::IQSession(IQClient& client, SessionId id)
    : client_(client), id_(id), rng_([&] {
        std::lock_guard lock(client.rng_mu_);
        return client.seed_rng_.Fork();
      }()) {}

IQSession::~IQSession() {
  // A session destroyed without Commit() behaves like a failed application
  // node: abort explicitly so leases release immediately rather than
  // waiting for expiry.
  if (!i_tokens_.empty() || !q_tokens_.empty()) Abort();
  if (id_ != 0) client_.backend_.Abort(id_);
}

bool IQSession::EnsureId() {
  if (id_ != 0) return true;
  id_ = client_.backend_.GenID();
  return id_ != 0;
}

ClientGetResult IQSession::Get(std::string_view key, int max_retries) {
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    GetReply reply = client_.backend_.IQget(key, id_);
    switch (reply.status) {
      case GetReply::Status::kHit:
        return {ClientGetResult::Status::kHit, std::move(reply.value)};
      case GetReply::Status::kMissGrantedI:
        i_tokens_[std::string(key)] = reply.token;
        return {ClientGetResult::Status::kMissRecompute, {}};
      case GetReply::Status::kMissNoLease:
        return {ClientGetResult::Status::kMissNoInstall, {}};
      case GetReply::Status::kTransportError:
        // Cache unreachable: degrade the read to RDBMS pass-through. No I
        // lease exists, so kMissNoInstall is exact — compute fresh, install
        // nothing. Retrying here would spin the budget against a dead host.
        ++stats_.transport_errors;
        return {ClientGetResult::Status::kMissNoInstall, {}};
      case GetReply::Status::kMissBackoff: {
        ++stats_.get_backoffs;
        SleepFor(client_.backend_.clock(),
                 client_.backoff_->DelayFor(attempt, rng_));
        break;
      }
    }
  }
  return {ClientGetResult::Status::kTimeout, {}};
}

void IQSession::Put(std::string_view key, std::string_view value) {
  auto it = i_tokens_.find(std::string(key));
  if (it == i_tokens_.end()) return;  // no lease: nothing to install
  client_.backend_.IQset(key, value, it->second);
  i_tokens_.erase(it);
}

ClientQResult IQSession::Quarantine(std::string_view key) {
  if (!EnsureId()) {
    ++stats_.transport_errors;
    return ClientQResult::kTransportError;
  }
  switch (client_.backend_.QaReg(id_, key)) {
    case QuarantineResult::kGranted:
      return ClientQResult::kGranted;
    case QuarantineResult::kReject:
      ++stats_.q_conflicts;
      return ClientQResult::kQConflict;
    case QuarantineResult::kTransportError:
      ++stats_.transport_errors;
      return ClientQResult::kTransportError;
  }
  return ClientQResult::kTransportError;
}

ClientQResult IQSession::QaRead(std::string_view key,
                                std::optional<std::string>& value) {
  if (!EnsureId()) {
    ++stats_.transport_errors;
    return ClientQResult::kTransportError;
  }
  QaReadReply reply = client_.backend_.QaRead(key, id_);
  if (reply.status == QaReadReply::Status::kReject) {
    ++stats_.q_conflicts;
    return ClientQResult::kQConflict;
  }
  if (reply.status == QaReadReply::Status::kTransportError) {
    ++stats_.transport_errors;
    return ClientQResult::kTransportError;
  }
  q_tokens_[std::string(key)] = reply.token;
  value = std::move(reply.value);
  return ClientQResult::kGranted;
}

void IQSession::SaR(std::string_view key,
                    std::optional<std::string_view> v_new) {
  auto it = q_tokens_.find(std::string(key));
  if (it == q_tokens_.end()) return;
  client_.backend_.SaR(key, v_new, it->second);
  q_tokens_.erase(it);
}

ClientQResult IQSession::Delta(std::string_view key, DeltaOp delta) {
  if (!EnsureId()) {
    ++stats_.transport_errors;
    return ClientQResult::kTransportError;
  }
  switch (client_.backend_.IQDelta(id_, key, std::move(delta))) {
    case QuarantineResult::kGranted:
      return ClientQResult::kGranted;
    case QuarantineResult::kReject:
      ++stats_.q_conflicts;
      return ClientQResult::kQConflict;
    case QuarantineResult::kTransportError:
      ++stats_.transport_errors;
      return ClientQResult::kTransportError;
  }
  return ClientQResult::kTransportError;
}

ClientQResult IQSession::Append(std::string_view key, std::string_view blob) {
  return Delta(key, DeltaOp{DeltaOp::Kind::kAppend, std::string(blob), 0});
}

ClientQResult IQSession::Incr(std::string_view key, std::uint64_t amount) {
  return Delta(key, DeltaOp{DeltaOp::Kind::kIncr, {}, amount});
}

ClientQResult IQSession::Decr(std::string_view key, std::uint64_t amount) {
  return Delta(key, DeltaOp{DeltaOp::Kind::kDecr, {}, amount});
}

void IQSession::Commit() {
  client_.backend_.Commit(id_);
  i_tokens_.clear();
  q_tokens_.clear();
  backoff_attempt_ = 0;
}

void IQSession::Abort() {
  client_.backend_.Abort(id_);
  i_tokens_.clear();
  q_tokens_.clear();
  backoff_attempt_ = 0;
}

void IQSession::DropLease(std::string_view key) {
  client_.backend_.ReleaseKey(id_, key);
  i_tokens_.erase(std::string(key));
  q_tokens_.erase(std::string(key));
}

void IQSession::Backoff() {
  SleepFor(client_.backend_.clock(),
           client_.backoff_->DelayFor(backoff_attempt_++, rng_));
}

}  // namespace iq
