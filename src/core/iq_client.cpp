#include "core/iq_client.h"

namespace iq {

IQClient::IQClient(KvsBackend& backend, Config config)
    : backend_(backend), config_(config), seed_rng_(config.seed) {
  if (config_.exponential_backoff) {
    backoff_ = std::make_unique<ExponentialBackoff>(config_.backoff_base,
                                                    config_.backoff_cap);
  } else {
    backoff_ = std::make_unique<FixedBackoff>(config_.backoff_base);
  }
  if (config_.near_capacity > 0) {
    near_ = std::make_unique<NearCache>(config_.near_capacity,
                                        backend_.clock());
  }
}

IQClient::IQClient(KvsBackend& backend) : IQClient(backend, Config{}) {}

std::unique_ptr<IQSession> IQClient::NewSession() {
  return std::unique_ptr<IQSession>(new IQSession(*this, backend_.GenID()));
}

IQSession::IQSession(IQClient& client, SessionId id)
    : client_(client), id_(id), rng_([&] {
        std::lock_guard lock(client.rng_mu_);
        return client.seed_rng_.Fork();
      }()) {}

IQSession::~IQSession() {
  // A session destroyed without Commit() behaves like a failed application
  // node: abort explicitly so leases release immediately rather than
  // waiting for expiry.
  if (!i_tokens_.empty() || !q_tokens_.empty()) Abort();
  if (id_ != 0) client_.backend_.Abort(id_);
}

bool IQSession::EnsureId() {
  if (id_ != 0) return true;
  id_ = client_.backend_.GenID();
  return id_ != 0;
}

void IQSession::NearInvalidate(std::string_view key) {
  NearCache* near = client_.near_cache();
  if (near == nullptr) return;
  std::string skey(key);
  near->Invalidate(skey);
  near_written_.insert(std::move(skey));
}

ClientGetResult IQSession::Get(std::string_view key, int max_retries) {
  NearCache* near = client_.near_cache();
  if (near != nullptr) {
    // Zero round trips: a locally valid entry is served straight from the
    // near cache. Entries self-invalidate past their granted interval, so
    // staleness stays within the server's bound (DESIGN.md §4.10).
    if (auto hit = near->Get(std::string(key))) {
      return {ClientGetResult::Status::kHit, std::move(hit->value), true,
              hit->remaining};
    }
  }
  // Re-mint a session id minted during an outage before issuing IQget: an
  // I lease granted under session 0 would be orphaned once the lazy
  // re-mint (via a later write verb) switches ids, leaving Commit/Abort
  // unable to release it.
  if (!EnsureId()) {
    ++stats_.transport_errors;
    return {ClientGetResult::Status::kMissNoInstall, {}};
  }
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    GetReply reply = client_.backend_.IQget(key, id_);
    switch (reply.status) {
      case GetReply::Status::kHit:
        if (near != nullptr && reply.validity > 0) {
          near->Insert(std::string(key), reply.value, reply.validity);
        }
        return {ClientGetResult::Status::kHit, std::move(reply.value)};
      case GetReply::Status::kMissGrantedI:
        i_tokens_[std::string(key)] = reply.token;
        return {ClientGetResult::Status::kMissRecompute, {}};
      case GetReply::Status::kMissNoLease:
        return {ClientGetResult::Status::kMissNoInstall, {}};
      case GetReply::Status::kTransportError:
        // Cache unreachable: degrade the read to RDBMS pass-through. No I
        // lease exists, so kMissNoInstall is exact — compute fresh, install
        // nothing. Retrying here would spin the budget against a dead host.
        ++stats_.transport_errors;
        return {ClientGetResult::Status::kMissNoInstall, {}};
      case GetReply::Status::kMissBackoff: {
        ++stats_.get_backoffs;
        SleepFor(client_.backend_.clock(),
                 client_.backoff_->DelayFor(attempt, rng_));
        break;
      }
    }
  }
  return {ClientGetResult::Status::kTimeout, {}};
}

void IQSession::Put(std::string_view key, std::string_view value) {
  auto it = i_tokens_.find(std::string(key));
  if (it == i_tokens_.end()) return;  // no lease: nothing to install
  // The freshly computed value supersedes whatever the near cache holds;
  // it gains no validity of its own (grants only come with IQget hits).
  NearInvalidate(key);
  client_.backend_.IQset(key, value, it->second);
  i_tokens_.erase(it);
}

ClientQResult IQSession::Quarantine(std::string_view key) {
  // Write-your-own-reads within this client: drop the local entry before
  // the quarantine lands so no later Get of this process serves the
  // soon-to-be-deleted value locally.
  NearInvalidate(key);
  if (!EnsureId()) {
    ++stats_.transport_errors;
    return ClientQResult::kTransportError;
  }
  switch (client_.backend_.QaReg(id_, key)) {
    case QuarantineResult::kGranted:
      return ClientQResult::kGranted;
    case QuarantineResult::kReject:
      ++stats_.q_conflicts;
      return ClientQResult::kQConflict;
    case QuarantineResult::kTransportError:
      ++stats_.transport_errors;
      return ClientQResult::kTransportError;
  }
  return ClientQResult::kTransportError;
}

ClientQResult IQSession::QaRead(std::string_view key,
                                std::optional<std::string>& value) {
  NearInvalidate(key);
  if (!EnsureId()) {
    ++stats_.transport_errors;
    return ClientQResult::kTransportError;
  }
  QaReadReply reply = client_.backend_.QaRead(key, id_);
  if (reply.status == QaReadReply::Status::kReject) {
    ++stats_.q_conflicts;
    return ClientQResult::kQConflict;
  }
  if (reply.status == QaReadReply::Status::kTransportError) {
    ++stats_.transport_errors;
    return ClientQResult::kTransportError;
  }
  q_tokens_[std::string(key)] = reply.token;
  value = std::move(reply.value);
  return ClientQResult::kGranted;
}

void IQSession::SaR(std::string_view key,
                    std::optional<std::string_view> v_new) {
  auto it = q_tokens_.find(std::string(key));
  if (it == q_tokens_.end()) return;
  NearInvalidate(key);
  client_.backend_.SaR(key, v_new, it->second);
  q_tokens_.erase(it);
}

ClientQResult IQSession::Delta(std::string_view key, DeltaOp delta) {
  NearInvalidate(key);
  if (!EnsureId()) {
    ++stats_.transport_errors;
    return ClientQResult::kTransportError;
  }
  switch (client_.backend_.IQDelta(id_, key, std::move(delta))) {
    case QuarantineResult::kGranted:
      return ClientQResult::kGranted;
    case QuarantineResult::kReject:
      ++stats_.q_conflicts;
      return ClientQResult::kQConflict;
    case QuarantineResult::kTransportError:
      ++stats_.transport_errors;
      return ClientQResult::kTransportError;
  }
  return ClientQResult::kTransportError;
}

ClientQResult IQSession::Append(std::string_view key, std::string_view blob) {
  return Delta(key, DeltaOp{DeltaOp::Kind::kAppend, std::string(blob), 0});
}

ClientQResult IQSession::Incr(std::string_view key, std::uint64_t amount) {
  return Delta(key, DeltaOp{DeltaOp::Kind::kIncr, {}, amount});
}

ClientQResult IQSession::Decr(std::string_view key, std::uint64_t amount) {
  return Delta(key, DeltaOp{DeltaOp::Kind::kDecr, {}, amount});
}

void IQSession::Commit() {
  client_.backend_.Commit(id_);
  // Re-invalidate everything this session wrote: a concurrent Get in this
  // process may have re-populated an entry between the write verb's eager
  // invalidation and the commit taking effect.
  if (NearCache* near = client_.near_cache()) {
    for (const std::string& key : near_written_) near->Invalidate(key);
  }
  near_written_.clear();
  i_tokens_.clear();
  q_tokens_.clear();
  backoff_attempt_ = 0;
}

void IQSession::Abort() {
  client_.backend_.Abort(id_);
  if (NearCache* near = client_.near_cache()) {
    for (const std::string& key : near_written_) near->Invalidate(key);
  }
  near_written_.clear();
  i_tokens_.clear();
  q_tokens_.clear();
  backoff_attempt_ = 0;
}

void IQSession::DropLease(std::string_view key) {
  client_.backend_.ReleaseKey(id_, key);
  i_tokens_.erase(std::string(key));
  q_tokens_.erase(std::string(key));
}

void IQSession::Backoff() {
  SleepFor(client_.backend_.clock(),
           client_.backoff_->DelayFor(backoff_attempt_++, rng_));
}

}  // namespace iq
