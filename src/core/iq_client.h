// IQ-Client: the application-facing side of the IQ framework (the paper's
// modified Whalin client). Lease tokens and back-off are managed here and
// are invisible to application code; a session object exposes the paper's
// programming model:
//
//   read session:   Get() -> hit, or miss + permission to recompute;
//                   Put() installs the recomputed value (token attached).
//   write session:  QaRead()/Delta()/Quarantine() before the RDBMS commit,
//                   then SaR()/Commit() after it; Abort() on failure.
//
// A QaRead/Delta rejection (Q-Q conflict, Figure 5b) surfaces as
// kQConflict: the caller must release everything (Abort()), roll back its
// RDBMS transaction, back off (Backoff()), and re-run the whole session.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "core/kvs_backend.h"
#include "core/near_cache.h"
#include "util/backoff.h"
#include "util/rng.h"

namespace iq {

/// Client-side view of a read.
struct ClientGetResult {
  enum class Status {
    kHit,        // value returned
    kMissRecompute,  // query the RDBMS and call Put() with the result
    kMissNoInstall,  // query the RDBMS; do NOT Put() (own quarantined key)
    kTimeout,    // retry budget exhausted while backing off
  };
  Status status;
  std::string value;
  /// kHit only: served from the client's near cache, zero round trips.
  bool near_hit = false;
  /// near_hit only: how much of the granted validity interval remained at
  /// serve time (> 0 — expired entries are never served). Lets the casql
  /// auditor assert an observed-stale near hit is within its interval.
  Nanos near_remaining = 0;
};

/// Client-side view of a quarantine request.
enum class ClientQResult {
  kGranted,
  kQConflict,  // release all leases, roll back, back off, restart session
  kTransportError,  // cache unreachable; the lease/quarantine is NOT in
                    // place. The caller must treat this like a conflict
                    // (roll back, back off, restart) — never commit the
                    // RDBMS txn as if the quarantine succeeded.
};

/// Per-session client-side counters (drives Table 6).
struct SessionStats {
  std::uint64_t get_backoffs = 0;
  std::uint64_t q_conflicts = 0;
  std::uint64_t transport_errors = 0;
};

class IQClient;

/// One session: at most one RDBMS transaction plus KVS operations, with all
/// leases released by Commit()/Abort(). Not thread-safe (a session belongs
/// to one application thread, like one memcached connection).
class IQSession {
 public:
  ~IQSession();
  IQSession(IQSession&&) = delete;

  SessionId id() const { return id_; }
  const SessionStats& stats() const { return stats_; }

  // ---- read path ----------------------------------------------------------

  /// IQget with transparent back-off (up to `max_retries` attempts). A
  /// transport error surfaces as kMissNoInstall: read the RDBMS directly,
  /// install nothing — safe (no token exists to install with) and it
  /// degrades reads to pass-through instead of spinning the retry budget
  /// against an unreachable server.
  ClientGetResult Get(std::string_view key, int max_retries = 100);

  /// Install a value computed after a kMissRecompute. Silently ignored by
  /// the server when the I lease was voided meanwhile.
  void Put(std::string_view key, std::string_view value);

  // ---- write path: invalidate ----------------------------------------------

  /// Quarantine `key` for deletion at Commit (QaReg). Granted whenever the
  /// server is reachable; kTransportError means the quarantine is NOT in
  /// place and the session must abort/back off/retry, not commit.
  ClientQResult Quarantine(std::string_view key);

  // ---- write path: refresh ---------------------------------------------------

  /// Quarantine-and-Read. On kGranted, `value` holds the current value
  /// (nullopt on KVS miss) and the Q lease is held until SaR/Commit/Abort.
  ClientQResult QaRead(std::string_view key, std::optional<std::string>& value);

  /// Swap-and-Release for a key previously QaRead by this session.
  void SaR(std::string_view key, std::optional<std::string_view> v_new);

  // ---- write path: incremental update ---------------------------------------

  /// Buffer an incremental update (applied server-side at Commit()).
  ClientQResult Delta(std::string_view key, DeltaOp delta);
  ClientQResult Append(std::string_view key, std::string_view blob);
  ClientQResult Incr(std::string_view key, std::uint64_t amount);
  ClientQResult Decr(std::string_view key, std::uint64_t amount);

  // ---- lifecycle ------------------------------------------------------------

  /// Apply buffered changes (delete invalidated keys, apply deltas) and
  /// release every lease. Call after the RDBMS transaction commits.
  void Commit();

  /// Discard buffered changes and release every lease, leaving current
  /// values in place. Call when the RDBMS transaction aborts.
  void Abort();

  /// Sleep per the client's back-off policy; increments the attempt counter
  /// so repeated calls wait longer. Reset by Commit/Abort.
  void Backoff();

  /// Reset the back-off escalation to base delay. Commit/Abort do this
  /// implicitly; callers that recycle a session across logical restarts
  /// without either (e.g. a baseline write loop that only ever calls
  /// Backoff()) must reset explicitly, or the counter escalates forever
  /// and every later conflict waits the cap delay.
  void ResetBackoff() { backoff_attempt_ = 0; }

  /// Current back-off escalation level (0 = next Backoff waits base delay).
  int backoff_attempt() const { return backoff_attempt_; }

  /// Relinquish a lease held on one key without applying anything (e.g. an
  /// I lease whose recompute found no row to cache).
  void DropLease(std::string_view key);

 private:
  friend class IQClient;
  IQSession(IQClient& client, SessionId id);

  /// Sessions minted while the server was unreachable carry id 0; re-mint
  /// lazily so such a session heals once the backend reconnects. False
  /// while the backend stays unreachable.
  bool EnsureId();

  /// Eagerly drop `key` from the client's near cache (write-your-own-reads
  /// within this client) and remember it so Commit/Abort re-invalidate —
  /// a racing Get of another session could re-populate the entry between
  /// the verb and the commit.
  void NearInvalidate(std::string_view key);

  IQClient& client_;
  SessionId id_;
  /// I-lease tokens held for keys read via Get().
  std::unordered_map<std::string, LeaseToken> i_tokens_;
  /// Q(refresh) tokens held via QaRead.
  std::unordered_map<std::string, LeaseToken> q_tokens_;
  /// Keys this session wrote (near-cache re-invalidation at Commit/Abort).
  std::unordered_set<std::string> near_written_;
  int backoff_attempt_ = 0;
  SessionStats stats_;
  Rng rng_;
};

/// Factory bound to one IQ-Server; hands out sessions.
class IQClient {
 public:
  struct Config {
    /// Back-off before retrying a contended read or a restarted session.
    Nanos backoff_base = 50 * kNanosPerMicro;
    Nanos backoff_cap = 10 * kNanosPerMilli;
    /// false selects FixedBackoff(backoff_base) (the A3 ablation).
    bool exponential_backoff = true;
    /// Near-cache entry capacity (DESIGN.md §4.10). 0 = no near cache (the
    /// default). Entries are only ever stored when the server grants a
    /// validity interval with a hit, so enabling this against a server with
    /// near_validity == 0 is a harmless no-op.
    std::size_t near_capacity = 0;
    std::uint64_t seed = 42;
  };

  IQClient(KvsBackend& backend, Config config);
  explicit IQClient(KvsBackend& backend);

  KvsBackend& backend() { return backend_; }

  /// The client-process near cache shared by every session of this client;
  /// nullptr when Config::near_capacity == 0.
  NearCache* near_cache() { return near_.get(); }

  std::unique_ptr<IQSession> NewSession();

 private:
  friend class IQSession;

  KvsBackend& backend_;
  Config config_;
  std::unique_ptr<BackoffPolicy> backoff_;
  std::unique_ptr<NearCache> near_;
  std::mutex rng_mu_;
  Rng seed_rng_;
};

}  // namespace iq
