#include "core/iq_server.h"

#include <algorithm>
#include <charconv>

namespace iq {
namespace {

std::optional<std::uint64_t> ParseUint(std::string_view v) {
  std::uint64_t out = 0;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) return std::nullopt;
  return out;
}

/// Apply one delta to an in-memory value (memcached semantics; incr/decr on
/// non-numeric values are ignored, decr saturates at zero).
void ApplyDeltaToValue(std::string& value, const DeltaOp& delta) {
  switch (delta.kind) {
    case DeltaOp::Kind::kAppend:
      value.append(delta.blob);
      return;
    case DeltaOp::Kind::kPrepend:
      value.insert(0, delta.blob);
      return;
    case DeltaOp::Kind::kIncr: {
      auto cur = ParseUint(value);
      if (cur) value = std::to_string(*cur + delta.amount);
      return;
    }
    case DeltaOp::Kind::kDecr: {
      auto cur = ParseUint(value);
      if (cur) value = std::to_string(*cur >= delta.amount ? *cur - delta.amount : 0);
      return;
    }
  }
}

}  // namespace

const char* ToString(CommandClass c) {
  switch (c) {
    case CommandClass::kGet: return "get";
    case CommandClass::kStore: return "store";
    case CommandClass::kDelete: return "delete";
    case CommandClass::kIncrDecr: return "incr_decr";
    case CommandClass::kIQget: return "iqget";
    case CommandClass::kIQset: return "iqset";
    case CommandClass::kQaRead: return "qaread";
    case CommandClass::kSaR: return "sar";
    case CommandClass::kQaReg: return "qareg";
    case CommandClass::kDaR: return "dar";
    case CommandClass::kIQDelta: return "iqdelta";
    case CommandClass::kCommit: return "commit";
    case CommandClass::kAbort: return "abort";
    case CommandClass::kOther: return "other";
  }
  return "?";
}

IQServer::IQServer(CacheStore::Config store_config, Config config)
    : config_(config),
      store_([&] {
        if (store_config.clock == nullptr) store_config.clock = config.clock;
        return store_config;
      }()),
      clock_(config.clock != nullptr ? *config.clock : SteadyClock::Instance()),
      leases_(store_.shard_count()),
      shard_stats_(store_.shard_count()) {
  if (config_.trace_capacity > 0) {
    trace_rings_.reserve(store_.shard_count());
    for (std::size_t i = 0; i < store_.shard_count(); ++i) {
      trace_rings_.push_back(
          std::make_unique<TraceRing>(config_.trace_capacity));
    }
  }
  if (config_.near_validity > 0) near_horizons_.resize(store_.shard_count());
}

void IQServer::RecordNearGrant(const CacheStore::ShardGuard& g,
                               const std::string& key, const LazyNow& now) {
  Nanos& horizon = near_horizons_[g.shard_index()][key];
  horizon = std::max(horizon, now() + config_.near_validity);
  StatsFor(g).near_grants.fetch_add(1, std::memory_order_relaxed);
}

Nanos IQServer::TakeNearHorizon(const CacheStore::ShardGuard& g,
                                const std::string& key) {
  if (near_horizons_.empty()) return 0;
  auto& horizons = near_horizons_[g.shard_index()];
  auto it = horizons.find(key);
  if (it == horizons.end()) return 0;
  const Nanos horizon = it->second;
  horizons.erase(it);
  return horizon;
}

IQServer::IQServer() : IQServer(CacheStore::Config{}, Config{}) {}

bool IQServer::MaybeExpire(const CacheStore::ShardGuard& g,
                           const std::string& key, const LazyNow& now) {
  LeaseEntry* entry = leases_.Find(g.shard_index(), key);
  if (entry == nullptr || !LeaseTable::Expired(*entry, now())) {
    return false;
  }
  if (entry->kind == LeaseKind::kQInvalidate && entry->pending_delete &&
      entry->inv_holders.empty()) {
    // Silent holdover reclaim (DESIGN.md §4.10): every holder's commit or
    // abort was already traced and counted — this entry only existed to
    // keep the committed delete from taking effect before the granted
    // near-cache validity intervals lapsed. No trace event, no expiry
    // counters: to the lease history this session ended at its commit.
    store_.DeleteLocked(g, key);
    leases_.Erase(g.shard_index(), key);
    return true;
  }
  // An expired Q lease deletes the key-value pair: the lease holder may be
  // a failed application node mid-session, and a deleted key is always safe
  // (the next read recomputes from the RDBMS).
  bool deleted = false;
  if (entry->kind != LeaseKind::kInhibit) {
    deleted = store_.DeleteLocked(g, key);
  }
  if (entry->kind == LeaseKind::kQInvalidate) {
    for (SessionId s : entry->inv_holders) registry_.RemoveKey(s, key);
  } else if (entry->holder != 0) {
    registry_.RemoveKey(entry->holder, key);
  }
  SessionId holder = entry->kind == LeaseKind::kQInvalidate ? 0 : entry->holder;
  leases_.Erase(g.shard_index(), key);
  IQShardStats& st = StatsFor(g);
  st.leases_expired.fetch_add(1, std::memory_order_relaxed);
  if (deleted) st.expiry_deletes.fetch_add(1, std::memory_order_relaxed);
  Trace(g, deleted ? LeaseTraceKind::kExpireDelete : LeaseTraceKind::kExpire,
        holder, key, now);
  return true;
}

GetReply IQServer::IQget(std::string_view key, SessionId session) {
  // Mutex-free fast path (DESIGN.md §4.6): when the key's shard holds no
  // lease at all, a read hit is just a plain cache hit — serve it from the
  // seqlock mirror without taking the shard lock. The shard-level count is
  // conservative: any lease anywhere in the shard sends us to the locked
  // path, which also preserves own-update visibility (a session that holds
  // a lease on this key observes its own grant in program order, so the
  // count it reads here is nonzero). Disabled while near-cache validity
  // grants are on: every hit must record its grant horizon under the shard
  // lock so QaReg can hold the Q until the newest grant lapses.
  if (store_.optimistic_enabled() && config_.near_validity == 0) {
    const std::uint64_t h = CacheStore::HashKey(key);
    if (leases_.ShardSizeRelaxed(store_.ShardIndexForHash(h)) == 0) {
      if (auto item = store_.OptimisticGet(key, h)) {
        return {GetReply::Status::kHit, std::move(item->value), 0};
      }
    }
  }
  std::string skey(key);
  auto g = store_.LockKey(key);
  const LazyNow now(clock_);
  MaybeExpire(g, skey, now);
  LeaseEntry* entry = leases_.Find(g.shard_index(), skey);

  if (entry != nullptr) {
    switch (entry->kind) {
      case LeaseKind::kQInvalidate: {
        if (session != 0 && entry->inv_holders.contains(session)) {
          // The quarantining session must observe a miss so it re-queries
          // the RDBMS and sees its own update (Section 3.3). No lease: it
          // must not install the recomputed value either.
          return {GetReply::Status::kMissNoLease, {}, 0};
        }
        if (config_.deferred_delete) {
          // Old version stays visible until DaR: readers serialize before
          // the in-flight write session (the re-arrangement window).
          auto item = store_.GetLocked(g, key);
          if (item) return {GetReply::Status::kHit, std::move(item->value), 0};
        }
        StatsFor(g).backoffs.fetch_add(1, std::memory_order_relaxed);
        return {GetReply::Status::kMissBackoff, {}, 0};
      }
      case LeaseKind::kQRefresh: {
        if (session != 0 && entry->holder == session) {
          // Own-update visibility (Section 4.2.2): the holder sees its
          // buffered deltas applied. A holder touch also extends the lease:
          // the session is demonstrably alive, and letting the lease lapse
          // mid-session would delete the key and no-op the coming SaR.
          entry->expires_at = Deadline(now);
          auto item = store_.GetLocked(g, key);
          if (item) {
            std::string value = std::move(item->value);
            for (const auto& d : entry->pending_deltas) ApplyDeltaToValue(value, d);
            return {GetReply::Status::kHit, std::move(value), 0};
          }
          return {GetReply::Status::kMissNoLease, {}, 0};
        }
        if (config_.deferred_delete) {
          auto item = store_.GetLocked(g, key);
          if (item) return {GetReply::Status::kHit, std::move(item->value), 0};
        }
        StatsFor(g).backoffs.fetch_add(1, std::memory_order_relaxed);
        return {GetReply::Status::kMissBackoff, {}, 0};
      }
      case LeaseKind::kInhibit: {
        auto item = store_.GetLocked(g, key);
        if (item) return {GetReply::Status::kHit, std::move(item->value), 0};
        StatsFor(g).backoffs.fetch_add(1, std::memory_order_relaxed);
        return {GetReply::Status::kMissBackoff, {}, 0};
      }
    }
  }

  auto item = store_.GetLocked(g, key);
  if (item) {
    GetReply reply{GetReply::Status::kHit, std::move(item->value), 0};
    if (config_.near_validity > 0) {
      // Clean hit (no lease entry on the key): grant a validity interval
      // so the caller may serve this value from its near cache without
      // further round trips. Hits under a live lease (deferred delete,
      // own-update replay) never grant — a value already being written out
      // must not gain new validity.
      reply.validity = config_.near_validity;
      RecordNearGrant(g, skey, now);
    }
    return reply;
  }

  // Miss with no pending lease: grant an I lease so exactly one session
  // queries the RDBMS (also Facebook's thundering-herd protection).
  LeaseEntry lease;
  lease.kind = LeaseKind::kInhibit;
  lease.token = NewToken();
  lease.holder = session;
  lease.expires_at = Deadline(now);
  LeaseToken token = lease.token;
  leases_.Put(g.shard_index(), skey, std::move(lease));
  StatsFor(g).i_granted.fetch_add(1, std::memory_order_relaxed);
  Trace(g, LeaseTraceKind::kIGrant, session, key, now);
  return {GetReply::Status::kMissGrantedI, {}, token};
}

StoreResult IQServer::IQset(std::string_view key, std::string_view value,
                            LeaseToken token) {
  std::string skey(key);
  auto g = store_.LockKey(key);
  const LazyNow now(clock_);
  MaybeExpire(g, skey, now);
  LeaseEntry* entry = leases_.Find(g.shard_index(), skey);
  if (entry != nullptr && entry->kind == LeaseKind::kInhibit &&
      entry->token == token && token != 0) {
    SessionId holder = entry->holder;
    store_.SetLocked(g, key, value);
    leases_.Erase(g.shard_index(), skey);
    Trace(g, LeaseTraceKind::kRelease, holder, key, now);
    return StoreResult::kStored;
  }
  // The I lease was voided by a Q request, expired, or never existed: the
  // computed value may be stale, so the set is ignored (Section 3.2).
  StatsFor(g).stale_sets_dropped.fetch_add(1, std::memory_order_relaxed);
  return StoreResult::kNotStored;
}

QaReadReply IQServer::QaRead(std::string_view key, SessionId session) {
  std::string skey(key);
  auto g = store_.LockKey(key);
  const LazyNow now(clock_);
  MaybeExpire(g, skey, now);
  LeaseEntry* entry = leases_.Find(g.shard_index(), skey);

  if (entry != nullptr) {
    if (entry->kind == LeaseKind::kInhibit) {
      // A writer preempts a reader's I lease: the RDBMS ordering between
      // them is unknown, so the reader's eventual IQset must be dropped.
      SessionId reader = entry->holder;
      leases_.Erase(g.shard_index(), skey);
      entry = nullptr;
      StatsFor(g).i_voided.fetch_add(1, std::memory_order_relaxed);
      Trace(g, LeaseTraceKind::kIVoid, reader, key, now);
    } else if (entry->kind == LeaseKind::kQRefresh && entry->holder == session) {
      // Idempotent re-acquisition by the same session: a holder touch, so
      // the deadline extends (the session is alive; an expiry here would
      // delete the key and silently no-op the coming SaR/Commit), and the
      // reply must show the session's own buffered deltas — the same
      // own-update visibility rule (Section 4.2.2) IQget applies. Without
      // the replay, an IQDelta'd update would be visible through IQget but
      // vanish from the very QaRead that re-reads the key.
      entry->expires_at = Deadline(now);
      auto item = store_.GetLocked(g, key);
      if (!item) {
        return {QaReadReply::Status::kGranted, std::nullopt, entry->token};
      }
      std::string value = std::move(item->value);
      // TEST-ONLY mutation (Config::mutate_own_update_invisible): skip the
      // replay so iqcheck can prove it catches the historical bug.
      if (!config_.mutate_own_update_invisible) {
        for (const auto& d : entry->pending_deltas) ApplyDeltaToValue(value, d);
      }
      return {QaReadReply::Status::kGranted, std::move(value), entry->token};
    } else if (config_.mutate_overlap_q &&
               entry->kind == LeaseKind::kQRefresh) {
      // TEST-ONLY mutation (Config::mutate_overlap_q): steal the key from
      // the live foreign Q(refresh) holder instead of rejecting, then fall
      // through to a fresh grant — two write sessions now race on one key
      // and the trace shows a q_ref_grant inside a live Q window.
      leases_.Erase(g.shard_index(), skey);
      entry = nullptr;
    } else {
      // Another write session holds Q (Figure 5b): reject; the caller
      // releases everything, rolls back its RDBMS transaction, retries.
      StatsFor(g).q_rejected.fetch_add(1, std::memory_order_relaxed);
      Trace(g, LeaseTraceKind::kReject, session, key, now);
      return {QaReadReply::Status::kReject, std::nullopt, 0};
    }
  }

  LeaseEntry lease;
  lease.kind = LeaseKind::kQRefresh;
  lease.token = NewToken();
  lease.holder = session;
  lease.expires_at = Deadline(now);
  LeaseToken token = lease.token;
  leases_.Put(g.shard_index(), skey, std::move(lease));
  registry_.AddKey(session, skey);
  StatsFor(g).q_ref_granted.fetch_add(1, std::memory_order_relaxed);
  Trace(g, LeaseTraceKind::kQRefGrant, session, key, now);
  auto item = store_.GetLocked(g, key);
  return {QaReadReply::Status::kGranted,
          item ? std::optional<std::string>(std::move(item->value)) : std::nullopt,
          token};
}

StoreResult IQServer::SaR(std::string_view key,
                          std::optional<std::string_view> v_new,
                          LeaseToken token) {
  std::string skey(key);
  auto g = store_.LockKey(key);
  const LazyNow now(clock_);
  MaybeExpire(g, skey, now);
  LeaseEntry* entry = leases_.Find(g.shard_index(), skey);
  if (entry == nullptr || entry->kind != LeaseKind::kQRefresh ||
      entry->token != token || token == 0) {
    // Voided (by a QaReg) or expired lease: swap is ignored; the key is (or
    // will be) deleted, which is always safe.
    StatsFor(g).stale_sets_dropped.fetch_add(1, std::memory_order_relaxed);
    return StoreResult::kNotFound;
  }
  if (v_new) store_.SetLocked(g, key, *v_new);
  SessionId holder = entry->holder;
  leases_.Erase(g.shard_index(), skey);
  registry_.RemoveKey(holder, skey);
  Trace(g, LeaseTraceKind::kRelease, holder, key, now);
  return StoreResult::kStored;
}

QuarantineResult IQServer::QaReg(SessionId tid, std::string_view key) {
  std::string skey(key);
  auto g = store_.LockKey(key);
  const LazyNow now(clock_);
  MaybeExpire(g, skey, now);
  LeaseEntry* entry = leases_.Find(g.shard_index(), skey);

  if (entry != nullptr) {
    switch (entry->kind) {
      case LeaseKind::kInhibit: {
        SessionId reader = entry->holder;
        leases_.Erase(g.shard_index(), skey);
        entry = nullptr;
        StatsFor(g).i_voided.fetch_add(1, std::memory_order_relaxed);
        Trace(g, LeaseTraceKind::kIVoid, reader, key, now);
        break;
      }
      case LeaseKind::kQInvalidate:
        // Deletes are idempotent: Q(invalidate) leases share (Figure 5a).
        // Sharing is a holder touch: the deadline extends to cover the
        // newest quarantining session. Joining a holdover re-lives it; its
        // hold_until / pending_delete carry over.
        entry->inv_holders.insert(tid);
        entry->expires_at = Deadline(now);
        entry->hold_until = std::max(entry->hold_until, TakeNearHorizon(g, skey));
        registry_.AddKey(tid, skey);
        if (!config_.deferred_delete) store_.DeleteLocked(g, key);
        StatsFor(g).q_inv_granted.fetch_add(1, std::memory_order_relaxed);
        Trace(g, LeaseTraceKind::kQInvGrant, tid, key, now);
        return QuarantineResult::kGranted;
      case LeaseKind::kQRefresh: {
        // Cross-technique collision: invalidation always wins because a
        // delete is always safe. Void the refresh lease - its SaR/Commit
        // becomes a no-op - and quarantine for deletion.
        SessionId writer = entry->holder;
        registry_.RemoveKey(entry->holder, skey);
        leases_.Erase(g.shard_index(), skey);
        entry = nullptr;
        StatsFor(g).q_ref_voided.fetch_add(1, std::memory_order_relaxed);
        Trace(g, LeaseTraceKind::kQRefVoid, writer, key, now);
        break;
      }
    }
  }

  LeaseEntry lease;
  lease.kind = LeaseKind::kQInvalidate;
  lease.inv_holders.insert(tid);
  lease.expires_at = Deadline(now);
  // QaReg on a key with outstanding near-cache validity grants holds the Q
  // until the newest grant lapses (DESIGN.md §4.10): the commit's delete
  // must not take effect as "fresh" while a near cache may still serve the
  // old value within its granted interval.
  lease.hold_until = TakeNearHorizon(g, skey);
  leases_.Put(g.shard_index(), skey, std::move(lease));
  registry_.AddKey(tid, skey);
  if (!config_.deferred_delete) store_.DeleteLocked(g, key);
  StatsFor(g).q_inv_granted.fetch_add(1, std::memory_order_relaxed);
  Trace(g, LeaseTraceKind::kQInvGrant, tid, key, now);
  return QuarantineResult::kGranted;
}

QuarantineResult IQServer::IQDelta(SessionId tid, std::string_view key,
                                   DeltaOp delta) {
  std::string skey(key);
  auto g = store_.LockKey(key);
  const LazyNow now(clock_);
  MaybeExpire(g, skey, now);
  LeaseEntry* entry = leases_.Find(g.shard_index(), skey);

  if (entry != nullptr) {
    if (entry->kind == LeaseKind::kInhibit) {
      SessionId reader = entry->holder;
      leases_.Erase(g.shard_index(), skey);
      entry = nullptr;
      StatsFor(g).i_voided.fetch_add(1, std::memory_order_relaxed);
      Trace(g, LeaseTraceKind::kIVoid, reader, key, now);
    } else if (entry->kind == LeaseKind::kQRefresh && entry->holder == tid) {
      // Holder touch: extend the deadline so a long multi-delta session's
      // lease cannot expire between buffered updates (expiry would delete
      // the key and no-op the eventual Commit).
      entry->expires_at = Deadline(now);
      entry->pending_deltas.push_back(std::move(delta));
      return QuarantineResult::kGranted;
    } else {
      StatsFor(g).q_rejected.fetch_add(1, std::memory_order_relaxed);
      Trace(g, LeaseTraceKind::kReject, tid, key, now);
      return QuarantineResult::kReject;
    }
  }

  LeaseEntry lease;
  lease.kind = LeaseKind::kQRefresh;
  lease.token = NewToken();
  lease.holder = tid;
  lease.expires_at = Deadline(now);
  lease.pending_deltas.push_back(std::move(delta));
  leases_.Put(g.shard_index(), skey, std::move(lease));
  registry_.AddKey(tid, skey);
  StatsFor(g).q_ref_granted.fetch_add(1, std::memory_order_relaxed);
  Trace(g, LeaseTraceKind::kQRefGrant, tid, key, now);
  return QuarantineResult::kGranted;
}

void IQServer::ApplyDeltaLocked(const CacheStore::ShardGuard& g,
                                const std::string& key, const DeltaOp& delta) {
  auto item = store_.GetLocked(g, key);
  if (!item) return;  // delta on a non-resident key is a no-op
  std::string value = std::move(item->value);
  ApplyDeltaToValue(value, delta);
  store_.SetLocked(g, key, value);
}

void IQServer::Commit(SessionId tid) {
  const LazyNow now(clock_);
  for (const std::string& key : registry_.Keys(tid)) {
    auto g = store_.LockKey(key);
    LeaseEntry* entry = leases_.Find(g.shard_index(), key);
    if (entry == nullptr || !entry->HeldBy(tid)) continue;
    switch (entry->kind) {
      case LeaseKind::kQInvalidate: {
        // The invalidating commit takes effect immediately unless validity
        // grants on the key are still outstanding (DESIGN.md §4.10): then
        // the old value stays visible and the delete is deferred until the
        // newest granted interval lapses, matching what remote near caches
        // may still serve.
        const bool hold = entry->hold_until > now();
        if (hold) {
          entry->pending_delete = true;
        } else {
          store_.DeleteLocked(g, key);
        }
        entry->inv_holders.erase(tid);
        if (entry->inv_holders.empty()) {
          if (hold) {
            // Silent holdover: every holder has ended (and is traced as
            // such); MaybeExpire reclaims the entry at hold_until without
            // further trace events or expiry counters.
            entry->expires_at = entry->hold_until;
          } else {
            leases_.Erase(g.shard_index(), key);
          }
        }
        Trace(g, LeaseTraceKind::kCommit, tid, key, now);
        break;
      }
      case LeaseKind::kQRefresh:
        for (const auto& d : entry->pending_deltas) ApplyDeltaLocked(g, key, d);
        leases_.Erase(g.shard_index(), key);
        Trace(g, LeaseTraceKind::kCommit, tid, key, now);
        break;
      case LeaseKind::kInhibit:
        break;  // I leases are not registered; defensive
    }
  }
  registry_.Drop(tid);
  StatsFor(tid).commits.fetch_add(1, std::memory_order_relaxed);
}

void IQServer::DaR(SessionId tid) { Commit(tid); }

void IQServer::Abort(SessionId tid) {
  const LazyNow now(clock_);
  for (const std::string& key : registry_.Keys(tid)) {
    auto g = store_.LockKey(key);
    LeaseEntry* entry = leases_.Find(g.shard_index(), key);
    if (entry == nullptr || !entry->HeldBy(tid)) continue;
    switch (entry->kind) {
      case LeaseKind::kQInvalidate:
        // Leave the current version in place (paper Section 3.3).
        entry->inv_holders.erase(tid);
        if (entry->inv_holders.empty()) {
          if (entry->pending_delete) {
            // Another holder's committed delete is pending behind
            // outstanding validity grants; the abort must not discard it.
            if (entry->hold_until > now()) {
              entry->expires_at = entry->hold_until;  // silent holdover
            } else {
              store_.DeleteLocked(g, key);
              leases_.Erase(g.shard_index(), key);
            }
          } else {
            leases_.Erase(g.shard_index(), key);
          }
        }
        Trace(g, LeaseTraceKind::kAbort, tid, key, now);
        break;
      case LeaseKind::kQRefresh:
        leases_.Erase(g.shard_index(), key);  // pending deltas discarded
        Trace(g, LeaseTraceKind::kAbort, tid, key, now);
        break;
      case LeaseKind::kInhibit:
        break;
    }
  }
  registry_.Drop(tid);
  StatsFor(tid).aborts.fetch_add(1, std::memory_order_relaxed);
}

void IQServer::ReleaseKey(SessionId tid, std::string_view key) {
  std::string skey(key);
  auto g = store_.LockKey(key);
  const LazyNow now(clock_);
  // An overdue lease takes the expiry path first — the quarantine delete
  // plus the leases_expired/expiry_deletes accounting every other lease-
  // mutating entry point performs — and the release is then a no-op.
  MaybeExpire(g, skey, now);
  LeaseEntry* entry = leases_.Find(g.shard_index(), skey);
  if (entry == nullptr || !entry->HeldBy(tid)) return;
  if (entry->kind == LeaseKind::kQInvalidate) {
    entry->inv_holders.erase(tid);
    if (entry->inv_holders.empty()) {
      if (entry->pending_delete && entry->hold_until > now()) {
        entry->expires_at = entry->hold_until;  // silent holdover (§4.10)
      } else {
        if (entry->pending_delete) store_.DeleteLocked(g, skey);
        leases_.Erase(g.shard_index(), skey);
      }
    }
  } else {
    leases_.Erase(g.shard_index(), skey);
  }
  registry_.RemoveKey(tid, skey);
  Trace(g, LeaseTraceKind::kRelease, tid, key, now);
}

bool IQServer::DeleteVoid(std::string_view key) {
  std::string skey(key);
  auto g = store_.LockKey(key);
  const LazyNow now(clock_);
  MaybeExpire(g, skey, now);
  LeaseEntry* entry = leases_.Find(g.shard_index(), skey);
  if (entry != nullptr && entry->kind == LeaseKind::kInhibit) {
    SessionId reader = entry->holder;
    leases_.Erase(g.shard_index(), skey);
    StatsFor(g).i_voided.fetch_add(1, std::memory_order_relaxed);
    Trace(g, LeaseTraceKind::kIVoid, reader, key, now);
  }
  return store_.DeleteLocked(g, key);
}

IQServerStats IQServer::Stats() const {
  IQServerStats total;
  for (const IQShardStats& s : shard_stats_) {
    total.i_granted += s.i_granted.load(std::memory_order_relaxed);
    total.i_voided += s.i_voided.load(std::memory_order_relaxed);
    total.q_ref_voided += s.q_ref_voided.load(std::memory_order_relaxed);
    total.backoffs += s.backoffs.load(std::memory_order_relaxed);
    total.stale_sets_dropped +=
        s.stale_sets_dropped.load(std::memory_order_relaxed);
    total.q_inv_granted += s.q_inv_granted.load(std::memory_order_relaxed);
    total.q_ref_granted += s.q_ref_granted.load(std::memory_order_relaxed);
    total.q_rejected += s.q_rejected.load(std::memory_order_relaxed);
    total.leases_expired += s.leases_expired.load(std::memory_order_relaxed);
    total.expiry_deletes += s.expiry_deletes.load(std::memory_order_relaxed);
    total.commits += s.commits.load(std::memory_order_relaxed);
    total.aborts += s.aborts.load(std::memory_order_relaxed);
    total.near_grants += s.near_grants.load(std::memory_order_relaxed);
  }
  return total;
}

StatsWindowSample IQServer::WindowedStats() {
  return metrics_window_.Advance(Stats(), clock_.Now());
}

std::vector<TraceEvent> IQServer::TraceSnapshot(std::size_t max_events) const {
  std::vector<TraceEvent> merged;
  if (trace_rings_.empty() || max_events == 0) return merged;
  for (const auto& ring : trace_rings_) {
    std::vector<TraceEvent> part = ring->Snapshot(max_events);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  // Per-ring snapshots are already ordered; merge across shards by
  // timestamp (ties broken by shard then ring sequence for determinism).
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.seq < b.seq;
            });
  if (merged.size() > max_events) {
    merged.erase(merged.begin(),
                 merged.end() - static_cast<std::ptrdiff_t>(max_events));
  }
  return merged;
}

std::uint64_t IQServer::TraceRecorded() const {
  std::uint64_t n = 0;
  for (const auto& ring : trace_rings_) n += ring->recorded();
  return n;
}

TraceInfo IQServer::TraceInfoTotal() const {
  TraceInfo info;
  for (const auto& ring : trace_rings_) {
    info.recorded += ring->recorded();
    info.dropped += ring->dropped();
    info.capacity += ring->capacity();
  }
  return info;
}

std::size_t IQServer::LeaseCount() const {
  // Aggregate one shard at a time under that shard's lock: concurrent
  // commands stay serialized against each shard we read, so the per-shard
  // sizes are consistent even though the total is a moving target.
  std::size_t n = 0;
  for (std::size_t shard = 0; shard < store_.shard_count(); ++shard) {
    auto g = store_.LockShard(shard);
    n += leases_.ShardSize(shard);
  }
  return n;
}

std::size_t IQServer::SweepExpired() {
  std::size_t reclaimed = 0;
  Nanos now = clock_.Now();
  for (std::size_t shard = 0; shard < store_.shard_count(); ++shard) {
    auto g = store_.LockShard(shard);
    // Collect first (MaybeExpire mutates the map we are iterating), then
    // expire each through the normal path, which deletes quarantined values
    // and cleans the session registry.
    std::vector<std::string> overdue;
    leases_.ForEach(shard, [&](const std::string& key, LeaseEntry& entry) {
      if (LeaseTable::Expired(entry, now)) overdue.push_back(key);
    });
    const LazyNow batch_now(now);
    for (const std::string& key : overdue) {
      if (MaybeExpire(g, key, batch_now)) ++reclaimed;
    }
    if (!near_horizons_.empty()) {
      // Grant horizons that already lapsed can no longer hold a Q; prune
      // them here so the map stays bounded by the recently-read key set.
      auto& horizons = near_horizons_[shard];
      for (auto it = horizons.begin(); it != horizons.end();) {
        it = it->second <= now ? horizons.erase(it) : std::next(it);
      }
    }
  }
  return reclaimed;
}

std::optional<LeaseKind> IQServer::LeaseOn(std::string_view key) {
  std::string skey(key);
  auto g = store_.LockKey(key);
  const LazyNow now(clock_);
  MaybeExpire(g, skey, now);
  LeaseEntry* entry = leases_.Find(g.shard_index(), skey);
  if (entry == nullptr) return std::nullopt;
  return entry->kind;
}

}  // namespace iq
