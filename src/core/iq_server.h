// IQ-Server: the Twemcache-equivalent CacheStore extended with I and Q
// leases — the paper's Section 5 server, with the Section 3.3 deferred-
// delete optimization and the Section 4.2.2 own-update visibility rules.
//
// Command set (paper numbering):
//   1. IQget(key, session)        read; may grant an I lease on a miss
//   2. IQset(key, value, token)   install a value under a valid I lease
//   3. QaRead(key, session)       Q(refresh) lease + current value
//   4. SaR(key, v_new, token)     swap value, release Q(refresh) lease
//   5. GenID()                    new session/transaction id
//   6. QaReg(tid, key)            Q(invalidate) lease ("QaR" in the paper)
//   7. DaR(tid)                   delete quarantined keys, release leases
//   8. IQDelta(tid, key, delta)   buffer an incremental update under Q
//   9. Commit(tid)                apply buffered deltas / deletes, release
//  10. Abort(tid)                 discard buffered changes, release
//
// Thread safety: every command takes the CacheStore shard lock for its key,
// so lease state and item state mutate atomically per key. Lease expiry is
// enforced lazily on access; an expired Q lease deletes the key-value pair
// (safe: the KVS holds a subset of the RDB), an expired I lease vacates.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/iq_stats.h"
#include "core/kvs_backend.h"
#include "kvs/kvs.h"
#include "leases/lease_table.h"
#include "util/histogram.h"
#include "util/trace_ring.h"

namespace iq {

/// Live counters for one CacheStore shard. Commands increment these while
/// already holding that shard's lock, so distinct shards never contend; the
/// counters are still relaxed atomics because Stats() aggregates without
/// taking any lock (and Commit/Abort account outside a shard lock). The
/// alignment keeps adjacent shards' blocks off each other's cache lines.
struct alignas(64) IQShardStats {
  std::atomic<std::uint64_t> i_granted{0};
  std::atomic<std::uint64_t> i_voided{0};
  std::atomic<std::uint64_t> q_ref_voided{0};
  std::atomic<std::uint64_t> backoffs{0};
  std::atomic<std::uint64_t> stale_sets_dropped{0};
  std::atomic<std::uint64_t> q_inv_granted{0};
  std::atomic<std::uint64_t> q_ref_granted{0};
  std::atomic<std::uint64_t> q_rejected{0};
  std::atomic<std::uint64_t> leases_expired{0};
  std::atomic<std::uint64_t> expiry_deletes{0};
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> aborts{0};
  std::atomic<std::uint64_t> near_grants{0};
};

/// Coarse command classes for server-side latency accounting. The wire
/// dispatcher (net/server.h) records one observation per request into the
/// server's StripedLatencyRecorder under the matching class; FormatStats
/// renders the percentiles as "STAT cmd_*" lines. Defined here (not in net/)
/// so the recorder can live on the IQServer and be shared by every
/// connection's dispatcher.
enum class CommandClass : std::size_t {
  kGet,       // get/gets
  kStore,     // set/add/replace/cas/append/prepend
  kDelete,
  kIncrDecr,
  kIQget,
  kIQset,
  kQaRead,
  kSaR,
  kQaReg,
  kDaR,
  kIQDelta,   // iqappend/iqprepend/iqincr/iqdecr
  kCommit,
  kAbort,
  kOther,     // stats/flush_all/genid/quit/...
};
inline constexpr std::size_t kCommandClassCount =
    static_cast<std::size_t>(CommandClass::kOther) + 1;

const char* ToString(CommandClass c);

class IQServer final : public KvsBackend {
 public:
  struct Config {
    /// Lease lifetime; 0 = leases never expire (tests drive ManualClock).
    Nanos lease_lifetime = 10 * kNanosPerSec;
    /// Section 3.3 optimization: keep the old value visible while a
    /// Q(invalidate) lease is pending, deleting only at DaR/Commit.
    /// When false, QaReg deletes the key immediately.
    bool deferred_delete = true;
    /// Lease-event trace ring capacity per CacheStore shard (rounded up to
    /// a power of two). 0 disables tracing entirely.
    std::size_t trace_capacity = 1024;
    /// Near-cache validity interval granted with each lease-free IQget hit
    /// (DESIGN.md §4.10). 0 = near caching off (the default). When on, the
    /// server tracks the newest outstanding grant per key and an
    /// invalidating commit does not take effect as "fresh" until every
    /// granted interval on the key has lapsed. Grants are only issued on
    /// clean hits (no lease entry), so the server's lock-free optimistic
    /// read path is disabled while this is nonzero.
    Nanos near_validity = 0;
    const Clock* clock = nullptr;

    // -- TEST-ONLY fault injection (mutation hooks for iqcheck) -----------
    // Both flags deliberately re-introduce historical bugs so the offline
    // history checker can prove it has teeth. NEVER set outside tests /
    // iqcached --mutate.

    /// Re-introduce the PR 5 own-update visibility bug: QaRead
    /// re-acquisition returns the stored value WITHOUT replaying the
    /// session's buffered deltas (a session stops seeing its own writes —
    /// the Section 4.2.2 violation iqcheck flags as non_monotonic_session).
    bool mutate_own_update_invisible = false;
    /// Violate Q exclusivity: QaRead steals the key from another session's
    /// live Q(refresh) lease instead of rejecting (Figure 5b), so two
    /// write sessions proceed on one key (iqcheck flags overlap_q).
    bool mutate_overlap_q = false;
  };

  /// The server owns its CacheStore.
  explicit IQServer(CacheStore::Config store_config, Config config);
  IQServer();

  CacheStore& store() { return store_; }
  const Clock& clock() const override { return clock_; }

  // ---- commands ---------------------------------------------------------

  /// Command 5: unique session/transaction identifier.
  SessionId GenID() override {
    return next_session_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Command 1. `session` identifies the caller so it can observe its own
  /// updates (0 = anonymous read).
  GetReply IQget(std::string_view key, SessionId session = 0) override;

  /// Command 2. Applies only when `token` matches the live I lease.
  StoreResult IQset(std::string_view key, std::string_view value,
                    LeaseToken token) override;

  /// Command 3. Acquire Q(refresh) and read (R of R-M-W).
  QaReadReply QaRead(std::string_view key, SessionId session) override;

  /// Command 4. Swap value and release Q(refresh) (W of R-M-W). A nullopt
  /// value releases the lease leaving the current value in place.
  StoreResult SaR(std::string_view key, std::optional<std::string_view> v_new,
                  LeaseToken token) override;

  /// Command 6 (QaR in the paper). Always granted: voids I leases and
  /// shares with other Q(invalidate) holders.
  QuarantineResult QaReg(SessionId tid, std::string_view key) override;

  /// Command 7. Deletes every key quarantined by `tid` and releases its
  /// Q(invalidate) leases.
  void DaR(SessionId tid) override;

  /// Command 8. Buffer an incremental update under a Q(refresh) lease.
  QuarantineResult IQDelta(SessionId tid, std::string_view key,
                           DeltaOp delta) override;

  /// Command 9. Apply `tid`'s buffered deltas, delete its quarantined
  /// (invalidate) keys, release all its leases.
  void Commit(SessionId tid) override;

  /// Command 10. Discard `tid`'s buffered changes, release its leases,
  /// leave current values intact.
  void Abort(SessionId tid) override;

  /// Release a session's leases on one key without applying changes (used
  /// by clients when a multi-key acquisition fails midway).
  void ReleaseKey(SessionId tid, std::string_view key) override;

  /// Facebook-memcached-style delete used by the lease-only baseline: the
  /// value is removed and any outstanding I lease on the key is voided (a
  /// subsequent IQset with that token is ignored). Q leases are untouched.
  bool DeleteVoid(std::string_view key) override;

  // ---- plain memcached operations (KvsBackend; delegate to the store) ----
  std::optional<CacheItem> Get(std::string_view key) override {
    return store_.Get(key);
  }
  StoreResult Set(std::string_view key, std::string_view value) override {
    return store_.Set(key, value);
  }
  StoreResult Add(std::string_view key, std::string_view value) override {
    return store_.Add(key, value);
  }
  StoreResult Cas(std::string_view key, std::string_view value,
                  std::uint64_t cas) override {
    return store_.Cas(key, value, cas);
  }
  StoreResult Append(std::string_view key, std::string_view blob) override {
    return store_.Append(key, blob);
  }
  StoreResult Prepend(std::string_view key, std::string_view blob) override {
    return store_.Prepend(key, blob);
  }
  std::optional<std::uint64_t> Incr(std::string_view key,
                                    std::uint64_t amount) override {
    return store_.Incr(key, amount);
  }
  std::optional<std::uint64_t> Decr(std::string_view key,
                                    std::uint64_t amount) override {
    return store_.Decr(key, amount);
  }

  // ---- introspection ------------------------------------------------------

  /// Aggregated counter snapshot (relaxed reads; no lock taken).
  IQServerStats Stats() const;
  /// Advance the server's metrics window and return lifetime totals plus
  /// the delta since the previous call. The window is shared by every
  /// scraper of this server (the `metrics` wire verb and the iqcached
  /// shutdown report), so run at most one logical scraper; the plain
  /// `stats` verb never touches it.
  StatsWindowSample WindowedStats();
  /// The newest (up to) `max_events` lease-trace events across all shard
  /// rings, merged oldest first. Safe against concurrent commands.
  std::vector<TraceEvent> TraceSnapshot(std::size_t max_events) const;
  bool trace_enabled() const { return !trace_rings_.empty(); }
  /// Lifetime trace records emitted across all shard rings (including
  /// events the rings have since overwritten).
  std::uint64_t TraceRecorded() const;
  /// Drain-completeness accounting summed across all shard rings: lifetime
  /// records, events lost to ring wrap, and total capacity. dropped == 0
  /// means TraceSnapshot(big enough) is the complete lease history.
  TraceInfo TraceInfoTotal() const;
  /// Live (unexpired) lease on `key`, if any (testing).
  std::optional<LeaseKind> LeaseOn(std::string_view key);
  /// Live lease entries, aggregated shard by shard under each shard's lock
  /// (safe against concurrent commands; momentarily stale as a total).
  std::size_t LeaseCount() const;

  /// Per-command latency recorder shared by all connection dispatchers.
  StripedLatencyRecorder& command_latencies() { return cmd_latencies_; }
  const StripedLatencyRecorder& command_latencies() const {
    return cmd_latencies_;
  }

  /// Proactively expire overdue leases across all shards (expiry is
  /// otherwise enforced lazily on access). Returns the number of leases
  /// reclaimed. Suitable for a periodic maintenance task.
  std::size_t SweepExpired();

 private:
  /// Expire `entry` if due as of `now`: Q leases delete the key value.
  /// Returns true if the entry was removed. Caller holds the shard lock.
  /// `now` is the operation's shared lazy timestamp: lease-free fast paths
  /// never read the clock, and paths that expire + grant + trace read it
  /// once.
  bool MaybeExpire(const CacheStore::ShardGuard& g, const std::string& key,
                   const LazyNow& now);

  /// Apply one buffered delta to the key's current value. Missing keys are
  /// skipped for append/prepend/incr/decr (memcached semantics).
  void ApplyDeltaLocked(const CacheStore::ShardGuard& g, const std::string& key,
                        const DeltaOp& delta);

  /// Record a near-cache validity grant on `key` (shard lock held): the
  /// horizon advances to the server-clock instant the new interval lapses.
  void RecordNearGrant(const CacheStore::ShardGuard& g, const std::string& key,
                       const LazyNow& now);
  /// Consume `key`'s outstanding grant horizon (0 = none). Shard lock held.
  Nanos TakeNearHorizon(const CacheStore::ShardGuard& g,
                        const std::string& key);

  LeaseToken NewToken() { return next_token_.fetch_add(1, std::memory_order_relaxed); }
  Nanos Deadline(const LazyNow& now) const {
    return config_.lease_lifetime == 0 ? 0 : now() + config_.lease_lifetime;
  }

  /// Counter block for the shard whose lock `g` holds.
  IQShardStats& StatsFor(const CacheStore::ShardGuard& g) {
    return shard_stats_[g.shard_index()];
  }
  /// Counter block for session-scoped commands (Commit/Abort) that hold no
  /// single shard lock; spread by session id to keep contention low.
  IQShardStats& StatsFor(SessionId tid) {
    return shard_stats_[tid % shard_stats_.size()];
  }

  /// Record one lease transition in the shard's trace ring. Called with the
  /// shard lock already held, so the ring sees one writer at a time; the
  /// empty-vector check keeps the disabled case to a single branch. `now`
  /// is the operation's shared lazy timestamp, so tracing reuses a clock
  /// read the lease transition usually already paid for.
  void Trace(const CacheStore::ShardGuard& g, LeaseTraceKind kind,
             SessionId session, std::string_view key, const LazyNow& now) {
    if (trace_rings_.empty()) return;
    trace_rings_[g.shard_index()]->Record(
        kind, static_cast<std::uint32_t>(g.shard_index()), session,
        TraceKeyHash(key), now());
  }

  Config config_;
  CacheStore store_;
  const Clock& clock_;
  LeaseTable leases_;
  SessionRegistry registry_;
  /// Per-shard key → near-grant horizon (latest lapse of a granted validity
  /// interval, server-clock scale). Guarded by the CacheStore shard locks,
  /// like the lease table. Empty when near_validity == 0; entries are
  /// consumed by QaReg and pruned by SweepExpired.
  std::vector<std::unordered_map<std::string, Nanos>> near_horizons_;
  std::atomic<LeaseToken> next_token_{1};
  std::atomic<SessionId> next_session_{1};

  /// One counter block per CacheStore shard; see IQShardStats.
  std::vector<IQShardStats> shard_stats_;
  /// One trace ring per CacheStore shard (empty when tracing is disabled);
  /// unique_ptr because TraceRing is immovable (atomics).
  std::vector<std::unique_ptr<TraceRing>> trace_rings_;
  StatsWindow metrics_window_;
  StripedLatencyRecorder cmd_latencies_{kCommandClassCount};
};

}  // namespace iq
