// IQServerStats and everything generic over its fields: the canonical
// (name, member) table driving STAT rendering, ParseIQStats, per-shard
// breakdowns and Prometheus export, plus the StatsWindow used for interval
// (rate) metrics. Split out of iq_server.h so observers that only handle
// counter snapshots need not pull in the server.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

#include "util/clock.h"

namespace iq {

/// Server-side counters for the evaluation harness. This is the aggregated
/// snapshot returned by IQServer::Stats(); the live counters are sharded
/// (see IQShardStats) so the hot path never takes a statistics lock.
struct IQServerStats {
  std::uint64_t i_granted = 0;
  std::uint64_t i_voided = 0;       // I leases preempted by Q requests
  std::uint64_t q_ref_voided = 0;   // Q(refresh) leases voided by QaReg
  std::uint64_t backoffs = 0;       // IQget told a session to back off
  std::uint64_t stale_sets_dropped = 0;  // IQset/SaR with invalid token ignored
  std::uint64_t q_inv_granted = 0;
  std::uint64_t q_ref_granted = 0;
  std::uint64_t q_rejected = 0;     // QaRead/IQDelta aborted a requester
  std::uint64_t leases_expired = 0;
  std::uint64_t expiry_deletes = 0; // keys deleted because a Q lease expired
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  // Near-cache counters (DESIGN.md §4.10). near_grants is maintained
  // server-side; the other four count client-local events — a bare server
  // reports 0 for them, while iqbench merges its clients' NearCache
  // counters into the same canonical fields.
  std::uint64_t near_grants = 0;       // IQget hits granted a validity TTL
  std::uint64_t near_hits = 0;         // reads served with zero round trips
  std::uint64_t near_expired = 0;      // entries dropped on lookup past TTL
  std::uint64_t near_invalidated = 0;  // entries dropped by own write verbs
  std::uint64_t near_evictions = 0;    // entries dropped by LRU capacity
};

/// One row of the canonical IQServerStats field table.
struct IQStatsField {
  const char* name;  // wire name, as emitted in "STAT <name> <value>" lines
  std::uint64_t IQServerStats::* member;
};

/// The single source of truth mapping wire names to IQServerStats members.
/// Shared by net::FormatStats / net::ParseIQStats, the ShardedBackend
/// aggregate and per-shard breakdowns, StatsWindow deltas, and the
/// Prometheus metrics export — add new counters here once.
inline constexpr IQStatsField kIQStatsFields[] = {
    {"i_leases_granted", &IQServerStats::i_granted},
    {"i_leases_voided", &IQServerStats::i_voided},
    {"q_ref_voided", &IQServerStats::q_ref_voided},
    {"backoffs", &IQServerStats::backoffs},
    {"stale_sets_dropped", &IQServerStats::stale_sets_dropped},
    {"q_inv_granted", &IQServerStats::q_inv_granted},
    {"q_ref_granted", &IQServerStats::q_ref_granted},
    {"q_rejected", &IQServerStats::q_rejected},
    {"leases_expired", &IQServerStats::leases_expired},
    {"expiry_deletes", &IQServerStats::expiry_deletes},
    {"commits", &IQServerStats::commits},
    {"aborts", &IQServerStats::aborts},
    {"near_grants", &IQServerStats::near_grants},
    {"near_hits", &IQServerStats::near_hits},
    {"near_expired", &IQServerStats::near_expired},
    {"near_invalidated", &IQServerStats::near_invalidated},
    {"near_evictions", &IQServerStats::near_evictions},
};

/// One scrape from a StatsWindow: the lifetime totals plus what changed
/// since the previous scrape.
struct StatsWindowSample {
  IQServerStats lifetime;
  IQServerStats delta;
  /// Window width. 0 on the very first Advance (no previous scrape: delta
  /// equals lifetime and no rate can be formed).
  double seconds = 0;
};

/// Windowed metrics over IQServerStats: an observer keeps one StatsWindow
/// and calls Advance() on each scrape, getting deltas/rates instead of only
/// cumulative counters. One window supports one logical scraper — two
/// pollers sharing a window would each see roughly half of every delta, so
/// the plain `stats` verb never advances a window; only the `metrics` verb
/// (and the iqcached shutdown report) does.
class StatsWindow {
 public:
  /// Record `current` as the new baseline and return what changed since the
  /// previous call. Thread-safe; serialized internally.
  StatsWindowSample Advance(const IQServerStats& current, Nanos now) {
    std::lock_guard<std::mutex> lock(mu_);
    StatsWindowSample s;
    s.lifetime = current;
    s.delta = current;
    if (primed_) {
      for (const IQStatsField& f : kIQStatsFields) {
        std::uint64_t cur = current.*(f.member);
        std::uint64_t old = prev_.*(f.member);
        // Counters are monotonic; guard anyway so a swapped-in server
        // yields a zero delta instead of an underflowed one.
        s.delta.*(f.member) = cur >= old ? cur - old : 0;
      }
      if (now > prev_at_) {
        s.seconds = static_cast<double>(now - prev_at_) / kNanosPerSec;
      }
    }
    prev_ = current;
    prev_at_ = now;
    primed_ = true;
    return s;
  }

 private:
  std::mutex mu_;
  bool primed_ = false;
  IQServerStats prev_{};
  Nanos prev_at_ = 0;
};

}  // namespace iq
