// KvsBackend: the cache-server contract seen by clients - the ten IQ
// commands of Section 5 plus the plain memcached operations the baseline
// clients use. Two implementations exist:
//
//   IQServer            (core/iq_server.h)  - in-process
//   net::RemoteBackend  (net/remote_backend.h) - over the wire protocol
//
// Everything above this interface (IQClient, the casql session layer, the
// BG benchmark) is transport-agnostic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "kvs/kvs.h"
#include "leases/lease_table.h"
#include "util/clock.h"

namespace iq {

/// Reply to IQget.
struct GetReply {
  enum class Status {
    kHit,          // value present
    kMissGrantedI, // miss; caller holds a fresh I lease (token)
    kMissBackoff,  // miss; another session holds a lease - back off, retry
    kMissNoLease,  // miss for the session's own quarantined key: query the
                   // RDBMS inside the session, do not install (Section 3.3)
    kTransportError,  // the cache server is unreachable (remote backends
                      // only): query the RDBMS, do not install, do not spin
  };
  Status status;
  std::string value;     // valid when kHit
  LeaseToken token = 0;  // valid when kMissGrantedI
  /// Validity interval granted with a kHit (0 = none): the caller may serve
  /// this value from a client-local near cache for this long after receipt
  /// without another round trip. Always a duration relative to receipt —
  /// client and server clocks are not comparable over a network.
  Nanos validity = 0;
};

/// Reply to QaRead.
struct QaReadReply {
  enum class Status {
    kGranted,  // Q lease held; `value` may be nullopt (KVS miss)
    kReject,   // another write session holds Q: release all, abort, retry
    kTransportError,  // the cache server is unreachable: the lease state is
                      // unknown — abort the RDBMS txn, back off, retry
  };
  Status status;
  std::optional<std::string> value;
  LeaseToken token = 0;
};

/// Reply to IQDelta / QaReg.
enum class QuarantineResult {
  kGranted,
  kReject,  // conflicting Q(refresh) lease; session must abort and retry
  kTransportError,  // unreachable server: quarantine NOT in place — the
                    // session must never commit its RDBMS txn on this signal
};

class KvsBackend {
 public:
  virtual ~KvsBackend() = default;

  /// Time source clients use for back-off pacing.
  virtual const Clock& clock() const = 0;

  // ---- the IQ command set (paper Section 5) ----
  virtual SessionId GenID() = 0;
  virtual GetReply IQget(std::string_view key, SessionId session = 0) = 0;
  virtual StoreResult IQset(std::string_view key, std::string_view value,
                            LeaseToken token) = 0;
  virtual QaReadReply QaRead(std::string_view key, SessionId session) = 0;
  virtual StoreResult SaR(std::string_view key,
                          std::optional<std::string_view> v_new,
                          LeaseToken token) = 0;
  virtual QuarantineResult QaReg(SessionId tid, std::string_view key) = 0;
  virtual void DaR(SessionId tid) = 0;
  virtual QuarantineResult IQDelta(SessionId tid, std::string_view key,
                                   DeltaOp delta) = 0;
  virtual void Commit(SessionId tid) = 0;
  virtual void Abort(SessionId tid) = 0;
  /// Release a session's lease on one key without applying changes.
  virtual void ReleaseKey(SessionId tid, std::string_view key) = 0;

  // ---- plain memcached operations (baseline clients) ----
  virtual std::optional<CacheItem> Get(std::string_view key) = 0;
  virtual StoreResult Set(std::string_view key, std::string_view value) = 0;
  virtual StoreResult Add(std::string_view key, std::string_view value) = 0;
  virtual StoreResult Cas(std::string_view key, std::string_view value,
                          std::uint64_t cas) = 0;
  virtual StoreResult Append(std::string_view key, std::string_view blob) = 0;
  virtual StoreResult Prepend(std::string_view key, std::string_view blob) = 0;
  virtual std::optional<std::uint64_t> Incr(std::string_view key,
                                            std::uint64_t amount) = 0;
  virtual std::optional<std::uint64_t> Decr(std::string_view key,
                                            std::uint64_t amount) = 0;
  /// Facebook-memcached-style delete: removes the value AND voids any
  /// outstanding I lease on the key.
  virtual bool DeleteVoid(std::string_view key) = 0;
};

}  // namespace iq
