#include "core/near_cache.h"

namespace iq {

NearCache::NearCache(std::size_t capacity, const Clock& clock)
    : capacity_(capacity > 0 ? capacity : 1), clock_(clock) {}

std::optional<NearCache::Hit> NearCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  const Nanos now = clock_.Now();
  if (now >= it->second->second.expires_at) {
    // Self-invalidation: the granted interval lapsed locally.
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.expired;
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return Hit{it->second->second.value, it->second->second.expires_at - now};
}

void NearCache::Insert(const std::string& key, std::string value,
                       Nanos validity) {
  if (validity <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const Nanos expires_at = clock_.Now() + validity;
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = Entry{std::move(value), expires_at};
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.inserts;
    ++stats_.replaced;
    return;
  }
  if (index_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.emplace_front(key, Entry{std::move(value), expires_at});
  index_[key] = lru_.begin();
  ++stats_.inserts;
}

bool NearCache::Invalidate(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.erase(it->second);
  index_.erase(it);
  ++stats_.invalidated;
  return true;
}

std::size_t NearCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

NearCache::Stats NearCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace iq
