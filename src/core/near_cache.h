// Client-process near cache for IQ reads (DESIGN.md §4.10).
//
// The IQ server may grant each IQget hit a validity interval (config
// `near_validity`, carried on the wire as a duration — see GetReply).
// Entries stored here self-invalidate: a lookup past the entry's local
// expiry removes it and reports a miss, so a locally valid entry can be
// served with zero network round trips while staleness stays bounded by
// the granted interval (Misra et al., arXiv 2003.04150).
//
// The cache is shared by every IQSession of one IQClient and is
// thread-safe (one mutex; the point is avoiding a network round trip, not
// avoiding a cache-line bounce). Sessions invalidate eagerly on their own
// write verbs (QaReg/QaRead/IQDelta/SaR/Put and again at Commit/Abort);
// remote writers are bounded by the interval because the server holds an
// invalidating Q until every granted interval on the key has lapsed.
//
// Accounting invariant (asserted by the TSan storm in stress_test):
// every stored entry leaves in exactly one way, so
//   inserts == size + replaced + evictions + invalidated + expired.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/clock.h"

namespace iq {

class NearCache {
 public:
  /// Counter snapshot. All transitions are counted under the cache mutex,
  /// so a snapshot taken after the last operation balances exactly.
  struct Stats {
    std::uint64_t hits = 0;         // fresh entry served locally
    std::uint64_t misses = 0;       // key absent
    std::uint64_t inserts = 0;      // values stored (new or replacing)
    std::uint64_t replaced = 0;     // insert displaced a live entry
    std::uint64_t evictions = 0;    // LRU capacity displacements
    std::uint64_t invalidated = 0;  // removed by Invalidate()
    std::uint64_t expired = 0;      // removed on lookup past expiry
  };

  /// A locally served read: the value plus how much of the granted
  /// interval remained at serve time (always > 0 — expired entries are
  /// never served). `remaining` lets the staleness auditor assert that an
  /// observed-stale near hit is still within its granted interval.
  struct Hit {
    std::string value;
    Nanos remaining = 0;
  };

  /// `capacity` bounds the entry count (must be > 0); `clock` supplies the
  /// local timebase the wire durations are anchored to on receipt.
  NearCache(std::size_t capacity, const Clock& clock);

  NearCache(const NearCache&) = delete;
  NearCache& operator=(const NearCache&) = delete;

  /// Fresh entry: Hit (moved to MRU). Expired entry: removed, miss.
  std::optional<Hit> Get(const std::string& key);

  /// Store `value` with a validity of `validity` from now. Ignored when
  /// validity <= 0 (the server granted nothing).
  void Insert(const std::string& key, std::string value, Nanos validity);

  /// Drop `key` if present; true when an entry was removed.
  bool Invalidate(const std::string& key);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  struct Entry {
    std::string value;
    Nanos expires_at = 0;
  };
  using LruList = std::list<std::pair<std::string, Entry>>;

  const std::size_t capacity_;
  const Clock& clock_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  Stats stats_;
};

}  // namespace iq
