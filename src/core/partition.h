// ShardPartition: the ownership map behind the thread-per-core `iqcached`
// mode (DESIGN.md §4.7). The CacheStore's shard space is divided among N
// execution partitions (TcpServer workers); every single-key command runs on
// the worker that owns its key's shard, so a shard's mutex, LRU list, lease
// map and stats block are only ever touched from one core and the data-plane
// hot path never bounces cache lines between cores.
//
// The map is pure arithmetic over the same `CacheStore::HashKey` both the
// store and the optimistic-read index already use: shard = hash % shards,
// owner = shard % partitions. It is fixed for the life of a server (online
// resharding is a separate roadmap item) and deliberately stateless so every
// layer — dispatch, tests, benches — derives identical placement without
// sharing anything.
//
// Session-scoped commands (Commit/Abort/DaR) have no single key; they hash
// by session id to a stable "home" partition so one session's fan-out always
// runs on one core. The fan-out itself may lock shards other partitions own —
// that cross-core handoff is the documented exception the shard mutexes
// still exist for (the Misra et al. sharded-store discipline: the per-key
// lock remains the serialization point, so IQ lease semantics are unchanged
// no matter which core executes the command).
#pragma once

#include <algorithm>
#include <cstdint>

#include "leases/lease_table.h"

namespace iq {

class ShardPartition {
 public:
  /// `partitions` is clamped to [1, shard_count]: more partitions than
  /// shards would leave workers owning nothing while still paying the
  /// forwarding hop to reach every key.
  ShardPartition(std::size_t shard_count, std::size_t partitions)
      : shard_count_(std::max<std::size_t>(shard_count, 1)),
        partitions_(std::clamp<std::size_t>(partitions, 1, shard_count_)) {}

  std::size_t shard_count() const { return shard_count_; }
  std::size_t partitions() const { return partitions_; }

  /// The partition that owns shard `shard` outright.
  std::size_t OwnerOfShard(std::size_t shard) const {
    return shard % partitions_;
  }

  /// The partition that owns the key whose CacheStore::HashKey is `hash`.
  std::size_t OwnerOfHash(std::uint64_t hash) const {
    return OwnerOfShard(static_cast<std::size_t>(hash % shard_count_));
  }

  /// Stable home partition for a session's Commit/Abort/DaR fan-out.
  std::size_t HomeOfSession(SessionId tid) const { return tid % partitions_; }

  /// True when `partition` owns `shard` — the inline-execution test.
  bool Owns(std::size_t partition, std::size_t shard) const {
    return OwnerOfShard(shard) == partition;
  }

 private:
  std::size_t shard_count_;
  std::size_t partitions_;
};

}  // namespace iq
