#include "core/sharded_backend.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace iq {
namespace {

std::uint64_t Fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  // FNV's multiply only diffuses low bits upward, and ring placement is
  // decided by the most significant bits — short, similar labels ("s0#17")
  // would otherwise cluster and starve whole shards of keyspace. A
  // splitmix64-style finalizer spreads every input bit across the word.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

// Counter names and members come from the canonical kIQStatsFields table
// (core/iq_stats.h), shared with net::FormatStats/ParseIQStats so the
// per-shard lines stay grep-compatible with a child's own `stats` output.
void Accumulate(IQServerStats& total, const IQServerStats& s) {
  for (const IQStatsField& f : kIQStatsFields) total.*f.member += s.*f.member;
}

}  // namespace

ShardedBackend::ShardedBackend(std::vector<Shard> shards, Config config)
    : shards_(std::move(shards)),
      config_(config),
      clock_(config.clock != nullptr ? *config.clock
                                     : SteadyClock::Instance()),
      stripes_(config.session_stripes > 0 ? config.session_stripes : 1),
      health_(std::make_unique<ShardHealth[]>(
          shards_.empty() ? 1 : shards_.size())) {
  if (shards_.empty()) {
    throw std::invalid_argument("ShardedBackend: no shards");
  }
  std::size_t vnodes =
      config_.vnodes_per_weight > 0 ? config_.vnodes_per_weight : 1;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::uint32_t weight = shards_[i].weight > 0 ? shards_[i].weight : 1;
    std::size_t points = static_cast<std::size_t>(weight) * vnodes;
    for (std::size_t v = 0; v < points; ++v) {
      std::string label = shards_[i].name;
      label.push_back('#');
      label += std::to_string(v);
      ring_.push_back({Fnv1a(label), static_cast<std::uint32_t>(i)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const RingPoint& a,
                                           const RingPoint& b) {
    return a.point != b.point ? a.point < b.point : a.shard < b.shard;
  });
}

std::size_t ShardedBackend::ShardFor(std::string_view key) const {
  if (shards_.size() == 1) return 0;
  std::uint64_t h = Fnv1a(key);
  // Clockwise successor on the ring; past the last point wraps to the
  // first.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const RingPoint& p, std::uint64_t v) { return p.point < v; });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

// ---- shard health ----------------------------------------------------------

bool ShardedBackend::AllowRequest(std::size_t shard) {
  ShardHealth& h = health_[shard];
  if (!h.down.load(std::memory_order_acquire)) return true;
  // Down: ration real requests to one probe per interval. The CAS claims
  // the slot; losers fail fast with zero syscalls.
  Nanos due = h.next_probe.load(std::memory_order_acquire);
  Nanos now = clock_.Now();
  return now >= due &&
         h.next_probe.compare_exchange_strong(due, now + config_.probe_interval,
                                              std::memory_order_acq_rel);
}

void ShardedBackend::RecordResult(std::size_t shard, bool transport_error) {
  ShardHealth& h = health_[shard];
  if (!transport_error) {
    // Loads before stores: keep the healthy fast path read-only on the
    // shared health line so concurrent sessions don't ping-pong it.
    if (h.consecutive_errors.load(std::memory_order_relaxed) != 0) {
      h.consecutive_errors.store(0, std::memory_order_relaxed);
    }
    if (h.down.load(std::memory_order_acquire) &&
        h.down.exchange(false, std::memory_order_acq_rel)) {
      shard_recoveries_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  h.transport_errors.fetch_add(1, std::memory_order_relaxed);
  transport_errors_.fetch_add(1, std::memory_order_relaxed);
  std::uint32_t streak =
      h.consecutive_errors.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.down_after_errors == 0) return;  // breaker disabled
  if (streak >= config_.down_after_errors) {
    if (!h.down.exchange(true, std::memory_order_acq_rel)) {
      shard_trips_.fetch_add(1, std::memory_order_relaxed);
    }
    // Tripping and a failed probe both push the next probe out one full
    // interval from now.
    h.next_probe.store(clock_.Now() + config_.probe_interval,
                       std::memory_order_release);
  }
}

// ---- session plumbing ------------------------------------------------------

SessionId ShardedBackend::GenID() {
  sessions_.fetch_add(1, std::memory_order_relaxed);
  return next_sid_.fetch_add(1, std::memory_order_relaxed);
}

SessionId ShardedBackend::ShardSession(SessionId tid, std::size_t shard) {
  Stripe& st = StripeFor(tid);
  {
    std::lock_guard lock(st.mu);
    auto it = st.sessions.find(tid);
    if (it != st.sessions.end() && !it->second.shard_sids.empty() &&
        it->second.shard_sids[shard] != 0) {
      return it->second.shard_sids[shard];
    }
  }
  // Mint outside the stripe lock: on a remote shard this is a round trip,
  // and other sessions in the stripe must not wait behind it.
  SessionId child = shards_[shard].backend->GenID();
  if (child == 0) return 0;  // mint failed (dead remote): caller maps to
                             // kTransportError; nothing to record in the map
  std::lock_guard lock(st.mu);
  SessionState& state = st.sessions.try_emplace(tid).first->second;
  if (state.shard_sids.empty()) state.shard_sids.resize(shards_.size(), 0);
  SessionId& slot = state.shard_sids[shard];
  if (slot == 0) {
    // A session is single-threaded by contract; this re-check only guards
    // against a misbehaving caller, in which case the first mint wins and
    // the loser's child id is simply never used (children are free).
    slot = child;
    shard_sessions_.fetch_add(1, std::memory_order_relaxed);
  }
  return slot;
}

SessionId ShardedBackend::LookupShardSession(SessionId tid,
                                             std::size_t shard) const {
  Stripe& st = StripeFor(tid);
  std::lock_guard lock(st.mu);
  auto it = st.sessions.find(tid);
  if (it == st.sessions.end() || it->second.shard_sids.empty()) return 0;
  return it->second.shard_sids[shard];
}

std::vector<SessionId> ShardedBackend::TakeSession(SessionId tid) {
  Stripe& st = StripeFor(tid);
  std::lock_guard lock(st.mu);
  auto it = st.sessions.find(tid);
  if (it == st.sessions.end()) return {};
  std::vector<SessionId> sids = std::move(it->second.shard_sids);
  st.sessions.erase(it);
  return sids;
}

void ShardedBackend::ReleaseAllTouched(SessionId tid) {
  std::vector<SessionId> sids = TakeSession(tid);
  for (std::size_t i = 0; i < sids.size(); ++i) {
    // Down shards are skipped, not probed: an Abort cannot report success,
    // and the child's lease expiry reclaims whatever the session held.
    if (sids[i] != 0 && !ShardDown(i)) shards_[i].backend->Abort(sids[i]);
  }
}

// ---- the IQ command set ----------------------------------------------------

GetReply ShardedBackend::IQget(std::string_view key, SessionId session) {
  std::size_t s = ShardFor(key);
  GetReply err;
  err.status = GetReply::Status::kTransportError;
  if (!AllowRequest(s)) return err;  // down: degrade to RDBMS pass-through
  SessionId sid = session == 0 ? 0 : ShardSession(session, s);
  if (session != 0 && sid == 0) {
    RecordResult(s, true);  // the mint round trip failed
    return err;
  }
  GetReply reply = shards_[s].backend->IQget(key, sid);
  RecordResult(s, reply.status == GetReply::Status::kTransportError);
  return reply;
}

StoreResult ShardedBackend::IQset(std::string_view key, std::string_view value,
                                  LeaseToken token) {
  // Tokens are child-issued; the key's shard is the child that issued it.
  std::size_t s = ShardFor(key);
  if (!AllowRequest(s)) return StoreResult::kTransportError;
  StoreResult r = shards_[s].backend->IQset(key, value, token);
  RecordResult(s, r == StoreResult::kTransportError);
  return r;
}

QaReadReply ShardedBackend::QaRead(std::string_view key, SessionId session) {
  std::size_t s = ShardFor(key);
  QaReadReply err;
  err.status = QaReadReply::Status::kTransportError;
  if (!AllowRequest(s)) return err;  // down: fail the write session fast
  SessionId sid = ShardSession(session, s);
  if (sid == 0) {
    RecordResult(s, true);
    return err;
  }
  QaReadReply reply = shards_[s].backend->QaRead(key, sid);
  RecordResult(s, reply.status == QaReadReply::Status::kTransportError);
  if (reply.status == QaReadReply::Status::kReject) {
    // "Release all, abort, retry" (Figure 5b) — enforced here so a Q lease
    // held on another shard cannot outlive the reject and deadlock the
    // retried session. The caller's own Abort() then finds nothing left,
    // which is harmless.
    ReleaseAllTouched(session);
    reject_releases_.fetch_add(1, std::memory_order_relaxed);
  }
  return reply;
}

StoreResult ShardedBackend::SaR(std::string_view key,
                                std::optional<std::string_view> v_new,
                                LeaseToken token) {
  std::size_t s = ShardFor(key);
  if (!AllowRequest(s)) return StoreResult::kTransportError;
  StoreResult r = shards_[s].backend->SaR(key, v_new, token);
  RecordResult(s, r == StoreResult::kTransportError);
  return r;
}

QuarantineResult ShardedBackend::QaReg(SessionId tid, std::string_view key) {
  std::size_t s = ShardFor(key);
  if (!AllowRequest(s)) return QuarantineResult::kTransportError;
  SessionId sid = ShardSession(tid, s);
  if (sid == 0) {
    RecordResult(s, true);
    return QuarantineResult::kTransportError;
  }
  QuarantineResult r = shards_[s].backend->QaReg(sid, key);
  RecordResult(s, r == QuarantineResult::kTransportError);
  return r;
}

void ShardedBackend::DaR(SessionId tid) {
  std::vector<SessionId> sids = TakeSession(tid);
  std::size_t touched = 0;
  for (std::size_t i = 0; i < sids.size(); ++i) {
    if (sids[i] == 0) continue;
    ++touched;
    if (ShardDown(i)) continue;  // lease expiry deletes the keys instead
    shards_[i].backend->DaR(sids[i]);
  }
  if (touched > 0) fanout_commits_.fetch_add(1, std::memory_order_relaxed);
  if (touched > 1) {
    cross_shard_sessions_.fetch_add(1, std::memory_order_relaxed);
  }
}

QuarantineResult ShardedBackend::IQDelta(SessionId tid, std::string_view key,
                                         DeltaOp delta) {
  std::size_t s = ShardFor(key);
  if (!AllowRequest(s)) return QuarantineResult::kTransportError;
  SessionId sid = ShardSession(tid, s);
  if (sid == 0) {
    RecordResult(s, true);
    return QuarantineResult::kTransportError;
  }
  QuarantineResult r = shards_[s].backend->IQDelta(sid, key, std::move(delta));
  RecordResult(s, r == QuarantineResult::kTransportError);
  if (r == QuarantineResult::kReject) {
    ReleaseAllTouched(tid);  // same rule as a QaRead reject
    reject_releases_.fetch_add(1, std::memory_order_relaxed);
  }
  return r;
}

void ShardedBackend::Commit(SessionId tid) {
  std::vector<SessionId> sids = TakeSession(tid);
  std::size_t touched = 0;
  for (std::size_t i = 0; i < sids.size(); ++i) {
    if (sids[i] == 0) continue;
    ++touched;
    // Safe to skip a down shard: its unreleased leases expire, and expiry
    // DELETES the key (Section 6.1) — readers recompute from the RDBMS, so
    // no stale value survives the missed commit.
    if (ShardDown(i)) continue;
    shards_[i].backend->Commit(sids[i]);
  }
  if (touched > 0) fanout_commits_.fetch_add(1, std::memory_order_relaxed);
  if (touched > 1) {
    cross_shard_sessions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedBackend::Abort(SessionId tid) {
  std::vector<SessionId> sids = TakeSession(tid);
  std::size_t touched = 0;
  for (std::size_t i = 0; i < sids.size(); ++i) {
    if (sids[i] == 0) continue;
    ++touched;
    if (ShardDown(i)) continue;  // same expiry backstop as Commit
    shards_[i].backend->Abort(sids[i]);
  }
  if (touched > 0) fanout_aborts_.fetch_add(1, std::memory_order_relaxed);
  if (touched > 1) {
    cross_shard_sessions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedBackend::ReleaseKey(SessionId tid, std::string_view key) {
  std::size_t s = ShardFor(key);
  SessionId sid = LookupShardSession(tid, s);
  if (sid == 0) return;  // never touched that shard: nothing held there
  if (ShardDown(s)) return;  // expiry reclaims the lease
  shards_[s].backend->ReleaseKey(sid, key);
}

// ---- plain memcached operations --------------------------------------------

// The optional/bool-returning operations have no distinct error channel (a
// dead remote already surfaces as nullopt/false), so they cannot feed the
// breaker; they only honor it with a ShardDown fast path — no probe slot
// consumed, since their outcome could not heal the shard anyway.

std::optional<CacheItem> ShardedBackend::Get(std::string_view key) {
  std::size_t s = ShardFor(key);
  if (ShardDown(s)) return std::nullopt;  // degraded read: miss, no install
  return shards_[s].backend->Get(key);
}

StoreResult ShardedBackend::Set(std::string_view key, std::string_view value) {
  std::size_t s = ShardFor(key);
  if (!AllowRequest(s)) return StoreResult::kTransportError;
  StoreResult r = shards_[s].backend->Set(key, value);
  RecordResult(s, r == StoreResult::kTransportError);
  return r;
}

StoreResult ShardedBackend::Add(std::string_view key, std::string_view value) {
  std::size_t s = ShardFor(key);
  if (!AllowRequest(s)) return StoreResult::kTransportError;
  StoreResult r = shards_[s].backend->Add(key, value);
  RecordResult(s, r == StoreResult::kTransportError);
  return r;
}

StoreResult ShardedBackend::Cas(std::string_view key, std::string_view value,
                                std::uint64_t cas) {
  std::size_t s = ShardFor(key);
  if (!AllowRequest(s)) return StoreResult::kTransportError;
  StoreResult r = shards_[s].backend->Cas(key, value, cas);
  RecordResult(s, r == StoreResult::kTransportError);
  return r;
}

StoreResult ShardedBackend::Append(std::string_view key,
                                   std::string_view blob) {
  std::size_t s = ShardFor(key);
  if (!AllowRequest(s)) return StoreResult::kTransportError;
  StoreResult r = shards_[s].backend->Append(key, blob);
  RecordResult(s, r == StoreResult::kTransportError);
  return r;
}

StoreResult ShardedBackend::Prepend(std::string_view key,
                                    std::string_view blob) {
  std::size_t s = ShardFor(key);
  if (!AllowRequest(s)) return StoreResult::kTransportError;
  StoreResult r = shards_[s].backend->Prepend(key, blob);
  RecordResult(s, r == StoreResult::kTransportError);
  return r;
}

std::optional<std::uint64_t> ShardedBackend::Incr(std::string_view key,
                                                  std::uint64_t amount) {
  std::size_t s = ShardFor(key);
  if (ShardDown(s)) return std::nullopt;
  return shards_[s].backend->Incr(key, amount);
}

std::optional<std::uint64_t> ShardedBackend::Decr(std::string_view key,
                                                  std::uint64_t amount) {
  std::size_t s = ShardFor(key);
  if (ShardDown(s)) return std::nullopt;
  return shards_[s].backend->Decr(key, amount);
}

bool ShardedBackend::DeleteVoid(std::string_view key) {
  std::size_t s = ShardFor(key);
  if (ShardDown(s)) return false;
  return shards_[s].backend->DeleteVoid(key);
}

// ---- introspection ---------------------------------------------------------

IQServerStats ShardedBackend::Stats() const {
  IQServerStats total;
  for (const Shard& s : shards_) {
    if (s.stats) Accumulate(total, s.stats());
  }
  return total;
}

std::vector<TraceEvent> ShardedBackend::TraceSnapshot(
    std::size_t max_events) const {
  std::vector<TraceEvent> merged;
  if (max_events == 0) return merged;
  for (const Shard& s : shards_) {
    if (!s.trace) continue;
    std::vector<TraceEvent> part = s.trace(max_events);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  // Each child drain is already (at, shard, seq)-ordered; a stable sort on
  // the timestamp alone therefore yields (at, child, shard, seq) — equal
  // timestamps (ManualClock tests, coarse clocks) stay deterministic and
  // per-key causal, since one key's events all live in one child's ring.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
  if (merged.size() > max_events) {
    merged.erase(merged.begin(),
                 merged.end() - static_cast<std::ptrdiff_t>(max_events));
  }
  return merged;
}

TraceInfo ShardedBackend::TraceInfoTotal() const {
  TraceInfo total;
  for (const Shard& s : shards_) {
    if (!s.trace_info) continue;
    const TraceInfo info = s.trace_info();
    total.recorded += info.recorded;
    total.dropped += info.dropped;
    total.capacity += info.capacity;
  }
  return total;
}

ShardedBackendStats ShardedBackend::router_stats() const {
  ShardedBackendStats s;
  s.sessions = sessions_.load(std::memory_order_relaxed);
  s.shard_sessions = shard_sessions_.load(std::memory_order_relaxed);
  s.fanout_commits = fanout_commits_.load(std::memory_order_relaxed);
  s.fanout_aborts = fanout_aborts_.load(std::memory_order_relaxed);
  s.cross_shard_sessions =
      cross_shard_sessions_.load(std::memory_order_relaxed);
  s.reject_releases = reject_releases_.load(std::memory_order_relaxed);
  s.transport_errors = transport_errors_.load(std::memory_order_relaxed);
  s.shard_trips = shard_trips_.load(std::memory_order_relaxed);
  s.shard_recoveries = shard_recoveries_.load(std::memory_order_relaxed);
  return s;
}

std::string ShardedBackend::FormatStats() const {
  std::ostringstream out;
  auto stat = [&](const std::string& name, std::uint64_t v) {
    out << "STAT " << name << " " << v << "\r\n";
  };
  ShardedBackendStats router = router_stats();
  stat("shard_count", shards_.size());
  stat("ring_points", ring_.size());
  stat("router_sessions", router.sessions);
  stat("router_shard_sessions", router.shard_sessions);
  stat("router_fanout_commits", router.fanout_commits);
  stat("router_fanout_aborts", router.fanout_aborts);
  stat("router_cross_shard_sessions", router.cross_shard_sessions);
  stat("router_reject_releases", router.reject_releases);
  stat("transport_errors", router.transport_errors);
  stat("shard_trips", router.shard_trips);
  stat("shard_recoveries", router.shard_recoveries);
  std::uint64_t reconnects = 0;
  for (const Shard& s : shards_) {
    if (s.reconnects) reconnects += s.reconnects();
  }
  stat("reconnects", reconnects);
  IQServerStats total = Stats();
  for (const IQStatsField& f : kIQStatsFields) stat(f.name, total.*f.member);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::string prefix = "shard" + std::to_string(i) + "_";
    out << "STAT " << prefix << "endpoint " << shards_[i].name << "\r\n";
    stat(prefix + "weight", shards_[i].weight);
    stat(prefix + "down", ShardDown(i) ? 1 : 0);
    stat(prefix + "transport_errors",
         health_[i].transport_errors.load(std::memory_order_relaxed));
    if (shards_[i].reconnects) {
      stat(prefix + "reconnects", shards_[i].reconnects());
    }
    if (!shards_[i].stats) continue;
    IQServerStats s = shards_[i].stats();
    for (const IQStatsField& f : kIQStatsFields) {
      stat(prefix + f.name, s.*f.member);
    }
  }
  return out.str();
}

StatsWindowSample ShardedBackend::WindowedStats() {
  return metrics_window_.Advance(Stats(), clock_.Now());
}

}  // namespace iq
