// ShardedBackend: a KvsBackend that partitions the cache tier across N
// child backends — the paper's testbed shape, where the IQ-Twemcached tier
// is a set of independent cache servers and the client library routes each
// key to exactly one of them. Children are in-process IQServers, TCP
// net::RemoteBackends, or any mix; everything above KvsBackend (IQClient,
// the casql session layer, the BG benchmark) runs unchanged on the
// multi-server tier.
//
// Routing is a consistent-hash ring with virtual nodes: each shard
// contributes `weight * vnodes_per_weight` points hashed from its name, and
// a key belongs to the clockwise successor of its hash. Same shard list =>
// same ring, so independent router instances (one per client thread, one
// per process) agree on placement.
//
// Session identity is the real refactor. The upper stack holds ONE
// SessionId per session, but leases and quarantine registries live
// per-shard, in the child that owns each key. The router therefore treats
// its own GenID() values as virtual ids and lazily mints a child SessionId
// (via the child's GenID()) the first time a session touches a shard.
// Commit/Abort/DaR fan out to exactly the touched shards; a QaRead/IQDelta
// rejection releases every touched shard immediately (fan-out abort) so a
// Q lease stranded on shard A can never deadlock the session's retry after
// it backs off — the paper's "release all, abort, retry" rule, enforced
// at the router even if a caller forgets.
//
// Fault tolerance: a per-shard circuit breaker watches for transport
// errors from the child. After `down_after_errors` consecutive failures
// the shard is marked down and operations on its keys fail fast with
// kTransportError — reads then degrade to RDBMS pass-through and writes
// restart their session, both without waiting out a connect timeout per
// request. One request per probe_interval is let through as a health
// probe; its first success heals the shard. The healthy shards are never
// affected: keys stay put on the ring (no rerouting — moving a key to
// another shard would abandon the leases protecting it on its home shard).
//
// Thread safety: safe for concurrent sessions (the session map is striped
// by virtual id); one session stays single-threaded, as everywhere else in
// this codebase. Child backends must themselves be thread-safe if shared.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/iq_server.h"

namespace iq {

/// Router-level counters (the per-shard work is counted by the children).
struct ShardedBackendStats {
  std::uint64_t sessions = 0;            // virtual ids handed out by GenID()
  std::uint64_t shard_sessions = 0;      // child ids minted on first touch
  std::uint64_t fanout_commits = 0;      // logical commits (incl. DaR)
  std::uint64_t fanout_aborts = 0;       // logical aborts
  std::uint64_t cross_shard_sessions = 0;  // sessions that touched >1 shard
  std::uint64_t reject_releases = 0;     // fan-out releases after a Q reject
  std::uint64_t transport_errors = 0;    // child calls that failed transport
  std::uint64_t shard_trips = 0;         // shards marked down
  std::uint64_t shard_recoveries = 0;    // shards healed by a probe
};

class ShardedBackend final : public KvsBackend {
 public:
  struct Shard {
    /// Ring identity and stats label. Distinct per shard; changing a name
    /// reshuffles that shard's ring points.
    std::string name;
    KvsBackend* backend = nullptr;  // not owned
    /// Relative capacity: multiplies the shard's virtual-node count.
    std::uint32_t weight = 1;
    /// Optional counter snapshot used by Stats()/FormatStats(). Bind
    /// IQServer::Stats for an in-process child; for a TCP child use
    /// net::ParseIQStats over the child's `stats` response.
    std::function<IQServerStats()> stats;
    /// Optional reconnect counter for FormatStats(); bind
    /// net::ReconnectingChannel::reconnects for a TCP child.
    std::function<std::uint64_t()> reconnects;
    /// Optional lease-trace drain used by TraceSnapshot(): the newest (up
    /// to) max_events events, oldest first. Bind IQServer::TraceSnapshot
    /// for an in-process child; for a TCP child bind the `trace` verb via
    /// net::RemoteCacheClient::Trace.
    std::function<std::vector<TraceEvent>(std::size_t)> trace;
    /// Optional drain-completeness accounting for TraceInfoTotal(); bind
    /// IQServer::TraceInfoTotal or the TRACE_INFO wire header.
    std::function<TraceInfo()> trace_info;
  };

  struct Config {
    /// Ring points per unit of shard weight. More points = smoother key
    /// distribution at O(points) ring-build cost; lookups stay O(log n).
    std::size_t vnodes_per_weight = 64;
    std::size_t session_stripes = 16;
    /// Consecutive transport errors before a shard is marked down. Down
    /// shards fail fast (no round trip): reads degrade to RDBMS
    /// pass-through, writes restart their session. 0 disables tripping.
    std::uint32_t down_after_errors = 3;
    /// While a shard is down, at most one request per interval goes through
    /// as a health probe; its success heals the shard for everyone.
    Nanos probe_interval = 500 * kNanosPerMilli;
    const Clock* clock = nullptr;  // null = process steady clock
  };

  ShardedBackend(std::vector<Shard> shards, Config config);
  explicit ShardedBackend(std::vector<Shard> shards)
      : ShardedBackend(std::move(shards), Config{}) {}

  const Clock& clock() const override { return clock_; }

  // ---- the IQ command set, routed ----------------------------------------
  SessionId GenID() override;
  GetReply IQget(std::string_view key, SessionId session = 0) override;
  StoreResult IQset(std::string_view key, std::string_view value,
                    LeaseToken token) override;
  QaReadReply QaRead(std::string_view key, SessionId session) override;
  StoreResult SaR(std::string_view key, std::optional<std::string_view> v_new,
                  LeaseToken token) override;
  QuarantineResult QaReg(SessionId tid, std::string_view key) override;
  void DaR(SessionId tid) override;
  QuarantineResult IQDelta(SessionId tid, std::string_view key,
                           DeltaOp delta) override;
  void Commit(SessionId tid) override;
  void Abort(SessionId tid) override;
  void ReleaseKey(SessionId tid, std::string_view key) override;

  // ---- plain memcached operations, routed --------------------------------
  std::optional<CacheItem> Get(std::string_view key) override;
  StoreResult Set(std::string_view key, std::string_view value) override;
  StoreResult Add(std::string_view key, std::string_view value) override;
  StoreResult Cas(std::string_view key, std::string_view value,
                  std::uint64_t cas) override;
  StoreResult Append(std::string_view key, std::string_view blob) override;
  StoreResult Prepend(std::string_view key, std::string_view blob) override;
  std::optional<std::uint64_t> Incr(std::string_view key,
                                    std::uint64_t amount) override;
  std::optional<std::uint64_t> Decr(std::string_view key,
                                    std::uint64_t amount) override;
  bool DeleteVoid(std::string_view key) override;

  // ---- introspection -----------------------------------------------------

  std::size_t shard_count() const { return shards_.size(); }
  const Shard& shard(std::size_t i) const { return shards_[i]; }
  /// True while shard `i` is tripped (failing fast between probes).
  bool ShardDown(std::size_t i) const {
    return health_[i].down.load(std::memory_order_acquire);
  }
  /// Ring position of `key` (stable across router instances with the same
  /// shard list).
  std::size_t ShardFor(std::string_view key) const;

  /// Sum of the child counter snapshots (shards without a stats provider
  /// contribute zeros). A session that touched k shards commits/aborts on
  /// each of them, so the aggregated commits/aborts count per-shard
  /// fan-outs; router_stats() has the logical session counts.
  IQServerStats Stats() const;
  ShardedBackendStats router_stats() const;

  /// memcached-style "STAT name value\r\n" lines: the router counters, the
  /// aggregated IQ counters, then a per-shard breakdown
  /// (shard<i>_endpoint/weight plus every IQ counter as shard<i>_<name>).
  std::string FormatStats() const;

  /// Advance the router's metrics window over the aggregated Stats() and
  /// return lifetime totals plus the delta since the previous call. One
  /// logical scraper per router, same contract as IQServer::WindowedStats.
  StatsWindowSample WindowedStats();

  /// The newest (up to) `max_events` lease-trace events across every child
  /// with a trace provider, stable-merged oldest first on (at, child,
  /// shard, seq). Equal timestamps (ManualClock tests, coarse clocks) keep
  /// a deterministic — and per-key causal — order, because any one key's
  /// events all come from one (child, shard) ring where seq is program
  /// order. Children without a provider contribute nothing.
  std::vector<TraceEvent> TraceSnapshot(std::size_t max_events) const;
  /// Summed drain-completeness accounting across every child with a
  /// trace_info provider.
  TraceInfo TraceInfoTotal() const;

 private:
  /// One live session: the lazily minted child id per shard (0 = shard not
  /// touched yet).
  struct SessionState {
    std::vector<SessionId> shard_sids;
  };
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::unordered_map<SessionId, SessionState> sessions;
  };
  struct RingPoint {
    std::uint64_t point;
    std::uint32_t shard;
  };
  /// Per-shard circuit breaker. Trips after `down_after_errors` consecutive
  /// transport failures; while tripped, `next_probe` rations real requests
  /// to one per probe_interval (CAS-claimed) and everyone else fails fast
  /// with zero syscalls.
  struct alignas(64) ShardHealth {
    std::atomic<std::uint32_t> consecutive_errors{0};
    std::atomic<bool> down{false};
    std::atomic<Nanos> next_probe{0};
    std::atomic<std::uint64_t> transport_errors{0};
  };

  Stripe& StripeFor(SessionId s) const {
    return stripes_[s % stripes_.size()];
  }

  /// Child id for (tid, shard), minted via the child's GenID() on first
  /// touch. The mint happens outside the stripe lock (it may be a network
  /// round trip); first writer wins on the defensive re-check.
  SessionId ShardSession(SessionId tid, std::size_t shard);
  /// Child id if the session already touched the shard, else 0. Never
  /// mints.
  SessionId LookupShardSession(SessionId tid, std::size_t shard) const;
  /// Remove and return the session's minted child ids (empty if none).
  std::vector<SessionId> TakeSession(SessionId tid);
  /// Fan-out Abort over every touched shard and drop the session — the
  /// mandatory release after a child rejected QaRead/IQDelta.
  void ReleaseAllTouched(SessionId tid);

  /// False while the shard is down and the probe slot for this interval is
  /// already claimed: the caller must fail fast without touching the child.
  /// True means "go ahead" — either the shard is healthy or this caller won
  /// the probe slot.
  bool AllowRequest(std::size_t shard);
  /// Feed the circuit breaker after a child call. Success resets the error
  /// streak and heals a down shard; a transport error extends it and trips
  /// the shard at the configured threshold.
  void RecordResult(std::size_t shard, bool transport_error);

  std::vector<Shard> shards_;
  Config config_;
  const Clock& clock_;
  std::vector<RingPoint> ring_;  // sorted by point
  mutable std::vector<Stripe> stripes_;
  std::unique_ptr<ShardHealth[]> health_;  // one per shard
  std::atomic<SessionId> next_sid_{1};
  StatsWindow metrics_window_;

  // Router counters, same relaxed-atomic discipline as IQShardStats.
  std::atomic<std::uint64_t> sessions_{0};
  std::atomic<std::uint64_t> shard_sessions_{0};
  std::atomic<std::uint64_t> fanout_commits_{0};
  std::atomic<std::uint64_t> fanout_aborts_{0};
  std::atomic<std::uint64_t> cross_shard_sessions_{0};
  std::atomic<std::uint64_t> reject_releases_{0};
  std::atomic<std::uint64_t> transport_errors_{0};
  std::atomic<std::uint64_t> shard_trips_{0};
  std::atomic<std::uint64_t> shard_recoveries_{0};
};

}  // namespace iq
