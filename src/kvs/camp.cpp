#include "kvs/camp.h"

#include <bit>

namespace iq {

std::uint64_t CampPolicy::RoundRatio(std::uint64_t cost,
                                     std::size_t size) const {
  if (size == 0) size = 1;
  std::uint64_t ratio = cost / size;
  if (ratio == 0) ratio = 1;
  // Keep the top `precision_` significant bits; zero the rest. This bounds
  // the number of distinct queues to precision * 64 while distorting any
  // ratio by at most a factor (1 + 2^-precision).
  int width = 64 - std::countl_zero(ratio);
  if (width <= precision_) return ratio;
  int drop = width - precision_;
  return (ratio >> drop) << drop;
}

void CampPolicy::Enqueue(const std::string& key, Item& item) {
  auto& queue = queues_[item.ratio];
  queue.push_back(key);
  item.pos = std::prev(queue.end());
  item.priority = inflation_ + item.ratio;
}

void CampPolicy::Dequeue(const Item& item) {
  auto it = queues_.find(item.ratio);
  if (it == queues_.end()) return;
  it->second.erase(item.pos);
  if (it->second.empty()) queues_.erase(it);
}

void CampPolicy::OnInsert(const std::string& key, std::uint64_t cost,
                          std::size_t size) {
  std::uint64_t ratio = RoundRatio(cost, size);
  auto it = items_.find(key);
  if (it != items_.end()) {
    Dequeue(it->second);
    it->second.ratio = ratio;
    Enqueue(key, it->second);
    return;
  }
  Item item;
  item.ratio = ratio;
  auto [ins, ok] = items_.emplace(key, std::move(item));
  (void)ok;
  Enqueue(key, ins->second);
}

void CampPolicy::OnAccess(const std::string& key) {
  auto it = items_.find(key);
  if (it == items_.end()) return;
  Dequeue(it->second);
  Enqueue(key, it->second);  // fresh priority = current L + ratio
}

void CampPolicy::OnErase(const std::string& key) {
  auto it = items_.find(key);
  if (it == items_.end()) return;
  Dequeue(it->second);
  items_.erase(it);
}

std::optional<std::string> CampPolicy::Victim() const {
  const std::string* best = nullptr;
  std::uint64_t best_priority = 0;
  for (const auto& [ratio, queue] : queues_) {
    const std::string& head = queue.front();
    auto it = items_.find(head);
    if (it == items_.end()) continue;  // defensive; lists stay in sync
    if (best == nullptr || it->second.priority < best_priority) {
      best = &head;
      best_priority = it->second.priority;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

void CampPolicy::Clear() {
  queues_.clear();
  items_.clear();
  inflation_ = 0;
}

void CampPolicy::OnEvict(const std::string& key) {
  auto it = items_.find(key);
  if (it == items_.end()) return;
  // Aging: future insertions start at the evicted priority, so long-idle
  // expensive items eventually lose to fresh cheap ones.
  inflation_ = it->second.priority;
  Dequeue(it->second);
  items_.erase(it);
}

}  // namespace iq
