// CAMP: Cost Adaptive Multi-queue eviction Policy (Ghandeharizadeh, Irani,
// Lam, Yap - Middleware 2014, cited as [14] by the IQ paper). In a CASQL
// deployment key-value pairs differ wildly in recomputation cost (a point
// SELECT vs a multi-join) and size, so cost-blind LRU evicts the wrong
// items. CAMP approximates Greedy-Dual-Size:
//
//   priority(item) = L + round(cost / size)
//
// where L is an aging "inflation" value, updated to the priority of the
// last evicted item, and round() keeps only the top `precision` significant
// bits of the cost/size ratio. Items whose rounded ratio is equal form one
// FIFO/LRU queue, so CAMP maintains a small set of queues; the eviction
// victim is the queue head with the smallest priority. All operations are
// O(log #queues) instead of Greedy-Dual's O(log n).
//
// This header is a self-contained policy object used by CacheStore when
// Config::eviction == EvictionPolicy::kCamp; it tracks keys, not values.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

namespace iq {

class CampPolicy {
 public:
  /// `precision`: number of significant bits kept when rounding the
  /// cost/size ratio (the paper uses small values, e.g. 4-10).
  explicit CampPolicy(int precision = 8) : precision_(precision) {}

  /// Track a new or updated item. `cost` is the recomputation cost the
  /// application reported (default 1 = plain LRU-ish behavior), `size` the
  /// item's byte footprint (>= 1).
  void OnInsert(const std::string& key, std::uint64_t cost, std::size_t size);

  /// An access refreshes the item's priority (re-inserts at its queue tail
  /// with priority L + ratio).
  void OnAccess(const std::string& key);

  /// Stop tracking a key (deleted/expired).
  void OnErase(const std::string& key);

  /// Pick the eviction victim: smallest priority among queue heads.
  /// Returns nullopt when empty. Does NOT erase it (caller erases the item
  /// then calls OnErase, which updates L).
  std::optional<std::string> Victim() const;

  /// Called when the chosen victim is actually evicted: advances L.
  void OnEvict(const std::string& key);

  /// Forget every tracked key and reset the inflation value L. Pairs with
  /// CacheStore::Flush — without it the policy keeps ghost entries for keys
  /// that no longer exist and keeps aging from a stale L.
  void Clear();

  std::size_t Size() const { return items_.size(); }
  std::uint64_t inflation() const { return inflation_; }
  std::size_t QueueCount() const { return queues_.size(); }

 private:
  struct Item {
    std::uint64_t ratio;     // rounded cost/size
    std::uint64_t priority;  // L at last touch + ratio
    std::list<std::string>::iterator pos;
  };

  std::uint64_t RoundRatio(std::uint64_t cost, std::size_t size) const;
  void Enqueue(const std::string& key, Item& item);
  void Dequeue(const Item& item);

  int precision_;
  std::uint64_t inflation_ = 0;  // L
  // ratio -> queue of keys, oldest first. Within a queue priorities are
  // non-decreasing (enqueue priority = current L + ratio, L non-decreasing),
  // so the head is always the queue's minimum.
  std::map<std::uint64_t, std::list<std::string>> queues_;
  std::unordered_map<std::string, Item> items_;
};

}  // namespace iq
