#include "kvs/kvs.h"

#include <charconv>
#include <functional>

namespace iq {

const char* ToString(StoreResult r) {
  switch (r) {
    case StoreResult::kStored: return "STORED";
    case StoreResult::kNotStored: return "NOT_STORED";
    case StoreResult::kExists: return "EXISTS";
    case StoreResult::kNotFound: return "NOT_FOUND";
    case StoreResult::kTransportError: return "TRANSPORT_ERROR";
  }
  return "?";
}

CacheStore::CacheStore() : CacheStore(Config{}) {}

CacheStore::CacheStore(Config config)
    : clock_(config.clock != nullptr ? *config.clock : SteadyClock::Instance()),
      per_shard_budget_(config.shard_count > 0 && config.memory_budget_bytes > 0
                            ? config.memory_budget_bytes / config.shard_count
                            : 0),
      shards_(config.shard_count > 0 ? config.shard_count : 1) {
  if (config.eviction == EvictionPolicy::kCamp) {
    for (auto& s : shards_) {
      s.camp = std::make_unique<CampPolicy>(config.camp_precision);
    }
  }
}

std::size_t CacheStore::ShardIndexFor(std::string_view key) const {
  return std::hash<std::string_view>{}(key) % shards_.size();
}

CacheStore::Shard& CacheStore::ShardFor(std::string_view key) {
  return shards_[ShardIndexFor(key)];
}

CacheStore::ShardGuard CacheStore::LockKey(std::string_view key) {
  std::size_t idx = ShardIndexFor(key);
  return ShardGuard(std::unique_lock(shards_[idx].mu), idx);
}

CacheStore::ShardGuard CacheStore::LockShard(std::size_t index) const {
  return ShardGuard(std::unique_lock(shards_[index].mu), index);
}

std::size_t CacheStore::ItemBytes(std::string_view key, std::string_view value) {
  // Key + value + fixed per-item overhead approximating Twemcache's item
  // header and hash/LRU linkage.
  return key.size() + value.size() + 64;
}

bool CacheStore::ExpiredLocked(Shard&, const Item& item) const {
  return item.expires_at != 0 && clock_.Now() >= item.expires_at;
}

void CacheStore::EraseLocked(Shard& s,
                             std::unordered_map<std::string, Item>::iterator it) {
  s.bytes -= ItemBytes(it->first, it->second.value);
  s.lru.erase(it->second.lru_pos);
  if (s.camp) s.camp->OnErase(it->first);
  s.items.erase(it);
}

void CacheStore::TouchLocked(Shard& s, Item& item, const std::string& key) {
  s.lru.erase(item.lru_pos);
  s.lru.push_front(key);
  item.lru_pos = s.lru.begin();
  if (s.camp) s.camp->OnAccess(key);
}

void CacheStore::EvictIfNeededLocked(Shard& s) {
  if (per_shard_budget_ == 0) return;
  while (s.bytes > per_shard_budget_ && !s.items.empty()) {
    std::unordered_map<std::string, Item>::iterator victim;
    if (s.camp) {
      auto key = s.camp->Victim();
      if (!key) break;
      victim = s.items.find(*key);
      if (victim == s.items.end()) {
        s.camp->OnErase(*key);
        continue;
      }
      s.camp->OnEvict(*key);  // advances the inflation value L
    } else {
      if (s.lru.empty()) break;
      victim = s.items.find(s.lru.back());
      if (victim == s.items.end()) {  // should not happen; keep lists in sync
        s.lru.pop_back();
        continue;
      }
    }
    EraseLocked(s, victim);
    ++s.stats.evictions;
  }
}

std::unordered_map<std::string, CacheStore::Item>::iterator CacheStore::FindLive(
    Shard& s, std::string_view key) {
  auto it = s.items.find(std::string(key));
  if (it == s.items.end()) return s.items.end();
  if (ExpiredLocked(s, it->second)) {
    EraseLocked(s, it);
    ++s.stats.expirations;
    return s.items.end();
  }
  return it;
}

void CacheStore::StoreLocked(Shard& s, std::string_view key,
                             std::string_view value, std::uint32_t flags,
                             Nanos ttl, std::uint64_t cost) {
  auto it = s.items.find(std::string(key));
  Nanos expires = ttl > 0 ? clock_.Now() + ttl : 0;
  if (it != s.items.end()) {
    s.bytes -= ItemBytes(it->first, it->second.value);
    it->second.value.assign(value);
    it->second.flags = flags;
    it->second.cas = cas_counter_.fetch_add(1, std::memory_order_relaxed);
    it->second.expires_at = expires;
    s.bytes += ItemBytes(it->first, it->second.value);
    if (s.camp) {
      s.camp->OnInsert(it->first, cost, ItemBytes(it->first, it->second.value));
    }
    TouchLocked(s, it->second, it->first);
  } else {
    auto [ins, ok] = s.items.emplace(std::string(key), Item{});
    (void)ok;
    ins->second.value.assign(value);
    ins->second.flags = flags;
    ins->second.cas = cas_counter_.fetch_add(1, std::memory_order_relaxed);
    ins->second.expires_at = expires;
    s.lru.push_front(ins->first);
    ins->second.lru_pos = s.lru.begin();
    s.bytes += ItemBytes(ins->first, ins->second.value);
    if (s.camp) {
      s.camp->OnInsert(ins->first, cost, ItemBytes(ins->first, ins->second.value));
    }
  }
  EvictIfNeededLocked(s);
}

std::optional<CacheItem> CacheStore::Get(std::string_view key) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.gets;
  auto it = FindLive(s, key);
  if (it == s.items.end()) {
    ++s.stats.get_misses;
    return std::nullopt;
  }
  ++s.stats.get_hits;
  TouchLocked(s, it->second, it->first);
  return CacheItem{it->second.value, it->second.flags, it->second.cas};
}

StoreResult CacheStore::Set(std::string_view key, std::string_view value,
                            std::uint32_t flags, Nanos ttl,
                            std::uint64_t cost) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.sets;
  StoreLocked(s, key, value, flags, ttl, cost);
  return StoreResult::kStored;
}

StoreResult CacheStore::Add(std::string_view key, std::string_view value,
                            std::uint32_t flags, Nanos ttl) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.sets;
  if (FindLive(s, key) != s.items.end()) return StoreResult::kNotStored;
  StoreLocked(s, key, value, flags, ttl);
  return StoreResult::kStored;
}

StoreResult CacheStore::Replace(std::string_view key, std::string_view value,
                                std::uint32_t flags, Nanos ttl) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.sets;
  if (FindLive(s, key) == s.items.end()) return StoreResult::kNotStored;
  StoreLocked(s, key, value, flags, ttl);
  return StoreResult::kStored;
}

StoreResult CacheStore::Cas(std::string_view key, std::string_view value,
                            std::uint64_t cas, std::uint32_t flags, Nanos ttl) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.cas_ops;
  auto it = FindLive(s, key);
  if (it == s.items.end()) return StoreResult::kNotFound;
  if (it->second.cas != cas) {
    ++s.stats.cas_mismatches;
    return StoreResult::kExists;
  }
  StoreLocked(s, key, value, flags, ttl);
  return StoreResult::kStored;
}

bool CacheStore::Delete(std::string_view key) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.deletes;
  auto it = FindLive(s, key);
  if (it == s.items.end()) return false;
  EraseLocked(s, it);
  ++s.stats.delete_hits;
  return true;
}

StoreResult CacheStore::Append(std::string_view key, std::string_view suffix) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.appends;
  auto it = FindLive(s, key);
  if (it == s.items.end()) return StoreResult::kNotStored;
  s.bytes -= ItemBytes(it->first, it->second.value);
  it->second.value.append(suffix);
  it->second.cas = cas_counter_.fetch_add(1, std::memory_order_relaxed);
  s.bytes += ItemBytes(it->first, it->second.value);
  TouchLocked(s, it->second, it->first);
  EvictIfNeededLocked(s);
  return StoreResult::kStored;
}

StoreResult CacheStore::Prepend(std::string_view key, std::string_view prefix) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.prepends;
  auto it = FindLive(s, key);
  if (it == s.items.end()) return StoreResult::kNotStored;
  s.bytes -= ItemBytes(it->first, it->second.value);
  it->second.value.insert(0, prefix);
  it->second.cas = cas_counter_.fetch_add(1, std::memory_order_relaxed);
  s.bytes += ItemBytes(it->first, it->second.value);
  TouchLocked(s, it->second, it->first);
  EvictIfNeededLocked(s);
  return StoreResult::kStored;
}

namespace {

std::optional<std::uint64_t> ParseUint(std::string_view v) {
  std::uint64_t out = 0;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) return std::nullopt;
  return out;
}

}  // namespace

std::optional<std::uint64_t> CacheStore::Incr(std::string_view key,
                                              std::uint64_t delta) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.incr_decrs;
  auto it = FindLive(s, key);
  if (it == s.items.end()) return std::nullopt;
  auto cur = ParseUint(it->second.value);
  if (!cur) return std::nullopt;
  std::uint64_t next = *cur + delta;
  s.bytes -= ItemBytes(it->first, it->second.value);
  it->second.value = std::to_string(next);
  it->second.cas = cas_counter_.fetch_add(1, std::memory_order_relaxed);
  s.bytes += ItemBytes(it->first, it->second.value);
  return next;
}

std::optional<std::uint64_t> CacheStore::Decr(std::string_view key,
                                              std::uint64_t delta) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.incr_decrs;
  auto it = FindLive(s, key);
  if (it == s.items.end()) return std::nullopt;
  auto cur = ParseUint(it->second.value);
  if (!cur) return std::nullopt;
  std::uint64_t next = *cur >= delta ? *cur - delta : 0;  // saturate at 0
  s.bytes -= ItemBytes(it->first, it->second.value);
  it->second.value = std::to_string(next);
  it->second.cas = cas_counter_.fetch_add(1, std::memory_order_relaxed);
  s.bytes += ItemBytes(it->first, it->second.value);
  return next;
}

void CacheStore::Flush() {
  for (auto& s : shards_) {
    std::lock_guard lock(s.mu);
    s.items.clear();
    s.lru.clear();
    s.bytes = 0;
  }
}

CacheStats CacheStore::Stats() const {
  CacheStats total;
  for (const auto& s : shards_) {
    std::lock_guard lock(s.mu);
    total.gets += s.stats.gets;
    total.get_hits += s.stats.get_hits;
    total.get_misses += s.stats.get_misses;
    total.sets += s.stats.sets;
    total.deletes += s.stats.deletes;
    total.delete_hits += s.stats.delete_hits;
    total.cas_ops += s.stats.cas_ops;
    total.cas_mismatches += s.stats.cas_mismatches;
    total.appends += s.stats.appends;
    total.prepends += s.stats.prepends;
    total.incr_decrs += s.stats.incr_decrs;
    total.evictions += s.stats.evictions;
    total.expirations += s.stats.expirations;
    total.bytes_used += s.bytes;
    total.item_count += s.items.size();
  }
  return total;
}

// ---- Locked extension API --------------------------------------------------

std::optional<CacheItem> CacheStore::GetLocked(const ShardGuard& g,
                                               std::string_view key) {
  Shard& s = shards_[g.shard_index()];
  ++s.stats.gets;
  auto it = FindLive(s, key);
  if (it == s.items.end()) {
    ++s.stats.get_misses;
    return std::nullopt;
  }
  ++s.stats.get_hits;
  TouchLocked(s, it->second, it->first);
  return CacheItem{it->second.value, it->second.flags, it->second.cas};
}

StoreResult CacheStore::SetLocked(const ShardGuard& g, std::string_view key,
                                  std::string_view value, std::uint32_t flags,
                                  Nanos ttl) {
  Shard& s = shards_[g.shard_index()];
  ++s.stats.sets;
  StoreLocked(s, key, value, flags, ttl);
  return StoreResult::kStored;
}

bool CacheStore::DeleteLocked(const ShardGuard& g, std::string_view key) {
  Shard& s = shards_[g.shard_index()];
  ++s.stats.deletes;
  auto it = FindLive(s, key);
  if (it == s.items.end()) return false;
  EraseLocked(s, it);
  ++s.stats.delete_hits;
  return true;
}

bool CacheStore::ContainsLocked(const ShardGuard& g, std::string_view key) {
  Shard& s = shards_[g.shard_index()];
  return FindLive(s, key) != s.items.end();
}

}  // namespace iq
