#include "kvs/kvs.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <functional>

namespace iq {

namespace {

/// val_len sentinel: the live value exceeds the mirror cap, so only the
/// locked path can serve it.
constexpr std::uint32_t kOptOversize = 0xFFFFFFFFu;
/// Optimistic readers give up after this many slots and fall back.
constexpr std::size_t kOptMaxProbes = 32;
constexpr std::size_t kOptInitialCapacity = 256;

/// splitmix64 finalizer. Shard selection consumes the raw hash modulo the
/// shard count, so within one shard every key agrees on those low bits;
/// probe positions must come from an independent mix or the open-addressing
/// table would only ever use one residue class of its slots.
std::uint64_t MixHash(std::uint64_t h) {
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// The open-addressing tombstone. A template so the (private) entry type
/// can be named from CacheStore's member functions only.
template <typename E>
E* Tomb() {
  return reinterpret_cast<E*>(static_cast<std::uintptr_t>(1));
}

/// Seqlock writer brackets (see the OptEntry comment in kvs.h). SeqBegin on
/// an already-odd (dead) entry keeps it odd, so kill-then-recycle never
/// passes back through an even value mid-write.
template <typename E>
void SeqBegin(E& e) {
  std::uint64_t v = e.version.load(std::memory_order_relaxed);
  if ((v & 1) == 0) e.version.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
}

template <typename E>
void SeqEnd(E& e) {
  e.version.store(e.version.load(std::memory_order_relaxed) + 1,
                  std::memory_order_release);
}

void StoreWords(std::atomic<std::uint64_t>* words, std::string_view src) {
  for (std::size_t i = 0; i < src.size(); i += 8) {
    std::uint64_t w = 0;
    std::memcpy(&w, src.data() + i, std::min<std::size_t>(8, src.size() - i));
    words[i / 8].store(w, std::memory_order_relaxed);
  }
}

void LoadWords(const std::atomic<std::uint64_t>* words, char* dst,
               std::size_t n) {
  for (std::size_t i = 0; i < n; i += 8) {
    std::uint64_t w = words[i / 8].load(std::memory_order_relaxed);
    std::memcpy(dst + i, &w, std::min<std::size_t>(8, n - i));
  }
}

}  // namespace

const char* ToString(StoreResult r) {
  switch (r) {
    case StoreResult::kStored: return "STORED";
    case StoreResult::kNotStored: return "NOT_STORED";
    case StoreResult::kExists: return "EXISTS";
    case StoreResult::kNotFound: return "NOT_FOUND";
    case StoreResult::kTransportError: return "TRANSPORT_ERROR";
  }
  return "?";
}

CacheStore::CacheStore() : CacheStore(Config{}) {}

CacheStore::CacheStore(Config config)
    : clock_(config.clock != nullptr ? *config.clock : SteadyClock::Instance()),
      per_shard_budget_(config.shard_count > 0 && config.memory_budget_bytes > 0
                            ? config.memory_budget_bytes / config.shard_count
                            : 0),
      opt_val_cap_(config.optimistic_value_cap),
      opt_key_words_((kOptKeyCap + 7) / 8),
      opt_val_words_((config.optimistic_value_cap + 7) / 8),
      shards_(config.shard_count > 0 ? config.shard_count : 1) {
  for (auto& s : shards_) {
    if (config.eviction == EvictionPolicy::kCamp) {
      s.camp = std::make_unique<CampPolicy>(config.camp_precision);
    }
    if (opt_val_cap_ > 0) {
      s.opt_tables.push_back(std::make_unique<OptTable>(kOptInitialCapacity));
      s.opt_table.store(s.opt_tables.back().get(), std::memory_order_release);
      s.touch_slots = std::make_unique<std::atomic<OptEntry*>[]>(kTouchSlots);
    }
  }
}

CacheStore::~CacheStore() = default;

CacheStore::Shard& CacheStore::ShardFor(std::string_view key) {
  return shards_[ShardIndexFor(key)];
}

CacheStore::ShardGuard CacheStore::LockKey(std::string_view key) {
  std::size_t idx = ShardIndexFor(key);
  return ShardGuard(std::unique_lock(shards_[idx].mu), idx);
}

CacheStore::ShardGuard CacheStore::LockShard(std::size_t index) const {
  return ShardGuard(std::unique_lock(shards_[index].mu), index);
}

std::size_t CacheStore::ItemBytes(std::string_view key, std::string_view value) {
  // Key + value + fixed per-item overhead approximating Twemcache's item
  // header and hash/LRU linkage.
  return key.size() + value.size() + 64;
}

bool CacheStore::ExpiredLocked(Shard&, const Item& item) const {
  return item.expires_at != 0 && clock_.Now() >= item.expires_at;
}

// ---- optimistic-mirror maintenance (all under the shard lock) --------------

void CacheStore::OptUpsertLocked(Shard& s, const std::string& key, Item& item) {
  if (opt_val_cap_ == 0 || key.size() > kOptKeyCap) return;
  OptEntry* e = item.opt;
  const bool fresh = (e == nullptr);
  if (fresh) {
    if (!s.opt_free.empty()) {
      e = s.opt_free.back();
      s.opt_free.pop_back();
    } else {
      s.opt_pool.push_back(std::make_unique<OptEntry>());
      e = s.opt_pool.back().get();
      e->words = std::make_unique<std::atomic<std::uint64_t>[]>(opt_key_words_ +
                                                                opt_val_words_);
    }
    item.opt = e;
  }
  const std::uint64_t h = HashKey(key);
  SeqBegin(*e);
  e->key_hash.store(h, std::memory_order_relaxed);
  e->key_len.store(static_cast<std::uint32_t>(key.size()),
                   std::memory_order_relaxed);
  StoreWords(e->words.get(), key);
  if (item.value.size() <= opt_val_cap_) {
    e->val_len.store(static_cast<std::uint32_t>(item.value.size()),
                     std::memory_order_relaxed);
    StoreWords(e->words.get() + opt_key_words_, item.value);
  } else {
    e->val_len.store(kOptOversize, std::memory_order_relaxed);
  }
  e->flags.store(item.flags, std::memory_order_relaxed);
  e->cas.store(item.cas, std::memory_order_relaxed);
  e->expires_at.store(item.expires_at, std::memory_order_relaxed);
  SeqEnd(*e);
  if (fresh) {
    OptEnsureCapacityLocked(s);
    OptTable* t = s.opt_table.load(std::memory_order_relaxed);
    OptEntry* tomb = Tomb<OptEntry>();
    for (std::uint64_t i = MixHash(h);; ++i) {
      auto& slot = t->slots[i & t->mask];
      OptEntry* cur = slot.load(std::memory_order_relaxed);
      if (cur == nullptr || cur == tomb) {
        if (cur == tomb) --s.opt_tombs;
        slot.store(e, std::memory_order_release);
        break;
      }
    }
    ++s.opt_live;
  }
}

void CacheStore::OptEraseLocked(Shard& s, Item& item) {
  OptEntry* e = item.opt;
  if (e == nullptr) return;
  item.opt = nullptr;
  // Leave the version odd: a reader holding this pointer (directly or via a
  // retired table) can never validate, even after the entry is recycled.
  SeqBegin(*e);
  OptTable* t = s.opt_table.load(std::memory_order_relaxed);
  OptEntry* tomb = Tomb<OptEntry>();
  const std::uint64_t h = e->key_hash.load(std::memory_order_relaxed);
  for (std::uint64_t i = MixHash(h), n = 0; n < t->capacity; ++i, ++n) {
    auto& slot = t->slots[i & t->mask];
    OptEntry* cur = slot.load(std::memory_order_relaxed);
    if (cur == e) {
      slot.store(tomb, std::memory_order_release);
      ++s.opt_tombs;
      break;
    }
    if (cur == nullptr) break;  // defensive; CheckInvariants would flag this
  }
  --s.opt_live;
  s.opt_free.push_back(e);
}

void CacheStore::OptEnsureCapacityLocked(Shard& s) {
  OptTable* old = s.opt_table.load(std::memory_order_relaxed);
  if ((s.opt_live + s.opt_tombs + 1) * 4 <= old->capacity * 3) return;
  std::size_t cap = old->capacity;
  if ((s.opt_live + 1) * 4 > cap * 3) cap *= 2;  // genuinely full: grow
  // else: tombstone-dominated; rebuild at the same capacity.
  auto fresh = std::make_unique<OptTable>(cap);
  OptEntry* tomb = Tomb<OptEntry>();
  for (std::size_t j = 0; j < old->capacity; ++j) {
    OptEntry* e = old->slots[j].load(std::memory_order_relaxed);
    if (e == nullptr || e == tomb) continue;
    std::uint64_t h = e->key_hash.load(std::memory_order_relaxed);
    for (std::uint64_t i = MixHash(h);; ++i) {
      auto& slot = fresh->slots[i & fresh->mask];
      if (slot.load(std::memory_order_relaxed) == nullptr) {
        slot.store(e, std::memory_order_relaxed);
        break;
      }
    }
  }
  s.opt_tombs = 0;
  // Publish, retiring the old table in place (readers holding it stay
  // memory-safe; they just may not see fresh keys and fall back).
  s.opt_tables.push_back(std::move(fresh));
  s.opt_table.store(s.opt_tables.back().get(), std::memory_order_release);
}

void CacheStore::DrainTouchesLocked(Shard& s) {
  if (opt_val_cap_ == 0) return;
  const std::uint32_t head = s.touch_head.load(std::memory_order_relaxed);
  if (head == s.touch_drained) return;
  // Under wrap, older pushes were overwritten: skip ahead and only replay
  // the last kTouchSlots hints (approximate LRU by design).
  if (head - s.touch_drained > kTouchSlots) s.touch_drained = head - kTouchSlots;
  while (s.touch_drained != head) {
    OptEntry* e = s.touch_slots[s.touch_drained & (kTouchSlots - 1)].exchange(
        nullptr, std::memory_order_relaxed);
    ++s.touch_drained;
    if (e == nullptr) continue;
    // The entry may have been erased or recycled for another key since the
    // reader queued it; resolve it through the live table and ignore hints
    // that no longer match (a wrong touch would only perturb LRU order).
    if (e->version.load(std::memory_order_relaxed) & 1) continue;
    const std::uint32_t klen = e->key_len.load(std::memory_order_relaxed);
    if (klen == 0 || klen > kOptKeyCap) continue;
    char kbuf[kOptKeyCap];
    LoadWords(e->words.get(), kbuf, klen);
    auto it = s.items.find(std::string_view(kbuf, klen));
    if (it == s.items.end() || it->second.opt != e) continue;
    TouchLocked(s, it->second, it->first);
  }
}

// ---- locked core -----------------------------------------------------------

void CacheStore::EraseLocked(Shard& s, ItemMap::iterator it) {
  OptEraseLocked(s, it->second);
  s.bytes -= ItemBytes(it->first, it->second.value);
  s.lru.erase(it->second.lru_pos);
  if (s.camp) s.camp->OnErase(it->first);
  s.items.erase(it);
}

void CacheStore::BumpLruLocked(Shard& s, Item& item, const std::string& key) {
  s.lru.erase(item.lru_pos);
  s.lru.push_front(key);
  item.lru_pos = s.lru.begin();
}

void CacheStore::TouchLocked(Shard& s, Item& item, const std::string& key) {
  BumpLruLocked(s, item, key);
  if (s.camp) s.camp->OnAccess(key);
}

void CacheStore::EvictIfNeededLocked(Shard& s) {
  if (per_shard_budget_ == 0 || s.bytes <= per_shard_budget_) return;
  // Replay queued optimistic-read touches first so recently-read items get
  // their LRU/CAMP protection before victims are chosen.
  DrainTouchesLocked(s);
  while (s.bytes > per_shard_budget_ && !s.items.empty()) {
    ItemMap::iterator victim;
    if (s.camp) {
      auto key = s.camp->Victim();
      if (!key) break;
      victim = s.items.find(*key);
      if (victim == s.items.end()) {
        s.camp->OnErase(*key);
        continue;
      }
      s.camp->OnEvict(*key);  // advances the inflation value L
    } else {
      if (s.lru.empty()) break;
      victim = s.items.find(s.lru.back());
      if (victim == s.items.end()) {  // should not happen; keep lists in sync
        s.lru.pop_back();
        continue;
      }
    }
    EraseLocked(s, victim);
    ++s.stats.evictions;
  }
}

CacheStore::ItemMap::iterator CacheStore::FindLive(Shard& s,
                                                   std::string_view key) {
  auto it = s.items.find(key);  // heterogeneous: no std::string temporary
  if (it == s.items.end()) return s.items.end();
  if (ExpiredLocked(s, it->second)) {
    EraseLocked(s, it);
    ++s.stats.expirations;
    return s.items.end();
  }
  return it;
}

void CacheStore::StoreLocked(Shard& s, std::string_view key,
                             std::string_view value, std::uint32_t flags,
                             Nanos ttl, std::optional<std::uint64_t> cost) {
  auto it = s.items.find(key);
  Nanos expires = ttl > 0 ? clock_.Now() + ttl : 0;
  if (it != s.items.end()) {
    s.bytes -= ItemBytes(it->first, it->second.value);
    it->second.value.assign(value);
    it->second.flags = flags;
    it->second.cas = cas_counter_.fetch_add(1, std::memory_order_relaxed);
    it->second.expires_at = expires;
    // cas/replace/refresh overwrites keep the cost recorded at Set: the
    // recomputation cost of the query result did not change.
    if (cost) it->second.cost = *cost;
    s.bytes += ItemBytes(it->first, it->second.value);
    if (s.camp) {
      s.camp->OnInsert(it->first, it->second.cost,
                       ItemBytes(it->first, it->second.value));
    }
    BumpLruLocked(s, it->second, it->first);
    OptUpsertLocked(s, it->first, it->second);
  } else {
    auto [ins, ok] = s.items.emplace(std::string(key), Item{});
    (void)ok;
    ins->second.value.assign(value);
    ins->second.flags = flags;
    ins->second.cas = cas_counter_.fetch_add(1, std::memory_order_relaxed);
    ins->second.expires_at = expires;
    ins->second.cost = cost.value_or(1);
    s.lru.push_front(ins->first);
    ins->second.lru_pos = s.lru.begin();
    s.bytes += ItemBytes(ins->first, ins->second.value);
    if (s.camp) {
      s.camp->OnInsert(ins->first, ins->second.cost,
                       ItemBytes(ins->first, ins->second.value));
    }
    OptUpsertLocked(s, ins->first, ins->second);
  }
  EvictIfNeededLocked(s);
}

void CacheStore::FinishResizeLocked(Shard& s, ItemMap::iterator it) {
  // CAMP must see the new size (at the preserved cost) or its cost/size heap
  // drifts from reality; the resize also counts as an access, and a grown
  // value must re-check the byte budget.
  if (s.camp) {
    s.camp->OnInsert(it->first, it->second.cost,
                     ItemBytes(it->first, it->second.value));
  }
  BumpLruLocked(s, it->second, it->first);
  OptUpsertLocked(s, it->first, it->second);
  EvictIfNeededLocked(s);
}

// ---- public command set ----------------------------------------------------

std::optional<CacheItem> CacheStore::Get(std::string_view key) {
  const std::uint64_t h = HashKey(key);
  if (auto hit = OptimisticGet(key, h)) return hit;
  Shard& s = shards_[h % shards_.size()];
  std::lock_guard lock(s.mu);
  ++s.stats.gets;
  auto it = FindLive(s, key);
  if (it == s.items.end()) {
    ++s.stats.get_misses;
    return std::nullopt;
  }
  ++s.stats.get_hits;
  TouchLocked(s, it->second, it->first);
  return CacheItem{it->second.value, it->second.flags, it->second.cas};
}

std::optional<CacheItem> CacheStore::OptimisticGet(std::string_view key) {
  return OptimisticGet(key, HashKey(key));
}

std::optional<CacheItem> CacheStore::OptimisticGet(std::string_view key,
                                                   std::uint64_t h) {
  if (opt_val_cap_ == 0 || key.size() > kOptKeyCap) return std::nullopt;
  Shard& s = shards_[h % shards_.size()];
  OptTable* t = s.opt_table.load(std::memory_order_acquire);
  OptEntry* tomb = Tomb<OptEntry>();
  const std::size_t probe_cap = std::min(kOptMaxProbes, t->capacity);
  for (std::uint64_t i = MixHash(h), n = 0; n < probe_cap; ++i, ++n) {
    OptEntry* e = t->slots[i & t->mask].load(std::memory_order_acquire);
    if (e == nullptr) break;  // not indexed: the locked path decides hit/miss
    if (e == tomb) continue;
    const std::uint64_t v1 = e->version.load(std::memory_order_acquire);
    if (v1 & 1) {  // writer mid-update or dead entry: bounce, never spin
      s.opt_fallbacks.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    // Pre-validation loads below may be torn; any decision they feed ends in
    // "keep probing" or "fall back to the locked path", never a wrong answer.
    if (e->key_hash.load(std::memory_order_relaxed) != h) continue;
    const std::uint32_t klen = e->key_len.load(std::memory_order_relaxed);
    if (klen != key.size()) continue;
    char kbuf[kOptKeyCap];
    LoadWords(e->words.get(), kbuf, klen);
    if (std::memcmp(kbuf, key.data(), klen) != 0) continue;
    const std::uint32_t vlen = e->val_len.load(std::memory_order_relaxed);
    const std::uint32_t flags = e->flags.load(std::memory_order_relaxed);
    const std::uint64_t cas = e->cas.load(std::memory_order_relaxed);
    const Nanos expires = e->expires_at.load(std::memory_order_relaxed);
    const bool oversize = vlen > opt_val_cap_;  // covers kOptOversize + tears
    CacheItem out;
    if (!oversize) {
      out.value.resize(vlen);
      LoadWords(e->words.get() + opt_key_words_, out.value.data(), vlen);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (e->version.load(std::memory_order_relaxed) != v1) {
      s.opt_fallbacks.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;  // raced a writer; the locked path settles it
    }
    // Snapshot is consistent as of v1.
    if (oversize || (expires != 0 && clock_.Now() >= expires)) {
      // Big values and TTL hits are served (and expired) by the locked path.
      s.opt_fallbacks.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    out.flags = flags;
    out.cas = cas;
    // Approximate recency: queue the touch; the next locked mutation on
    // this shard replays it into the real LRU/CAMP structures.
    const std::uint32_t ti = s.touch_head.fetch_add(1, std::memory_order_relaxed);
    s.touch_slots[ti & (kTouchSlots - 1)].store(e, std::memory_order_relaxed);
    s.opt_hits.fetch_add(1, std::memory_order_relaxed);
    return out;
  }
  return std::nullopt;  // genuine miss or overlong probe chain: locked path
                        // gives the authoritative answer either way
}

StoreResult CacheStore::Set(std::string_view key, std::string_view value,
                            std::uint32_t flags, Nanos ttl,
                            std::uint64_t cost) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.sets;
  StoreLocked(s, key, value, flags, ttl, cost);
  return StoreResult::kStored;
}

StoreResult CacheStore::Add(std::string_view key, std::string_view value,
                            std::uint32_t flags, Nanos ttl) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.sets;
  if (FindLive(s, key) != s.items.end()) return StoreResult::kNotStored;
  StoreLocked(s, key, value, flags, ttl);
  return StoreResult::kStored;
}

StoreResult CacheStore::Replace(std::string_view key, std::string_view value,
                                std::uint32_t flags, Nanos ttl) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.sets;
  if (FindLive(s, key) == s.items.end()) return StoreResult::kNotStored;
  StoreLocked(s, key, value, flags, ttl);
  return StoreResult::kStored;
}

StoreResult CacheStore::Cas(std::string_view key, std::string_view value,
                            std::uint64_t cas, std::uint32_t flags, Nanos ttl) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.cas_ops;
  auto it = FindLive(s, key);
  if (it == s.items.end()) return StoreResult::kNotFound;
  if (it->second.cas != cas) {
    ++s.stats.cas_mismatches;
    return StoreResult::kExists;
  }
  StoreLocked(s, key, value, flags, ttl);
  return StoreResult::kStored;
}

bool CacheStore::Delete(std::string_view key) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.deletes;
  auto it = FindLive(s, key);
  if (it == s.items.end()) return false;
  EraseLocked(s, it);
  ++s.stats.delete_hits;
  return true;
}

StoreResult CacheStore::Append(std::string_view key, std::string_view suffix) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.appends;
  auto it = FindLive(s, key);
  if (it == s.items.end()) return StoreResult::kNotStored;
  s.bytes -= ItemBytes(it->first, it->second.value);
  it->second.value.append(suffix);
  it->second.cas = cas_counter_.fetch_add(1, std::memory_order_relaxed);
  s.bytes += ItemBytes(it->first, it->second.value);
  FinishResizeLocked(s, it);
  return StoreResult::kStored;
}

StoreResult CacheStore::Prepend(std::string_view key, std::string_view prefix) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.prepends;
  auto it = FindLive(s, key);
  if (it == s.items.end()) return StoreResult::kNotStored;
  s.bytes -= ItemBytes(it->first, it->second.value);
  it->second.value.insert(0, prefix);
  it->second.cas = cas_counter_.fetch_add(1, std::memory_order_relaxed);
  s.bytes += ItemBytes(it->first, it->second.value);
  FinishResizeLocked(s, it);
  return StoreResult::kStored;
}

namespace {

std::optional<std::uint64_t> ParseUint(std::string_view v) {
  std::uint64_t out = 0;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) return std::nullopt;
  return out;
}

}  // namespace

std::optional<std::uint64_t> CacheStore::Incr(std::string_view key,
                                              std::uint64_t delta) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.incr_decrs;
  auto it = FindLive(s, key);
  if (it == s.items.end()) return std::nullopt;
  auto cur = ParseUint(it->second.value);
  if (!cur) return std::nullopt;
  std::uint64_t next = *cur + delta;
  s.bytes -= ItemBytes(it->first, it->second.value);
  it->second.value = std::to_string(next);
  it->second.cas = cas_counter_.fetch_add(1, std::memory_order_relaxed);
  s.bytes += ItemBytes(it->first, it->second.value);
  FinishResizeLocked(s, it);
  return next;
}

std::optional<std::uint64_t> CacheStore::Decr(std::string_view key,
                                              std::uint64_t delta) {
  Shard& s = ShardFor(key);
  std::lock_guard lock(s.mu);
  ++s.stats.incr_decrs;
  auto it = FindLive(s, key);
  if (it == s.items.end()) return std::nullopt;
  auto cur = ParseUint(it->second.value);
  if (!cur) return std::nullopt;
  std::uint64_t next = *cur >= delta ? *cur - delta : 0;  // saturate at 0
  s.bytes -= ItemBytes(it->first, it->second.value);
  it->second.value = std::to_string(next);
  it->second.cas = cas_counter_.fetch_add(1, std::memory_order_relaxed);
  s.bytes += ItemBytes(it->first, it->second.value);
  FinishResizeLocked(s, it);
  return next;
}

void CacheStore::Flush() {
  for (auto& s : shards_) {
    std::lock_guard lock(s.mu);
    if (opt_val_cap_ > 0) {
      // Discard queued touches and kill every mirror before dropping items.
      s.touch_drained = s.touch_head.load(std::memory_order_relaxed);
      for (std::uint32_t i = 0; i < kTouchSlots; ++i) {
        s.touch_slots[i].store(nullptr, std::memory_order_relaxed);
      }
      for (auto& [key, item] : s.items) {
        if (item.opt != nullptr) {
          SeqBegin(*item.opt);  // leave odd = dead
          s.opt_free.push_back(item.opt);
          item.opt = nullptr;
        }
      }
      OptTable* t = s.opt_table.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < t->capacity; ++i) {
        t->slots[i].store(nullptr, std::memory_order_relaxed);
      }
      s.opt_live = 0;
      s.opt_tombs = 0;
    }
    s.items.clear();
    s.lru.clear();
    s.bytes = 0;
    // Without this, CAMP keeps ghost entries for flushed keys and its
    // victim choices (and Size accounting) drift from the live store.
    if (s.camp) s.camp->Clear();
    // Count the flush once, not once per shard.
    if (&s == &shards_.front()) ++s.stats.flushes;
  }
}

CacheStats CacheStore::Stats() const {
  CacheStats total;
  for (const auto& s : shards_) {
    std::lock_guard lock(s.mu);
    const std::uint64_t opt_hits = s.opt_hits.load(std::memory_order_relaxed);
    // Optimistic hits bypass the locked counters; fold them in so gets/
    // get_hits keep meaning "every get / every hit" regardless of path.
    total.gets += s.stats.gets + opt_hits;
    total.get_hits += s.stats.get_hits + opt_hits;
    total.get_misses += s.stats.get_misses;
    total.sets += s.stats.sets;
    total.deletes += s.stats.deletes;
    total.delete_hits += s.stats.delete_hits;
    total.cas_ops += s.stats.cas_ops;
    total.cas_mismatches += s.stats.cas_mismatches;
    total.appends += s.stats.appends;
    total.prepends += s.stats.prepends;
    total.incr_decrs += s.stats.incr_decrs;
    total.evictions += s.stats.evictions;
    total.expirations += s.stats.expirations;
    total.flushes += s.stats.flushes;
    total.opt_hits += opt_hits;
    total.opt_fallbacks += s.opt_fallbacks.load(std::memory_order_relaxed);
    total.bytes_used += s.bytes;
    total.item_count += s.items.size();
  }
  return total;
}

std::string CacheStore::CheckInvariants() {
  OptEntry* tomb = Tomb<OptEntry>();
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    Shard& s = shards_[si];
    std::lock_guard lock(s.mu);
    const std::string where = "shard " + std::to_string(si) + ": ";
    std::size_t bytes = 0;
    for (const auto& [key, item] : s.items) bytes += ItemBytes(key, item.value);
    if (bytes != s.bytes) {
      return where + "bytes accounting drift: counted " + std::to_string(bytes) +
             " recorded " + std::to_string(s.bytes);
    }
    if (s.lru.size() != s.items.size()) {
      return where + "lru size " + std::to_string(s.lru.size()) +
             " != item count " + std::to_string(s.items.size());
    }
    for (const auto& key : s.lru) {
      auto it = s.items.find(key);
      if (it == s.items.end()) return where + "lru ghost key '" + key + "'";
      if (&*it->second.lru_pos != &key) {
        return where + "lru_pos desync for '" + key + "'";
      }
    }
    if (s.camp && s.camp->Size() != s.items.size()) {
      return where + "camp tracks " + std::to_string(s.camp->Size()) +
             " keys, store has " + std::to_string(s.items.size());
    }
    if (opt_val_cap_ > 0) {
      std::size_t mirrored = 0;
      for (const auto& [key, item] : s.items) {
        if (key.size() > kOptKeyCap) {
          if (item.opt != nullptr) return where + "long key has a mirror";
          continue;
        }
        const OptEntry* e = item.opt;
        if (e == nullptr) return where + "short key '" + key + "' lacks mirror";
        ++mirrored;
        if (e->version.load(std::memory_order_relaxed) & 1) {
          return where + "mirror for '" + key + "' is dead/odd";
        }
        if (e->key_hash.load(std::memory_order_relaxed) != HashKey(key)) {
          return where + "mirror hash mismatch for '" + key + "'";
        }
        if (e->cas.load(std::memory_order_relaxed) != item.cas) {
          return where + "mirror cas drift for '" + key + "'";
        }
        const std::uint32_t vlen = e->val_len.load(std::memory_order_relaxed);
        if (item.value.size() <= opt_val_cap_) {
          if (vlen != item.value.size()) {
            return where + "mirror length drift for '" + key + "'";
          }
          std::string mirror(vlen, '\0');
          LoadWords(e->words.get() + opt_key_words_, mirror.data(), vlen);
          if (mirror != item.value) {
            return where + "mirror value drift for '" + key + "'";
          }
        } else if (vlen != kOptOversize) {
          return where + "oversize value not flagged for '" + key + "'";
        }
      }
      if (mirrored != s.opt_live) {
        return where + "opt_live " + std::to_string(s.opt_live) +
               " != mirrored items " + std::to_string(mirrored);
      }
      OptTable* t = s.opt_table.load(std::memory_order_relaxed);
      std::size_t slots_live = 0, slots_tomb = 0;
      for (std::size_t i = 0; i < t->capacity; ++i) {
        OptEntry* e = t->slots[i].load(std::memory_order_relaxed);
        if (e == tomb) {
          ++slots_tomb;
        } else if (e != nullptr) {
          ++slots_live;
        }
      }
      if (slots_live != s.opt_live || slots_tomb != s.opt_tombs) {
        return where + "index slot counts drift: live " +
               std::to_string(slots_live) + "/" + std::to_string(s.opt_live) +
               " tombs " + std::to_string(slots_tomb) + "/" +
               std::to_string(s.opt_tombs);
      }
    }
  }
  return "";
}

// ---- Locked extension API --------------------------------------------------

std::optional<CacheItem> CacheStore::GetLocked(const ShardGuard& g,
                                               std::string_view key) {
  Shard& s = shards_[g.shard_index()];
  ++s.stats.gets;
  auto it = FindLive(s, key);
  if (it == s.items.end()) {
    ++s.stats.get_misses;
    return std::nullopt;
  }
  ++s.stats.get_hits;
  TouchLocked(s, it->second, it->first);
  return CacheItem{it->second.value, it->second.flags, it->second.cas};
}

StoreResult CacheStore::SetLocked(const ShardGuard& g, std::string_view key,
                                  std::string_view value, std::uint32_t flags,
                                  Nanos ttl) {
  Shard& s = shards_[g.shard_index()];
  ++s.stats.sets;
  StoreLocked(s, key, value, flags, ttl);
  return StoreResult::kStored;
}

bool CacheStore::DeleteLocked(const ShardGuard& g, std::string_view key) {
  Shard& s = shards_[g.shard_index()];
  ++s.stats.deletes;
  auto it = FindLive(s, key);
  if (it == s.items.end()) return false;
  EraseLocked(s, it);
  ++s.stats.delete_hits;
  return true;
}

bool CacheStore::ContainsLocked(const ShardGuard& g, std::string_view key) {
  Shard& s = shards_[g.shard_index()];
  return FindLive(s, key) != s.items.end();
}

}  // namespace iq
