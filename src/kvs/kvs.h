// An in-process key-value store equivalent to Twitter memcached
// (Twemcache 2.5.3) as used by the paper: get/set/add/replace/cas/delete/
// append/prepend/incr/decr over byte-string values, with LRU eviction under
// a byte budget, optional TTLs, and per-operation statistics.
//
// The store is sharded; each shard owns a mutex, a hash table, and an LRU
// list. The IQ-Server (src/core/iq_server.h) composes on top of this class
// through the Locked* API: it takes the shard lock once, consults its lease
// table, and manipulates items under the same critical section — exactly
// how the paper's lease code is woven into Twemcache's item module.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kvs/camp.h"
#include "util/clock.h"

namespace iq {

/// Which eviction policy a CacheStore runs under its byte budget.
enum class EvictionPolicy {
  kLru,   // classic memcached least-recently-used
  kCamp,  // cost/size-aware CAMP (see kvs/camp.h)
};

/// Result of a mutating KVS command, mirroring memcached reply semantics.
enum class StoreResult {
  kStored,     // value written
  kNotStored,  // add on existing key / replace-append-prepend on missing key
  kExists,     // cas version mismatch
  kNotFound,   // cas/delete/incr on missing key
  kTransportError,  // remote backend only: the command may or may not have
                    // reached the server (CacheStore never returns this)
};

const char* ToString(StoreResult r);

/// A cached item as returned to callers.
struct CacheItem {
  std::string value;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;  // unique version; changes on every write
};

/// Aggregate statistics (monotonic counters).
struct CacheStats {
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t get_misses = 0;
  std::uint64_t sets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t delete_hits = 0;
  std::uint64_t cas_ops = 0;
  std::uint64_t cas_mismatches = 0;
  std::uint64_t appends = 0;
  std::uint64_t prepends = 0;
  std::uint64_t incr_decrs = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
  std::uint64_t bytes_used = 0;  // snapshot, not monotonic
  std::uint64_t item_count = 0;  // snapshot, not monotonic
};

class CacheStore {
 public:
  struct Config {
    std::size_t shard_count = 16;
    /// Total memory budget across shards; 0 disables eviction.
    std::size_t memory_budget_bytes = 0;
    /// Clock used for TTL expiry. Defaults to the process steady clock.
    const Clock* clock = nullptr;
    /// Victim selection under the byte budget.
    EvictionPolicy eviction = EvictionPolicy::kLru;
    /// Significant bits kept by CAMP's ratio rounding.
    int camp_precision = 8;
  };

  CacheStore();
  explicit CacheStore(Config config);

  CacheStore(const CacheStore&) = delete;
  CacheStore& operator=(const CacheStore&) = delete;

  // ---- memcached command set -------------------------------------------

  /// get: returns the item, or nullopt on miss/expiry.
  std::optional<CacheItem> Get(std::string_view key);

  /// set: unconditional store. `cost` is the application-reported cost of
  /// recomputing this value (used by the CAMP eviction policy; ignored by
  /// LRU; 1 = default).
  StoreResult Set(std::string_view key, std::string_view value,
                  std::uint32_t flags = 0, Nanos ttl = 0,
                  std::uint64_t cost = 1);

  /// add: store only if the key does not exist.
  StoreResult Add(std::string_view key, std::string_view value,
                  std::uint32_t flags = 0, Nanos ttl = 0);

  /// replace: store only if the key exists.
  StoreResult Replace(std::string_view key, std::string_view value,
                      std::uint32_t flags = 0, Nanos ttl = 0);

  /// cas: store only if the caller's version matches the current one.
  StoreResult Cas(std::string_view key, std::string_view value,
                  std::uint64_t cas, std::uint32_t flags = 0, Nanos ttl = 0);

  /// delete: returns true if the key existed.
  bool Delete(std::string_view key);

  /// append/prepend: extend an existing value; kNotStored on miss.
  StoreResult Append(std::string_view key, std::string_view suffix);
  StoreResult Prepend(std::string_view key, std::string_view prefix);

  /// incr/decr: treat the value as an ASCII unsigned integer. Returns the
  /// new value, or nullopt if the key is missing or non-numeric. decr
  /// saturates at 0 (memcached semantics).
  std::optional<std::uint64_t> Incr(std::string_view key, std::uint64_t delta);
  std::optional<std::uint64_t> Decr(std::string_view key, std::uint64_t delta);

  /// flush_all: drop every item.
  void Flush();

  CacheStats Stats() const;

  // ---- extension API for the IQ server ---------------------------------
  //
  // LockKey returns a guard holding the shard mutex for `key`; the Locked*
  // calls below require that guard and run without further locking. Two
  // keys on the same shard are serialized by construction.

  class ShardGuard {
   public:
    ShardGuard(ShardGuard&&) = default;
    std::size_t shard_index() const { return index_; }

   private:
    friend class CacheStore;
    ShardGuard(std::unique_lock<std::mutex> lock, std::size_t index)
        : lock_(std::move(lock)), index_(index) {}
    std::unique_lock<std::mutex> lock_;
    std::size_t index_;
  };

  ShardGuard LockKey(std::string_view key);
  /// Lock a shard directly by index (maintenance sweeps, stats
  /// aggregation). const: locking mutates only the mutable shard mutex.
  ShardGuard LockShard(std::size_t index) const;
  std::size_t ShardIndexFor(std::string_view key) const;
  std::size_t shard_count() const { return shards_.size(); }

  std::optional<CacheItem> GetLocked(const ShardGuard& g, std::string_view key);
  StoreResult SetLocked(const ShardGuard& g, std::string_view key,
                        std::string_view value, std::uint32_t flags = 0,
                        Nanos ttl = 0);
  bool DeleteLocked(const ShardGuard& g, std::string_view key);
  bool ContainsLocked(const ShardGuard& g, std::string_view key);

 private:
  struct Item {
    std::string value;
    std::uint32_t flags = 0;
    std::uint64_t cas = 0;
    Nanos expires_at = 0;  // 0 = never
    std::list<std::string>::iterator lru_pos;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Item> items;
    std::list<std::string> lru;  // front = most recent (LRU policy)
    std::unique_ptr<CampPolicy> camp;  // non-null iff eviction == kCamp
    std::size_t bytes = 0;
    CacheStats stats;  // guarded by mu
  };

  Shard& ShardFor(std::string_view key);

  bool ExpiredLocked(Shard& s, const Item& item) const;
  void EraseLocked(Shard& s, std::unordered_map<std::string, Item>::iterator it);
  void TouchLocked(Shard& s, Item& item, const std::string& key);
  void StoreLocked(Shard& s, std::string_view key, std::string_view value,
                   std::uint32_t flags, Nanos ttl, std::uint64_t cost = 1);
  void EvictIfNeededLocked(Shard& s);
  static std::size_t ItemBytes(std::string_view key, std::string_view value);

  /// Looks up key, erasing it first if expired. Returns items.end() on miss.
  std::unordered_map<std::string, Item>::iterator FindLive(Shard& s,
                                                           std::string_view key);

  const Clock& clock_;
  std::size_t per_shard_budget_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> cas_counter_{1};
};

}  // namespace iq
