// An in-process key-value store equivalent to Twitter memcached
// (Twemcache 2.5.3) as used by the paper: get/set/add/replace/cas/delete/
// append/prepend/incr/decr over byte-string values, with LRU eviction under
// a byte budget, optional TTLs, and per-operation statistics.
//
// The store is sharded; each shard owns a mutex, a hash table, and an LRU
// list. The IQ-Server (src/core/iq_server.h) composes on top of this class
// through the Locked* API: it takes the shard lock once, consults its lease
// table, and manipulates items under the same critical section — exactly
// how the paper's lease code is woven into Twemcache's item module.
//
// Read hits additionally have a mutex-free path (OptimisticGet): every live
// item with a short key keeps a seqlock-versioned mirror record (OptEntry)
// reachable through a lock-free open-addressing index, so the common
// lease-free read copies the value without touching the shard mutex and
// falls back to the locked path whenever validation fails. Writers maintain
// the mirrors under the existing shard lock. See DESIGN.md §4.6.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kvs/camp.h"
#include "util/clock.h"

namespace iq {

/// Which eviction policy a CacheStore runs under its byte budget.
enum class EvictionPolicy {
  kLru,   // classic memcached least-recently-used
  kCamp,  // cost/size-aware CAMP (see kvs/camp.h)
};

/// Result of a mutating KVS command, mirroring memcached reply semantics.
enum class StoreResult {
  kStored,     // value written
  kNotStored,  // add on existing key / replace-append-prepend on missing key
  kExists,     // cas version mismatch
  kNotFound,   // cas/delete/incr on missing key
  kTransportError,  // remote backend only: the command may or may not have
                    // reached the server (CacheStore never returns this)
};

const char* ToString(StoreResult r);

/// A cached item as returned to callers.
struct CacheItem {
  std::string value;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;  // unique version; changes on every write
};

/// Aggregate statistics (monotonic counters). Optimistic (mutex-free) read
/// hits are folded into gets/get_hits and also reported separately.
struct CacheStats {
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t get_misses = 0;
  std::uint64_t sets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t delete_hits = 0;
  std::uint64_t cas_ops = 0;
  std::uint64_t cas_mismatches = 0;
  std::uint64_t appends = 0;
  std::uint64_t prepends = 0;
  std::uint64_t incr_decrs = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
  std::uint64_t flushes = 0;
  std::uint64_t opt_hits = 0;       // read hits served without the shard lock
  std::uint64_t opt_fallbacks = 0;  // optimistic attempts that bounced to the
                                    // locked path (contention/oversize/expiry)
  std::uint64_t bytes_used = 0;  // snapshot, not monotonic
  std::uint64_t item_count = 0;  // snapshot, not monotonic
};

/// Transparent (heterogeneous) hash so the shard maps can be probed with a
/// string_view without materializing a std::string per lookup.
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  std::size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

class CacheStore {
 public:
  /// Keys longer than this are never mirrored for optimistic reads (they
  /// are served by the locked path, exactly as before).
  static constexpr std::size_t kOptKeyCap = 64;

  struct Config {
    std::size_t shard_count = 16;
    /// Total memory budget across shards; 0 disables eviction.
    std::size_t memory_budget_bytes = 0;
    /// Clock used for TTL expiry. Defaults to the process steady clock.
    const Clock* clock = nullptr;
    /// Victim selection under the byte budget.
    EvictionPolicy eviction = EvictionPolicy::kLru;
    /// Significant bits kept by CAMP's ratio rounding.
    int camp_precision = 8;
    /// Largest value (bytes) served by the mutex-free optimistic read path;
    /// larger values always go through the locked path. 0 disables
    /// optimistic reads entirely (A/B baseline).
    std::size_t optimistic_value_cap = 256;
  };

  CacheStore();
  explicit CacheStore(Config config);
  ~CacheStore();

  CacheStore(const CacheStore&) = delete;
  CacheStore& operator=(const CacheStore&) = delete;

  // ---- memcached command set -------------------------------------------

  /// get: returns the item, or nullopt on miss/expiry. Tries the
  /// optimistic mutex-free path first, then the locked path.
  std::optional<CacheItem> Get(std::string_view key);

  /// Mutex-free read hit: locate `key` through the lock-free index, copy
  /// the mirrored value under seqlock validation, and return it. Returns
  /// nullopt whenever the answer must come from the locked path instead —
  /// true miss, oversize value, long key, concurrent write, TTL expiry, or
  /// optimistic reads disabled. Never blocks and never takes the shard
  /// mutex; LRU/CAMP recency is recorded into a striped touch buffer that
  /// writers drain under the shard lock.
  std::optional<CacheItem> OptimisticGet(std::string_view key);
  std::optional<CacheItem> OptimisticGet(std::string_view key,
                                         std::uint64_t hash);

  /// set: unconditional store. `cost` is the application-reported cost of
  /// recomputing this value (used by the CAMP eviction policy; ignored by
  /// LRU; 1 = default).
  StoreResult Set(std::string_view key, std::string_view value,
                  std::uint32_t flags = 0, Nanos ttl = 0,
                  std::uint64_t cost = 1);

  /// add: store only if the key does not exist.
  StoreResult Add(std::string_view key, std::string_view value,
                  std::uint32_t flags = 0, Nanos ttl = 0);

  /// replace: store only if the key exists. Keeps the cost recorded at Set.
  StoreResult Replace(std::string_view key, std::string_view value,
                      std::uint32_t flags = 0, Nanos ttl = 0);

  /// cas: store only if the caller's version matches the current one.
  /// Keeps the cost recorded at Set (a cas swap does not change how
  /// expensive the value is to recompute).
  StoreResult Cas(std::string_view key, std::string_view value,
                  std::uint64_t cas, std::uint32_t flags = 0, Nanos ttl = 0);

  /// delete: returns true if the key existed.
  bool Delete(std::string_view key);

  /// append/prepend: extend an existing value; kNotStored on miss. The
  /// CAMP-recorded size follows the resize.
  StoreResult Append(std::string_view key, std::string_view suffix);
  StoreResult Prepend(std::string_view key, std::string_view prefix);

  /// incr/decr: treat the value as an ASCII unsigned integer. Returns the
  /// new value, or nullopt if the key is missing or non-numeric. decr
  /// saturates at 0 (memcached semantics). Counts as an access for LRU and
  /// CAMP, and re-checks the byte budget (a growing counter can evict).
  std::optional<std::uint64_t> Incr(std::string_view key, std::uint64_t delta);
  std::optional<std::uint64_t> Decr(std::string_view key, std::uint64_t delta);

  /// flush_all: drop every item, including the CAMP policy state and the
  /// optimistic-read index.
  void Flush();

  CacheStats Stats() const;

  /// Structural self-check, taking each shard lock in turn: per-shard byte
  /// accounting (shard.bytes == Σ ItemBytes over live items), LRU/items
  /// agreement, CAMP tracking exactly the live items, and every short-key
  /// item owning a live, value-consistent optimistic mirror. Returns an
  /// empty string when consistent, else a description of the first
  /// violation. Meant for tests and debug assertions, not the hot path.
  std::string CheckInvariants();

  bool optimistic_enabled() const { return opt_val_cap_ > 0; }

  // ---- extension API for the IQ server ---------------------------------
  //
  // LockKey returns a guard holding the shard mutex for `key`; the Locked*
  // calls below require that guard and run without further locking. Two
  // keys on the same shard are serialized by construction.

  class ShardGuard {
   public:
    ShardGuard(ShardGuard&&) = default;
    std::size_t shard_index() const { return index_; }

   private:
    friend class CacheStore;
    ShardGuard(std::unique_lock<std::mutex> lock, std::size_t index)
        : lock_(std::move(lock)), index_(index) {}
    std::unique_lock<std::mutex> lock_;
    std::size_t index_;
  };

  ShardGuard LockKey(std::string_view key);
  /// Lock a shard directly by index (maintenance sweeps, stats
  /// aggregation). const: locking mutates only the mutable shard mutex.
  ShardGuard LockShard(std::size_t index) const;
  /// The hash used for shard selection and the optimistic index.
  static std::uint64_t HashKey(std::string_view key) {
    return std::hash<std::string_view>{}(key);
  }
  std::size_t ShardIndexFor(std::string_view key) const {
    return HashKey(key) % shards_.size();
  }
  std::size_t ShardIndexForHash(std::uint64_t hash) const {
    return hash % shards_.size();
  }
  std::size_t shard_count() const { return shards_.size(); }

  std::optional<CacheItem> GetLocked(const ShardGuard& g, std::string_view key);
  StoreResult SetLocked(const ShardGuard& g, std::string_view key,
                        std::string_view value, std::uint32_t flags = 0,
                        Nanos ttl = 0);
  bool DeleteLocked(const ShardGuard& g, std::string_view key);
  bool ContainsLocked(const ShardGuard& g, std::string_view key);

 private:
  // ---- optimistic-read machinery (see DESIGN.md §4.6) -------------------
  //
  // OptEntry is the seqlock-versioned mirror of one live item. Entries are
  // pool-allocated per shard and NEVER freed while the store lives (erased
  // entries go to a free list and are recycled), so a lock-free reader can
  // always dereference a pointer it loaded from the index: at worst the
  // entry now describes a different key or a write in progress, which the
  // version validation rejects. Every field is an atomic accessed relaxed
  // under the seqlock fences, keeping the protocol TSan-clean (same idiom
  // as util/trace_ring.h).
  //
  // Version protocol: even = stable, odd = writer in progress or dead.
  //   writer (under the shard lock): version -> odd; release fence; store
  //     fields relaxed; version -> even (release).
  //   reader: v1 = version (acquire); if odd give up; load fields relaxed;
  //     acquire fence; v2 = version (relaxed); accept iff v1 == v2.
  // Erase just leaves the version odd; reuse continues the same counter, so
  // a reader holding a stale pointer can never validate across a recycle.
  struct OptEntry {
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> key_hash{0};
    std::atomic<std::uint32_t> key_len{0};
    std::atomic<std::uint32_t> val_len{0};  // kOptOversize: value > cap
    std::atomic<std::uint32_t> flags{0};
    std::atomic<std::uint64_t> cas{0};
    std::atomic<std::int64_t> expires_at{0};
    /// Key bytes then value bytes, packed into 64-bit words so the copy is
    /// a handful of relaxed word ops instead of per-byte atomics.
    std::unique_ptr<std::atomic<std::uint64_t>[]> words;
  };

  /// Lock-free-readable open-addressing index: hash -> OptEntry*. Writers
  /// mutate slots under the shard lock; readers probe with acquire loads.
  /// Slots hold nullptr (empty, probe stops), a tombstone (probe
  /// continues), or an entry pointer. Grown tables are published with a
  /// release store; retired tables are kept until destruction so a reader
  /// holding the old pointer stays memory-safe (it may miss fresh keys and
  /// simply falls back to the locked path).
  struct OptTable {
    explicit OptTable(std::size_t cap)
        : capacity(cap),
          mask(cap - 1),
          slots(std::make_unique<std::atomic<OptEntry*>[]>(cap)) {}
    std::size_t capacity;
    std::uint64_t mask;
    std::unique_ptr<std::atomic<OptEntry*>[]> slots;
  };

  struct Item {
    std::string value;
    std::uint32_t flags = 0;
    std::uint64_t cas = 0;
    Nanos expires_at = 0;  // 0 = never
    /// Recomputation cost recorded at Set; preserved across cas/append/
    /// prepend/incr/decr so CAMP's priority never silently degrades.
    std::uint64_t cost = 1;
    std::list<std::string>::iterator lru_pos;
    OptEntry* opt = nullptr;  // mirror, or nullptr (long key / disabled)
  };

  using ItemMap = std::unordered_map<std::string, Item, TransparentStringHash,
                                     std::equal_to<>>;

  /// Slots in the per-shard touch buffer (power of two). Optimistic hits
  /// record their OptEntry here with two relaxed atomic ops; the next
  /// locked mutation drains it into real LRU/CAMP touches. Overwrites under
  /// wrap just lose recency hints — LRU stays approximate, never wrong.
  static constexpr std::uint32_t kTouchSlots = 128;

  struct Shard {
    mutable std::mutex mu;
    ItemMap items;
    std::list<std::string> lru;  // front = most recent (LRU policy)
    std::unique_ptr<CampPolicy> camp;  // non-null iff eviction == kCamp
    std::size_t bytes = 0;
    CacheStats stats;  // guarded by mu

    // Optimistic-read state. The table pointer and slot contents are read
    // lock-free; everything is written only under mu.
    std::atomic<OptTable*> opt_table{nullptr};
    std::vector<std::unique_ptr<OptTable>> opt_tables;  // current + retired
    std::vector<std::unique_ptr<OptEntry>> opt_pool;    // owns every entry
    std::vector<OptEntry*> opt_free;                    // recycled entries
    std::size_t opt_live = 0;   // entries reachable through the index
    std::size_t opt_tombs = 0;  // tombstoned slots in the current table

    // Striped (per-shard) approximate-LRU touch buffer.
    std::unique_ptr<std::atomic<OptEntry*>[]> touch_slots;
    std::atomic<std::uint32_t> touch_head{0};
    std::uint32_t touch_drained = 0;  // guarded by mu

    // Counters the lock-free read path may bump (folded into stats).
    std::atomic<std::uint64_t> opt_hits{0};
    std::atomic<std::uint64_t> opt_fallbacks{0};
  };

  Shard& ShardFor(std::string_view key);

  bool ExpiredLocked(Shard& s, const Item& item) const;
  void EraseLocked(Shard& s, ItemMap::iterator it);
  void BumpLruLocked(Shard& s, Item& item, const std::string& key);
  void TouchLocked(Shard& s, Item& item, const std::string& key);
  void StoreLocked(Shard& s, std::string_view key, std::string_view value,
                   std::uint32_t flags, Nanos ttl,
                   std::optional<std::uint64_t> cost = std::nullopt);
  /// Shared tail of every in-place value resize (append/prepend/incr/decr):
  /// refresh CAMP's recorded size at the preserved cost, touch the LRU,
  /// refresh the optimistic mirror, and re-check the byte budget.
  void FinishResizeLocked(Shard& s, ItemMap::iterator it);
  void EvictIfNeededLocked(Shard& s);
  static std::size_t ItemBytes(std::string_view key, std::string_view value);

  /// Looks up key, erasing it first if expired. Returns items.end() on miss.
  ItemMap::iterator FindLive(Shard& s, std::string_view key);

  // Optimistic-mirror maintenance; all run under the shard lock.
  void OptUpsertLocked(Shard& s, const std::string& key, Item& item);
  void OptEraseLocked(Shard& s, Item& item);
  void OptEnsureCapacityLocked(Shard& s);
  void DrainTouchesLocked(Shard& s);

  const Clock& clock_;
  std::size_t per_shard_budget_;
  std::size_t opt_val_cap_;    // 0 = optimistic reads disabled
  std::size_t opt_key_words_;  // words reserved for the key mirror
  std::size_t opt_val_words_;  // words reserved for the value mirror
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> cas_counter_{1};
};

}  // namespace iq
