#include "leases/lease_table.h"

#include <algorithm>
#include <mutex>

namespace iq {

const char* ToString(LeaseKind k) {
  switch (k) {
    case LeaseKind::kInhibit: return "I";
    case LeaseKind::kQInvalidate: return "Q-inv";
    case LeaseKind::kQRefresh: return "Q-ref";
  }
  return "?";
}

LeaseEntry* LeaseTable::Find(std::size_t shard, const std::string& key) {
  auto& m = shards_[shard];
  auto it = m.find(key);
  return it == m.end() ? nullptr : &it->second;
}

const LeaseEntry* LeaseTable::Find(std::size_t shard,
                                   const std::string& key) const {
  const auto& m = shards_[shard];
  auto it = m.find(key);
  return it == m.end() ? nullptr : &it->second;
}

LeaseEntry& LeaseTable::Put(std::size_t shard, const std::string& key,
                            LeaseEntry entry) {
  auto [it, inserted] = shards_[shard].insert_or_assign(key, std::move(entry));
  if (inserted) counts_[shard].fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void LeaseTable::Erase(std::size_t shard, const std::string& key) {
  if (shards_[shard].erase(key) > 0) {
    counts_[shard].fetch_sub(1, std::memory_order_relaxed);
  }
}

std::size_t LeaseTable::Size() const {
  std::size_t n = 0;
  for (const auto& m : shards_) n += m.size();
  return n;
}

void SessionRegistry::AddKey(SessionId session, const std::string& key) {
  Stripe& s = StripeFor(session);
  std::lock_guard lock(s.mu);
  auto& keys = s.sessions[session];
  if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
    keys.push_back(key);
  }
}

void SessionRegistry::RemoveKey(SessionId session, const std::string& key) {
  Stripe& s = StripeFor(session);
  std::lock_guard lock(s.mu);
  auto it = s.sessions.find(session);
  if (it == s.sessions.end()) return;
  auto& keys = it->second;
  keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
  if (keys.empty()) s.sessions.erase(it);
}

std::vector<std::string> SessionRegistry::Keys(SessionId session) const {
  const Stripe& s = StripeFor(session);
  std::lock_guard lock(s.mu);
  auto it = s.sessions.find(session);
  return it == s.sessions.end() ? std::vector<std::string>{} : it->second;
}

void SessionRegistry::Drop(SessionId session) {
  Stripe& s = StripeFor(session);
  std::lock_guard lock(s.mu);
  s.sessions.erase(session);
}

std::size_t SessionRegistry::SessionCount() const {
  std::size_t n = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard lock(s.mu);
    n += s.sessions.size();
  }
  return n;
}

}  // namespace iq
