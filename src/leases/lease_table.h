// Lease bookkeeping for the IQ framework (paper Sections 3-5).
//
// Three lease flavors exist on a key:
//   kInhibit    - "I" lease: granted to one read session on a KVS miss so it
//                 alone recomputes the value from the RDBMS. At most one per
//                 key; voided by any Q request.
//   kQInvalidate- "Q" lease taken by invalidate-technique write sessions
//                 (QaReg/DaR). Multiple sessions may share it (deletes are
//                 idempotent, Figure 5a).
//   kQRefresh   - "Q" lease taken by refresh (QaRead/SaR) and incremental-
//                 update (IQ-delta/Commit) write sessions. Exclusive: a
//                 second session's request is rejected and that session
//                 aborts (Figure 5b). Buffers pending deltas server-side.
//
// LeaseTable stores entries sharded identically to the CacheStore so the
// IQ-Server can examine/modify the lease and the cached item under one
// shard lock. LeaseTable itself performs no locking.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/clock.h"

namespace iq {

/// Unique, unguessable-enough lease identity. 0 is "no token".
using LeaseToken = std::uint64_t;

/// Session / transaction identity handed out by GenID(). 0 is "anonymous".
using SessionId = std::uint64_t;

enum class LeaseKind { kInhibit, kQInvalidate, kQRefresh };

const char* ToString(LeaseKind k);

/// A buffered incremental update (paper's IQ-delta command).
struct DeltaOp {
  enum class Kind { kAppend, kPrepend, kIncr, kDecr };
  Kind kind;
  std::string blob;          // kAppend / kPrepend payload
  std::uint64_t amount = 0;  // kIncr / kDecr amount
};

struct LeaseEntry {
  LeaseKind kind;
  /// Valid for kInhibit and kQRefresh. 0 for kQInvalidate.
  LeaseToken token = 0;
  /// Owner for kInhibit/kQRefresh.
  SessionId holder = 0;
  /// Sharing owners for kQInvalidate.
  std::unordered_set<SessionId> inv_holders;
  /// Expiration (Clock::Now() scale).
  Nanos expires_at = 0;
  /// kQRefresh only: deltas queued by IQ-delta, applied at Commit.
  std::vector<DeltaOp> pending_deltas;
  /// kQInvalidate only: latest lapse of a near-cache validity interval
  /// granted on this key before the Q arrived (Clock::Now() scale, 0 =
  /// none). The invalidating commit must not take effect as "fresh" before
  /// this instant — near caches may serve the old value until then.
  Nanos hold_until = 0;
  /// kQInvalidate only: a commit emptied the holder set while hold_until
  /// was still in the future; the delete is pending until the grants lapse.
  bool pending_delete = false;

  bool HeldBy(SessionId s) const {
    if (kind == LeaseKind::kQInvalidate) return inv_holders.contains(s);
    return holder == s;
  }
};

/// Sharded key -> LeaseEntry map. Callers (the IQ-Server) are responsible
/// for holding the corresponding CacheStore shard lock around every call
/// that touches a given shard.
class LeaseTable {
 public:
  explicit LeaseTable(std::size_t shard_count)
      : shards_(shard_count > 0 ? shard_count : 1),
        counts_(std::make_unique<std::atomic<std::size_t>[]>(shards_.size())) {}

  /// Lease on `key`, or nullptr. Does NOT check expiry (see Expired()).
  LeaseEntry* Find(std::size_t shard, const std::string& key);
  const LeaseEntry* Find(std::size_t shard, const std::string& key) const;

  /// Insert or overwrite.
  LeaseEntry& Put(std::size_t shard, const std::string& key, LeaseEntry entry);

  void Erase(std::size_t shard, const std::string& key);

  static bool Expired(const LeaseEntry& e, Nanos now) {
    return e.expires_at != 0 && now >= e.expires_at;
  }

  /// Entries in one shard. Caller must hold that shard's CacheStore lock
  /// when commands may be running concurrently.
  std::size_t ShardSize(std::size_t shard) const { return shards_[shard].size(); }

  /// Lock-free entry count for one shard, maintained by Put/Erase with
  /// relaxed atomics. Powers the mutex-free read fast path: a reader that
  /// observes 0 here knows no key in this shard carried a lease at some
  /// point during its read, which is all the optimistic hit needs to
  /// linearize (see DESIGN.md §4.6). May be momentarily stale — stale-
  /// nonzero just costs a locked fallback, and a concurrent grant after the
  /// load races the read exactly as it would race a locked read.
  std::size_t ShardSizeRelaxed(std::size_t shard) const {
    return counts_[shard].load(std::memory_order_relaxed);
  }

  /// Count of live entries across all shards WITHOUT locking: safe only on
  /// a quiescent table (single-threaded tests). Concurrent use must
  /// aggregate ShardSize() under each shard's lock instead — see
  /// IQServer::LeaseCount().
  std::size_t Size() const;

  std::size_t shard_count() const { return shards_.size(); }

  /// Visit every (key, entry) of one shard.
  template <typename Fn>
  void ForEach(std::size_t shard, Fn&& fn) {
    for (auto& [key, entry] : shards_[shard]) fn(key, entry);
  }

 private:
  std::vector<std::unordered_map<std::string, LeaseEntry>> shards_;
  /// Mirrors shards_[i].size(); the only member written without the caller
  /// holding the shard lock being read lock-free (writes still happen under
  /// it, via Put/Erase).
  std::unique_ptr<std::atomic<std::size_t>[]> counts_;
};

/// Per-session registry of quarantined keys, needed so Commit/Abort/DaR can
/// find everything a session holds. Thread-safe; striped by session id so
/// concurrent write sessions do not funnel through one mutex (every QaRead/
/// QaReg touches the registry while holding a CacheStore shard lock).
///
/// Lock order: CacheStore shard lock, then a registry stripe mutex. Never
/// acquire a shard lock while holding a stripe mutex.
class SessionRegistry {
 public:
  explicit SessionRegistry(std::size_t stripe_count = 16)
      : stripes_(stripe_count > 0 ? stripe_count : 1) {}

  void AddKey(SessionId session, const std::string& key);
  void RemoveKey(SessionId session, const std::string& key);
  /// All keys registered to `session` (copy), in registration order.
  std::vector<std::string> Keys(SessionId session) const;
  /// Drop the whole session entry.
  void Drop(SessionId session);
  /// Sessions currently registered, aggregated stripe by stripe.
  std::size_t SessionCount() const;

 private:
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::unordered_map<SessionId, std::vector<std::string>> sessions;
  };

  Stripe& StripeFor(SessionId s) { return stripes_[s % stripes_.size()]; }
  const Stripe& StripeFor(SessionId s) const {
    return stripes_[s % stripes_.size()];
  }

  std::vector<Stripe> stripes_;
};

}  // namespace iq
