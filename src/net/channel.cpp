#include "net/channel.h"

#include "util/backoff.h"

namespace iq::net {

LoopbackChannel::LoopbackChannel(IQServer& server, Nanos one_way_latency,
                                 const Clock* clock)
    : dispatcher_(server),
      latency_(one_way_latency),
      clock_(clock != nullptr ? *clock : SteadyClock::Instance()) {}

bool LoopbackChannel::RoundTrip(const std::string& request_bytes,
                                std::string* reply) {
  if (latency_ > 0) SleepFor(clock_, latency_);
  reply->clear();
  {
    std::lock_guard lock(mu_);
    parser_.Feed(request_bytes);
    Request request;
    std::string error;
    // A single RoundTrip may carry several pipelined requests; answer all.
    while (true) {
      auto status = parser_.Next(&request, &error);
      if (status == RequestParser::Status::kNeedMore) break;
      if (status == RequestParser::Status::kError) {
        Response err;
        err.type = ResponseType::kError;
        err.message = error;
        *reply += Serialize(err);
        continue;
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      *reply += Serialize(dispatcher_.Dispatch(request));
    }
  }
  if (latency_ > 0) SleepFor(clock_, latency_);
  return true;
}

Response RemoteCacheClient::Call(const Request& request) {
  std::string bytes;
  Response err;
  if (!channel_.RoundTrip(Serialize(request), &bytes)) {
    err.type = ResponseType::kTransportError;
    err.message = "connection failed";
    return err;
  }
  std::size_t consumed = 0;
  auto response = ParseResponse(bytes, &consumed);
  if (!response) {
    // A short or unparseable reply means the stream is desynced; the caller
    // cannot trust anything further on this connection. Treat as transport
    // failure, not as a server-refused command.
    err.type = ResponseType::kTransportError;
    err.message = "short or malformed response";
    return err;
  }
  return *response;
}

std::optional<CacheItem> RemoteCacheClient::Get(const std::string& key) {
  Request r;
  r.command = Command::kGet;
  r.key = key;
  Response resp = Call(r);
  if (resp.type != ResponseType::kValue) return std::nullopt;
  return CacheItem{std::move(resp.data), resp.flags, resp.cas_unique};
}

std::optional<CacheItem> RemoteCacheClient::Gets(const std::string& key) {
  Request r;
  r.command = Command::kGets;
  r.key = key;
  Response resp = Call(r);
  if (resp.type != ResponseType::kValue) return std::nullopt;
  return CacheItem{std::move(resp.data), resp.flags, resp.cas_unique};
}

std::vector<std::optional<CacheItem>> RemoteCacheClient::MultiGet(
    const std::vector<std::string>& keys, bool with_cas) {
  std::vector<std::optional<CacheItem>> out(keys.size());
  if (keys.empty()) return out;
  Request r;
  r.command = with_cas ? Command::kGets : Command::kGet;
  r.key = keys.front();
  r.keys = keys;
  Response resp = Call(r);
  if (resp.type != ResponseType::kValue) return out;
  // The server omits misses, so match returned VALUE blocks back to the
  // requested keys (duplicates each consume one block, in order). Caveat,
  // inherent to memcached get semantics: the server looks keys up one at a
  // time, so with duplicate keys in one request a concurrent write can make
  // the copies disagree (e.g. only the second copy hits), and sequence
  // matching then attributes the hit to the first copy. Positions still only
  // ever receive a value stored under their own key; dedupe keys before
  // calling if per-position exactness across duplicates matters.
  std::size_t next = 0;
  for (std::size_t i = 0; i < keys.size() && next < resp.values.size(); ++i) {
    ValueEntry& v = resp.values[next];
    if (v.key != keys[i]) continue;
    out[i] = CacheItem{std::move(v.data), v.flags, v.cas_unique};
    ++next;
  }
  return out;
}

namespace {

StoreResult ToStoreResult(const Response& resp) {
  switch (resp.type) {
    case ResponseType::kStored: return StoreResult::kStored;
    case ResponseType::kExists: return StoreResult::kExists;
    case ResponseType::kNotFound: return StoreResult::kNotFound;
    case ResponseType::kTransportError: return StoreResult::kTransportError;
    default: return StoreResult::kNotStored;
  }
}

}  // namespace

StoreResult RemoteCacheClient::Set(const std::string& key,
                                   const std::string& value,
                                   std::uint32_t flags, std::int64_t exptime) {
  Request r;
  r.command = Command::kSet;
  r.key = key;
  r.data = value;
  r.flags = flags;
  r.exptime = exptime;
  return ToStoreResult(Call(r));
}

StoreResult RemoteCacheClient::Add(const std::string& key,
                                   const std::string& value) {
  Request r;
  r.command = Command::kAdd;
  r.key = key;
  r.data = value;
  return ToStoreResult(Call(r));
}

StoreResult RemoteCacheClient::Cas(const std::string& key,
                                   const std::string& value,
                                   std::uint64_t unique) {
  Request r;
  r.command = Command::kCas;
  r.key = key;
  r.data = value;
  r.cas_unique = unique;
  return ToStoreResult(Call(r));
}

bool RemoteCacheClient::Delete(const std::string& key) {
  Request r;
  r.command = Command::kDelete;
  r.key = key;
  return Call(r).type == ResponseType::kDeleted;
}

StoreResult RemoteCacheClient::Append(const std::string& key,
                                      const std::string& blob) {
  Request r;
  r.command = Command::kAppend;
  r.key = key;
  r.data = blob;
  return ToStoreResult(Call(r));
}

StoreResult RemoteCacheClient::Prepend(const std::string& key,
                                       const std::string& blob) {
  Request r;
  r.command = Command::kPrepend;
  r.key = key;
  r.data = blob;
  return ToStoreResult(Call(r));
}

std::optional<std::uint64_t> RemoteCacheClient::Incr(const std::string& key,
                                                     std::uint64_t amount) {
  Request r;
  r.command = Command::kIncr;
  r.key = key;
  r.amount = amount;
  Response resp = Call(r);
  if (resp.type != ResponseType::kNumber) return std::nullopt;
  return resp.number;
}

std::optional<std::uint64_t> RemoteCacheClient::Decr(const std::string& key,
                                                     std::uint64_t amount) {
  Request r;
  r.command = Command::kDecr;
  r.key = key;
  r.amount = amount;
  Response resp = Call(r);
  if (resp.type != ResponseType::kNumber) return std::nullopt;
  return resp.number;
}

void RemoteCacheClient::FlushAll() {
  Request r;
  r.command = Command::kFlushAll;
  Call(r);
}

std::string RemoteCacheClient::Stats() {
  Request r;
  r.command = Command::kStats;
  return Call(r).message;
}

std::optional<std::uint64_t> RemoteCacheClient::Sweep() {
  Request r;
  r.command = Command::kSweep;
  Response resp = Call(r);
  if (resp.type != ResponseType::kNumber) return std::nullopt;
  return resp.number;
}

std::optional<std::string> RemoteCacheClient::Metrics() {
  Request r;
  r.command = Command::kMetrics;
  Response resp = Call(r);
  if (resp.type != ResponseType::kMetrics) return std::nullopt;
  return std::move(resp.data);
}

std::optional<std::vector<TraceEvent>> RemoteCacheClient::Trace(
    std::uint64_t max_events) {
  Request r;
  r.command = Command::kTrace;
  r.amount = max_events;
  Response resp = Call(r);
  // An empty trace serializes as a bare END and parses as kEnd.
  if (resp.type == ResponseType::kEnd) return std::vector<TraceEvent>{};
  if (resp.type != ResponseType::kTrace) return std::nullopt;
  std::vector<TraceEvent> events;
  if (!ParseTraceEvents(resp.message, &events)) return std::nullopt;
  return events;
}

std::optional<RemoteCacheClient::TraceDrain> RemoteCacheClient::TraceWithInfo(
    std::uint64_t max_events) {
  Request r;
  r.command = Command::kTrace;
  r.amount = max_events;
  Response resp = Call(r);
  TraceDrain drain;
  // A headerless empty trace (pre-TRACE_INFO server) is a bare END.
  if (resp.type == ResponseType::kEnd) return drain;
  if (resp.type != ResponseType::kTrace) return std::nullopt;
  if (!ParseTraceEvents(resp.message, &drain.events, &drain.info,
                        &drain.has_info)) {
    return std::nullopt;
  }
  return drain;
}

GetReply RemoteCacheClient::IQget(const std::string& key, SessionId session) {
  Request r;
  r.command = Command::kIQGet;
  r.key = key;
  r.session = session;
  Response resp = Call(r);
  switch (resp.type) {
    case ResponseType::kValue:
      // The ttl token, if any, is a duration relative to receipt: the
      // caller anchors it to its own clock the moment it stores the entry.
      return {GetReply::Status::kHit, std::move(resp.data), 0,
              static_cast<Nanos>(resp.ttl_ns)};
    case ResponseType::kMissToken:
      return {GetReply::Status::kMissGrantedI, {}, resp.number};
    case ResponseType::kMissNoLease:
      return {GetReply::Status::kMissNoLease, {}, 0};
    case ResponseType::kMissBackoff:
      return {GetReply::Status::kMissBackoff, {}, 0};
    default:
      // Transport failure (or a refused/garbled command): report the outage
      // rather than kMissBackoff, which would make the session spin its full
      // retry budget against a dead server.
      return {GetReply::Status::kTransportError, {}, 0};
  }
}

StoreResult RemoteCacheClient::IQset(const std::string& key,
                                     const std::string& value,
                                     LeaseToken token) {
  Request r;
  r.command = Command::kIQSet;
  r.key = key;
  r.data = value;
  r.token = token;
  return ToStoreResult(Call(r));
}

QaReadReply RemoteCacheClient::QaRead(const std::string& key,
                                      SessionId session) {
  Request r;
  r.command = Command::kQaRead;
  r.key = key;
  r.session = session;
  Response resp = Call(r);
  switch (resp.type) {
    case ResponseType::kQValue:
      return {QaReadReply::Status::kGranted, std::move(resp.data), resp.number};
    case ResponseType::kQMiss:
      return {QaReadReply::Status::kGranted, std::nullopt, resp.number};
    case ResponseType::kReject:
      return {QaReadReply::Status::kReject, std::nullopt, 0};
    default:
      // Only an explicit REJECT means "Q conflict, abort and retry". A dead
      // channel must surface as an outage so the session aborts its RDBMS
      // txn instead of spinning the conflict path forever.
      return {QaReadReply::Status::kTransportError, std::nullopt, 0};
  }
}

StoreResult RemoteCacheClient::SaR(const std::string& key,
                                   const std::optional<std::string>& value,
                                   LeaseToken token) {
  Request r;
  r.command = value ? Command::kSaR : Command::kSaRNull;
  r.key = key;
  if (value) r.data = *value;
  r.token = token;
  return ToStoreResult(Call(r));
}

SessionId RemoteCacheClient::GenID() {
  Request r;
  r.command = Command::kGenId;
  Response resp = Call(r);
  return resp.type == ResponseType::kId ? resp.number : 0;
}

QuarantineResult RemoteCacheClient::QaReg(SessionId tid,
                                          const std::string& key) {
  Request r;
  r.command = Command::kQaReg;
  r.session = tid;
  r.key = key;
  switch (Call(r).type) {
    case ResponseType::kGranted: return QuarantineResult::kGranted;
    case ResponseType::kReject: return QuarantineResult::kReject;
    default: return QuarantineResult::kTransportError;
  }
}

bool RemoteCacheClient::DaR(SessionId tid) {
  Request r;
  r.command = Command::kDaR;
  r.session = tid;
  return Call(r).type == ResponseType::kOk;
}

QuarantineResult RemoteCacheClient::IQDelta(SessionId tid,
                                            const std::string& key,
                                            DeltaOp delta) {
  Request r;
  r.session = tid;
  r.key = key;
  switch (delta.kind) {
    case DeltaOp::Kind::kAppend:
      r.command = Command::kIQAppend;
      r.data = std::move(delta.blob);
      break;
    case DeltaOp::Kind::kPrepend:
      r.command = Command::kIQPrepend;
      r.data = std::move(delta.blob);
      break;
    case DeltaOp::Kind::kIncr:
      r.command = Command::kIQIncr;
      r.amount = delta.amount;
      break;
    case DeltaOp::Kind::kDecr:
      r.command = Command::kIQDecr;
      r.amount = delta.amount;
      break;
  }
  switch (Call(r).type) {
    case ResponseType::kGranted: return QuarantineResult::kGranted;
    case ResponseType::kReject: return QuarantineResult::kReject;
    default: return QuarantineResult::kTransportError;
  }
}

bool RemoteCacheClient::Commit(SessionId tid) {
  Request r;
  r.command = Command::kCommit;
  r.session = tid;
  return Call(r).type == ResponseType::kOk;
}

bool RemoteCacheClient::Abort(SessionId tid) {
  Request r;
  r.command = Command::kAbort;
  r.session = tid;
  return Call(r).type == ResponseType::kOk;
}

bool RemoteCacheClient::Release(SessionId tid, const std::string& key) {
  Request r;
  r.command = Command::kRelease;
  r.session = tid;
  r.key = key;
  return Call(r).type == ResponseType::kOk;
}

}  // namespace iq::net
