// Transport layer: a byte-oriented channel between a protocol client and
// the dispatcher, plus a remote-client facade that speaks the wire format.
//
// LoopbackChannel is an in-process stand-in for a TCP connection to the
// cache server: bytes go through the full serialize -> parse -> dispatch ->
// serialize -> parse cycle, with optional injected round-trip latency, so
// everything above the socket layer is exercised exactly as in a networked
// deployment.
#pragma once

#include "core/iq_server.h"
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/server.h"
#include "util/clock.h"

namespace iq::net {

/// Abstract request/response byte channel (client side of a connection).
class Channel {
 public:
  virtual ~Channel() = default;
  /// Send request bytes; block until the response bytes arrive in *reply.
  /// Returns false on transport failure (dead connection, deadline expiry,
  /// fault injection) — *reply is then unspecified. A zero-byte reply with
  /// a true return is a valid (empty) response, distinct from failure.
  virtual bool RoundTrip(const std::string& request_bytes,
                         std::string* reply) = 0;
};

/// In-process channel straight into a CommandDispatcher.
class LoopbackChannel final : public Channel {
 public:
  /// `one_way_latency` is injected on each direction of every round trip.
  explicit LoopbackChannel(IQServer& server, Nanos one_way_latency = 0,
                           const Clock* clock = nullptr);

  bool RoundTrip(const std::string& request_bytes,
                 std::string* reply) override;

  /// Requests served so far. Safe to call while other threads are inside
  /// RoundTrip (monitoring reads race with increments, hence the atomic).
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  CommandDispatcher dispatcher_;
  Nanos latency_;
  const Clock& clock_;
  std::mutex mu_;  // one outstanding request per connection, like memcached
  RequestParser parser_;
  std::atomic<std::uint64_t> requests_{0};
};

/// A memcached/IQ client that talks through a Channel - the remote
/// equivalent of calling IQServer directly. Each method performs one
/// round trip.
class RemoteCacheClient {
 public:
  explicit RemoteCacheClient(Channel& channel) : channel_(channel) {}

  // -- standard commands --
  std::optional<CacheItem> Get(const std::string& key);
  std::optional<CacheItem> Gets(const std::string& key);
  /// Fetch N keys in one round trip (`get k1 k2 ... kn`). Result is aligned
  /// with `keys`; misses are nullopt. `with_cas` issues `gets` instead.
  std::vector<std::optional<CacheItem>> MultiGet(
      const std::vector<std::string>& keys, bool with_cas = false);
  StoreResult Set(const std::string& key, const std::string& value,
                  std::uint32_t flags = 0, std::int64_t exptime = 0);
  StoreResult Add(const std::string& key, const std::string& value);
  StoreResult Cas(const std::string& key, const std::string& value,
                  std::uint64_t unique);
  bool Delete(const std::string& key);
  StoreResult Append(const std::string& key, const std::string& blob);
  StoreResult Prepend(const std::string& key, const std::string& blob);
  std::optional<std::uint64_t> Incr(const std::string& key, std::uint64_t amount);
  std::optional<std::uint64_t> Decr(const std::string& key, std::uint64_t amount);
  void FlushAll();
  std::string Stats();
  /// Force one lease-table sweep on the server; returns the number of
  /// overdue leases expired, or nullopt on transport failure.
  std::optional<std::uint64_t> Sweep();
  /// Scrape the server's Prometheus exposition (`metrics` verb); nullopt on
  /// transport failure. Each scrape advances the server-side window.
  std::optional<std::string> Metrics();
  /// Drain the newest `max_events` lease-trace events (0 = server default).
  /// nullopt on transport failure or an unparsable reply.
  std::optional<std::vector<TraceEvent>> Trace(std::uint64_t max_events = 0);
  /// One drained trace with its completeness header. `has_info` is false
  /// against pre-TRACE_INFO servers.
  struct TraceDrain {
    std::vector<TraceEvent> events;
    TraceInfo info;
    bool has_info = false;
  };
  /// Like Trace() but also returns the server's TRACE_INFO header, so the
  /// caller (iqcheck) can tell a complete history from a wrapped one.
  std::optional<TraceDrain> TraceWithInfo(std::uint64_t max_events = 0);

  // -- IQ commands --
  GetReply IQget(const std::string& key, SessionId session);
  StoreResult IQset(const std::string& key, const std::string& value,
                    LeaseToken token);
  QaReadReply QaRead(const std::string& key, SessionId session);
  StoreResult SaR(const std::string& key,
                  const std::optional<std::string>& value, LeaseToken token);
  SessionId GenID();
  /// Parses the wire reply: kGranted only on an explicit GRANTED — a dead
  /// channel yields kTransportError, never a silently "granted" quarantine.
  QuarantineResult QaReg(SessionId tid, const std::string& key);
  /// Each returns true iff the server acknowledged (OK). False means the
  /// command may or may not have been applied; lease expiry is the backstop.
  bool DaR(SessionId tid);
  QuarantineResult IQDelta(SessionId tid, const std::string& key, DeltaOp delta);
  bool Commit(SessionId tid);
  bool Abort(SessionId tid);
  /// Drop the session's lease on one key, keeping everything else it holds.
  bool Release(SessionId tid, const std::string& key);

 private:
  Response Call(const Request& request);

  Channel& channel_;
};

}  // namespace iq::net
