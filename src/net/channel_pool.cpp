#include "net/channel_pool.h"

#include <charconv>

namespace iq::net {

std::string Name(const Endpoint& endpoint) {
  return endpoint.host + ":" + std::to_string(endpoint.port);
}

std::vector<Endpoint> ParseEndpoints(const std::string& spec,
                                     std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::vector<Endpoint>{};
  };
  std::vector<Endpoint> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string_view element(spec.data() + pos, comma - pos);
    if (element.empty()) return fail("empty endpoint in '" + spec + "'");
    Endpoint ep;
    std::size_t colon = element.rfind(':');
    if (colon == std::string_view::npos) {
      ep.host = std::string(element);
    } else {
      std::string_view port_sv = element.substr(colon + 1);
      std::uint16_t port = 0;
      auto [p, ec] =
          std::from_chars(port_sv.data(), port_sv.data() + port_sv.size(), port);
      if (ec != std::errc{} || p != port_sv.data() + port_sv.size() ||
          port == 0) {
        return fail("bad port in '" + std::string(element) + "'");
      }
      ep.host = std::string(element.substr(0, colon));
      ep.port = port;
    }
    if (ep.host.empty()) return fail("empty host in '" + std::string(element) + "'");
    out.push_back(std::move(ep));
    if (comma == spec.size()) break;
    pos = comma + 1;
  }
  if (out.empty()) return fail("no endpoints in '" + spec + "'");
  return out;
}

ReconnectingChannel::ReconnectingChannel(Endpoint endpoint, Config config)
    : endpoint_(std::move(endpoint)),
      config_(config),
      // Derive the jitter stream from the endpoint so pooled channels don't
      // retry in lockstep after a shared outage.
      rng_(std::hash<std::string>{}(Name(endpoint_)) | 1) {}

void ReconnectingChannel::TearDownLocked() {
  channel_.reset();
  connected_.store(false, std::memory_order_relaxed);
  ExponentialBackoff policy(config_.backoff_base, config_.backoff_cap);
  next_attempt_ =
      SteadyClock::Instance().Now() + policy.DelayFor(attempts_++, rng_);
}

bool ReconnectingChannel::EnsureConnectedLocked(std::string* error) {
  if (channel_ != nullptr && channel_->connected()) return true;
  channel_.reset();
  connected_.store(false, std::memory_order_relaxed);
  auto ch =
      TcpChannel::Connect(endpoint_.host, endpoint_.port, config_.channel,
                          error);
  if (ch == nullptr) {
    ExponentialBackoff policy(config_.backoff_base, config_.backoff_cap);
    next_attempt_ =
        SteadyClock::Instance().Now() + policy.DelayFor(attempts_++, rng_);
    return false;
  }
  channel_ = std::move(ch);
  connected_.store(true, std::memory_order_relaxed);
  if (ever_connected_) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  ever_connected_ = true;
  attempts_ = 0;
  next_attempt_ = 0;
  return true;
}

bool ReconnectingChannel::ConnectNow(std::string* error) {
  std::lock_guard lock(mu_);
  return EnsureConnectedLocked(error);
}

bool ReconnectingChannel::RoundTrip(const std::string& request_bytes,
                                    std::string* reply) {
  std::lock_guard lock(mu_);
  bool live = channel_ != nullptr && channel_->connected();
  if (!live) {
    if (SteadyClock::Instance().Now() < next_attempt_) {
      // Backoff window open: fail fast, no syscalls.
      transport_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!EnsureConnectedLocked(nullptr)) {
      transport_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  if (channel_->RoundTrip(request_bytes, reply)) return true;
  transport_errors_.fetch_add(1, std::memory_order_relaxed);
  TearDownLocked();
  return false;
}

std::unique_ptr<ChannelPool> ChannelPool::Connect(
    const std::vector<Endpoint>& endpoints, std::string* error) {
  return Connect(endpoints, Config{}, error);
}

std::unique_ptr<ChannelPool> ChannelPool::Connect(
    const std::vector<Endpoint>& endpoints, const Config& config,
    std::string* error) {
  std::vector<std::unique_ptr<ReconnectingChannel>> channels;
  channels.reserve(endpoints.size());
  for (const Endpoint& ep : endpoints) {
    auto ch = std::make_unique<ReconnectingChannel>(ep, config.channel);
    std::string conn_error;
    if (!ch->ConnectNow(&conn_error) && config.require_initial_connect) {
      if (error != nullptr) *error = Name(ep) + ": " + conn_error;
      return nullptr;
    }
    channels.push_back(std::move(ch));
  }
  return std::unique_ptr<ChannelPool>(
      new ChannelPool(endpoints, std::move(channels)));
}

std::uint64_t ChannelPool::reconnects() const {
  std::uint64_t total = 0;
  for (const auto& ch : channels_) total += ch->reconnects();
  return total;
}

}  // namespace iq::net
