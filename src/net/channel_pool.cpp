#include "net/channel_pool.h"

#include <charconv>

namespace iq::net {

std::string Name(const Endpoint& endpoint) {
  return endpoint.host + ":" + std::to_string(endpoint.port);
}

std::vector<Endpoint> ParseEndpoints(const std::string& spec,
                                     std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::vector<Endpoint>{};
  };
  std::vector<Endpoint> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string_view element(spec.data() + pos, comma - pos);
    if (element.empty()) return fail("empty endpoint in '" + spec + "'");
    Endpoint ep;
    std::size_t colon = element.rfind(':');
    if (colon == std::string_view::npos) {
      ep.host = std::string(element);
    } else {
      std::string_view port_sv = element.substr(colon + 1);
      std::uint16_t port = 0;
      auto [p, ec] =
          std::from_chars(port_sv.data(), port_sv.data() + port_sv.size(), port);
      if (ec != std::errc{} || p != port_sv.data() + port_sv.size() ||
          port == 0) {
        return fail("bad port in '" + std::string(element) + "'");
      }
      ep.host = std::string(element.substr(0, colon));
      ep.port = port;
    }
    if (ep.host.empty()) return fail("empty host in '" + std::string(element) + "'");
    out.push_back(std::move(ep));
    if (comma == spec.size()) break;
    pos = comma + 1;
  }
  if (out.empty()) return fail("no endpoints in '" + spec + "'");
  return out;
}

std::unique_ptr<ChannelPool> ChannelPool::Connect(
    const std::vector<Endpoint>& endpoints, std::string* error) {
  std::vector<std::unique_ptr<TcpChannel>> channels;
  channels.reserve(endpoints.size());
  for (const Endpoint& ep : endpoints) {
    std::string conn_error;
    auto ch = TcpChannel::Connect(ep.host, ep.port, &conn_error);
    if (ch == nullptr) {
      if (error != nullptr) *error = Name(ep) + ": " + conn_error;
      return nullptr;
    }
    channels.push_back(std::move(ch));
  }
  return std::unique_ptr<ChannelPool>(
      new ChannelPool(endpoints, std::move(channels)));
}

}  // namespace iq::net
