// ChannelPool: one pipelined TcpChannel per cache-server endpoint — the
// connection fabric under a sharded tier. A client thread owns one pool
// (channels are single-in-flight, like memcached connections), builds one
// RemoteBackend per channel, and hands them to an iq::ShardedBackend whose
// ring routes keys across the endpoints.
//
// Endpoint lists use the conventional comma form "host:port,host:port,...";
// ParseEndpoints is the single parser shared by tools and tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/tcp_channel.h"

namespace iq::net {

struct Endpoint {
  std::string host;
  std::uint16_t port = 11211;

  bool operator==(const Endpoint&) const = default;
};

/// "host:port" label used for shard names and stats lines.
std::string Name(const Endpoint& endpoint);

/// Parse "h1:p1,h2:p2,..." (port optional, default 11211). Returns an empty
/// vector with *error set on malformed input (empty element, bad port).
std::vector<Endpoint> ParseEndpoints(const std::string& spec,
                                     std::string* error = nullptr);

class ChannelPool {
 public:
  /// Connect one TcpChannel to every endpoint. Returns nullptr with *error
  /// set (naming the endpoint) if any connection fails — a partially
  /// reachable tier is a configuration error, not something to route around.
  static std::unique_ptr<ChannelPool> Connect(
      const std::vector<Endpoint>& endpoints, std::string* error = nullptr);

  std::size_t size() const { return channels_.size(); }
  TcpChannel& channel(std::size_t i) { return *channels_[i]; }
  const Endpoint& endpoint(std::size_t i) const { return endpoints_[i]; }

 private:
  ChannelPool(std::vector<Endpoint> endpoints,
              std::vector<std::unique_ptr<TcpChannel>> channels)
      : endpoints_(std::move(endpoints)), channels_(std::move(channels)) {}

  std::vector<Endpoint> endpoints_;
  std::vector<std::unique_ptr<TcpChannel>> channels_;
};

}  // namespace iq::net
