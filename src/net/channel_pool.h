// ChannelPool: one pipelined TcpChannel per cache-server endpoint — the
// connection fabric under a sharded tier. A client thread owns one pool
// (channels are single-in-flight, like memcached connections), builds one
// RemoteBackend per channel, and hands them to an iq::ShardedBackend whose
// ring routes keys across the endpoints.
//
// Endpoint lists use the conventional comma form "host:port,host:port,...";
// ParseEndpoints is the single parser shared by tools and tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/tcp_channel.h"
#include "util/backoff.h"
#include "util/clock.h"
#include "util/rng.h"

namespace iq::net {

struct Endpoint {
  std::string host;
  std::uint16_t port = 11211;

  bool operator==(const Endpoint&) const = default;
};

/// "host:port" label used for shard names and stats lines.
std::string Name(const Endpoint& endpoint);

/// Parse "h1:p1,h2:p2,..." (port optional, default 11211). Returns an empty
/// vector with *error set on malformed input (empty element, bad port).
std::vector<Endpoint> ParseEndpoints(const std::string& spec,
                                     std::string* error = nullptr);

/// A Channel bound to one endpoint that re-establishes its TcpChannel after
/// failure. Reconnection is lazy — attempted on the next operation, never
/// from a background thread — and gated by exponential backoff: while the
/// backoff window is open every operation fails fast (a transport error)
/// without touching the network, so a dead shard costs nanoseconds, not a
/// connect timeout, per request.
class ReconnectingChannel final : public Channel {
 public:
  struct Config {
    TcpChannel::Options channel;  // deadlines for the underlying sockets
    Nanos backoff_base = 10 * kNanosPerMilli;
    Nanos backoff_cap = 2 * kNanosPerSec;
  };

  explicit ReconnectingChannel(Endpoint endpoint)
      : ReconnectingChannel(std::move(endpoint), Config()) {}
  ReconnectingChannel(Endpoint endpoint, Config config);

  /// Fails fast inside a backoff window; otherwise (re)connects as needed
  /// and performs the round trip. A failed trip tears the connection down
  /// and opens the next backoff window.
  bool RoundTrip(const std::string& request_bytes,
                 std::string* reply) override;

  /// Attempt to connect now, ignoring any backoff window (used for the
  /// eager initial connect and by tests). True if connected on return.
  bool ConnectNow(std::string* error = nullptr);

  const Endpoint& endpoint() const { return endpoint_; }
  /// Snapshot only: the connection may die between this call and use.
  bool connected() const { return connected_.load(std::memory_order_relaxed); }
  /// Successful connection establishments after the first.
  std::uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// Operations failed (dead trips + backoff-window fast-fails).
  std::uint64_t transport_errors() const {
    return transport_errors_.load(std::memory_order_relaxed);
  }

 private:
  bool EnsureConnectedLocked(std::string* error);
  void TearDownLocked();

  const Endpoint endpoint_;
  const Config config_;
  std::mutex mu_;  // guards channel_, attempts_, next_attempt_
  std::unique_ptr<TcpChannel> channel_;
  int attempts_ = 0;          // consecutive failed connect attempts
  Nanos next_attempt_ = 0;    // steady-clock time the backoff window closes
  bool ever_connected_ = false;
  Rng rng_{0x9E3779B97F4A7C15ULL};  // backoff jitter (per-channel stream)
  std::atomic<bool> connected_{false};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> transport_errors_{0};
};

class ChannelPool {
 public:
  struct Config {
    ReconnectingChannel::Config channel;
    /// Fail Connect() unless every endpoint is reachable at start. With
    /// false, unreachable endpoints come up "down" and heal lazily through
    /// the per-channel backoff — useful when a tier is rolling-restarting.
    bool require_initial_connect = true;
  };

  /// Build one ReconnectingChannel per endpoint and attempt the initial
  /// connections. With require_initial_connect (the default), returns
  /// nullptr with *error set (naming the endpoint) if any fails — a fully
  /// unreachable tier at startup is usually a configuration error.
  static std::unique_ptr<ChannelPool> Connect(
      const std::vector<Endpoint>& endpoints, std::string* error = nullptr);
  static std::unique_ptr<ChannelPool> Connect(
      const std::vector<Endpoint>& endpoints, const Config& config,
      std::string* error = nullptr);

  std::size_t size() const { return channels_.size(); }
  ReconnectingChannel& channel(std::size_t i) { return *channels_[i]; }
  const Endpoint& endpoint(std::size_t i) const { return endpoints_[i]; }
  /// Sum of per-channel successful reconnects (stats surface).
  std::uint64_t reconnects() const;

 private:
  ChannelPool(std::vector<Endpoint> endpoints,
              std::vector<std::unique_ptr<ReconnectingChannel>> channels)
      : endpoints_(std::move(endpoints)), channels_(std::move(channels)) {}

  std::vector<Endpoint> endpoints_;
  std::vector<std::unique_ptr<ReconnectingChannel>> channels_;
};

}  // namespace iq::net
