#include "net/fault.h"

#include "util/backoff.h"

namespace iq::net {

bool FaultChannel::RoundTrip(const std::string& request_bytes,
                             std::string* reply) {
  Fault fault = Fault::kDropRequest;
  Nanos delay = 0;
  bool fire = false;
  {
    std::lock_guard lock(mu_);
    if (down_) return false;
    for (auto it = rules_.begin(); it != rules_.end(); ++it) {
      if (!it->match.empty() &&
          request_bytes.find(it->match) == std::string::npos) {
        continue;
      }
      if (it->skip > 0) {
        // A skipping rule consumes the request (no later rule may fire on
        // it), so "skip N then fire" counts the same requests a test sees.
        --it->skip;
        break;
      }
      fire = true;
      fault = it->fault;
      delay = it->delay;
      ++injected_;
      if (it->count > 0 && --it->count == 0) rules_.erase(it);
      if (fault == Fault::kDown) down_ = true;
      break;
    }
  }
  if (!fire) return inner_.RoundTrip(request_bytes, reply);
  switch (fault) {
    case Fault::kDropRequest:
    case Fault::kDown:
      return false;  // the server never saw it
    case Fault::kDropResponse:
      // The server executes the request; its reply is discarded. A second
      // buffer keeps the caller's *reply unset, per the Channel contract
      // for a failed round trip.
      {
        std::string discarded;
        inner_.RoundTrip(request_bytes, &discarded);
      }
      return false;
    case Fault::kDelay:
      SleepFor(clock_, delay);
      return inner_.RoundTrip(request_bytes, reply);
  }
  return false;
}

}  // namespace iq::net
