// FaultChannel: deterministic transport-fault injection for tests.
//
// Wraps any Channel and fires armed faults against matching round trips.
// The four fault kinds model the distinct failure points of a request on a
// real connection:
//
//   kDropRequest   the request never reaches the server (connect refused,
//                  send into a dead socket): the server state is unchanged
//                  and the round trip fails.
//   kDropResponse  the server EXECUTES the request but the reply is lost
//                  (server crashed after processing, reply segment dropped):
//                  the dangerous asymmetric case — e.g. a QaReg the client
//                  cannot distinguish from one that never arrived.
//   kDelay         the reply is held for `delay` before delivery; for
//                  exercising client deadlines without a slow server.
//   kDown          this and every later round trip fails until Heal() —
//                  a crashed server, as seen from one connection.
//
// Matching is by substring of the serialized request ("qareg", a key, or
// empty for any), with `skip` requests let through first and `count`
// firings before the rule disarms. Rules are checked in Arm() order.
//
// Thread safety: safe for concurrent callers, like the channels it wraps.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "net/channel.h"
#include "util/clock.h"

namespace iq::net {

class FaultChannel final : public Channel {
 public:
  enum class Fault { kDropRequest, kDropResponse, kDelay, kDown };

  struct Rule {
    Fault fault = Fault::kDropResponse;
    /// Substring of the serialized request bytes; empty matches every
    /// request. Commands serialize lowercase ("qareg 7 k1\r\n").
    std::string match;
    /// Let this many matching round trips through before firing.
    int skip = 0;
    /// Fire at most this many times, then disarm; -1 = forever.
    int count = 1;
    /// kDelay only: how long to hold the reply.
    Nanos delay = 0;
  };

  /// `clock` drives kDelay sleeps; null = process steady clock.
  explicit FaultChannel(Channel& inner, const Clock* clock = nullptr)
      : inner_(inner),
        clock_(clock != nullptr ? *clock : SteadyClock::Instance()) {}

  void Arm(Rule rule) {
    std::lock_guard lock(mu_);
    rules_.push_back(std::move(rule));
  }

  /// Clear a kDown state; armed rules keep their remaining counts.
  void Heal() {
    std::lock_guard lock(mu_);
    down_ = false;
  }

  /// Drop every rule and any kDown state.
  void Clear() {
    std::lock_guard lock(mu_);
    rules_.clear();
    down_ = false;
  }

  bool down() const {
    std::lock_guard lock(mu_);
    return down_;
  }
  std::uint64_t faults_injected() const {
    std::lock_guard lock(mu_);
    return injected_;
  }

  bool RoundTrip(const std::string& request_bytes, std::string* reply) override;

 private:
  Channel& inner_;
  const Clock& clock_;
  mutable std::mutex mu_;
  std::vector<Rule> rules_;
  bool down_ = false;
  std::uint64_t injected_ = 0;
};

}  // namespace iq::net
