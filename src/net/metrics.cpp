#include "net/metrics.h"

#include <charconv>
#include <cstdio>

namespace iq::net {
namespace {

void AppendSample(std::string* out, std::string_view series, double value) {
  char buf[64];
  // %.6g keeps integers exact up to 2^53-ish scrape counts and rates short.
  int n = std::snprintf(buf, sizeof buf, " %.6g\n", value);
  out->append(series);
  if (n > 0) out->append(buf, static_cast<std::size_t>(n));
}

void AppendGauge(std::string* out, std::string_view name, double value) {
  out->append("# TYPE ");
  out->append(name);
  out->append(" gauge\n");
  AppendSample(out, name, value);
}

/// The shared middle: counter totals and per-sec rates for one window
/// sample, with `prefix` distinguishing server ("iq_") from aggregate
/// tiers. Rates are omitted while the window has no width (first scrape).
void AppendWindowedCounters(std::string* out, const StatsWindowSample& s) {
  for (const IQStatsField& f : kIQStatsFields) {
    std::string name = "iq_";
    name += f.name;
    out->append("# TYPE ");
    out->append(name);
    out->append("_total counter\n");
    AppendSample(out, name + "_total",
                 static_cast<double>(s.lifetime.*f.member));
    if (s.seconds > 0) {
      AppendSample(out, name + "_per_sec",
                   static_cast<double>(s.delta.*f.member) / s.seconds);
    }
  }
  AppendGauge(out, "iq_window_seconds", s.seconds);
}

}  // namespace

std::string FormatMetrics(IQServer& server) {
  std::string out;
  out.reserve(2048);
  StatsWindowSample sample = server.WindowedStats();
  AppendWindowedCounters(&out, sample);
  CacheStats store = server.store().Stats();
  AppendGauge(&out, "iq_store_gets", static_cast<double>(store.gets));
  AppendGauge(&out, "iq_store_get_hits", static_cast<double>(store.get_hits));
  AppendGauge(&out, "iq_store_get_misses",
              static_cast<double>(store.get_misses));
  AppendGauge(&out, "iq_store_sets", static_cast<double>(store.sets));
  AppendGauge(&out, "iq_store_deletes", static_cast<double>(store.deletes));
  AppendGauge(&out, "iq_store_evictions",
              static_cast<double>(store.evictions));
  AppendGauge(&out, "iq_store_opt_hits",
              static_cast<double>(store.opt_hits));
  AppendGauge(&out, "iq_store_opt_fallbacks",
              static_cast<double>(store.opt_fallbacks));
  AppendGauge(&out, "iq_store_bytes_used",
              static_cast<double>(store.bytes_used));
  AppendGauge(&out, "iq_store_item_count",
              static_cast<double>(store.item_count));
  AppendGauge(&out, "iq_leases_live", static_cast<double>(server.LeaseCount()));
  AppendGauge(&out, "iq_trace_recorded",
              static_cast<double>(server.TraceRecorded()));
  return out;
}

std::string FormatMetrics(ShardedBackend& backend) {
  std::string out;
  out.reserve(2048);
  StatsWindowSample sample = backend.WindowedStats();
  AppendWindowedCounters(&out, sample);
  ShardedBackendStats router = backend.router_stats();
  AppendGauge(&out, "iq_router_sessions", static_cast<double>(router.sessions));
  AppendGauge(&out, "iq_router_shard_sessions",
              static_cast<double>(router.shard_sessions));
  AppendGauge(&out, "iq_router_fanout_commits",
              static_cast<double>(router.fanout_commits));
  AppendGauge(&out, "iq_router_fanout_aborts",
              static_cast<double>(router.fanout_aborts));
  AppendGauge(&out, "iq_router_reject_releases",
              static_cast<double>(router.reject_releases));
  AppendGauge(&out, "iq_router_transport_errors",
              static_cast<double>(router.transport_errors));
  AppendGauge(&out, "iq_router_shard_trips",
              static_cast<double>(router.shard_trips));
  AppendGauge(&out, "iq_router_shard_recoveries",
              static_cast<double>(router.shard_recoveries));
  // Per-shard breakdown under distinct series names (iq_shard_*) so the
  // aggregate families above stay label-free.
  for (std::size_t i = 0; i < backend.shard_count(); ++i) {
    const ShardedBackend::Shard& shard = backend.shard(i);
    std::string label = "{shard=\"";
    label += shard.name;
    label += "\"}";
    AppendSample(&out, "iq_shard_up" + label, backend.ShardDown(i) ? 0 : 1);
    if (!shard.stats) continue;
    IQServerStats s = shard.stats();
    for (const IQStatsField& f : kIQStatsFields) {
      AppendSample(&out, "iq_shard_" + std::string(f.name) + "_total" + label,
                   static_cast<double>(s.*f.member));
    }
  }
  return out;
}

void AppendStatsAsMetrics(std::string_view stat_lines, std::string* out) {
  std::size_t pos = 0;
  while (pos < stat_lines.size()) {
    std::size_t eol = stat_lines.find_first_of("\r\n", pos);
    if (eol == std::string_view::npos) eol = stat_lines.size();
    std::string_view line = stat_lines.substr(pos, eol - pos);
    pos = stat_lines.find_first_not_of("\r\n", eol);
    if (pos == std::string_view::npos) pos = stat_lines.size();
    if (!line.starts_with("STAT ")) continue;
    line.remove_prefix(5);
    std::size_t space = line.find(' ');
    if (space == std::string_view::npos) continue;
    std::string_view name = line.substr(0, space);
    std::string_view value = line.substr(space + 1);
    double v = 0;
    auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), v);
    if (ec != std::errc{} || p != value.data() + value.size()) continue;
    AppendSample(out, "iq_" + std::string(name), v);
  }
}

bool ParseMetrics(std::string_view text, std::map<std::string, double>* out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty() || line[0] == '#') continue;
    // The series id runs to the last space (label values never contain
    // spaces in our exporter); the remainder is the value.
    std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space == 0) return false;
    std::string_view series = line.substr(0, space);
    std::string_view value = line.substr(space + 1);
    double v = 0;
    auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), v);
    if (ec != std::errc{} || p != value.data() + value.size()) return false;
    (*out)[std::string(series)] = v;
  }
  return true;
}

}  // namespace iq::net
