// Prometheus-style metrics export for the `metrics` wire verb — the rate
// (windowed) view of the same counters `stats` exposes as lifetime totals.
//
// Exposition subset: one "name value" or "name{label="v"} value" line per
// series plus "# TYPE" comments. Each FormatMetrics call advances the
// target's StatsWindow, so every sample carries both `iq_<counter>_total`
// (lifetime) and `iq_<counter>_per_sec` (rate over the window since the
// previous scrape; omitted on the very first scrape, which has no window).
// One logical scraper per server — see StatsWindow in core/iq_stats.h.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "core/iq_server.h"
#include "core/sharded_backend.h"

namespace iq::net {

/// Scrape one server: store gauges, IQ counter totals + per-sec rates,
/// lease/trace gauges. Advances the server's metrics window.
std::string FormatMetrics(IQServer& server);

/// Scrape a sharded tier: router counters, aggregate IQ totals + rates,
/// and a per-shard breakdown (iq_shard_* series labeled {shard="name"}).
/// Advances the router's metrics window.
std::string FormatMetrics(ShardedBackend& backend);

/// Re-render "STAT <name> <value>" lines (e.g. a transport's wire stats)
/// as "iq_<name> <value>" gauge lines appended to *out. Non-numeric values
/// are skipped.
void AppendStatsAsMetrics(std::string_view stat_lines, std::string* out);

/// Parse exposition text produced by FormatMetrics back into a map keyed by
/// the full series id as written (name including any {labels}). Comment and
/// blank lines are ignored. Returns false on a malformed sample line.
bool ParseMetrics(std::string_view text, std::map<std::string, double>* out);

}  // namespace iq::net
