#include "net/protocol.h"

#include <charconv>
#include <unordered_map>

namespace iq::net {
namespace {

std::optional<std::uint64_t> ParseU64(std::string_view s) {
  std::uint64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::int64_t> ParseI64(std::string_view s) {
  std::int64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

struct CommandInfo {
  Command command;
  bool has_payload;  // followed by a data block
};

const std::unordered_map<std::string_view, CommandInfo>& CommandTable() {
  static const auto* table = new std::unordered_map<std::string_view, CommandInfo>{
      {"get", {Command::kGet, false}},
      {"gets", {Command::kGets, false}},
      {"set", {Command::kSet, true}},
      {"add", {Command::kAdd, true}},
      {"replace", {Command::kReplace, true}},
      {"cas", {Command::kCas, true}},
      {"append", {Command::kAppend, true}},
      {"prepend", {Command::kPrepend, true}},
      {"delete", {Command::kDelete, false}},
      {"incr", {Command::kIncr, false}},
      {"decr", {Command::kDecr, false}},
      {"flush_all", {Command::kFlushAll, false}},
      {"stats", {Command::kStats, false}},
      {"quit", {Command::kQuit, false}},
      {"iqget", {Command::kIQGet, false}},
      {"iqset", {Command::kIQSet, true}},
      {"qaread", {Command::kQaRead, false}},
      {"sar", {Command::kSaR, true}},
      {"sarnull", {Command::kSaRNull, false}},
      {"genid", {Command::kGenId, false}},
      {"qareg", {Command::kQaReg, false}},
      {"dar", {Command::kDaR, false}},
      {"iqappend", {Command::kIQAppend, true}},
      {"iqprepend", {Command::kIQPrepend, true}},
      {"iqincr", {Command::kIQIncr, false}},
      {"iqdecr", {Command::kIQDecr, false}},
      {"commit", {Command::kCommit, false}},
      {"abort", {Command::kAbort, false}},
  };
  return *table;
}

/// Expected payload size for a storage-style command line, or nullopt for
/// malformed lines. Fills the non-payload fields of *req.
std::optional<std::size_t> ParseCommandLine(
    const std::vector<std::string_view>& tok, const CommandInfo& info,
    Request* req, std::string* error) {
  auto fail = [&](const char* msg) -> std::optional<std::size_t> {
    *error = msg;
    return std::nullopt;
  };
  req->command = info.command;
  switch (info.command) {
    case Command::kGet:
    case Command::kGets:
    case Command::kDelete:
      if (tok.size() != 2) return fail("bad argument count");
      req->key = std::string(tok[1]);
      return 0;
    case Command::kSet:
    case Command::kAdd:
    case Command::kReplace:
    case Command::kAppend:
    case Command::kPrepend: {
      if (tok.size() != 5) return fail("bad argument count");
      req->key = std::string(tok[1]);
      auto flags = ParseU64(tok[2]);
      auto exptime = ParseI64(tok[3]);
      auto bytes = ParseU64(tok[4]);
      if (!flags || !exptime || !bytes) return fail("bad numeric field");
      req->flags = static_cast<std::uint32_t>(*flags);
      req->exptime = *exptime;
      return *bytes;
    }
    case Command::kCas: {
      if (tok.size() != 6) return fail("bad argument count");
      req->key = std::string(tok[1]);
      auto flags = ParseU64(tok[2]);
      auto exptime = ParseI64(tok[3]);
      auto bytes = ParseU64(tok[4]);
      auto unique = ParseU64(tok[5]);
      if (!flags || !exptime || !bytes || !unique) return fail("bad numeric field");
      req->flags = static_cast<std::uint32_t>(*flags);
      req->exptime = *exptime;
      req->cas_unique = *unique;
      return *bytes;
    }
    case Command::kIncr:
    case Command::kDecr: {
      if (tok.size() != 3) return fail("bad argument count");
      req->key = std::string(tok[1]);
      auto amount = ParseU64(tok[2]);
      if (!amount) return fail("bad amount");
      req->amount = *amount;
      return 0;
    }
    case Command::kFlushAll:
    case Command::kStats:
    case Command::kQuit:
    case Command::kGenId:
      if (tok.size() != 1) return fail("bad argument count");
      return 0;
    case Command::kIQGet:
    case Command::kQaRead: {
      if (tok.size() != 3) return fail("bad argument count");
      req->key = std::string(tok[1]);
      auto session = ParseU64(tok[2]);
      if (!session) return fail("bad session id");
      req->session = *session;
      return 0;
    }
    case Command::kIQSet:
    case Command::kSaR: {
      if (tok.size() != 4) return fail("bad argument count");
      req->key = std::string(tok[1]);
      auto token = ParseU64(tok[2]);
      auto bytes = ParseU64(tok[3]);
      if (!token || !bytes) return fail("bad numeric field");
      req->token = *token;
      return *bytes;
    }
    case Command::kSaRNull: {
      if (tok.size() != 3) return fail("bad argument count");
      req->key = std::string(tok[1]);
      auto token = ParseU64(tok[2]);
      if (!token) return fail("bad token");
      req->token = *token;
      return 0;
    }
    case Command::kQaReg: {
      if (tok.size() != 3) return fail("bad argument count");
      auto tid = ParseU64(tok[1]);
      if (!tid) return fail("bad tid");
      req->session = *tid;
      req->key = std::string(tok[2]);
      return 0;
    }
    case Command::kDaR:
    case Command::kCommit:
    case Command::kAbort: {
      if (tok.size() != 2) return fail("bad argument count");
      auto tid = ParseU64(tok[1]);
      if (!tid) return fail("bad tid");
      req->session = *tid;
      return 0;
    }
    case Command::kIQAppend:
    case Command::kIQPrepend: {
      if (tok.size() != 4) return fail("bad argument count");
      auto tid = ParseU64(tok[1]);
      auto bytes = ParseU64(tok[3]);
      if (!tid || !bytes) return fail("bad numeric field");
      req->session = *tid;
      req->key = std::string(tok[2]);
      return *bytes;
    }
    case Command::kIQIncr:
    case Command::kIQDecr: {
      if (tok.size() != 4) return fail("bad argument count");
      auto tid = ParseU64(tok[1]);
      auto amount = ParseU64(tok[3]);
      if (!tid || !amount) return fail("bad numeric field");
      req->session = *tid;
      req->key = std::string(tok[2]);
      req->amount = *amount;
      return 0;
    }
  }
  return fail("unhandled command");
}

}  // namespace

const char* ToString(Command c) {
  switch (c) {
    case Command::kGet: return "get";
    case Command::kGets: return "gets";
    case Command::kSet: return "set";
    case Command::kAdd: return "add";
    case Command::kReplace: return "replace";
    case Command::kCas: return "cas";
    case Command::kAppend: return "append";
    case Command::kPrepend: return "prepend";
    case Command::kDelete: return "delete";
    case Command::kIncr: return "incr";
    case Command::kDecr: return "decr";
    case Command::kFlushAll: return "flush_all";
    case Command::kStats: return "stats";
    case Command::kQuit: return "quit";
    case Command::kIQGet: return "iqget";
    case Command::kIQSet: return "iqset";
    case Command::kQaRead: return "qaread";
    case Command::kSaR: return "sar";
    case Command::kSaRNull: return "sarnull";
    case Command::kGenId: return "genid";
    case Command::kQaReg: return "qareg";
    case Command::kDaR: return "dar";
    case Command::kIQAppend: return "iqappend";
    case Command::kIQPrepend: return "iqprepend";
    case Command::kIQIncr: return "iqincr";
    case Command::kIQDecr: return "iqdecr";
    case Command::kCommit: return "commit";
    case Command::kAbort: return "abort";
  }
  return "?";
}

RequestParser::Status RequestParser::Next(Request* out, std::string* error) {
  std::size_t eol = buffer_.find("\r\n");
  if (eol == std::string::npos) return Status::kNeedMore;
  std::string_view line(buffer_.data(), eol);
  auto tokens = SplitTokens(line);
  if (tokens.empty()) {
    *error = "empty command line";
    buffer_.erase(0, eol + 2);
    return Status::kError;
  }
  auto it = CommandTable().find(tokens[0]);
  if (it == CommandTable().end()) {
    *error = "unknown command '" + std::string(tokens[0]) + "'";
    buffer_.erase(0, eol + 2);
    return Status::kError;
  }
  Request req;
  auto payload = ParseCommandLine(tokens, it->second, &req, error);
  if (!payload) {
    buffer_.erase(0, eol + 2);
    return Status::kError;
  }
  std::size_t need = *payload;
  if (it->second.has_payload) {
    // Data block: <need> bytes followed by \r\n.
    std::size_t total = eol + 2 + need + 2;
    if (buffer_.size() < total) return Status::kNeedMore;
    if (buffer_[eol + 2 + need] != '\r' || buffer_[eol + 2 + need + 1] != '\n') {
      *error = "bad data chunk terminator";
      buffer_.erase(0, total);
      return Status::kError;
    }
    req.data = buffer_.substr(eol + 2, need);
    buffer_.erase(0, total);
  } else {
    buffer_.erase(0, eol + 2);
  }
  *out = std::move(req);
  return Status::kOk;
}

std::string Serialize(const Request& r) {
  auto line_and_data = [&](std::string line) {
    line += " " + std::to_string(r.data.size()) + "\r\n";
    line += r.data;
    line += "\r\n";
    return line;
  };
  switch (r.command) {
    case Command::kGet: return "get " + r.key + "\r\n";
    case Command::kGets: return "gets " + r.key + "\r\n";
    case Command::kSet:
    case Command::kAdd:
    case Command::kReplace:
    case Command::kAppend:
    case Command::kPrepend:
      return line_and_data(std::string(ToString(r.command)) + " " + r.key +
                           " " + std::to_string(r.flags) + " " +
                           std::to_string(r.exptime));
    case Command::kCas: {
      std::string line = "cas " + r.key + " " + std::to_string(r.flags) +
                         " " + std::to_string(r.exptime) + " " +
                         std::to_string(r.data.size()) + " " +
                         std::to_string(r.cas_unique) + "\r\n";
      line += r.data;
      line += "\r\n";
      return line;
    }
    case Command::kDelete: return "delete " + r.key + "\r\n";
    case Command::kIncr:
      return "incr " + r.key + " " + std::to_string(r.amount) + "\r\n";
    case Command::kDecr:
      return "decr " + r.key + " " + std::to_string(r.amount) + "\r\n";
    case Command::kFlushAll: return "flush_all\r\n";
    case Command::kStats: return "stats\r\n";
    case Command::kQuit: return "quit\r\n";
    case Command::kIQGet:
      return "iqget " + r.key + " " + std::to_string(r.session) + "\r\n";
    case Command::kIQSet:
      return line_and_data("iqset " + r.key + " " + std::to_string(r.token));
    case Command::kQaRead:
      return "qaread " + r.key + " " + std::to_string(r.session) + "\r\n";
    case Command::kSaR:
      return line_and_data("sar " + r.key + " " + std::to_string(r.token));
    case Command::kSaRNull:
      return "sarnull " + r.key + " " + std::to_string(r.token) + "\r\n";
    case Command::kGenId: return "genid\r\n";
    case Command::kQaReg:
      return "qareg " + std::to_string(r.session) + " " + r.key + "\r\n";
    case Command::kDaR: return "dar " + std::to_string(r.session) + "\r\n";
    case Command::kIQAppend:
      return line_and_data("iqappend " + std::to_string(r.session) + " " + r.key);
    case Command::kIQPrepend:
      return line_and_data("iqprepend " + std::to_string(r.session) + " " + r.key);
    case Command::kIQIncr:
      return "iqincr " + std::to_string(r.session) + " " + r.key + " " +
             std::to_string(r.amount) + "\r\n";
    case Command::kIQDecr:
      return "iqdecr " + std::to_string(r.session) + " " + r.key + " " +
             std::to_string(r.amount) + "\r\n";
    case Command::kCommit: return "commit " + std::to_string(r.session) + "\r\n";
    case Command::kAbort: return "abort " + std::to_string(r.session) + "\r\n";
  }
  return "";
}

std::string Serialize(const Response& r) {
  switch (r.type) {
    case ResponseType::kValue: {
      std::string out = "VALUE " + r.key + " " + std::to_string(r.flags) +
                        " " + std::to_string(r.data.size());
      if (r.with_cas) out += " " + std::to_string(r.cas_unique);
      out += "\r\n";
      out += r.data;
      out += "\r\nEND\r\n";
      return out;
    }
    case ResponseType::kEnd: return "END\r\n";
    case ResponseType::kStored: return "STORED\r\n";
    case ResponseType::kNotStored: return "NOT_STORED\r\n";
    case ResponseType::kExists: return "EXISTS\r\n";
    case ResponseType::kNotFound: return "NOT_FOUND\r\n";
    case ResponseType::kDeleted: return "DELETED\r\n";
    case ResponseType::kNumber: return std::to_string(r.number) + "\r\n";
    case ResponseType::kError:
      return r.message.empty() ? "ERROR\r\n"
                               : "CLIENT_ERROR " + r.message + "\r\n";
    case ResponseType::kOk: return "OK\r\n";
    case ResponseType::kStats: return r.message + "END\r\n";
    case ResponseType::kMissToken:
      return "MISS_TOKEN " + std::to_string(r.number) + "\r\n";
    case ResponseType::kMissBackoff: return "MISS_BACKOFF\r\n";
    case ResponseType::kMissNoLease: return "MISS_NOLEASE\r\n";
    case ResponseType::kQValue: {
      std::string out = "QVALUE " + std::to_string(r.number) + " " +
                        std::to_string(r.data.size()) + "\r\n";
      out += r.data;
      out += "\r\n";
      return out;
    }
    case ResponseType::kQMiss:
      return "QMISS " + std::to_string(r.number) + "\r\n";
    case ResponseType::kReject: return "REJECT\r\n";
    case ResponseType::kGranted: return "GRANTED\r\n";
    case ResponseType::kId: return "ID " + std::to_string(r.number) + "\r\n";
  }
  return "";
}

std::optional<Response> ParseResponse(std::string_view bytes,
                                      std::size_t* consumed) {
  std::size_t eol = bytes.find("\r\n");
  if (eol == std::string_view::npos) return std::nullopt;
  std::string_view line = bytes.substr(0, eol);
  auto tokens = SplitTokens(line);
  if (tokens.empty()) return std::nullopt;
  Response resp;
  auto simple = [&](ResponseType t) {
    resp.type = t;
    *consumed = eol + 2;
    return resp;
  };
  std::string_view head = tokens[0];
  if (head == "END") return simple(ResponseType::kEnd);
  if (head == "STORED") return simple(ResponseType::kStored);
  if (head == "NOT_STORED") return simple(ResponseType::kNotStored);
  if (head == "EXISTS") return simple(ResponseType::kExists);
  if (head == "NOT_FOUND") return simple(ResponseType::kNotFound);
  if (head == "DELETED") return simple(ResponseType::kDeleted);
  if (head == "OK") return simple(ResponseType::kOk);
  if (head == "MISS_BACKOFF") return simple(ResponseType::kMissBackoff);
  if (head == "MISS_NOLEASE") return simple(ResponseType::kMissNoLease);
  if (head == "REJECT") return simple(ResponseType::kReject);
  if (head == "GRANTED") return simple(ResponseType::kGranted);
  if (head == "ERROR") return simple(ResponseType::kError);
  if (head == "CLIENT_ERROR") {
    resp.type = ResponseType::kError;
    resp.message = std::string(line.substr(13));
    *consumed = eol + 2;
    return resp;
  }
  if (head == "MISS_TOKEN" || head == "QMISS" || head == "ID") {
    if (tokens.size() != 2) return std::nullopt;
    auto n = ParseU64(tokens[1]);
    if (!n) return std::nullopt;
    resp.type = head == "MISS_TOKEN" ? ResponseType::kMissToken
                : head == "QMISS"    ? ResponseType::kQMiss
                                     : ResponseType::kId;
    resp.number = *n;
    *consumed = eol + 2;
    return resp;
  }
  if (head == "VALUE") {
    if (tokens.size() < 4) return std::nullopt;
    auto flags = ParseU64(tokens[2]);
    auto size = ParseU64(tokens[3]);
    if (!flags || !size) return std::nullopt;
    std::size_t total = eol + 2 + *size + 2 + 5;  // data + \r\n + "END\r\n"
    if (bytes.size() < total) return std::nullopt;
    resp.type = ResponseType::kValue;
    resp.key = std::string(tokens[1]);
    resp.flags = static_cast<std::uint32_t>(*flags);
    resp.data = std::string(bytes.substr(eol + 2, *size));
    if (tokens.size() >= 5) {
      auto cas = ParseU64(tokens[4]);
      if (cas) {
        resp.cas_unique = *cas;
        resp.with_cas = true;
      }
    }
    *consumed = total;
    return resp;
  }
  if (head == "QVALUE") {
    if (tokens.size() != 3) return std::nullopt;
    auto token = ParseU64(tokens[1]);
    auto size = ParseU64(tokens[2]);
    if (!token || !size) return std::nullopt;
    std::size_t total = eol + 2 + *size + 2;
    if (bytes.size() < total) return std::nullopt;
    resp.type = ResponseType::kQValue;
    resp.number = *token;
    resp.data = std::string(bytes.substr(eol + 2, *size));
    *consumed = total;
    return resp;
  }
  if (head == "STAT") {
    // Collect STAT lines up to END.
    std::size_t end = bytes.find("END\r\n");
    if (end == std::string_view::npos) return std::nullopt;
    resp.type = ResponseType::kStats;
    resp.message = std::string(bytes.substr(0, end));
    *consumed = end + 5;
    return resp;
  }
  // A bare number (incr/decr result).
  if (auto n = ParseU64(head); n && tokens.size() == 1) {
    resp.type = ResponseType::kNumber;
    resp.number = *n;
    *consumed = eol + 2;
    return resp;
  }
  return std::nullopt;
}

}  // namespace iq::net
