#include "net/protocol.h"

#include <charconv>
#include <unordered_map>

namespace iq::net {
namespace {

std::optional<std::uint64_t> ParseU64(std::string_view s) {
  std::uint64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::int64_t> ParseI64(std::string_view s) {
  std::int64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

void AppendU64(std::string* out, std::uint64_t v) {
  char buf[20];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out->append(buf, p - buf);
}

void AppendI64(std::string* out, std::int64_t v) {
  char buf[21];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out->append(buf, p - buf);
}

std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

struct CommandInfo {
  Command command;
  bool has_payload;  // followed by a data block
};

const std::unordered_map<std::string_view, CommandInfo>& CommandTable() {
  static const auto* table = new std::unordered_map<std::string_view, CommandInfo>{
      {"get", {Command::kGet, false}},
      {"gets", {Command::kGets, false}},
      {"set", {Command::kSet, true}},
      {"add", {Command::kAdd, true}},
      {"replace", {Command::kReplace, true}},
      {"cas", {Command::kCas, true}},
      {"append", {Command::kAppend, true}},
      {"prepend", {Command::kPrepend, true}},
      {"delete", {Command::kDelete, false}},
      {"incr", {Command::kIncr, false}},
      {"decr", {Command::kDecr, false}},
      {"flush_all", {Command::kFlushAll, false}},
      {"stats", {Command::kStats, false}},
      {"quit", {Command::kQuit, false}},
      {"iqget", {Command::kIQGet, false}},
      {"iqset", {Command::kIQSet, true}},
      {"qaread", {Command::kQaRead, false}},
      {"sar", {Command::kSaR, true}},
      {"sarnull", {Command::kSaRNull, false}},
      {"genid", {Command::kGenId, false}},
      {"qareg", {Command::kQaReg, false}},
      {"dar", {Command::kDaR, false}},
      {"iqappend", {Command::kIQAppend, true}},
      {"iqprepend", {Command::kIQPrepend, true}},
      {"iqincr", {Command::kIQIncr, false}},
      {"iqdecr", {Command::kIQDecr, false}},
      {"commit", {Command::kCommit, false}},
      {"abort", {Command::kAbort, false}},
      {"release", {Command::kRelease, false}},
      {"sweep", {Command::kSweep, false}},
      {"metrics", {Command::kMetrics, false}},
      {"trace", {Command::kTrace, false}},
  };
  return *table;
}

/// Expected payload size for a storage-style command line, or nullopt for
/// malformed lines. Fills the non-payload fields of *req.
std::optional<std::size_t> ParseCommandLine(
    const std::vector<std::string_view>& tok, const CommandInfo& info,
    Request* req, std::string* error) {
  auto fail = [&](const char* msg) -> std::optional<std::size_t> {
    *error = msg;
    return std::nullopt;
  };
  req->command = info.command;
  switch (info.command) {
    case Command::kGet:
    case Command::kGets:
      // Multi-key retrieval per the real memcached protocol: one request
      // line, N keys, one END-terminated response.
      if (tok.size() < 2) return fail("bad argument count");
      req->key = std::string(tok[1]);
      req->keys.reserve(tok.size() - 1);
      for (std::size_t i = 1; i < tok.size(); ++i) {
        req->keys.emplace_back(tok[i]);
      }
      return 0;
    case Command::kDelete:
      if (tok.size() != 2) return fail("bad argument count");
      req->key = std::string(tok[1]);
      return 0;
    case Command::kSet:
    case Command::kAdd:
    case Command::kReplace:
    case Command::kAppend:
    case Command::kPrepend: {
      if (tok.size() != 5) return fail("bad argument count");
      req->key = std::string(tok[1]);
      auto flags = ParseU64(tok[2]);
      auto exptime = ParseI64(tok[3]);
      auto bytes = ParseU64(tok[4]);
      if (!flags || !exptime || !bytes) return fail("bad numeric field");
      req->flags = static_cast<std::uint32_t>(*flags);
      req->exptime = *exptime;
      return *bytes;
    }
    case Command::kCas: {
      if (tok.size() != 6) return fail("bad argument count");
      req->key = std::string(tok[1]);
      auto flags = ParseU64(tok[2]);
      auto exptime = ParseI64(tok[3]);
      auto bytes = ParseU64(tok[4]);
      auto unique = ParseU64(tok[5]);
      if (!flags || !exptime || !bytes || !unique) return fail("bad numeric field");
      req->flags = static_cast<std::uint32_t>(*flags);
      req->exptime = *exptime;
      req->cas_unique = *unique;
      return *bytes;
    }
    case Command::kIncr:
    case Command::kDecr: {
      if (tok.size() != 3) return fail("bad argument count");
      req->key = std::string(tok[1]);
      auto amount = ParseU64(tok[2]);
      if (!amount) return fail("bad amount");
      req->amount = *amount;
      return 0;
    }
    case Command::kFlushAll:
    case Command::kStats:
    case Command::kQuit:
    case Command::kGenId:
    case Command::kSweep:
    case Command::kMetrics:
      if (tok.size() != 1) return fail("bad argument count");
      return 0;
    case Command::kTrace: {
      // Optional event count: `trace` or `trace <n>`. 0 (or omitted) means
      // the server default.
      if (tok.size() > 2) return fail("bad argument count");
      if (tok.size() == 2) {
        auto n = ParseU64(tok[1]);
        if (!n) return fail("bad event count");
        req->amount = *n;
      }
      return 0;
    }
    case Command::kIQGet:
    case Command::kQaRead: {
      if (tok.size() != 3) return fail("bad argument count");
      req->key = std::string(tok[1]);
      auto session = ParseU64(tok[2]);
      if (!session) return fail("bad session id");
      req->session = *session;
      return 0;
    }
    case Command::kIQSet:
    case Command::kSaR: {
      if (tok.size() != 4) return fail("bad argument count");
      req->key = std::string(tok[1]);
      auto token = ParseU64(tok[2]);
      auto bytes = ParseU64(tok[3]);
      if (!token || !bytes) return fail("bad numeric field");
      req->token = *token;
      return *bytes;
    }
    case Command::kSaRNull: {
      if (tok.size() != 3) return fail("bad argument count");
      req->key = std::string(tok[1]);
      auto token = ParseU64(tok[2]);
      if (!token) return fail("bad token");
      req->token = *token;
      return 0;
    }
    case Command::kQaReg:
    case Command::kRelease: {
      if (tok.size() != 3) return fail("bad argument count");
      auto tid = ParseU64(tok[1]);
      if (!tid) return fail("bad tid");
      req->session = *tid;
      req->key = std::string(tok[2]);
      return 0;
    }
    case Command::kDaR:
    case Command::kCommit:
    case Command::kAbort: {
      if (tok.size() != 2) return fail("bad argument count");
      auto tid = ParseU64(tok[1]);
      if (!tid) return fail("bad tid");
      req->session = *tid;
      return 0;
    }
    case Command::kIQAppend:
    case Command::kIQPrepend: {
      if (tok.size() != 4) return fail("bad argument count");
      auto tid = ParseU64(tok[1]);
      auto bytes = ParseU64(tok[3]);
      if (!tid || !bytes) return fail("bad numeric field");
      req->session = *tid;
      req->key = std::string(tok[2]);
      return *bytes;
    }
    case Command::kIQIncr:
    case Command::kIQDecr: {
      if (tok.size() != 4) return fail("bad argument count");
      auto tid = ParseU64(tok[1]);
      auto amount = ParseU64(tok[3]);
      if (!tid || !amount) return fail("bad numeric field");
      req->session = *tid;
      req->key = std::string(tok[2]);
      req->amount = *amount;
      return 0;
    }
  }
  return fail("unhandled command");
}

}  // namespace

const char* ToString(Command c) {
  switch (c) {
    case Command::kGet: return "get";
    case Command::kGets: return "gets";
    case Command::kSet: return "set";
    case Command::kAdd: return "add";
    case Command::kReplace: return "replace";
    case Command::kCas: return "cas";
    case Command::kAppend: return "append";
    case Command::kPrepend: return "prepend";
    case Command::kDelete: return "delete";
    case Command::kIncr: return "incr";
    case Command::kDecr: return "decr";
    case Command::kFlushAll: return "flush_all";
    case Command::kStats: return "stats";
    case Command::kQuit: return "quit";
    case Command::kIQGet: return "iqget";
    case Command::kIQSet: return "iqset";
    case Command::kQaRead: return "qaread";
    case Command::kSaR: return "sar";
    case Command::kSaRNull: return "sarnull";
    case Command::kGenId: return "genid";
    case Command::kQaReg: return "qareg";
    case Command::kDaR: return "dar";
    case Command::kIQAppend: return "iqappend";
    case Command::kIQPrepend: return "iqprepend";
    case Command::kIQIncr: return "iqincr";
    case Command::kIQDecr: return "iqdecr";
    case Command::kCommit: return "commit";
    case Command::kAbort: return "abort";
    case Command::kRelease: return "release";
    case Command::kSweep: return "sweep";
    case Command::kMetrics: return "metrics";
    case Command::kTrace: return "trace";
  }
  return "?";
}

void RequestParser::ConsumeTo(std::size_t end) {
  pos_ = end;
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);  // one memmove of the unconsumed tail
    pos_ = 0;
  }
}

RequestParser::Status RequestParser::Next(Request* out, std::string* error) {
  std::size_t eol = buffer_.find("\r\n", pos_);
  if (eol == std::string::npos) return Status::kNeedMore;
  std::string_view line(buffer_.data() + pos_, eol - pos_);
  auto tokens = SplitTokens(line);
  if (tokens.empty()) {
    *error = "empty command line";
    ConsumeTo(eol + 2);
    return Status::kError;
  }
  auto it = CommandTable().find(tokens[0]);
  if (it == CommandTable().end()) {
    *error = "unknown command '" + std::string(tokens[0]) + "'";
    ConsumeTo(eol + 2);
    return Status::kError;
  }
  Request req;
  auto payload = ParseCommandLine(tokens, it->second, &req, error);
  if (!payload) {
    ConsumeTo(eol + 2);
    return Status::kError;
  }
  std::size_t need = *payload;
  if (it->second.has_payload) {
    if (need > kMaxPayloadBytes) {
      // Never wait for (or index past) an absurd length claim; see the
      // kMaxPayloadBytes comment. Resync past the command line — the bytes
      // the peer meant as payload will parse as garbage commands and draw
      // further CLIENT_ERRORs, but nothing is silently executed as data.
      *error = "payload exceeds protocol limit";
      ConsumeTo(eol + 2);
      return Status::kError;
    }
    // Data block: <need> bytes followed by \r\n. `avail`-style comparisons
    // keep the arithmetic overflow-free even if the cap above ever moves.
    std::size_t avail = buffer_.size() - (eol + 2);
    if (avail < need || avail - need < 2) return Status::kNeedMore;
    std::size_t total = eol + 2 + need + 2;
    if (buffer_[eol + 2 + need] != '\r' || buffer_[eol + 2 + need + 1] != '\n') {
      *error = "bad data chunk terminator";
      ConsumeTo(total);
      return Status::kError;
    }
    req.data = buffer_.substr(eol + 2, need);
    ConsumeTo(total);
  } else {
    ConsumeTo(eol + 2);
  }
  *out = std::move(req);
  return Status::kOk;
}

void AppendTo(const Request& r, std::string* out) {
  auto data_block = [&] {
    out->push_back(' ');
    AppendU64(out, r.data.size());
    out->append("\r\n");
    out->append(r.data);
    out->append("\r\n");
  };
  auto keyed_line = [&](const char* verb) {
    out->append(verb);
    out->push_back(' ');
    out->append(r.key);
    out->append("\r\n");
  };
  switch (r.command) {
    case Command::kGet:
    case Command::kGets:
      out->append(ToString(r.command));
      if (r.keys.empty()) {
        out->push_back(' ');
        out->append(r.key);
      } else {
        for (const std::string& k : r.keys) {
          out->push_back(' ');
          out->append(k);
        }
      }
      out->append("\r\n");
      return;
    case Command::kSet:
    case Command::kAdd:
    case Command::kReplace:
    case Command::kAppend:
    case Command::kPrepend:
      out->append(ToString(r.command));
      out->push_back(' ');
      out->append(r.key);
      out->push_back(' ');
      AppendU64(out, r.flags);
      out->push_back(' ');
      AppendI64(out, r.exptime);
      data_block();
      return;
    case Command::kCas:
      out->append("cas ");
      out->append(r.key);
      out->push_back(' ');
      AppendU64(out, r.flags);
      out->push_back(' ');
      AppendI64(out, r.exptime);
      out->push_back(' ');
      AppendU64(out, r.data.size());
      out->push_back(' ');
      AppendU64(out, r.cas_unique);
      out->append("\r\n");
      out->append(r.data);
      out->append("\r\n");
      return;
    case Command::kDelete:
      keyed_line("delete");
      return;
    case Command::kIncr:
    case Command::kDecr:
      out->append(ToString(r.command));
      out->push_back(' ');
      out->append(r.key);
      out->push_back(' ');
      AppendU64(out, r.amount);
      out->append("\r\n");
      return;
    case Command::kFlushAll: out->append("flush_all\r\n"); return;
    case Command::kStats: out->append("stats\r\n"); return;
    case Command::kQuit: out->append("quit\r\n"); return;
    case Command::kIQGet:
    case Command::kQaRead:
      out->append(ToString(r.command));
      out->push_back(' ');
      out->append(r.key);
      out->push_back(' ');
      AppendU64(out, r.session);
      out->append("\r\n");
      return;
    case Command::kIQSet:
    case Command::kSaR:
      out->append(ToString(r.command));
      out->push_back(' ');
      out->append(r.key);
      out->push_back(' ');
      AppendU64(out, r.token);
      data_block();
      return;
    case Command::kSaRNull:
      out->append("sarnull ");
      out->append(r.key);
      out->push_back(' ');
      AppendU64(out, r.token);
      out->append("\r\n");
      return;
    case Command::kGenId: out->append("genid\r\n"); return;
    case Command::kSweep: out->append("sweep\r\n"); return;
    case Command::kMetrics: out->append("metrics\r\n"); return;
    case Command::kTrace:
      out->append("trace");
      if (r.amount != 0) {
        out->push_back(' ');
        AppendU64(out, r.amount);
      }
      out->append("\r\n");
      return;
    case Command::kQaReg:
    case Command::kRelease:
      out->append(ToString(r.command));
      out->push_back(' ');
      AppendU64(out, r.session);
      out->push_back(' ');
      out->append(r.key);
      out->append("\r\n");
      return;
    case Command::kDaR:
    case Command::kCommit:
    case Command::kAbort:
      out->append(ToString(r.command));
      out->push_back(' ');
      AppendU64(out, r.session);
      out->append("\r\n");
      return;
    case Command::kIQAppend:
    case Command::kIQPrepend:
      out->append(ToString(r.command));
      out->push_back(' ');
      AppendU64(out, r.session);
      out->push_back(' ');
      out->append(r.key);
      data_block();
      return;
    case Command::kIQIncr:
    case Command::kIQDecr:
      out->append(ToString(r.command));
      out->push_back(' ');
      AppendU64(out, r.session);
      out->push_back(' ');
      out->append(r.key);
      out->push_back(' ');
      AppendU64(out, r.amount);
      out->append("\r\n");
      return;
  }
}

std::string Serialize(const Request& r) {
  std::string out;
  AppendTo(r, &out);
  return out;
}

namespace {

void AppendValueBlock(std::string* out, const std::string& key,
                      const std::string& data, std::uint32_t flags,
                      bool with_cas, std::uint64_t cas_unique,
                      std::uint64_t ttl_ns) {
  out->append("VALUE ");
  out->append(key);
  out->push_back(' ');
  AppendU64(out, flags);
  out->push_back(' ');
  AppendU64(out, data.size());
  if (with_cas) {
    out->push_back(' ');
    AppendU64(out, cas_unique);
  }
  if (ttl_ns != 0) {
    // Near-cache validity duration. The 'T' prefix keeps the token
    // non-numeric, so pre-TTL parsers skip it instead of mistaking it for
    // a cas unique.
    out->append(" T");
    AppendU64(out, ttl_ns);
  }
  out->append("\r\n");
  out->append(data);
  out->append("\r\n");
}

}  // namespace

void AppendTo(const Response& r, std::string* out) {
  switch (r.type) {
    case ResponseType::kValue:
      if (!r.values.empty()) {
        for (const ValueEntry& v : r.values) {
          AppendValueBlock(out, v.key, v.data, v.flags, r.with_cas,
                           v.cas_unique, v.ttl_ns);
        }
      } else {
        AppendValueBlock(out, r.key, r.data, r.flags, r.with_cas,
                         r.cas_unique, r.ttl_ns);
      }
      out->append("END\r\n");
      return;
    case ResponseType::kEnd: out->append("END\r\n"); return;
    case ResponseType::kStored: out->append("STORED\r\n"); return;
    case ResponseType::kNotStored: out->append("NOT_STORED\r\n"); return;
    case ResponseType::kExists: out->append("EXISTS\r\n"); return;
    case ResponseType::kNotFound: out->append("NOT_FOUND\r\n"); return;
    case ResponseType::kDeleted: out->append("DELETED\r\n"); return;
    case ResponseType::kNumber:
      AppendU64(out, r.number);
      out->append("\r\n");
      return;
    case ResponseType::kError:
      if (r.message.empty()) {
        out->append("ERROR\r\n");
      } else {
        out->append("CLIENT_ERROR ");
        out->append(r.message);
        out->append("\r\n");
      }
      return;
    case ResponseType::kOk: out->append("OK\r\n"); return;
    case ResponseType::kStats:
      out->append(r.message);
      out->append("END\r\n");
      return;
    case ResponseType::kMissToken:
      out->append("MISS_TOKEN ");
      AppendU64(out, r.number);
      out->append("\r\n");
      return;
    case ResponseType::kMissBackoff: out->append("MISS_BACKOFF\r\n"); return;
    case ResponseType::kMissNoLease: out->append("MISS_NOLEASE\r\n"); return;
    case ResponseType::kQValue:
      out->append("QVALUE ");
      AppendU64(out, r.number);
      out->push_back(' ');
      AppendU64(out, r.data.size());
      out->append("\r\n");
      out->append(r.data);
      out->append("\r\n");
      return;
    case ResponseType::kQMiss:
      out->append("QMISS ");
      AppendU64(out, r.number);
      out->append("\r\n");
      return;
    case ResponseType::kReject: out->append("REJECT\r\n"); return;
    case ResponseType::kGranted: out->append("GRANTED\r\n"); return;
    case ResponseType::kId:
      out->append("ID ");
      AppendU64(out, r.number);
      out->append("\r\n");
      return;
    case ResponseType::kMetrics:
      // Sized block like QVALUE: the Prometheus text contains arbitrary
      // lines ('#' comments, label braces) that must not be re-scanned as
      // protocol heads.
      out->append("METRICS ");
      AppendU64(out, r.data.size());
      out->append("\r\n");
      out->append(r.data);
      out->append("\r\n");
      return;
    case ResponseType::kTrace:
      // A TRACE_INFO completeness header plus zero or more self-describing
      // TRACE lines, END-terminated (the STAT pattern; a headerless empty
      // trace is a bare END and parses as kEnd).
      out->append(r.message);
      out->append("END\r\n");
      return;
    case ResponseType::kTransportError:
      out->append("SERVER_ERROR ");
      out->append(r.message.empty() ? "transport failure" : r.message);
      out->append("\r\n");
      return;
  }
}

std::string Serialize(const Response& r) {
  std::string out;
  AppendTo(r, &out);
  return out;
}

std::optional<Response> ParseResponse(std::string_view bytes,
                                      std::size_t* consumed) {
  std::size_t eol = bytes.find("\r\n");
  if (eol == std::string_view::npos) return std::nullopt;
  std::string_view line = bytes.substr(0, eol);
  auto tokens = SplitTokens(line);
  if (tokens.empty()) return std::nullopt;
  Response resp;
  auto simple = [&](ResponseType t) {
    resp.type = t;
    *consumed = eol + 2;
    return resp;
  };
  std::string_view head = tokens[0];
  if (head == "END") return simple(ResponseType::kEnd);
  if (head == "STORED") return simple(ResponseType::kStored);
  if (head == "NOT_STORED") return simple(ResponseType::kNotStored);
  if (head == "EXISTS") return simple(ResponseType::kExists);
  if (head == "NOT_FOUND") return simple(ResponseType::kNotFound);
  if (head == "DELETED") return simple(ResponseType::kDeleted);
  if (head == "OK") return simple(ResponseType::kOk);
  if (head == "MISS_BACKOFF") return simple(ResponseType::kMissBackoff);
  if (head == "MISS_NOLEASE") return simple(ResponseType::kMissNoLease);
  if (head == "REJECT") return simple(ResponseType::kReject);
  if (head == "GRANTED") return simple(ResponseType::kGranted);
  if (head == "ERROR") return simple(ResponseType::kError);
  if (head == "CLIENT_ERROR") {
    resp.type = ResponseType::kError;
    resp.message = std::string(line.substr(13));
    *consumed = eol + 2;
    return resp;
  }
  if (head == "SERVER_ERROR") {
    resp.type = ResponseType::kTransportError;
    resp.message = line.size() > 13 ? std::string(line.substr(13)) : "";
    *consumed = eol + 2;
    return resp;
  }
  if (head == "MISS_TOKEN" || head == "QMISS" || head == "ID") {
    if (tokens.size() != 2) return std::nullopt;
    auto n = ParseU64(tokens[1]);
    if (!n) return std::nullopt;
    resp.type = head == "MISS_TOKEN" ? ResponseType::kMissToken
                : head == "QMISS"    ? ResponseType::kQMiss
                                     : ResponseType::kId;
    resp.number = *n;
    *consumed = eol + 2;
    return resp;
  }
  if (head == "VALUE") {
    // One or more VALUE blocks (multi-key get), terminated by END.
    resp.type = ResponseType::kValue;
    std::size_t off = 0;
    while (true) {
      if (bytes.size() - off >= 5 && bytes.compare(off, 5, "END\r\n") == 0) {
        *consumed = off + 5;
        break;
      }
      std::size_t block_eol = bytes.find("\r\n", off);
      if (block_eol == std::string_view::npos) return std::nullopt;
      auto btok = SplitTokens(bytes.substr(off, block_eol - off));
      if (btok.size() < 4 || btok[0] != "VALUE") return std::nullopt;
      auto flags = ParseU64(btok[2]);
      auto size = ParseU64(btok[3]);
      if (!flags || !size || *size > kMaxPayloadBytes) return std::nullopt;
      std::size_t avail = bytes.size() - (block_eol + 2);
      if (avail < *size || avail - *size < 2) return std::nullopt;
      std::size_t data_end = block_eol + 2 + *size + 2;
      ValueEntry entry;
      entry.key = std::string(btok[1]);
      entry.flags = static_cast<std::uint32_t>(*flags);
      entry.data = std::string(bytes.substr(block_eol + 2, *size));
      for (std::size_t i = 4; i < btok.size(); ++i) {
        if (!btok[i].empty() && btok[i][0] == 'T') {
          // Trailing near-cache validity duration (see protocol.h).
          if (auto ttl = ParseU64(btok[i].substr(1))) entry.ttl_ns = *ttl;
        } else if (auto cas = ParseU64(btok[i])) {
          entry.cas_unique = *cas;
          resp.with_cas = true;
        }
      }
      resp.values.push_back(std::move(entry));
      off = data_end;
    }
    // Mirror the first hit into the single-value fields so single-key
    // callers (get/gets/iqget) keep reading resp.data as before.
    resp.key = resp.values.front().key;
    resp.flags = resp.values.front().flags;
    resp.cas_unique = resp.values.front().cas_unique;
    resp.ttl_ns = resp.values.front().ttl_ns;
    resp.data = resp.values.front().data;
    return resp;
  }
  if (head == "QVALUE") {
    if (tokens.size() != 3) return std::nullopt;
    auto token = ParseU64(tokens[1]);
    auto size = ParseU64(tokens[2]);
    if (!token || !size || *size > kMaxPayloadBytes) return std::nullopt;
    std::size_t avail = bytes.size() - (eol + 2);
    if (avail < *size || avail - *size < 2) return std::nullopt;
    std::size_t total = eol + 2 + *size + 2;
    resp.type = ResponseType::kQValue;
    resp.number = *token;
    resp.data = std::string(bytes.substr(eol + 2, *size));
    *consumed = total;
    return resp;
  }
  if (head == "STAT") {
    // Collect STAT lines up to END.
    std::size_t end = bytes.find("END\r\n");
    if (end == std::string_view::npos) return std::nullopt;
    resp.type = ResponseType::kStats;
    resp.message = std::string(bytes.substr(0, end));
    *consumed = end + 5;
    return resp;
  }
  if (head == "METRICS") {
    if (tokens.size() != 2) return std::nullopt;
    auto size = ParseU64(tokens[1]);
    if (!size || *size > kMaxPayloadBytes) return std::nullopt;
    std::size_t avail = bytes.size() - (eol + 2);
    if (avail < *size || avail - *size < 2) return std::nullopt;
    resp.type = ResponseType::kMetrics;
    resp.data = std::string(bytes.substr(eol + 2, *size));
    *consumed = eol + 2 + *size + 2;
    return resp;
  }
  if (head == "TRACE" || head == "TRACE_INFO") {
    // Collect TRACE_INFO/TRACE lines up to END (same shape as STAT).
    std::size_t end = bytes.find("END\r\n");
    if (end == std::string_view::npos) return std::nullopt;
    resp.type = ResponseType::kTrace;
    resp.message = std::string(bytes.substr(0, end));
    *consumed = end + 5;
    return resp;
  }
  // A bare number (incr/decr result).
  if (auto n = ParseU64(head); n && tokens.size() == 1) {
    resp.type = ResponseType::kNumber;
    resp.number = *n;
    *consumed = eol + 2;
    return resp;
  }
  return std::nullopt;
}

}  // namespace iq::net
