// The memcached text protocol, extended with the IQ commands of Section 5.
//
// Standard commands (memcached 1.4 text protocol subset):
//   get <key> [<key> ...]\r\n                        (multi-key: one round trip)
//   gets <key> [<key> ...]\r\n                       (returns cas unique)
//   set|add|replace <key> <flags> <exptime> <bytes>\r\n<data>\r\n
//   cas <key> <flags> <exptime> <bytes> <unique>\r\n<data>\r\n
//   append|prepend <key> <flags> <exptime> <bytes>\r\n<data>\r\n
//   delete <key>\r\n
//   incr|decr <key> <amount>\r\n
//   flush_all\r\n
//   stats\r\n
//   quit\r\n
//
// IQ extensions (one line each; tokens are decimal):
//   iqget <key> <session>\r\n
//     -> VALUE ... | MISS_TOKEN <token> | MISS_BACKOFF | MISS_NOLEASE
//     (a hit's VALUE line may carry a trailing T<ttl_ns> token: a near-cache
//      validity interval. Always a DURATION relative to receipt, never an
//      absolute deadline — client and server clocks are not comparable over
//      TCP. Old parsers skip the non-numeric token harmlessly.)
//   iqset <key> <token> <bytes>\r\n<data>\r\n  -> STORED | NOT_STORED
//   qaread <key> <session>\r\n
//     -> QVALUE <token> ...data block... | QMISS <token> | REJECT
//   sar <key> <token> <bytes>\r\n<data>\r\n    -> STORED | NOT_FOUND
//   sarnull <key> <token>\r\n                  -> STORED | NOT_FOUND
//   genid\r\n                                  -> ID <session>
//   qareg <tid> <key>\r\n                      -> GRANTED
//   dar <tid>\r\n                              -> OK
//   iqappend|iqprepend <tid> <key> <bytes>\r\n<data>\r\n -> GRANTED | REJECT
//   iqincr|iqdecr <tid> <key> <amount>\r\n     -> GRANTED | REJECT
//   commit <tid>\r\n                           -> OK
//   abort <tid>\r\n                            -> OK
//   release <tid> <key>\r\n                    -> OK
//     (drop the session's lease on one key; buffered deltas/quarantines on
//      other keys survive — unlike abort)
//   sweep\r\n                                  -> <number of leases expired>
//     (force one pass over the lease table, expiring overdue leases — the
//      same reclamation a periodic server-side sweep thread performs)
//   metrics\r\n                                -> METRICS <bytes>\r\n<data>\r\n
//     (Prometheus exposition text: lifetime totals plus rates over the
//      window since the previous metrics scrape; see net/metrics.h)
//   trace [<n>]\r\n            -> TRACE_INFO + TRACE lines + END\r\n
//     (a "TRACE_INFO <recorded> <dropped> <capacity>" completeness header —
//      dropped != 0 means the rings wrapped and the history is incomplete —
//      then the newest n (default 128) lease-trace events, one
//      "TRACE <seq> <at> <shard> <kind> <session> <key_hash>" line each;
//      see util/trace_ring.h)
//
// The parser is incremental: feed bytes, take complete requests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace iq::net {

/// Upper bound on the <bytes> field of any data block, request or response.
/// Without a cap a remote peer can claim a length near SIZE_MAX and make the
/// terminator arithmetic (`eol + 2 + bytes + 2`) wrap, landing the computed
/// data block back on top of the command line — the request is then accepted
/// and the bytes meant as its payload are re-executed as commands (protocol
/// desync). Oversized claims draw kError / are never treated as complete.
constexpr std::size_t kMaxPayloadBytes = 8u << 20;

enum class Command {
  kGet,
  kGets,
  kSet,
  kAdd,
  kReplace,
  kCas,
  kAppend,
  kPrepend,
  kDelete,
  kIncr,
  kDecr,
  kFlushAll,
  kStats,
  kQuit,
  // IQ extensions
  kIQGet,
  kIQSet,
  kQaRead,
  kSaR,
  kSaRNull,
  kGenId,
  kQaReg,
  kDaR,
  kIQAppend,
  kIQPrepend,
  kIQIncr,
  kIQDecr,
  kCommit,
  kAbort,
  kRelease,
  kSweep,
  kMetrics,
  kTrace,
};

const char* ToString(Command c);

/// One parsed request.
struct Request {
  Command command;
  std::string key;
  std::vector<std::string> keys;  // multi-key get/gets; key == keys[0] then
  std::string data;            // payload of storage commands
  std::uint32_t flags = 0;
  std::int64_t exptime = 0;    // seconds, memcached-style
  std::uint64_t cas_unique = 0;
  std::uint64_t amount = 0;    // incr/decr
  std::uint64_t token = 0;     // IQ lease token
  std::uint64_t session = 0;   // IQ session / tid
};

/// Incremental request parser. Tolerates requests split across arbitrary
/// Feed() boundaries (as TCP would deliver them).
class RequestParser {
 public:
  /// Append raw bytes to the internal buffer.
  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Result of attempting to take one request.
  enum class Status {
    kOk,         // *out filled
    kNeedMore,   // incomplete request buffered
    kError,      // malformed input; message in *error
  };

  Status Next(Request* out, std::string* error);

  /// Bytes buffered but not yet consumed by Next().
  std::size_t buffered() const { return buffer_.size() - pos_; }

 private:
  /// Advance the read cursor to absolute offset `end`. The consumed prefix
  /// is only memmoved out (compacted) once it exceeds half the buffer, so
  /// a stream of small pipelined requests costs O(bytes) total instead of
  /// O(bytes * requests) front-erase churn.
  void ConsumeTo(std::size_t end);

  std::string buffer_;
  std::size_t pos_ = 0;  // start of unconsumed bytes within buffer_
};

/// Serialize a request to protocol bytes (client side).
std::string Serialize(const Request& request);

/// Append the wire form of `request` to *out without intermediate strings —
/// the zero-copy-ish path used by pipelined clients to batch many requests
/// into one reused buffer. Serialize() is a thin wrapper over this.
void AppendTo(const Request& request, std::string* out);

// ---- responses ----------------------------------------------------------------

enum class ResponseType {
  kValue,        // (VALUE <key> <flags> <bytes> [<cas>] [T<ttl_ns>]\r\n<data>\r\n)+END\r\n
  kEnd,          // END (get miss)
  kStored,
  kNotStored,
  kExists,
  kNotFound,
  kDeleted,
  kNumber,       // incr/decr result
  kError,        // ERROR / CLIENT_ERROR <msg>
  kOk,
  kStats,        // STAT lines + END
  // IQ extensions
  kMissToken,    // MISS_TOKEN <token>
  kMissBackoff,  // MISS_BACKOFF
  kMissNoLease,  // MISS_NOLEASE
  kQValue,       // QVALUE <token> <bytes>\r\n<data>
  kQMiss,        // QMISS <token>
  kReject,       // REJECT
  kGranted,      // GRANTED
  kId,           // ID <session>
  // Observability
  kMetrics,      // METRICS <bytes>\r\n<data>\r\n (Prometheus text in data)
  kTrace,        // TRACE lines + END (raw lines in message)
  // Failure signalling
  kTransportError,  // SERVER_ERROR <msg>. Synthesized client-side by
                    // RemoteCacheClient::Call when the channel itself fails
                    // (dead connection, deadline, desync); distinct from
                    // kError (the server parsed the request and refused it)
                    // so sessions can tell outage from conflict.
};

/// One VALUE block of a (possibly multi-key) get/gets response.
struct ValueEntry {
  std::string key;
  std::string data;
  std::uint32_t flags = 0;
  std::uint64_t cas_unique = 0;
  /// Near-cache validity duration in nanoseconds (iqget hits; 0 = none).
  std::uint64_t ttl_ns = 0;
};

struct Response {
  ResponseType type;
  std::string key;
  std::string data;
  std::uint32_t flags = 0;
  std::uint64_t cas_unique = 0;
  bool with_cas = false;       // gets vs get
  /// Near-cache validity duration granted with an iqget hit (nanoseconds,
  /// 0 = none), carried as a trailing T<ttl_ns> token on the VALUE line.
  std::uint64_t ttl_ns = 0;
  std::uint64_t number = 0;    // incr/decr result, token, or session id
  std::string message;         // error text / stats payload
  /// kValue responses with multiple hits (multi-key get) carry one entry
  /// per hit here; when non-empty it takes precedence over the single-value
  /// fields above for serialization, and ParseResponse mirrors entry 0 into
  /// them so single-key callers keep working unchanged.
  std::vector<ValueEntry> values;
};

/// Serialize a response to protocol bytes (server side).
std::string Serialize(const Response& response);

/// Append the wire form of `response` to *out without intermediate strings
/// (server hot path: one reused output buffer per connection).
void AppendTo(const Response& response, std::string* out);

/// Parse exactly one response from `bytes` (client side). Returns nullopt
/// when the buffer does not yet hold a complete response; on success,
/// *consumed is set to the bytes used.
std::optional<Response> ParseResponse(std::string_view bytes,
                                      std::size_t* consumed);

}  // namespace iq::net
