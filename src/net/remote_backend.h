// RemoteBackend: a KvsBackend that speaks the wire protocol through a
// Channel - the deployment shape of the paper's testbed, where the
// application (IQ-Client) and the cache server (IQ-Twemcached) are separate
// processes. Everything above KvsBackend (IQClient, the casql session
// layer, the BG benchmark) runs unchanged over it.
//
// Thread safety: safe for concurrent callers; the underlying channel
// serializes round trips like a single memcached connection would. For
// higher fan-out, give each worker its own RemoteBackend over its own
// channel.
#pragma once

#include "core/kvs_backend.h"
#include "net/channel.h"

namespace iq::net {

class RemoteBackend final : public KvsBackend {
 public:
  /// `clock` defaults to the process steady clock (the remote server's
  /// clock is not observable, exactly as in a real deployment).
  explicit RemoteBackend(Channel& channel, const Clock* clock = nullptr)
      : client_(channel),
        clock_(clock != nullptr ? *clock : SteadyClock::Instance()) {}

  const Clock& clock() const override { return clock_; }

  SessionId GenID() override { return client_.GenID(); }
  GetReply IQget(std::string_view key, SessionId session = 0) override {
    return client_.IQget(std::string(key), session);
  }
  StoreResult IQset(std::string_view key, std::string_view value,
                    LeaseToken token) override {
    return client_.IQset(std::string(key), std::string(value), token);
  }
  QaReadReply QaRead(std::string_view key, SessionId session) override {
    return client_.QaRead(std::string(key), session);
  }
  StoreResult SaR(std::string_view key, std::optional<std::string_view> v_new,
                  LeaseToken token) override {
    return client_.SaR(std::string(key),
                       v_new ? std::optional<std::string>(std::string(*v_new))
                             : std::nullopt,
                       token);
  }
  QuarantineResult QaReg(SessionId tid, std::string_view key) override {
    // The server always grants QaReg, but only an acknowledged GRANTED may
    // be reported as one: returning kGranted unconditionally here let a
    // session on a dead channel believe its keys were quarantined and
    // commit its RDBMS txn with no invalidation in place — the permanent
    // staleness the whole lease protocol exists to prevent.
    return client_.QaReg(tid, std::string(key));
  }
  void DaR(SessionId tid) override { client_.DaR(tid); }
  QuarantineResult IQDelta(SessionId tid, std::string_view key,
                           DeltaOp delta) override {
    return client_.IQDelta(tid, std::string(key), std::move(delta));
  }
  void Commit(SessionId tid) override { client_.Commit(tid); }
  void Abort(SessionId tid) override { client_.Abort(tid); }
  void ReleaseKey(SessionId tid, std::string_view key) override {
    // `release <tid> <key>` drops just this lease; the session's buffered
    // deltas/quarantines on other keys survive, matching IQServer::ReleaseKey.
    client_.Release(tid, std::string(key));
  }

  std::optional<CacheItem> Get(std::string_view key) override {
    return client_.Gets(std::string(key));  // gets: cas unique included
  }
  StoreResult Set(std::string_view key, std::string_view value) override {
    return client_.Set(std::string(key), std::string(value));
  }
  StoreResult Add(std::string_view key, std::string_view value) override {
    return client_.Add(std::string(key), std::string(value));
  }
  StoreResult Cas(std::string_view key, std::string_view value,
                  std::uint64_t cas) override {
    return client_.Cas(std::string(key), std::string(value), cas);
  }
  StoreResult Append(std::string_view key, std::string_view blob) override {
    return client_.Append(std::string(key), std::string(blob));
  }
  StoreResult Prepend(std::string_view key, std::string_view blob) override {
    return client_.Prepend(std::string(key), std::string(blob));
  }
  std::optional<std::uint64_t> Incr(std::string_view key,
                                    std::uint64_t amount) override {
    return client_.Incr(std::string(key), amount);
  }
  std::optional<std::uint64_t> Decr(std::string_view key,
                                    std::uint64_t amount) override {
    return client_.Decr(std::string(key), amount);
  }
  bool DeleteVoid(std::string_view key) override {
    return client_.Delete(std::string(key));  // wire delete voids I leases
  }

 private:
  RemoteCacheClient client_;
  const Clock& clock_;
};

}  // namespace iq::net
