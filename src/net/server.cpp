#include "net/server.h"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "net/metrics.h"

namespace iq::net {
namespace {

Response FromStoreResult(StoreResult r) {
  Response resp;
  switch (r) {
    case StoreResult::kStored: resp.type = ResponseType::kStored; break;
    case StoreResult::kNotStored: resp.type = ResponseType::kNotStored; break;
    case StoreResult::kExists: resp.type = ResponseType::kExists; break;
    case StoreResult::kNotFound: resp.type = ResponseType::kNotFound; break;
    // A server never produces kTransportError itself; surfacing it keeps a
    // relaying tier (proxy) honest if one ever forwards backend results.
    case StoreResult::kTransportError:
      resp.type = ResponseType::kTransportError;
      break;
  }
  return resp;
}

Nanos ExptimeToTtl(std::int64_t exptime) {
  // memcached: 0 = never; positive = relative seconds (we skip the 30-day
  // absolute-timestamp rule - callers here always use relative).
  return exptime <= 0 ? 0 : exptime * kNanosPerSec;
}

}  // namespace

CommandClass ClassOf(Command c) {
  switch (c) {
    case Command::kGet:
    case Command::kGets: return CommandClass::kGet;
    case Command::kSet:
    case Command::kAdd:
    case Command::kReplace:
    case Command::kCas:
    case Command::kAppend:
    case Command::kPrepend: return CommandClass::kStore;
    case Command::kDelete: return CommandClass::kDelete;
    case Command::kIncr:
    case Command::kDecr: return CommandClass::kIncrDecr;
    case Command::kIQGet: return CommandClass::kIQget;
    case Command::kIQSet: return CommandClass::kIQset;
    case Command::kQaRead: return CommandClass::kQaRead;
    case Command::kSaR:
    case Command::kSaRNull: return CommandClass::kSaR;
    case Command::kQaReg: return CommandClass::kQaReg;
    case Command::kDaR: return CommandClass::kDaR;
    case Command::kIQAppend:
    case Command::kIQPrepend:
    case Command::kIQIncr:
    case Command::kIQDecr: return CommandClass::kIQDelta;
    case Command::kCommit: return CommandClass::kCommit;
    case Command::kAbort: return CommandClass::kAbort;
    default: return CommandClass::kOther;
  }
}

RouteKind RouteOf(const Request& request) {
  switch (request.command) {
    case Command::kGet:
    case Command::kGets:
      return request.keys.size() > 1 ? RouteKind::kControl : RouteKind::kKey;
    case Command::kSet:
    case Command::kAdd:
    case Command::kReplace:
    case Command::kCas:
    case Command::kAppend:
    case Command::kPrepend:
    case Command::kDelete:
    case Command::kIncr:
    case Command::kDecr:
    case Command::kIQGet:
    case Command::kIQSet:
    case Command::kQaRead:
    case Command::kSaR:
    case Command::kSaRNull:
    case Command::kQaReg:
    case Command::kIQAppend:
    case Command::kIQPrepend:
    case Command::kIQIncr:
    case Command::kIQDecr:
    case Command::kRelease:
      return RouteKind::kKey;
    case Command::kCommit:
    case Command::kAbort:
    case Command::kDaR:
      return RouteKind::kSession;
    case Command::kStats:
    case Command::kMetrics:
    case Command::kTrace:
    case Command::kSweep:
    case Command::kFlushAll:
      return RouteKind::kControl;
    case Command::kGenId:
    case Command::kQuit:
      return RouteKind::kLocal;
  }
  return RouteKind::kLocal;
}

Response CommandDispatcher::Dispatch(const Request& request) {
  const Clock& clock = server_.clock();
  Nanos start = clock.Now();
  Response resp = DispatchCommand(request);
  server_.command_latencies().Record(
      static_cast<std::size_t>(ClassOf(request.command)), clock.Now() - start);
  return resp;
}

Response CommandDispatcher::DispatchCommand(const Request& request) {
  switch (request.command) {
    case Command::kGet:
    case Command::kGets: {
      Response resp;
      // Multi-key get: one VALUE block per hit, misses silently omitted
      // (memcached semantics). Requests built in-process may carry only
      // `key`; the wire parser always fills `keys`.
      auto lookup = [&](const std::string& k) {
        auto item = server_.store().Get(k);
        if (!item) return;
        ValueEntry entry;
        entry.key = k;
        entry.data = std::move(item->value);
        entry.flags = item->flags;
        entry.cas_unique = item->cas;
        resp.values.push_back(std::move(entry));
      };
      if (request.keys.empty()) {
        lookup(request.key);
      } else {
        for (const std::string& k : request.keys) lookup(k);
      }
      if (resp.values.empty()) {
        resp.type = ResponseType::kEnd;
        return resp;
      }
      resp.type = ResponseType::kValue;
      resp.with_cas = request.command == Command::kGets;
      return resp;
    }
    case Command::kSet:
    case Command::kAdd:
    case Command::kReplace:
    case Command::kCas:
    case Command::kAppend:
    case Command::kPrepend:
    case Command::kDelete:
    case Command::kIncr:
    case Command::kDecr:
    case Command::kFlushAll:
      return DispatchStorage(request);
    case Command::kStats: {
      Response resp;
      resp.type = ResponseType::kStats;
      resp.message = FormatStats(server_);
      if (stats_augmenter_) stats_augmenter_(resp.message);
      return resp;
    }
    case Command::kQuit: {
      Response resp;
      resp.type = ResponseType::kOk;
      return resp;
    }
    default:
      return DispatchIQ(request);
  }
}

Response CommandDispatcher::DispatchStorage(const Request& r) {
  CacheStore& store = server_.store();
  Nanos ttl = ExptimeToTtl(r.exptime);
  switch (r.command) {
    case Command::kSet:
      return FromStoreResult(store.Set(r.key, r.data, r.flags, ttl));
    case Command::kAdd:
      return FromStoreResult(store.Add(r.key, r.data, r.flags, ttl));
    case Command::kReplace:
      return FromStoreResult(store.Replace(r.key, r.data, r.flags, ttl));
    case Command::kCas:
      return FromStoreResult(store.Cas(r.key, r.data, r.cas_unique, r.flags, ttl));
    case Command::kAppend:
      return FromStoreResult(store.Append(r.key, r.data));
    case Command::kPrepend:
      return FromStoreResult(store.Prepend(r.key, r.data));
    case Command::kDelete: {
      Response resp;
      // Baseline delete carries Facebook semantics: voids I leases too.
      resp.type = server_.DeleteVoid(r.key) ? ResponseType::kDeleted
                                            : ResponseType::kNotFound;
      return resp;
    }
    case Command::kIncr:
    case Command::kDecr: {
      auto result = r.command == Command::kIncr ? store.Incr(r.key, r.amount)
                                                : store.Decr(r.key, r.amount);
      Response resp;
      if (!result) {
        resp.type = ResponseType::kNotFound;
      } else {
        resp.type = ResponseType::kNumber;
        resp.number = *result;
      }
      return resp;
    }
    case Command::kFlushAll: {
      store.Flush();
      Response resp;
      resp.type = ResponseType::kOk;
      return resp;
    }
    default: {
      Response resp;
      resp.type = ResponseType::kError;
      resp.message = "not a storage command";
      return resp;
    }
  }
}

Response CommandDispatcher::DispatchIQ(const Request& r) {
  Response resp;
  switch (r.command) {
    case Command::kIQGet: {
      GetReply reply = server_.IQget(r.key, r.session);
      switch (reply.status) {
        case GetReply::Status::kHit:
          resp.type = ResponseType::kValue;
          resp.key = r.key;
          resp.data = std::move(reply.value);
          // Near-cache validity grant rides the VALUE line as a duration.
          resp.ttl_ns = static_cast<std::uint64_t>(reply.validity);
          return resp;
        case GetReply::Status::kMissGrantedI:
          resp.type = ResponseType::kMissToken;
          resp.number = reply.token;
          return resp;
        case GetReply::Status::kMissBackoff:
          resp.type = ResponseType::kMissBackoff;
          return resp;
        case GetReply::Status::kMissNoLease:
          resp.type = ResponseType::kMissNoLease;
          return resp;
        case GetReply::Status::kTransportError:
          resp.type = ResponseType::kTransportError;
          return resp;
      }
      break;
    }
    case Command::kIQSet:
      return FromStoreResult(server_.IQset(r.key, r.data, r.token));
    case Command::kQaRead: {
      QaReadReply reply = server_.QaRead(r.key, r.session);
      if (reply.status == QaReadReply::Status::kReject) {
        resp.type = ResponseType::kReject;
        return resp;
      }
      if (reply.status == QaReadReply::Status::kTransportError) {
        resp.type = ResponseType::kTransportError;
        return resp;
      }
      if (reply.value) {
        resp.type = ResponseType::kQValue;
        resp.number = reply.token;
        resp.data = std::move(*reply.value);
      } else {
        resp.type = ResponseType::kQMiss;
        resp.number = reply.token;
      }
      return resp;
    }
    case Command::kSaR:
      return FromStoreResult(
          server_.SaR(r.key, std::string_view(r.data), r.token));
    case Command::kSaRNull:
      return FromStoreResult(server_.SaR(r.key, std::nullopt, r.token));
    case Command::kGenId:
      resp.type = ResponseType::kId;
      resp.number = server_.GenID();
      return resp;
    case Command::kQaReg: {
      QuarantineResult q = server_.QaReg(r.session, r.key);
      // In-process QaReg is always granted; the switch keeps a relaying
      // tier honest should its backend ever report differently.
      resp.type = q == QuarantineResult::kGranted
                      ? ResponseType::kGranted
                      : (q == QuarantineResult::kTransportError
                             ? ResponseType::kTransportError
                             : ResponseType::kReject);
      return resp;
    }
    case Command::kDaR:
      server_.DaR(r.session);
      resp.type = ResponseType::kOk;
      return resp;
    case Command::kIQAppend:
    case Command::kIQPrepend:
    case Command::kIQIncr:
    case Command::kIQDecr: {
      DeltaOp delta;
      switch (r.command) {
        case Command::kIQAppend:
          delta = {DeltaOp::Kind::kAppend, r.data, 0};
          break;
        case Command::kIQPrepend:
          delta = {DeltaOp::Kind::kPrepend, r.data, 0};
          break;
        case Command::kIQIncr:
          delta = {DeltaOp::Kind::kIncr, {}, r.amount};
          break;
        default:
          delta = {DeltaOp::Kind::kDecr, {}, r.amount};
          break;
      }
      QuarantineResult q = server_.IQDelta(r.session, r.key, std::move(delta));
      resp.type = q == QuarantineResult::kGranted
                      ? ResponseType::kGranted
                      : (q == QuarantineResult::kTransportError
                             ? ResponseType::kTransportError
                             : ResponseType::kReject);
      return resp;
    }
    case Command::kCommit:
      server_.Commit(r.session);
      resp.type = ResponseType::kOk;
      return resp;
    case Command::kAbort:
      server_.Abort(r.session);
      resp.type = ResponseType::kOk;
      return resp;
    case Command::kRelease:
      server_.ReleaseKey(r.session, r.key);
      resp.type = ResponseType::kOk;
      return resp;
    case Command::kSweep:
      resp.type = ResponseType::kNumber;
      resp.number = server_.SweepExpired();
      return resp;
    case Command::kMetrics:
      resp.type = ResponseType::kMetrics;
      resp.data = FormatMetrics(server_);
      if (stats_augmenter_) {
        // The wire tier's STAT lines, re-rendered as Prometheus gauges so
        // one scrape carries both layers.
        std::string wire;
        stats_augmenter_(wire);
        AppendStatsAsMetrics(wire, &resp.data);
      }
      return resp;
    case Command::kTrace:
      // TRACE_INFO header first: consumers (iqcheck) need recorded/dropped/
      // capacity to tell a complete history from one the rings wrapped.
      resp.type = ResponseType::kTrace;
      resp.message = FormatTraceInfo(server_.TraceInfoTotal());
      resp.message += FormatTraceEvents(server_.TraceSnapshot(
          r.amount != 0 ? static_cast<std::size_t>(r.amount)
                        : kDefaultTraceEvents));
      return resp;
    default:
      break;
  }
  resp.type = ResponseType::kError;
  resp.message = "unhandled command";
  return resp;
}

std::string FormatStats(const IQServer& server) {
  const IQServerStats iq = server.Stats();
  const CacheStats store = const_cast<IQServer&>(server).store().Stats();
  std::ostringstream out;
  auto stat = [&](const char* name, std::uint64_t v) {
    out << "STAT " << name << " " << v << "\r\n";
  };
  stat("gets", store.gets);
  stat("get_hits", store.get_hits);
  stat("get_misses", store.get_misses);
  stat("sets", store.sets);
  stat("deletes", store.deletes);
  stat("evictions", store.evictions);
  stat("expirations", store.expirations);
  stat("opt_hits", store.opt_hits);
  stat("opt_fallbacks", store.opt_fallbacks);
  stat("flushes", store.flushes);
  stat("bytes_used", store.bytes_used);
  stat("item_count", store.item_count);
  for (const IQStatsField& f : kIQStatsFields) stat(f.name, iq.*f.member);
  // Per-command service-time percentiles, recorded by the dispatcher.
  // Classes with no observations are omitted (a fresh server emits none).
  const StripedLatencyRecorder& lat = server.command_latencies();
  for (std::size_t cls = 0; cls < lat.num_classes(); ++cls) {
    LatencyHistogram h = lat.Merged(cls);
    if (h.Count() == 0) continue;
    std::string prefix = "cmd_";
    prefix += ToString(static_cast<CommandClass>(cls));
    stat((prefix + "_count").c_str(), h.Count());
    stat((prefix + "_mean_us").c_str(),
         static_cast<std::uint64_t>(h.MeanNanos() / kNanosPerMicro));
    stat((prefix + "_p95_us").c_str(),
         static_cast<std::uint64_t>(h.Percentile(0.95) / kNanosPerMicro));
    stat((prefix + "_p99_us").c_str(),
         static_cast<std::uint64_t>(h.Percentile(0.99) / kNanosPerMicro));
    stat((prefix + "_max_us").c_str(),
         static_cast<std::uint64_t>(h.Max() / kNanosPerMicro));
  }
  return out.str();
}

std::string FormatWindowedStats(const StatsWindowSample& sample) {
  std::ostringstream out;
  out << "STAT window_ms "
      << static_cast<std::uint64_t>(sample.seconds * 1000.0) << "\r\n";
  for (const IQStatsField& f : kIQStatsFields) {
    out << "STAT w_" << f.name << " " << sample.delta.*f.member << "\r\n";
    if (sample.seconds > 0) {
      char rate[32];
      std::snprintf(rate, sizeof rate, "%.3f",
                    static_cast<double>(sample.delta.*f.member) /
                        sample.seconds);
      out << "STAT w_" << f.name << "_per_sec " << rate << "\r\n";
    }
  }
  return out.str();
}

IQServerStats ParseIQStats(std::string_view stats_text) {
  // Names and members come straight from the canonical kIQStatsFields table
  // (core/iq_stats.h), the same one FormatStats renders from.
  IQServerStats out{};
  std::size_t pos = 0;
  while (pos < stats_text.size()) {
    std::size_t eol = stats_text.find_first_of("\r\n", pos);
    if (eol == std::string_view::npos) eol = stats_text.size();
    std::string_view line = stats_text.substr(pos, eol - pos);
    pos = stats_text.find_first_not_of("\r\n", eol);
    if (pos == std::string_view::npos) pos = stats_text.size();
    if (!line.starts_with("STAT ")) continue;
    line.remove_prefix(5);
    std::size_t space = line.find(' ');
    if (space == std::string_view::npos) continue;
    std::string_view name = line.substr(0, space);
    std::string_view value = line.substr(space + 1);
    for (const IQStatsField& f : kIQStatsFields) {
      if (name != f.name) continue;
      std::uint64_t v = 0;
      auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), v);
      if (ec == std::errc{} && p == value.data() + value.size()) out.*f.member = v;
      break;
    }
  }
  return out;
}

}  // namespace iq::net
