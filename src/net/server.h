// Server-side command dispatch: maps parsed protocol Requests onto an
// IQServer, producing protocol Responses - the request-handling loop of the
// real IQ-Twemcached, minus the sockets (see channel.h for the transport).
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "core/iq_server.h"
#include "net/protocol.h"

namespace iq::net {

/// Events returned by a bare `trace` request (no count argument).
inline constexpr std::size_t kDefaultTraceEvents = 128;

class CommandDispatcher {
 public:
  explicit CommandDispatcher(IQServer& server) : server_(server) {}

  /// Execute one request against the server, recording its service time
  /// into the server's per-command latency histograms. kQuit returns kOk;
  /// transport teardown is the channel's business.
  Response Dispatch(const Request& request);

  /// Extra "STAT name value\r\n" lines appended to every `stats` response —
  /// how a transport (e.g. TcpServer) surfaces its wire counters without
  /// the dispatcher knowing about sockets. Must be safe to call from the
  /// dispatching thread at any time.
  using StatsAugmenter = std::function<void(std::string&)>;
  void set_stats_augmenter(StatsAugmenter fn) {
    stats_augmenter_ = std::move(fn);
  }

 private:
  Response DispatchCommand(const Request& request);
  Response DispatchStorage(const Request& request);
  Response DispatchIQ(const Request& request);

  IQServer& server_;
  StatsAugmenter stats_augmenter_;
};

/// Latency-accounting class for a wire command.
CommandClass ClassOf(Command c);

/// How a request is routed in the shard-affinity (thread-per-core) server
/// mode (DESIGN.md §4.7). Classification is static per command — only
/// get/gets depend on request shape (single key vs multi-key).
enum class RouteKind {
  kKey,      // single-key data plane: execute on the key's shard owner
  kSession,  // Commit/Abort/DaR: execute on the session's home partition
  kControl,  // cross-shard aggregates (multi-key get, stats, metrics, trace,
             // sweep, flush_all): execute on the control partition (0)
  kLocal,    // shard-free (genid, quit, parse errors): execute inline
};

RouteKind RouteOf(const Request& request);

/// Render the server's statistics as memcached "STAT name value" lines:
/// the CacheStore counters, the IQ lease counters, and per-command latency
/// percentiles ("cmd_<class>_{count,mean_us,p95_us,p99_us,max_us}") for
/// every command class observed so far.
std::string FormatStats(const IQServer& server);

/// Render one StatsWindowSample as "STAT" lines: window_ms, then per IQ
/// counter the windowed delta ("w_<name>") and, when the window has width,
/// the rate ("w_<name>_per_sec", 3 decimals). The STAT-format twin of the
/// Prometheus export in net/metrics.h.
std::string FormatWindowedStats(const StatsWindowSample& sample);

/// Inverse of FormatStats for the IQ lease counters: pick the
/// "STAT <name> <value>" lines that map onto IQServerStats fields out of a
/// `stats` response body, ignoring everything else (store counters, latency
/// percentiles, wire stats). This is how a ShardedBackend aggregates a TCP
/// child's counters without the child growing a binary stats protocol.
IQServerStats ParseIQStats(std::string_view stats_text);

}  // namespace iq::net
