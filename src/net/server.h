// Server-side command dispatch: maps parsed protocol Requests onto an
// IQServer, producing protocol Responses - the request-handling loop of the
// real IQ-Twemcached, minus the sockets (see channel.h for the transport).
#pragma once

#include <string>

#include "core/iq_server.h"
#include "net/protocol.h"

namespace iq::net {

class CommandDispatcher {
 public:
  explicit CommandDispatcher(IQServer& server) : server_(server) {}

  /// Execute one request against the server. kQuit returns kOk; transport
  /// teardown is the channel's business.
  Response Dispatch(const Request& request);

 private:
  Response DispatchStorage(const Request& request);
  Response DispatchIQ(const Request& request);

  IQServer& server_;
};

/// Render the server's statistics as memcached "STAT name value" lines.
std::string FormatStats(const IQServer& server);

}  // namespace iq::net
