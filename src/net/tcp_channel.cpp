#include "net/tcp_channel.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace iq::net {

namespace {

/// Read attempts with EAGAIN before falling back to a poll() wait. The
/// server answers small requests in a few microseconds; spinning that long
/// beats eating a scheduler wakeup on every round trip. Only worth it with
/// a spare core — on a single CPU spinning just delays the server's
/// timeslice, so there reads go straight to poll.
constexpr int kReadSpins = 400;

bool SpinWorthwhile() { return std::thread::hardware_concurrency() > 1; }

void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

using TimePoint = std::chrono::steady_clock::time_point;
constexpr TimePoint kNoDeadline = TimePoint::max();

/// poll() timeout argument for `deadline`: -1 for no deadline, otherwise
/// the remaining milliseconds clamped to >= 0 (0 makes poll a non-blocking
/// check whose empty result the callers treat as expiry).
int PollTimeoutMs(TimePoint deadline) {
  if (deadline == kNoDeadline) return -1;
  auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                       deadline - std::chrono::steady_clock::now())
                       .count();
  if (remaining <= 0) return 0;
  constexpr long long kMaxPoll = 1 << 30;
  return static_cast<int>(remaining < kMaxPoll ? remaining : kMaxPoll);
}

bool Expired(TimePoint deadline) {
  return deadline != kNoDeadline &&
         std::chrono::steady_clock::now() >= deadline;
}

}  // namespace

std::unique_ptr<TcpChannel> TcpChannel::Connect(const std::string& host,
                                                std::uint16_t port,
                                                std::string* error) {
  return Connect(host, port, Options{}, error);
}

std::unique_ptr<TcpChannel> TcpChannel::Connect(const std::string& host,
                                                std::uint16_t port,
                                                const Options& options,
                                                std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    if (error != nullptr) {
      *error = "getaddrinfo " + host + ": " + gai_strerror(rc);
    }
    return nullptr;
  }
  int fd = -1;
  int last_errno = ECONNREFUSED;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    // Non-blocking from birth: the same fd state serves both the bounded
    // connect below and the spin-then-poll reads / deadline waits later.
    fd = ::socket(ai->ai_family,
                  ai->ai_socktype | SOCK_CLOEXEC | SOCK_NONBLOCK,
                  ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    if (errno == EINPROGRESS) {
      TimePoint deadline =
          options.connect_timeout_ms <= 0
              ? kNoDeadline
              : std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options.connect_timeout_ms);
      bool connected = false;
      while (true) {
        pollfd pfd{fd, POLLOUT, 0};
        int pr = ::poll(&pfd, 1, PollTimeoutMs(deadline));
        if (pr < 0 && errno == EINTR) continue;
        if (pr <= 0) {
          last_errno = ETIMEDOUT;
          break;
        }
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
        if (so_error == 0) {
          connected = true;
        } else {
          last_errno = so_error;
        }
        break;
      }
      if (connected) break;
    } else {
      last_errno = errno;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    if (error != nullptr) {
      *error =
          "connect " + host + ":" + service + ": " + std::strerror(last_errno);
    }
    return nullptr;
  }
  int on = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
  return std::unique_ptr<TcpChannel>(new TcpChannel(fd, options));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

TcpChannel::TimePoint TcpChannel::IoDeadline() const {
  return options_.io_timeout_ms <= 0
             ? kNoDeadline
             : std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(options_.io_timeout_ms);
}

bool TcpChannel::WriteAll(const char* data, std::size_t size,
                          TimePoint deadline) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t w = ::write(fd_, data + sent, size - sent);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      int pr = ::poll(&pfd, 1, PollTimeoutMs(deadline));
      if (pr < 0 && errno == EINTR) continue;
      if (pr <= 0) break;  // deadline expired (pr==0) or poll error
      continue;
    }
    break;
  }
  if (sent == size) return true;
  ::close(fd_);
  fd_ = -1;
  return false;
}

bool TcpChannel::FillReadBuffer(TimePoint deadline) {
  char buf[64 * 1024];
  int spins = SpinWorthwhile() ? kReadSpins : 0;
  while (true) {
    ssize_t r = ::read(fd_, buf, sizeof(buf));
    if (r > 0) {
      rbuf_.append(buf, static_cast<std::size_t>(r));
      return true;
    }
    if (r == 0) break;  // EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (spins-- > 0) {
        CpuRelax();
        continue;
      }
      pollfd pfd{fd_, POLLIN, 0};
      int pr = ::poll(&pfd, 1, PollTimeoutMs(deadline));
      if (pr < 0 && errno == EINTR) continue;
      if (pr <= 0) break;  // deadline expired (pr==0) or poll error
      spins = 0;  // poll said readable: retry the read
      continue;
    }
    break;
  }
  ::close(fd_);
  fd_ = -1;
  return false;
}

void TcpChannel::MarkConsumed(std::size_t n) {
  rpos_ += n;
  if (rpos_ == rbuf_.size()) {
    rbuf_.clear();
    rpos_ = 0;
  } else if (rpos_ > rbuf_.size() / 2) {
    rbuf_.erase(0, rpos_);
    rpos_ = 0;
  }
}

bool TcpChannel::RoundTrip(const std::string& request_bytes,
                           std::string* reply) {
  std::lock_guard lock(mu_);
  reply->clear();
  if (fd_ < 0) return false;
  TimePoint deadline = IoDeadline();
  // The caller may pipeline several requests into one RoundTrip (the
  // LoopbackChannel contract), so count how many responses to await.
  std::size_t expected = 0;
  {
    RequestParser counter;
    counter.Feed(request_bytes);
    Request request;
    std::string error;
    while (true) {
      auto status = counter.Next(&request, &error);
      if (status == RequestParser::Status::kNeedMore) break;
      if (status == RequestParser::Status::kOk &&
          request.command == Command::kQuit) {
        continue;  // server closes without replying
      }
      ++expected;  // kError also draws one CLIENT_ERROR response
    }
  }
  if (!WriteAll(request_bytes.data(), request_bytes.size(), deadline)) {
    return false;
  }
  for (std::size_t i = 0; i < expected;) {
    std::size_t consumed = 0;
    if (auto response = ParseResponse(Unread(), &consumed)) {
      (void)response;
      reply->append(Unread().substr(0, consumed));
      MarkConsumed(consumed);
      ++i;
      continue;
    }
    // A parse stall with buffered garbage that can never complete would
    // loop on FillReadBuffer until the deadline; the deadline is the cap.
    if (Expired(deadline)) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    if (!FillReadBuffer(deadline)) return false;
  }
  return true;
}

void TcpChannel::SendNoWait(const Request& request) {
  std::lock_guard lock(mu_);
  AppendTo(request, &wbuf_);
  if (request.command != Command::kQuit) ++outstanding_;
}

bool TcpChannel::Flush() {
  std::lock_guard lock(mu_);
  if (fd_ < 0) return false;
  if (wbuf_.empty()) return true;
  bool ok = WriteAll(wbuf_.data(), wbuf_.size(), IoDeadline());
  wbuf_.clear();
  return ok;
}

std::vector<Response> TcpChannel::Drain() {
  std::lock_guard lock(mu_);
  TimePoint deadline = IoDeadline();
  std::vector<Response> responses;
  responses.reserve(outstanding_);
  while (outstanding_ > 0) {
    std::size_t consumed = 0;
    if (auto response = ParseResponse(Unread(), &consumed)) {
      MarkConsumed(consumed);
      responses.push_back(std::move(*response));
      --outstanding_;
      continue;
    }
    if (fd_ < 0 || Expired(deadline) || !FillReadBuffer(deadline)) {
      if (fd_ >= 0 && Expired(deadline)) {
        ::close(fd_);
        fd_ = -1;
      }
      outstanding_ = 0;  // transport gone; report what we have
      break;
    }
  }
  return responses;
}

}  // namespace iq::net
