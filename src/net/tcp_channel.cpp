#include "net/tcp_channel.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace iq::net {

namespace {

/// Read attempts with EAGAIN before falling back to a blocking poll().
/// The server answers small requests in a few microseconds; spinning that
/// long beats eating a scheduler wakeup on every round trip. Only worth it
/// with a spare core — on a single CPU spinning just delays the server's
/// timeslice, so there the socket stays blocking and this path is unused.
constexpr int kReadSpins = 400;

bool SpinWorthwhile() { return std::thread::hardware_concurrency() > 1; }

void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

}  // namespace

std::unique_ptr<TcpChannel> TcpChannel::Connect(const std::string& host,
                                                std::uint16_t port,
                                                std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    if (error != nullptr) {
      *error = "getaddrinfo " + host + ": " + gai_strerror(rc);
    }
    return nullptr;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "connect " + host + ":" + service + ": " + std::strerror(errno);
    }
    return nullptr;
  }
  int on = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
  if (SpinWorthwhile()) {
    // Non-blocking + spin-then-poll reads (see FillReadBuffer).
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  }
  return std::unique_ptr<TcpChannel>(new TcpChannel(fd));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

bool TcpChannel::WriteAll(const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t w = ::write(fd_, data + sent, size - sent);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) break;
      continue;
    }
    break;
  }
  if (sent == size) return true;
  ::close(fd_);
  fd_ = -1;
  return false;
}

bool TcpChannel::FillReadBuffer() {
  char buf[64 * 1024];
  int spins = kReadSpins;
  while (true) {
    ssize_t r = ::read(fd_, buf, sizeof(buf));
    if (r > 0) {
      rbuf_.append(buf, static_cast<std::size_t>(r));
      return true;
    }
    if (r == 0) break;  // EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (spins-- > 0) {
        CpuRelax();
        continue;
      }
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) break;
      spins = 0;  // poll said readable (or EINTR): retry the read
      continue;
    }
    break;
  }
  ::close(fd_);
  fd_ = -1;
  return false;
}

void TcpChannel::MarkConsumed(std::size_t n) {
  rpos_ += n;
  if (rpos_ == rbuf_.size()) {
    rbuf_.clear();
    rpos_ = 0;
  } else if (rpos_ > rbuf_.size() / 2) {
    rbuf_.erase(0, rpos_);
    rpos_ = 0;
  }
}

std::string TcpChannel::RoundTrip(const std::string& request_bytes) {
  std::lock_guard lock(mu_);
  if (fd_ < 0) return {};
  // The caller may pipeline several requests into one RoundTrip (the
  // LoopbackChannel contract), so count how many responses to await.
  std::size_t expected = 0;
  {
    RequestParser counter;
    counter.Feed(request_bytes);
    Request request;
    std::string error;
    while (true) {
      auto status = counter.Next(&request, &error);
      if (status == RequestParser::Status::kNeedMore) break;
      if (status == RequestParser::Status::kOk &&
          request.command == Command::kQuit) {
        continue;  // server closes without replying
      }
      ++expected;  // kError also draws one CLIENT_ERROR response
    }
  }
  if (!WriteAll(request_bytes.data(), request_bytes.size())) return {};
  std::string reply;
  for (std::size_t i = 0; i < expected;) {
    std::size_t consumed = 0;
    if (auto response = ParseResponse(Unread(), &consumed)) {
      (void)response;
      reply.append(Unread().substr(0, consumed));
      MarkConsumed(consumed);
      ++i;
      continue;
    }
    if (!FillReadBuffer()) break;
  }
  return reply;
}

void TcpChannel::SendNoWait(const Request& request) {
  std::lock_guard lock(mu_);
  AppendTo(request, &wbuf_);
  if (request.command != Command::kQuit) ++outstanding_;
}

bool TcpChannel::Flush() {
  std::lock_guard lock(mu_);
  if (fd_ < 0) return false;
  if (wbuf_.empty()) return true;
  bool ok = WriteAll(wbuf_.data(), wbuf_.size());
  wbuf_.clear();
  return ok;
}

std::vector<Response> TcpChannel::Drain() {
  std::lock_guard lock(mu_);
  std::vector<Response> responses;
  responses.reserve(outstanding_);
  while (outstanding_ > 0) {
    std::size_t consumed = 0;
    if (auto response = ParseResponse(Unread(), &consumed)) {
      MarkConsumed(consumed);
      responses.push_back(std::move(*response));
      --outstanding_;
      continue;
    }
    if (fd_ < 0 || !FillReadBuffer()) {
      outstanding_ = 0;  // transport gone; report what we have
      break;
    }
  }
  return responses;
}

}  // namespace iq::net
