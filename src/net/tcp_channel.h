// Client side of the TCP transport.
//
// TcpChannel is the socket twin of LoopbackChannel: RoundTrip() gives the
// one-outstanding-request behavior RemoteCacheClient expects. On top of
// that it implements the PipelinedChannel batching API — queue N requests
// with SendNoWait (serialized back-to-back into one reused buffer), push
// them over the socket with a single write() via Flush, then Drain the N
// responses from as few read()s as the kernel allows. Pipelining amortizes
// the per-round-trip syscall + wakeup cost, which is the whole ballgame for
// small memcached-style requests (see bench/bench_net.cpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/channel.h"
#include "net/protocol.h"

namespace iq::net {

/// A Channel that can additionally batch requests: send without waiting,
/// flush the batch in one write, and drain all outstanding responses.
/// Responses come back in request order (the server never reorders).
class PipelinedChannel : public Channel {
 public:
  /// Queue one request locally (no I/O). `quit` expects no response and is
  /// excluded from the outstanding count.
  virtual void SendNoWait(const Request& request) = 0;

  /// Write every queued request to the transport. False on transport error.
  virtual bool Flush() = 0;

  /// Block until every outstanding response has arrived; returns them in
  /// request order. A transport error / EOF cuts the vector short.
  virtual std::vector<Response> Drain() = 0;
};

class TcpChannel final : public PipelinedChannel {
 public:
  /// Deadlines. Before these existed every wait was `poll(…, -1)`: a wedged
  /// server (accepts but never replies) hung the client forever. A deadline
  /// expiry closes the connection and fails the operation — the caller sees
  /// a transport error, never a fabricated response.
  struct Options {
    int connect_timeout_ms = 5000;  // per address attempt; <= 0 waits forever
    int io_timeout_ms = 10000;      // per RoundTrip/Flush/Drain; <= 0 forever
  };

  /// Connect to host:port (IPv4 dotted quad or name resolvable by
  /// getaddrinfo), bounded by options.connect_timeout_ms. TCP_NODELAY is
  /// set: the pipelining layer does its own batching, so Nagle only adds
  /// latency. Returns nullptr with *error set on failure.
  static std::unique_ptr<TcpChannel> Connect(const std::string& host,
                                             std::uint16_t port,
                                             std::string* error = nullptr);
  static std::unique_ptr<TcpChannel> Connect(const std::string& host,
                                             std::uint16_t port,
                                             const Options& options,
                                             std::string* error = nullptr);

  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  /// One-outstanding-request mode: writes `request_bytes`, blocks (at most
  /// io_timeout_ms) until the matching response(s) arrive in *reply, raw.
  /// The bytes may carry several pipelined requests; one response is awaited
  /// per parsed request (quit expects none and closes the connection
  /// server-side). False on transport failure or deadline expiry — the
  /// connection is then closed (the stream can no longer be trusted).
  bool RoundTrip(const std::string& request_bytes,
                 std::string* reply) override;

  void SendNoWait(const Request& request) override;
  bool Flush() override;
  std::vector<Response> Drain() override;

  bool connected() const { return fd_ >= 0; }

 private:
  /// Absolute steady-clock deadline for one operation; max() = no deadline.
  using TimePoint = std::chrono::steady_clock::time_point;

  TcpChannel(int fd, const Options& options) : fd_(fd), options_(options) {}

  bool WriteAll(const char* data, std::size_t size, TimePoint deadline);
  /// One read() appended to rbuf_ (spin-then-poll up to `deadline`). False
  /// on EOF, error, or deadline expiry.
  bool FillReadBuffer(TimePoint deadline);
  /// Bytes of rbuf_ not yet consumed by a parsed response.
  std::string_view Unread() const {
    return std::string_view(rbuf_).substr(rpos_);
  }
  void MarkConsumed(std::size_t n);
  TimePoint IoDeadline() const;

  int fd_ = -1;
  Options options_;
  std::string wbuf_;        // queued requests awaiting Flush
  std::size_t outstanding_ = 0;
  std::string rbuf_;        // received bytes awaiting parse
  std::size_t rpos_ = 0;
  std::mutex mu_;  // one in-flight operation per channel, like Loopback
};

}  // namespace iq::net
