#include "net/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sched.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "net/protocol.h"

namespace iq::net {

// One accepted socket, owned by exactly one worker. The parser holds the
// unconsumed request bytes; `out` holds the unsent response bytes (reused
// across requests, compacted only when fully drained).
struct TcpServer::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  int fd;
  RequestParser parser;
  std::string out;
  std::size_t out_pos = 0;
  bool want_write = false;  // EPOLLOUT currently registered
  bool want_read = true;    // EPOLLIN currently registered
  bool closing = false;     // quit seen / fatal error: flush, then close

  std::size_t out_backlog() const { return out.size() - out_pos; }
};

struct alignas(64) TcpServer::Worker {
  explicit Worker(IQServer& server) : dispatcher(server) {}

  int epoll_fd = -1;
  int wake_fd = -1;  // eventfd: shutdown + connection-handoff wakeups
  std::thread thread;
  CommandDispatcher dispatcher;
  std::unordered_map<int, std::unique_ptr<Connection>> conns;

  // Mailbox for connections accepted by worker 0 on this worker's behalf.
  std::mutex handoff_mu;
  std::vector<int> handoff;

  // fds unregistered this epoll batch; the close() is deferred until the
  // batch ends so the kernel cannot recycle the number for an accept4()
  // earlier in the same batch — a stale queued event would then pass the
  // conns.find() check and be applied to the wrong (new) connection.
  std::vector<int> pending_close;

  // Wire counters: relaxed atomics in a worker-private cache line, summed
  // lock-free by Stats() — the IQShardStats discipline.
  std::atomic<std::uint64_t> conn_accepted{0};
  std::atomic<std::uint64_t> conn_active{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> bytes_written{0};
  std::atomic<std::uint64_t> requests{0};
};

namespace {

void AddEpoll(int epoll_fd, int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
}

void WakeWorker(int wake_fd) {
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
}

}  // namespace

TcpServer::TcpServer(IQServer& server, Config config)
    : server_(server), config_(std::move(config)) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.spin_polls < 0) {
    config_.spin_polls =
        std::thread::hardware_concurrency() > 1 ? 400 : 0;
  }
}

TcpServer::~TcpServer() { Stop(); }

bool TcpServer::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    for (auto& w : workers_) {
      if (w->wake_fd >= 0) ::close(w->wake_fd);
      if (w->epoll_fd >= 0) ::close(w->epoll_fd);
    }
    workers_.clear();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  int on = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 128) < 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    auto w = std::make_unique<Worker>(server_);
    w->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    w->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w->epoll_fd < 0 || w->wake_fd < 0) return fail("epoll/eventfd");
    AddEpoll(w->epoll_fd, w->wake_fd, EPOLLIN);
    w->dispatcher.set_stats_augmenter(
        [this](std::string& out) { AppendWireStats(out); });
    workers_.push_back(std::move(w));
  }
  // Only worker 0 watches the listener; it distributes accepted sockets
  // round-robin, so there is no accept thundering herd across epolls.
  AddEpoll(workers_[0]->epoll_fd, listen_fd_, EPOLLIN);

  running_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { WorkerLoop(*worker); });
  }
  return true;
}

void TcpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started (or already stopped): still release any bound listener.
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  for (auto& w : workers_) WakeWorker(w->wake_fd);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  for (auto& w : workers_) {
    for (auto& [fd, conn] : w->conns) ::close(fd);
    w->conns.clear();
    // Connections handed off but never adopted.
    for (int fd : w->handoff) ::close(fd);
    w->handoff.clear();
    ::close(w->wake_fd);
    ::close(w->epoll_fd);
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

TcpServerStats TcpServer::Stats() const {
  TcpServerStats total;
  for (const auto& w : workers_) {
    total.conn_accepted += w->conn_accepted.load(std::memory_order_relaxed);
    total.conn_active += w->conn_active.load(std::memory_order_relaxed);
    total.bytes_read += w->bytes_read.load(std::memory_order_relaxed);
    total.bytes_written += w->bytes_written.load(std::memory_order_relaxed);
    total.requests += w->requests.load(std::memory_order_relaxed);
  }
  return total;
}

void TcpServer::AppendWireStats(std::string& out) const {
  TcpServerStats s = Stats();
  auto stat = [&out](const char* name, std::uint64_t v) {
    out += "STAT ";
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += "\r\n";
  };
  stat("conn_accepted", s.conn_accepted);
  stat("conn_active", s.conn_active);
  stat("bytes_read", s.bytes_read);
  stat("bytes_written", s.bytes_written);
  stat("net_requests", s.requests);
}

void TcpServer::WorkerLoop(Worker& worker) {
  // SCHED_BATCH turns off wakeup preemption for this thread: on a busy
  // host, synchronous clients get to finish their timeslice and several
  // requests pile up per epoll wakeup instead of the worker preempting the
  // first writer immediately. Unprivileged; ignore failure (non-Linux CI).
  sched_param sp{};
  (void)::sched_setscheduler(0, SCHED_BATCH, &sp);
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  int spin_left = 0;  // zero-timeout polls remaining before we block
  while (running_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(worker.epoll_fd, events, kMaxEvents,
                         spin_left > 0 ? 0 : -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      --spin_left;
      continue;
    }
    spin_left = config_.spin_polls;  // activity: stay hot for a bit
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == worker.wake_fd) {
        std::uint64_t drained;
        while (::read(worker.wake_fd, &drained, sizeof(drained)) > 0) {
        }
        AdoptPending(worker);
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady(worker);
        continue;
      }
      auto it = worker.conns.find(fd);
      if (it == worker.conns.end()) continue;  // closed earlier this batch
      HandleEvent(worker, *it->second, events[i].events);
    }
    // Now that no stale event from this batch can alias a recycled fd,
    // release the numbers (see Worker::pending_close).
    for (int fd : worker.pending_close) ::close(fd);
    worker.pending_close.clear();
  }
  for (int fd : worker.pending_close) ::close(fd);
  worker.pending_close.clear();
  for (auto& [fd, conn] : worker.conns) ::close(fd);
  worker.conns.clear();
}

void TcpServer::AcceptReady(Worker& w0) {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or the listener went away during shutdown
    }
    int on = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
    Worker& target = *workers_[next_worker_++ % workers_.size()];
    target.conn_accepted.fetch_add(1, std::memory_order_relaxed);
    if (&target == &w0) {
      AdoptConnection(w0, fd);
    } else {
      {
        std::lock_guard lock(target.handoff_mu);
        target.handoff.push_back(fd);
      }
      WakeWorker(target.wake_fd);
    }
  }
}

void TcpServer::AdoptPending(Worker& worker) {
  std::vector<int> fds;
  {
    std::lock_guard lock(worker.handoff_mu);
    fds.swap(worker.handoff);
  }
  for (int fd : fds) AdoptConnection(worker, fd);
}

void TcpServer::AdoptConnection(Worker& worker, int fd) {
  worker.conn_active.fetch_add(1, std::memory_order_relaxed);
  worker.conns.emplace(fd, std::make_unique<Connection>(fd));
  AddEpoll(worker.epoll_fd, fd, EPOLLIN);
}

void TcpServer::HandleEvent(Worker& worker, Connection& conn,
                            std::uint32_t events) {
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConnection(worker, conn);
    return;
  }
  bool peer_closed = false;
  if ((events & EPOLLIN) != 0) {
    char buf[64 * 1024];
    while (true) {
      ssize_t r = ::read(conn.fd, buf, sizeof(buf));
      if (r > 0) {
        worker.bytes_read.fetch_add(static_cast<std::uint64_t>(r),
                                    std::memory_order_relaxed);
        conn.parser.Feed(std::string_view(buf, static_cast<std::size_t>(r)));
        if (static_cast<std::size_t>(r) < sizeof(buf)) break;
        continue;
      }
      if (r == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      peer_closed = true;
      break;
    }
  }
  // Alternate draining and flushing until neither makes progress: a flush
  // that brings the output backlog back under max_response_bytes re-opens
  // DrainRequests, which must then run again for the requests that were
  // parked in the parser during backpressure (no further event would
  // deliver them if the client has nothing more to send).
  while (true) {
    std::size_t buffered_before = conn.parser.buffered();
    std::size_t backlog_before = conn.out_backlog();
    DrainRequests(worker, conn);
    FlushOutput(worker, conn);
    if (conn.parser.buffered() == buffered_before &&
        conn.out_backlog() == backlog_before) {
      break;
    }
  }
  if (peer_closed || (conn.closing && conn.out_pos == conn.out.size())) {
    CloseConnection(worker, conn);
    return;
  }
  UpdateInterest(worker, conn);
}

void TcpServer::DrainRequests(Worker& worker, Connection& conn) {
  Request request;
  std::string error;
  while (!conn.closing) {
    if (conn.out_backlog() > config_.max_response_bytes) return;
    auto status = conn.parser.Next(&request, &error);
    if (status == RequestParser::Status::kNeedMore) break;
    if (status == RequestParser::Status::kError) {
      Response err;
      err.type = ResponseType::kError;
      err.message = error;
      AppendTo(err, &conn.out);
      continue;  // parser resynced past the bad line; keep the connection
    }
    worker.requests.fetch_add(1, std::memory_order_relaxed);
    if (request.command == Command::kQuit) {
      // memcached closes without a reply; flush what's pending first.
      conn.closing = true;
      break;
    }
    AppendTo(worker.dispatcher.Dispatch(request), &conn.out);
  }
  if (!conn.closing && conn.parser.buffered() > config_.max_request_bytes) {
    Response err;
    err.type = ResponseType::kError;
    err.message = "request exceeds server limit";
    AppendTo(err, &conn.out);
    conn.closing = true;
  }
}

void TcpServer::FlushOutput(Worker& worker, Connection& conn) {
  while (conn.out_pos < conn.out.size()) {
    ssize_t w = ::write(conn.fd, conn.out.data() + conn.out_pos,
                        conn.out.size() - conn.out_pos);
    if (w > 0) {
      worker.bytes_written.fetch_add(static_cast<std::uint64_t>(w),
                                     std::memory_order_relaxed);
      conn.out_pos += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Partial flush: drop the sent prefix once it dominates the buffer,
      // so a persistently slow reader holds out.size() near its backlog
      // (which DrainRequests caps) instead of the whole session's volume.
      if (conn.out_pos > conn.out.size() / 2) {
        conn.out.erase(0, conn.out_pos);
        conn.out_pos = 0;
      }
      return;
    }
    // Peer is gone; drop what's left so the close path runs.
    conn.out_pos = conn.out.size();
    conn.closing = true;
    return;
  }
  conn.out.clear();
  conn.out_pos = 0;
}

void TcpServer::UpdateInterest(Worker& worker, Connection& conn) {
  bool want_write = conn.out_pos < conn.out.size();
  // Backpressure: while the peer isn't consuming responses, stop reading
  // too (level-triggered EPOLLIN would otherwise spin); its sends then back
  // up into TCP flow control instead of this worker's memory.
  bool want_read =
      !conn.closing && conn.out_backlog() <= config_.max_response_bytes;
  if (want_write == conn.want_write && want_read == conn.want_read) return;
  conn.want_write = want_write;
  conn.want_read = want_read;
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void TcpServer::CloseConnection(Worker& worker, Connection& conn) {
  int fd = conn.fd;
  ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  worker.conns.erase(fd);  // destroys conn
  worker.pending_close.push_back(fd);  // close()d at end of batch
  worker.conn_active.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace iq::net
