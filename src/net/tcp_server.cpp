#include "net/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <pthread.h>
#include <sched.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "net/protocol.h"

namespace iq::net {

// One accepted socket, owned by exactly one worker. The parser holds the
// unconsumed request bytes; `out` holds the unsent response bytes (reused
// across requests, compacted only when fully drained).
//
// Affinity mode adds ordered response slots: a forwarded request reserves
// an empty slot, its completion fills it, and FlushOutput writev()s the
// contiguous completed prefix. `out` always holds responses ordered BEFORE
// every slot; once any slot exists, inline responses append as already-
// completed slots so pipelined order is preserved, and the connection
// reverts to the plain `out` path when the deque drains.
struct TcpServer::Connection {
  Connection(int fd_in, std::uint64_t id_in) : fd(fd_in), id(id_in) {}
  int fd;
  std::uint64_t id;  // process-unique; cross-core completions address this
  RequestParser parser;
  std::string out;
  std::size_t out_pos = 0;
  bool want_write = false;  // EPOLLOUT currently registered
  bool want_read = true;    // EPOLLIN currently registered
  bool closing = false;     // quit seen / fatal error: flush, then close

  struct Slot {
    bool done = false;
    std::string text;
  };
  std::deque<Slot> slots;
  std::size_t slot_bytes = 0;       // unwritten bytes across completed slots
  std::size_t front_pos = 0;        // written prefix of slots.front()
  std::size_t slots_inflight = 0;   // forwarded, completion not delivered
  std::uint64_t next_slot_seq = 0;  // seq of the next slot to append
  std::uint64_t head_slot_seq = 0;  // seq of slots.front()

  std::size_t out_backlog() const { return (out.size() - out_pos) + slot_bytes; }
  /// True when FlushOutput could make progress right now (the backlog's
  /// leading edge is writable bytes, not a still-in-flight slot).
  bool flushable() const {
    return out_pos < out.size() || (!slots.empty() && slots.front().done);
  }
};

/// A request crossing cores: executed by the shard owner, answered back to
/// the origin worker's mailbox.
struct TcpServer::CrossOp {
  std::size_t origin;     // worker index the completion goes back to
  std::uint64_t conn_id;
  std::uint64_t slot_seq;
  Request request;
};

struct TcpServer::CrossDone {
  std::uint64_t conn_id;
  std::uint64_t slot_seq;
  std::string text;  // serialized response bytes
};

struct alignas(64) TcpServer::Worker {
  Worker(IQServer& server, std::size_t index_in)
      : index(index_in), dispatcher(server) {}

  std::size_t index;
  int epoll_fd = -1;
  int wake_fd = -1;  // eventfd: shutdown + handoff + cross-core wakeups
  std::thread thread;
  CommandDispatcher dispatcher;
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
  /// Affinity completions address connections by id (never by fd, which
  /// the kernel recycles); maintained alongside `conns`.
  std::unordered_map<std::uint64_t, Connection*> conns_by_id;

  // Mailbox for connections accepted by worker 0 on this worker's behalf.
  std::mutex handoff_mu;
  std::vector<int> handoff;
  /// Accepted-but-not-yet-adopted connections, counted into the least-
  /// loaded accept decision so a burst of accepts doesn't all land here.
  std::atomic<std::uint32_t> handoff_pending{0};

  // Cross-core mailbox (affinity mode): requests for shards this worker
  // owns, and completions for requests this worker forwarded. One mutex
  // guards both vectors; each is swapped out wholesale under it, so the
  // critical sections stay a few pointer moves long.
  std::mutex mail_mu;
  std::vector<CrossOp> mail_ops;
  std::vector<CrossDone> mail_done;

  // fds unregistered this epoll batch; the close() is deferred until the
  // batch ends so the kernel cannot recycle the number for an accept4()
  // earlier in the same batch — a stale queued event would then pass the
  // conns.find() check and be applied to the wrong (new) connection.
  std::vector<int> pending_close;

  // Wire counters: relaxed atomics in a worker-private cache line, summed
  // lock-free by Stats() — the IQShardStats discipline.
  std::atomic<std::uint64_t> conn_accepted{0};
  std::atomic<std::uint64_t> conn_active{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> bytes_written{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> affinity_forwards{0};
  std::atomic<std::uint64_t> affinity_inline{0};
  std::atomic<std::uint64_t> affinity_fallbacks{0};
};

namespace {

void AddEpoll(int epoll_fd, int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
}

void WakeWorker(int wake_fd) {
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
}

/// iovecs gathered per writev: the `out` remainder plus up to this many
/// completed slots. Well under IOV_MAX everywhere.
constexpr int kMaxIov = 64;

}  // namespace

TcpServer::TcpServer(IQServer& server, Config config)
    : server_(server),
      config_(std::move(config)),
      partition_(server.store().shard_count(),
                 config_.workers < 1 ? 1
                                     : static_cast<std::size_t>(config_.workers)) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.mailbox_capacity < 1) config_.mailbox_capacity = 1;
  if (config_.max_inflight_per_conn < 1) config_.max_inflight_per_conn = 1;
  if (config_.spin_polls < 0) {
    config_.spin_polls =
        std::thread::hardware_concurrency() > 1 ? 400 : 0;
  }
}

TcpServer::~TcpServer() { Stop(); }

bool TcpServer::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    for (auto& w : workers_) {
      if (w->wake_fd >= 0) ::close(w->wake_fd);
      if (w->epoll_fd >= 0) ::close(w->epoll_fd);
    }
    workers_.clear();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  int on = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 128) < 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    auto w = std::make_unique<Worker>(server_, static_cast<std::size_t>(i));
    w->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    w->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w->epoll_fd < 0 || w->wake_fd < 0) return fail("epoll/eventfd");
    AddEpoll(w->epoll_fd, w->wake_fd, EPOLLIN);
    w->dispatcher.set_stats_augmenter(
        [this](std::string& out) { AppendWireStats(out); });
    workers_.push_back(std::move(w));
  }
  // Only worker 0 watches the listener; it distributes accepted sockets
  // least-loaded-first, so there is no accept thundering herd across epolls.
  AddEpoll(workers_[0]->epoll_fd, listen_fd_, EPOLLIN);

  running_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { WorkerLoop(*worker); });
  }
  return true;
}

void TcpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started (or already stopped): still release any bound listener.
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  for (auto& w : workers_) WakeWorker(w->wake_fd);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  for (auto& w : workers_) {
    for (auto& [fd, conn] : w->conns) ::close(fd);
    w->conns.clear();
    w->conns_by_id.clear();
    // Connections handed off but never adopted.
    for (int fd : w->handoff) ::close(fd);
    w->handoff.clear();
    ::close(w->wake_fd);
    ::close(w->epoll_fd);
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

TcpServerStats TcpServer::Stats() const {
  TcpServerStats total;
  for (const auto& w : workers_) {
    total.conn_accepted += w->conn_accepted.load(std::memory_order_relaxed);
    total.conn_active += w->conn_active.load(std::memory_order_relaxed);
    total.bytes_read += w->bytes_read.load(std::memory_order_relaxed);
    total.bytes_written += w->bytes_written.load(std::memory_order_relaxed);
    total.requests += w->requests.load(std::memory_order_relaxed);
    total.affinity_forwards +=
        w->affinity_forwards.load(std::memory_order_relaxed);
    total.affinity_inline += w->affinity_inline.load(std::memory_order_relaxed);
    total.affinity_fallbacks +=
        w->affinity_fallbacks.load(std::memory_order_relaxed);
  }
  return total;
}

void TcpServer::AppendWireStats(std::string& out) const {
  TcpServerStats s = Stats();
  auto stat = [&out](const char* name, std::uint64_t v) {
    out += "STAT ";
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += "\r\n";
  };
  stat("conn_accepted", s.conn_accepted);
  stat("conn_active", s.conn_active);
  stat("bytes_read", s.bytes_read);
  stat("bytes_written", s.bytes_written);
  stat("net_requests", s.requests);
  stat("affinity_mode", config_.affinity ? 1 : 0);
  stat("affinity_forwards", s.affinity_forwards);
  stat("affinity_inline", s.affinity_inline);
  stat("affinity_fallbacks", s.affinity_fallbacks);
}

void TcpServer::WorkerLoop(Worker& worker) {
  if (config_.pin_cores) {
    unsigned ncpu = std::thread::hardware_concurrency();
    if (ncpu > 0) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<unsigned>(worker.index) % ncpu, &set);
      (void)::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set);
    }
  }
  // SCHED_BATCH turns off wakeup preemption for this thread: on a busy
  // host, synchronous clients get to finish their timeslice and several
  // requests pile up per epoll wakeup instead of the worker preempting the
  // first writer immediately. Unprivileged; ignore failure (non-Linux CI).
  sched_param sp{};
  (void)::sched_setscheduler(0, SCHED_BATCH, &sp);
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  int spin_left = 0;  // zero-timeout polls remaining before we block
  while (running_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(worker.epoll_fd, events, kMaxEvents,
                         spin_left > 0 ? 0 : -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      --spin_left;
      continue;
    }
    spin_left = config_.spin_polls;  // activity: stay hot for a bit
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == worker.wake_fd) {
        std::uint64_t drained;
        while (::read(worker.wake_fd, &drained, sizeof(drained)) > 0) {
        }
        AdoptPending(worker);
        if (config_.affinity) {
          ExecuteCrossOps(worker);
          DeliverCompletions(worker);
        }
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady(worker);
        continue;
      }
      auto it = worker.conns.find(fd);
      if (it == worker.conns.end()) continue;  // closed earlier this batch
      HandleEvent(worker, *it->second, events[i].events);
    }
    // Now that no stale event from this batch can alias a recycled fd,
    // release the numbers (see Worker::pending_close).
    for (int fd : worker.pending_close) ::close(fd);
    worker.pending_close.clear();
  }
  for (int fd : worker.pending_close) ::close(fd);
  worker.pending_close.clear();
  for (auto& [fd, conn] : worker.conns) ::close(fd);
  worker.conns.clear();
  worker.conns_by_id.clear();
}

void TcpServer::AcceptReady(Worker& w0) {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or the listener went away during shutdown
    }
    int on = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
    // Least-loaded handoff: a long-lived connection (an iqbench worker, a
    // casql pool member) parks on its worker forever, so blind round-robin
    // slowly piles persistent connections onto whichever worker the cursor
    // favored. Pick the worker with the fewest live + pending connections;
    // the rotating scan start spreads ties instead of biasing worker 0.
    std::size_t n = workers_.size();
    std::size_t best = accept_rotor_ % n;
    std::uint64_t best_load = ~std::uint64_t{0};
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t idx = (accept_rotor_ + i) % n;
      Worker& w = *workers_[idx];
      std::uint64_t load = w.conn_active.load(std::memory_order_relaxed) +
                           w.handoff_pending.load(std::memory_order_relaxed);
      if (load < best_load) {
        best_load = load;
        best = idx;
      }
    }
    ++accept_rotor_;
    Worker& target = *workers_[best];
    target.conn_accepted.fetch_add(1, std::memory_order_relaxed);
    if (&target == &w0) {
      AdoptConnection(w0, fd);
    } else {
      target.handoff_pending.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard lock(target.handoff_mu);
        target.handoff.push_back(fd);
      }
      WakeWorker(target.wake_fd);
    }
  }
}

void TcpServer::AdoptPending(Worker& worker) {
  std::vector<int> fds;
  {
    std::lock_guard lock(worker.handoff_mu);
    fds.swap(worker.handoff);
  }
  for (int fd : fds) {
    worker.handoff_pending.fetch_sub(1, std::memory_order_relaxed);
    AdoptConnection(worker, fd);
  }
}

void TcpServer::AdoptConnection(Worker& worker, int fd) {
  worker.conn_active.fetch_add(1, std::memory_order_relaxed);
  auto conn = std::make_unique<Connection>(
      fd, next_conn_id_.fetch_add(1, std::memory_order_relaxed));
  worker.conns_by_id.emplace(conn->id, conn.get());
  worker.conns.emplace(fd, std::move(conn));
  AddEpoll(worker.epoll_fd, fd, EPOLLIN);
}

void TcpServer::HandleEvent(Worker& worker, Connection& conn,
                            std::uint32_t events) {
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConnection(worker, conn);
    return;
  }
  bool peer_closed = false;
  if ((events & EPOLLIN) != 0) {
    char buf[64 * 1024];
    while (true) {
      ssize_t r = ::read(conn.fd, buf, sizeof(buf));
      if (r > 0) {
        worker.bytes_read.fetch_add(static_cast<std::uint64_t>(r),
                                    std::memory_order_relaxed);
        conn.parser.Feed(std::string_view(buf, static_cast<std::size_t>(r)));
        if (static_cast<std::size_t>(r) < sizeof(buf)) break;
        continue;
      }
      if (r == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      peer_closed = true;
      break;
    }
  }
  PumpConnection(worker, conn, peer_closed);
}

void TcpServer::PumpConnection(Worker& worker, Connection& conn,
                               bool peer_closed) {
  // Alternate draining and flushing until neither makes progress: a flush
  // that brings the output backlog back under max_response_bytes re-opens
  // DrainRequests, which must then run again for the requests that were
  // parked in the parser during backpressure (no further event would
  // deliver them if the client has nothing more to send). Forwarded
  // requests park the same way; a delivered completion re-enters here.
  while (true) {
    std::size_t buffered_before = conn.parser.buffered();
    std::size_t backlog_before = conn.out_backlog();
    DrainRequests(worker, conn);
    FlushOutput(worker, conn);
    if (conn.parser.buffered() == buffered_before &&
        conn.out_backlog() == backlog_before) {
      break;
    }
  }
  // A closing connection lingers until every reserved slot has completed
  // and flushed — quit after a pipelined cross-shard batch still answers
  // the whole batch before the FIN.
  if (peer_closed ||
      (conn.closing && conn.out_pos == conn.out.size() && conn.slots.empty())) {
    CloseConnection(worker, conn);
    return;
  }
  UpdateInterest(worker, conn);
}

std::size_t TcpServer::TargetWorker(const Worker& worker,
                                    const Request& request) const {
  switch (RouteOf(request)) {
    case RouteKind::kKey:
      return partition_.OwnerOfHash(CacheStore::HashKey(request.key));
    case RouteKind::kSession:
      return partition_.HomeOfSession(request.session);
    case RouteKind::kControl:
      // Cross-shard aggregates funnel through one partition so their
      // whole-store lock sweeps serialize there instead of interleaving
      // from every core at once.
      return 0;
    case RouteKind::kLocal:
      break;
  }
  return worker.index;
}

bool TcpServer::TryForward(Worker& worker, Connection& conn, std::size_t target,
                           Request&& request) {
  Worker& t = *workers_[target];
  {
    std::lock_guard lock(t.mail_mu);
    if (t.mail_ops.size() >= config_.mailbox_capacity) return false;
    t.mail_ops.push_back(
        CrossOp{worker.index, conn.id, conn.next_slot_seq, std::move(request)});
  }
  // Reserve the response position. Only this worker's thread delivers
  // completions to this connection, so the slot is guaranteed to exist
  // before the completion can be applied even if the owner executes first.
  conn.slots.emplace_back();
  ++conn.next_slot_seq;
  ++conn.slots_inflight;
  worker.affinity_forwards.fetch_add(1, std::memory_order_relaxed);
  WakeWorker(t.wake_fd);
  return true;
}

void TcpServer::ExecuteCrossOps(Worker& worker) {
  std::vector<CrossOp> ops;
  {
    std::lock_guard lock(worker.mail_mu);
    ops.swap(worker.mail_ops);
  }
  if (ops.empty()) return;
  // Execute against this worker's own shards, then batch the completions
  // per origin so each origin pays one lock + one eventfd wakeup per batch.
  std::vector<std::vector<CrossDone>> by_origin(workers_.size());
  for (CrossOp& op : ops) {
    CrossDone done;
    done.conn_id = op.conn_id;
    done.slot_seq = op.slot_seq;
    AppendTo(worker.dispatcher.Dispatch(op.request), &done.text);
    by_origin[op.origin].push_back(std::move(done));
  }
  for (std::size_t i = 0; i < by_origin.size(); ++i) {
    if (by_origin[i].empty()) continue;
    Worker& origin = *workers_[i];
    {
      std::lock_guard lock(origin.mail_mu);
      for (CrossDone& d : by_origin[i]) origin.mail_done.push_back(std::move(d));
    }
    WakeWorker(origin.wake_fd);
  }
}

void TcpServer::DeliverCompletions(Worker& worker) {
  std::vector<CrossDone> done;
  {
    std::lock_guard lock(worker.mail_mu);
    done.swap(worker.mail_done);
  }
  if (done.empty()) return;
  std::vector<std::uint64_t> touched;
  for (CrossDone& d : done) {
    auto it = worker.conns_by_id.find(d.conn_id);
    if (it == worker.conns_by_id.end()) continue;  // connection died
    Connection& conn = *it->second;
    if (d.slot_seq < conn.head_slot_seq) continue;  // slot already dropped
    std::size_t idx = static_cast<std::size_t>(d.slot_seq - conn.head_slot_seq);
    if (idx >= conn.slots.size()) continue;
    Connection::Slot& slot = conn.slots[idx];
    if (slot.done) continue;
    slot.done = true;
    slot.text = std::move(d.text);
    conn.slot_bytes += slot.text.size();
    --conn.slots_inflight;
    if (std::find(touched.begin(), touched.end(), d.conn_id) == touched.end()) {
      touched.push_back(d.conn_id);
    }
  }
  for (std::uint64_t id : touched) {
    auto it = worker.conns_by_id.find(id);  // re-lookup: a pump can close
    if (it == worker.conns_by_id.end()) continue;
    PumpConnection(worker, *it->second);
  }
}

void TcpServer::DrainRequests(Worker& worker, Connection& conn) {
  // Responses append straight to `out` until a forwarded request reserves
  // a slot; from then on they append as completed slots, keeping pipelined
  // order across the inline/forwarded interleave.
  auto emit = [&conn](const Response& resp) {
    if (conn.slots.empty()) {
      AppendTo(resp, &conn.out);
      return;
    }
    Connection::Slot slot;
    slot.done = true;
    AppendTo(resp, &slot.text);
    conn.slot_bytes += slot.text.size();
    conn.slots.push_back(std::move(slot));
    ++conn.next_slot_seq;
  };

  Request request;
  std::string error;
  while (!conn.closing) {
    if (conn.out_backlog() > config_.max_response_bytes) return;
    if (conn.slots_inflight >= config_.max_inflight_per_conn) return;
    auto status = conn.parser.Next(&request, &error);
    if (status == RequestParser::Status::kNeedMore) break;
    if (status == RequestParser::Status::kError) {
      Response err;
      err.type = ResponseType::kError;
      err.message = error;
      emit(err);
      continue;  // parser resynced past the bad line; keep the connection
    }
    worker.requests.fetch_add(1, std::memory_order_relaxed);
    if (request.command == Command::kQuit) {
      // memcached closes without a reply; flush what's pending first.
      conn.closing = true;
      break;
    }
    if (config_.affinity) {
      std::size_t target = TargetWorker(worker, request);
      if (target != worker.index) {
        if (TryForward(worker, conn, target, std::move(request))) continue;
        // Owner's mailbox is full: execute inline anyway. Correct — the
        // shard mutexes still serialize per key — just not core-local.
        worker.affinity_fallbacks.fetch_add(1, std::memory_order_relaxed);
      } else {
        worker.affinity_inline.fetch_add(1, std::memory_order_relaxed);
      }
    }
    emit(worker.dispatcher.Dispatch(request));
  }
  // The oversized-request guard only applies when nothing is parked behind
  // a forwarded request: with completions pending, `buffered()` can hold
  // many complete-but-deferred requests, which is backpressure, not abuse.
  if (!conn.closing && conn.slots_inflight == 0 &&
      conn.parser.buffered() > config_.max_request_bytes) {
    Response err;
    err.type = ResponseType::kError;
    err.message = "request exceeds server limit";
    emit(err);
    conn.closing = true;
  }
}

void TcpServer::FlushOutput(Worker& worker, Connection& conn) {
  while (true) {
    // Gather the `out` remainder plus the contiguous completed-slot prefix
    // into one writev: a pipelined drain's responses — wherever they were
    // produced — leave in a single syscall, and forwarded responses are
    // written from their slot without ever being copied into `out`.
    iovec iov[kMaxIov];
    int cnt = 0;
    if (conn.out_pos < conn.out.size()) {
      iov[cnt].iov_base = conn.out.data() + conn.out_pos;
      iov[cnt].iov_len = conn.out.size() - conn.out_pos;
      ++cnt;
    }
    std::size_t front_skip = conn.front_pos;
    for (const Connection::Slot& slot : conn.slots) {
      if (!slot.done || cnt == kMaxIov) break;
      iov[cnt].iov_base = const_cast<char*>(slot.text.data()) + front_skip;
      iov[cnt].iov_len = slot.text.size() - front_skip;
      front_skip = 0;
      ++cnt;
    }
    if (cnt == 0) break;  // drained, or waiting on an in-flight slot
    ssize_t w = ::writev(conn.fd, iov, cnt);
    if (w > 0) {
      worker.bytes_written.fetch_add(static_cast<std::uint64_t>(w),
                                     std::memory_order_relaxed);
      std::size_t left = static_cast<std::size_t>(w);
      std::size_t out_rem = conn.out.size() - conn.out_pos;
      std::size_t take = left < out_rem ? left : out_rem;
      conn.out_pos += take;
      left -= take;
      while (left > 0) {
        Connection::Slot& front = conn.slots.front();
        std::size_t rem = front.text.size() - conn.front_pos;
        take = left < rem ? left : rem;
        conn.front_pos += take;
        conn.slot_bytes -= take;
        left -= take;
        if (conn.front_pos == front.text.size()) {
          conn.slots.pop_front();
          ++conn.head_slot_seq;
          conn.front_pos = 0;
        }
      }
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Partial flush: drop the sent prefix once it dominates the buffer,
      // so a persistently slow reader holds out.size() near its backlog
      // (which DrainRequests caps) instead of the whole session's volume.
      if (conn.out_pos > conn.out.size() / 2) {
        conn.out.erase(0, conn.out_pos);
        conn.out_pos = 0;
      }
      return;
    }
    // Peer is gone; drop what's left so the close path runs. Straggler
    // completions for the dropped slots are discarded by seq (< head).
    conn.out_pos = conn.out.size();
    conn.slots.clear();
    conn.slot_bytes = 0;
    conn.front_pos = 0;
    conn.head_slot_seq = conn.next_slot_seq;
    conn.slots_inflight = 0;
    conn.closing = true;
    return;
  }
  if (conn.out_pos == conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
  }
}

void TcpServer::UpdateInterest(Worker& worker, Connection& conn) {
  bool want_write = conn.flushable();
  // Backpressure: while the peer isn't consuming responses (or too many
  // forwarded requests are in flight), stop reading too (level-triggered
  // EPOLLIN would otherwise spin); its sends then back up into TCP flow
  // control instead of this worker's memory.
  bool want_read = !conn.closing &&
                   conn.out_backlog() <= config_.max_response_bytes &&
                   conn.slots_inflight < config_.max_inflight_per_conn;
  if (want_write == conn.want_write && want_read == conn.want_read) return;
  conn.want_write = want_write;
  conn.want_read = want_read;
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void TcpServer::CloseConnection(Worker& worker, Connection& conn) {
  int fd = conn.fd;
  ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  worker.conns_by_id.erase(conn.id);
  worker.conns.erase(fd);  // destroys conn
  worker.pending_close.push_back(fd);  // close()d at end of batch
  worker.conn_active.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace iq::net
