// The networked front end of IQ-Twemcached: a multi-threaded TCP server
// speaking the memcached/IQ text protocol over real sockets.
//
// Thread model (one epoll instance per worker, level-triggered):
//   - worker 0 owns the listening socket; it accept4()s non-blocking
//     connections and hands them to the least-loaded worker (by live +
//     pending connection count) through a small mutex-guarded mailbox +
//     eventfd wakeup;
//   - each worker owns its connections outright (parser state, output
//     buffer, epoll registration) and its own CommandDispatcher, so request
//     handling never takes a cross-worker lock — all sharing happens inside
//     IQServer, which is already shard-locked;
//   - a readable event drains *every* complete pipelined request in the
//     input buffer before returning to epoll_wait, and the responses are
//     coalesced into one writev() per flush.
//
// Shard-affinity mode (Config::affinity, DESIGN.md §4.7) goes one step
// further: the CacheStore shard space is partitioned across the workers
// (core/partition.h) so each worker owns its shards' CacheStore/LeaseTable
// state exclusively. Single-key commands whose key lands on an owned shard
// execute inline; everything else is forwarded to the owning worker through
// a bounded per-worker mailbox + eventfd wakeup and completed
// asynchronously. The origin connection reserves an ordered response slot
// per forwarded request, so pipelined responses are emitted strictly in
// request order no matter which core executed what. Forwarding is an
// optimization, never a safety requirement — the shard mutexes remain, so
// when a mailbox is full (or the server is stopping) the origin worker
// simply executes the command inline, paying one cross-core lock.
//
// Per-worker wire counters (conn_accepted, conn_active, bytes_read,
// bytes_written, requests, affinity_*) are cache-line-aligned relaxed
// atomics, the same discipline as IQShardStats; `stats` over any connection
// includes them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/iq_server.h"
#include "core/partition.h"
#include "net/server.h"

namespace iq::net {

/// Aggregate of the per-worker wire counters.
struct TcpServerStats {
  std::uint64_t conn_accepted = 0;
  std::uint64_t conn_active = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t requests = 0;
  /// Affinity mode: requests handed to another worker through its mailbox.
  std::uint64_t affinity_forwards = 0;
  /// Affinity mode: own-shard (or shard-free) requests executed inline.
  std::uint64_t affinity_inline = 0;
  /// Affinity mode: cross-core requests executed inline anyway because the
  /// owner's mailbox was full — the graceful-degradation-to-shared-mode path.
  std::uint64_t affinity_fallbacks = 0;
};

class TcpServer {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = kernel-assigned ephemeral; see port()
    int workers = 4;
    /// A connection whose buffered, still-incomplete request grows past
    /// this is answered with CLIENT_ERROR and closed (memory guard).
    std::size_t max_request_bytes = 8u << 20;
    /// Output-side memory guard: once a connection's unsent responses
    /// (including completed-but-unflushed affinity slots) exceed this, the
    /// worker stops draining its requests and stops reading from it
    /// (EPOLLIN off) until the backlog flushes — a client that pipelines
    /// reads of large values but never consumes the replies is throttled by
    /// TCP flow control instead of growing server memory without bound.
    /// Soft cap: a single response may overshoot it.
    std::size_t max_response_bytes = 8u << 20;
    /// After serving events, a worker keeps polling epoll with a zero
    /// timeout this many times before blocking again. For request/response
    /// ping-pong the next request lands microseconds after the reply, so a
    /// short spin dodges the scheduler wakeup that otherwise dominates
    /// small-request round trips. 0 = always block immediately; -1 = auto
    /// (spin on multicore hosts, block on a single CPU where spinning only
    /// starves the peer).
    int spin_polls = -1;
    /// Shard-affinity (thread-per-core) execution mode: partition the
    /// CacheStore shards across the workers and route every command to its
    /// owner (see the file comment). Off = any worker executes anything
    /// (the PR 6 shared mode, the A/B baseline).
    bool affinity = false;
    /// Pin worker i to CPU core (i % hardware_concurrency), so a worker's
    /// owned shards stay resident in one core's cache. Affinity-mode
    /// companion; harmless (and pointless) without it.
    bool pin_cores = false;
    /// Bound on each worker's cross-core mailbox (pending forwarded
    /// requests). A full mailbox makes senders execute inline instead
    /// (affinity_fallbacks), bounding both memory and the owner's backlog.
    std::size_t mailbox_capacity = 4096;
    /// Bound on one connection's in-flight forwarded requests; past it the
    /// drain loop parks further pipelined requests in the parser until
    /// completions arrive (memory guard, pairs with max_response_bytes).
    std::size_t max_inflight_per_conn = 512;
  };

  explicit TcpServer(IQServer& server) : TcpServer(server, Config{}) {}
  TcpServer(IQServer& server, Config config);
  ~TcpServer();  // implies Stop()

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind + listen + spawn the workers. False (with *error) on failure.
  bool Start(std::string* error = nullptr);

  /// Close the listener, wake every worker, drop all connections, join.
  /// Idempotent.
  void Stop();

  /// The bound port, valid after a successful Start().
  std::uint16_t port() const { return port_; }

  bool affinity() const { return config_.affinity; }
  const ShardPartition& partition() const { return partition_; }

  TcpServerStats Stats() const;

  /// Append the wire counters as "STAT name value\r\n" lines — installed
  /// into each worker's dispatcher as the stats augmenter.
  void AppendWireStats(std::string& out) const;

 private:
  struct Connection;
  struct Worker;
  struct CrossOp;
  struct CrossDone;

  void WorkerLoop(Worker& worker);
  void AcceptReady(Worker& w0);
  void AdoptPending(Worker& worker);
  void AdoptConnection(Worker& worker, int fd);
  void HandleEvent(Worker& worker, Connection& conn, std::uint32_t events);
  /// Alternate DrainRequests/FlushOutput until neither makes progress, then
  /// close or re-arm epoll interest. The shared tail of a readable event
  /// and of a delivered cross-core completion.
  void PumpConnection(Worker& worker, Connection& conn,
                      bool peer_closed = false);
  void DrainRequests(Worker& worker, Connection& conn);
  void FlushOutput(Worker& worker, Connection& conn);
  void UpdateInterest(Worker& worker, Connection& conn);
  void CloseConnection(Worker& worker, Connection& conn);

  /// Affinity routing: the worker index that must execute `request`
  /// (== worker.index when it should run inline).
  std::size_t TargetWorker(const Worker& worker, const Request& request) const;
  /// Reserve the next response slot on `conn` and enqueue the request into
  /// `target`'s mailbox. False when the mailbox is full (caller executes
  /// inline; no slot is reserved).
  bool TryForward(Worker& worker, Connection& conn, std::size_t target,
                  Request&& request);
  /// Execute every queued cross-core op against this worker's shards and
  /// post the serialized responses back to the origin workers.
  void ExecuteCrossOps(Worker& worker);
  /// Fill the response slots of delivered completions and pump the touched
  /// connections.
  void DeliverCompletions(Worker& worker);

  IQServer& server_;
  Config config_;
  ShardPartition partition_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::size_t accept_rotor_ = 0;  // least-loaded tie-break (worker 0 only)
  std::atomic<std::uint64_t> next_conn_id_{1};
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace iq::net
