// The networked front end of IQ-Twemcached: a multi-threaded TCP server
// speaking the memcached/IQ text protocol over real sockets.
//
// Thread model (one epoll instance per worker, level-triggered):
//   - worker 0 owns the listening socket; it accept4()s non-blocking
//     connections and hands them round-robin to all workers through a small
//     mutex-guarded mailbox + eventfd wakeup;
//   - each worker owns its connections outright (parser state, output
//     buffer, epoll registration) and its own CommandDispatcher, so request
//     handling never takes a cross-worker lock — all sharing happens inside
//     IQServer, which is already shard-locked;
//   - a readable event drains *every* complete pipelined request in the
//     input buffer before returning to epoll_wait, and the responses are
//     appended to one reused output buffer written with a single write().
//
// Per-worker wire counters (conn_accepted, conn_active, bytes_read,
// bytes_written, requests) are cache-line-aligned relaxed atomics, the same
// discipline as IQShardStats; `stats` over any connection includes them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/iq_server.h"
#include "net/server.h"

namespace iq::net {

/// Aggregate of the per-worker wire counters.
struct TcpServerStats {
  std::uint64_t conn_accepted = 0;
  std::uint64_t conn_active = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t requests = 0;
};

class TcpServer {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = kernel-assigned ephemeral; see port()
    int workers = 4;
    /// A connection whose buffered, still-incomplete request grows past
    /// this is answered with CLIENT_ERROR and closed (memory guard).
    std::size_t max_request_bytes = 8u << 20;
    /// Output-side memory guard: once a connection's unsent responses
    /// exceed this, the worker stops draining its requests and stops
    /// reading from it (EPOLLIN off) until the backlog flushes — a client
    /// that pipelines reads of large values but never consumes the replies
    /// is throttled by TCP flow control instead of growing server memory
    /// without bound. Soft cap: a single response may overshoot it.
    std::size_t max_response_bytes = 8u << 20;
    /// After serving events, a worker keeps polling epoll with a zero
    /// timeout this many times before blocking again. For request/response
    /// ping-pong the next request lands microseconds after the reply, so a
    /// short spin dodges the scheduler wakeup that otherwise dominates
    /// small-request round trips. 0 = always block immediately; -1 = auto
    /// (spin on multicore hosts, block on a single CPU where spinning only
    /// starves the peer).
    int spin_polls = -1;
  };

  explicit TcpServer(IQServer& server) : TcpServer(server, Config{}) {}
  TcpServer(IQServer& server, Config config);
  ~TcpServer();  // implies Stop()

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind + listen + spawn the workers. False (with *error) on failure.
  bool Start(std::string* error = nullptr);

  /// Close the listener, wake every worker, drop all connections, join.
  /// Idempotent.
  void Stop();

  /// The bound port, valid after a successful Start().
  std::uint16_t port() const { return port_; }

  TcpServerStats Stats() const;

  /// Append the wire counters as "STAT name value\r\n" lines — installed
  /// into each worker's dispatcher as the stats augmenter.
  void AppendWireStats(std::string& out) const;

 private:
  struct Connection;
  struct Worker;

  void WorkerLoop(Worker& worker);
  void AcceptReady(Worker& w0);
  void AdoptPending(Worker& worker);
  void AdoptConnection(Worker& worker, int fd);
  void HandleEvent(Worker& worker, Connection& conn, std::uint32_t events);
  void DrainRequests(Worker& worker, Connection& conn);
  void FlushOutput(Worker& worker, Connection& conn);
  void UpdateInterest(Worker& worker, Connection& conn);
  void CloseConnection(Worker& worker, Connection& conn);

  IQServer& server_;
  Config config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::size_t next_worker_ = 0;  // round-robin handoff cursor (worker 0 only)
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace iq::net
