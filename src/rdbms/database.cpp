#include "rdbms/database.h"

#include "rdbms/wal.h"

#include <algorithm>

#include "util/backoff.h"

namespace iq::sql {

// ---- Transaction ------------------------------------------------------------

Transaction::Transaction(Database& db, TxnId id, Timestamp snapshot)
    : db_(db), ctx_{id, snapshot} {}

Transaction::~Transaction() {
  if (state_ == State::kActive) Rollback();
  std::lock_guard lock(db_.active_mu_);
  db_.active_snapshots_.erase(ctx_.id);
}

std::optional<Row> Transaction::SelectByPk(const std::string& table,
                                           const Row& pk) {
  db_.DelayFor(db_.config_.read_delay);
  {
    std::lock_guard lock(db_.stats_mu_);
    ++db_.stats_.reads;
  }
  Table* t = db_.GetTable(table);
  if (t == nullptr || state_ != State::kActive) return std::nullopt;
  return t->Read(ctx_, pk);
}

std::vector<Row> Transaction::SelectWhereEq(const std::string& table,
                                            const std::string& column,
                                            const Value& value) {
  db_.DelayFor(db_.config_.read_delay);
  {
    std::lock_guard lock(db_.stats_mu_);
    ++db_.stats_.reads;
  }
  Table* t = db_.GetTable(table);
  if (t == nullptr || state_ != State::kActive) return {};
  auto col = t->schema().ColumnIndex(column);
  if (!col) return {};
  return t->ReadWhereEq(ctx_, *col, value);
}

std::vector<Row> Transaction::SelectAll(const std::string& table) {
  return SelectWhere(table, [](const Row&) { return true; });
}

std::vector<Row> Transaction::SelectWhere(
    const std::string& table, const std::function<bool(const Row&)>& pred) {
  db_.DelayFor(db_.config_.read_delay);
  {
    std::lock_guard lock(db_.stats_mu_);
    ++db_.stats_.reads;
  }
  Table* t = db_.GetTable(table);
  if (t == nullptr || state_ != State::kActive) return {};
  return t->Scan(ctx_, pred);
}

TxnResult Transaction::Insert(const std::string& table, Row row) {
  if (state_ != State::kActive) return TxnResult::kAborted;
  db_.DelayFor(db_.config_.write_delay);
  {
    std::lock_guard lock(db_.stats_mu_);
    ++db_.stats_.writes;
  }
  Table* t = db_.GetTable(table);
  if (t == nullptr) return TxnResult::kNotFound;
  Row pk = t->schema().PrimaryKeyOf(row);
  Row row_copy = row;  // for the trigger event
  TxnResult r = t->InsertIntent(ctx_, std::move(row));
  if (r == TxnResult::kConflict) {
    {
      std::lock_guard lock(db_.stats_mu_);
      ++db_.stats_.conflicts;
    }
    Doom();
    return r;
  }
  if (r != TxnResult::kOk) return r;
  writes_.push_back({t, std::move(pk)});
  if (db_.config_.wal != nullptr) {
    redo_.push_back({RedoOp::Kind::kPut, table, row_copy});
  }
  TriggerEvent event{DmlOp::kInsert, table, nullptr, &row_copy};
  db_.FireTriggers(*this, event);
  return r;
}

TxnResult Transaction::UpdateByPk(const std::string& table, const Row& pk,
                                  const std::function<void(Row&)>& mutate) {
  if (state_ != State::kActive) return TxnResult::kAborted;
  db_.DelayFor(db_.config_.write_delay);
  {
    std::lock_guard lock(db_.stats_mu_);
    ++db_.stats_.writes;
  }
  Table* t = db_.GetTable(table);
  if (t == nullptr) return TxnResult::kNotFound;
  Row old_row;
  Row new_row;
  auto capture = [&](Row& r) {
    old_row = r;
    mutate(r);
    new_row = r;
  };
  TxnResult r = t->UpdateIntent(ctx_, pk, capture);
  if (r == TxnResult::kConflict) {
    {
      std::lock_guard lock(db_.stats_mu_);
      ++db_.stats_.conflicts;
    }
    Doom();
    return r;
  }
  if (r != TxnResult::kOk) return r;
  writes_.push_back({t, pk});
  if (db_.config_.wal != nullptr) {
    redo_.push_back({RedoOp::Kind::kPut, table, new_row});
  }
  TriggerEvent event{DmlOp::kUpdate, table, &old_row, &new_row};
  db_.FireTriggers(*this, event);
  return r;
}

TxnResult Transaction::UpdateByPk(
    const std::string& table, const Row& pk,
    const std::vector<std::pair<std::string, Value>>& sets) {
  Table* t = db_.GetTable(table);
  if (t == nullptr) return TxnResult::kNotFound;
  const TableSchema& schema = t->schema();
  std::vector<std::pair<std::size_t, Value>> resolved;
  resolved.reserve(sets.size());
  for (const auto& [col, val] : sets) {
    auto idx = schema.ColumnIndex(col);
    if (!idx) return TxnResult::kInvalidRow;
    resolved.emplace_back(*idx, val);
  }
  return UpdateByPk(table, pk, [&](Row& row) {
    for (const auto& [idx, val] : resolved) row[idx] = val;
  });
}

TxnResult Transaction::DeleteByPk(const std::string& table, const Row& pk) {
  if (state_ != State::kActive) return TxnResult::kAborted;
  db_.DelayFor(db_.config_.write_delay);
  {
    std::lock_guard lock(db_.stats_mu_);
    ++db_.stats_.writes;
  }
  Table* t = db_.GetTable(table);
  if (t == nullptr) return TxnResult::kNotFound;
  Row old_row;
  {
    auto visible = t->Read(ctx_, pk);
    if (visible) old_row = *visible;
  }
  TxnResult r = t->DeleteIntent(ctx_, pk);
  if (r == TxnResult::kConflict) {
    {
      std::lock_guard lock(db_.stats_mu_);
      ++db_.stats_.conflicts;
    }
    Doom();
    return r;
  }
  if (r != TxnResult::kOk) return r;
  writes_.push_back({t, pk});
  if (db_.config_.wal != nullptr) {
    redo_.push_back({RedoOp::Kind::kDelete, table, pk});
  }
  TriggerEvent event{DmlOp::kDelete, table, &old_row, nullptr};
  db_.FireTriggers(*this, event);
  return r;
}

TxnResult Transaction::Commit() {
  if (state_ != State::kActive) return TxnResult::kAborted;
  db_.DelayFor(db_.config_.commit_delay);
  {
    std::lock_guard commit_lock(db_.commit_mu_);
    Timestamp ts = db_.commit_counter_.load(std::memory_order_relaxed) + 1;
    for (const auto& w : writes_) w.table->InstallCommit(ctx_.id, w.pk, ts);
    db_.commit_counter_.store(ts, std::memory_order_release);
    commit_ts_ = ts;
    // Durability: the record is on stable storage before Commit returns,
    // and the commit mutex keeps the log in timestamp order.
    if (db_.config_.wal != nullptr && !redo_.empty()) {
      db_.config_.wal->Append(ts, redo_);
    }
  }
  state_ = State::kCommitted;
  std::lock_guard lock(db_.stats_mu_);
  ++db_.stats_.txns_committed;
  return TxnResult::kOk;
}

void Transaction::Rollback() {
  if (state_ != State::kActive) return;
  Doom();
}

void Transaction::Doom() {
  for (const auto& w : writes_) w.table->AbortIntent(ctx_.id, w.pk);
  writes_.clear();
  redo_.clear();
  state_ = State::kAborted;
  std::lock_guard lock(db_.stats_mu_);
  ++db_.stats_.txns_aborted;
}

// ---- Database ---------------------------------------------------------------

Database::Database() : Database(Config{}) {}

Database::Database(Config config)
    : config_(config),
      clock_(config.clock != nullptr ? *config.clock : SteadyClock::Instance()) {}

void Database::DelayFor(Nanos d) const {
  if (d > 0) SleepFor(clock_, d);
}

bool Database::CreateTable(TableSchema schema) {
  std::lock_guard lock(catalog_mu_);
  std::string name = schema.name;  // read before the move below
  auto [it, inserted] =
      tables_.emplace(std::move(name), std::make_unique<Table>(std::move(schema)));
  (void)it;
  return inserted;
}

Table* Database::GetTable(const std::string& name) {
  std::lock_guard lock(catalog_mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  std::lock_guard lock(catalog_mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::unique_ptr<Transaction> Database::Begin() {
  TxnId id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  Timestamp snapshot = commit_counter_.load(std::memory_order_acquire);
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.txns_started;
  }
  {
    std::lock_guard lock(active_mu_);
    active_snapshots_[id] = snapshot;
  }
  return std::unique_ptr<Transaction>(new Transaction(*this, id, snapshot));
}

bool Database::RunTransaction(const std::function<bool(Transaction&)>& body,
                              int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Back off before retrying: immediate retries livelock under
      // first-committer-wins when many threads pound one row.
      SleepFor(clock_, std::min<Nanos>(attempt, 64) * 2 * kNanosPerMicro);
    }
    auto txn = Begin();
    bool want_commit = body(*txn);
    // A doomed transaction means a write-write conflict surfaced inside the
    // body (the DML verbs Doom() on kConflict), NOT a user decision — the
    // body typically maps the failed statement to `false`, and treating
    // that as "roll back and give up" silently dropped the retry the
    // contract promises. Retry regardless of what the body returned.
    if (txn->state() == Transaction::State::kAborted) continue;
    if (!want_commit) {
      txn->Rollback();
      return false;
    }
    if (txn->Commit() == TxnResult::kOk) return true;
  }
  return false;
}

void Database::RegisterTrigger(const std::string& table, DmlOp op,
                               TriggerFn fn) {
  std::lock_guard lock(trigger_mu_);
  triggers_[TriggerKey{table, op}].push_back(std::move(fn));
}

void Database::ClearTriggers() {
  std::lock_guard lock(trigger_mu_);
  triggers_.clear();
}

void Database::FireTriggers(Transaction& txn, const TriggerEvent& event) {
  std::vector<TriggerFn> to_fire;
  {
    std::lock_guard lock(trigger_mu_);
    auto it = triggers_.find(TriggerKey{event.table, event.op});
    if (it == triggers_.end()) return;
    to_fire = it->second;  // copy so triggers may register triggers
  }
  for (const auto& fn : to_fire) fn(txn, event);
}

Database::Stats Database::GetStats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

std::size_t Database::Vacuum() {
  Timestamp oldest = commit_counter_.load(std::memory_order_acquire);
  {
    std::lock_guard lock(active_mu_);
    for (const auto& [id, snap] : active_snapshots_) {
      oldest = std::min(oldest, snap);
    }
  }
  std::size_t reclaimed = 0;
  std::lock_guard lock(catalog_mu_);
  for (auto& [name, table] : tables_) reclaimed += table->Vacuum(oldest);
  return reclaimed;
}

}  // namespace iq::sql
