// Database: table catalog, transaction lifecycle, snapshot-isolation commit
// protocol, DML triggers, and an optional per-operation latency model used
// to emulate a disk-bound backend (the paper's 100K-member configuration
// where the RDBMS sustains only 15-25 actions/sec).
//
// Commit protocol: a global commit mutex serializes commits. The committing
// transaction takes ts = counter + 1, installs every pending intent at ts,
// then publishes counter = ts. Snapshots are counter loads, so a snapshot
// never observes a half-installed commit.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdbms/table.h"
#include "util/clock.h"

namespace iq::sql {

class Database;
class WriteAheadLog;

/// One redo operation captured for the write-ahead log.
struct RedoOp {
  enum class Kind { kPut, kDelete };
  Kind kind;
  std::string table;
  Row row;  // full row for kPut, primary key for kDelete
};

/// Which DML fired a trigger.
enum class DmlOp { kInsert, kUpdate, kDelete };

/// Payload passed to trigger callbacks.
struct TriggerEvent {
  DmlOp op;
  const std::string& table;
  /// Row visible before the DML (empty for insert).
  const Row* old_row;
  /// Row after the DML (nullptr for delete).
  const Row* new_row;
};

/// A snapshot-isolation transaction. Obtain via Database::Begin(). A write
/// conflict immediately dooms the transaction: the failing call returns
/// kConflict, all intents are released, and the state becomes kAborted —
/// matching the paper's non-blocking "abort and restart the session" model.
class Transaction {
 public:
  enum class State { kActive, kCommitted, kAborted };

  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  State state() const { return state_; }
  /// The database this transaction runs against.
  Database& database() { return db_; }
  TxnId id() const { return ctx_.id; }
  Timestamp snapshot() const { return ctx_.snapshot; }
  /// Commit timestamp; 0 unless state()==kCommitted.
  Timestamp commit_ts() const { return commit_ts_; }

  // ---- reads ----
  std::optional<Row> SelectByPk(const std::string& table, const Row& pk);
  std::vector<Row> SelectWhereEq(const std::string& table,
                                 const std::string& column, const Value& value);
  std::vector<Row> SelectAll(const std::string& table);
  std::vector<Row> SelectWhere(const std::string& table,
                               const std::function<bool(const Row&)>& pred);

  // ---- writes (register intents; durable only after Commit) ----
  TxnResult Insert(const std::string& table, Row row);
  TxnResult UpdateByPk(const std::string& table, const Row& pk,
                       const std::function<void(Row&)>& mutate);
  /// Convenience: set named columns to values.
  TxnResult UpdateByPk(const std::string& table, const Row& pk,
                       const std::vector<std::pair<std::string, Value>>& sets);
  TxnResult DeleteByPk(const std::string& table, const Row& pk);

  // ---- lifecycle ----
  /// Atomically installs all intents. Always succeeds for an active
  /// transaction (conflicts were detected eagerly at intent time).
  TxnResult Commit();
  /// Discards all intents. Safe to call in any state (no-op if finished).
  void Rollback();

 private:
  friend class Database;
  Transaction(Database& db, TxnId id, Timestamp snapshot);

  void Doom();  // release intents, mark aborted

  struct WriteRecord {
    Table* table;
    Row pk;
  };

  Database& db_;
  TxnCtx ctx_;
  State state_ = State::kActive;
  Timestamp commit_ts_ = 0;
  std::vector<WriteRecord> writes_;
  std::vector<RedoOp> redo_;  // only populated when the database has a WAL
};

class Database {
 public:
  struct Config {
    /// Artificial latencies, applied per operation (0 = none). Models a
    /// remote and/or disk-bound RDBMS.
    Nanos read_delay = 0;
    Nanos write_delay = 0;
    Nanos commit_delay = 0;
    const Clock* clock = nullptr;
    /// Optional durability: committed transactions append redo records
    /// here before Commit() returns (see rdbms/wal.h).
    WriteAheadLog* wal = nullptr;
  };

  struct Stats {
    std::uint64_t txns_started = 0;
    std::uint64_t txns_committed = 0;
    std::uint64_t txns_aborted = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
  };

  Database();
  explicit Database(Config config);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Create a table; returns false if the name already exists.
  bool CreateTable(TableSchema schema);
  /// nullptr if absent.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Start a snapshot-isolation transaction.
  std::unique_ptr<Transaction> Begin();

  /// Run `body` inside a transaction, retrying on conflict up to
  /// `max_attempts` times. body returns true to commit, false to roll back.
  /// Returns true iff a commit happened.
  bool RunTransaction(const std::function<bool(Transaction&)>& body,
                      int max_attempts = 10);

  // ---- triggers ----
  using TriggerFn = std::function<void(Transaction&, const TriggerEvent&)>;
  /// Fire `fn` synchronously inside every successful DML of kind `op`
  /// against `table` (the paper's trigger-based invalidation, Figure 3).
  void RegisterTrigger(const std::string& table, DmlOp op, TriggerFn fn);
  void ClearTriggers();

  Stats GetStats() const;
  Timestamp LastCommitTs() const {
    return commit_counter_.load(std::memory_order_acquire);
  }

  /// Reclaim dead versions older than every active snapshot.
  std::size_t Vacuum();

 private:
  friend class Transaction;

  void FireTriggers(Transaction& txn, const TriggerEvent& event);
  void DelayFor(Nanos d) const;

  Config config_;
  const Clock& clock_;

  mutable std::mutex catalog_mu_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;

  std::mutex commit_mu_;
  std::atomic<Timestamp> commit_counter_{0};
  std::atomic<TxnId> next_txn_id_{1};

  mutable std::mutex trigger_mu_;
  struct TriggerKey {
    std::string table;
    DmlOp op;
    bool operator==(const TriggerKey&) const = default;
  };
  struct TriggerKeyHash {
    std::size_t operator()(const TriggerKey& k) const {
      return std::hash<std::string>{}(k.table) ^
             (static_cast<std::size_t>(k.op) << 1);
    }
  };
  std::unordered_map<TriggerKey, std::vector<TriggerFn>, TriggerKeyHash>
      triggers_;

  mutable std::mutex stats_mu_;
  Stats stats_;

  mutable std::mutex active_mu_;
  std::unordered_map<TxnId, Timestamp> active_snapshots_;
};

}  // namespace iq::sql
