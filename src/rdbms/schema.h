// Table schemas: named, typed columns, a (possibly composite) primary key,
// and optional secondary hash indexes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rdbms/value.h"

namespace iq::sql {

enum class ColumnType { kInt, kText };

struct Column {
  std::string name;
  ColumnType type;
};

struct TableSchema {
  std::string name;
  std::vector<Column> columns;
  /// Column indices forming the primary key (must be non-empty).
  std::vector<std::size_t> primary_key;
  /// Each secondary index covers one column (hash index, equality only).
  std::vector<std::size_t> secondary_indexes;

  /// Index of a column by name, or nullopt.
  std::optional<std::size_t> ColumnIndex(std::string_view col) const {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == col) return i;
    }
    return std::nullopt;
  }

  /// Extract the primary-key cells from a full row.
  Row PrimaryKeyOf(const Row& row) const {
    Row key;
    key.reserve(primary_key.size());
    for (std::size_t idx : primary_key) key.push_back(row[idx]);
    return key;
  }

  /// True if `row` matches the schema arity and column types (NULL allowed).
  bool RowMatches(const Row& row) const {
    if (row.size() != columns.size()) return false;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (IsNull(row[i])) continue;
      bool is_int = std::holds_alternative<std::int64_t>(row[i]);
      if (is_int != (columns[i].type == ColumnType::kInt)) return false;
    }
    return true;
  }
};

/// Fluent schema builder used by application setup code and tests.
class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::string table_name) { schema_.name = std::move(table_name); }

  SchemaBuilder& AddInt(std::string col) {
    schema_.columns.push_back({std::move(col), ColumnType::kInt});
    return *this;
  }
  SchemaBuilder& AddText(std::string col) {
    schema_.columns.push_back({std::move(col), ColumnType::kText});
    return *this;
  }
  /// Declare the primary key over the named columns (must already exist).
  SchemaBuilder& PrimaryKey(std::initializer_list<std::string> cols) {
    for (const auto& c : cols) {
      auto idx = schema_.ColumnIndex(c);
      if (idx) schema_.primary_key.push_back(*idx);
    }
    return *this;
  }
  /// Declare a secondary hash index on one column.
  SchemaBuilder& Index(const std::string& col) {
    auto idx = schema_.ColumnIndex(col);
    if (idx) schema_.secondary_indexes.push_back(*idx);
    return *this;
  }

  TableSchema Build() const { return schema_; }

 private:
  TableSchema schema_;
};

}  // namespace iq::sql
