// A small SQL subset over the MVCC engine, enough to express every query
// the paper's workloads issue (Table 3: SELECT/INSERT/UPDATE/DELETE with
// equality/comparison predicates, parameter placeholders, and additive SET
// expressions such as "SET pending = pending + 1").
//
//   SELECT a, b FROM t WHERE pk = ? AND status = 2
//   INSERT INTO t (a, b, c) VALUES (?, ?, 'x')
//   UPDATE t SET n = n + 1, status = ? WHERE id = ?
//   DELETE FROM t WHERE a = ? AND b = ?
//
// Usage: Prepare(sql) once, then Execute(txn, stmt, params) per call. The
// executor plans point reads via the primary key, equality lookups via
// secondary indexes, and falls back to scans.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rdbms/database.h"
#include "rdbms/value.h"

namespace iq::sql {

// ---- AST --------------------------------------------------------------------

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Scalar expression: literal, parameter, column reference, or
/// additive binary expression.
struct Expr {
  enum class Kind { kLiteral, kParam, kColumn, kAdd, kSub };
  Kind kind;
  Value literal;        // kLiteral
  int param_index = 0;  // kParam (0-based)
  std::string column;   // kColumn
  std::unique_ptr<Expr> lhs, rhs;  // kAdd/kSub
};

/// One conjunct of a WHERE clause: <column> <op> <expr>.
struct Predicate {
  std::string column;
  CompareOp op;
  Expr value;
};

enum class StatementKind { kSelect, kInsert, kUpdate, kDelete };

/// A parsed, reusable statement.
struct Statement {
  StatementKind kind;
  std::string table;
  // SELECT: projected column names; empty = '*'.
  std::vector<std::string> select_columns;
  // INSERT: column list (empty = schema order) and value expressions.
  std::vector<std::string> insert_columns;
  std::vector<Expr> insert_values;
  // UPDATE: SET assignments.
  std::vector<std::pair<std::string, Expr>> set_exprs;
  // WHERE conjuncts (empty = all rows).
  std::vector<Predicate> where;
  // Number of '?' placeholders.
  int param_count = 0;
};

/// Result of executing a statement.
struct QueryResult {
  TxnResult status = TxnResult::kOk;
  /// SELECT projection column names.
  std::vector<std::string> columns;
  /// SELECT output rows.
  std::vector<Row> rows;
  /// Rows touched by INSERT/UPDATE/DELETE.
  std::size_t affected = 0;

  bool ok() const { return status == TxnResult::kOk; }
};

// ---- API --------------------------------------------------------------------

/// Parse `sql` into a Statement. Throws std::invalid_argument with a
/// position-annotated message on syntax errors.
Statement Prepare(const std::string& sql);

/// Execute a prepared statement inside `txn` with positional parameters.
QueryResult Execute(Transaction& txn, const Statement& stmt,
                    const std::vector<Value>& params = {});

/// One-shot convenience: prepare + execute.
QueryResult Query(Transaction& txn, const std::string& sql,
                  const std::vector<Value>& params = {});

}  // namespace iq::sql
