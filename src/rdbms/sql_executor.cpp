// Executor: plans and runs a prepared Statement against a Transaction.
//
// Planning is deliberately simple: full primary-key equality => point
// read/write; single-column equality on an indexed column => index lookup
// with residual filter; otherwise a visible scan.
#include <stdexcept>

#include "rdbms/sql.h"

namespace iq::sql {
namespace {

Value EvalExpr(const Expr& e, const std::vector<Value>& params,
               const TableSchema* schema, const Row* row) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kParam:
      if (e.param_index < 0 ||
          static_cast<std::size_t>(e.param_index) >= params.size()) {
        throw std::invalid_argument("missing SQL parameter " +
                                    std::to_string(e.param_index + 1));
      }
      return params[static_cast<std::size_t>(e.param_index)];
    case Expr::Kind::kColumn: {
      if (schema == nullptr || row == nullptr) {
        throw std::invalid_argument("column reference '" + e.column +
                                    "' not allowed here");
      }
      auto idx = schema->ColumnIndex(e.column);
      if (!idx) {
        throw std::invalid_argument("unknown column '" + e.column + "'");
      }
      return (*row)[*idx];
    }
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub: {
      Value l = EvalExpr(*e.lhs, params, schema, row);
      Value r = EvalExpr(*e.rhs, params, schema, row);
      auto li = AsInt(l);
      auto ri = AsInt(r);
      if (!li || !ri) {
        throw std::invalid_argument("arithmetic on non-integer value");
      }
      return V(e.kind == Expr::Kind::kAdd ? *li + *ri : *li - *ri);
    }
  }
  return V();
}

bool Compare(const Value& lhs, CompareOp op, const Value& rhs) {
  // SQL three-valued logic collapsed: comparisons involving NULL are false
  // except explicit equality of two NULLs (sufficient for our workloads).
  if (IsNull(lhs) || IsNull(rhs)) {
    return op == CompareOp::kEq && IsNull(lhs) && IsNull(rhs);
  }
  switch (op) {
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNe: return lhs != rhs;
    case CompareOp::kLt: return lhs < rhs;
    case CompareOp::kLe: return lhs <= rhs;
    case CompareOp::kGt: return lhs > rhs;
    case CompareOp::kGe: return lhs >= rhs;
  }
  return false;
}

struct Plan {
  /// Full primary key assembled from equality predicates, if available.
  std::optional<Row> point_pk;
  /// Otherwise: an indexed column equality to seed the lookup.
  std::optional<std::pair<std::string, Value>> index_probe;
  /// Conjuncts to evaluate on each candidate (column idx, op, value).
  std::vector<std::tuple<std::size_t, CompareOp, Value>> residual;
};

Plan MakePlan(const TableSchema& schema, const std::vector<Predicate>& where,
              const std::vector<Value>& params) {
  Plan plan;
  // Resolve all predicates first (their value exprs may not reference rows).
  struct Resolved {
    std::size_t col;
    CompareOp op;
    Value value;
  };
  std::vector<Resolved> preds;
  preds.reserve(where.size());
  for (const auto& p : where) {
    auto idx = schema.ColumnIndex(p.column);
    if (!idx) throw std::invalid_argument("unknown column '" + p.column + "'");
    preds.push_back({*idx, p.op, EvalExpr(p.value, params, nullptr, nullptr)});
  }
  // Try to assemble the full primary key from equality conjuncts.
  Row pk(schema.primary_key.size());
  std::vector<bool> have(schema.primary_key.size(), false);
  for (const auto& p : preds) {
    if (p.op != CompareOp::kEq) continue;
    for (std::size_t k = 0; k < schema.primary_key.size(); ++k) {
      if (schema.primary_key[k] == p.col && !have[k]) {
        pk[k] = p.value;
        have[k] = true;
      }
    }
  }
  bool full_pk = !have.empty();
  for (bool h : have) full_pk = full_pk && h;
  if (full_pk) plan.point_pk = std::move(pk);
  // Otherwise look for an indexed equality column.
  if (!plan.point_pk) {
    for (const auto& p : preds) {
      if (p.op != CompareOp::kEq) continue;
      for (std::size_t col : schema.secondary_indexes) {
        if (col == p.col) {
          plan.index_probe = {schema.columns[col].name, p.value};
          break;
        }
      }
      if (plan.index_probe) break;
    }
  }
  for (const auto& p : preds) plan.residual.emplace_back(p.col, p.op, p.value);
  return plan;
}

bool MatchesResidual(const Plan& plan, const Row& row) {
  for (const auto& [col, op, value] : plan.residual) {
    if (!Compare(row[col], op, value)) return false;
  }
  return true;
}

/// All rows matching the plan, visible to the transaction.
std::vector<Row> FetchCandidates(Transaction& txn, const std::string& table,
                                 const TableSchema& schema, const Plan& plan) {
  std::vector<Row> rows;
  if (plan.point_pk) {
    auto row = txn.SelectByPk(table, *plan.point_pk);
    if (row) rows.push_back(std::move(*row));
  } else if (plan.index_probe) {
    rows = txn.SelectWhereEq(table, plan.index_probe->first,
                             plan.index_probe->second);
  } else {
    rows = txn.SelectAll(table);
  }
  std::vector<Row> out;
  out.reserve(rows.size());
  for (auto& r : rows) {
    if (r.size() == schema.columns.size() && MatchesResidual(plan, r)) {
      out.push_back(std::move(r));
    }
  }
  return out;
}

QueryResult ExecSelect(Transaction& txn, const Statement& stmt,
                       const TableSchema& schema,
                       const std::vector<Value>& params) {
  QueryResult result;
  Plan plan = MakePlan(schema, stmt.where, params);
  std::vector<Row> matched = FetchCandidates(txn, stmt.table, schema, plan);
  // Projection.
  std::vector<std::size_t> proj;
  if (stmt.select_columns.empty()) {
    for (std::size_t i = 0; i < schema.columns.size(); ++i) proj.push_back(i);
    for (const auto& c : schema.columns) result.columns.push_back(c.name);
  } else {
    for (const auto& name : stmt.select_columns) {
      auto idx = schema.ColumnIndex(name);
      if (!idx) throw std::invalid_argument("unknown column '" + name + "'");
      proj.push_back(*idx);
      result.columns.push_back(name);
    }
  }
  result.rows.reserve(matched.size());
  for (const auto& r : matched) {
    Row out;
    out.reserve(proj.size());
    for (std::size_t i : proj) out.push_back(r[i]);
    result.rows.push_back(std::move(out));
  }
  return result;
}

QueryResult ExecInsert(Transaction& txn, const Statement& stmt,
                       const TableSchema& schema,
                       const std::vector<Value>& params) {
  QueryResult result;
  Row row(schema.columns.size(), V());
  if (stmt.insert_columns.empty()) {
    if (stmt.insert_values.size() != schema.columns.size()) {
      throw std::invalid_argument("INSERT arity mismatch for '" + stmt.table + "'");
    }
    for (std::size_t i = 0; i < stmt.insert_values.size(); ++i) {
      row[i] = EvalExpr(stmt.insert_values[i], params, nullptr, nullptr);
    }
  } else {
    if (stmt.insert_values.size() != stmt.insert_columns.size()) {
      throw std::invalid_argument("INSERT column/value count mismatch");
    }
    for (std::size_t i = 0; i < stmt.insert_columns.size(); ++i) {
      auto idx = schema.ColumnIndex(stmt.insert_columns[i]);
      if (!idx) {
        throw std::invalid_argument("unknown column '" + stmt.insert_columns[i] + "'");
      }
      row[*idx] = EvalExpr(stmt.insert_values[i], params, nullptr, nullptr);
    }
  }
  result.status = txn.Insert(stmt.table, std::move(row));
  result.affected = result.ok() ? 1 : 0;
  return result;
}

QueryResult ExecUpdate(Transaction& txn, const Statement& stmt,
                       const TableSchema& schema,
                       const std::vector<Value>& params) {
  QueryResult result;
  Plan plan = MakePlan(schema, stmt.where, params);
  std::vector<Row> matched = FetchCandidates(txn, stmt.table, schema, plan);
  // Resolve SET target columns once.
  std::vector<std::pair<std::size_t, const Expr*>> sets;
  sets.reserve(stmt.set_exprs.size());
  for (const auto& [col, expr] : stmt.set_exprs) {
    auto idx = schema.ColumnIndex(col);
    if (!idx) throw std::invalid_argument("unknown column '" + col + "'");
    sets.emplace_back(*idx, &expr);
  }
  for (const auto& r : matched) {
    Row pk = schema.PrimaryKeyOf(r);
    TxnResult status = txn.UpdateByPk(stmt.table, pk, [&](Row& row) {
      // Evaluate all SET expressions against the pre-update row (SQL
      // semantics: "SET a = b, b = a" swaps).
      Row before = row;
      for (const auto& [idx, expr] : sets) {
        row[idx] = EvalExpr(*expr, params, &schema, &before);
      }
    });
    if (status != TxnResult::kOk) {
      result.status = status;
      return result;
    }
    ++result.affected;
  }
  return result;
}

QueryResult ExecDelete(Transaction& txn, const Statement& stmt,
                       const TableSchema& schema,
                       const std::vector<Value>& params) {
  QueryResult result;
  Plan plan = MakePlan(schema, stmt.where, params);
  std::vector<Row> matched = FetchCandidates(txn, stmt.table, schema, plan);
  for (const auto& r : matched) {
    TxnResult status = txn.DeleteByPk(stmt.table, schema.PrimaryKeyOf(r));
    if (status != TxnResult::kOk) {
      result.status = status;
      return result;
    }
    ++result.affected;
  }
  return result;
}

}  // namespace

QueryResult Execute(Transaction& txn, const Statement& stmt,
                    const std::vector<Value>& params) {
  if (static_cast<int>(params.size()) < stmt.param_count) {
    throw std::invalid_argument("statement needs " +
                                std::to_string(stmt.param_count) +
                                " parameters, got " +
                                std::to_string(params.size()));
  }
  const Table* table = txn.database().GetTable(stmt.table);
  if (table == nullptr) {
    QueryResult r;
    r.status = TxnResult::kNotFound;
    return r;
  }
  const TableSchema* schema = &table->schema();
  switch (stmt.kind) {
    case StatementKind::kSelect: return ExecSelect(txn, stmt, *schema, params);
    case StatementKind::kInsert: return ExecInsert(txn, stmt, *schema, params);
    case StatementKind::kUpdate: return ExecUpdate(txn, stmt, *schema, params);
    case StatementKind::kDelete: return ExecDelete(txn, stmt, *schema, params);
  }
  QueryResult r;
  r.status = TxnResult::kInvalidRow;
  return r;
}

QueryResult Query(Transaction& txn, const std::string& sql,
                  const std::vector<Value>& params) {
  return Execute(txn, Prepare(sql), params);
}

}  // namespace iq::sql
