// Recursive-descent parser for the SQL subset declared in sql.h.
#include <cctype>
#include <stdexcept>

#include "rdbms/sql.h"

namespace iq::sql {
namespace {

enum class TokKind {
  kIdent,
  kInt,
  kString,
  kPunct,  // ( ) , * = < > <= >= <> + -
  kParam,  // ?
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  std::int64_t int_value = 0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : sql_(sql) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw std::invalid_argument("SQL error at position " +
                                std::to_string(current_.pos) + ": " + message +
                                " (near '" + current_.text + "')");
  }

 private:
  void Advance() {
    while (i_ < sql_.size() && std::isspace(static_cast<unsigned char>(sql_[i_]))) {
      ++i_;
    }
    current_.pos = i_;
    if (i_ >= sql_.size()) {
      current_ = {TokKind::kEnd, "<end>", 0, i_};
      return;
    }
    char c = sql_[i_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i_;
      while (i_ < sql_.size() &&
             (std::isalnum(static_cast<unsigned char>(sql_[i_])) || sql_[i_] == '_')) {
        ++i_;
      }
      current_ = {TokKind::kIdent, sql_.substr(start, i_ - start), 0, start};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i_;
      while (i_ < sql_.size() && std::isdigit(static_cast<unsigned char>(sql_[i_]))) {
        ++i_;
      }
      Token t{TokKind::kInt, sql_.substr(start, i_ - start), 0, start};
      t.int_value = std::stoll(t.text);
      current_ = t;
      return;
    }
    if (c == '\'') {
      std::size_t start = ++i_;
      std::string out;
      while (i_ < sql_.size()) {
        if (sql_[i_] == '\'') {
          if (i_ + 1 < sql_.size() && sql_[i_ + 1] == '\'') {  // escaped quote
            out += '\'';
            i_ += 2;
            continue;
          }
          break;
        }
        out += sql_[i_++];
      }
      if (i_ >= sql_.size()) {
        throw std::invalid_argument("SQL error: unterminated string literal");
      }
      ++i_;  // closing quote
      current_ = {TokKind::kString, std::move(out), 0, start};
      return;
    }
    if (c == '?') {
      ++i_;
      current_ = {TokKind::kParam, "?", 0, i_ - 1};
      return;
    }
    // Multi-char operators.
    if ((c == '<' || c == '>') && i_ + 1 < sql_.size() &&
        (sql_[i_ + 1] == '=' || (c == '<' && sql_[i_ + 1] == '>'))) {
      current_ = {TokKind::kPunct, sql_.substr(i_, 2), 0, i_};
      i_ += 2;
      return;
    }
    static constexpr std::string_view kSingle = "(),*=<>+-";
    if (kSingle.find(c) != std::string_view::npos) {
      current_ = {TokKind::kPunct, std::string(1, c), 0, i_};
      ++i_;
      return;
    }
    throw std::invalid_argument(std::string("SQL error: unexpected character '") +
                                c + "'");
  }

  bool PrevWasOperand() const { return false; }

  const std::string& sql_;
  std::size_t i_ = 0;
  Token current_;
};

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

class Parser {
 public:
  explicit Parser(const std::string& sql) : lex_(sql) {}

  Statement Parse() {
    Statement stmt;
    std::string kw = ExpectKeyword();
    if (kw == "SELECT") {
      ParseSelect(stmt);
    } else if (kw == "INSERT") {
      ParseInsert(stmt);
    } else if (kw == "UPDATE") {
      ParseUpdate(stmt);
    } else if (kw == "DELETE") {
      ParseDelete(stmt);
    } else {
      lex_.Fail("expected SELECT, INSERT, UPDATE or DELETE");
    }
    if (lex_.Peek().kind != TokKind::kEnd) lex_.Fail("trailing tokens");
    stmt.param_count = params_;
    return stmt;
  }

 private:
  std::string ExpectKeyword() {
    if (lex_.Peek().kind != TokKind::kIdent) lex_.Fail("expected keyword");
    return Upper(lex_.Take().text);
  }

  std::string ExpectIdent() {
    if (lex_.Peek().kind != TokKind::kIdent) lex_.Fail("expected identifier");
    return lex_.Take().text;
  }

  void ExpectPunct(const std::string& p) {
    if (lex_.Peek().kind != TokKind::kPunct || lex_.Peek().text != p) {
      lex_.Fail("expected '" + p + "'");
    }
    lex_.Take();
  }

  bool AcceptPunct(const std::string& p) {
    if (lex_.Peek().kind == TokKind::kPunct && lex_.Peek().text == p) {
      lex_.Take();
      return true;
    }
    return false;
  }

  bool AcceptKeyword(const std::string& kw) {
    if (lex_.Peek().kind == TokKind::kIdent && Upper(lex_.Peek().text) == kw) {
      lex_.Take();
      return true;
    }
    return false;
  }

  void ExpectKeywordIs(const std::string& kw) {
    if (!AcceptKeyword(kw)) lex_.Fail("expected " + kw);
  }

  Expr ParsePrimary() {
    Expr e;
    const Token& t = lex_.Peek();
    switch (t.kind) {
      case TokKind::kInt:
        e.kind = Expr::Kind::kLiteral;
        e.literal = V(lex_.Take().int_value);
        return e;
      case TokKind::kString:
        e.kind = Expr::Kind::kLiteral;
        e.literal = V(lex_.Take().text);
        return e;
      case TokKind::kParam:
        lex_.Take();
        e.kind = Expr::Kind::kParam;
        e.param_index = params_++;
        return e;
      case TokKind::kIdent:
        if (Upper(t.text) == "NULL") {
          lex_.Take();
          e.kind = Expr::Kind::kLiteral;
          e.literal = V();
          return e;
        }
        e.kind = Expr::Kind::kColumn;
        e.column = lex_.Take().text;
        return e;
      default:
        lex_.Fail("expected expression");
    }
  }

  Expr ParseExpr() {
    Expr lhs = ParsePrimary();
    while (lex_.Peek().kind == TokKind::kPunct &&
           (lex_.Peek().text == "+" || lex_.Peek().text == "-")) {
      bool add = lex_.Take().text == "+";
      Expr parent;
      parent.kind = add ? Expr::Kind::kAdd : Expr::Kind::kSub;
      parent.lhs = std::make_unique<Expr>(std::move(lhs));
      parent.rhs = std::make_unique<Expr>(ParsePrimary());
      lhs = std::move(parent);
    }
    return lhs;
  }

  CompareOp ParseCompareOp() {
    if (lex_.Peek().kind != TokKind::kPunct) lex_.Fail("expected comparison");
    std::string op = lex_.Take().text;
    if (op == "=") return CompareOp::kEq;
    if (op == "<>") return CompareOp::kNe;
    if (op == "<") return CompareOp::kLt;
    if (op == "<=") return CompareOp::kLe;
    if (op == ">") return CompareOp::kGt;
    if (op == ">=") return CompareOp::kGe;
    lex_.Fail("unknown comparison operator '" + op + "'");
  }

  void ParseWhere(Statement& stmt) {
    if (!AcceptKeyword("WHERE")) return;
    do {
      Predicate p;
      p.column = ExpectIdent();
      p.op = ParseCompareOp();
      p.value = ParseExpr();
      stmt.where.push_back(std::move(p));
    } while (AcceptKeyword("AND"));
  }

  void ParseSelect(Statement& stmt) {
    stmt.kind = StatementKind::kSelect;
    if (!AcceptPunct("*")) {
      do {
        stmt.select_columns.push_back(ExpectIdent());
      } while (AcceptPunct(","));
    }
    ExpectKeywordIs("FROM");
    stmt.table = ExpectIdent();
    ParseWhere(stmt);
  }

  void ParseInsert(Statement& stmt) {
    stmt.kind = StatementKind::kInsert;
    ExpectKeywordIs("INTO");
    stmt.table = ExpectIdent();
    if (AcceptPunct("(")) {
      do {
        stmt.insert_columns.push_back(ExpectIdent());
      } while (AcceptPunct(","));
      ExpectPunct(")");
    }
    ExpectKeywordIs("VALUES");
    ExpectPunct("(");
    do {
      stmt.insert_values.push_back(ParseExpr());
    } while (AcceptPunct(","));
    ExpectPunct(")");
  }

  void ParseUpdate(Statement& stmt) {
    stmt.kind = StatementKind::kUpdate;
    stmt.table = ExpectIdent();
    ExpectKeywordIs("SET");
    do {
      std::string col = ExpectIdent();
      ExpectPunct("=");
      stmt.set_exprs.emplace_back(std::move(col), ParseExpr());
    } while (AcceptPunct(","));
    ParseWhere(stmt);
  }

  void ParseDelete(Statement& stmt) {
    stmt.kind = StatementKind::kDelete;
    ExpectKeywordIs("FROM");
    stmt.table = ExpectIdent();
    ParseWhere(stmt);
  }

  Lexer lex_;
  int params_ = 0;
};

}  // namespace

Statement Prepare(const std::string& sql) { return Parser(sql).Parse(); }

}  // namespace iq::sql
