#include "rdbms/table.h"

#include <algorithm>

namespace iq::sql {

const char* ToString(TxnResult r) {
  switch (r) {
    case TxnResult::kOk: return "OK";
    case TxnResult::kConflict: return "CONFLICT";
    case TxnResult::kDuplicateKey: return "DUPLICATE_KEY";
    case TxnResult::kNotFound: return "NOT_FOUND";
    case TxnResult::kInvalidRow: return "INVALID_ROW";
    case TxnResult::kAborted: return "ABORTED";
  }
  return "?";
}

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  indexes_.resize(schema_.secondary_indexes.size());
  for (std::size_t i = 0; i < schema_.secondary_indexes.size(); ++i) {
    index_of_column_[schema_.secondary_indexes[i]] = i;
  }
}

const Table::Version* Table::VisibleVersion(const RowChain& chain,
                                            Timestamp snapshot) const {
  // Chains are short (usually 1-2 live versions); scan from newest.
  for (auto it = chain.versions.rbegin(); it != chain.versions.rend(); ++it) {
    if (it->begin_ts <= snapshot && snapshot < it->end_ts) return &*it;
  }
  return nullptr;
}

std::optional<Row> Table::VisibleRowLocked(const TxnCtx& ctx,
                                           const RowChain& chain) const {
  if (chain.writer == ctx.id && ctx.id != 0) {
    // Own pending intent wins (read-your-writes within the transaction).
    if (chain.pending_is_delete) return std::nullopt;
    if (chain.pending) return *chain.pending;
  }
  const Version* v = VisibleVersion(chain, ctx.snapshot);
  if (v == nullptr) return std::nullopt;
  return v->data;
}

std::optional<Row> Table::Read(const TxnCtx& ctx, const Row& pk) const {
  std::lock_guard lock(mu_);
  auto it = chains_.find(pk);
  if (it == chains_.end()) return std::nullopt;
  return VisibleRowLocked(ctx, *it->second);
}

std::vector<Row> Table::ReadWhereEq(const TxnCtx& ctx, std::size_t col,
                                    const Value& value) const {
  std::lock_guard lock(mu_);
  std::vector<Row> out;
  auto idx_it = index_of_column_.find(col);
  if (idx_it != index_of_column_.end()) {
    const IndexMap& index = indexes_[idx_it->second];
    auto bucket = index.find(value);
    if (bucket == index.end()) return out;
    for (const Row& pk : bucket->second) {
      auto chain_it = chains_.find(pk);
      if (chain_it == chains_.end()) continue;
      auto row = VisibleRowLocked(ctx, *chain_it->second);
      // Index entries are never eagerly removed; re-verify the predicate
      // against the visible version.
      if (row && (*row)[col] == value) out.push_back(std::move(*row));
    }
    return out;
  }
  for (const auto& [pk, chain] : chains_) {
    auto row = VisibleRowLocked(ctx, *chain);
    if (row && (*row)[col] == value) out.push_back(std::move(*row));
  }
  return out;
}

std::vector<Row> Table::Scan(const TxnCtx& ctx,
                             const std::function<bool(const Row&)>& pred) const {
  std::lock_guard lock(mu_);
  std::vector<Row> out;
  for (const auto& [pk, chain] : chains_) {
    auto row = VisibleRowLocked(ctx, *chain);
    if (row && pred(*row)) out.push_back(std::move(*row));
  }
  return out;
}

std::size_t Table::VisibleCount(const TxnCtx& ctx) const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& [pk, chain] : chains_) {
    if (VisibleRowLocked(ctx, *chain)) ++n;
  }
  return n;
}

TxnResult Table::CheckWritableLocked(const TxnCtx& ctx,
                                     const RowChain& chain) const {
  if (chain.writer != 0 && chain.writer != ctx.id) {
    return TxnResult::kConflict;  // another transaction holds a pending intent
  }
  // First-committer-wins: a version committed after our snapshot means a
  // concurrent transaction already won this row.
  if (!chain.versions.empty() &&
      chain.versions.back().begin_ts > ctx.snapshot) {
    return TxnResult::kConflict;
  }
  // A delete that committed after our snapshot also conflicts.
  for (const auto& v : chain.versions) {
    if (v.end_ts != kInfinity && v.end_ts > ctx.snapshot) {
      return TxnResult::kConflict;
    }
  }
  return TxnResult::kOk;
}

void Table::AddToIndexesLocked(const Row& row, const Row& pk) {
  for (const auto& [col, slot] : index_of_column_) {
    indexes_[slot][row[col]].insert(pk);
  }
}

TxnResult Table::InsertIntent(const TxnCtx& ctx, Row row) {
  if (!schema_.RowMatches(row)) return TxnResult::kInvalidRow;
  Row pk = schema_.PrimaryKeyOf(row);
  std::lock_guard lock(mu_);
  auto& chain_ptr = chains_[pk];
  if (chain_ptr == nullptr) chain_ptr = std::make_unique<RowChain>();
  RowChain& chain = *chain_ptr;
  TxnResult writable = CheckWritableLocked(ctx, chain);
  if (writable != TxnResult::kOk) return writable;
  // Duplicate if a row is visible to us (own pending insert included).
  if (VisibleRowLocked(ctx, chain)) return TxnResult::kDuplicateKey;
  chain.writer = ctx.id;
  chain.pending = std::move(row);
  chain.pending_is_delete = false;
  AddToIndexesLocked(*chain.pending, pk);
  return TxnResult::kOk;
}

TxnResult Table::UpdateIntent(const TxnCtx& ctx, const Row& pk,
                              const std::function<void(Row&)>& mutate) {
  std::lock_guard lock(mu_);
  auto it = chains_.find(pk);
  if (it == chains_.end()) return TxnResult::kNotFound;
  RowChain& chain = *it->second;
  TxnResult writable = CheckWritableLocked(ctx, chain);
  if (writable != TxnResult::kOk) return writable;
  auto current = VisibleRowLocked(ctx, chain);
  if (!current) return TxnResult::kNotFound;
  mutate(*current);
  if (!schema_.RowMatches(*current)) return TxnResult::kInvalidRow;
  // Updating primary-key columns is not supported (delete + insert instead).
  if (schema_.PrimaryKeyOf(*current) != pk) return TxnResult::kInvalidRow;
  chain.writer = ctx.id;
  chain.pending = std::move(current);
  chain.pending_is_delete = false;
  AddToIndexesLocked(*chain.pending, pk);
  return TxnResult::kOk;
}

TxnResult Table::DeleteIntent(const TxnCtx& ctx, const Row& pk) {
  std::lock_guard lock(mu_);
  auto it = chains_.find(pk);
  if (it == chains_.end()) return TxnResult::kNotFound;
  RowChain& chain = *it->second;
  TxnResult writable = CheckWritableLocked(ctx, chain);
  if (writable != TxnResult::kOk) return writable;
  if (!VisibleRowLocked(ctx, chain)) return TxnResult::kNotFound;
  chain.writer = ctx.id;
  chain.pending = std::nullopt;
  chain.pending_is_delete = true;
  return TxnResult::kOk;
}

void Table::InstallCommit(TxnId txn, const Row& pk, Timestamp ts) {
  std::lock_guard lock(mu_);
  auto it = chains_.find(pk);
  if (it == chains_.end()) return;
  RowChain& chain = *it->second;
  if (chain.writer != txn) return;
  // Terminate the previously live version, if any.
  if (!chain.versions.empty() && chain.versions.back().end_ts == kInfinity) {
    chain.versions.back().end_ts = ts;
  }
  if (!chain.pending_is_delete && chain.pending) {
    chain.versions.push_back(Version{ts, kInfinity, std::move(*chain.pending)});
  }
  chain.writer = 0;
  chain.pending.reset();
  chain.pending_is_delete = false;
}

void Table::AbortIntent(TxnId txn, const Row& pk) {
  std::lock_guard lock(mu_);
  auto it = chains_.find(pk);
  if (it == chains_.end()) return;
  RowChain& chain = *it->second;
  if (chain.writer != txn) return;
  chain.writer = 0;
  chain.pending.reset();
  chain.pending_is_delete = false;
  if (chain.versions.empty()) chains_.erase(it);  // aborted fresh insert
}

std::size_t Table::Vacuum(Timestamp oldest_active) {
  std::lock_guard lock(mu_);
  std::size_t reclaimed = 0;
  for (auto it = chains_.begin(); it != chains_.end();) {
    RowChain& chain = *it->second;
    auto dead = [&](const Version& v) {
      return v.end_ts != kInfinity && v.end_ts <= oldest_active;
    };
    auto before = chain.versions.size();
    chain.versions.erase(
        std::remove_if(chain.versions.begin(), chain.versions.end(), dead),
        chain.versions.end());
    reclaimed += before - chain.versions.size();
    if (chain.versions.empty() && chain.writer == 0) {
      it = chains_.erase(it);
    } else {
      ++it;
    }
  }
  // Rebuild indexes from live data (simplest correct pruning).
  for (auto& index : indexes_) index.clear();
  for (const auto& [pk, chain] : chains_) {
    for (const auto& v : chain->versions) AddToIndexesLocked(v.data, pk);
    if (chain->pending) AddToIndexesLocked(*chain->pending, pk);
  }
  return reclaimed;
}

std::size_t Table::ChainCount() const {
  std::lock_guard lock(mu_);
  return chains_.size();
}

}  // namespace iq::sql
