// Multi-version table storage.
//
// Each logical row (keyed by primary key) is a chain of committed versions
// plus at most one pending (uncommitted) write intent. Snapshot isolation
// visibility: a transaction with snapshot timestamp S sees the version with
// begin_ts <= S < end_ts, plus its own pending intent. Write-write
// conflicts are detected eagerly at intent time (first-committer-wins, no
// blocking): a second writer aborts instead of waiting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdbms/schema.h"
#include "rdbms/value.h"

namespace iq::sql {

using Timestamp = std::uint64_t;  // commit timestamps; 0 = "before all"
using TxnId = std::uint64_t;      // 0 = no transaction

constexpr Timestamp kInfinity = ~Timestamp{0};

/// Outcome of a write-side table operation.
enum class TxnResult {
  kOk,
  kConflict,      // write-write conflict under snapshot isolation
  kDuplicateKey,  // insert of an existing primary key
  kNotFound,      // update/delete of a row invisible to the snapshot
  kInvalidRow,    // row shape does not match the schema
  kAborted,       // transaction is no longer active
};

const char* ToString(TxnResult r);

/// Identity + snapshot of the acting transaction, passed into every
/// table operation.
struct TxnCtx {
  TxnId id = 0;
  Timestamp snapshot = 0;
};

class Table {
 public:
  explicit Table(TableSchema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }

  // ---- reads ------------------------------------------------------------

  /// Point read by primary key. Sees the snapshot plus own pending intent.
  std::optional<Row> Read(const TxnCtx& ctx, const Row& pk) const;

  /// Equality lookup on one column. Uses the secondary hash index when one
  /// exists on that column, otherwise scans.
  std::vector<Row> ReadWhereEq(const TxnCtx& ctx, std::size_t col,
                               const Value& value) const;

  /// Full visible scan with an arbitrary predicate.
  std::vector<Row> Scan(const TxnCtx& ctx,
                        const std::function<bool(const Row&)>& pred) const;

  /// Number of rows visible to the snapshot.
  std::size_t VisibleCount(const TxnCtx& ctx) const;

  // ---- write intents ------------------------------------------------------

  /// Register an insert intent. Fails with kDuplicateKey if a visible or
  /// pending row already exists for the key.
  TxnResult InsertIntent(const TxnCtx& ctx, Row row);

  /// Register an update intent; `mutate` receives the currently visible
  /// row and edits it in place. kNotFound if no visible row.
  TxnResult UpdateIntent(const TxnCtx& ctx, const Row& pk,
                         const std::function<void(Row&)>& mutate);

  /// Register a delete intent. kNotFound if no visible row.
  TxnResult DeleteIntent(const TxnCtx& ctx, const Row& pk);

  // ---- commit/abort protocol (driven by Database) -------------------------

  /// Make txn's pending intent on `pk` durable at commit timestamp `ts`.
  void InstallCommit(TxnId txn, const Row& pk, Timestamp ts);

  /// Discard txn's pending intent on `pk`.
  void AbortIntent(TxnId txn, const Row& pk);

  // ---- maintenance --------------------------------------------------------

  /// Drop versions invisible to every snapshot >= `oldest_active` and prune
  /// dangling index entries. Returns number of versions reclaimed.
  std::size_t Vacuum(Timestamp oldest_active);

  /// Rows with at least one committed version (including dead ones).
  std::size_t ChainCount() const;

 private:
  struct Version {
    Timestamp begin_ts = 0;
    Timestamp end_ts = kInfinity;
    Row data;
  };

  struct RowChain {
    std::vector<Version> versions;  // begin_ts ascending
    TxnId writer = 0;               // pending intent owner
    std::optional<Row> pending;     // nullopt + writer!=0 => pending delete
    bool pending_is_delete = false;
  };

  using ChainMap = std::unordered_map<Row, std::unique_ptr<RowChain>, RowHash>;
  using IndexMap = std::unordered_map<Value, std::unordered_set<Row, RowHash>,
                                      ValueHash>;

  /// Visible committed version for the snapshot, or nullptr.
  const Version* VisibleVersion(const RowChain& chain, Timestamp snapshot) const;

  /// Row visible to ctx including own pending intent; nullopt if none.
  std::optional<Row> VisibleRowLocked(const TxnCtx& ctx,
                                      const RowChain& chain) const;

  /// First-committer-wins + writer-lock conflict check.
  TxnResult CheckWritableLocked(const TxnCtx& ctx, const RowChain& chain) const;

  void AddToIndexesLocked(const Row& row, const Row& pk);

  TableSchema schema_;
  /// position in indexes_ for each indexed column id
  std::unordered_map<std::size_t, std::size_t> index_of_column_;

  mutable std::mutex mu_;
  ChainMap chains_;
  std::vector<IndexMap> indexes_;
};

}  // namespace iq::sql
