#include "rdbms/value.h"

#include <functional>

namespace iq::sql {

std::string ToString(const Value& v) {
  if (IsNull(v)) return "NULL";
  if (auto i = AsInt(v)) return std::to_string(*i);
  return "'" + std::get<std::string>(v) + "'";
}

std::string ToString(const Row& row) {
  std::string out = "(";
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += ToString(row[i]);
  }
  out += ")";
  return out;
}

std::size_t ValueHash::operator()(const Value& v) const {
  if (IsNull(v)) return 0x9e3779b9;
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return std::hash<std::int64_t>{}(*i);
  }
  return std::hash<std::string>{}(std::get<std::string>(v));
}

}  // namespace iq::sql
