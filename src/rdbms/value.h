// Value model for the relational engine: a cell is NULL, a 64-bit integer,
// or a text string. Rows are flat vectors of cells positioned by the table
// schema's column order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace iq::sql {

struct Null {
  bool operator==(const Null&) const = default;
  auto operator<=>(const Null&) const = default;
};

/// One table cell. The variant order defines cross-type ordering
/// (NULL < integers < text), which only matters for deterministic sorts.
using Value = std::variant<Null, std::int64_t, std::string>;

using Row = std::vector<Value>;

inline Value V() { return Null{}; }
inline Value V(std::int64_t x) { return x; }
inline Value V(int x) { return static_cast<std::int64_t>(x); }
inline Value V(std::string s) { return Value(std::move(s)); }
inline Value V(const char* s) { return Value(std::string(s)); }

inline bool IsNull(const Value& v) { return std::holds_alternative<Null>(v); }

/// Integer accessor; returns nullopt for non-integers.
inline std::optional<std::int64_t> AsInt(const Value& v) {
  if (const auto* p = std::get_if<std::int64_t>(&v)) return *p;
  return std::nullopt;
}

/// Text accessor; returns nullopt for non-strings.
inline std::optional<std::string> AsText(const Value& v) {
  if (const auto* p = std::get_if<std::string>(&v)) return *p;
  return std::nullopt;
}

std::string ToString(const Value& v);
std::string ToString(const Row& row);

/// Hash for composite keys built from Values (used by indexes).
struct ValueHash {
  std::size_t operator()(const Value& v) const;
};

struct RowHash {
  std::size_t operator()(const Row& r) const {
    std::size_t h = 0xcbf29ce484222325ULL;
    ValueHash vh;
    for (const auto& v : r) h = (h ^ vh(v)) * 0x100000001b3ULL;
    return h;
  }
};

}  // namespace iq::sql
