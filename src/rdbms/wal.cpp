#include "rdbms/wal.h"

#include <charconv>
#include <fstream>
#include <stdexcept>

namespace iq::sql {
namespace {

void AppendValue(std::string& out, const Value& v) {
  if (IsNull(v)) {
    out += "N;";
  } else if (auto i = AsInt(v)) {
    out += "I" + std::to_string(*i) + ";";
  } else {
    const std::string& s = std::get<std::string>(v);
    out += "S" + std::to_string(s.size()) + ":" + s + ";";
  }
}

bool ParseValue(const std::string& raw, std::size_t& pos, Value* out) {
  if (pos >= raw.size()) return false;
  char tag = raw[pos++];
  if (tag == 'N') {
    if (pos >= raw.size() || raw[pos] != ';') return false;
    ++pos;
    *out = Null{};
    return true;
  }
  if (tag == 'I') {
    std::size_t end = raw.find(';', pos);
    if (end == std::string::npos) return false;
    std::int64_t v = 0;
    auto [p, ec] = std::from_chars(raw.data() + pos, raw.data() + end, v);
    if (ec != std::errc{} || p != raw.data() + end) return false;
    pos = end + 1;
    *out = v;
    return true;
  }
  if (tag == 'S') {
    std::size_t colon = raw.find(':', pos);
    if (colon == std::string::npos) return false;
    std::size_t len = 0;
    auto [p, ec] = std::from_chars(raw.data() + pos, raw.data() + colon, len);
    if (ec != std::errc{} || p != raw.data() + colon) return false;
    pos = colon + 1;
    if (pos + len > raw.size()) return false;
    *out = raw.substr(pos, len);
    pos += len;
    if (pos >= raw.size() || raw[pos] != ';') return false;
    ++pos;
    return true;
  }
  return false;
}

/// Reads "<n>" at pos up to `stop_char`, advancing pos past the stop char.
bool ParseSize(const std::string& raw, std::size_t& pos, char stop_char,
               std::uint64_t* out) {
  std::size_t end = raw.find(stop_char, pos);
  if (end == std::string::npos) return false;
  auto [p, ec] = std::from_chars(raw.data() + pos, raw.data() + end, *out);
  if (ec != std::errc{} || p != raw.data() + end) return false;
  pos = end + 1;
  return true;
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open WAL file: " + path_);
  }
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

std::string WriteAheadLog::EncodeRecord(Timestamp ts,
                                        const std::vector<RedoOp>& ops) {
  std::string out = "TXN " + std::to_string(ts) + " " +
                    std::to_string(ops.size()) + "\n";
  for (const auto& op : ops) {
    out += op.kind == RedoOp::Kind::kPut ? "P " : "D ";
    out += std::to_string(op.table.size()) + ":" + op.table + " " +
           std::to_string(op.row.size()) + " ";
    for (const auto& v : op.row) AppendValue(out, v);
    out += "\n";
  }
  out += "COMMIT\n";
  return out;
}

bool WriteAheadLog::DecodeRecord(const std::string& data, std::size_t* pos,
                                 Timestamp* ts, std::vector<RedoOp>* ops) {
  std::size_t p = *pos;
  ops->clear();
  if (data.compare(p, 4, "TXN ") != 0) return false;
  p += 4;
  std::uint64_t ts_val = 0, op_count = 0;
  if (!ParseSize(data, p, ' ', &ts_val)) return false;
  if (!ParseSize(data, p, '\n', &op_count)) return false;
  for (std::uint64_t i = 0; i < op_count; ++i) {
    if (p + 2 > data.size()) return false;
    RedoOp op;
    if (data[p] == 'P') {
      op.kind = RedoOp::Kind::kPut;
    } else if (data[p] == 'D') {
      op.kind = RedoOp::Kind::kDelete;
    } else {
      return false;
    }
    if (data[p + 1] != ' ') return false;
    p += 2;
    std::uint64_t name_len = 0;
    if (!ParseSize(data, p, ':', &name_len)) return false;
    if (p + name_len > data.size()) return false;
    op.table = data.substr(p, name_len);
    p += name_len;
    if (p >= data.size() || data[p] != ' ') return false;
    ++p;
    std::uint64_t cells = 0;
    if (!ParseSize(data, p, ' ', &cells)) return false;
    op.row.reserve(cells);
    for (std::uint64_t c = 0; c < cells; ++c) {
      Value v;
      if (!ParseValue(data, p, &v)) return false;
      op.row.push_back(std::move(v));
    }
    if (p >= data.size() || data[p] != '\n') return false;
    ++p;
    ops->push_back(std::move(op));
  }
  if (data.compare(p, 7, "COMMIT\n") != 0) return false;
  p += 7;
  *ts = ts_val;
  *pos = p;
  return true;
}

void WriteAheadLog::Append(Timestamp commit_ts, const std::vector<RedoOp>& ops) {
  std::string record = EncodeRecord(commit_ts, ops);
  std::lock_guard lock(mu_);
  std::fwrite(record.data(), 1, record.size(), file_);
  std::fflush(file_);
  ++records_;
}

std::size_t WriteAheadLog::Replay(const std::string& path, Database& db) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  std::size_t applied = 0;
  Timestamp ts = 0;
  std::vector<RedoOp> ops;
  while (DecodeRecord(data, &pos, &ts, &ops)) {
    auto txn = db.Begin();
    bool ok = true;
    for (const auto& op : ops) {
      Table* table = db.GetTable(op.table);
      if (table == nullptr) continue;  // dropped/unknown table: skip op
      if (op.kind == RedoOp::Kind::kDelete) {
        txn->DeleteByPk(op.table, op.row);  // missing row is fine
        continue;
      }
      Row pk = table->schema().PrimaryKeyOf(op.row);
      // Insert-or-replace (replay is idempotent over a prefix).
      if (txn->SelectByPk(op.table, pk)) {
        Row new_row = op.row;
        ok = txn->UpdateByPk(op.table, pk, [&](Row& row) { row = new_row; }) ==
                 TxnResult::kOk &&
             ok;
      } else {
        ok = txn->Insert(op.table, op.row) == TxnResult::kOk && ok;
      }
    }
    if (ok && txn->Commit() == TxnResult::kOk) ++applied;
  }
  return applied;
}

}  // namespace iq::sql
