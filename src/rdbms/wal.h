// Durability: a redo-only write-ahead log for the MVCC engine.
//
// The paper delegates the D of ACID to the RDBMS ("durability is provided
// by the RDBMS with an in-memory KVS", Section 2); this module gives our
// engine that property. Every commit appends one self-delimiting record
//
//   TXN <commit_ts> <op_count>\n
//   P <table> <row...>\n        (put: insert-or-replace the row)
//   D <table> <pk...>\n         (delete by primary key)
//   COMMIT\n
//
// flushed before the commit returns. Recovery replays complete records in
// commit order into a fresh Database (schemas are re-created by the
// application, as with real systems' catalogs); a torn trailing record -
// the crash case - is detected by its missing COMMIT marker and discarded.
//
// Values are length-prefixed, so arbitrary bytes in text cells are safe.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "rdbms/database.h"

namespace iq::sql {

class WriteAheadLog {
 public:
  /// Opens (appends to) the log file. Throws std::runtime_error on failure.
  explicit WriteAheadLog(std::string path);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;

  /// Append one commit record and flush. Thread-safe; callers must append
  /// in commit-timestamp order (Database holds its commit mutex across the
  /// install + log, so this holds by construction).
  void Append(Timestamp commit_ts, const std::vector<RedoOp>& ops);

  const std::string& path() const { return path_; }
  std::uint64_t records_written() const { return records_; }

  /// Replay every complete record of `path` into `db` (whose tables must
  /// already exist). Returns the number of records applied. Unknown tables
  /// and malformed trailing data are skipped/stop replay respectively.
  static std::size_t Replay(const std::string& path, Database& db);

  // ---- record codec (exposed for tests) ----
  static std::string EncodeRecord(Timestamp ts, const std::vector<RedoOp>& ops);
  /// Parse one record starting at `pos`; advances pos past it. Returns
  /// false (leaving pos untouched) on incomplete/torn data.
  static bool DecodeRecord(const std::string& data, std::size_t* pos,
                           Timestamp* ts, std::vector<RedoOp>* ops);

 private:
  std::string path_;
  std::FILE* file_;
  std::mutex mu_;
  std::uint64_t records_ = 0;
};

}  // namespace iq::sql
