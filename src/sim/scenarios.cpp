#include "sim/scenarios.h"

#include <thread>

#include "core/iq_client.h"
#include "core/iq_server.h"
#include "rdbms/database.h"
#include "sim/step_scheduler.h"

namespace iq::sim {
namespace {

constexpr const char* kKey = "K";

/// One relational datum (row k=1 of table T) cached under KVS key "K".
struct Fixture {
  sql::Database db;
  IQServer server;

  Fixture(const std::string& initial, bool warm_cache) {
    db.CreateTable(sql::SchemaBuilder("T")
                       .AddInt("k")
                       .AddText("v")
                       .PrimaryKey({"k"})
                       .Build());
    auto txn = db.Begin();
    txn->Insert("T", {sql::V(1), sql::V(initial)});
    txn->Commit();
    if (warm_cache) server.store().Set(kKey, initial);
  }

  /// Current committed relational value.
  std::string DbValue() {
    auto txn = db.Begin();
    auto row = txn->SelectByPk("T", {sql::V(1)});
    txn->Rollback();
    return row ? *sql::AsText((*row)[1]) : "";
  }

  /// Read the row inside an existing transaction (snapshot semantics).
  std::string DbValueIn(sql::Transaction& txn) {
    auto row = txn.SelectByPk("T", {sql::V(1)});
    return row ? *sql::AsText((*row)[1]) : "";
  }

  /// Mutate the row inside `txn` with `f` applied to the current value.
  bool DbApply(sql::Transaction& txn,
               const std::function<std::string(const std::string&)>& f) {
    return txn.UpdateByPk("T", {sql::V(1)}, [&](sql::Row& row) {
             row[1] = sql::V(f(*sql::AsText(row[1])));
           }) == sql::TxnResult::kOk;
  }

  /// What a user read observes after the schedule: the cached value on a
  /// hit, or a freshly recomputed (and correct) value on a miss.
  ScenarioResult Finish(bool schedule_ok) {
    ScenarioResult r;
    r.schedule_ok = schedule_ok;
    r.rdbms_value = DbValue();
    auto item = server.store().Get(kKey);
    if (item) {
      r.kvs_resident = true;
      r.kvs_raw = item->value;
      r.kvs_value = item->value;
    } else {
      r.kvs_value = r.rdbms_value;  // a miss recomputes from the RDBMS
    }
    return r;
  }
};

std::string TimesTen(const std::string& s) {
  return std::to_string(std::stoll(s) * 10);
}
std::string PlusFifty(const std::string& s) {
  return std::to_string(std::stoll(s) + 50);
}

}  // namespace

// ---- Figure 2: cas cannot order two R-M-W write sessions --------------------

ScenarioResult RunFigure2(bool use_iq) {
  Fixture fx("100", /*warm_cache=*/true);
  bool ok = true;

  if (!use_iq) {
    StepScheduler sched({"1.rdbms", "2.all", "1.kvs"});
    std::thread s1([&] {
      // S1: +50. RDBMS first...
      ok &= sched.Step("1.rdbms", [&] {
        auto txn = fx.db.Begin();
        fx.DbApply(*txn, PlusFifty);
        txn->Commit();
      });
      // ... KVS R-M-W (get, modify, cas) long after S2 slipped in between.
      ok &= sched.Step("1.kvs", [&] {
        for (int i = 0; i < 10; ++i) {
          auto item = fx.server.store().Get(kKey);
          if (!item) break;
          if (fx.server.store().Cas(kKey, PlusFifty(item->value), item->cas) ==
              StoreResult::kStored) {
            break;
          }
        }
      });
    });
    std::thread s2([&] {
      // S2: x10, entirely between S1's RDBMS and KVS phases.
      ok &= sched.Step("2.all", [&] {
        auto txn = fx.db.Begin();
        fx.DbApply(*txn, TimesTen);
        txn->Commit();
        for (int i = 0; i < 10; ++i) {
          auto item = fx.server.store().Get(kKey);
          if (!item) break;
          if (fx.server.store().Cas(kKey, TimesTen(item->value), item->cas) ==
              StoreResult::kStored) {
            break;
          }
        }
      });
    });
    s1.join();
    s2.join();
    return fx.Finish(ok);
  }

  // IQ refresh: Q leases serialize the two write sessions.
  IQClient client(fx.server);
  StepScheduler sched({"1.qaread", "1.rdbms", "2.try", "1.sar", "2.redo"});
  std::thread s1([&] {
    auto session = client.NewSession();
    std::optional<std::string> old;
    ok &= sched.Step("1.qaread",
                     [&] { session->QaRead(kKey, old); });
    ok &= sched.Step("1.rdbms", [&] {
      auto txn = fx.db.Begin();
      fx.DbApply(*txn, PlusFifty);
      txn->Commit();
    });
    ok &= sched.Step("1.sar", [&] {
      session->SaR(kKey, old ? std::optional<std::string_view>(
                                   *old = PlusFifty(*old))
                             : std::nullopt);
      session->Commit();
    });
  });
  std::thread s2([&] {
    auto session = client.NewSession();
    std::optional<std::string> old;
    ok &= sched.Step("2.try", [&] {
      // Rejected: S1 holds the Q lease (Figure 5b).
      if (session->QaRead(kKey, old) != ClientQResult::kQConflict) ok = false;
      session->Abort();
    });
    ok &= sched.Step("2.redo", [&] {
      if (session->QaRead(kKey, old) != ClientQResult::kGranted) {
        ok = false;
        return;
      }
      auto txn = fx.db.Begin();
      fx.DbApply(*txn, TimesTen);
      txn->Commit();
      session->SaR(kKey, old ? std::optional<std::string_view>(
                                   *old = TimesTen(*old))
                             : std::nullopt);
      session->Commit();
    });
  });
  s1.join();
  s2.join();
  return fx.Finish(ok);
}

// ---- Figure 3: snapshot-isolation race with invalidate ----------------------

ScenarioResult RunFigure3(bool use_iq) {
  if (!use_iq) {
    Fixture fx("old", /*warm_cache=*/true);
    bool ok = true;
    StepScheduler sched({"1.12", "1.3", "2.1", "2.24", "1.4", "2.5"});
    std::thread s1([&] {
      std::unique_ptr<sql::Transaction> txn;
      ok &= sched.Step("1.12", [&] {
        txn = fx.db.Begin();
        fx.DbApply(*txn, [](const std::string&) { return "new"; });
      });
      // Trigger-based invalidation: the delete runs inside the transaction.
      ok &= sched.Step("1.3", [&] { fx.server.DeleteVoid(kKey); });
      ok &= sched.Step("1.4", [&] { txn->Commit(); });
    });
    std::thread s2([&] {
      LeaseToken token = 0;
      std::string computed;
      ok &= sched.Step("2.1", [&] {
        GetReply r = fx.server.IQget(kKey);  // read-lease baseline
        if (r.status != GetReply::Status::kMissGrantedI) ok = false;
        token = r.token;
      });
      ok &= sched.Step("2.24", [&] {
        // Snapshot taken before S1 commits: observes the old value.
        auto txn = fx.db.Begin();
        computed = fx.DbValueIn(*txn);
        txn->Rollback();
      });
      ok &= sched.Step("2.5", [&] {
        // The I lease is still valid: the stale value lands in the KVS.
        fx.server.IQset(kKey, computed, token);
      });
    });
    s1.join();
    s2.join();
    return fx.Finish(ok);
  }

  // IQ: the Q lease quarantines the key across the commit; the reader backs
  // off and recomputes only after DaR.
  Fixture fx("old", /*warm_cache=*/false);
  bool ok = true;
  StepScheduler sched({"1.12", "1.3", "2.1", "1.4", "1.5", "2.5"});
  std::thread s1([&] {
    SessionId tid = fx.server.GenID();
    std::unique_ptr<sql::Transaction> txn;
    ok &= sched.Step("1.12", [&] {
      txn = fx.db.Begin();
      fx.DbApply(*txn, [](const std::string&) { return "new"; });
    });
    ok &= sched.Step("1.3", [&] { fx.server.QaReg(tid, kKey); });
    ok &= sched.Step("1.4", [&] { txn->Commit(); });
    ok &= sched.Step("1.5", [&] { fx.server.DaR(tid); });
  });
  std::thread s2([&] {
    ok &= sched.Step("2.1", [&] {
      // Quarantined: the KVS refuses an I lease and asks S2 to back off.
      GetReply r = fx.server.IQget(kKey);
      if (r.status != GetReply::Status::kMissBackoff) ok = false;
    });
    ok &= sched.Step("2.5", [&] {
      GetReply r = fx.server.IQget(kKey);
      if (r.status != GetReply::Status::kMissGrantedI) {
        ok = false;
        return;
      }
      auto txn = fx.db.Begin();
      std::string computed = fx.DbValueIn(*txn);  // post-commit: "new"
      txn->Rollback();
      fx.server.IQset(kKey, computed, r.token);
    });
  });
  s1.join();
  s2.join();
  return fx.Finish(ok);
}

// ---- Figure 6: dirty read when a refresh session aborts ---------------------

ScenarioResult RunFigure6(bool use_iq) {
  Fixture fx("100", /*warm_cache=*/true);
  bool ok = true;

  if (!use_iq) {
    StepScheduler sched({"1.rmw", "1.abort", "2.read"});
    std::string dirty_read;
    std::thread s1([&] {
      ok &= sched.Step("1.rmw", [&] {
        // Refresh applied to the KVS before the RDBMS commit...
        auto item = fx.server.store().Get(kKey);
        if (item) fx.server.store().Set(kKey, PlusFifty(item->value));
      });
      ok &= sched.Step("1.abort", [&] {
        auto txn = fx.db.Begin();
        fx.DbApply(*txn, PlusFifty);
        txn->Rollback();  // ... and the transaction aborts (step 1.5)
      });
    });
    std::thread s2([&] {
      ok &= sched.Step("2.read", [&] {
        auto item = fx.server.store().Get(kKey);
        if (item) dirty_read = item->value;
      });
    });
    s1.join();
    s2.join();
    auto result = fx.Finish(ok);
    // The dirty value S2 consumed is the stale final state as well.
    return result;
  }

  IQClient client(fx.server);
  StepScheduler sched({"1.qaread", "1.abort", "2.read"});
  std::thread s1([&] {
    auto session = client.NewSession();
    std::optional<std::string> old;
    ok &= sched.Step("1.qaread", [&] { session->QaRead(kKey, old); });
    ok &= sched.Step("1.abort", [&] {
      auto txn = fx.db.Begin();
      fx.DbApply(*txn, PlusFifty);
      txn->Rollback();
      session->Abort();  // releases the Q lease, leaves the old value
    });
  });
  std::thread s2([&] {
    ok &= sched.Step("2.read", [&] {
      GetReply r = fx.server.IQget(kKey);
      if (r.status != GetReply::Status::kHit || r.value != "100") ok = false;
    });
  });
  s1.join();
  s2.join();
  return fx.Finish(ok);
}

// ---- Figure 7: snapshot-isolation race with delta ----------------------------

ScenarioResult RunFigure7(bool use_iq) {
  Fixture fx("A", /*warm_cache=*/false);
  bool ok = true;

  if (!use_iq) {
    StepScheduler sched({"2.1", "2.2", "1.rdbms", "1.delta", "2.5"});
    LeaseToken token = 0;
    std::string computed;
    std::thread s2([&] {
      ok &= sched.Step("2.1", [&] {
        GetReply r = fx.server.IQget(kKey);
        if (r.status != GetReply::Status::kMissGrantedI) ok = false;
        token = r.token;
      });
      ok &= sched.Step("2.2", [&] {
        auto txn = fx.db.Begin();
        computed = fx.DbValueIn(*txn);  // pre-commit snapshot: "A"
        txn->Rollback();
      });
      ok &= sched.Step("2.5", [&] { fx.server.IQset(kKey, computed, token); });
    });
    std::thread s1([&] {
      ok &= sched.Step("1.rdbms", [&] {
        auto txn = fx.db.Begin();
        fx.DbApply(*txn, [](const std::string& v) { return v + "B"; });
        txn->Commit();
      });
      ok &= sched.Step("1.delta", [&] {
        fx.server.store().Append(kKey, "B");  // miss: the append is lost
      });
    });
    s1.join();
    s2.join();
    return fx.Finish(ok);
  }

  StepScheduler sched({"2.1", "2.2", "1.delta", "1.rdbms", "1.commit", "2.5"});
  LeaseToken token = 0;
  std::string computed;
  std::thread s2([&] {
    ok &= sched.Step("2.1", [&] {
      GetReply r = fx.server.IQget(kKey);
      if (r.status != GetReply::Status::kMissGrantedI) ok = false;
      token = r.token;
    });
    ok &= sched.Step("2.2", [&] {
      auto txn = fx.db.Begin();
      computed = fx.DbValueIn(*txn);
      txn->Rollback();
    });
    ok &= sched.Step("2.5", [&] {
      // The IQ-delta voided this I lease: the stale set is dropped.
      if (fx.server.IQset(kKey, computed, token) == StoreResult::kStored) {
        ok = false;
      }
    });
  });
  std::thread s1([&] {
    SessionId tid = fx.server.GenID();
    ok &= sched.Step("1.delta", [&] {
      fx.server.IQDelta(tid, kKey, DeltaOp{DeltaOp::Kind::kAppend, "B", 0});
    });
    ok &= sched.Step("1.rdbms", [&] {
      auto txn = fx.db.Begin();
      fx.DbApply(*txn, [](const std::string& v) { return v + "B"; });
      txn->Commit();
    });
    ok &= sched.Step("1.commit", [&] { fx.server.Commit(tid); });
  });
  s1.join();
  s2.join();
  return fx.Finish(ok);
}

// ---- Figure 8: post-commit delta applied twice --------------------------------

ScenarioResult RunFigure8(bool use_iq) {
  Fixture fx("A", /*warm_cache=*/false);
  bool ok = true;

  if (!use_iq) {
    StepScheduler sched({"1.rdbms", "2.1", "2.2", "2.5", "1.delta"});
    std::thread s1([&] {
      ok &= sched.Step("1.rdbms", [&] {
        auto txn = fx.db.Begin();
        fx.DbApply(*txn, [](const std::string& v) { return v + "B"; });
        txn->Commit();
      });
      ok &= sched.Step("1.delta", [&] {
        // S2 already installed "AB"; this second append makes "ABB".
        fx.server.store().Append(kKey, "B");
      });
    });
    std::thread s2([&] {
      LeaseToken token = 0;
      std::string computed;
      ok &= sched.Step("2.1", [&] {
        GetReply r = fx.server.IQget(kKey);
        if (r.status != GetReply::Status::kMissGrantedI) ok = false;
        token = r.token;
      });
      ok &= sched.Step("2.2", [&] {
        auto txn = fx.db.Begin();
        computed = fx.DbValueIn(*txn);  // post-commit: "AB"
        txn->Rollback();
      });
      ok &= sched.Step("2.5", [&] { fx.server.IQset(kKey, computed, token); });
    });
    s1.join();
    s2.join();
    return fx.Finish(ok);
  }

  StepScheduler sched({"1.delta", "1.rdbms", "2.1", "1.commit", "2.2"});
  std::thread s1([&] {
    SessionId tid = fx.server.GenID();
    ok &= sched.Step("1.delta", [&] {
      fx.server.IQDelta(tid, kKey, DeltaOp{DeltaOp::Kind::kAppend, "B", 0});
    });
    ok &= sched.Step("1.rdbms", [&] {
      auto txn = fx.db.Begin();
      fx.DbApply(*txn, [](const std::string& v) { return v + "B"; });
      txn->Commit();
    });
    ok &= sched.Step("1.commit", [&] { fx.server.Commit(tid); });
  });
  std::thread s2([&] {
    ok &= sched.Step("2.1", [&] {
      // Quarantined: back off instead of computing a value that would race
      // with S1's delta.
      GetReply r = fx.server.IQget(kKey);
      if (r.status != GetReply::Status::kMissBackoff) ok = false;
    });
    ok &= sched.Step("2.2", [&] {
      GetReply r = fx.server.IQget(kKey);
      if (r.status != GetReply::Status::kMissGrantedI) {
        ok = false;
        return;
      }
      auto txn = fx.db.Begin();
      std::string computed = fx.DbValueIn(*txn);
      txn->Rollback();
      fx.server.IQset(kKey, computed, r.token);
    });
  });
  s1.join();
  s2.join();
  return fx.Finish(ok);
}

}  // namespace iq::sim
