// Scripted reproductions of the paper's race-condition figures.
//
// Each scenario runs twice: `use_iq=false` executes the vulnerable client
// (plain memcached ops / cas / read leases, exactly the arrangement the
// figure depicts) and produces divergent RDBMS/KVS state; `use_iq=true`
// executes the same logical sessions through the IQ commands and converges.
//
//   Figure 2 - compare-and-swap cannot impose the RDBMS serial order on
//              two R-M-W write sessions (RDBMS 1500 vs KVS 1050).
//   Figure 3 - snapshot isolation lets a read session install a
//              pre-update value after a trigger-based invalidation.
//   Figure 6 - refresh writes the KVS before the RDBMS transaction
//              aborts: dirty read.
//   Figure 7 - snapshot isolation + delta: a read session overwrites the
//              writer's append with a stale computed value.
//   Figure 8 - delta applied after commit collides with a read session
//              that already observed the committed data: append twice.
#pragma once

#include <cstdint>
#include <string>

namespace iq::sim {

struct ScenarioResult {
  /// Value of the datum in the relational database after the schedule.
  std::string rdbms_value;
  /// Value a fresh read of the KVS key returns after the schedule (the
  /// cached value, or recomputed on miss - what an application user sees).
  std::string kvs_value;
  /// Raw cached value at the end (empty if not resident).
  std::string kvs_raw;
  bool kvs_resident = false;
  /// True when the schedule executed completely (no scheduler abort).
  bool schedule_ok = false;

  bool Consistent() const { return schedule_ok && rdbms_value == kvs_value; }
};

ScenarioResult RunFigure2(bool use_iq);
ScenarioResult RunFigure3(bool use_iq);
ScenarioResult RunFigure6(bool use_iq);
ScenarioResult RunFigure7(bool use_iq);
ScenarioResult RunFigure8(bool use_iq);

}  // namespace iq::sim
