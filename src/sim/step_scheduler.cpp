#include "sim/step_scheduler.h"

#include <chrono>

namespace iq::sim {

StepScheduler::StepScheduler(std::vector<std::string> order, Nanos timeout)
    : order_(std::move(order)), timeout_(timeout) {}

bool StepScheduler::Step(const std::string& label,
                         const std::function<void()>& fn) {
  std::unique_lock lock(mu_);
  bool ready = cv_.wait_for(lock, std::chrono::nanoseconds(timeout_), [&] {
    return aborted_ ||
           (next_ < order_.size() && order_[next_] == label);
  });
  if (!ready || aborted_ || next_ >= order_.size()) {
    aborted_ = true;
    cv_.notify_all();
    return false;
  }
  fn();
  ++next_;
  cv_.notify_all();
  return true;
}

void StepScheduler::Abort() {
  std::lock_guard lock(mu_);
  aborted_ = true;
  cv_.notify_all();
}

bool StepScheduler::aborted() const {
  std::lock_guard lock(mu_);
  return aborted_;
}

}  // namespace iq::sim
