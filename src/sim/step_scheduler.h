// Deterministic interleaving of concurrent sessions.
//
// The paper's race conditions (Figures 2, 3, 6, 7, 8) are specific
// interleavings of steps from two sessions. To reproduce each race 100% of
// the time, session bodies run on their own threads but every labeled step
// blocks until the scheduler's global order reaches it:
//
//   StepScheduler sched({"1.1", "2.1", "1.2", "2.2"});
//   std::thread s1([&] { sched.Step("1.1", [...]); sched.Step("1.2", [...]); });
//   std::thread s2([&] { sched.Step("2.1", [...]); sched.Step("2.2", [...]); });
//
// A step that cannot run within the timeout aborts the schedule (all
// waiters unblock and Step returns false) so a bug cannot hang a test run.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"

namespace iq::sim {

class StepScheduler {
 public:
  explicit StepScheduler(std::vector<std::string> order,
                         Nanos timeout = 10 * kNanosPerSec);

  /// Block until `label` is next in the order, run `fn`, advance the order.
  /// Returns false if the schedule was aborted (timeout or Abort()).
  bool Step(const std::string& label, const std::function<void()>& fn);

  /// Convenience: a step with no body (a pure ordering point).
  bool Step(const std::string& label) {
    return Step(label, [] {});
  }

  /// Unblock every waiter and fail all future steps.
  void Abort();

  bool aborted() const;

 private:
  std::vector<std::string> order_;
  Nanos timeout_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t next_ = 0;
  bool aborted_ = false;
};

}  // namespace iq::sim
