#include "util/backoff.h"

namespace iq {

void SleepFor(const Clock& clock, Nanos duration) {
  if (duration <= 0) return;
  Nanos deadline = clock.Now() + duration;
  if (duration < 100 * kNanosPerMicro) {
    while (clock.Now() < deadline) std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::nanoseconds(duration));
  }
}

}  // namespace iq
