// Backoff policies for lease contention.
//
// When the IQ-Server answers "back off and retry" (existing I or Q lease on
// the key, Section 3.2) or aborts a QaRead (Figure 5b), the client waits
// before retrying. The paper prescribes exponentially increasing backoff
// with repeated lookups; we also provide a fixed policy for the A3 ablation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <thread>

#include "util/clock.h"
#include "util/rng.h"

namespace iq {

/// Computes the wait before the i-th retry (0-based attempt index).
class BackoffPolicy {
 public:
  virtual ~BackoffPolicy() = default;
  virtual Nanos DelayFor(int attempt, Rng& rng) const = 0;
};

/// delay = min(base * 2^attempt, cap), with +/-50% jitter to avoid
/// synchronized herds.
class ExponentialBackoff final : public BackoffPolicy {
 public:
  ExponentialBackoff(Nanos base, Nanos cap) : base_(base), cap_(cap) {}

  Nanos DelayFor(int attempt, Rng& rng) const override {
    attempt = std::min(attempt, 40);
    Nanos d = base_;
    for (int i = 0; i < attempt && d < cap_; ++i) d *= 2;
    d = std::min(d, cap_);
    // Jitter in [0.5d, 1.5d).
    return d / 2 + static_cast<Nanos>(rng.NextUint64(static_cast<std::uint64_t>(d) + 1));
  }

 private:
  Nanos base_;
  Nanos cap_;
};

/// Constant delay regardless of attempt count (ablation baseline).
class FixedBackoff final : public BackoffPolicy {
 public:
  explicit FixedBackoff(Nanos delay) : delay_(delay) {}
  Nanos DelayFor(int, Rng&) const override { return delay_; }

 private:
  Nanos delay_;
};

/// Sleep helper. For sub-100us waits spins on the clock (sleeping would
/// overshoot badly); otherwise yields to the OS scheduler.
void SleepFor(const Clock& clock, Nanos duration);

}  // namespace iq
