#include "util/clock.h"

namespace iq {

SteadyClock& SteadyClock::Instance() {
  static SteadyClock clock;
  return clock;
}

}  // namespace iq
