// Clock abstractions.
//
// Lease lifetimes and SLA measurement both need a time source. Production
// code uses SteadyClock (monotonic); unit tests that exercise lease expiry
// use ManualClock so expiration is deterministic.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace iq {

/// Monotonic time in nanoseconds since an arbitrary epoch.
using Nanos = std::int64_t;

constexpr Nanos kNanosPerMicro = 1'000;
constexpr Nanos kNanosPerMilli = 1'000'000;
constexpr Nanos kNanosPerSec = 1'000'000'000;

/// Abstract monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in nanoseconds. Must be non-decreasing.
  virtual Nanos Now() const = 0;
};

/// Wall clock backed by std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  Nanos Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Process-wide shared instance.
  static SteadyClock& Instance();
};

/// Deterministic clock advanced explicitly by tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Nanos start = 0) : now_(start) {}

  Nanos Now() const override { return now_.load(std::memory_order_acquire); }

  void Advance(Nanos delta) { now_.fetch_add(delta, std::memory_order_acq_rel); }
  void Set(Nanos t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<Nanos> now_;
};

/// Lazily-read, cached timestamp for one logical operation: the clock is
/// consulted on the first call and the same value returned thereafter, so
/// code paths that never need the time pay nothing and paths that need it
/// several times (expiry check, lease deadline, trace record) pay for one
/// read. Can be pre-seeded with a known time for batch loops.
class LazyNow {
 public:
  explicit LazyNow(const Clock& clock) : clock_(&clock) {}
  explicit LazyNow(Nanos known) : clock_(nullptr), value_(known), set_(true) {}

  Nanos operator()() const {
    if (!set_) {
      value_ = clock_->Now();
      set_ = true;
    }
    return value_;
  }

 private:
  const Clock* clock_;
  mutable Nanos value_ = 0;
  mutable bool set_ = false;
};

/// RAII stopwatch measuring elapsed time against a Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock) : clock_(clock), start_(clock.Now()) {}

  Nanos ElapsedNanos() const { return clock_.Now() - start_; }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / kNanosPerMilli;
  }
  void Restart() { start_ = clock_.Now(); }

 private:
  const Clock& clock_;
  Nanos start_;
};

}  // namespace iq
