#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <functional>
#include <limits>
#include <thread>

namespace iq {

LatencyHistogram::LatencyHistogram()
    : buckets_(static_cast<std::size_t>(kMaxPow) * kSubBuckets, 0),
      min_(std::numeric_limits<Nanos>::max()) {}

int LatencyHistogram::BucketFor(Nanos value) {
  if (value < 0) value = 0;
  auto v = static_cast<std::uint64_t>(value);
  if (v < kSubBuckets) return static_cast<int>(v);
  int pow = 63 - std::countl_zero(v);
  // Within each power-of-two range, kSubBuckets linear sub-buckets.
  int shift = pow - 5;  // log2(kSubBuckets)
  auto sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
  int bucket = pow * kSubBuckets + sub;
  int max_bucket = kMaxPow * kSubBuckets - 1;
  return std::min(bucket, max_bucket);
}

Nanos LatencyHistogram::BucketUpperBound(int bucket) {
  int pow = bucket / kSubBuckets;
  int sub = bucket % kSubBuckets;
  if (pow < 5) return bucket;  // identity region: value < 32
  int shift = pow - 5;
  std::uint64_t base = (1ULL << pow) | (static_cast<std::uint64_t>(sub) << shift);
  return static_cast<Nanos>(base + ((1ULL << shift) - 1));
}

void LatencyHistogram::Record(Nanos value) {
  if (value < 0) value = 0;
  ++buckets_[static_cast<std::size_t>(BucketFor(value))];
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

Nanos LatencyHistogram::Min() const {
  return count_ == 0 ? 0 : min_;
}

double LatencyHistogram::MeanNanos() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

Nanos LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return BucketUpperBound(static_cast<int>(i));
  }
  return max_;
}

double LatencyHistogram::FractionBelow(Nanos threshold) const {
  if (count_ == 0) return 1.0;
  std::uint64_t below = 0;
  int limit = BucketFor(threshold);
  for (int i = 0; i <= limit; ++i) below += buckets_[static_cast<std::size_t>(i)];
  return static_cast<double>(below) / static_cast<double>(count_);
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = std::numeric_limits<Nanos>::max();
  max_ = 0;
  sum_ = 0;
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms",
                static_cast<unsigned long long>(count_),
                MeanNanos() / kNanosPerMilli,
                static_cast<double>(Percentile(0.50)) / kNanosPerMilli,
                static_cast<double>(Percentile(0.95)) / kNanosPerMilli,
                static_cast<double>(Percentile(0.99)) / kNanosPerMilli,
                static_cast<double>(Max()) / kNanosPerMilli);
  return buf;
}

StripedLatencyRecorder::StripedLatencyRecorder(std::size_t num_classes,
                                               std::size_t num_stripes)
    : num_classes_(num_classes), stripes_(num_stripes > 0 ? num_stripes : 1) {
  for (auto& s : stripes_) s.per_class.resize(num_classes_);
}

StripedLatencyRecorder::Stripe& StripedLatencyRecorder::StripeForThisThread() {
  std::size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripes_[h % stripes_.size()];
}

void StripedLatencyRecorder::Record(std::size_t cls, Nanos value) {
  if (cls >= num_classes_) return;
  Stripe& s = StripeForThisThread();
  std::lock_guard lock(s.mu);
  auto& slot = s.per_class[cls];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  slot->Record(value);
}

LatencyHistogram StripedLatencyRecorder::Merged(std::size_t cls) const {
  LatencyHistogram out;
  if (cls >= num_classes_) return out;
  for (const auto& s : stripes_) {
    std::lock_guard lock(s.mu);
    if (s.per_class[cls]) out.Merge(*s.per_class[cls]);
  }
  return out;
}

}  // namespace iq
