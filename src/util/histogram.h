// Latency histogram with percentile queries.
//
// SoAR (Section 6.1 of the paper) is defined by an SLA on the 95th
// percentile of action response times, so the benchmark harness needs an
// accurate, cheap percentile estimator. We use logarithmic bucketing
// (HdrHistogram-style): ~1% relative error, O(1) record, O(buckets) query.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"

namespace iq {

class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Record one latency observation (nanoseconds, >= 0).
  void Record(Nanos value);

  /// Merge another histogram into this one (for per-thread aggregation).
  void Merge(const LatencyHistogram& other);

  std::uint64_t Count() const { return count_; }
  Nanos Min() const;
  Nanos Max() const { return max_; }
  double MeanNanos() const;

  /// Value at quantile q in [0, 1]. Returns 0 for an empty histogram.
  Nanos Percentile(double q) const;

  /// Fraction of observations <= threshold. Returns 1 for empty.
  double FractionBelow(Nanos threshold) const;

  void Reset();

  /// Human-readable one-line summary (ms units).
  std::string Summary() const;

 private:
  static constexpr int kSubBuckets = 32;  // per power of two
  static constexpr int kMaxPow = 44;      // covers ~4.8 hours in ns

  static int BucketFor(Nanos value);
  static Nanos BucketUpperBound(int bucket);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  Nanos min_ = 0;
  Nanos max_ = 0;
  double sum_ = 0;
};

/// Thread-striped latency histograms keyed by a small class index (e.g. one
/// class per server command). Record() locks only the calling thread's
/// stripe, so concurrent recorders from different threads rarely contend;
/// Merged() folds every stripe's histogram for one class into a snapshot.
/// Histograms are allocated lazily, so an idle recorder costs a few pointers.
class StripedLatencyRecorder {
 public:
  explicit StripedLatencyRecorder(std::size_t num_classes,
                                  std::size_t num_stripes = 16);

  /// Record one observation for `cls` (< num_classes).
  void Record(std::size_t cls, Nanos value);

  /// Snapshot of all observations for `cls` across stripes.
  LatencyHistogram Merged(std::size_t cls) const;

  std::size_t num_classes() const { return num_classes_; }

 private:
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    /// Lazily allocated, one slot per class.
    std::vector<std::unique_ptr<LatencyHistogram>> per_class;
  };

  Stripe& StripeForThisThread();

  std::size_t num_classes_;
  std::vector<Stripe> stripes_;
};

/// Simple counter bundle shared by benchmark workers.
struct OpCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t backoffs = 0;
  std::uint64_t aborts = 0;
  std::uint64_t restarts = 0;

  OpCounters& operator+=(const OpCounters& o) {
    reads += o.reads;
    writes += o.writes;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    backoffs += o.backoffs;
    aborts += o.aborts;
    restarts += o.restarts;
    return *this;
  }
};

}  // namespace iq
