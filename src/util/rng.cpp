#include "util/rng.h"

#include <cmath>

namespace iq {
namespace {

double Zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = Zeta(n, theta);
  zeta2_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2_ / zetan_);
}

std::uint64_t ZipfianGenerator::Next(Rng& rng) const {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto idx = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (idx >= n_) idx = n_ - 1;
  return idx;
}

}  // namespace iq
