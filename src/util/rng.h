// Seedable pseudo-random number generation and the Zipfian distribution
// used by BG's workload generator.
//
// Benchmarks and the social-graph loader must be reproducible, so every
// component that needs randomness takes an explicit Rng (or a seed) instead
// of reaching for a global generator.
#pragma once

#include <cstdint>
#include <limits>

namespace iq {

/// splitmix64: tiny, fast, full-period 64-bit generator. Used both as the
/// main generator and to derive independent streams from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextUint64(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextUint64(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Derive an independent stream (e.g. one per worker thread).
  Rng Fork() { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFULL); }

 private:
  std::uint64_t state_;
};

/// Zipfian generator over [0, n) following the Gray et al. construction
/// used by YCSB and BG. The `theta` parameter controls skew; BG's
/// "70% of requests reference 20% of data" workload corresponds to
/// theta = 0.27 (paper Section 6.2, citing USC DBLAB TR 2013-02).
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta);

  /// Draw the next item id in [0, n).
  std::uint64_t Next(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

/// A scrambled Zipfian: spreads the hot items uniformly across the id
/// space by hashing, so "hot" rows are not clustered at low ids.
class ScrambledZipfian {
 public:
  ScrambledZipfian(std::uint64_t n, double theta) : zipf_(n, theta), n_(n) {}

  std::uint64_t Next(Rng& rng) const {
    std::uint64_t raw = zipf_.Next(rng);
    // fmix64 finalizer as the scramble.
    std::uint64_t h = raw + 0x9E3779B97F4A7C15ULL;
    h = (h ^ (h >> 33)) * 0xFF51AFD7ED558CCDULL;
    h = (h ^ (h >> 33)) * 0xC4CEB9FE1A85EC53ULL;
    h ^= h >> 33;
    return h % n_;
  }

 private:
  ZipfianGenerator zipf_;
  std::uint64_t n_;
};

}  // namespace iq
