#include "util/trace_ring.h"

#include <charconv>
#include <cstdio>

namespace iq {
namespace {

/// One row per LeaseTraceKind, indexed by the enum value.
constexpr const char* kKindNames[kLeaseTraceKindCount] = {
    "i_grant",     "i_void",        "q_inv_grant", "q_ref_grant",
    "q_ref_void",  "reject",        "expire",      "expire_delete",
    "commit",      "abort",         "release",
};

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool ParseU64(std::string_view v, std::uint64_t* out) {
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), *out);
  return ec == std::errc{} && ptr == v.data() + v.size();
}

bool ParseI64(std::string_view v, std::int64_t* out) {
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), *out);
  return ec == std::errc{} && ptr == v.data() + v.size();
}

}  // namespace

const char* ToString(LeaseTraceKind k) {
  auto i = static_cast<std::size_t>(k);
  return i < kLeaseTraceKindCount ? kKindNames[i] : "?";
}

std::optional<LeaseTraceKind> ParseLeaseTraceKind(std::string_view name) {
  for (std::size_t i = 0; i < kLeaseTraceKindCount; ++i) {
    if (name == kKindNames[i]) return static_cast<LeaseTraceKind>(i);
  }
  return std::nullopt;
}

TraceRing::TraceRing(std::size_t capacity) {
  if (capacity == 0) return;
  capacity_ = RoundUpPow2(capacity);
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
}

std::vector<TraceEvent> TraceRing::Snapshot(std::size_t max_events) const {
  std::vector<TraceEvent> out;
  if (capacity_ == 0 || max_events == 0) return out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t lo = head > capacity_ ? head - capacity_ : 0;
  if (head - lo > max_events) lo = head - max_events;
  out.reserve(static_cast<std::size_t>(head - lo));
  for (std::uint64_t i = lo; i < head; ++i) {
    const Slot& s = slots_[i & mask_];
    if (s.seq.load(std::memory_order_acquire) != i + 1) continue;
    TraceEvent e;
    e.kind = static_cast<LeaseTraceKind>(
        s.kind.load(std::memory_order_relaxed) % kLeaseTraceKindCount);
    e.shard = s.shard.load(std::memory_order_relaxed);
    e.session = s.session.load(std::memory_order_relaxed);
    e.key_hash = s.key_hash.load(std::memory_order_relaxed);
    e.at = s.at.load(std::memory_order_relaxed);
    e.seq = i;
    // Re-check after the field reads: a writer that wrapped onto this slot
    // mid-read stored seq = 0 first, so a second matching load proves the
    // fields were stable across the read.
    if (s.seq.load(std::memory_order_acquire) != i + 1) continue;
    out.push_back(e);
  }
  return out;
}

std::string FormatTraceEvents(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 64);
  char line[160];
  for (const TraceEvent& e : events) {
    int n = std::snprintf(
        line, sizeof line, "TRACE %llu %lld %u %s %llu %llu\r\n",
        static_cast<unsigned long long>(e.seq), static_cast<long long>(e.at),
        e.shard, ToString(e.kind), static_cast<unsigned long long>(e.session),
        static_cast<unsigned long long>(e.key_hash));
    if (n > 0) out.append(line, static_cast<std::size_t>(n));
  }
  return out;
}

std::string FormatTraceInfo(const TraceInfo& info) {
  char line[96];
  int n = std::snprintf(line, sizeof line, "TRACE_INFO %llu %llu %llu\r\n",
                        static_cast<unsigned long long>(info.recorded),
                        static_cast<unsigned long long>(info.dropped),
                        static_cast<unsigned long long>(info.capacity));
  return std::string(line, n > 0 ? static_cast<std::size_t>(n) : 0);
}

bool ParseTraceEvents(std::string_view text, std::vector<TraceEvent>* out,
                      TraceInfo* info, bool* has_info) {
  // All-or-nothing: parse into locals, publish only on full success.
  std::vector<TraceEvent> events;
  TraceInfo totals;
  bool saw_info = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

    if (line.rfind("TRACE_INFO ", 0) == 0) {
      // TRACE_INFO <recorded> <dropped> <capacity>
      std::string_view rest = line.substr(11);
      std::string_view tok[3];
      std::size_t count = 0;
      while (!rest.empty() && count < 3) {
        std::size_t sp = rest.find(' ');
        tok[count++] = rest.substr(0, sp);
        rest = sp == std::string_view::npos ? std::string_view{}
                                            : rest.substr(sp + 1);
      }
      if (count != 3 || !rest.empty()) return false;
      TraceInfo ti;
      if (!ParseU64(tok[0], &ti.recorded) || !ParseU64(tok[1], &ti.dropped) ||
          !ParseU64(tok[2], &ti.capacity)) {
        return false;
      }
      totals.recorded += ti.recorded;
      totals.dropped += ti.dropped;
      totals.capacity += ti.capacity;
      saw_info = true;
      continue;
    }
    if (line.rfind("TRACE ", 0) != 0) continue;  // END / noise: skip

    // TRACE <seq> <at> <shard> <kind> <session> <key_hash>
    std::string_view rest = line.substr(6);
    std::string_view tok[6];
    std::size_t count = 0;
    while (!rest.empty() && count < 6) {
      std::size_t sp = rest.find(' ');
      tok[count++] = rest.substr(0, sp);
      rest = sp == std::string_view::npos ? std::string_view{}
                                          : rest.substr(sp + 1);
    }
    if (count != 6 || !rest.empty()) return false;

    TraceEvent e;
    std::uint64_t shard = 0;
    auto kind = ParseLeaseTraceKind(tok[3]);
    if (!ParseU64(tok[0], &e.seq) || !ParseI64(tok[1], &e.at) ||
        !ParseU64(tok[2], &shard) || !kind ||
        !ParseU64(tok[4], &e.session) || !ParseU64(tok[5], &e.key_hash)) {
      return false;
    }
    e.shard = static_cast<std::uint32_t>(shard);
    e.kind = *kind;
    events.push_back(e);
  }
  out->insert(out->end(), events.begin(), events.end());
  if (info) {
    info->recorded += totals.recorded;
    info->dropped += totals.dropped;
    info->capacity += totals.capacity;
  }
  if (has_info) *has_info = saw_info;
  return true;
}

}  // namespace iq
