// Lock-free lease-event trace ring. IQServer records one TraceEvent per
// lease transition (grant / void / reject / expire / commit / abort /
// release) while already holding the shard lock, so in production exactly
// one writer touches each ring at a time; the ring is nevertheless fully
// MPMC-safe because drains (`trace` wire verb, --trace-dump, tests) run
// concurrently with writers on other threads.
//
// Design: fixed power-of-two array of all-atomic slots. A writer claims an
// index with fetch_add on head_, invalidates the slot (seq = 0), stores the
// fields relaxed, then publishes seq = index + 1 with release order. A
// reader loads seq before and after its relaxed field reads and accepts the
// event only if both loads equal index + 1 — a torn (being-overwritten)
// slot is simply skipped. Every access is atomic, so drain-while-writing is
// clean under TSan without any lock on the hot path.
//
// Best-effort caveat: if the ring wraps a full capacity *during* one
// writer's five field stores (capacity concurrent writers racing a stalled
// one), a reader can observe mixed fields under a matching seq. With one
// writer per ring under the shard lock this cannot happen in the server;
// it is an accepted diagnostic-grade bound for the general MPMC case.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"

namespace iq {

/// Lease-state transition kinds recorded by IQServer. Names match the STAT
/// counters they accompany where one exists.
enum class LeaseTraceKind : std::uint8_t {
  kIGrant,        // I lease granted on a miss
  kIVoid,         // I lease preempted by a Q request / delete
  kQInvGrant,     // Q(invalidate) lease granted (QaReg)
  kQRefGrant,     // Q(refresh) lease granted (QaRead / IQDelta)
  kQRefVoid,      // Q(refresh) lease voided by QaReg
  kReject,        // QaRead/IQDelta rejected: another session holds Q
  kExpire,        // overdue lease reclaimed, value left in place
  kExpireDelete,  // overdue Q lease reclaimed and the key deleted
  kCommit,        // per-key commit (delta apply or quarantine delete)
  kAbort,         // per-key abort (buffered changes discarded)
  kRelease,       // per-key release without apply (SaR / ReleaseKey)
};
inline constexpr std::size_t kLeaseTraceKindCount =
    static_cast<std::size_t>(LeaseTraceKind::kRelease) + 1;

const char* ToString(LeaseTraceKind k);
std::optional<LeaseTraceKind> ParseLeaseTraceKind(std::string_view name);

/// One drained trace record. `seq` is the ring-global record number (older
/// events that were overwritten keep advancing it), so gaps reveal drops.
struct TraceEvent {
  LeaseTraceKind kind = LeaseTraceKind::kIGrant;
  std::uint32_t shard = 0;
  std::uint64_t session = 0;
  std::uint64_t key_hash = 0;
  Nanos at = 0;
  std::uint64_t seq = 0;
};

/// FNV-1a of the key, recorded instead of the key itself: constant-size
/// slots, no allocation under the shard lock, and no key material leaves
/// the server through the trace channel.
inline std::uint64_t TraceKeyHash(std::string_view key) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

class TraceRing {
 public:
  /// Capacity is rounded up to a power of two; 0 disables the ring (Record
  /// becomes a no-op, Snapshot returns empty).
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Record(LeaseTraceKind kind, std::uint32_t shard, std::uint64_t session,
              std::uint64_t key_hash, Nanos at) {
    if (capacity_ == 0) return;
    const std::uint64_t i = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[i & mask_];
    s.seq.store(0, std::memory_order_release);
    s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
    s.shard.store(shard, std::memory_order_relaxed);
    s.session.store(session, std::memory_order_relaxed);
    s.key_hash.store(key_hash, std::memory_order_relaxed);
    s.at.store(at, std::memory_order_relaxed);
    s.seq.store(i + 1, std::memory_order_release);
  }

  /// The newest (up to) `max_events` events, oldest first. Safe against
  /// concurrent Record; slots mid-overwrite are skipped.
  std::vector<TraceEvent> Snapshot(std::size_t max_events) const;

  /// Lifetime number of Record calls (including overwritten ones).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Events no longer reachable by Snapshot because the ring wrapped.
  std::uint64_t dropped() const {
    std::uint64_t h = recorded();
    return h > capacity_ ? h - capacity_ : 0;
  }
  std::size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ != 0; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 = empty/invalid, else index + 1
    std::atomic<std::uint64_t> session{0};
    std::atomic<std::uint64_t> key_hash{0};
    std::atomic<std::int64_t> at{0};
    std::atomic<std::uint32_t> shard{0};
    std::atomic<std::uint8_t> kind{0};
  };

  std::size_t capacity_ = 0;  // power of two (or 0: disabled)
  std::uint64_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
};

/// Drain-completeness accounting for a trace source: how many events were
/// ever recorded, how many are no longer reachable because the ring
/// wrapped, and the ring capacity. A history with dropped != 0 cannot be
/// certified (the checker may be missing the very transition that proves
/// an anomaly).
struct TraceInfo {
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t capacity = 0;
};

/// Render events as the wire format used by the `trace` verb, one
/// "TRACE <seq> <at> <shard> <kind> <session> <key_hash>\r\n" line per
/// event (no trailing END marker; the protocol layer adds it).
std::string FormatTraceEvents(const std::vector<TraceEvent>& events);

/// The completeness header preceding the TRACE lines on the wire:
/// "TRACE_INFO <recorded> <dropped> <capacity>\r\n".
std::string FormatTraceInfo(const TraceInfo& info);

/// Inverse of FormatTraceEvents/FormatTraceInfo: parses the TRACE lines
/// (ignoring unrecognized lines, e.g. a trailing END). All-or-nothing: on
/// a malformed TRACE or TRACE_INFO line it returns false and leaves *out
/// (and *info) untouched, so a truncated drain file can never be half-
/// ingested as a valid history. When `info`/`has_info` are given,
/// TRACE_INFO headers are accumulated into *info (summed across multiple
/// headers, e.g. a file concatenating several drains) and *has_info
/// reports whether at least one header was present.
bool ParseTraceEvents(std::string_view text, std::vector<TraceEvent>* out,
                      TraceInfo* info = nullptr, bool* has_info = nullptr);

}  // namespace iq
