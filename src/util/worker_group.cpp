#include "util/worker_group.h"

#include <memory>

#include "util/backoff.h"

namespace iq {

void WorkerGroup::Start(int n, Body body) {
  stop_.store(false, std::memory_order_release);
  ready_.store(0, std::memory_order_release);
  go_.store(false, std::memory_order_release);
  threads_.reserve(static_cast<std::size_t>(n));
  auto shared_body = std::make_shared<Body>(std::move(body));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i, body = shared_body] {
      ready_.fetch_add(1, std::memory_order_acq_rel);
      while (!go_.load(std::memory_order_acquire)) std::this_thread::yield();
      (*body)(i, stop_);
    });
  }
  while (ready_.load(std::memory_order_acquire) < n) std::this_thread::yield();
  go_.store(true, std::memory_order_release);
}

void WorkerGroup::StopAndJoin() {
  stop_.store(true, std::memory_order_release);
  go_.store(true, std::memory_order_release);  // release workers stuck at the gate
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void WorkerGroup::RunFor(int n, Nanos duration, const Clock& clock, Body body) {
  WorkerGroup group;
  group.Start(n, std::move(body));
  SleepFor(clock, duration);
  group.StopAndJoin();
}

}  // namespace iq
