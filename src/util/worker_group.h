// WorkerGroup: run N benchmark worker threads with a common start barrier
// and a cooperative stop flag. Mirrors how BG drives concurrent "sessions":
// each thread loops issuing actions until the measurement window closes.
#pragma once

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "util/clock.h"

namespace iq {

class WorkerGroup {
 public:
  /// Worker body: (worker_id, stop_flag). The body should poll stop_flag
  /// between actions and return promptly when it becomes true.
  using Body = std::function<void(int, const std::atomic<bool>&)>;

  WorkerGroup() = default;
  ~WorkerGroup() { StopAndJoin(); }

  WorkerGroup(const WorkerGroup&) = delete;
  WorkerGroup& operator=(const WorkerGroup&) = delete;

  /// Launch n workers. All block until every thread is constructed, then
  /// run body concurrently.
  void Start(int n, Body body);

  /// Signal stop and join all workers.
  void StopAndJoin();

  /// Run n workers for the given duration, then stop. Convenience wrapper.
  static void RunFor(int n, Nanos duration, const Clock& clock, Body body);

 private:
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<int> ready_{0};
  std::atomic<bool> go_{false};
};

}  // namespace iq
