#include "core/iq_server.h"
#include <gtest/gtest.h>

#include "bg/actions.h"
#include "bg/codec.h"
#include "bg/social_graph.h"
#include "bg/validation.h"
#include "bg/workload.h"

namespace iq::bg {
namespace {

// ---- codecs ------------------------------------------------------------------

TEST(Codec, ProfileRoundTrip) {
  ProfileValue p{"alice", 7, 3};
  auto decoded = DecodeProfile(EncodeProfile(p));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->name, "alice");
  EXPECT_EQ(decoded->friend_count, 7);
  EXPECT_EQ(decoded->pending_count, 3);
}

TEST(Codec, ProfileWithEmptyName) {
  auto decoded = DecodeProfile(EncodeProfile({"", 0, 0}));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->name, "");
}

TEST(Codec, ProfileDecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeProfile(""));
  EXPECT_FALSE(DecodeProfile("no-pipes"));
  EXPECT_FALSE(DecodeProfile("a|b|c"));
  EXPECT_FALSE(DecodeProfile("a|1"));
}

TEST(Codec, IdListRoundTrip) {
  std::set<MemberId> ids{5, 1, 9};
  EXPECT_EQ(EncodeIdList(ids), "1,5,9");
  EXPECT_EQ(DecodeIdList("1,5,9"), ids);
  EXPECT_TRUE(DecodeIdList("").empty());
}

TEST(Codec, IdListAddRemove) {
  std::string list = EncodeIdList({1, 2});
  list = IdListAdd(list, 3);
  EXPECT_EQ(list, "1,2,3");
  list = IdListAdd(list, 2);  // idempotent
  EXPECT_EQ(list, "1,2,3");
  list = IdListRemove(list, 1);
  EXPECT_EQ(list, "2,3");
  list = IdListRemove(list, 99);  // absent: no-op
  EXPECT_EQ(list, "2,3");
}

TEST(Codec, KeyBuildersAreDistinct) {
  EXPECT_EQ(ProfileKey(5), "Profile:5");
  EXPECT_EQ(FriendsKey(5), "Friends:5");
  EXPECT_EQ(PendingKey(5), "Pending:5");
  EXPECT_EQ(TopKKey(5), "TopK:5");
  EXPECT_EQ(CommentsKey(5), "Comments:5");
  EXPECT_EQ(PendingCountKey(5), "PC:5");
  EXPECT_EQ(FriendCountKey(5), "FC:5");
}

// ---- graph loader ---------------------------------------------------------------

TEST(SocialGraph, InitialFriendsFormRing) {
  GraphConfig g{100, 4, 1, 1};
  auto friends = InitialFriends(g, 0);
  EXPECT_EQ(friends, (std::set<MemberId>{1, 2, 98, 99}));
  // Symmetry: if b is a's friend, a is b's friend.
  for (MemberId f : friends) {
    EXPECT_TRUE(InitialFriends(g, f).contains(0));
  }
}

TEST(SocialGraph, LoaderPopulatesAllTables) {
  sql::Database db;
  CreateBgTables(db);
  GraphConfig g{50, 4, 2, 3};
  LoadGraph(db, g);
  auto txn = db.Begin();
  EXPECT_EQ(txn->SelectAll("Users").size(), 50u);
  EXPECT_EQ(txn->SelectAll("Friendship").size(), 50u * 4);  // both directions
  EXPECT_EQ(txn->SelectAll("Resources").size(), 100u);
  EXPECT_EQ(txn->SelectAll("Manipulation").size(), 300u);
}

TEST(SocialGraph, LoadedCountsMatchInitialFriends) {
  sql::Database db;
  CreateBgTables(db);
  GraphConfig g{30, 6, 1, 1};
  LoadGraph(db, g);
  auto txn = db.Begin();
  auto row = txn->SelectByPk("Users", {sql::V(7)});
  ASSERT_TRUE(row);
  EXPECT_EQ(*sql::AsInt((*row)[3]),
            static_cast<std::int64_t>(InitialFriends(g, 7).size()));
  EXPECT_EQ(*sql::AsInt((*row)[2]), 0);  // no pending invitations initially
}

TEST(PairPoolTest, AddTakeRoundTrip) {
  PairPool pool;
  Rng rng(1);
  EXPECT_FALSE(pool.TakeRandom(rng));
  pool.Add(1, 2);
  pool.Add(3, 4);
  EXPECT_EQ(pool.Size(), 2u);
  auto a = pool.TakeRandom(rng);
  auto b = pool.TakeRandom(rng);
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_FALSE(pool.TakeRandom(rng));
}

TEST(PairPoolTest, SeedFromGraphCountsPairs) {
  ActionPools pools;
  GraphConfig g{20, 4, 1, 1};
  pools.SeedFromGraph(g);
  EXPECT_EQ(pools.confirmed.Size(), 20u * 4 / 2);  // unordered pairs
  EXPECT_EQ(pools.pending.Size(), 0u);
}

// ---- validation ------------------------------------------------------------------

TEST(Validation, CleanCounterHistoryPasses) {
  Validator v;
  v.SetInitialCounter("c", 10);
  ThreadLog log;
  log.LogCounterWrite("c", 0, 10, +1);   // completes before the read
  log.LogCounterRead("c", 20, 30, 11);   // sees it: OK
  v.Absorb(std::move(log));
  auto report = v.Validate();
  EXPECT_EQ(report.reads_checked, 1u);
  EXPECT_EQ(report.unpredictable, 0u);
}

TEST(Validation, MissedSettledWriteIsUnpredictable) {
  Validator v;
  v.SetInitialCounter("c", 10);
  ThreadLog log;
  log.LogCounterWrite("c", 0, 10, +1);
  log.LogCounterRead("c", 20, 30, 10);  // stale: missed the settled +1
  v.Absorb(std::move(log));
  EXPECT_EQ(v.Validate().unpredictable, 1u);
}

TEST(Validation, InFlightWriteMayOrMayNotBeSeen) {
  Validator v;
  v.SetInitialCounter("c", 0);
  ThreadLog log;
  log.LogCounterWrite("c", 10, 50, +1);  // overlaps the read
  log.LogCounterRead("c", 20, 30, 0);    // not seen: OK (ordered before)
  log.LogCounterRead("c", 25, 35, 1);    // seen: OK (ordered after)
  v.Absorb(std::move(log));
  EXPECT_EQ(v.Validate().unpredictable, 0u);
}

TEST(Validation, ValueOutsideEnvelopeIsUnpredictable) {
  Validator v;
  v.SetInitialCounter("c", 0);
  ThreadLog log;
  log.LogCounterWrite("c", 10, 50, +1);
  log.LogCounterRead("c", 20, 30, 2);  // impossible: only one +1 exists
  v.Absorb(std::move(log));
  EXPECT_EQ(v.Validate().unpredictable, 1u);
}

TEST(Validation, FutureWriteCannotBeSeen) {
  Validator v;
  v.SetInitialCounter("c", 0);
  ThreadLog log;
  log.LogCounterRead("c", 0, 10, 1);      // sees a write...
  log.LogCounterWrite("c", 20, 30, +1);   // ...that starts later: stale read
  v.Absorb(std::move(log));
  EXPECT_EQ(v.Validate().unpredictable, 1u);
}

TEST(Validation, NegativeDeltasWidenLowerBound) {
  // The acceptable envelope is the interval [init + negatives, init +
  // positives] over in-flight deltas. BG's counters only move by +-1, so
  // the interval check is exact for the paper's workloads.
  Validator v;
  v.SetInitialCounter("c", 5);
  ThreadLog log;
  log.LogCounterWrite("c", 10, 50, -2);  // in-flight
  log.LogCounterRead("c", 20, 30, 3);    // may see it
  log.LogCounterRead("c", 20, 30, 5);    // or not
  log.LogCounterRead("c", 20, 30, 2);    // below the envelope: stale
  log.LogCounterRead("c", 20, 30, 6);    // above the envelope: stale
  v.Absorb(std::move(log));
  auto report = v.Validate();
  EXPECT_EQ(report.unpredictable, 2u);
}

TEST(Validation, SetReadsCheckMembership) {
  Validator v;
  v.SetInitialSet("s", {1, 2});
  ThreadLog log;
  log.LogSetWrite("s", 0, 10, /*add=*/true, 3);
  log.LogSetRead("s", 20, 30, {1, 2, 3});  // OK
  log.LogSetRead("s", 20, 30, {1, 2});     // missing settled add: stale
  log.LogSetRead("s", 20, 30, {1, 2, 3, 9});  // foreign element: invalid
  v.Absorb(std::move(log));
  auto report = v.Validate();
  EXPECT_EQ(report.reads_checked, 3u);
  EXPECT_EQ(report.unpredictable, 2u);
}

TEST(Validation, InFlightSetOpsAreFlexible) {
  Validator v;
  v.SetInitialSet("s", {1});
  ThreadLog log;
  log.LogSetWrite("s", 10, 50, /*add=*/true, 2);
  log.LogSetRead("s", 20, 30, {1});     // before the add: OK
  log.LogSetRead("s", 25, 35, {1, 2});  // after the add: OK
  v.Absorb(std::move(log));
  EXPECT_EQ(v.Validate().unpredictable, 0u);
}

TEST(Validation, SettledRemoveMustBeObserved) {
  Validator v;
  v.SetInitialSet("s", {1, 2});
  ThreadLog log;
  log.LogSetWrite("s", 0, 10, /*add=*/false, 2);
  log.LogSetRead("s", 20, 30, {1, 2});  // still shows 2: stale
  v.Absorb(std::move(log));
  EXPECT_EQ(v.Validate().unpredictable, 1u);
}

TEST(Validation, StalePercentComputation) {
  ValidationReport r;
  r.reads_checked = 200;
  r.unpredictable = 3;
  EXPECT_DOUBLE_EQ(r.StalePercent(), 1.5);
  ValidationReport empty;
  EXPECT_DOUBLE_EQ(empty.StalePercent(), 0.0);
}

// ---- actions -----------------------------------------------------------------------

class BgActionsTest : public ::testing::Test {
 protected:
  BgActionsTest() : graph_{40, 4, 2, 2} {
    CreateBgTables(db_);
    LoadGraph(db_, graph_);
    pools_.SeedFromGraph(graph_);
  }

  casql::CasqlConfig Config(casql::Technique t) {
    casql::CasqlConfig cfg;
    cfg.technique = t;
    cfg.consistency = casql::Consistency::kIQ;
    return cfg;
  }

  std::int64_t UserCol(MemberId id, int col) {
    auto txn = db_.Begin();
    auto row = txn->SelectByPk("Users", {sql::V(id)});
    return row ? *sql::AsInt((*row)[static_cast<std::size_t>(col)]) : -1;
  }

  GraphConfig graph_;
  sql::Database db_;
  IQServer server_;
  ActionPools pools_;
};

TEST_F(BgActionsTest, ViewProfileReturnsLoadedState) {
  casql::CasqlSystem system(db_, server_, Config(casql::Technique::kRefresh));
  ThreadLog log;
  BGActions actions(system, pools_, graph_, &log, Rng(1));
  EXPECT_TRUE(actions.ViewProfile(5));
  auto cached = server_.store().Get(ProfileKey(5));
  ASSERT_TRUE(cached);
  auto p = DecodeProfile(cached->value);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->friend_count, 4);
  EXPECT_EQ(p->pending_count, 0);
}

TEST_F(BgActionsTest, InviteUpdatesDbAndCache) {
  casql::CasqlSystem system(db_, server_, Config(casql::Technique::kRefresh));
  BGActions actions(system, pools_, graph_, nullptr, Rng(1));
  actions.ViewProfile(20);  // warm Profile:20
  // Member 5 and 20 are not ring-adjacent, so the invite succeeds.
  ASSERT_TRUE(actions.InviteFriend(5, 20));
  EXPECT_EQ(UserCol(20, 2), 1);  // pendingCount
  auto p = DecodeProfile(server_.store().Get(ProfileKey(20))->value);
  EXPECT_EQ(p->pending_count, 1);
  EXPECT_EQ(pools_.pending.Size(), 1u);
}

TEST_F(BgActionsTest, InviteExistingFriendFails) {
  casql::CasqlSystem system(db_, server_, Config(casql::Technique::kRefresh));
  BGActions actions(system, pools_, graph_, nullptr, Rng(1));
  // 5 and 6 are ring friends: the Friendship row exists, insert collides.
  EXPECT_FALSE(actions.InviteFriend(5, 6));
  EXPECT_EQ(UserCol(6, 2), 0);
}

TEST_F(BgActionsTest, AcceptMovesInviteToFriendship) {
  casql::CasqlSystem system(db_, server_, Config(casql::Technique::kRefresh));
  BGActions actions(system, pools_, graph_, nullptr, Rng(1));
  ASSERT_TRUE(actions.InviteFriend(5, 20));
  std::size_t confirmed_before = pools_.confirmed.Size();
  ASSERT_TRUE(actions.AcceptFriend());
  EXPECT_EQ(UserCol(20, 2), 0);  // pending consumed
  EXPECT_EQ(UserCol(20, 3), 5);  // friendCount 4 -> 5
  EXPECT_EQ(UserCol(5, 3), 5);
  EXPECT_EQ(pools_.confirmed.Size(), confirmed_before + 1);
  // Friendship rows now exist in both directions with status 2.
  auto txn = db_.Begin();
  auto fwd = txn->SelectByPk("Friendship", {sql::V(5), sql::V(20)});
  auto rev = txn->SelectByPk("Friendship", {sql::V(20), sql::V(5)});
  ASSERT_TRUE(fwd && rev);
  EXPECT_EQ(*sql::AsInt((*fwd)[2]), kConfirmed);
  EXPECT_EQ(*sql::AsInt((*rev)[2]), kConfirmed);
}

TEST_F(BgActionsTest, RejectRemovesInvite) {
  casql::CasqlSystem system(db_, server_, Config(casql::Technique::kRefresh));
  BGActions actions(system, pools_, graph_, nullptr, Rng(1));
  ASSERT_TRUE(actions.InviteFriend(5, 20));
  ASSERT_TRUE(actions.RejectFriend());
  EXPECT_EQ(UserCol(20, 2), 0);
  auto txn = db_.Begin();
  EXPECT_FALSE(txn->SelectByPk("Friendship", {sql::V(5), sql::V(20)}));
}

TEST_F(BgActionsTest, ThawRemovesFriendship) {
  casql::CasqlSystem system(db_, server_, Config(casql::Technique::kRefresh));
  BGActions actions(system, pools_, graph_, nullptr, Rng(1));
  std::int64_t before = UserCol(0, 3);
  ASSERT_TRUE(actions.ThawFriendship());
  // Some pair lost one friend each; total friend count dropped by 2.
  std::int64_t total_after = 0;
  auto txn = db_.Begin();
  for (const auto& row : txn->SelectAll("Users")) {
    total_after += *sql::AsInt(row[3]);
  }
  EXPECT_EQ(total_after, graph_.members * 4 - 2);
  (void)before;
}

TEST_F(BgActionsTest, AcceptOnEmptyPoolFails) {
  casql::CasqlSystem system(db_, server_, Config(casql::Technique::kRefresh));
  BGActions actions(system, pools_, graph_, nullptr, Rng(1));
  EXPECT_FALSE(actions.AcceptFriend());
  EXPECT_FALSE(actions.RejectFriend());
}

TEST_F(BgActionsTest, StaticReadsSucceed) {
  casql::CasqlSystem system(db_, server_, Config(casql::Technique::kRefresh));
  BGActions actions(system, pools_, graph_, nullptr, Rng(1));
  EXPECT_TRUE(actions.ViewTopKResources(3));
  EXPECT_TRUE(actions.ViewComments(0));
  EXPECT_TRUE(actions.ListFriends(3));
  EXPECT_TRUE(actions.ViewFriendRequests(3));
}

TEST_F(BgActionsTest, IncrementalModeUsesCounterKeys) {
  casql::CasqlSystem system(db_, server_,
                            Config(casql::Technique::kIncremental));
  BGActions actions(system, pools_, graph_, nullptr, Rng(1));
  EXPECT_TRUE(actions.ViewProfile(20));
  EXPECT_TRUE(server_.store().Get(PendingCountKey(20)));
  EXPECT_TRUE(server_.store().Get(FriendCountKey(20)));
  ASSERT_TRUE(actions.InviteFriend(5, 20));
  EXPECT_EQ(server_.store().Get(PendingCountKey(20))->value, "1");
}

// ---- workload mixes ---------------------------------------------------------------

TEST(Mixes, ProbabilitiesSumToOne) {
  for (const Mix& mix : {VeryLowWriteMix(), LowWriteMix(), HighWriteMix()}) {
    double sum = 0;
    for (double p : mix.probability) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Mixes, WritePercentsMatchTable5) {
  EXPECT_NEAR(VeryLowWriteMix().WritePercent(), 0.1, 1e-9);
  EXPECT_NEAR(LowWriteMix().WritePercent(), 1.0, 1e-9);
  EXPECT_NEAR(HighWriteMix().WritePercent(), 10.0, 1e-9);
}

TEST(Mixes, SelectorPicksByLabel) {
  EXPECT_NEAR(MixForWritePercent(0.1).WritePercent(), 0.1, 1e-9);
  EXPECT_NEAR(MixForWritePercent(1).WritePercent(), 1.0, 1e-9);
  EXPECT_NEAR(MixForWritePercent(10).WritePercent(), 10.0, 1e-9);
}

TEST(Workload, ShortIQRunHasZeroUnpredictableReads) {
  sql::Database db;
  CreateBgTables(db);
  GraphConfig graph{60, 4, 1, 1};
  LoadGraph(db, graph);
  ActionPools pools;
  pools.SeedFromGraph(graph);
  IQServer server;
  casql::CasqlConfig cfg;
  cfg.technique = casql::Technique::kRefresh;
  cfg.consistency = casql::Consistency::kIQ;
  casql::CasqlSystem system(db, server, cfg);

  WorkloadConfig wl;
  wl.mix = HighWriteMix();
  wl.threads = 4;
  wl.duration = 300 * kNanosPerMilli;
  wl.seed = 7;
  WorkloadResult result = RunWorkload(system, pools, graph, wl);
  EXPECT_GT(result.actions, 100u);
  EXPECT_GT(result.validation.reads_checked, 0u);
  EXPECT_EQ(result.validation.unpredictable, 0u);
  EXPECT_GT(result.Throughput(), 0.0);
}

TEST(Workload, ComputeSoarPicksBestPassingTrial) {
  auto fake_run = [](int threads) {
    WorkloadResult r;
    r.actions = static_cast<std::uint64_t>(threads) * 100;
    r.elapsed = kNanosPerSec;
    // 8 threads blow the SLA: all observations at 200ms.
    for (int i = 0; i < 100; ++i) {
      r.latency.Record(threads >= 8 ? 200 * kNanosPerMilli : kNanosPerMilli);
    }
    return r;
  };
  SoarResult soar = ComputeSoar(fake_run, {1, 2, 4, 8});
  EXPECT_EQ(soar.best_threads, 4);
  EXPECT_NEAR(soar.soar, 400.0, 1.0);
}

}  // namespace
}  // namespace iq::bg
