#include <gtest/gtest.h>

#include "kvs/camp.h"
#include "kvs/kvs.h"

namespace iq {
namespace {

// ---- the policy object in isolation ----------------------------------------

TEST(CampPolicy, EmptyHasNoVictim) {
  CampPolicy camp;
  EXPECT_FALSE(camp.Victim());
  EXPECT_EQ(camp.Size(), 0u);
}

TEST(CampPolicy, SingleItemIsTheVictim) {
  CampPolicy camp;
  camp.OnInsert("a", 10, 10);
  EXPECT_EQ(camp.Victim(), "a");
}

TEST(CampPolicy, CheapItemEvictedBeforeExpensive) {
  CampPolicy camp;
  camp.OnInsert("cheap", /*cost=*/1, /*size=*/100);
  camp.OnInsert("expensive", /*cost=*/100000, /*size=*/100);
  EXPECT_EQ(camp.Victim(), "cheap");
}

TEST(CampPolicy, SmallerItemSurvivesAtEqualCost) {
  CampPolicy camp;
  camp.OnInsert("big", /*cost=*/1000, /*size=*/1000);  // ratio 1
  camp.OnInsert("small", /*cost=*/1000, /*size=*/10);  // ratio 100
  EXPECT_EQ(camp.Victim(), "big");
}

TEST(CampPolicy, LruWithinEqualRatio) {
  CampPolicy camp;
  camp.OnInsert("first", 10, 10);
  camp.OnInsert("second", 10, 10);
  EXPECT_EQ(camp.Victim(), "first");
  camp.OnAccess("first");  // now "second" is the oldest untouched
  EXPECT_EQ(camp.Victim(), "second");
}

TEST(CampPolicy, EvictionAdvancesInflation) {
  CampPolicy camp;
  camp.OnInsert("a", 64, 1);
  EXPECT_EQ(camp.inflation(), 0u);
  camp.OnEvict("a");
  EXPECT_GT(camp.inflation(), 0u);
  EXPECT_EQ(camp.Size(), 0u);
}

TEST(CampPolicy, AgingLetsFreshCheapBeatIdleExpensive) {
  // Without aging an expensive item could pin its slot forever. After
  // enough evictions inflate L, a new cheap item outranks the idle
  // expensive one inserted long "ago".
  CampPolicy camp;
  camp.OnInsert("idle_expensive", /*cost=*/1000, /*size=*/1);  // priority 0+1000
  // Churn: insert/evict cheap items raising L beyond 1000.
  for (int i = 0; i < 2000; ++i) {
    std::string key = "churn" + std::to_string(i);
    camp.OnInsert(key, /*cost=*/2, /*size=*/1);
    auto victim = camp.Victim();
    ASSERT_TRUE(victim);
    if (*victim == "idle_expensive") break;  // aged out - success
    camp.OnEvict(*victim);
  }
  // Either the loop broke because the expensive item became the victim, or
  // inflation rose past its priority.
  EXPECT_TRUE(camp.Victim() == "idle_expensive" || camp.inflation() >= 1000u);
}

TEST(CampPolicy, EraseRemovesFromQueues) {
  CampPolicy camp;
  camp.OnInsert("a", 10, 10);
  camp.OnInsert("b", 10, 10);
  camp.OnErase("a");
  EXPECT_EQ(camp.Victim(), "b");
  camp.OnErase("b");
  EXPECT_FALSE(camp.Victim());
  EXPECT_EQ(camp.QueueCount(), 0u);
}

TEST(CampPolicy, ReinsertUpdatesRatio) {
  CampPolicy camp;
  camp.OnInsert("a", 1, 100);     // cheap
  camp.OnInsert("b", 50, 100);    // moderate
  camp.OnInsert("a", 100000, 1);  // "a" becomes very expensive
  EXPECT_EQ(camp.Victim(), "b");
}

TEST(CampPolicy, RoundingBoundsQueueCount) {
  CampPolicy camp(/*precision=*/2);
  // 1000 distinct ratios collapse into few rounded classes.
  for (int i = 1; i <= 1000; ++i) {
    camp.OnInsert("k" + std::to_string(i), static_cast<std::uint64_t>(i), 1);
  }
  EXPECT_LE(camp.QueueCount(), 24u);  // ~2 live buckets per power of two
}

// ---- integrated with CacheStore ----------------------------------------------

CacheStore::Config CampConfig(std::size_t budget) {
  CacheStore::Config cfg;
  cfg.shard_count = 1;
  cfg.memory_budget_bytes = budget;
  cfg.eviction = EvictionPolicy::kCamp;
  return cfg;
}

TEST(CacheStoreCamp, EvictsUnderBudget) {
  CacheStore store(CampConfig(800));
  for (int i = 0; i < 50; ++i) {
    store.Set("key" + std::to_string(i), "0123456789");
  }
  auto stats = store.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_used, 800u);
}

TEST(CacheStoreCamp, ExpensiveItemsSurviveChurn) {
  CacheStore store(CampConfig(1200));
  // One expensive-to-recompute item among a stream of cheap ones.
  store.Set("golden", "0123456789", 0, 0, /*cost=*/1000000);
  for (int i = 0; i < 200; ++i) {
    store.Set("cheap" + std::to_string(i), "0123456789", 0, 0, /*cost=*/1);
  }
  EXPECT_TRUE(store.Get("golden"));
  EXPECT_GT(store.Stats().evictions, 0u);
}

TEST(CacheStoreCamp, LruEvictsTheExpensiveItemInstead) {
  // Contrast: cost-blind LRU drops the golden item once it ages.
  CacheStore::Config cfg;
  cfg.shard_count = 1;
  cfg.memory_budget_bytes = 1200;
  cfg.eviction = EvictionPolicy::kLru;
  CacheStore store(cfg);
  store.Set("golden", "0123456789", 0, 0, /*cost=*/1000000);
  for (int i = 0; i < 200; ++i) {
    store.Set("cheap" + std::to_string(i), "0123456789", 0, 0, /*cost=*/1);
  }
  EXPECT_FALSE(store.Get("golden"));
}

TEST(CacheStoreCamp, DeleteKeepsPolicyInSync) {
  CacheStore store(CampConfig(0));  // no budget: no eviction
  store.Set("a", "v", 0, 0, 5);
  store.Set("b", "v", 0, 0, 5);
  EXPECT_TRUE(store.Delete("a"));
  store.Set("c", "v", 0, 0, 5);
  EXPECT_TRUE(store.Get("b"));
  EXPECT_TRUE(store.Get("c"));
}

TEST(CacheStoreCamp, AccessRefreshesPriority) {
  CacheStore store(CampConfig(1000));
  store.Set("hot", "0123456789", 0, 0, 10);
  for (int i = 0; i < 100; ++i) {
    store.Set("filler" + std::to_string(i), "0123456789", 0, 0, 10);
    store.Get("hot");  // keep touching the hot key
  }
  EXPECT_TRUE(store.Get("hot"));
}

TEST(CacheStoreCamp, WorksWithIncrAndAppend) {
  CacheStore store(CampConfig(0));
  store.Set("n", "1", 0, 0, 3);
  EXPECT_EQ(store.Incr("n", 1), 2u);
  store.Set("s", "a", 0, 0, 3);
  EXPECT_EQ(store.Append("s", "b"), StoreResult::kStored);
  EXPECT_EQ(store.Get("s")->value, "ab");
}

}  // namespace
}  // namespace iq
