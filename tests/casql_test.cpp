#include <gtest/gtest.h>

#include "core/iq_server.h"
#include "casql/casql.h"

namespace iq::casql {
namespace {

using sql::SchemaBuilder;
using sql::Transaction;
using sql::TxnResult;
using sql::V;

/// Fixture: one table Counters(id, n) with row (1, 100); KVS key "K"
/// caches the textual counter.
class CasqlTest : public ::testing::Test {
 protected:
  CasqlTest() {
    db_.CreateTable(SchemaBuilder("Counters")
                        .AddInt("id")
                        .AddInt("n")
                        .PrimaryKey({"id"})
                        .Build());
    auto txn = db_.Begin();
    txn->Insert("Counters", {V(1), V(100)});
    txn->Commit();
  }

  CasqlConfig Config(Technique t, Consistency c,
                     LeasePlacement p = LeasePlacement::kInsideTxn) {
    CasqlConfig cfg;
    cfg.technique = t;
    cfg.consistency = c;
    cfg.placement = p;
    cfg.client.backoff_base = 10 * kNanosPerMicro;
    cfg.client.backoff_cap = 100 * kNanosPerMicro;
    return cfg;
  }

  std::int64_t DbValue() {
    auto txn = db_.Begin();
    auto row = txn->SelectByPk("Counters", {V(1)});
    txn->Rollback();
    return row ? *sql::AsInt((*row)[1]) : -1;
  }

  static ComputeFn ComputeK() {
    return [](Transaction& txn) -> std::optional<std::string> {
      auto row = txn.SelectByPk("Counters", {V(1)});
      if (!row) return std::nullopt;
      return std::to_string(*sql::AsInt((*row)[1]));
    };
  }

  /// A write session that adds `delta` to the row and maintains key "K".
  WriteSpec AddSpec(std::int64_t delta) {
    WriteSpec spec;
    spec.body = [delta](Transaction& txn) {
      return txn.UpdateByPk("Counters", {V(1)}, [delta](sql::Row& row) {
               row[1] = V(*sql::AsInt(row[1]) + delta);
             }) == TxnResult::kOk;
    };
    KeyUpdate u;
    u.key = "K";
    u.refresh = [delta](const std::optional<std::string>& old)
        -> std::optional<std::string> {
      if (!old) return std::nullopt;
      return std::to_string(std::stoll(*old) + delta);
    };
    u.delta = delta >= 0
                  ? DeltaOp{DeltaOp::Kind::kIncr, {},
                            static_cast<std::uint64_t>(delta)}
                  : DeltaOp{DeltaOp::Kind::kDecr, {},
                            static_cast<std::uint64_t>(-delta)};
    spec.updates.push_back(std::move(u));
    return spec;
  }

  sql::Database db_;
  IQServer server_;
};

// ---- read sessions -------------------------------------------------------------

TEST_F(CasqlTest, ReadThroughComputesOnMissThenHits) {
  CasqlSystem system(db_, server_, Config(Technique::kInvalidate, Consistency::kIQ));
  auto conn = system.Connect();
  auto first = conn->Read("K", ComputeK());
  EXPECT_TRUE(first.computed);
  EXPECT_EQ(first.value, "100");
  auto second = conn->Read("K", ComputeK());
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.value, "100");
}

TEST_F(CasqlTest, PlainReadAlsoCaches) {
  CasqlSystem system(db_, server_, Config(Technique::kInvalidate, Consistency::kNone));
  auto conn = system.Connect();
  conn->Read("K", ComputeK());
  EXPECT_EQ(server_.store().Get("K")->value, "100");
}

TEST_F(CasqlTest, ReadOfMissingEntityReturnsNullopt) {
  CasqlSystem system(db_, server_, Config(Technique::kInvalidate, Consistency::kIQ));
  auto conn = system.Connect();
  auto out = conn->Read("Absent", [](Transaction&) -> std::optional<std::string> {
    return std::nullopt;
  });
  EXPECT_FALSE(out.value);
  // The I lease must have been dropped so others are not blocked.
  EXPECT_FALSE(server_.LeaseOn("Absent"));
}

// ---- write sessions, parameterized over all client designs ---------------------

struct ClientDesign {
  Technique technique;
  Consistency consistency;
  LeasePlacement placement;
};

class WriteSessionTest : public CasqlTest,
                         public ::testing::WithParamInterface<ClientDesign> {};

TEST_P(WriteSessionTest, CommittedWriteUpdatesBothStores) {
  const auto& d = GetParam();
  CasqlSystem system(db_, server_, Config(d.technique, d.consistency, d.placement));
  auto conn = system.Connect();
  conn->Read("K", ComputeK());  // warm the cache
  auto out = conn->Write(AddSpec(+50));
  EXPECT_TRUE(out.committed);
  EXPECT_EQ(DbValue(), 150);
  // Whatever the technique, a subsequent read must observe 150 (invalidate
  // deletes the key; refresh/incremental update it in place).
  auto read = conn->Read("K", ComputeK());
  ASSERT_TRUE(read.value);
  EXPECT_EQ(*read.value, "150");
}

TEST_P(WriteSessionTest, AbortedBodyLeavesBothStoresUntouched) {
  const auto& d = GetParam();
  CasqlSystem system(db_, server_, Config(d.technique, d.consistency, d.placement));
  auto conn = system.Connect();
  conn->Read("K", ComputeK());
  WriteSpec spec = AddSpec(+50);
  spec.body = [](Transaction&) { return false; };  // constraint violation
  auto out = conn->Write(spec);
  EXPECT_FALSE(out.committed);
  EXPECT_EQ(DbValue(), 100);
  auto read = conn->Read("K", ComputeK());
  ASSERT_TRUE(read.value);
  EXPECT_EQ(*read.value, "100");
}

TEST_P(WriteSessionTest, SequentialWritesAccumulate) {
  const auto& d = GetParam();
  CasqlSystem system(db_, server_, Config(d.technique, d.consistency, d.placement));
  auto conn = system.Connect();
  conn->Read("K", ComputeK());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(conn->Write(AddSpec(+10)).committed);
  }
  EXPECT_EQ(DbValue(), 150);
  auto read = conn->Read("K", ComputeK());
  EXPECT_EQ(*read.value, "150");
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, WriteSessionTest,
    ::testing::Values(
        ClientDesign{Technique::kInvalidate, Consistency::kNone,
                     LeasePlacement::kInsideTxn},
        ClientDesign{Technique::kInvalidate, Consistency::kReadLease,
                     LeasePlacement::kInsideTxn},
        ClientDesign{Technique::kInvalidate, Consistency::kIQ,
                     LeasePlacement::kInsideTxn},
        ClientDesign{Technique::kInvalidate, Consistency::kIQ,
                     LeasePlacement::kPriorToTxn},
        ClientDesign{Technique::kRefresh, Consistency::kNone,
                     LeasePlacement::kInsideTxn},
        ClientDesign{Technique::kRefresh, Consistency::kCas,
                     LeasePlacement::kInsideTxn},
        ClientDesign{Technique::kRefresh, Consistency::kIQ,
                     LeasePlacement::kInsideTxn},
        ClientDesign{Technique::kRefresh, Consistency::kIQ,
                     LeasePlacement::kPriorToTxn},
        ClientDesign{Technique::kIncremental, Consistency::kNone,
                     LeasePlacement::kInsideTxn},
        ClientDesign{Technique::kIncremental, Consistency::kIQ,
                     LeasePlacement::kInsideTxn},
        ClientDesign{Technique::kIncremental, Consistency::kIQ,
                     LeasePlacement::kPriorToTxn}));

// ---- IQ-specific behaviors ----------------------------------------------------

TEST_F(CasqlTest, IQInvalidateDeletesKeyAtCommit) {
  CasqlSystem system(db_, server_, Config(Technique::kInvalidate, Consistency::kIQ));
  auto conn = system.Connect();
  conn->Read("K", ComputeK());
  conn->Write(AddSpec(+1));
  EXPECT_FALSE(server_.store().Get("K"));  // invalidated
}

TEST_F(CasqlTest, IQRefreshKeepsKeyResident) {
  CasqlSystem system(db_, server_, Config(Technique::kRefresh, Consistency::kIQ));
  auto conn = system.Connect();
  conn->Read("K", ComputeK());
  conn->Write(AddSpec(+1));
  ASSERT_TRUE(server_.store().Get("K"));
  EXPECT_EQ(server_.store().Get("K")->value, "101");
}

TEST_F(CasqlTest, IQIncrementalAppliesDeltaServerSide) {
  CasqlSystem system(db_, server_,
                     Config(Technique::kIncremental, Consistency::kIQ));
  auto conn = system.Connect();
  conn->Read("K", ComputeK());
  conn->Write(AddSpec(+7));
  EXPECT_EQ(server_.store().Get("K")->value, "107");
}

TEST_F(CasqlTest, RefreshSkipsOnKvsMiss) {
  // Paper Section 4.2: on a miss the application may skip the update.
  CasqlSystem system(db_, server_, Config(Technique::kRefresh, Consistency::kIQ));
  auto conn = system.Connect();
  auto out = conn->Write(AddSpec(+50));  // "K" not cached
  EXPECT_TRUE(out.committed);
  EXPECT_FALSE(server_.store().Get("K"));
  EXPECT_EQ(DbValue(), 150);
}

TEST_F(CasqlTest, MixedModeInvalidateFlagDeletesListKey) {
  CasqlSystem system(db_, server_,
                     Config(Technique::kIncremental, Consistency::kIQ));
  server_.store().Set("List", "a,b");
  auto conn = system.Connect();
  conn->Read("K", ComputeK());
  WriteSpec spec = AddSpec(+1);
  KeyUpdate inv;
  inv.key = "List";
  inv.invalidate = true;
  spec.updates.push_back(std::move(inv));
  EXPECT_TRUE(conn->Write(spec).committed);
  EXPECT_EQ(server_.store().Get("K")->value, "101");  // delta applied
  EXPECT_FALSE(server_.store().Get("List"));          // invalidated
}

TEST_F(CasqlTest, RdbmsConflictRestartsSession) {
  CasqlSystem system(db_, server_, Config(Technique::kRefresh, Consistency::kIQ));
  auto conn = system.Connect();
  conn->Read("K", ComputeK());
  // A blocker holds a write intent on the row; it commits from inside the
  // session body on the first attempt, so the retry succeeds.
  auto blocker = db_.Begin();
  blocker->UpdateByPk("Counters", {V(1)}, {{"n", V(500)}});
  bool released = false;
  WriteSpec spec;
  spec.body = [&](Transaction& txn) {
    TxnResult r = txn.UpdateByPk("Counters", {V(1)}, [](sql::Row& row) {
      row[1] = V(*sql::AsInt(row[1]) + 1);
    });
    if (!released) {
      released = true;
      blocker->Commit();
    }
    return r == TxnResult::kOk;
  };
  spec.updates = AddSpec(+1).updates;
  auto out = conn->Write(spec);
  EXPECT_TRUE(out.committed);
  EXPECT_GE(out.rdbms_restarts, 1);
  EXPECT_EQ(DbValue(), 501);
}

TEST_F(CasqlTest, QLeaseConflictRestartsAndEventuallySucceeds) {
  CasqlConfig cfg = Config(Technique::kRefresh, Consistency::kIQ,
                           LeasePlacement::kPriorToTxn);
  CasqlSystem system(db_, server_, cfg);
  auto conn = system.Connect();
  conn->Read("K", ComputeK());
  // Hold a Q lease on "K" from a foreign session, then release it from
  // another thread while the session retries.
  SessionId intruder = server_.GenID();
  server_.QaRead("K", intruder);
  std::thread releaser([&] {
    SleepFor(server_.clock(), 2 * kNanosPerMilli);
    server_.Abort(intruder);
  });
  auto out = conn->Write(AddSpec(+50));
  releaser.join();
  EXPECT_TRUE(out.committed);
  EXPECT_GE(out.q_restarts, 1);
  EXPECT_EQ(server_.store().Get("K")->value, "150");
}

// ---- staleness auditor ---------------------------------------------------

TEST_F(CasqlTest, AuditDetectsPoisonedCacheEntry) {
  CasqlConfig cfg = Config(Technique::kRefresh, Consistency::kIQ);
  cfg.audit_rate = 1.0;
  CasqlSystem system(db_, server_, cfg);
  auto conn = system.Connect();
  conn->Read("K", ComputeK());  // miss + install
  // Corrupt the entry behind the framework's back — the kind of bug the
  // auditor exists to catch.
  server_.store().Set("K", "31337");
  auto out = conn->Read("K", ComputeK());
  EXPECT_TRUE(out.hit);
  AuditStats a = system.audit_stats();
  EXPECT_GE(a.samples, 1u);
  EXPECT_GE(a.stale_reads_detected, 1u);
  // The audit is an observer: it must leave the entry in place (SaR with no
  // replacement value), not silently repair it.
  EXPECT_EQ(server_.store().Get("K")->value, "31337");
}

TEST_F(CasqlTest, AuditDetectsPoisonUnderBaselineConsistency) {
  CasqlConfig cfg = Config(Technique::kRefresh, Consistency::kNone);
  cfg.audit_rate = 1.0;
  CasqlSystem system(db_, server_, cfg);
  auto conn = system.Connect();
  conn->Read("K", ComputeK());
  server_.store().Set("K", "31337");
  auto out = conn->Read("K", ComputeK());
  EXPECT_TRUE(out.hit);
  AuditStats a = system.audit_stats();
  EXPECT_GE(a.samples, 1u);
  EXPECT_GE(a.stale_reads_detected, 1u);
}

TEST_F(CasqlTest, AuditCleanRunHasNoFalsePositives) {
  CasqlConfig cfg = Config(Technique::kRefresh, Consistency::kIQ);
  cfg.audit_rate = 1.0;
  CasqlSystem system(db_, server_, cfg);
  auto conn = system.Connect();
  conn->Read("K", ComputeK());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(conn->Write(AddSpec(+1)).committed);
    auto out = conn->Read("K", ComputeK());
    EXPECT_EQ(out.value, std::to_string(DbValue()));
  }
  AuditStats a = system.audit_stats();
  EXPECT_GE(a.samples, 1u);
  EXPECT_EQ(a.stale_reads_detected, 0u);
}

TEST_F(CasqlTest, AuditDisabledRecordsNothing) {
  CasqlSystem system(db_, server_,
                     Config(Technique::kRefresh, Consistency::kIQ));
  auto conn = system.Connect();
  conn->Read("K", ComputeK());
  conn->Read("K", ComputeK());
  AuditStats a = system.audit_stats();
  EXPECT_EQ(a.samples, 0u);
  EXPECT_EQ(a.stale_reads_detected, 0u);
  EXPECT_EQ(a.skipped, 0u);
}

TEST_F(CasqlTest, ToStringsAreHumanReadable) {
  EXPECT_STREQ(ToString(Technique::kInvalidate), "invalidate");
  EXPECT_STREQ(ToString(Technique::kRefresh), "refresh");
  EXPECT_STREQ(ToString(Technique::kIncremental), "incremental");
  EXPECT_STREQ(ToString(Consistency::kNone), "none");
  EXPECT_STREQ(ToString(Consistency::kCas), "cas");
  EXPECT_STREQ(ToString(Consistency::kReadLease), "read-lease");
  EXPECT_STREQ(ToString(Consistency::kIQ), "IQ");
  EXPECT_STREQ(ToString(LeasePlacement::kPriorToTxn), "prior-to-txn");
  EXPECT_STREQ(ToString(LeasePlacement::kInsideTxn), "inside-txn");
}

}  // namespace
}  // namespace iq::casql
