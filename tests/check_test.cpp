// Tests for the offline execution-history checker (src/check): op-log
// format round trips, TRACE_INFO completeness parsing, one test per
// anomaly class over synthetic histories, the deterministic multi-source
// merge, the TRACE_INFO wire round trip, and — the teeth — mutation tests
// that re-introduce two historical consistency bugs on a real IQServer and
// assert the checker flags them (and certifies the fixed server).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/checker.h"
#include "check/oplog.h"
#include "core/iq_server.h"
#include "core/sharded_backend.h"
#include "net/channel.h"
#include "util/clock.h"
#include "util/trace_ring.h"

namespace iq {
namespace {

const std::uint64_t kKey = TraceKeyHash("k");

TraceEvent Ev(LeaseTraceKind kind, std::uint64_t session, Nanos at,
              std::uint64_t seq, std::uint64_t key_hash = kKey) {
  TraceEvent e;
  e.kind = kind;
  e.session = session;
  e.key_hash = key_hash;
  e.at = at;
  e.seq = seq;
  e.shard = 0;
  return e;
}

/// A complete single-server source: TRACE_INFO present, nothing dropped.
check::TraceSource Src(std::vector<TraceEvent> events) {
  check::TraceSource s;
  s.name = "test";
  s.info.recorded = events.size();
  s.info.capacity = 1024;
  s.events = std::move(events);
  s.has_info = true;
  return s;
}

check::OpRecord Op(check::OpKind kind, std::uint64_t session,
                   std::uint64_t key_hash,
                   std::uint64_t value_hash = check::kNoValueHash) {
  check::OpRecord r;
  r.at = 0;
  r.session = session;
  r.kind = kind;
  r.key_hash = key_hash;
  r.value_hash = value_hash;
  return r;
}

// ---- op-log format ------------------------------------------------------------

TEST(OpLogTest, KindNamesRoundTrip) {
  for (std::size_t i = 0; i < check::kOpKindCount; ++i) {
    auto kind = static_cast<check::OpKind>(i);
    auto parsed = check::ParseOpKind(check::ToString(kind));
    ASSERT_TRUE(parsed) << check::ToString(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(check::ParseOpKind("bogus"));
}

TEST(OpLogTest, ValueHashNeverCollidesWithNoValue) {
  EXPECT_NE(check::OpValueHash("anything"), check::kNoValueHash);
  EXPECT_NE(check::OpValueHash(std::string_view("")), check::kNoValueHash);
  EXPECT_EQ(check::OpValueHash(std::optional<std::string>()),
            check::kNoValueHash);
  EXPECT_EQ(check::OpValueHash(std::optional<std::string>("v")),
            check::OpValueHash("v"));
}

TEST(OpLogTest, DumpParseRoundTrip) {
  ManualClock clock;
  check::OpLog log(&clock);
  clock.Advance(7);
  log.Record(1, check::OpKind::kSeed, kKey, check::OpValueHash("v0"));
  clock.Advance(1);
  log.Record(2, check::OpKind::kReadHit, kKey, check::OpValueHash("v0"));
  log.Record(2, check::OpKind::kCommit, kKey);
  EXPECT_EQ(log.size(), 3u);

  std::vector<check::OpRecord> out;
  ASSERT_TRUE(check::ParseOpLog(log.Dump(), &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].at, 7);
  EXPECT_EQ(out[0].session, 1u);
  EXPECT_EQ(out[0].kind, check::OpKind::kSeed);
  EXPECT_EQ(out[0].key_hash, kKey);
  EXPECT_EQ(out[0].value_hash, check::OpValueHash("v0"));
  EXPECT_EQ(out[1].at, 8);
  EXPECT_EQ(out[2].kind, check::OpKind::kCommit);
  EXPECT_EQ(out[2].value_hash, check::kNoValueHash);
}

TEST(OpLogTest, ParseIsAllOrNothing) {
  std::vector<check::OpRecord> out;
  out.push_back(Op(check::OpKind::kSeed, 0, 1));
  // Malformed OP line: too few tokens.
  EXPECT_FALSE(check::ParseOpLog("OP 1 2 seed 3\r\n", &out));
  EXPECT_EQ(out.size(), 1u);  // untouched
  // Unknown kind.
  EXPECT_FALSE(check::ParseOpLog("OP 1 2 nosuchkind 3 4\r\n", &out));
  EXPECT_EQ(out.size(), 1u);
}

TEST(OpLogTest, TruncatedDumpFailsTheCountGuard) {
  ManualClock clock;
  check::OpLog log(&clock);
  log.Record(1, check::OpKind::kWrite, kKey, check::OpValueHash("a"));
  log.Record(1, check::OpKind::kCommit, kKey);
  std::string dump = log.Dump();
  // Chop the last OP line: OPLOG_INFO still declares 2 records.
  std::string truncated = dump.substr(0, dump.rfind("OP "));
  std::vector<check::OpRecord> out;
  EXPECT_FALSE(check::ParseOpLog(truncated, &out));
  EXPECT_TRUE(out.empty());
  // The intact dump parses.
  EXPECT_TRUE(check::ParseOpLog(dump, &out));
  EXPECT_EQ(out.size(), 2u);
}

// ---- TRACE_INFO parsing -------------------------------------------------------

TEST(TraceInfoTest, HeaderRoundTrip) {
  TraceInfo info;
  info.recorded = 12;
  info.dropped = 3;
  info.capacity = 64;
  std::string text = FormatTraceInfo(info);
  text += FormatTraceEvents({Ev(LeaseTraceKind::kQRefGrant, 1, 5, 0)});
  std::vector<TraceEvent> events;
  TraceInfo parsed;
  bool has_info = false;
  ASSERT_TRUE(ParseTraceEvents(text, &events, &parsed, &has_info));
  EXPECT_TRUE(has_info);
  EXPECT_EQ(parsed.recorded, 12u);
  EXPECT_EQ(parsed.dropped, 3u);
  EXPECT_EQ(parsed.capacity, 64u);
  ASSERT_EQ(events.size(), 1u);
}

TEST(TraceInfoTest, MultipleHeadersSum) {
  std::string text =
      "TRACE_INFO 5 1 64\r\nTRACE_INFO 7 0 64\r\nEND\r\n";
  std::vector<TraceEvent> events;
  TraceInfo info;
  bool has_info = false;
  ASSERT_TRUE(ParseTraceEvents(text, &events, &info, &has_info));
  EXPECT_TRUE(has_info);
  EXPECT_EQ(info.recorded, 12u);
  EXPECT_EQ(info.dropped, 1u);
  EXPECT_EQ(info.capacity, 128u);
}

TEST(TraceInfoTest, HeaderlessTraceReportsNoInfo) {
  std::vector<TraceEvent> events;
  TraceInfo info;
  bool has_info = true;
  ASSERT_TRUE(ParseTraceEvents("END\r\n", &events, &info, &has_info));
  EXPECT_FALSE(has_info);
}

TEST(TraceInfoTest, ParseIsAllOrNothing) {
  std::vector<TraceEvent> out;
  out.push_back(Ev(LeaseTraceKind::kCommit, 9, 9, 9));
  // A good TRACE line followed by a malformed TRACE_INFO: nothing published.
  std::string text = FormatTraceEvents({Ev(LeaseTraceKind::kIGrant, 1, 1, 0)});
  text += "TRACE_INFO 5 1\r\n";  // missing capacity
  EXPECT_FALSE(ParseTraceEvents(text, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].session, 9u);  // untouched
}

// ---- checker: anomaly classes -------------------------------------------------

TEST(CheckerTest, CleanHistoryCertifies) {
  auto src = Src({Ev(LeaseTraceKind::kQRefGrant, 1, 1, 0),
                  Ev(LeaseTraceKind::kCommit, 1, 2, 1)});
  std::vector<check::OpRecord> ops = {
      Op(check::OpKind::kSeed, 0, kKey, check::OpValueHash("v0")),
      Op(check::OpKind::kWrite, 1, kKey, check::OpValueHash("v1")),
      Op(check::OpKind::kCommit, 1, kKey),
      Op(check::OpKind::kReadHit, 2, kKey, check::OpValueHash("v1")),
  };
  check::CheckReport report = check::CheckHistory({src}, ops);
  EXPECT_TRUE(report.certified()) << report.Summary();
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.lifecycle_checked);
  EXPECT_EQ(report.grants, 1u);
  EXPECT_EQ(report.ends, 1u);
  EXPECT_EQ(report.reads_checked, 1u);
  EXPECT_EQ(report.open_leases, 0u);
}

TEST(CheckerTest, MissingHeaderRefusesCertification) {
  auto src = Src({Ev(LeaseTraceKind::kQRefGrant, 1, 1, 0),
                  Ev(LeaseTraceKind::kCommit, 1, 2, 1)});
  src.has_info = false;
  check::CheckReport report = check::CheckHistory({src}, {});
  EXPECT_FALSE(report.complete);
  EXPECT_FALSE(report.certified());
  EXPECT_FALSE(report.lifecycle_checked);  // unsound on unknown completeness
  EXPECT_EQ(report.counts[static_cast<std::size_t>(check::AnomalyClass::kDrops)],
            1u);
}

TEST(CheckerTest, DroppedEventsRefuseCertificationEvenWhenAllowed) {
  auto src = Src({Ev(LeaseTraceKind::kCommit, 1, 2, 6)});
  src.info.recorded = 7;
  src.info.dropped = 6;
  check::CheckerOptions options;
  options.allow_drops = true;
  check::CheckReport report = check::CheckHistory({src}, {}, options);
  // allow_drops keeps the counters clean but cannot make the run certified.
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(report.complete);
  EXPECT_FALSE(report.certified());
  EXPECT_FALSE(report.lifecycle_checked);

  check::CheckReport strict = check::CheckHistory({src}, {});
  EXPECT_FALSE(strict.clean());
  EXPECT_EQ(strict.counts[static_cast<std::size_t>(check::AnomalyClass::kDrops)],
            1u);
}

TEST(CheckerTest, ShortDrainRefusesCertification) {
  auto src = Src({Ev(LeaseTraceKind::kQRefGrant, 1, 1, 0)});
  src.info.recorded = 5;  // server recorded more than we drained
  check::CheckReport report = check::CheckHistory({src}, {});
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.counts[static_cast<std::size_t>(check::AnomalyClass::kDrops)],
            1u);
}

TEST(CheckerTest, OverlappingQGrantsAreFlagged) {
  auto src = Src({Ev(LeaseTraceKind::kQRefGrant, 1, 1, 0),
                  Ev(LeaseTraceKind::kQRefGrant, 2, 2, 1),
                  Ev(LeaseTraceKind::kCommit, 2, 3, 2)});
  check::CheckReport report = check::CheckHistory({src}, {});
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(
      report.counts[static_cast<std::size_t>(check::AnomalyClass::kOverlapQ)],
      1u);
}

TEST(CheckerTest, GrantOverLiveLeaseIsProtocolAnomaly) {
  auto src = Src({Ev(LeaseTraceKind::kQRefGrant, 1, 1, 0),
                  Ev(LeaseTraceKind::kIGrant, 2, 2, 1)});
  check::CheckReport report = check::CheckHistory({src}, {});
  EXPECT_GE(
      report.counts[static_cast<std::size_t>(check::AnomalyClass::kProtocol)],
      1u);
}

TEST(CheckerTest, EndWithoutGrantIsFlagged) {
  auto src = Src({Ev(LeaseTraceKind::kCommit, 1, 1, 0)});
  check::CheckReport report = check::CheckHistory({src}, {});
  EXPECT_EQ(report.counts[static_cast<std::size_t>(
                check::AnomalyClass::kUnmatchedEnd)],
            1u);
  // Commit of session B while A holds the lease is also unmatched.
  auto src2 = Src({Ev(LeaseTraceKind::kQRefGrant, 1, 1, 0),
                   Ev(LeaseTraceKind::kCommit, 2, 2, 1),
                   Ev(LeaseTraceKind::kCommit, 1, 3, 2)});
  check::CheckReport report2 = check::CheckHistory({src2}, {});
  EXPECT_EQ(report2.counts[static_cast<std::size_t>(
                check::AnomalyClass::kUnmatchedEnd)],
            1u);
}

TEST(CheckerTest, SharedInvalidateHoldersEachCloseOnce) {
  auto src = Src({Ev(LeaseTraceKind::kQInvGrant, 1, 1, 0),
                  Ev(LeaseTraceKind::kQInvGrant, 2, 2, 1),  // shared, legal
                  Ev(LeaseTraceKind::kCommit, 1, 3, 2),
                  Ev(LeaseTraceKind::kCommit, 2, 4, 3)});
  check::CheckReport report = check::CheckHistory({src}, {});
  EXPECT_TRUE(report.certified()) << report.Summary();

  // Whole-entry expiry is traced once with session 0.
  auto src2 = Src({Ev(LeaseTraceKind::kQInvGrant, 1, 1, 0),
                   Ev(LeaseTraceKind::kQInvGrant, 2, 2, 1),
                   Ev(LeaseTraceKind::kExpire, 0, 3, 2)});
  EXPECT_TRUE(check::CheckHistory({src2}, {}).certified());
}

TEST(CheckerTest, UnjustifiedReadIsFlagged) {
  std::vector<check::OpRecord> ops = {
      Op(check::OpKind::kSeed, 0, kKey, check::OpValueHash("v0")),
      Op(check::OpKind::kReadHit, 1, kKey, check::OpValueHash("phantom")),
  };
  check::CheckReport report = check::CheckHistory({}, ops);
  EXPECT_EQ(report.counts[static_cast<std::size_t>(
                check::AnomalyClass::kUnjustifiedRead)],
            1u);
  // Ground-truth db reads justify later hits (recompute-on-miss).
  std::vector<check::OpRecord> ok = {
      Op(check::OpKind::kReadDb, 1, kKey, check::OpValueHash("fresh")),
      Op(check::OpKind::kReadHit, 2, kKey, check::OpValueHash("fresh")),
  };
  EXPECT_TRUE(check::CheckHistory({}, ok).certified());
}

TEST(CheckerTest, DeltaMakesKeyHashExempt) {
  std::vector<check::OpRecord> ops = {
      Op(check::OpKind::kSeed, 0, kKey, check::OpValueHash("1")),
      Op(check::OpKind::kDelta, 1, kKey),
      Op(check::OpKind::kCommit, 1, kKey),
      // "2" was never logged as an intent — the delta result is unknowable
      // client-side, so this read must not be flagged.
      Op(check::OpKind::kReadHit, 2, kKey, check::OpValueHash("2")),
  };
  check::CheckReport report = check::CheckHistory({}, ops);
  EXPECT_TRUE(report.certified()) << report.Summary();
  EXPECT_EQ(report.reads_exempt, 1u);
  EXPECT_EQ(report.reads_checked, 0u);
}

TEST(CheckerTest, NonMonotonicSessionIsFlagged) {
  std::vector<check::OpRecord> ops = {
      Op(check::OpKind::kSeed, 0, kKey, check::OpValueHash("1")),
      Op(check::OpKind::kReadHit, 1, kKey, check::OpValueHash("1")),
      Op(check::OpKind::kDelta, 1, kKey),
      // Re-read under the session's own Q lease observed the pre-delta
      // value again: the own-update visibility bug.
      Op(check::OpKind::kReadOwn, 1, kKey, check::OpValueHash("1")),
      Op(check::OpKind::kCommit, 1, kKey),
  };
  check::CheckReport report = check::CheckHistory({}, ops);
  EXPECT_EQ(report.counts[static_cast<std::size_t>(
                check::AnomalyClass::kNonMonotonicSession)],
            1u);

  // The healthy shape: the re-read observes a NEW value.
  std::vector<check::OpRecord> ok = {
      Op(check::OpKind::kSeed, 0, kKey, check::OpValueHash("1")),
      Op(check::OpKind::kReadHit, 1, kKey, check::OpValueHash("1")),
      Op(check::OpKind::kDelta, 1, kKey),
      Op(check::OpKind::kReadOwn, 1, kKey, check::OpValueHash("2")),
      Op(check::OpKind::kCommit, 1, kKey),
  };
  EXPECT_TRUE(check::CheckHistory({}, ok).certified());
}

TEST(CheckerTest, CommitResetsReusedSessionIds) {
  // Server session ids are reused across logical sessions in a connection:
  // an observation made by the PREVIOUS logical session must not poison
  // the own-update check of the next one.
  std::vector<check::OpRecord> ops = {
      Op(check::OpKind::kSeed, 0, kKey, check::OpValueHash("1")),
      Op(check::OpKind::kReadHit, 1, kKey, check::OpValueHash("1")),
      Op(check::OpKind::kCommit, 1, kKey),
      // Same id, new logical session; it never observed "1" itself.
      Op(check::OpKind::kDelta, 1, kKey),
      Op(check::OpKind::kReadOwn, 1, kKey, check::OpValueHash("1")),
      Op(check::OpKind::kCommit, 1, kKey),
  };
  EXPECT_TRUE(check::CheckHistory({}, ops).certified());
}

TEST(CheckerTest, RequireQuiescentFlagsOpenLeases) {
  auto src = Src({Ev(LeaseTraceKind::kQRefGrant, 1, 1, 0)});
  check::CheckReport lax = check::CheckHistory({src}, {});
  EXPECT_EQ(lax.open_leases, 1u);
  EXPECT_TRUE(lax.certified());  // open leases are legal mid-run

  check::CheckerOptions options;
  options.require_quiescent = true;
  check::CheckReport strict = check::CheckHistory({src}, {}, options);
  EXPECT_EQ(
      strict.counts[static_cast<std::size_t>(check::AnomalyClass::kProtocol)],
      1u);
}

TEST(CheckerTest, MaxAnomaliesBoundsRecordsNotCounts) {
  std::vector<check::OpRecord> ops;
  ops.push_back(Op(check::OpKind::kSeed, 0, kKey, check::OpValueHash("v")));
  for (int i = 0; i < 50; ++i) {
    ops.push_back(Op(check::OpKind::kReadHit, 1, kKey,
                     check::OpValueHash("phantom" + std::to_string(i))));
  }
  check::CheckerOptions options;
  options.max_anomalies = 5;
  check::CheckReport report = check::CheckHistory({}, ops, options);
  EXPECT_EQ(report.anomalies.size(), 5u);
  EXPECT_EQ(report.total_anomalies(), 50u);
}

// ---- deterministic multi-source merge -----------------------------------------

// Two sources with EQUAL timestamps (ManualClock) must merge in a stable,
// deterministic order: by source index, preserving each ring's seq order.
TEST(CheckerTest, EqualTimestampMergeIsDeterministic) {
  const std::uint64_t ka = TraceKeyHash("a");
  const std::uint64_t kb = TraceKeyHash("b");
  auto src_a = Src({Ev(LeaseTraceKind::kQRefGrant, 1, 5, 0, ka),
                    Ev(LeaseTraceKind::kCommit, 1, 5, 1, ka)});
  auto src_b = Src({Ev(LeaseTraceKind::kQRefGrant, 2, 5, 0, kb),
                    Ev(LeaseTraceKind::kCommit, 2, 5, 1, kb)});
  // Both orders of the source list replay each key's lifecycle correctly.
  EXPECT_TRUE(check::CheckHistory({src_a, src_b}, {}).certified());
  EXPECT_TRUE(check::CheckHistory({src_b, src_a}, {}).certified());
}

// ---- ShardedBackend trace aggregation -----------------------------------------

TEST(ShardedTraceTest, SnapshotMergesAndInfoSums) {
  ManualClock clock;
  IQServer::Config cfg;
  cfg.clock = &clock;
  cfg.trace_capacity = 64;
  CacheStore::Config store{.shard_count = 1, .memory_budget_bytes = 0,
                           .clock = &clock};
  IQServer a(store, cfg), b(store, cfg);

  std::vector<ShardedBackend::Shard> shards;
  shards.push_back({"a", &a, 1, nullptr, nullptr,
                    [&a](std::size_t m) { return a.TraceSnapshot(m); },
                    [&a] { return a.TraceInfoTotal(); }});
  shards.push_back({"b", &b, 1, nullptr, nullptr,
                    [&b](std::size_t m) { return b.TraceSnapshot(m); },
                    [&b] { return b.TraceInfoTotal(); }});
  ShardedBackend router(std::move(shards));

  // Equal timestamps on both children: the merge must keep child order
  // (a before b) and each child's internal order — deterministically.
  clock.Advance(5);
  QaReadReply qa = a.QaRead("x", 1);
  a.SaR("x", "v", qa.token);
  QaReadReply qb = b.QaRead("y", 2);
  b.SaR("y", "v", qb.token);

  auto merged = router.TraceSnapshot(100);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].key_hash, TraceKeyHash("x"));
  EXPECT_EQ(merged[0].kind, LeaseTraceKind::kQRefGrant);
  EXPECT_EQ(merged[1].key_hash, TraceKeyHash("x"));
  EXPECT_EQ(merged[1].kind, LeaseTraceKind::kRelease);
  EXPECT_EQ(merged[2].key_hash, TraceKeyHash("y"));
  EXPECT_EQ(merged[3].key_hash, TraceKeyHash("y"));

  TraceInfo info = router.TraceInfoTotal();
  EXPECT_EQ(info.recorded, 4u);
  EXPECT_EQ(info.dropped, 0u);
  EXPECT_EQ(info.capacity, a.TraceInfoTotal().capacity * 2);

  // Trimming keeps the NEWEST events across the merged timeline.
  auto trimmed = router.TraceSnapshot(1);
  ASSERT_EQ(trimmed.size(), 1u);
  EXPECT_EQ(trimmed[0].key_hash, TraceKeyHash("y"));
}

// ---- TRACE_INFO wire round trip -----------------------------------------------

TEST(WireTraceTest, TraceWithInfoCarriesCompleteness) {
  IQServer server(CacheStore::Config{}, IQServer::Config{});
  net::LoopbackChannel channel(server);
  net::RemoteCacheClient client(channel);

  QaReadReply q = server.QaRead("k", 1);
  server.SaR("k", "v", q.token);

  auto drain = client.TraceWithInfo(100);
  ASSERT_TRUE(drain);
  EXPECT_TRUE(drain->has_info);
  EXPECT_EQ(drain->info.recorded, server.TraceRecorded());
  EXPECT_EQ(drain->info.dropped, 0u);
  EXPECT_GT(drain->info.capacity, 0u);
  ASSERT_EQ(drain->events.size(), 2u);
  EXPECT_EQ(drain->events[0].kind, LeaseTraceKind::kQRefGrant);

  // And the drained history certifies end to end.
  check::TraceSource src;
  src.name = "loopback";
  src.events = drain->events;
  src.info = drain->info;
  src.has_info = drain->has_info;
  EXPECT_TRUE(check::CheckHistory({src}, {}).certified());
}

// ---- mutation tests: the checker's teeth --------------------------------------

struct MutationRun {
  check::CheckReport report;
  std::optional<std::string> reread;  // value observed under own lease
};

/// Drive the own-update probe against a server: QaRead, buffer a +1 delta,
/// re-read under the same (live) Q lease, commit — logging ops as a client
/// would — then check the full history.
MutationRun RunOwnUpdateProbe(bool mutate) {
  ManualClock clock;
  IQServer::Config cfg;
  cfg.clock = &clock;
  cfg.trace_capacity = 256;
  cfg.mutate_own_update_invisible = mutate;
  IQServer server(CacheStore::Config{.shard_count = 1,
                                     .memory_budget_bytes = 0,
                                     .clock = &clock},
                  cfg);
  check::OpLog log(&clock);
  const std::uint64_t kh = TraceKeyHash("k");

  log.Record(0, check::OpKind::kSeed, kh, check::OpValueHash("1"));
  server.store().Set("k", "1");
  clock.Advance(1);

  QaReadReply q = server.QaRead("k", 1);
  EXPECT_EQ(q.status, QaReadReply::Status::kGranted);
  log.Record(1, check::OpKind::kReadHit, kh, check::OpValueHash(q.value));

  DeltaOp delta;
  delta.kind = DeltaOp::Kind::kIncr;
  delta.amount = 1;
  EXPECT_EQ(server.IQDelta(1, "k", delta), QuarantineResult::kGranted);
  log.Record(1, check::OpKind::kDelta, kh);
  clock.Advance(1);

  QaReadReply own = server.QaRead("k", 1);
  EXPECT_EQ(own.status, QaReadReply::Status::kGranted);
  log.Record(1, check::OpKind::kReadOwn, kh, check::OpValueHash(own.value));
  server.Commit(1);
  log.Record(1, check::OpKind::kCommit, kh);

  check::TraceSource src;
  src.name = "server";
  src.events = server.TraceSnapshot(1000);
  src.info = server.TraceInfoTotal();
  src.has_info = true;
  return {check::CheckHistory({src}, log.Snapshot()), own.value};
}

TEST(MutationTest, OwnUpdateInvisibleBugIsFlagged) {
  MutationRun bad = RunOwnUpdateProbe(/*mutate=*/true);
  ASSERT_TRUE(bad.reread);
  EXPECT_EQ(*bad.reread, "1");  // the bug: pre-delta value re-observed
  EXPECT_FALSE(bad.report.certified());
  EXPECT_EQ(bad.report.counts[static_cast<std::size_t>(
                check::AnomalyClass::kNonMonotonicSession)],
            1u)
      << bad.report.Summary();
}

TEST(MutationTest, FixedServerPassesOwnUpdateProbe) {
  MutationRun good = RunOwnUpdateProbe(/*mutate=*/false);
  ASSERT_TRUE(good.reread);
  EXPECT_EQ(*good.reread, "2");  // own delta replayed into the re-read
  EXPECT_TRUE(good.report.certified()) << good.report.Summary();
}

/// Two sessions contend for one key's Q lease; return the checker report.
check::CheckReport RunOverlapProbe(bool mutate) {
  ManualClock clock;
  IQServer::Config cfg;
  cfg.clock = &clock;
  cfg.trace_capacity = 256;
  cfg.mutate_overlap_q = mutate;
  IQServer server(CacheStore::Config{.shard_count = 1,
                                     .memory_budget_bytes = 0,
                                     .clock = &clock},
                  cfg);
  server.store().Set("k", "v");
  clock.Advance(1);

  QaReadReply first = server.QaRead("k", 1);
  EXPECT_EQ(first.status, QaReadReply::Status::kGranted);
  clock.Advance(1);
  QaReadReply second = server.QaRead("k", 2);
  if (mutate) {
    // The seeded bug steals the live lease instead of rejecting.
    EXPECT_EQ(second.status, QaReadReply::Status::kGranted);
    server.SaR("k", "v2", second.token);
    server.Commit(2);
  } else {
    EXPECT_EQ(second.status, QaReadReply::Status::kReject);
    server.SaR("k", "v1", first.token);
    server.Commit(1);
  }
  server.Commit(1);  // stale holder's commit is a no-op either way

  check::TraceSource src;
  src.name = "server";
  src.events = server.TraceSnapshot(1000);
  src.info = server.TraceInfoTotal();
  src.has_info = true;
  return check::CheckHistory({src}, {});
}

TEST(MutationTest, OverlapQBugIsFlagged) {
  check::CheckReport bad = RunOverlapProbe(/*mutate=*/true);
  EXPECT_FALSE(bad.certified());
  EXPECT_GE(bad.counts[static_cast<std::size_t>(
                check::AnomalyClass::kOverlapQ)],
            1u)
      << bad.Summary();
}

TEST(MutationTest, FixedServerRejectsContendingQ) {
  check::CheckReport good = RunOverlapProbe(/*mutate=*/false);
  EXPECT_TRUE(good.certified()) << good.Summary();
}

}  // namespace
}  // namespace iq
