// Fault injection across the stack: the FaultChannel/FaultBackend harnesses
// themselves, the transport-error status on every wire verb, the casql
// restart discipline that keeps a dropped QaReg from leaving a permanently
// stale value (the anomaly of Section 2 with a dead connection instead of a
// racing reader), and the ShardedBackend circuit breaker.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>

#include "casql/casql.h"
#include "core/fault_backend.h"
#include "core/iq_client.h"
#include "core/iq_server.h"
#include "core/sharded_backend.h"
#include "net/channel.h"
#include "net/fault.h"
#include "net/remote_backend.h"

namespace iq {
namespace {

using casql::CasqlConfig;
using casql::CasqlSystem;
using casql::Consistency;
using casql::Technique;
using net::FaultChannel;
using sql::SchemaBuilder;
using sql::Transaction;
using sql::TxnResult;
using sql::V;

FaultChannel::Rule Drop(FaultChannel::Fault fault, std::string match,
                        int skip = 0, int count = 1) {
  FaultChannel::Rule r;
  r.fault = fault;
  r.match = std::move(match);
  r.skip = skip;
  r.count = count;
  return r;
}

// ---- the FaultChannel harness itself ------------------------------------

TEST(FaultChannelTest, SkipCountDownAndHeal) {
  IQServer server;
  net::LoopbackChannel inner(server);
  FaultChannel fault(inner);
  std::string reply;

  fault.Arm(Drop(FaultChannel::Fault::kDropRequest, "get", /*skip=*/1));
  EXPECT_TRUE(fault.RoundTrip("get k\r\n", &reply));   // let through
  EXPECT_FALSE(fault.RoundTrip("get k\r\n", &reply));  // fired
  EXPECT_TRUE(fault.RoundTrip("get k\r\n", &reply));   // disarmed
  EXPECT_EQ(fault.faults_injected(), 1u);

  fault.Arm(Drop(FaultChannel::Fault::kDown, ""));
  EXPECT_FALSE(fault.RoundTrip("get k\r\n", &reply));
  EXPECT_TRUE(fault.down());
  // Down outlives the (consumed) rule until healed.
  EXPECT_FALSE(fault.RoundTrip("get k\r\n", &reply));
  fault.Heal();
  EXPECT_TRUE(fault.RoundTrip("get k\r\n", &reply));
}

TEST(FaultChannelTest, DropResponseExecutesServerSide) {
  IQServer server;
  net::LoopbackChannel inner(server);
  FaultChannel fault(inner);
  net::RemoteBackend backend(fault);

  fault.Arm(Drop(FaultChannel::Fault::kDropResponse, "set"));
  EXPECT_EQ(backend.Set("k", "v"), StoreResult::kTransportError);
  // The asymmetric case: the server executed the request, only the reply
  // was lost. The client must not assume either outcome.
  ASSERT_TRUE(server.store().Get("k").has_value());
  EXPECT_EQ(server.store().Get("k")->value, "v");
}

// ---- transport-error status on every wire verb --------------------------

class WireFaultTest : public ::testing::Test {
 protected:
  WireFaultTest() : inner_(server_), fault_(inner_), backend_(fault_) {}

  void DropNext(const std::string& match) {
    fault_.Arm(Drop(FaultChannel::Fault::kDropRequest, match));
  }

  IQServer server_;
  net::LoopbackChannel inner_;
  FaultChannel fault_;
  net::RemoteBackend backend_;
};

TEST_F(WireFaultTest, EveryVerbReportsTransportErrorNotAMiss) {
  DropNext("genid");
  EXPECT_EQ(backend_.GenID(), 0u);
  SessionId sid = backend_.GenID();
  ASSERT_NE(sid, 0u);

  DropNext("iqget");
  EXPECT_EQ(backend_.IQget("k", sid).status, GetReply::Status::kTransportError);
  DropNext("iqset");
  EXPECT_EQ(backend_.IQset("k", "v", 1), StoreResult::kTransportError);
  DropNext("qaread");
  EXPECT_EQ(backend_.QaRead("k", sid).status,
            QaReadReply::Status::kTransportError);
  DropNext("sar");
  EXPECT_EQ(backend_.SaR("k", std::string_view("v"), 1),
            StoreResult::kTransportError);
  DropNext("qareg");
  EXPECT_EQ(backend_.QaReg(sid, "k"), QuarantineResult::kTransportError);
  DropNext("iqincr");
  EXPECT_EQ(backend_.IQDelta(sid, "k", DeltaOp{DeltaOp::Kind::kIncr, {}, 1}),
            QuarantineResult::kTransportError);
  ASSERT_EQ(backend_.Set("g", "1"), StoreResult::kStored);
  DropNext("gets");  // RemoteBackend reads via gets (cas unique included)
  EXPECT_EQ(backend_.Get("g"), std::nullopt);
  DropNext("set ");
  EXPECT_EQ(backend_.Set("g", "2"), StoreResult::kTransportError);
  backend_.Abort(sid);
  EXPECT_EQ(fault_.faults_injected(), 9u);
}

TEST_F(WireFaultTest, DroppedQaRegResponseIsAnErrorNotAGrant) {
  SessionId sid = backend_.GenID();
  ASSERT_NE(sid, 0u);
  fault_.Arm(Drop(FaultChannel::Fault::kDropResponse, "qareg"));
  // The server granted and registered the quarantine; the reply was lost.
  // Before the fix this surfaced as kGranted — the permanent-staleness bug.
  EXPECT_EQ(backend_.QaReg(sid, "k"), QuarantineResult::kTransportError);
  EXPECT_EQ(server_.LeaseCount(), 1u);
  // Abort (the mandated reaction) releases the orphaned lease.
  backend_.Abort(sid);
  EXPECT_EQ(server_.LeaseCount(), 0u);
}

// ---- the headline: a dropped QaReg must not leave a stale value ----------

class CasqlFaultTest : public ::testing::Test {
 protected:
  CasqlFaultTest() : inner_(server_), fault_(inner_), backend_(fault_) {
    db_.CreateTable(
        SchemaBuilder("T").AddInt("id").AddInt("n").PrimaryKey({"id"}).Build());
    auto txn = db_.Begin();
    txn->Insert("T", {V(1), V(0)});
    txn->Commit();
  }

  CasqlConfig Config() {
    CasqlConfig cfg;
    cfg.technique = Technique::kInvalidate;
    cfg.consistency = Consistency::kIQ;
    cfg.client.backoff_base = 20 * kNanosPerMicro;
    cfg.client.backoff_cap = kNanosPerMilli;
    return cfg;
  }

  static std::optional<std::string> Compute(Transaction& txn) {
    auto row = txn.SelectByPk("T", {V(1)});
    if (!row) return std::nullopt;
    return std::to_string(*sql::AsInt((*row)[1]));
  }

  casql::WriteSpec IncrementSpec() {
    casql::WriteSpec spec;
    spec.body = [](Transaction& txn) {
      return txn.UpdateByPk("T", {V(1)}, [](sql::Row& row) {
               row[1] = V(*sql::AsInt(row[1]) + 1);
             }) == TxnResult::kOk;
    };
    casql::KeyUpdate u;
    u.key = "K";
    spec.updates.push_back(std::move(u));
    return spec;
  }

  // Cache "0", drop the first qareg per `fault`, write n=1, and require the
  // session to have restarted instead of committing around the dead
  // quarantine: the cache must never still say "0" afterwards.
  void RunScenario(FaultChannel::Fault kind) {
    CasqlSystem system(db_, backend_, Config());
    auto conn = system.Connect();
    auto cached = conn->Read("K", Compute);
    ASSERT_TRUE(cached.value);
    ASSERT_EQ(*cached.value, "0");
    ASSERT_EQ(server_.store().Get("K")->value, "0");

    fault_.Arm(Drop(kind, "qareg"));
    casql::WriteOutcome out = conn->Write(IncrementSpec());
    EXPECT_TRUE(out.committed);
    EXPECT_GE(out.transport_restarts, 1);

    // The committed write invalidated the key despite the fault: no lease
    // is stranded and the stale "0" is gone from the cache.
    EXPECT_EQ(server_.LeaseCount(), 0u);
    auto item = server_.store().Get("K");
    EXPECT_TRUE(!item.has_value() || item->value != "0");
    auto read = conn->Read("K", Compute);
    ASSERT_TRUE(read.value);
    EXPECT_EQ(*read.value, "1");
  }

  sql::Database db_;
  IQServer server_;
  net::LoopbackChannel inner_;
  FaultChannel fault_;
  net::RemoteBackend backend_;
};

TEST_F(CasqlFaultTest, DroppedQaRegRequestDoesNotLeaveAStaleValue) {
  RunScenario(FaultChannel::Fault::kDropRequest);
}

TEST_F(CasqlFaultTest, DroppedQaRegResponseDoesNotLeaveAStaleValue) {
  RunScenario(FaultChannel::Fault::kDropResponse);
}

TEST_F(CasqlFaultTest, WriteNeverCommitsWhileTheCacheIsDown) {
  CasqlConfig cfg = Config();
  cfg.max_session_restarts = 3;
  CasqlSystem system(db_, backend_, cfg);
  auto conn = system.Connect();
  conn->Read("K", Compute);

  fault_.Arm(Drop(FaultChannel::Fault::kDown, ""));
  casql::WriteOutcome out = conn->Write(IncrementSpec());
  EXPECT_FALSE(out.committed);
  EXPECT_EQ(out.transport_restarts, 3);
  // Every attempt rolled the RDBMS back: committing with no quarantine in
  // place would strand "0" in the cache forever.
  auto txn = db_.Begin();
  auto row = txn->SelectByPk("T", {V(1)});
  ASSERT_TRUE(row);
  EXPECT_EQ(*sql::AsInt((*row)[1]), 0);
  txn->Rollback();

  // Reads meanwhile degrade to RDBMS pass-through instead of spinning.
  auto read = conn->Read("K2", Compute);
  EXPECT_TRUE(read.computed);
  ASSERT_TRUE(read.value);
  EXPECT_EQ(*read.value, "0");

  fault_.Heal();
  out = conn->Write(IncrementSpec());
  EXPECT_TRUE(out.committed);
  auto after = conn->Read("K", Compute);
  ASSERT_TRUE(after.value);
  EXPECT_EQ(*after.value, "1");
}

// ---- FaultBackend + the client session layer -----------------------------

TEST(FaultBackendTest, SessionCountsTransportErrorsSeparately) {
  IQServer server;
  FaultBackend fb(server);
  IQClient::Config cfg;
  cfg.backoff_base = 20 * kNanosPerMicro;
  cfg.backoff_cap = kNanosPerMilli;
  IQClient client(fb, cfg);
  auto session = client.NewSession();

  fb.FailNext(FaultBackend::Verb::kQaReg);
  EXPECT_EQ(session->Quarantine("k"), ClientQResult::kTransportError);
  EXPECT_EQ(session->stats().transport_errors, 1u);
  EXPECT_EQ(session->stats().q_conflicts, 0u);
  session->Abort();
  EXPECT_EQ(session->Quarantine("k"), ClientQResult::kGranted);
  session->Abort();

  // A transport error on the read path degrades to pass-through: read the
  // RDBMS, install nothing (no token exists to install with).
  fb.FailNext(FaultBackend::Verb::kIQget);
  EXPECT_EQ(session->Get("k").status, ClientGetResult::Status::kMissNoInstall);
  EXPECT_EQ(session->stats().transport_errors, 2u);
}

TEST(FaultBackendTest, SessionMintedWhileDownHealsAfterReconnect) {
  IQServer server;
  FaultBackend fb(server);
  IQClient client(fb);
  fb.SetDown(true);
  auto session = client.NewSession();
  EXPECT_EQ(session->id(), 0u);  // minted against a dead server
  EXPECT_EQ(session->Quarantine("k"), ClientQResult::kTransportError);
  fb.SetDown(false);
  // The id is re-minted lazily on the next operation.
  EXPECT_EQ(session->Quarantine("k"), ClientQResult::kGranted);
  EXPECT_NE(session->id(), 0u);
  session->Commit();
  EXPECT_EQ(server.LeaseCount(), 0u);
}

TEST(FaultBackendTest, SessionMintedWhileDownHealsOnTheReadPath) {
  // Regression: Get() used to skip the lazy id re-mint, so a session minted
  // against a dead server kept issuing IQget under session 0 — and an I
  // lease granted to session 0 could never be released by Commit/Abort
  // once a later write verb switched the id.
  IQServer server;
  FaultBackend fb(server);
  IQClient client(fb);
  fb.SetDown(true);
  auto session = client.NewSession();
  EXPECT_EQ(session->id(), 0u);
  EXPECT_EQ(session->Get("k").status, ClientGetResult::Status::kMissNoInstall);
  EXPECT_GE(session->stats().transport_errors, 1u);
  fb.SetDown(false);
  // The first read after reconnect re-mints the id before IQget; the I
  // lease it wins belongs to the healed session, so its Put installs (and
  // consumes the lease) instead of being orphaned under session 0.
  EXPECT_EQ(session->Get("k").status,
            ClientGetResult::Status::kMissRecompute);
  EXPECT_NE(session->id(), 0u);
  EXPECT_EQ(server.LeaseCount(), 1u);
  session->Put("k", "healed");
  EXPECT_EQ(server.store().Get("k")->value, "healed");
  EXPECT_EQ(server.LeaseCount(), 0u);
}

// ---- the ShardedBackend circuit breaker ----------------------------------

std::string KeyOn(const ShardedBackend& router, std::size_t shard,
                  const char* prefix) {
  for (int i = 0; i < 10000; ++i) {
    std::string key = prefix + std::to_string(i);
    if (router.ShardFor(key) == shard) return key;
  }
  ADD_FAILURE() << "no key found for shard " << shard;
  return {};
}

TEST(ShardedFaultTest, BreakerTripsFailsFastAndHealsThroughAProbe) {
  IQServer s0, s1;
  FaultBackend f0(s0);
  ManualClock clock;
  ShardedBackend::Config cfg;
  cfg.clock = &clock;
  cfg.down_after_errors = 3;
  cfg.probe_interval = 1000;
  ShardedBackend router({{"s0", &f0, 1, {}, {}, {}, {}}, {"s1", &s1, 1, {}, {}, {}, {}}}, cfg);
  std::string k0 = KeyOn(router, 0, "a");
  std::string k1 = KeyOn(router, 1, "b");
  ASSERT_EQ(router.Set(k0, "v0"), StoreResult::kStored);
  ASSERT_EQ(router.Set(k1, "v1"), StoreResult::kStored);

  f0.SetDown(true);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(router.IQget(k0).status, GetReply::Status::kTransportError);
    EXPECT_EQ(router.ShardDown(0), i == 2);  // trips on the third error
  }

  // Down: requests fail fast without reaching the child (probe not due).
  std::uint64_t reached = f0.faults_injected();
  EXPECT_EQ(router.IQget(k0).status, GetReply::Status::kTransportError);
  EXPECT_EQ(router.IQset(k0, "x", 1), StoreResult::kTransportError);
  EXPECT_EQ(f0.faults_injected(), reached);
  // Degraded plain read: a miss (pass-through), never a hang or stale hit.
  EXPECT_FALSE(router.Get(k0).has_value());
  // The healthy shard is untouched.
  ASSERT_TRUE(router.Get(k1).has_value());
  EXPECT_EQ(router.Get(k1)->value, "v1");

  // The server comes back, but the shard stays down until a probe is due...
  f0.SetDown(false);
  EXPECT_EQ(router.IQget(k0).status, GetReply::Status::kTransportError);
  EXPECT_TRUE(router.ShardDown(0));
  // ...then the first probe's success heals it for everyone.
  clock.Advance(2000);
  EXPECT_EQ(router.IQget(k0).status, GetReply::Status::kHit);
  EXPECT_FALSE(router.ShardDown(0));
  EXPECT_EQ(router.Get(k0)->value, "v0");

  ShardedBackendStats rs = router.router_stats();
  EXPECT_EQ(rs.shard_trips, 1u);
  EXPECT_EQ(rs.shard_recoveries, 1u);
  EXPECT_GE(rs.transport_errors, 3u);
  std::string stats = router.FormatStats();
  EXPECT_NE(stats.find("STAT shard_trips 1"), std::string::npos);
  EXPECT_NE(stats.find("STAT shard0_down 0"), std::string::npos);
  EXPECT_NE(stats.find("STAT shard0_transport_errors"), std::string::npos);
}

TEST(ShardedFaultTest, FailedProbeKeepsTheShardDown) {
  IQServer s0, s1;
  FaultBackend f0(s0);
  ManualClock clock;
  ShardedBackend::Config cfg;
  cfg.clock = &clock;
  cfg.down_after_errors = 1;
  cfg.probe_interval = 1000;
  ShardedBackend router({{"s0", &f0, 1, {}, {}, {}, {}}, {"s1", &s1, 1, {}, {}, {}, {}}}, cfg);
  std::string k0 = KeyOn(router, 0, "a");

  f0.SetDown(true);
  EXPECT_EQ(router.IQget(k0).status, GetReply::Status::kTransportError);
  ASSERT_TRUE(router.ShardDown(0));

  // Each interval admits exactly one probe; while it keeps failing the
  // shard stays down and everyone else keeps failing fast.
  for (int round = 0; round < 3; ++round) {
    clock.Advance(1500);
    std::uint64_t reached = f0.faults_injected();
    EXPECT_EQ(router.IQget(k0).status, GetReply::Status::kTransportError);
    EXPECT_EQ(f0.faults_injected(), reached + 1);  // the probe
    EXPECT_EQ(router.IQget(k0).status, GetReply::Status::kTransportError);
    EXPECT_EQ(f0.faults_injected(), reached + 1);  // fast-failed
    EXPECT_TRUE(router.ShardDown(0));
  }
  EXPECT_EQ(router.router_stats().shard_recoveries, 0u);
}

TEST(ShardedFaultTest, CasqlDegradesReadsAndFailsWritesFastOnADownShard) {
  IQServer s0, s1;
  FaultBackend f0(s0);
  ShardedBackend::Config rcfg;  // real clock: casql back-off sleeps in it
  rcfg.down_after_errors = 1;
  rcfg.probe_interval = kNanosPerMilli;
  ShardedBackend router({{"s0", &f0, 1, {}, {}, {}, {}}, {"s1", &s1, 1, {}, {}, {}, {}}}, rcfg);
  std::string k0 = KeyOn(router, 0, "a");

  sql::Database db;
  db.CreateTable(
      SchemaBuilder("T").AddInt("id").AddInt("n").PrimaryKey({"id"}).Build());
  {
    auto txn = db.Begin();
    txn->Insert("T", {V(1), V(0)});
    txn->Commit();
  }
  CasqlConfig cfg;
  cfg.technique = Technique::kInvalidate;
  cfg.consistency = Consistency::kIQ;
  cfg.max_session_restarts = 4;
  cfg.client.backoff_base = 20 * kNanosPerMicro;
  cfg.client.backoff_cap = 200 * kNanosPerMicro;
  CasqlSystem system(db, router, cfg);
  auto conn = system.Connect();
  auto compute = [](Transaction& txn) -> std::optional<std::string> {
    auto row = txn.SelectByPk("T", {V(1)});
    if (!row) return std::nullopt;
    return std::to_string(*sql::AsInt((*row)[1]));
  };

  f0.SetDown(true);
  // Reads on the down shard pass through to the RDBMS, installing nothing.
  auto read = conn->Read(k0, compute);
  EXPECT_TRUE(read.computed);
  ASSERT_TRUE(read.value);
  EXPECT_EQ(*read.value, "0");
  EXPECT_FALSE(s0.store().Get(k0).has_value());

  // Writes fail fast after the restart budget — never an uncached commit.
  casql::WriteSpec spec;
  spec.body = [](Transaction& txn) {
    return txn.UpdateByPk("T", {V(1)}, [](sql::Row& row) {
             row[1] = V(*sql::AsInt(row[1]) + 1);
           }) == TxnResult::kOk;
  };
  casql::KeyUpdate u;
  u.key = k0;
  spec.updates.push_back(std::move(u));
  casql::WriteOutcome out = conn->Write(spec);
  EXPECT_FALSE(out.committed);
  EXPECT_EQ(out.transport_restarts, 4);
  {
    auto txn = db.Begin();
    EXPECT_EQ(*sql::AsInt((*txn->SelectByPk("T", {V(1)}))[1]), 0);
    txn->Rollback();
  }

  // Shard heals; the same connection's next write goes through.
  f0.SetDown(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  out = conn->Write(spec);
  EXPECT_TRUE(out.committed);
  auto after = conn->Read(k0, compute);
  ASSERT_TRUE(after.value);
  EXPECT_EQ(*after.value, "1");
  EXPECT_EQ(router.router_stats().shard_trips, 1u);
  EXPECT_GE(router.router_stats().shard_recoveries, 1u);
}

}  // namespace
}  // namespace iq
