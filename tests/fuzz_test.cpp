// Robustness fuzzing: random and mutated byte streams against the protocol
// parser and the full dispatcher. The server must never crash, hang, or
// corrupt state on arbitrary input - it may only answer with errors.
#include <gtest/gtest.h>

#include "net/channel.h"
#include "util/rng.h"

namespace iq::net {
namespace {

std::string RandomBytes(Rng& rng, std::size_t max_len) {
  std::size_t len = rng.NextUint64(max_len);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out += static_cast<char>(rng.NextUint64(256));
  }
  return out;
}

/// Mutate a valid request: flip bytes, truncate, duplicate.
std::string Mutate(Rng& rng, std::string bytes) {
  switch (rng.NextUint64(4)) {
    case 0: {  // flip a byte
      if (!bytes.empty()) {
        bytes[rng.NextUint64(bytes.size())] =
            static_cast<char>(rng.NextUint64(256));
      }
      return bytes;
    }
    case 1:  // truncate
      return bytes.substr(0, rng.NextUint64(bytes.size() + 1));
    case 2:  // duplicate a prefix
      return bytes.substr(0, rng.NextUint64(bytes.size() + 1)) + bytes;
    default:  // splice random garbage into the middle
      if (bytes.empty()) return bytes;
      return bytes.substr(0, bytes.size() / 2) + RandomBytes(rng, 8) +
             bytes.substr(bytes.size() / 2);
  }
}

class FuzzSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeedTest, ParserSurvivesRandomBytes) {
  Rng rng(GetParam());
  RequestParser parser;
  for (int round = 0; round < 2000; ++round) {
    parser.Feed(RandomBytes(rng, 64));
    Request req;
    std::string error;
    // Drain until the parser wants more input; every outcome is fine as
    // long as nothing crashes and errors carry a message.
    for (int i = 0; i < 100; ++i) {
      auto status = parser.Next(&req, &error);
      if (status == RequestParser::Status::kNeedMore) break;
      if (status == RequestParser::Status::kError) {
        EXPECT_FALSE(error.empty());
      }
    }
    // The buffer must not grow without bound on garbage (only an
    // incomplete trailing request may remain).
    if (parser.buffered() > 1 << 20) {
      FAIL() << "parser buffer ballooned";
    }
  }
}

TEST_P(FuzzSeedTest, ParserSurvivesMutatedValidRequests) {
  Rng rng(GetParam() + 1000);
  RequestParser parser;
  const std::string templates[] = {
      "set key 0 0 5\r\nhello\r\n",
      "get key\r\n",
      "cas key 1 0 3 42\r\nabc\r\n",
      "iqget key 7\r\n",
      "qaread key 7\r\n",
      "sar key 9 4\r\ndata\r\n",
      "iqappend 3 key 2\r\nxy\r\n",
      "commit 3\r\n",
  };
  for (int round = 0; round < 2000; ++round) {
    std::string bytes =
        Mutate(rng, templates[rng.NextUint64(std::size(templates))]);
    parser.Feed(bytes);
    Request req;
    std::string error;
    for (int i = 0; i < 100; ++i) {
      auto status = parser.Next(&req, &error);
      if (status == RequestParser::Status::kNeedMore) break;
    }
    // Periodically hard-reset by feeding a terminator so truncated data
    // blocks cannot starve the stream forever.
    if (round % 50 == 49) {
      parser.Feed("\r\nget reset\r\n");
      for (int i = 0; i < 200; ++i) {
        if (parser.Next(&req, &error) == RequestParser::Status::kNeedMore) {
          break;
        }
      }
    }
  }
  SUCCEED();
}

TEST_P(FuzzSeedTest, DispatcherSurvivesGarbageRoundTrips) {
  Rng rng(GetParam() + 2000);
  IQServer server;
  LoopbackChannel channel(server);
  for (int round = 0; round < 500; ++round) {
    std::string reply;
    EXPECT_TRUE(channel.RoundTrip(RandomBytes(rng, 48) + "\r\n", &reply));
  }
  // The server still works after the abuse.
  RemoteCacheClient client(channel);
  EXPECT_EQ(client.Set("sane", "value"), StoreResult::kStored);
  EXPECT_EQ(client.Get("sane")->value, "value");
}

TEST_P(FuzzSeedTest, ResponseParserSurvivesRandomBytes) {
  Rng rng(GetParam() + 3000);
  for (int round = 0; round < 2000; ++round) {
    std::string bytes = RandomBytes(rng, 64);
    std::size_t consumed = 0;
    auto resp = ParseResponse(bytes, &consumed);
    if (resp) EXPECT_LE(consumed, bytes.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace iq::net
