// End-to-end concurrency tests: the headline claim of the paper is that the
// IQ framework drives unpredictable reads to zero under concurrent load
// while baselines leak stale values. These tests run real multi-threaded
// workloads over the full stack (RDBMS + IQ-Server + CASQL sessions).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/iq_server.h"
#include "bg/workload.h"
#include "casql/casql.h"
#include "util/worker_group.h"

namespace iq {
namespace {

using casql::CasqlConfig;
using casql::CasqlSystem;
using casql::ComputeFn;
using casql::Consistency;
using casql::KeyUpdate;
using casql::LeasePlacement;
using casql::Technique;
using casql::WriteSpec;
using sql::SchemaBuilder;
using sql::Transaction;
using sql::TxnResult;
using sql::V;

/// Single-counter torture: N threads increment one RDBMS row through CASQL
/// write sessions while readers read through the cache. At the end, the
/// cached value must equal the RDBMS value.
class CounterTorture {
 public:
  explicit CounterTorture(CasqlConfig cfg) : cfg_(std::move(cfg)) {
    db_.CreateTable(SchemaBuilder("C")
                        .AddInt("id")
                        .AddInt("n")
                        .PrimaryKey({"id"})
                        .Build());
    auto txn = db_.Begin();
    txn->Insert("C", {V(1), V(0)});
    txn->Commit();
    cfg_.client.backoff_base = 20 * kNanosPerMicro;
    cfg_.client.backoff_cap = 500 * kNanosPerMicro;
    system_ = std::make_unique<CasqlSystem>(db_, server_, cfg_);
  }

  static ComputeFn Compute() {
    return [](Transaction& txn) -> std::optional<std::string> {
      auto row = txn.SelectByPk("C", {V(1)});
      if (!row) return std::nullopt;
      return std::to_string(*sql::AsInt((*row)[1]));
    };
  }

  /// `modify_delay` models application compute time between the R and W of
  /// the R-M-W; widening it makes baseline lost-update races likely.
  WriteSpec IncrSpec(Nanos modify_delay = 0) {
    WriteSpec spec;
    spec.body = [](Transaction& txn) {
      return txn.UpdateByPk("C", {V(1)}, [](sql::Row& row) {
               row[1] = V(*sql::AsInt(row[1]) + 1);
             }) == TxnResult::kOk;
    };
    KeyUpdate u;
    u.key = "K";
    u.refresh = [modify_delay](const std::optional<std::string>& old)
        -> std::optional<std::string> {
      if (!old) return std::nullopt;
      if (modify_delay > 0) SleepFor(SteadyClock::Instance(), modify_delay);
      return std::to_string(std::stoll(*old) + 1);
    };
    u.delta = DeltaOp{DeltaOp::Kind::kIncr, {}, 1};
    spec.updates.push_back(std::move(u));
    return spec;
  }

  /// Run writers+readers; returns (committed increments, final db, final read).
  std::tuple<int, std::int64_t, std::int64_t> Run(int writers, int readers,
                                                  int increments_each,
                                                  Nanos modify_delay = 0) {
    std::atomic<int> committed{0};
    WorkerGroup group;
    group.Start(writers + readers, [&](int id, const std::atomic<bool>&) {
      auto conn = system_->Connect();
      if (id < writers) {
        for (int i = 0; i < increments_each; ++i) {
          if (conn->Write(IncrSpec(modify_delay)).committed) {
            committed.fetch_add(1);
          }
        }
      } else {
        for (int i = 0; i < increments_each * 2; ++i) {
          conn->Read("K", Compute());
        }
      }
    });
    group.StopAndJoin();

    auto txn = db_.Begin();
    std::int64_t db_value = *sql::AsInt((*txn->SelectByPk("C", {V(1)}))[1]);
    txn->Rollback();
    auto conn = system_->Connect();
    auto read = conn->Read("K", Compute());
    std::int64_t cached = read.value ? std::stoll(*read.value) : -1;
    return {committed.load(), db_value, cached};
  }

  CasqlConfig cfg_;
  sql::Database db_;
  IQServer server_;
  std::unique_ptr<CasqlSystem> system_;
};

struct TortureCase {
  const char* name;
  Technique technique;
  LeasePlacement placement;
};

class IQTortureTest : public ::testing::TestWithParam<TortureCase> {};

TEST_P(IQTortureTest, CacheConvergesToRdbmsUnderConcurrency) {
  CasqlConfig cfg;
  cfg.technique = GetParam().technique;
  cfg.consistency = Consistency::kIQ;
  cfg.placement = GetParam().placement;
  CounterTorture torture(cfg);
  auto [committed, db_value, cached] = torture.Run(4, 2, 40);
  EXPECT_EQ(db_value, committed);
  EXPECT_EQ(cached, db_value) << "cache diverged from RDBMS";
  EXPECT_EQ(committed, 4 * 40) << "some sessions never committed";
}

INSTANTIATE_TEST_SUITE_P(
    AllIQDesigns, IQTortureTest,
    ::testing::Values(
        TortureCase{"InvalidateInside", Technique::kInvalidate,
                    LeasePlacement::kInsideTxn},
        TortureCase{"InvalidatePrior", Technique::kInvalidate,
                    LeasePlacement::kPriorToTxn},
        TortureCase{"RefreshInside", Technique::kRefresh,
                    LeasePlacement::kInsideTxn},
        TortureCase{"RefreshPrior", Technique::kRefresh,
                    LeasePlacement::kPriorToTxn},
        TortureCase{"IncrementalInside", Technique::kIncremental,
                    LeasePlacement::kInsideTxn},
        TortureCase{"IncrementalPrior", Technique::kIncremental,
                    LeasePlacement::kPriorToTxn}),
    [](const ::testing::TestParamInfo<TortureCase>& info) {
      return info.param.name;
    });

// The no-lease refresh baseline loses updates under the same torture: the
// cache diverges. (Not a flake: with plain set, racing R-M-Ws overwrite.)
TEST(BaselineTorture, PlainRefreshDivergesEventually) {
  int diverged = 0;
  for (int round = 0; round < 5 && diverged == 0; ++round) {
    CasqlConfig cfg;
    cfg.technique = Technique::kRefresh;
    cfg.consistency = Consistency::kNone;
    CounterTorture torture(cfg);
    // Seed the cache so the R-M-W path (not the add path) is exercised.
    torture.system_->Connect()->Read("K", CounterTorture::Compute());
    auto [committed, db_value, cached] =
        torture.Run(8, 0, 50, /*modify_delay=*/200 * kNanosPerMicro);
    (void)committed;
    if (cached != db_value) ++diverged;
  }
  EXPECT_GT(diverged, 0) << "plain refresh should lose updates under load";
}

// BG end-to-end: IQ yields zero unpredictable reads for every technique
// (the paper's Table 7 bottom line), exercised with a concurrent mix.
class BgZeroStaleTest : public ::testing::TestWithParam<Technique> {};

TEST_P(BgZeroStaleTest, IQProducesZeroUnpredictableReads) {
  sql::Database db;
  bg::CreateBgTables(db);
  bg::GraphConfig graph{50, 4, 1, 1};
  bg::LoadGraph(db, graph);
  bg::ActionPools pools;
  pools.SeedFromGraph(graph);
  IQServer server;
  CasqlConfig cfg;
  cfg.technique = GetParam();
  cfg.consistency = Consistency::kIQ;
  cfg.client.backoff_base = 20 * kNanosPerMicro;
  cfg.client.backoff_cap = 500 * kNanosPerMicro;
  CasqlSystem system(db, server, cfg);

  bg::WorkloadConfig wl;
  wl.mix = bg::HighWriteMix();
  wl.threads = 6;
  wl.duration = 250 * kNanosPerMilli;
  wl.seed = 11;
  auto result = bg::RunWorkload(system, pools, graph, wl);
  EXPECT_GT(result.validation.reads_checked, 50u);
  EXPECT_EQ(result.validation.unpredictable, 0u)
      << "stale: " << result.validation.StalePercent() << "%";
}

INSTANTIATE_TEST_SUITE_P(Techniques, BgZeroStaleTest,
                         ::testing::Values(Technique::kInvalidate,
                                           Technique::kRefresh,
                                           Technique::kIncremental),
                         [](const ::testing::TestParamInfo<Technique>& info) {
                           return casql::ToString(info.param);
                         });

// Deadlock freedom (Section 2: "non-blocking and deadlock free"): sessions
// acquiring Q leases on the same keys in OPPOSITE orders would deadlock a
// blocking 2PL lock manager; under IQ the loser aborts, backs off, and
// retries, so every session eventually commits.
TEST(DeadlockFreedom, OppositeOrderMultiKeySessionsAllComplete) {
  sql::Database db;
  db.CreateTable(
      SchemaBuilder("D").AddInt("id").AddInt("n").PrimaryKey({"id"}).Build());
  {
    auto txn = db.Begin();
    txn->Insert("D", {V(1), V(0)});
    txn->Insert("D", {V(2), V(0)});
    txn->Commit();
  }
  IQServer server;
  CasqlConfig cfg;
  cfg.technique = Technique::kRefresh;
  cfg.consistency = Consistency::kIQ;
  cfg.placement = LeasePlacement::kPriorToTxn;  // leases held the longest
  cfg.client.backoff_base = 20 * kNanosPerMicro;
  cfg.client.backoff_cap = 500 * kNanosPerMicro;
  CasqlSystem system(db, server, cfg);

  // Warm both keys so QaRead returns values.
  server.store().Set("A", "0");
  server.store().Set("B", "0");

  auto incr_update = [](const char* key) {
    KeyUpdate u;
    u.key = key;
    u.refresh = [](const std::optional<std::string>& old)
        -> std::optional<std::string> {
      if (!old) return std::nullopt;
      return std::to_string(std::stoll(*old) + 1);
    };
    return u;
  };
  auto body = [](Transaction& txn) {
    return txn.UpdateByPk("D", {V(1)}, [](sql::Row& row) {
             row[1] = V(*sql::AsInt(row[1]) + 1);
           }) == TxnResult::kOk;
  };

  std::atomic<int> committed{0};
  WorkerGroup group;
  group.Start(6, [&](int id, const std::atomic<bool>&) {
    auto conn = system.Connect();
    for (int i = 0; i < 30; ++i) {
      WriteSpec spec;
      spec.body = body;
      // Half the workers grab A then B, half B then A.
      if (id % 2 == 0) {
        spec.updates.push_back(incr_update("A"));
        spec.updates.push_back(incr_update("B"));
      } else {
        spec.updates.push_back(incr_update("B"));
        spec.updates.push_back(incr_update("A"));
      }
      if (conn->Write(spec).committed) committed.fetch_add(1);
    }
  });
  group.StopAndJoin();
  // No deadlock: everyone finished, and both keys saw every increment.
  EXPECT_EQ(committed.load(), 6 * 30);
  EXPECT_EQ(server.store().Get("A")->value, std::to_string(committed.load()));
  EXPECT_EQ(server.store().Get("B")->value, std::to_string(committed.load()));
  EXPECT_EQ(server.LeaseCount(), 0u);
}

// Lease lifetimes make the system robust to failed clients: a session that
// dies holding a Q lease cannot block others forever.
TEST(FailureInjection, CrashedSessionLeaseExpiresAndUnblocks) {
  ManualClock clock;
  IQServer server(CacheStore::Config{.shard_count = 4,
                                     .memory_budget_bytes = 0,
                                     .clock = &clock},
                  IQServer::Config{.lease_lifetime = kNanosPerSec,
                                   .deferred_delete = true,
                                   .clock = &clock});
  server.store().Set("k", "v");
  // "Crash": a session takes a Q lease and never commits or aborts.
  SessionId dead = server.GenID();
  ASSERT_EQ(server.QaRead("k", dead).status, QaReadReply::Status::kGranted);
  EXPECT_EQ(server.QaRead("k", server.GenID()).status,
            QaReadReply::Status::kReject);
  clock.Advance(kNanosPerSec);
  // The lease expired; the key was deleted (safe) and new writers proceed.
  EXPECT_EQ(server.QaRead("k", server.GenID()).status,
            QaReadReply::Status::kGranted);
}

TEST(FailureInjection, LateCommitAfterExpiryIsHarmless) {
  ManualClock clock;
  IQServer server(CacheStore::Config{.shard_count = 4,
                                     .memory_budget_bytes = 0,
                                     .clock = &clock},
                  IQServer::Config{.lease_lifetime = kNanosPerSec,
                                   .deferred_delete = true,
                                   .clock = &clock});
  server.store().Set("n", "5");
  SessionId slow = server.GenID();
  server.IQDelta(slow, "n", DeltaOp{DeltaOp::Kind::kIncr, {}, 1});
  clock.Advance(kNanosPerSec);
  server.IQget("n", 999);  // lazily expires the lease, deleting the key
  // A fresh writer takes over the key.
  SessionId fresh = server.GenID();
  server.QaRead("n", fresh);
  server.SaR("n", "10", server.QaRead("n", fresh).token);
  // The crashed session's late commit must not corrupt the new value.
  server.Commit(slow);
  EXPECT_EQ(server.store().Get("n")->value, "10");
}

// Atomicity across many keys: a multi-key IQ write session applies either
// all its updates (commit) or none (abort), from any reader's perspective.
TEST(MultiKeyAtomicity, CommittedSessionsKeepKeysInSync) {
  sql::Database db;
  db.CreateTable(
      SchemaBuilder("P").AddInt("id").AddInt("a").AddInt("b").PrimaryKey({"id"}).Build());
  {
    auto txn = db.Begin();
    txn->Insert("P", {V(1), V(0), V(0)});
    txn->Commit();
  }
  IQServer server;
  CasqlConfig cfg;
  cfg.technique = Technique::kRefresh;
  cfg.consistency = Consistency::kIQ;
  cfg.client.backoff_base = 20 * kNanosPerMicro;
  CasqlSystem system(db, server, cfg);

  // Writers add +1 to both columns and both cache keys; invariant a == b.
  auto incr_both = [] {
    WriteSpec spec;
    spec.body = [](Transaction& txn) {
      return txn.UpdateByPk("P", {V(1)}, [](sql::Row& row) {
               row[1] = V(*sql::AsInt(row[1]) + 1);
               row[2] = V(*sql::AsInt(row[2]) + 1);
             }) == TxnResult::kOk;
    };
    for (const char* key : {"A", "B"}) {
      KeyUpdate u;
      u.key = key;
      u.refresh = [](const std::optional<std::string>& old)
          -> std::optional<std::string> {
        if (!old) return std::nullopt;
        return std::to_string(std::stoll(*old) + 1);
      };
      spec.updates.push_back(std::move(u));
    }
    return spec;
  };
  auto compute_col = [](int col) -> ComputeFn {
    return [col](Transaction& txn) -> std::optional<std::string> {
      auto row = txn.SelectByPk("P", {V(1)});
      if (!row) return std::nullopt;
      return std::to_string(*sql::AsInt((*row)[static_cast<std::size_t>(col)]));
    };
  };

  std::atomic<int> violations{0};
  WorkerGroup group;
  group.Start(6, [&](int id, const std::atomic<bool>&) {
    auto conn = system.Connect();
    if (id < 3) {
      for (int i = 0; i < 30; ++i) conn->Write(incr_both());
    } else {
      for (int i = 0; i < 60; ++i) {
        // Reading both keys in one "session": because each key is either
        // old-version or new-version consistently at commit boundaries,
        // a==b or they differ by at most the in-flight window. We only
        // assert the final convergence below; here we just exercise reads.
        conn->Read("A", compute_col(1));
        conn->Read("B", compute_col(2));
      }
    }
  });
  group.StopAndJoin();
  auto conn = system.Connect();
  auto a = conn->Read("A", compute_col(1));
  auto b = conn->Read("B", compute_col(2));
  ASSERT_TRUE(a.value && b.value);
  EXPECT_EQ(*a.value, *b.value);
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace iq
