#include <gtest/gtest.h>

#include <thread>

#include "core/fault_backend.h"
#include "core/iq_server.h"
#include "core/iq_client.h"

namespace iq {
namespace {

IQClient::Config FastBackoff() {
  IQClient::Config cfg;
  cfg.backoff_base = 10 * kNanosPerMicro;
  cfg.backoff_cap = 100 * kNanosPerMicro;
  return cfg;
}

class IQClientTest : public ::testing::Test {
 protected:
  IQClientTest() : client_(server_, FastBackoff()) {}
  IQServer server_;
  IQClient client_;
};

TEST_F(IQClientTest, SessionsGetDistinctIds) {
  auto a = client_.NewSession();
  auto b = client_.NewSession();
  EXPECT_NE(a->id(), b->id());
}

TEST_F(IQClientTest, GetHitReturnsValue) {
  server_.store().Set("k", "v");
  auto s = client_.NewSession();
  auto r = s->Get("k");
  EXPECT_EQ(r.status, ClientGetResult::Status::kHit);
  EXPECT_EQ(r.value, "v");
}

TEST_F(IQClientTest, MissRecomputeThenPutInstalls) {
  auto s = client_.NewSession();
  auto r = s->Get("k");
  ASSERT_EQ(r.status, ClientGetResult::Status::kMissRecompute);
  s->Put("k", "computed");
  EXPECT_EQ(server_.store().Get("k")->value, "computed");
}

TEST_F(IQClientTest, PutWithoutLeaseIsIgnored) {
  auto s = client_.NewSession();
  s->Put("k", "value");  // never obtained an I lease
  EXPECT_FALSE(server_.store().Get("k"));
}

TEST_F(IQClientTest, TokensAreTransparentToCaller) {
  // The session tracks the token internally; a second session's Put cannot
  // hijack the first session's lease.
  auto s1 = client_.NewSession();
  auto s2 = client_.NewSession();
  ASSERT_EQ(s1->Get("k").status, ClientGetResult::Status::kMissRecompute);
  s2->Put("k", "intruder");
  EXPECT_FALSE(server_.store().Get("k"));
  s1->Put("k", "legit");
  EXPECT_EQ(server_.store().Get("k")->value, "legit");
}

TEST_F(IQClientTest, GetBacksOffWhileContendedThenTimesOut) {
  auto holder = client_.NewSession();
  ASSERT_EQ(holder->Get("k").status, ClientGetResult::Status::kMissRecompute);
  auto waiter = client_.NewSession();
  auto r = waiter->Get("k", /*max_retries=*/3);
  EXPECT_EQ(r.status, ClientGetResult::Status::kTimeout);
  EXPECT_EQ(waiter->stats().get_backoffs, 3u);
}

TEST_F(IQClientTest, GetRetriesUntilHolderInstalls) {
  auto holder = client_.NewSession();
  ASSERT_EQ(holder->Get("k").status, ClientGetResult::Status::kMissRecompute);
  std::thread installer([&] {
    SleepFor(server_.clock(), kNanosPerMilli);
    holder->Put("k", "fresh");
  });
  auto waiter = client_.NewSession();
  auto r = waiter->Get("k", 10000);
  installer.join();
  EXPECT_EQ(r.status, ClientGetResult::Status::kHit);
  EXPECT_EQ(r.value, "fresh");
}

TEST_F(IQClientTest, QaReadGrantAndConflict) {
  server_.store().Set("k", "v0");
  auto s1 = client_.NewSession();
  auto s2 = client_.NewSession();
  std::optional<std::string> v1, v2;
  EXPECT_EQ(s1->QaRead("k", v1), ClientQResult::kGranted);
  EXPECT_EQ(v1, "v0");
  EXPECT_EQ(s2->QaRead("k", v2), ClientQResult::kQConflict);
  EXPECT_EQ(s2->stats().q_conflicts, 1u);
}

TEST_F(IQClientTest, SaRUpdatesAndReleases) {
  server_.store().Set("k", "v0");
  auto s = client_.NewSession();
  std::optional<std::string> old;
  s->QaRead("k", old);
  s->SaR("k", "v1");
  EXPECT_EQ(server_.store().Get("k")->value, "v1");
  // Lease released: another session may now QaRead.
  auto s2 = client_.NewSession();
  std::optional<std::string> v;
  EXPECT_EQ(s2->QaRead("k", v), ClientQResult::kGranted);
}

TEST_F(IQClientTest, SaRWithoutQaReadIsIgnored) {
  server_.store().Set("k", "v0");
  auto s = client_.NewSession();
  s->SaR("k", "hijack");
  EXPECT_EQ(server_.store().Get("k")->value, "v0");
}

TEST_F(IQClientTest, QuarantineThenCommitDeletes) {
  server_.store().Set("k", "v0");
  auto s = client_.NewSession();
  s->Quarantine("k");
  EXPECT_TRUE(server_.store().Get("k"));  // deferred delete
  s->Commit();
  EXPECT_FALSE(server_.store().Get("k"));
}

TEST_F(IQClientTest, QuarantineThenAbortKeepsValue) {
  server_.store().Set("k", "v0");
  auto s = client_.NewSession();
  s->Quarantine("k");
  s->Abort();
  EXPECT_EQ(server_.store().Get("k")->value, "v0");
}

TEST_F(IQClientTest, DeltaHelpersBuildCorrectOps) {
  server_.store().Set("list", "a");
  server_.store().Set("count", "10");
  auto s = client_.NewSession();
  EXPECT_EQ(s->Append("list", ",b"), ClientQResult::kGranted);
  EXPECT_EQ(s->Incr("count", 5), ClientQResult::kGranted);
  s->Commit();
  EXPECT_EQ(server_.store().Get("list")->value, "a,b");
  EXPECT_EQ(server_.store().Get("count")->value, "15");

  auto s2 = client_.NewSession();
  EXPECT_EQ(s2->Decr("count", 3), ClientQResult::kGranted);
  s2->Commit();
  EXPECT_EQ(server_.store().Get("count")->value, "12");
}

TEST_F(IQClientTest, DeltaConflictReportedToCaller) {
  auto s1 = client_.NewSession();
  auto s2 = client_.NewSession();
  EXPECT_EQ(s1->Append("k", "x"), ClientQResult::kGranted);
  EXPECT_EQ(s2->Append("k", "y"), ClientQResult::kQConflict);
}

TEST_F(IQClientTest, AbortReleasesEverything) {
  auto s = client_.NewSession();
  std::optional<std::string> v;
  s->QaRead("a", v);
  s->Quarantine("b");
  s->Append("c", "x");
  s->Abort();
  EXPECT_FALSE(server_.LeaseOn("a"));
  EXPECT_FALSE(server_.LeaseOn("b"));
  EXPECT_FALSE(server_.LeaseOn("c"));
}

TEST_F(IQClientTest, DestructorActsAsAbort) {
  {
    auto s = client_.NewSession();
    std::optional<std::string> v;
    s->QaRead("k", v);
  }
  EXPECT_FALSE(server_.LeaseOn("k"));
}

TEST_F(IQClientTest, DropLeaseUnblocksOtherReaders) {
  auto s1 = client_.NewSession();
  ASSERT_EQ(s1->Get("k").status, ClientGetResult::Status::kMissRecompute);
  s1->DropLease("k");  // compute found nothing worth caching
  auto s2 = client_.NewSession();
  EXPECT_EQ(s2->Get("k").status, ClientGetResult::Status::kMissRecompute);
}

TEST_F(IQClientTest, BackoffSleepsAndResets) {
  auto s = client_.NewSession();
  Nanos t0 = server_.clock().Now();
  s->Backoff();
  s->Backoff();
  EXPECT_GT(server_.clock().Now() - t0, 0);
  s->Commit();  // resets the attempt counter; just verify no crash
  s->Backoff();
}

TEST_F(IQClientTest, GetReMintsSessionIdMintedDuringOutage) {
  // Regression: Get() used to skip EnsureId(), so a session minted while
  // the server was unreachable (id 0) would issue IQget under session 0
  // forever — and any I lease it won would be orphaned once a later write
  // verb lazily re-minted the id.
  FaultBackend fault(server_);
  IQClient client(fault, FastBackoff());
  fault.SetDown(true);
  auto s = client.NewSession();
  EXPECT_EQ(s->id(), 0u);
  // While unreachable, reads degrade to RDBMS pass-through.
  auto r = s->Get("k");
  EXPECT_EQ(r.status, ClientGetResult::Status::kMissNoInstall);
  EXPECT_GE(s->stats().transport_errors, 1u);
  fault.SetDown(false);
  // First read after the backend heals re-mints the id before IQget.
  r = s->Get("k");
  EXPECT_EQ(r.status, ClientGetResult::Status::kMissRecompute);
  EXPECT_NE(s->id(), 0u);
  // The I lease belongs to the re-minted session: Put installs normally.
  s->Put("k", "healed");
  EXPECT_EQ(server_.store().Get("k")->value, "healed");
}

TEST_F(IQClientTest, RestartedSessionBackoffResetsToBase) {
  IQClient::Config cfg;
  cfg.backoff_base = 10 * kNanosPerMicro;
  cfg.backoff_cap = 10 * kNanosPerMilli;
  IQClient client(server_, cfg);
  auto s = client.NewSession();
  for (int i = 0; i < 12; ++i) s->Backoff();
  EXPECT_EQ(s->backoff_attempt(), 12);
  // Fully escalated: the next wait is at least cap/2 (the jitter floor).
  Nanos t0 = server_.clock().Now();
  s->Backoff();
  EXPECT_GE(server_.clock().Now() - t0, 5 * kNanosPerMilli);
  // A restarted session resets to base delay: its first backoff must be
  // far below the escalated wait, not stuck at the cap.
  s->ResetBackoff();
  EXPECT_EQ(s->backoff_attempt(), 0);
  t0 = server_.clock().Now();
  s->Backoff();
  EXPECT_LT(server_.clock().Now() - t0, 5 * kNanosPerMilli);
  EXPECT_EQ(s->backoff_attempt(), 1);
}

TEST_F(IQClientTest, FixedBackoffConfigSupported) {
  IQClient::Config cfg = FastBackoff();
  cfg.exponential_backoff = false;
  IQClient fixed_client(server_, cfg);
  auto s = fixed_client.NewSession();
  s->Backoff();  // exercises the FixedBackoff path
  SUCCEED();
}

}  // namespace
}  // namespace iq
