#include <gtest/gtest.h>

#include "core/iq_server.h"
#include "util/clock.h"

namespace iq {
namespace {

IQServer::Config DefaultConfig(const Clock* clock = nullptr,
                               bool deferred_delete = true,
                               Nanos lifetime = 0) {
  IQServer::Config cfg;
  cfg.lease_lifetime = lifetime;
  cfg.deferred_delete = deferred_delete;
  cfg.clock = clock;
  return cfg;
}

class IQServerTest : public ::testing::Test {
 protected:
  IQServerTest() : server_(CacheStore::Config{}, DefaultConfig()) {}
  IQServer server_;
};

// ---- IQget / IQset (I leases) -----------------------------------------------

TEST_F(IQServerTest, GetHitReturnsValue) {
  server_.store().Set("k", "v");
  GetReply r = server_.IQget("k");
  EXPECT_EQ(r.status, GetReply::Status::kHit);
  EXPECT_EQ(r.value, "v");
}

TEST_F(IQServerTest, MissGrantsILease) {
  GetReply r = server_.IQget("k");
  EXPECT_EQ(r.status, GetReply::Status::kMissGrantedI);
  EXPECT_NE(r.token, 0u);
  EXPECT_EQ(server_.LeaseOn("k"), LeaseKind::kInhibit);
}

TEST_F(IQServerTest, SecondMissBacksOff) {
  server_.IQget("k", 1);
  GetReply r = server_.IQget("k", 2);
  EXPECT_EQ(r.status, GetReply::Status::kMissBackoff);
  EXPECT_EQ(server_.Stats().backoffs, 1u);
}

TEST_F(IQServerTest, AtMostOneILeasePerKey) {
  GetReply first = server_.IQget("k", 1);
  GetReply second = server_.IQget("k", 2);
  GetReply third = server_.IQget("k", 3);
  EXPECT_EQ(first.status, GetReply::Status::kMissGrantedI);
  EXPECT_EQ(second.status, GetReply::Status::kMissBackoff);
  EXPECT_EQ(third.status, GetReply::Status::kMissBackoff);
  EXPECT_EQ(server_.Stats().i_granted, 1u);
}

TEST_F(IQServerTest, IQsetWithValidTokenStores) {
  GetReply r = server_.IQget("k");
  EXPECT_EQ(server_.IQset("k", "v", r.token), StoreResult::kStored);
  EXPECT_EQ(server_.IQget("k").value, "v");
  EXPECT_FALSE(server_.LeaseOn("k"));  // lease released
}

TEST_F(IQServerTest, IQsetWithWrongTokenIgnored) {
  GetReply r = server_.IQget("k");
  EXPECT_EQ(server_.IQset("k", "v", r.token + 999), StoreResult::kNotStored);
  EXPECT_EQ(server_.IQget("k", 7).status, GetReply::Status::kMissBackoff);
  EXPECT_GE(server_.Stats().stale_sets_dropped, 1u);
}

TEST_F(IQServerTest, IQsetWithZeroTokenIgnored) {
  EXPECT_EQ(server_.IQset("k", "v", 0), StoreResult::kNotStored);
  EXPECT_FALSE(server_.store().Get("k"));
}

TEST_F(IQServerTest, HitDoesNotGrantLease) {
  server_.store().Set("k", "v");
  server_.IQget("k");
  EXPECT_FALSE(server_.LeaseOn("k"));
}

// ---- QaReg / DaR (invalidate) --------------------------------------------------

TEST_F(IQServerTest, QaRegAlwaysGranted) {
  SessionId t1 = server_.GenID();
  SessionId t2 = server_.GenID();
  EXPECT_EQ(server_.QaReg(t1, "k"), QuarantineResult::kGranted);
  EXPECT_EQ(server_.QaReg(t2, "k"), QuarantineResult::kGranted);  // shared
  EXPECT_EQ(server_.LeaseOn("k"), LeaseKind::kQInvalidate);
}

TEST_F(IQServerTest, QaRegVoidsILease) {
  GetReply reader = server_.IQget("k", 1);
  ASSERT_EQ(reader.status, GetReply::Status::kMissGrantedI);
  SessionId tid = server_.GenID();
  server_.QaReg(tid, "k");
  // The reader's install is now dropped (Section 3.2).
  EXPECT_EQ(server_.IQset("k", "stale", reader.token), StoreResult::kNotStored);
  EXPECT_EQ(server_.Stats().i_voided, 1u);
}

TEST_F(IQServerTest, DeferredDeleteKeepsOldValueVisible) {
  server_.store().Set("k", "old");
  SessionId tid = server_.GenID();
  server_.QaReg(tid, "k");
  // Readers hit the old version: they serialize before the writer
  // (the Section 3.3 re-arrangement window).
  GetReply r = server_.IQget("k", 42);
  EXPECT_EQ(r.status, GetReply::Status::kHit);
  EXPECT_EQ(r.value, "old");
}

TEST_F(IQServerTest, EagerDeleteModeRemovesImmediately) {
  ManualClock clock;
  IQServer server(CacheStore::Config{},
                  DefaultConfig(&clock, /*deferred_delete=*/false));
  server.store().Set("k", "old");
  SessionId tid = server.GenID();
  server.QaReg(tid, "k");
  EXPECT_FALSE(server.store().Get("k"));
  GetReply r = server.IQget("k", 42);
  EXPECT_EQ(r.status, GetReply::Status::kMissBackoff);
}

TEST_F(IQServerTest, OwnQuarantinedKeyReadsAsMissNoLease) {
  server_.store().Set("k", "old");
  SessionId tid = server_.GenID();
  server_.QaReg(tid, "k");
  // The quarantining session must observe its own update via the RDBMS:
  // it gets a miss with no lease and no backoff (Section 3.3).
  GetReply r = server_.IQget("k", tid);
  EXPECT_EQ(r.status, GetReply::Status::kMissNoLease);
}

TEST_F(IQServerTest, DaRDeletesQuarantinedKeysAndReleases) {
  server_.store().Set("a", "1");
  server_.store().Set("b", "2");
  SessionId tid = server_.GenID();
  server_.QaReg(tid, "a");
  server_.QaReg(tid, "b");
  server_.DaR(tid);
  EXPECT_FALSE(server_.store().Get("a"));
  EXPECT_FALSE(server_.store().Get("b"));
  EXPECT_FALSE(server_.LeaseOn("a"));
  EXPECT_FALSE(server_.LeaseOn("b"));
}

TEST_F(IQServerTest, SharedQInvalidateReleasesPerHolder) {
  server_.store().Set("k", "v");
  SessionId t1 = server_.GenID();
  SessionId t2 = server_.GenID();
  server_.QaReg(t1, "k");
  server_.QaReg(t2, "k");
  server_.DaR(t1);
  // t2 still holds: key deleted but lease remains.
  EXPECT_FALSE(server_.store().Get("k"));
  EXPECT_EQ(server_.LeaseOn("k"), LeaseKind::kQInvalidate);
  server_.DaR(t2);
  EXPECT_FALSE(server_.LeaseOn("k"));
}

TEST_F(IQServerTest, AbortLeavesValueInPlace) {
  server_.store().Set("k", "keep");
  SessionId tid = server_.GenID();
  server_.QaReg(tid, "k");
  server_.Abort(tid);
  EXPECT_EQ(server_.store().Get("k")->value, "keep");
  EXPECT_FALSE(server_.LeaseOn("k"));
}

// ---- QaRead / SaR (refresh) -----------------------------------------------------

TEST_F(IQServerTest, QaReadReturnsValueAndToken) {
  server_.store().Set("k", "v");
  QaReadReply r = server_.QaRead("k", 1);
  EXPECT_EQ(r.status, QaReadReply::Status::kGranted);
  EXPECT_EQ(r.value, "v");
  EXPECT_NE(r.token, 0u);
  EXPECT_EQ(server_.LeaseOn("k"), LeaseKind::kQRefresh);
}

TEST_F(IQServerTest, QaReadOnMissGrantsWithNullValue) {
  QaReadReply r = server_.QaRead("k", 1);
  EXPECT_EQ(r.status, QaReadReply::Status::kGranted);
  EXPECT_FALSE(r.value);
}

TEST_F(IQServerTest, SecondQaReadRejected) {
  server_.QaRead("k", 1);
  QaReadReply r = server_.QaRead("k", 2);
  EXPECT_EQ(r.status, QaReadReply::Status::kReject);
  EXPECT_EQ(server_.Stats().q_rejected, 1u);
}

TEST_F(IQServerTest, QaReadIdempotentForSameSession) {
  QaReadReply a = server_.QaRead("k", 1);
  QaReadReply b = server_.QaRead("k", 1);
  EXPECT_EQ(b.status, QaReadReply::Status::kGranted);
  EXPECT_EQ(a.token, b.token);
}

TEST_F(IQServerTest, QaReadVoidsILease) {
  GetReply reader = server_.IQget("k", 1);
  QaReadReply writer = server_.QaRead("k", 2);
  EXPECT_EQ(writer.status, QaReadReply::Status::kGranted);
  EXPECT_EQ(server_.IQset("k", "stale", reader.token), StoreResult::kNotStored);
}

TEST_F(IQServerTest, SaRSwapsValueAndReleases) {
  server_.store().Set("k", "old");
  QaReadReply q = server_.QaRead("k", 1);
  EXPECT_EQ(server_.SaR("k", "new", q.token), StoreResult::kStored);
  EXPECT_EQ(server_.store().Get("k")->value, "new");
  EXPECT_FALSE(server_.LeaseOn("k"));
}

TEST_F(IQServerTest, SaRWithNullReleasesWithoutWriting) {
  server_.store().Set("k", "old");
  QaReadReply q = server_.QaRead("k", 1);
  EXPECT_EQ(server_.SaR("k", std::nullopt, q.token), StoreResult::kStored);
  EXPECT_EQ(server_.store().Get("k")->value, "old");
  EXPECT_FALSE(server_.LeaseOn("k"));
}

TEST_F(IQServerTest, SaRWithStaleTokenIgnored) {
  server_.store().Set("k", "old");
  QaReadReply q = server_.QaRead("k", 1);
  server_.Abort(1);  // releases the lease
  EXPECT_EQ(server_.SaR("k", "new", q.token), StoreResult::kNotFound);
  EXPECT_EQ(server_.store().Get("k")->value, "old");
}

TEST_F(IQServerTest, ReadersHitOldVersionDuringRefreshQuarantine) {
  server_.store().Set("k", "old");
  server_.QaRead("k", 1);
  GetReply r = server_.IQget("k", 99);
  // Section 4.2.2 optimization: the reader consumes the older version and
  // serializes before the writer.
  EXPECT_EQ(r.status, GetReply::Status::kHit);
  EXPECT_EQ(r.value, "old");
}

TEST_F(IQServerTest, QaRegOverRefreshLeaseWins) {
  // Cross-technique: invalidation preempts a refresh lease (deletes are
  // always safe); the refresh session's SaR becomes a no-op.
  server_.store().Set("k", "old");
  QaReadReply q = server_.QaRead("k", 1);
  SessionId tid = server_.GenID();
  EXPECT_EQ(server_.QaReg(tid, "k"), QuarantineResult::kGranted);
  EXPECT_EQ(server_.SaR("k", "refreshed", q.token), StoreResult::kNotFound);
  server_.DaR(tid);
  EXPECT_FALSE(server_.store().Get("k"));
}

// ---- IQDelta / Commit / Abort (incremental update) ----------------------------

TEST_F(IQServerTest, DeltasBufferUntilCommit) {
  server_.store().Set("k", "A");
  SessionId tid = server_.GenID();
  server_.IQDelta(tid, "k", DeltaOp{DeltaOp::Kind::kAppend, "B", 0});
  server_.IQDelta(tid, "k", DeltaOp{DeltaOp::Kind::kAppend, "C", 0});
  EXPECT_EQ(server_.store().Get("k")->value, "A");  // not yet applied
  server_.Commit(tid);
  EXPECT_EQ(server_.store().Get("k")->value, "ABC");
  EXPECT_FALSE(server_.LeaseOn("k"));
}

TEST_F(IQServerTest, DeltaOnMissingKeyIsNoopAtCommit) {
  SessionId tid = server_.GenID();
  server_.IQDelta(tid, "k", DeltaOp{DeltaOp::Kind::kAppend, "B", 0});
  server_.Commit(tid);
  EXPECT_FALSE(server_.store().Get("k"));
}

TEST_F(IQServerTest, IncrDecrDeltas) {
  server_.store().Set("n", "10");
  SessionId tid = server_.GenID();
  server_.IQDelta(tid, "n", DeltaOp{DeltaOp::Kind::kIncr, {}, 5});
  server_.IQDelta(tid, "n", DeltaOp{DeltaOp::Kind::kDecr, {}, 2});
  server_.Commit(tid);
  EXPECT_EQ(server_.store().Get("n")->value, "13");
}

TEST_F(IQServerTest, PrependDelta) {
  server_.store().Set("k", "tail");
  SessionId tid = server_.GenID();
  server_.IQDelta(tid, "k", DeltaOp{DeltaOp::Kind::kPrepend, "head-", 0});
  server_.Commit(tid);
  EXPECT_EQ(server_.store().Get("k")->value, "head-tail");
}

TEST_F(IQServerTest, ConflictingDeltaRejected) {
  SessionId t1 = server_.GenID();
  SessionId t2 = server_.GenID();
  EXPECT_EQ(server_.IQDelta(t1, "k", DeltaOp{DeltaOp::Kind::kAppend, "X", 0}),
            QuarantineResult::kGranted);
  EXPECT_EQ(server_.IQDelta(t2, "k", DeltaOp{DeltaOp::Kind::kAppend, "Y", 0}),
            QuarantineResult::kReject);
}

TEST_F(IQServerTest, SameSessionDeltasShareLease) {
  SessionId tid = server_.GenID();
  EXPECT_EQ(server_.IQDelta(tid, "k", DeltaOp{DeltaOp::Kind::kAppend, "X", 0}),
            QuarantineResult::kGranted);
  EXPECT_EQ(server_.IQDelta(tid, "k", DeltaOp{DeltaOp::Kind::kAppend, "Y", 0}),
            QuarantineResult::kGranted);
}

TEST_F(IQServerTest, AbortDiscardsDeltas) {
  server_.store().Set("k", "A");
  SessionId tid = server_.GenID();
  server_.IQDelta(tid, "k", DeltaOp{DeltaOp::Kind::kAppend, "B", 0});
  server_.Abort(tid);
  EXPECT_EQ(server_.store().Get("k")->value, "A");
  EXPECT_FALSE(server_.LeaseOn("k"));
}

TEST_F(IQServerTest, HolderSeesOwnPendingDeltas) {
  server_.store().Set("k", "A");
  SessionId tid = server_.GenID();
  server_.IQDelta(tid, "k", DeltaOp{DeltaOp::Kind::kAppend, "B", 0});
  GetReply own = server_.IQget("k", tid);
  EXPECT_EQ(own.status, GetReply::Status::kHit);
  EXPECT_EQ(own.value, "AB");  // Section 4.2.2 own-update visibility
  GetReply other = server_.IQget("k", 9999);
  EXPECT_EQ(other.value, "A");  // others still see the old version
}

TEST_F(IQServerTest, DeltaVoidsILease) {
  GetReply reader = server_.IQget("k", 1);
  SessionId tid = server_.GenID();
  server_.IQDelta(tid, "k", DeltaOp{DeltaOp::Kind::kAppend, "B", 0});
  EXPECT_EQ(server_.IQset("k", "stale", reader.token), StoreResult::kNotStored);
}

TEST_F(IQServerTest, QaReadAfterDeltaSeesOwnPendingDeltas) {
  // Delta first, then the same session re-reads via QaRead: the reply must
  // replay the buffered deltas (Section 4.2.2 own-update visibility), not
  // return the pre-delta store value.
  server_.store().Set("k", "A");
  SessionId tid = server_.GenID();
  server_.IQDelta(tid, "k", DeltaOp{DeltaOp::Kind::kAppend, "B", 0});
  QaReadReply r = server_.QaRead("k", tid);
  ASSERT_EQ(r.status, QaReadReply::Status::kGranted);
  ASSERT_TRUE(r.value);
  EXPECT_EQ(*r.value, "AB");
  // Other sessions still see the committed version through IQget.
  EXPECT_EQ(server_.IQget("k", 9999).value, "A");
}

TEST_F(IQServerTest, QaReadReacquisitionSeesOwnPendingDeltas) {
  // QaRead first (taking the Q lease), deltas buffered after, then the
  // idempotent re-acquisition: same rule, other order.
  server_.store().Set("k", "A");
  SessionId tid = server_.GenID();
  QaReadReply first = server_.QaRead("k", tid);
  ASSERT_EQ(first.status, QaReadReply::Status::kGranted);
  EXPECT_EQ(*first.value, "A");
  server_.IQDelta(tid, "k", DeltaOp{DeltaOp::Kind::kAppend, "B", 0});
  server_.IQDelta(tid, "k", DeltaOp{DeltaOp::Kind::kAppend, "C", 0});
  QaReadReply again = server_.QaRead("k", tid);
  ASSERT_EQ(again.status, QaReadReply::Status::kGranted);
  EXPECT_EQ(again.token, first.token);
  ASSERT_TRUE(again.value);
  EXPECT_EQ(*again.value, "ABC");
}

// ---- expiry -------------------------------------------------------------------

class IQServerExpiryTest : public ::testing::Test {
 protected:
  IQServerExpiryTest()
      : server_(CacheStore::Config{.shard_count = 4,
                                   .memory_budget_bytes = 0,
                                   .clock = &clock_},
                DefaultConfig(&clock_, true, 1000)) {}
  ManualClock clock_;
  IQServer server_;
};

TEST_F(IQServerExpiryTest, ExpiredILeaseVacates) {
  GetReply r = server_.IQget("k", 1);
  ASSERT_EQ(r.status, GetReply::Status::kMissGrantedI);
  clock_.Advance(1000);
  // A new reader may now take the I lease.
  GetReply r2 = server_.IQget("k", 2);
  EXPECT_EQ(r2.status, GetReply::Status::kMissGrantedI);
  // The original holder's install is dropped (different token).
  EXPECT_EQ(server_.IQset("k", "v", r.token), StoreResult::kNotStored);
  EXPECT_GE(server_.Stats().leases_expired, 1u);
}

TEST_F(IQServerExpiryTest, ExpiredQLeaseDeletesKey) {
  server_.store().Set("k", "v");
  server_.QaRead("k", 1);
  clock_.Advance(1000);
  GetReply r = server_.IQget("k", 2);
  // The key died with the lease: a fresh I lease is granted to recompute.
  EXPECT_EQ(r.status, GetReply::Status::kMissGrantedI);
  EXPECT_EQ(server_.Stats().expiry_deletes, 1u);
}

TEST_F(IQServerExpiryTest, ExpiredQInvalidateDeletesKey) {
  server_.store().Set("k", "v");
  SessionId tid = server_.GenID();
  server_.QaReg(tid, "k");
  clock_.Advance(1000);
  EXPECT_FALSE(server_.LeaseOn("k"));
  EXPECT_FALSE(server_.store().Get("k"));
}

TEST_F(IQServerExpiryTest, SaRAfterExpiryIgnored) {
  server_.store().Set("k", "old");
  QaReadReply q = server_.QaRead("k", 1);
  clock_.Advance(1000);
  EXPECT_EQ(server_.SaR("k", "late", q.token), StoreResult::kNotFound);
  EXPECT_FALSE(server_.store().Get("k"));  // deleted by expiry
}

TEST_F(IQServerExpiryTest, UnexpiredLeaseStillEnforced) {
  server_.QaRead("k", 1);
  clock_.Advance(999);
  EXPECT_EQ(server_.QaRead("k", 2).status, QaReadReply::Status::kReject);
}

TEST_F(IQServerExpiryTest, SweepExpiredReclaimsIdleLeases) {
  server_.store().Set("a", "1");
  server_.store().Set("b", "2");
  server_.QaRead("a", 1);
  server_.QaReg(2, "b");
  server_.IQget("c", 3);  // I lease
  EXPECT_EQ(server_.LeaseCount(), 3u);
  clock_.Advance(1000);
  // Nothing touches the keys: lazy expiry alone would leave all three.
  EXPECT_EQ(server_.SweepExpired(), 3u);
  EXPECT_EQ(server_.LeaseCount(), 0u);
  // Q-leased keys died with their leases; the I-leased key never existed.
  EXPECT_FALSE(server_.store().Get("a"));
  EXPECT_FALSE(server_.store().Get("b"));
}

TEST_F(IQServerExpiryTest, SweepLeavesLiveLeasesAlone) {
  server_.QaRead("a", 1);
  clock_.Advance(999);
  EXPECT_EQ(server_.SweepExpired(), 0u);
  EXPECT_EQ(server_.LeaseOn("a"), LeaseKind::kQRefresh);
}

TEST_F(IQServerExpiryTest, SweepOnEmptyServerIsZero) {
  EXPECT_EQ(server_.SweepExpired(), 0u);
}

TEST_F(IQServerExpiryTest, QaReadReacquisitionExtendsLease) {
  // Every holder touch renews the deadline: a session alive at t=600 must
  // not lose its lease at t=1000 just because it was granted at t=0.
  server_.store().Set("k", "v");
  ASSERT_EQ(server_.QaRead("k", 1).status, QaReadReply::Status::kGranted);
  clock_.Advance(600);
  ASSERT_EQ(server_.QaRead("k", 1).status, QaReadReply::Status::kGranted);
  clock_.Advance(600);  // t=1200, past the original deadline of 1000
  EXPECT_EQ(server_.QaRead("k", 2).status, QaReadReply::Status::kReject);
  EXPECT_EQ(server_.Stats().leases_expired, 0u);
  EXPECT_TRUE(server_.store().Get("k"));
}

TEST_F(IQServerExpiryTest, BufferedDeltaExtendsLease) {
  server_.store().Set("k", "A");
  server_.IQDelta(1, "k", DeltaOp{DeltaOp::Kind::kAppend, "B", 0});
  clock_.Advance(600);
  server_.IQDelta(1, "k", DeltaOp{DeltaOp::Kind::kAppend, "C", 0});
  clock_.Advance(600);  // t=1200: lease renewed at 600, deadline 1600
  EXPECT_EQ(server_.LeaseOn("k"), LeaseKind::kQRefresh);
  server_.Commit(1);
  EXPECT_EQ(server_.store().Get("k")->value, "ABC");
  EXPECT_EQ(server_.Stats().expiry_deletes, 0u);
}

TEST_F(IQServerExpiryTest, OwnHolderGetExtendsLease) {
  server_.store().Set("k", "A");
  server_.IQDelta(1, "k", DeltaOp{DeltaOp::Kind::kAppend, "B", 0});
  clock_.Advance(600);
  // The holder's own-update read is a touch too.
  EXPECT_EQ(server_.IQget("k", 1).value, "AB");
  clock_.Advance(600);
  EXPECT_EQ(server_.LeaseOn("k"), LeaseKind::kQRefresh);
}

TEST_F(IQServerExpiryTest, SharedQaRegExtendsLease) {
  server_.store().Set("k", "v");
  server_.QaReg(1, "k");
  clock_.Advance(600);
  server_.QaReg(2, "k");  // sharing renews the deadline for both holders
  clock_.Advance(600);
  EXPECT_EQ(server_.LeaseOn("k"), LeaseKind::kQInvalidate);
}

TEST_F(IQServerExpiryTest, ReleaseOfExpiredLeaseTakesExpiryPath) {
  // A release arriving after the deadline must account the lease as
  // expired (and delete the Q-leased key), not silently drop it as if the
  // session had finished in time.
  server_.store().Set("k", "v");
  ASSERT_EQ(server_.QaRead("k", 1).status, QaReadReply::Status::kGranted);
  clock_.Advance(1000);
  server_.ReleaseKey(1, "k");
  EXPECT_EQ(server_.Stats().leases_expired, 1u);
  EXPECT_EQ(server_.Stats().expiry_deletes, 1u);
  EXPECT_FALSE(server_.store().Get("k"));
  EXPECT_FALSE(server_.LeaseOn("k"));
}

// ---- misc -----------------------------------------------------------------------

TEST_F(IQServerTest, GenIDsAreUnique) {
  SessionId a = server_.GenID();
  SessionId b = server_.GenID();
  EXPECT_NE(a, b);
}

TEST_F(IQServerTest, ReleaseKeyDropsSingleLease) {
  SessionId tid = server_.GenID();
  server_.QaRead("a", tid);
  server_.QaRead("b", tid);
  server_.ReleaseKey(tid, "a");
  EXPECT_FALSE(server_.LeaseOn("a"));
  EXPECT_EQ(server_.LeaseOn("b"), LeaseKind::kQRefresh);
}

TEST_F(IQServerTest, DeleteVoidRemovesValueAndILease) {
  server_.store().Set("k", "v");
  server_.IQget("k2", 1);  // I lease on k2
  EXPECT_TRUE(server_.DeleteVoid("k"));
  EXPECT_FALSE(server_.store().Get("k"));
  GetReply r = server_.IQget("k2", 1);
  (void)r;
  server_.DeleteVoid("k2");
  EXPECT_FALSE(server_.LeaseOn("k2"));
}

TEST_F(IQServerTest, CommitIsIdempotent) {
  server_.store().Set("k", "v");
  SessionId tid = server_.GenID();
  server_.QaReg(tid, "k");
  server_.Commit(tid);
  server_.Commit(tid);  // second commit finds nothing registered
  EXPECT_FALSE(server_.LeaseOn("k"));
}

TEST_F(IQServerTest, StatsCountCommitsAndAborts) {
  SessionId t1 = server_.GenID();
  server_.QaReg(t1, "k");
  server_.Commit(t1);
  SessionId t2 = server_.GenID();
  server_.QaReg(t2, "k");
  server_.Abort(t2);
  auto stats = server_.Stats();
  EXPECT_GE(stats.commits, 1u);
  EXPECT_GE(stats.aborts, 1u);
  EXPECT_EQ(stats.q_inv_granted, 2u);
}

// ---- compatibility matrices (Figure 5), parameterized -------------------------

enum class Existing { kNone, kI, kQInv, kQRef };

struct MatrixCase {
  Existing existing;
  // Expected outcomes for each requested lease from a DIFFERENT session:
  GetReply::Status get_status;          // requesting I via IQget (cold key)
  QuarantineResult qareg_result;        // requesting Q-invalidate
  QaReadReply::Status qaread_status;    // requesting Q-refresh
};

class CompatibilityMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(CompatibilityMatrixTest, MatchesFigure5) {
  const MatrixCase& c = GetParam();

  auto make_server = [] {
    return std::make_unique<IQServer>(CacheStore::Config{}, DefaultConfig());
  };
  constexpr SessionId kHolder = 100;
  constexpr SessionId kRequester = 200;
  auto install_existing = [&](IQServer& s) {
    switch (c.existing) {
      case Existing::kNone: break;
      case Existing::kI: s.IQget("k", kHolder); break;
      case Existing::kQInv: s.QaReg(kHolder, "k"); break;
      case Existing::kQRef: s.QaRead("k", kHolder); break;
    }
  };

  {
    auto s = make_server();
    install_existing(*s);
    EXPECT_EQ(s->IQget("k", kRequester).status, c.get_status);
  }
  {
    auto s = make_server();
    install_existing(*s);
    EXPECT_EQ(s->QaReg(kRequester, "k"), c.qareg_result);
  }
  {
    auto s = make_server();
    install_existing(*s);
    EXPECT_EQ(s->QaRead("k", kRequester).status, c.qaread_status);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Figure5, CompatibilityMatrixTest,
    ::testing::Values(
        // No existing lease: I granted, Q granted, Q-refresh granted.
        MatrixCase{Existing::kNone, GetReply::Status::kMissGrantedI,
                   QuarantineResult::kGranted, QaReadReply::Status::kGranted},
        // Existing I: reader backs off; writers void it and proceed.
        MatrixCase{Existing::kI, GetReply::Status::kMissBackoff,
                   QuarantineResult::kGranted, QaReadReply::Status::kGranted},
        // Existing Q-invalidate: reader backs off (cold key); QaReg shares;
        // QaRead is rejected (Figure 5b: abort requester).
        MatrixCase{Existing::kQInv, GetReply::Status::kMissBackoff,
                   QuarantineResult::kGranted, QaReadReply::Status::kReject},
        // Existing Q-refresh: reader backs off (cold key); QaReg voids it
        // (delete always safe); QaRead rejected.
        MatrixCase{Existing::kQRef, GetReply::Status::kMissBackoff,
                   QuarantineResult::kGranted, QaReadReply::Status::kReject}));

}  // namespace
}  // namespace iq
