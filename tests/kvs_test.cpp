#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "kvs/kvs.h"
#include "util/clock.h"

namespace iq {
namespace {

TEST(CacheStore, GetMissesOnEmptyStore) {
  CacheStore store;
  EXPECT_FALSE(store.Get("absent"));
}

TEST(CacheStore, SetThenGetRoundTrips) {
  CacheStore store;
  EXPECT_EQ(store.Set("k", "v"), StoreResult::kStored);
  auto item = store.Get("k");
  ASSERT_TRUE(item);
  EXPECT_EQ(item->value, "v");
}

TEST(CacheStore, SetOverwrites) {
  CacheStore store;
  store.Set("k", "v1");
  store.Set("k", "v2");
  EXPECT_EQ(store.Get("k")->value, "v2");
}

TEST(CacheStore, SetStoresFlags) {
  CacheStore store;
  store.Set("k", "v", 0xBEEF);
  EXPECT_EQ(store.Get("k")->flags, 0xBEEFu);
}

TEST(CacheStore, AddOnlyWhenAbsent) {
  CacheStore store;
  EXPECT_EQ(store.Add("k", "v1"), StoreResult::kStored);
  EXPECT_EQ(store.Add("k", "v2"), StoreResult::kNotStored);
  EXPECT_EQ(store.Get("k")->value, "v1");
}

TEST(CacheStore, ReplaceOnlyWhenPresent) {
  CacheStore store;
  EXPECT_EQ(store.Replace("k", "v"), StoreResult::kNotStored);
  store.Set("k", "v1");
  EXPECT_EQ(store.Replace("k", "v2"), StoreResult::kStored);
  EXPECT_EQ(store.Get("k")->value, "v2");
}

TEST(CacheStore, DeleteReportsPresence) {
  CacheStore store;
  store.Set("k", "v");
  EXPECT_TRUE(store.Delete("k"));
  EXPECT_FALSE(store.Delete("k"));
  EXPECT_FALSE(store.Get("k"));
}

TEST(CacheStore, CasSucceedsWithMatchingVersion) {
  CacheStore store;
  store.Set("k", "v1");
  auto item = store.Get("k");
  EXPECT_EQ(store.Cas("k", "v2", item->cas), StoreResult::kStored);
  EXPECT_EQ(store.Get("k")->value, "v2");
}

TEST(CacheStore, CasFailsAfterInterveningWrite) {
  CacheStore store;
  store.Set("k", "v1");
  auto item = store.Get("k");
  store.Set("k", "other");
  EXPECT_EQ(store.Cas("k", "v2", item->cas), StoreResult::kExists);
  EXPECT_EQ(store.Get("k")->value, "other");
}

TEST(CacheStore, CasOnMissingKeyIsNotFound) {
  CacheStore store;
  EXPECT_EQ(store.Cas("k", "v", 1), StoreResult::kNotFound);
}

TEST(CacheStore, CasVersionChangesOnEveryWrite) {
  CacheStore store;
  store.Set("k", "a");
  auto v1 = store.Get("k")->cas;
  store.Set("k", "b");
  auto v2 = store.Get("k")->cas;
  EXPECT_NE(v1, v2);
}

TEST(CacheStore, AppendPrependExtendValue) {
  CacheStore store;
  store.Set("k", "mid");
  EXPECT_EQ(store.Append("k", ">"), StoreResult::kStored);
  EXPECT_EQ(store.Prepend("k", "<"), StoreResult::kStored);
  EXPECT_EQ(store.Get("k")->value, "<mid>");
}

TEST(CacheStore, AppendPrependMissIsNotStored) {
  CacheStore store;
  EXPECT_EQ(store.Append("k", "x"), StoreResult::kNotStored);
  EXPECT_EQ(store.Prepend("k", "x"), StoreResult::kNotStored);
  EXPECT_FALSE(store.Get("k"));
}

TEST(CacheStore, IncrDecrArithmetic) {
  CacheStore store;
  store.Set("n", "10");
  EXPECT_EQ(store.Incr("n", 5), 15u);
  EXPECT_EQ(store.Decr("n", 3), 12u);
  EXPECT_EQ(store.Get("n")->value, "12");
}

TEST(CacheStore, DecrSaturatesAtZero) {
  CacheStore store;
  store.Set("n", "3");
  EXPECT_EQ(store.Decr("n", 10), 0u);
}

TEST(CacheStore, IncrOnMissingOrNonNumericFails) {
  CacheStore store;
  EXPECT_FALSE(store.Incr("absent", 1));
  store.Set("s", "abc");
  EXPECT_FALSE(store.Incr("s", 1));
  store.Set("t", "12x");
  EXPECT_FALSE(store.Incr("t", 1));
}

TEST(CacheStore, FlushDropsEverything) {
  CacheStore store;
  for (int i = 0; i < 100; ++i) store.Set("k" + std::to_string(i), "v");
  store.Flush();
  EXPECT_EQ(store.Stats().item_count, 0u);
  EXPECT_FALSE(store.Get("k0"));
}

TEST(CacheStore, TtlExpiresWithManualClock) {
  ManualClock clock;
  CacheStore store({.shard_count = 4, .memory_budget_bytes = 0, .clock = &clock});
  store.Set("k", "v", 0, 100);
  EXPECT_TRUE(store.Get("k"));
  clock.Advance(99);
  EXPECT_TRUE(store.Get("k"));
  clock.Advance(1);
  EXPECT_FALSE(store.Get("k"));
  EXPECT_EQ(store.Stats().expirations, 1u);
}

TEST(CacheStore, ZeroTtlNeverExpires) {
  ManualClock clock;
  CacheStore store({.shard_count = 1, .memory_budget_bytes = 0, .clock = &clock});
  store.Set("k", "v");
  clock.Advance(1'000'000'000'000);
  EXPECT_TRUE(store.Get("k"));
}

TEST(CacheStore, LruEvictionUnderBudget) {
  // Budget for roughly 10 items in one shard; insert 50.
  CacheStore store({.shard_count = 1, .memory_budget_bytes = 800});
  for (int i = 0; i < 50; ++i) {
    store.Set("key" + std::to_string(i), "0123456789");
  }
  auto stats = store.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_used, 800u);
  // Most-recent key survives.
  EXPECT_TRUE(store.Get("key49"));
}

TEST(CacheStore, LruKeepsRecentlyReadItems) {
  CacheStore store({.shard_count = 1, .memory_budget_bytes = 1200});
  for (int i = 0; i < 10; ++i) store.Set("key" + std::to_string(i), "0123456789");
  // Touch key0 repeatedly so key1 becomes the LRU victim.
  for (int i = 0; i < 5; ++i) store.Get("key0");
  for (int i = 10; i < 18; ++i) store.Set("key" + std::to_string(i), "0123456789");
  if (store.Stats().evictions > 0) {
    EXPECT_TRUE(store.Get("key0"));
  }
}

TEST(CacheStore, StatsCountHitsAndMisses) {
  CacheStore store;
  store.Set("k", "v");
  store.Get("k");
  store.Get("absent");
  auto stats = store.Stats();
  EXPECT_EQ(stats.get_hits, 1u);
  EXPECT_EQ(stats.get_misses, 1u);
  EXPECT_EQ(stats.sets, 1u);
}

TEST(CacheStore, StatsTrackCasMismatches) {
  CacheStore store;
  store.Set("k", "v");
  store.Cas("k", "x", 999999);
  EXPECT_EQ(store.Stats().cas_mismatches, 1u);
}

TEST(CacheStore, LockedApiMatchesPublicApi) {
  CacheStore store;
  {
    auto g = store.LockKey("k");
    EXPECT_FALSE(store.ContainsLocked(g, "k"));
    store.SetLocked(g, "k", "v");
    EXPECT_TRUE(store.ContainsLocked(g, "k"));
    auto item = store.GetLocked(g, "k");
    ASSERT_TRUE(item);
    EXPECT_EQ(item->value, "v");
    EXPECT_TRUE(store.DeleteLocked(g, "k"));
    EXPECT_FALSE(store.DeleteLocked(g, "k"));
  }
  EXPECT_FALSE(store.Get("k"));
}

TEST(CacheStore, ShardIndexIsStable) {
  CacheStore store({.shard_count = 8, .memory_budget_bytes = 0});
  EXPECT_EQ(store.ShardIndexFor("abc"), store.ShardIndexFor("abc"));
  EXPECT_LT(store.ShardIndexFor("abc"), store.shard_count());
}

TEST(CacheStore, ConcurrentMixedOpsKeepCountsSane) {
  CacheStore store({.shard_count = 16, .memory_budget_bytes = 0});
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kOps; ++i) {
        std::string key = "k" + std::to_string(i % 64);
        switch ((t + i) % 4) {
          case 0: store.Set(key, "v"); break;
          case 1: store.Get(key); break;
          case 2: store.Delete(key); break;
          case 3: store.Append(key, "x"); break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  auto stats = store.Stats();
  EXPECT_EQ(stats.gets, static_cast<std::uint64_t>(kThreads) * kOps / 4);
  EXPECT_EQ(stats.deletes, static_cast<std::uint64_t>(kThreads) * kOps / 4);
}

TEST(CacheStore, ConcurrentIncrementsAreAtomic) {
  CacheStore store;
  store.Set("n", "0");
  constexpr int kThreads = 8;
  constexpr int kIncrs = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kIncrs; ++i) store.Incr("n", 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.Get("n")->value, std::to_string(kThreads * kIncrs));
}

// Parameterized sweep: every mutating command behaves identically across
// shard counts (the sharding must be an invisible implementation detail).
class ShardCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardCountTest, BasicProtocolHoldsForAllShardCounts) {
  CacheStore store({.shard_count = GetParam(), .memory_budget_bytes = 0});
  for (int i = 0; i < 100; ++i) {
    std::string k = "key" + std::to_string(i);
    EXPECT_EQ(store.Set(k, std::to_string(i)), StoreResult::kStored);
  }
  for (int i = 0; i < 100; ++i) {
    std::string k = "key" + std::to_string(i);
    auto item = store.Get(k);
    ASSERT_TRUE(item) << k;
    EXPECT_EQ(item->value, std::to_string(i));
    EXPECT_EQ(store.Incr(k, 10), static_cast<std::uint64_t>(i) + 10);
    EXPECT_TRUE(store.Delete(k));
  }
  EXPECT_EQ(store.Stats().item_count, 0u);
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardCountTest,
                         ::testing::Values(1, 2, 3, 8, 64));

}  // namespace
}  // namespace iq
