#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "kvs/kvs.h"
#include "util/clock.h"

namespace iq {
namespace {

TEST(CacheStore, GetMissesOnEmptyStore) {
  CacheStore store;
  EXPECT_FALSE(store.Get("absent"));
}

TEST(CacheStore, SetThenGetRoundTrips) {
  CacheStore store;
  EXPECT_EQ(store.Set("k", "v"), StoreResult::kStored);
  auto item = store.Get("k");
  ASSERT_TRUE(item);
  EXPECT_EQ(item->value, "v");
}

TEST(CacheStore, SetOverwrites) {
  CacheStore store;
  store.Set("k", "v1");
  store.Set("k", "v2");
  EXPECT_EQ(store.Get("k")->value, "v2");
}

TEST(CacheStore, SetStoresFlags) {
  CacheStore store;
  store.Set("k", "v", 0xBEEF);
  EXPECT_EQ(store.Get("k")->flags, 0xBEEFu);
}

TEST(CacheStore, AddOnlyWhenAbsent) {
  CacheStore store;
  EXPECT_EQ(store.Add("k", "v1"), StoreResult::kStored);
  EXPECT_EQ(store.Add("k", "v2"), StoreResult::kNotStored);
  EXPECT_EQ(store.Get("k")->value, "v1");
}

TEST(CacheStore, ReplaceOnlyWhenPresent) {
  CacheStore store;
  EXPECT_EQ(store.Replace("k", "v"), StoreResult::kNotStored);
  store.Set("k", "v1");
  EXPECT_EQ(store.Replace("k", "v2"), StoreResult::kStored);
  EXPECT_EQ(store.Get("k")->value, "v2");
}

TEST(CacheStore, DeleteReportsPresence) {
  CacheStore store;
  store.Set("k", "v");
  EXPECT_TRUE(store.Delete("k"));
  EXPECT_FALSE(store.Delete("k"));
  EXPECT_FALSE(store.Get("k"));
}

TEST(CacheStore, CasSucceedsWithMatchingVersion) {
  CacheStore store;
  store.Set("k", "v1");
  auto item = store.Get("k");
  EXPECT_EQ(store.Cas("k", "v2", item->cas), StoreResult::kStored);
  EXPECT_EQ(store.Get("k")->value, "v2");
}

TEST(CacheStore, CasFailsAfterInterveningWrite) {
  CacheStore store;
  store.Set("k", "v1");
  auto item = store.Get("k");
  store.Set("k", "other");
  EXPECT_EQ(store.Cas("k", "v2", item->cas), StoreResult::kExists);
  EXPECT_EQ(store.Get("k")->value, "other");
}

TEST(CacheStore, CasOnMissingKeyIsNotFound) {
  CacheStore store;
  EXPECT_EQ(store.Cas("k", "v", 1), StoreResult::kNotFound);
}

TEST(CacheStore, CasVersionChangesOnEveryWrite) {
  CacheStore store;
  store.Set("k", "a");
  auto v1 = store.Get("k")->cas;
  store.Set("k", "b");
  auto v2 = store.Get("k")->cas;
  EXPECT_NE(v1, v2);
}

TEST(CacheStore, AppendPrependExtendValue) {
  CacheStore store;
  store.Set("k", "mid");
  EXPECT_EQ(store.Append("k", ">"), StoreResult::kStored);
  EXPECT_EQ(store.Prepend("k", "<"), StoreResult::kStored);
  EXPECT_EQ(store.Get("k")->value, "<mid>");
}

TEST(CacheStore, AppendPrependMissIsNotStored) {
  CacheStore store;
  EXPECT_EQ(store.Append("k", "x"), StoreResult::kNotStored);
  EXPECT_EQ(store.Prepend("k", "x"), StoreResult::kNotStored);
  EXPECT_FALSE(store.Get("k"));
}

TEST(CacheStore, IncrDecrArithmetic) {
  CacheStore store;
  store.Set("n", "10");
  EXPECT_EQ(store.Incr("n", 5), 15u);
  EXPECT_EQ(store.Decr("n", 3), 12u);
  EXPECT_EQ(store.Get("n")->value, "12");
}

TEST(CacheStore, DecrSaturatesAtZero) {
  CacheStore store;
  store.Set("n", "3");
  EXPECT_EQ(store.Decr("n", 10), 0u);
}

TEST(CacheStore, IncrOnMissingOrNonNumericFails) {
  CacheStore store;
  EXPECT_FALSE(store.Incr("absent", 1));
  store.Set("s", "abc");
  EXPECT_FALSE(store.Incr("s", 1));
  store.Set("t", "12x");
  EXPECT_FALSE(store.Incr("t", 1));
}

TEST(CacheStore, FlushDropsEverything) {
  CacheStore store;
  for (int i = 0; i < 100; ++i) store.Set("k" + std::to_string(i), "v");
  store.Flush();
  EXPECT_EQ(store.Stats().item_count, 0u);
  EXPECT_FALSE(store.Get("k0"));
}

TEST(CacheStore, TtlExpiresWithManualClock) {
  ManualClock clock;
  CacheStore store({.shard_count = 4, .memory_budget_bytes = 0, .clock = &clock});
  store.Set("k", "v", 0, 100);
  EXPECT_TRUE(store.Get("k"));
  clock.Advance(99);
  EXPECT_TRUE(store.Get("k"));
  clock.Advance(1);
  EXPECT_FALSE(store.Get("k"));
  EXPECT_EQ(store.Stats().expirations, 1u);
}

TEST(CacheStore, ZeroTtlNeverExpires) {
  ManualClock clock;
  CacheStore store({.shard_count = 1, .memory_budget_bytes = 0, .clock = &clock});
  store.Set("k", "v");
  clock.Advance(1'000'000'000'000);
  EXPECT_TRUE(store.Get("k"));
}

TEST(CacheStore, LruEvictionUnderBudget) {
  // Budget for roughly 10 items in one shard; insert 50.
  CacheStore store({.shard_count = 1, .memory_budget_bytes = 800});
  for (int i = 0; i < 50; ++i) {
    store.Set("key" + std::to_string(i), "0123456789");
  }
  auto stats = store.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_used, 800u);
  // Most-recent key survives.
  EXPECT_TRUE(store.Get("key49"));
}

TEST(CacheStore, LruKeepsRecentlyReadItems) {
  CacheStore store({.shard_count = 1, .memory_budget_bytes = 1200});
  for (int i = 0; i < 10; ++i) store.Set("key" + std::to_string(i), "0123456789");
  // Touch key0 repeatedly so key1 becomes the LRU victim.
  for (int i = 0; i < 5; ++i) store.Get("key0");
  for (int i = 10; i < 18; ++i) store.Set("key" + std::to_string(i), "0123456789");
  if (store.Stats().evictions > 0) {
    EXPECT_TRUE(store.Get("key0"));
  }
}

TEST(CacheStore, StatsCountHitsAndMisses) {
  CacheStore store;
  store.Set("k", "v");
  store.Get("k");
  store.Get("absent");
  auto stats = store.Stats();
  EXPECT_EQ(stats.get_hits, 1u);
  EXPECT_EQ(stats.get_misses, 1u);
  EXPECT_EQ(stats.sets, 1u);
}

TEST(CacheStore, StatsTrackCasMismatches) {
  CacheStore store;
  store.Set("k", "v");
  store.Cas("k", "x", 999999);
  EXPECT_EQ(store.Stats().cas_mismatches, 1u);
}

TEST(CacheStore, LockedApiMatchesPublicApi) {
  CacheStore store;
  {
    auto g = store.LockKey("k");
    EXPECT_FALSE(store.ContainsLocked(g, "k"));
    store.SetLocked(g, "k", "v");
    EXPECT_TRUE(store.ContainsLocked(g, "k"));
    auto item = store.GetLocked(g, "k");
    ASSERT_TRUE(item);
    EXPECT_EQ(item->value, "v");
    EXPECT_TRUE(store.DeleteLocked(g, "k"));
    EXPECT_FALSE(store.DeleteLocked(g, "k"));
  }
  EXPECT_FALSE(store.Get("k"));
}

TEST(CacheStore, ShardIndexIsStable) {
  CacheStore store({.shard_count = 8, .memory_budget_bytes = 0});
  EXPECT_EQ(store.ShardIndexFor("abc"), store.ShardIndexFor("abc"));
  EXPECT_LT(store.ShardIndexFor("abc"), store.shard_count());
}

TEST(CacheStore, ConcurrentMixedOpsKeepCountsSane) {
  CacheStore store({.shard_count = 16, .memory_budget_bytes = 0});
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kOps; ++i) {
        std::string key = "k" + std::to_string(i % 64);
        switch ((t + i) % 4) {
          case 0: store.Set(key, "v"); break;
          case 1: store.Get(key); break;
          case 2: store.Delete(key); break;
          case 3: store.Append(key, "x"); break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  auto stats = store.Stats();
  EXPECT_EQ(stats.gets, static_cast<std::uint64_t>(kThreads) * kOps / 4);
  EXPECT_EQ(stats.deletes, static_cast<std::uint64_t>(kThreads) * kOps / 4);
}

TEST(CacheStore, ConcurrentIncrementsAreAtomic) {
  CacheStore store;
  store.Set("n", "0");
  constexpr int kThreads = 8;
  constexpr int kIncrs = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kIncrs; ++i) store.Incr("n", 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.Get("n")->value, std::to_string(kThreads * kIncrs));
}

// Parameterized sweep: every mutating command behaves identically across
// shard counts (the sharding must be an invisible implementation detail).
class ShardCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardCountTest, BasicProtocolHoldsForAllShardCounts) {
  CacheStore store({.shard_count = GetParam(), .memory_budget_bytes = 0});
  for (int i = 0; i < 100; ++i) {
    std::string k = "key" + std::to_string(i);
    EXPECT_EQ(store.Set(k, std::to_string(i)), StoreResult::kStored);
  }
  for (int i = 0; i < 100; ++i) {
    std::string k = "key" + std::to_string(i);
    auto item = store.Get(k);
    ASSERT_TRUE(item) << k;
    EXPECT_EQ(item->value, std::to_string(i));
    EXPECT_EQ(store.Incr(k, 10), static_cast<std::uint64_t>(i) + 10);
    EXPECT_TRUE(store.Delete(k));
  }
  EXPECT_EQ(store.Stats().item_count, 0u);
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardCountTest,
                         ::testing::Values(1, 2, 3, 8, 64));

// ---- accounting fixes -----------------------------------------------------

TEST(CacheStore, IncrCountsAsAccessForLru) {
  // ItemBytes = key + value + 64. Three 66-byte items, then a 215-byte one
  // pushes past 400 and forces one eviction.
  CacheStore store({.shard_count = 1, .memory_budget_bytes = 400});
  store.Set("a", "1");
  store.Set("b", "1");
  store.Set("c", "1");
  // Incr must count as an access: "a" becomes most-recent, "b" the victim.
  for (int i = 0; i < 3; ++i) store.Incr("a", 1);
  store.Set("d", std::string(150, 'x'));
  EXPECT_GT(store.Stats().evictions, 0u);
  EXPECT_TRUE(store.Get("a"));
  EXPECT_EQ(store.CheckInvariants(), "");
}

TEST(CacheStore, IncrGrowthReenforcesByteBudget) {
  CacheStore store({.shard_count = 1, .memory_budget_bytes = 340});
  for (int i = 0; i < 5; ++i) store.Set("n" + std::to_string(i), "9");
  // 5 * 67 = 335 <= 340. Grow n4 from "9" to a 20-digit number: the shard
  // crosses its budget and must evict, not silently blow past it.
  ASSERT_TRUE(store.Incr("n4", 18'446'744'073'709'551'000ULL));
  auto stats = store.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_used, 340u);
  EXPECT_EQ(store.CheckInvariants(), "");
}

TEST(CacheStore, CasKeepsCostForCampVictimChoice) {
  CacheStore store({.shard_count = 1,
                    .memory_budget_bytes = 400,
                    .eviction = EvictionPolicy::kCamp});
  store.Set("cheap", "1", 0, 0, /*cost=*/1);
  store.Set("dear", "1", 0, 0, /*cost=*/100000);
  // A cas swap must not clobber the cost recorded at Set...
  auto item = store.Get("dear");
  ASSERT_TRUE(item);
  ASSERT_EQ(store.Cas("dear", "2", item->cas), StoreResult::kStored);
  // ...so when the fill forces an eviction, CAMP still sees "dear" as
  // expensive and sacrifices "cheap".
  store.Get("cheap");
  store.Set("fill", std::string(200, 'x'), 0, 0, /*cost=*/1000000);
  EXPECT_GT(store.Stats().evictions, 0u);
  EXPECT_TRUE(store.Get("dear"));
  EXPECT_FALSE(store.Get("cheap"));
  EXPECT_EQ(store.CheckInvariants(), "");
}

TEST(CacheStore, AppendUpdatesCampRecordedSize) {
  CacheStore store({.shard_count = 1,
                    .memory_budget_bytes = 800,
                    .eviction = EvictionPolicy::kCamp});
  store.Set("small", "y", 0, 0, /*cost=*/1000);
  store.Set("grow", "x", 0, 0, /*cost=*/1000);
  // Equal cost and size so far. Growing "grow" by 400 bytes crushes its
  // cost/size ratio; CAMP must be told, or it keeps the stale high ratio
  // and evicts "small" instead.
  ASSERT_EQ(store.Append("grow", std::string(400, 'z')), StoreResult::kStored);
  store.Set("fill", std::string(300, 'f'), 0, 0, /*cost=*/1000000);
  EXPECT_GT(store.Stats().evictions, 0u);
  EXPECT_TRUE(store.Get("small"));
  EXPECT_FALSE(store.Get("grow"));
  EXPECT_EQ(store.CheckInvariants(), "");
}

TEST(CacheStore, FlushClearsCampGhosts) {
  CacheStore store({.shard_count = 2,
                    .memory_budget_bytes = 2000,
                    .eviction = EvictionPolicy::kCamp});
  for (int i = 0; i < 20; ++i) {
    store.Set("pre" + std::to_string(i), std::string(30, 'a'), 0, 0, 50);
  }
  store.Flush();
  EXPECT_EQ(store.CheckInvariants(), "");
  EXPECT_EQ(store.Stats().flushes, 1u);
  // Refill past the budget: victim selection must work against live keys
  // only (ghost CAMP entries would stall or misdirect the eviction loop).
  for (int i = 0; i < 40; ++i) {
    store.Set("post" + std::to_string(i), std::string(50, 'b'), 0, 0, 50);
  }
  auto stats = store.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_used, 2000u);
  EXPECT_EQ(store.CheckInvariants(), "");
}

TEST(CacheStore, InvariantsHoldAcrossMutationMix) {
  for (auto policy : {EvictionPolicy::kLru, EvictionPolicy::kCamp}) {
    CacheStore store({.shard_count = 4,
                      .memory_budget_bytes = 3000,
                      .eviction = policy});
    std::uint64_t rng = 0x9e3779b9;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (int i = 0; i < 2000; ++i) {
      std::string key = "k" + std::to_string(next() % 48);
      switch (next() % 8) {
        case 0:
        case 1:
          store.Set(key, std::string(next() % 60, 'v'), 0, 0, 1 + next() % 100);
          break;
        case 2:
          store.Incr(key, next() % 1000);
          break;
        case 3:
          store.Append(key, std::string(next() % 20, 'x'));
          break;
        case 4: {
          if (auto item = store.Get(key)) store.Cas(key, "swap", item->cas);
          break;
        }
        case 5:
          store.Delete(key);
          break;
        case 6:
          store.Get(key);
          break;
        case 7:
          if (next() % 97 == 0) store.Flush();
          break;
      }
      if (i % 50 == 0) {
        ASSERT_EQ(store.CheckInvariants(), "")
            << "policy=" << (policy == EvictionPolicy::kLru ? "lru" : "camp")
            << " op=" << i;
      }
    }
    EXPECT_EQ(store.CheckInvariants(), "");
  }
}

// ---- optimistic (mutex-free) reads ----------------------------------------

TEST(CacheStore, OptimisticGetServesHitWithoutLock) {
  CacheStore store;
  store.Set("k", "value", 0xBEEF);
  auto opt = store.OptimisticGet("k");
  ASSERT_TRUE(opt);
  EXPECT_EQ(opt->value, "value");
  EXPECT_EQ(opt->flags, 0xBEEFu);
  EXPECT_EQ(opt->cas, store.Get("k")->cas);
  EXPECT_GE(store.Stats().opt_hits, 1u);
}

TEST(CacheStore, OptimisticGetFallsBackWhereItMust) {
  CacheStore store;  // default optimistic_value_cap = 256
  EXPECT_FALSE(store.OptimisticGet("absent"));
  // Oversize value: mirror flags it, optimistic path refuses, Get serves it.
  std::string big(300, 'b');
  store.Set("big", big);
  EXPECT_FALSE(store.OptimisticGet("big"));
  EXPECT_EQ(store.Get("big")->value, big);
  // Long key: never mirrored.
  std::string long_key(CacheStore::kOptKeyCap + 1, 'k');
  store.Set(long_key, "v");
  EXPECT_FALSE(store.OptimisticGet(long_key));
  EXPECT_TRUE(store.Get(long_key));
  // Deleted key: mirror dies with the item.
  store.Set("gone", "v");
  ASSERT_TRUE(store.OptimisticGet("gone"));
  store.Delete("gone");
  EXPECT_FALSE(store.OptimisticGet("gone"));
  EXPECT_GE(store.Stats().opt_fallbacks, 1u);
  EXPECT_EQ(store.CheckInvariants(), "");
}

TEST(CacheStore, OptimisticGetDisabledByZeroCap) {
  CacheStore store({.shard_count = 4,
                    .memory_budget_bytes = 0,
                    .optimistic_value_cap = 0});
  store.Set("k", "v");
  EXPECT_FALSE(store.OptimisticGet("k"));
  EXPECT_EQ(store.Get("k")->value, "v");
  EXPECT_EQ(store.Stats().opt_hits, 0u);
  EXPECT_EQ(store.CheckInvariants(), "");
}

TEST(CacheStore, OptimisticGetTracksEveryMutation) {
  CacheStore store;
  store.Set("k", "a");
  std::uint64_t cas1 = store.OptimisticGet("k")->cas;
  store.Append("k", "b");
  auto after_append = store.OptimisticGet("k");
  ASSERT_TRUE(after_append);
  EXPECT_EQ(after_append->value, "ab");
  EXPECT_NE(after_append->cas, cas1);
  store.Set("n", "41");
  ASSERT_TRUE(store.Incr("n", 1));
  EXPECT_EQ(store.OptimisticGet("n")->value, "42");
  auto item = store.Get("k");
  ASSERT_EQ(store.Cas("k", "swapped", item->cas), StoreResult::kStored);
  EXPECT_EQ(store.OptimisticGet("k")->value, "swapped");
  store.Flush();
  EXPECT_FALSE(store.OptimisticGet("k"));
  EXPECT_EQ(store.CheckInvariants(), "");
}

TEST(CacheStore, OptimisticGetRespectsTtl) {
  ManualClock clock;
  CacheStore store(
      {.shard_count = 2, .memory_budget_bytes = 0, .clock = &clock});
  store.Set("k", "v", 0, 100);
  clock.Advance(99);
  EXPECT_TRUE(store.OptimisticGet("k"));
  clock.Advance(1);
  // Expired: the optimistic path must not serve it (and must not expire it
  // either — that is locked-path bookkeeping).
  EXPECT_FALSE(store.OptimisticGet("k"));
  EXPECT_FALSE(store.Get("k"));
  EXPECT_EQ(store.Stats().expirations, 1u);
}

TEST(CacheStore, OptimisticHitsFoldIntoGetCounters) {
  CacheStore store;
  store.Set("k", "v");
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(store.Get("k"));
  auto stats = store.Stats();
  EXPECT_EQ(stats.gets, 3u);
  EXPECT_EQ(stats.get_hits, 3u);
  EXPECT_EQ(stats.opt_hits, 3u);
}

TEST(CacheStore, OptimisticReadsUnderConcurrentWrites) {
  // Readers hammer Get while writers churn the same keys through set/
  // delete/append and evictions. Any value a reader observes must be one
  // the key legitimately held (prefix-tagged); TSan checks the seqlock.
  CacheStore store({.shard_count = 4, .memory_budget_bytes = 8000});
  constexpr int kKeys = 32;
  auto key_for = [](int k) { return "key" + std::to_string(k); };
  for (int k = 0; k < kKeys; ++k) {
    store.Set(key_for(k), "k" + std::to_string(k) + ":0");
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int k = 0; k < kKeys; ++k) {
          auto item = store.Get(key_for(k));
          if (!item) continue;
          std::string want = "k" + std::to_string(k) + ":";
          if (item->value.compare(0, want.size(), want) != 0) {
            bad_reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      for (int gen = 1; gen <= 1500; ++gen) {
        int k = (gen * 7 + t * 13) % kKeys;
        switch (gen % 4) {
          case 0:
            store.Delete(key_for(k));
            break;
          case 1:  // oversize values exercise the fallback path
            store.Set(key_for(k), "k" + std::to_string(k) + ":" +
                                      std::string(280, 'x'));
            break;
          default:
            store.Set(key_for(k),
                      "k" + std::to_string(k) + ":" + std::to_string(gen));
            break;
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(bad_reads.load(), 0u);
  EXPECT_EQ(store.CheckInvariants(), "");
}

}  // namespace
}  // namespace iq
