#include <gtest/gtest.h>

#include "leases/lease_table.h"

namespace iq {
namespace {

TEST(LeaseTable, FindOnEmptyIsNull) {
  LeaseTable table(4);
  EXPECT_EQ(table.Find(0, "k"), nullptr);
  EXPECT_EQ(table.Size(), 0u);
}

TEST(LeaseTable, PutThenFind) {
  LeaseTable table(4);
  LeaseEntry e;
  e.kind = LeaseKind::kInhibit;
  e.token = 42;
  table.Put(1, "k", e);
  LeaseEntry* found = table.Find(1, "k");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->token, 42u);
  EXPECT_EQ(table.Size(), 1u);
}

TEST(LeaseTable, PutOverwrites) {
  LeaseTable table(1);
  LeaseEntry a;
  a.kind = LeaseKind::kInhibit;
  a.token = 1;
  table.Put(0, "k", a);
  LeaseEntry b;
  b.kind = LeaseKind::kQRefresh;
  b.token = 2;
  table.Put(0, "k", b);
  EXPECT_EQ(table.Find(0, "k")->kind, LeaseKind::kQRefresh);
  EXPECT_EQ(table.Size(), 1u);
}

TEST(LeaseTable, EraseRemoves) {
  LeaseTable table(2);
  table.Put(0, "k", LeaseEntry{LeaseKind::kInhibit, 1, 0, {}, 0, {}});
  table.Erase(0, "k");
  EXPECT_EQ(table.Find(0, "k"), nullptr);
}

TEST(LeaseTable, ShardsAreIndependent) {
  LeaseTable table(2);
  table.Put(0, "k", LeaseEntry{LeaseKind::kInhibit, 1, 0, {}, 0, {}});
  EXPECT_EQ(table.Find(1, "k"), nullptr);
}

TEST(LeaseTable, ExpiryPredicate) {
  LeaseEntry e;
  e.expires_at = 100;
  EXPECT_FALSE(LeaseTable::Expired(e, 99));
  EXPECT_TRUE(LeaseTable::Expired(e, 100));
  e.expires_at = 0;  // never expires
  EXPECT_FALSE(LeaseTable::Expired(e, 1'000'000));
}

TEST(LeaseTable, ForEachVisitsShardEntries) {
  LeaseTable table(2);
  table.Put(0, "a", LeaseEntry{LeaseKind::kInhibit, 1, 0, {}, 0, {}});
  table.Put(0, "b", LeaseEntry{LeaseKind::kInhibit, 2, 0, {}, 0, {}});
  table.Put(1, "c", LeaseEntry{LeaseKind::kInhibit, 3, 0, {}, 0, {}});
  int visited = 0;
  table.ForEach(0, [&](const std::string&, LeaseEntry&) { ++visited; });
  EXPECT_EQ(visited, 2);
}

TEST(LeaseEntry, HeldByChecksKind) {
  LeaseEntry i_lease;
  i_lease.kind = LeaseKind::kInhibit;
  i_lease.holder = 7;
  EXPECT_TRUE(i_lease.HeldBy(7));
  EXPECT_FALSE(i_lease.HeldBy(8));

  LeaseEntry q_inv;
  q_inv.kind = LeaseKind::kQInvalidate;
  q_inv.inv_holders = {3, 5};
  EXPECT_TRUE(q_inv.HeldBy(3));
  EXPECT_TRUE(q_inv.HeldBy(5));
  EXPECT_FALSE(q_inv.HeldBy(7));
}

TEST(LeaseKindNames, AreDistinct) {
  EXPECT_STREQ(ToString(LeaseKind::kInhibit), "I");
  EXPECT_STREQ(ToString(LeaseKind::kQInvalidate), "Q-inv");
  EXPECT_STREQ(ToString(LeaseKind::kQRefresh), "Q-ref");
}

TEST(SessionRegistry, AddAndRetrieveKeys) {
  SessionRegistry reg;
  reg.AddKey(1, "a");
  reg.AddKey(1, "b");
  reg.AddKey(2, "c");
  EXPECT_EQ(reg.Keys(1), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(reg.Keys(2), (std::vector<std::string>{"c"}));
  EXPECT_EQ(reg.SessionCount(), 2u);
}

TEST(SessionRegistry, AddIsIdempotentPerKey) {
  SessionRegistry reg;
  reg.AddKey(1, "a");
  reg.AddKey(1, "a");
  EXPECT_EQ(reg.Keys(1).size(), 1u);
}

TEST(SessionRegistry, RemoveKeyDropsEmptySession) {
  SessionRegistry reg;
  reg.AddKey(1, "a");
  reg.RemoveKey(1, "a");
  EXPECT_TRUE(reg.Keys(1).empty());
  EXPECT_EQ(reg.SessionCount(), 0u);
}

TEST(SessionRegistry, RemoveUnknownIsNoop) {
  SessionRegistry reg;
  reg.RemoveKey(9, "nope");
  EXPECT_EQ(reg.SessionCount(), 0u);
}

TEST(SessionRegistry, DropClearsSession) {
  SessionRegistry reg;
  reg.AddKey(1, "a");
  reg.AddKey(1, "b");
  reg.Drop(1);
  EXPECT_TRUE(reg.Keys(1).empty());
}

TEST(SessionRegistry, KeysPreserveRegistrationOrder) {
  SessionRegistry reg;
  reg.AddKey(1, "z");
  reg.AddKey(1, "a");
  reg.AddKey(1, "m");
  EXPECT_EQ(reg.Keys(1), (std::vector<std::string>{"z", "a", "m"}));
}

}  // namespace
}  // namespace iq
