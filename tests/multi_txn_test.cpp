#include <gtest/gtest.h>

#include "core/iq_server.h"
#include "casql/multi_txn.h"
#include "util/worker_group.h"

namespace iq::casql {
namespace {

using sql::SchemaBuilder;
using sql::Transaction;
using sql::TxnResult;
using sql::V;

/// Two accounts with cached balances; a "transfer" session runs two
/// transactions: one debits, one credits (the paper's motivating shape for
/// multi-transaction sessions, e.g. feed-following streams).
class MultiTxnTest : public ::testing::Test {
 protected:
  MultiTxnTest() {
    db_.CreateTable(SchemaBuilder("Accounts")
                        .AddInt("id")
                        .AddInt("balance")
                        .PrimaryKey({"id"})
                        .Build());
    auto txn = db_.Begin();
    txn->Insert("Accounts", {V(1), V(1000)});
    txn->Insert("Accounts", {V(2), V(1000)});
    txn->Commit();
    CasqlConfig cfg;
    cfg.technique = Technique::kRefresh;
    cfg.consistency = Consistency::kIQ;
    cfg.client.backoff_base = 20 * kNanosPerMicro;
    cfg.client.backoff_cap = kNanosPerMilli;
    system_ = std::make_unique<CasqlSystem>(db_, server_, cfg);
  }

  static std::string Key(int id) { return "Balance:" + std::to_string(id); }

  std::int64_t DbBalance(int id) {
    auto txn = db_.Begin();
    auto row = txn->SelectByPk("Accounts", {V(id)});
    return row ? *sql::AsInt((*row)[1]) : -1;
  }

  void WarmKeys() {
    auto conn = system_->Connect();
    for (int id : {1, 2}) {
      conn->Read(Key(id), [id](Transaction& txn) -> std::optional<std::string> {
        auto row = txn.SelectByPk("Accounts", {V(id)});
        if (!row) return std::nullopt;
        return std::to_string(*sql::AsInt((*row)[1]));
      });
    }
  }

  static std::function<bool(Transaction&)> Adjust(int id, std::int64_t delta) {
    return [id, delta](Transaction& txn) {
      return txn.UpdateByPk("Accounts", {V(id)}, [delta](sql::Row& row) {
               row[1] = V(*sql::AsInt(row[1]) + delta);
             }) == TxnResult::kOk;
    };
  }

  static KeyUpdate Refresh(int id, std::int64_t delta) {
    KeyUpdate u;
    u.key = Key(id);
    u.refresh = [delta](const std::optional<std::string>& old)
        -> std::optional<std::string> {
      if (!old) return std::nullopt;
      return std::to_string(std::stoll(*old) + delta);
    };
    return u;
  }

  MultiWriteSpec TransferSpec(std::int64_t amount) {
    MultiWriteSpec spec;
    spec.bodies.push_back(Adjust(1, -amount));
    spec.bodies.push_back(Adjust(2, +amount));
    spec.updates.push_back(Refresh(1, -amount));
    spec.updates.push_back(Refresh(2, +amount));
    return spec;
  }

  sql::Database db_;
  IQServer server_;
  std::unique_ptr<CasqlSystem> system_;
};

TEST_F(MultiTxnTest, TwoTxnSessionCommitsBothAndRefreshesCache) {
  WarmKeys();
  auto out = ExecuteMultiTxn(*system_, TransferSpec(100));
  EXPECT_TRUE(out.committed);
  EXPECT_EQ(out.transactions_run, 2);
  EXPECT_EQ(DbBalance(1), 900);
  EXPECT_EQ(DbBalance(2), 1100);
  EXPECT_EQ(server_.store().Get(Key(1))->value, "900");
  EXPECT_EQ(server_.store().Get(Key(2))->value, "1100");
}

TEST_F(MultiTxnTest, LeasesSpanBothTransactions) {
  WarmKeys();
  MultiWriteSpec spec = TransferSpec(50);
  // Probe the lease state from inside the second transaction's body.
  bool lease_held_mid_sequence = false;
  spec.bodies[1] = [&, inner = spec.bodies[1]](Transaction& txn) {
    lease_held_mid_sequence =
        server_.LeaseOn(Key(1)) == LeaseKind::kQRefresh &&
        server_.LeaseOn(Key(2)) == LeaseKind::kQRefresh;
    return inner(txn);
  };
  ASSERT_TRUE(ExecuteMultiTxn(*system_, spec).committed);
  EXPECT_TRUE(lease_held_mid_sequence);
  EXPECT_FALSE(server_.LeaseOn(Key(1)));
  EXPECT_FALSE(server_.LeaseOn(Key(2)));
}

TEST_F(MultiTxnTest, FirstBodyFalseAbortsCleanly) {
  WarmKeys();
  MultiWriteSpec spec = TransferSpec(100);
  spec.bodies[0] = [](Transaction&) { return false; };
  auto out = ExecuteMultiTxn(*system_, spec);
  EXPECT_FALSE(out.committed);
  EXPECT_FALSE(out.degraded_to_invalidate);
  EXPECT_EQ(DbBalance(1), 1000);
  EXPECT_EQ(server_.store().Get(Key(1))->value, "1000");  // untouched
}

TEST_F(MultiTxnTest, MidSequenceFailureDegradesToInvalidation) {
  WarmKeys();
  MultiWriteSpec spec = TransferSpec(100);
  spec.bodies[1] = [](Transaction&) { return false; };  // credit fails
  auto out = ExecuteMultiTxn(*system_, spec);
  EXPECT_FALSE(out.committed);
  EXPECT_TRUE(out.degraded_to_invalidate);
  // The debit committed (no cross-txn rollback), but the cache holds no
  // stale balances: both keys were deleted and recompute from the database.
  EXPECT_EQ(DbBalance(1), 900);
  EXPECT_EQ(DbBalance(2), 1000);
  EXPECT_FALSE(server_.store().Get(Key(1)));
  EXPECT_FALSE(server_.store().Get(Key(2)));
  EXPECT_FALSE(server_.LeaseOn(Key(1)));
}

TEST_F(MultiTxnTest, ConflictingSessionRestartsAndSerializes) {
  WarmKeys();
  // A foreign session holds a Q lease on Balance:2; release it shortly.
  SessionId intruder = server_.GenID();
  server_.QaRead(Key(2), intruder);
  // Hold the lease until the transfer session has actually collided with it
  // at least once: a fixed sleep races with the scheduler on a loaded
  // machine and can release before the first QaRead even happens.
  std::uint64_t rejects_before = server_.Stats().q_rejected;
  std::thread releaser([&] {
    for (int i = 0; i < 4000 && server_.Stats().q_rejected == rejects_before;
         ++i) {
      SleepFor(server_.clock(), 50 * kNanosPerMicro);
    }
    server_.Abort(intruder);
  });
  auto out = ExecuteMultiTxn(*system_, TransferSpec(10));
  releaser.join();
  EXPECT_TRUE(out.committed);
  EXPECT_GE(out.q_restarts, 1);
  EXPECT_EQ(server_.store().Get(Key(2))->value, "1010");
}

TEST_F(MultiTxnTest, NonIQSystemRejected) {
  CasqlConfig cfg;
  cfg.consistency = Consistency::kCas;
  CasqlSystem baseline(db_, server_, cfg);
  auto out = ExecuteMultiTxn(baseline, TransferSpec(1));
  EXPECT_FALSE(out.committed);
  EXPECT_EQ(DbBalance(1), 1000);
}

TEST_F(MultiTxnTest, ConcurrentTransfersStayConsistent) {
  WarmKeys();
  WorkerGroup group;
  group.Start(4, [&](int, const std::atomic<bool>&) {
    for (int i = 0; i < 25; ++i) {
      ExecuteMultiTxn(*system_, TransferSpec(1));
    }
  });
  group.StopAndJoin();
  // Conservation in the database...
  EXPECT_EQ(DbBalance(1) + DbBalance(2), 2000);
  // ...and the cache matches it exactly.
  auto c1 = server_.store().Get(Key(1));
  auto c2 = server_.store().Get(Key(2));
  ASSERT_TRUE(c1 && c2);
  EXPECT_EQ(std::stoll(c1->value), DbBalance(1));
  EXPECT_EQ(std::stoll(c2->value), DbBalance(2));
}

}  // namespace
}  // namespace iq::casql
