// Near cache (DESIGN.md §4.10): the client-local LRU of validity-leased
// values, and its integration with IQSession/IQServer — grants on clean
// hits, self-invalidation at the granted interval, eager invalidation by
// the session's own write verbs, and the server holding an invalidating Q
// until every outstanding grant has lapsed.
#include <gtest/gtest.h>

#include "core/iq_client.h"
#include "core/iq_server.h"
#include "core/near_cache.h"
#include "util/clock.h"

namespace iq {
namespace {

constexpr Nanos kValidity = 100 * kNanosPerMilli;

// ---- NearCache unit tests (ManualClock) -------------------------------------

TEST(NearCacheTest, InsertThenGetReportsRemainingValidity) {
  ManualClock clock;
  NearCache cache(4, clock);
  cache.Insert("k", "v", kValidity);
  auto hit = cache.Get("k");
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->value, "v");
  EXPECT_EQ(hit->remaining, kValidity);
  clock.Advance(40 * kNanosPerMilli);
  hit = cache.Get("k");
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->remaining, 60 * kNanosPerMilli);
}

TEST(NearCacheTest, EntrySelfInvalidatesAtExpiry) {
  ManualClock clock;
  NearCache cache(4, clock);
  cache.Insert("k", "v", kValidity);
  clock.Advance(kValidity);  // now == expires_at: no longer servable
  EXPECT_FALSE(cache.Get("k"));
  EXPECT_EQ(cache.size(), 0u);
  NearCache::Stats s = cache.stats();
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);
}

TEST(NearCacheTest, ZeroValidityIsNotStored) {
  ManualClock clock;
  NearCache cache(4, clock);
  cache.Insert("k", "v", 0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("k"));
  EXPECT_EQ(cache.stats().inserts, 0u);
}

TEST(NearCacheTest, LruEvictsLeastRecentlyUsedAtCapacity) {
  ManualClock clock;
  NearCache cache(2, clock);
  cache.Insert("a", "1", kValidity);
  cache.Insert("b", "2", kValidity);
  ASSERT_TRUE(cache.Get("a"));  // touch: "b" is now the LRU tail
  cache.Insert("c", "3", kValidity);
  EXPECT_TRUE(cache.Get("a"));
  EXPECT_TRUE(cache.Get("c"));
  EXPECT_FALSE(cache.Get("b"));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(NearCacheTest, InsertReplacesLiveEntry) {
  ManualClock clock;
  NearCache cache(4, clock);
  cache.Insert("k", "old", kValidity);
  cache.Insert("k", "new", kValidity);
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Get("k");
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->value, "new");
  NearCache::Stats s = cache.stats();
  EXPECT_EQ(s.inserts, 2u);
  EXPECT_EQ(s.replaced, 1u);
}

TEST(NearCacheTest, InvalidateRemovesEntryOnce) {
  ManualClock clock;
  NearCache cache(4, clock);
  cache.Insert("k", "v", kValidity);
  EXPECT_TRUE(cache.Invalidate("k"));
  EXPECT_FALSE(cache.Invalidate("k"));
  EXPECT_FALSE(cache.Get("k"));
  EXPECT_EQ(cache.stats().invalidated, 1u);
}

TEST(NearCacheTest, CountersBalanceAfterMixedTraffic) {
  ManualClock clock;
  NearCache cache(3, clock);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 5; ++i) {
      cache.Insert("k" + std::to_string(i), "v", kValidity);
    }
    cache.Get("k0");
    cache.Invalidate("k1");
    clock.Advance(round % 3 == 0 ? kValidity : kNanosPerMilli);
    cache.Get("k2");
  }
  NearCache::Stats s = cache.stats();
  // Every stored entry leaves in exactly one way (near_cache.h).
  EXPECT_EQ(s.inserts,
            cache.size() + s.replaced + s.evictions + s.invalidated + s.expired);
}

// ---- IQSession integration (ManualClock-driven server) ----------------------

class NearSessionTest : public ::testing::Test {
 protected:
  NearSessionTest()
      : server_(CacheStore::Config{},
                [this] {
                  IQServer::Config cfg;
                  cfg.clock = &clock_;
                  cfg.near_validity = kValidity;
                  return cfg;
                }()),
        client_(server_, [] {
          IQClient::Config cfg;
          cfg.near_capacity = 8;
          return cfg;
        }()) {}

  ManualClock clock_;
  IQServer server_;
  IQClient client_;
};

TEST_F(NearSessionTest, SecondGetWithinValidityIsServedLocally) {
  server_.store().Set("k", "v0");
  auto s = client_.NewSession();
  auto first = s->Get("k");
  ASSERT_EQ(first.status, ClientGetResult::Status::kHit);
  EXPECT_FALSE(first.near_hit);  // came from the server, grant attached
  auto second = s->Get("k");
  ASSERT_EQ(second.status, ClientGetResult::Status::kHit);
  EXPECT_TRUE(second.near_hit);
  EXPECT_EQ(second.value, "v0");
  EXPECT_GT(second.near_remaining, 0);
  EXPECT_EQ(server_.Stats().near_grants, 1u);
  EXPECT_EQ(client_.near_cache()->stats().hits, 1u);
}

TEST_F(NearSessionTest, ExpiredEntryFallsBackToServer) {
  server_.store().Set("k", "v0");
  auto s = client_.NewSession();
  ASSERT_EQ(s->Get("k").status, ClientGetResult::Status::kHit);
  clock_.Advance(kValidity);
  auto r = s->Get("k");
  ASSERT_EQ(r.status, ClientGetResult::Status::kHit);
  EXPECT_FALSE(r.near_hit);  // local entry lapsed; refetched (and re-granted)
  EXPECT_EQ(client_.near_cache()->stats().expired, 1u);
  EXPECT_EQ(server_.Stats().near_grants, 2u);
}

TEST_F(NearSessionTest, OwnWriteVerbsInvalidateEagerly) {
  server_.store().Set("k", "v0");
  auto s = client_.NewSession();
  ASSERT_EQ(s->Get("k").status, ClientGetResult::Status::kHit);
  ASSERT_EQ(s->Quarantine("k"), ClientQResult::kGranted);
  EXPECT_GE(client_.near_cache()->stats().invalidated, 1u);
  // Within the validity interval, but the local entry is gone: the read
  // goes to the server, which reports our own quarantined key as a miss —
  // never the stale local value.
  auto r = s->Get("k");
  EXPECT_EQ(r.status, ClientGetResult::Status::kMissNoInstall);
  EXPECT_FALSE(r.near_hit);
  s->Commit();
  // Our own grant from the first Get is still outstanding, so the commit's
  // delete is held (silent holdover) until that horizon lapses.
  EXPECT_TRUE(server_.store().Get("k"));
  clock_.Advance(kValidity + 1);
  server_.SweepExpired();
  EXPECT_FALSE(server_.store().Get("k"));
}

TEST_F(NearSessionTest, CommitReinvalidatesRepopulatedEntry) {
  server_.store().Set("a", "v0");
  auto writer = client_.NewSession();
  ASSERT_EQ(writer->Quarantine("a"), ClientQResult::kGranted);
  // Another session of the same client re-populates the entry from a
  // different key's grant... simulate the repopulation race directly.
  client_.near_cache()->Insert("a", "racy", kValidity);
  writer->Commit();
  EXPECT_FALSE(client_.near_cache()->Get("a"));  // re-invalidated at commit
}

TEST_F(NearSessionTest, QaRegIsHeldUntilOutstandingGrantsLapse) {
  server_.store().Set("k", "v0");
  auto reader = client_.NewSession();
  ASSERT_EQ(reader->Get("k").status, ClientGetResult::Status::kHit);

  // A remote writer (raw backend; no near cache of its own) quarantines and
  // commits while the reader's grant is outstanding. The server must hold
  // the delete until the granted interval lapses: remote near caches may
  // legitimately serve the old value until then, and the server-side value
  // must not disappear out from under that bound.
  SessionId w = server_.GenID();
  ASSERT_EQ(server_.QaReg(w, "k"), QuarantineResult::kGranted);
  server_.Commit(w);
  ASSERT_TRUE(server_.store().Get("k"));  // still visible: grant outstanding
  EXPECT_EQ(server_.store().Get("k")->value, "v0");

  clock_.Advance(kValidity + 1);
  // First touch past the horizon reclaims the held entry silently.
  auto fresh = client_.NewSession();
  auto r = fresh->Get("k");
  EXPECT_EQ(r.status, ClientGetResult::Status::kMissRecompute);
  EXPECT_FALSE(server_.store().Get("k"));
  fresh->DropLease("k");
  IQServerStats stats = server_.Stats();
  // Silent holdover reclaim: not an expiry event (no crashed client here).
  EXPECT_EQ(stats.leases_expired, 0u);
  EXPECT_EQ(stats.expiry_deletes, 0u);
}

TEST_F(NearSessionTest, QaRegWithoutOutstandingGrantDeletesAtCommit) {
  server_.store().Set("k", "v0");
  auto reader = client_.NewSession();
  ASSERT_EQ(reader->Get("k").status, ClientGetResult::Status::kHit);
  clock_.Advance(kValidity + 1);  // grant horizon lapses untouched

  SessionId w = server_.GenID();
  ASSERT_EQ(server_.QaReg(w, "k"), QuarantineResult::kGranted);
  server_.Commit(w);
  EXPECT_FALSE(server_.store().Get("k"));  // no live grant: normal delete
}

TEST_F(NearSessionTest, SweepPrunesLapsedGrantHorizons) {
  server_.store().Set("k", "v0");
  auto s = client_.NewSession();
  ASSERT_EQ(s->Get("k").status, ClientGetResult::Status::kHit);
  clock_.Advance(kValidity + 1);
  server_.SweepExpired();
  // The horizon is gone: a quarantine now commits to an immediate delete.
  SessionId w = server_.GenID();
  ASSERT_EQ(server_.QaReg(w, "k"), QuarantineResult::kGranted);
  server_.Commit(w);
  EXPECT_FALSE(server_.store().Get("k"));
}

TEST_F(NearSessionTest, NoNearCacheWhenCapacityZero) {
  IQClient plain(server_);
  EXPECT_EQ(plain.near_cache(), nullptr);
  server_.store().Set("k", "v0");
  auto s = plain.NewSession();
  EXPECT_EQ(s->Get("k").status, ClientGetResult::Status::kHit);
  EXPECT_EQ(s->Get("k").status, ClientGetResult::Status::kHit);
}

}  // namespace
}  // namespace iq
