#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/channel.h"
#include "net/channel_pool.h"
#include "net/remote_backend.h"
#include "util/backoff.h"
#include "net/protocol.h"
#include "net/server.h"

namespace iq::net {
namespace {

// ---- request parser ---------------------------------------------------------

TEST(RequestParser, ParsesGet) {
  RequestParser p;
  p.Feed("get somekey\r\n");
  Request r;
  std::string err;
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.command, Command::kGet);
  EXPECT_EQ(r.key, "somekey");
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(RequestParser, ParsesSetWithPayload) {
  RequestParser p;
  p.Feed("set k 7 60 5\r\nhello\r\n");
  Request r;
  std::string err;
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.command, Command::kSet);
  EXPECT_EQ(r.key, "k");
  EXPECT_EQ(r.flags, 7u);
  EXPECT_EQ(r.exptime, 60);
  EXPECT_EQ(r.data, "hello");
}

TEST(RequestParser, PayloadMayContainNewlines) {
  RequestParser p;
  p.Feed("set k 0 0 5\r\na\r\nb!\r\n");
  Request r;
  std::string err;
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.data, "a\r\nb!");
}

TEST(RequestParser, HandlesSplitFeeds) {
  RequestParser p;
  Request r;
  std::string err;
  p.Feed("se");
  EXPECT_EQ(p.Next(&r, &err), RequestParser::Status::kNeedMore);
  p.Feed("t k 0 0 4\r\nda");
  EXPECT_EQ(p.Next(&r, &err), RequestParser::Status::kNeedMore);
  p.Feed("ta\r\n");
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.data, "data");
}

TEST(RequestParser, ParsesPipelinedRequests) {
  RequestParser p;
  p.Feed("get a\r\nget b\r\ndelete c\r\n");
  Request r;
  std::string err;
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.key, "a");
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.key, "b");
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.command, Command::kDelete);
  EXPECT_EQ(p.Next(&r, &err), RequestParser::Status::kNeedMore);
}

TEST(RequestParser, ParsesCas) {
  RequestParser p;
  p.Feed("cas k 1 0 3 999\r\nabc\r\n");
  Request r;
  std::string err;
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.command, Command::kCas);
  EXPECT_EQ(r.cas_unique, 999u);
}

TEST(RequestParser, ParsesIncrDecr) {
  RequestParser p;
  p.Feed("incr n 5\r\ndecr n 2\r\n");
  Request r;
  std::string err;
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.command, Command::kIncr);
  EXPECT_EQ(r.amount, 5u);
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.command, Command::kDecr);
}

TEST(RequestParser, ParsesIQCommands) {
  RequestParser p;
  p.Feed(
      "iqget profile 42\r\n"
      "iqset profile 7 3\r\nabc\r\n"
      "qaread friends 42\r\n"
      "sar friends 9 2\r\nxy\r\n"
      "sarnull friends 9\r\n"
      "genid\r\n"
      "qareg 11 pending\r\n"
      "dar 11\r\n"
      "iqappend 12 list 2\r\n,z\r\n"
      "iqincr 12 count 3\r\n"
      "commit 12\r\n"
      "abort 13\r\n"
      "release 13 friends\r\n");
  Request r;
  std::string err;
  Command expect[] = {Command::kIQGet,   Command::kIQSet,    Command::kQaRead,
                      Command::kSaR,     Command::kSaRNull,  Command::kGenId,
                      Command::kQaReg,   Command::kDaR,      Command::kIQAppend,
                      Command::kIQIncr,  Command::kCommit,   Command::kAbort,
                      Command::kRelease};
  for (Command c : expect) {
    ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk) << ToString(c);
    EXPECT_EQ(r.command, c);
  }
}

TEST(RequestParser, ReportsUnknownCommand) {
  RequestParser p;
  p.Feed("frobnicate k\r\nget ok\r\n");
  Request r;
  std::string err;
  EXPECT_EQ(p.Next(&r, &err), RequestParser::Status::kError);
  EXPECT_NE(err.find("frobnicate"), std::string::npos);
  // Recovers and parses the next request.
  EXPECT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.key, "ok");
}

TEST(RequestParser, ReportsBadArity) {
  RequestParser p;
  p.Feed("get\r\n");
  Request r;
  std::string err;
  EXPECT_EQ(p.Next(&r, &err), RequestParser::Status::kError);
}

TEST(RequestParser, ReportsBadChunkTerminator) {
  RequestParser p;
  p.Feed("set k 0 0 3\r\nabcXX");
  Request r;
  std::string err;
  EXPECT_EQ(p.Next(&r, &err), RequestParser::Status::kError);
}

// Round-trip property: Serialize(request) parses back to an identical
// request, for every command kind.
class RoundTripTest : public ::testing::TestWithParam<Command> {};

TEST_P(RoundTripTest, SerializeThenParseIsIdentity) {
  Request original;
  original.command = GetParam();
  original.key = "some_key";
  original.data = "payload bytes";
  original.flags = 3;
  original.exptime = 120;
  original.cas_unique = 77;
  original.amount = 5;
  original.token = 91;
  original.session = 1234;

  RequestParser p;
  p.Feed(Serialize(original));
  Request parsed;
  std::string err;
  ASSERT_EQ(p.Next(&parsed, &err), RequestParser::Status::kOk) << err;
  EXPECT_EQ(parsed.command, original.command);
  // Only compare the fields the command actually carries.
  switch (original.command) {
    case Command::kSet:
    case Command::kAdd:
    case Command::kReplace:
    case Command::kAppend:
    case Command::kPrepend:
      EXPECT_EQ(parsed.data, original.data);
      EXPECT_EQ(parsed.flags, original.flags);
      EXPECT_EQ(parsed.exptime, original.exptime);
      break;
    case Command::kCas:
      EXPECT_EQ(parsed.cas_unique, original.cas_unique);
      EXPECT_EQ(parsed.data, original.data);
      break;
    case Command::kIncr:
    case Command::kDecr:
    case Command::kIQIncr:
    case Command::kIQDecr:
    case Command::kTrace:
      EXPECT_EQ(parsed.amount, original.amount);
      break;
    case Command::kIQSet:
    case Command::kSaR:
      EXPECT_EQ(parsed.token, original.token);
      EXPECT_EQ(parsed.data, original.data);
      break;
    default:
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCommands, RoundTripTest,
    ::testing::Values(Command::kGet, Command::kGets, Command::kSet,
                      Command::kAdd, Command::kReplace, Command::kCas,
                      Command::kAppend, Command::kPrepend, Command::kDelete,
                      Command::kIncr, Command::kDecr, Command::kFlushAll,
                      Command::kStats, Command::kQuit, Command::kIQGet,
                      Command::kIQSet, Command::kQaRead, Command::kSaR,
                      Command::kSaRNull, Command::kGenId, Command::kQaReg,
                      Command::kDaR, Command::kIQAppend, Command::kIQPrepend,
                      Command::kIQIncr, Command::kIQDecr, Command::kCommit,
                      Command::kAbort, Command::kRelease, Command::kSweep,
                      Command::kMetrics, Command::kTrace),
    [](const ::testing::TestParamInfo<Command>& info) {
      std::string name = ToString(info.param);
      for (char& c : name) {
        if (c == '_') c = 'X';
      }
      return name;
    });

// ---- response serialization --------------------------------------------------

TEST(ResponseCodec, ValueRoundTrip) {
  Response r;
  r.type = ResponseType::kValue;
  r.key = "k";
  r.data = "some data";
  r.flags = 5;
  r.with_cas = true;
  r.cas_unique = 42;
  std::size_t consumed = 0;
  auto parsed = ParseResponse(Serialize(r), &consumed);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, ResponseType::kValue);
  EXPECT_EQ(parsed->data, "some data");
  EXPECT_EQ(parsed->cas_unique, 42u);
}

TEST(ResponseCodec, SimpleResponsesRoundTrip) {
  for (ResponseType t :
       {ResponseType::kEnd, ResponseType::kStored, ResponseType::kNotStored,
        ResponseType::kExists, ResponseType::kNotFound, ResponseType::kDeleted,
        ResponseType::kOk, ResponseType::kMissBackoff,
        ResponseType::kMissNoLease, ResponseType::kReject,
        ResponseType::kGranted}) {
    Response r;
    r.type = t;
    std::size_t consumed = 0;
    auto parsed = ParseResponse(Serialize(r), &consumed);
    ASSERT_TRUE(parsed) << static_cast<int>(t);
    EXPECT_EQ(parsed->type, t);
  }
}

TEST(ResponseCodec, NumberedResponsesCarryPayload) {
  for (ResponseType t : {ResponseType::kMissToken, ResponseType::kQMiss,
                         ResponseType::kId, ResponseType::kNumber}) {
    Response r;
    r.type = t;
    r.number = 987654;
    std::size_t consumed = 0;
    auto parsed = ParseResponse(Serialize(r), &consumed);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->type, t);
    EXPECT_EQ(parsed->number, 987654u);
  }
}

TEST(ResponseCodec, QValueCarriesTokenAndData) {
  Response r;
  r.type = ResponseType::kQValue;
  r.number = 55;
  r.data = "old value";
  std::size_t consumed = 0;
  auto parsed = ParseResponse(Serialize(r), &consumed);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, ResponseType::kQValue);
  EXPECT_EQ(parsed->number, 55u);
  EXPECT_EQ(parsed->data, "old value");
}

TEST(ResponseCodec, ValueCarriesValidityTtl) {
  Response r;
  r.type = ResponseType::kValue;
  r.key = "k";
  r.data = "v";
  r.ttl_ns = 12345;
  std::size_t consumed = 0;
  std::string bytes = Serialize(r);
  // The duration rides as a trailing T-prefixed token: non-numeric, so a
  // parser unaware of validity grants skips it as it would any extension.
  EXPECT_NE(bytes.find(" T12345"), std::string::npos);
  auto parsed = ParseResponse(bytes, &consumed);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, ResponseType::kValue);
  EXPECT_EQ(parsed->ttl_ns, 12345u);
  EXPECT_FALSE(parsed->with_cas);
  EXPECT_EQ(consumed, bytes.size());
}

TEST(ResponseCodec, ValueCarriesCasAndTtlTogether) {
  Response r;
  r.type = ResponseType::kValue;
  r.key = "k";
  r.data = "v";
  r.with_cas = true;
  r.cas_unique = 42;
  r.ttl_ns = 77;
  std::size_t consumed = 0;
  auto parsed = ParseResponse(Serialize(r), &consumed);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->with_cas);
  EXPECT_EQ(parsed->cas_unique, 42u);
  EXPECT_EQ(parsed->ttl_ns, 77u);
}

TEST(ResponseCodec, ValueWithoutTtlParsesAsZero) {
  std::size_t consumed = 0;
  auto parsed = ParseResponse("VALUE k 0 1\r\nv\r\nEND\r\n", &consumed);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->ttl_ns, 0u);
}

TEST(RemoteValidity, IQgetHitCarriesGrantedIntervalAsDuration) {
  IQServer::Config cfg;
  cfg.near_validity = 5 * kNanosPerMilli;
  IQServer server(CacheStore::Config{}, cfg);
  LoopbackChannel channel(server);
  RemoteBackend backend(channel);
  server.store().Set("k", "v");
  SessionId sid = backend.GenID();
  GetReply hit = backend.IQget("k", sid);
  ASSERT_EQ(hit.status, GetReply::Status::kHit);
  EXPECT_EQ(hit.value, "v");
  // The interval crosses the wire as a duration, never a deadline — the
  // two hosts' clocks are not comparable (DESIGN.md §4.10).
  EXPECT_EQ(hit.validity, 5 * kNanosPerMilli);
}

TEST(RemoteValidity, NoGrantWhenServerValidityDisabled) {
  IQServer server;
  LoopbackChannel channel(server);
  RemoteBackend backend(channel);
  server.store().Set("k", "v");
  GetReply hit = backend.IQget("k", backend.GenID());
  ASSERT_EQ(hit.status, GetReply::Status::kHit);
  EXPECT_EQ(hit.validity, 0);
}

TEST(ResponseCodec, IncompleteBytesReturnNullopt) {
  std::size_t consumed = 0;
  EXPECT_FALSE(ParseResponse("VALUE k 0 100\r\nshort", &consumed));
  EXPECT_FALSE(ParseResponse("STO", &consumed));
}

TEST(ResponseCodec, MetricsIsASizedBlock) {
  Response r;
  r.type = ResponseType::kMetrics;
  // The payload contains '#' comment heads, bare newlines, and even a
  // protocol keyword — the sized framing must carry all of it opaquely.
  r.data = "# TYPE iq_commits_total counter\niq_commits_total 7\nEND\nSTORED\n";
  std::size_t consumed = 0;
  std::string bytes = Serialize(r);
  auto parsed = ParseResponse(bytes, &consumed);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, ResponseType::kMetrics);
  EXPECT_EQ(parsed->data, r.data);
  EXPECT_EQ(consumed, bytes.size());
  // Truncated payload: not yet a complete response.
  EXPECT_FALSE(ParseResponse(std::string_view(bytes).substr(0, bytes.size() - 5),
                             &consumed));
}

TEST(ResponseCodec, TraceLinesRoundTripLikeStats) {
  Response r;
  r.type = ResponseType::kTrace;
  r.message =
      "TRACE 1 100 0 q_ref_grant 42 7\r\n"
      "TRACE 2 200 0 release 42 7\r\n";
  std::size_t consumed = 0;
  std::string bytes = Serialize(r);
  auto parsed = ParseResponse(bytes, &consumed);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, ResponseType::kTrace);
  EXPECT_EQ(parsed->message, r.message);
  EXPECT_EQ(consumed, bytes.size());
}

TEST(ResponseCodec, EmptyTraceSerializesAsBareEnd) {
  Response r;
  r.type = ResponseType::kTrace;
  std::size_t consumed = 0;
  std::string bytes = Serialize(r);
  EXPECT_EQ(bytes, "END\r\n");
  // Indistinguishable from a get miss on the wire — clients treat kEnd as
  // "no trace events", which is exactly what it means.
  auto parsed = ParseResponse(bytes, &consumed);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, ResponseType::kEnd);
}

// ---- dispatcher over a loopback channel ----------------------------------------

class RemoteTest : public ::testing::Test {
 protected:
  RemoteTest() : channel_(server_), client_(channel_) {}
  IQServer server_;
  LoopbackChannel channel_;
  RemoteCacheClient client_;
};

TEST_F(RemoteTest, SetGetDeleteOverTheWire) {
  EXPECT_EQ(client_.Set("k", "v"), StoreResult::kStored);
  auto item = client_.Get("k");
  ASSERT_TRUE(item);
  EXPECT_EQ(item->value, "v");
  EXPECT_TRUE(client_.Delete("k"));
  EXPECT_FALSE(client_.Get("k"));
}

TEST_F(RemoteTest, GetsReturnsCasAndCasWorks) {
  client_.Set("k", "v1");
  auto item = client_.Gets("k");
  ASSERT_TRUE(item);
  EXPECT_EQ(client_.Cas("k", "v2", item->cas), StoreResult::kStored);
  EXPECT_EQ(client_.Cas("k", "v3", item->cas), StoreResult::kExists);
}

TEST_F(RemoteTest, IncrDecrOverTheWire) {
  client_.Set("n", "10");
  EXPECT_EQ(client_.Incr("n", 5), 15u);
  EXPECT_EQ(client_.Decr("n", 1), 14u);
  EXPECT_FALSE(client_.Incr("absent", 1));
}

TEST_F(RemoteTest, FullIQReadProtocol) {
  SessionId session = client_.GenID();
  EXPECT_NE(session, 0u);
  GetReply miss = client_.IQget("k", session);
  ASSERT_EQ(miss.status, GetReply::Status::kMissGrantedI);
  EXPECT_EQ(client_.IQset("k", "computed", miss.token), StoreResult::kStored);
  GetReply hit = client_.IQget("k", session);
  EXPECT_EQ(hit.status, GetReply::Status::kHit);
  EXPECT_EQ(hit.value, "computed");
}

TEST_F(RemoteTest, FullRefreshProtocol) {
  client_.Set("k", "old");
  SessionId session = client_.GenID();
  QaReadReply q = client_.QaRead("k", session);
  ASSERT_EQ(q.status, QaReadReply::Status::kGranted);
  EXPECT_EQ(q.value, "old");
  // Second writer rejected over the wire.
  SessionId other = client_.GenID();
  EXPECT_EQ(client_.QaRead("k", other).status, QaReadReply::Status::kReject);
  EXPECT_EQ(client_.SaR("k", std::optional<std::string>("new"), q.token),
            StoreResult::kStored);
  EXPECT_EQ(client_.Get("k")->value, "new");
}

TEST_F(RemoteTest, FullInvalidateProtocol) {
  client_.Set("k", "v");
  SessionId tid = client_.GenID();
  client_.QaReg(tid, "k");
  EXPECT_TRUE(client_.Get("k"));  // deferred delete
  client_.DaR(tid);
  EXPECT_FALSE(client_.Get("k"));
}

TEST_F(RemoteTest, FullDeltaProtocol) {
  client_.Set("list", "a");
  client_.Set("count", "10");
  SessionId tid = client_.GenID();
  EXPECT_EQ(client_.IQDelta(tid, "list", DeltaOp{DeltaOp::Kind::kAppend, ",b", 0}),
            QuarantineResult::kGranted);
  EXPECT_EQ(client_.IQDelta(tid, "count", DeltaOp{DeltaOp::Kind::kIncr, {}, 2}),
            QuarantineResult::kGranted);
  client_.Commit(tid);
  EXPECT_EQ(client_.Get("list")->value, "a,b");
  EXPECT_EQ(client_.Get("count")->value, "12");
}

TEST_F(RemoteTest, AbortOverTheWire) {
  client_.Set("k", "keep");
  SessionId tid = client_.GenID();
  client_.IQDelta(tid, "k", DeltaOp{DeltaOp::Kind::kAppend, "X", 0});
  client_.Abort(tid);
  EXPECT_EQ(client_.Get("k")->value, "keep");
}

TEST_F(RemoteTest, StatsExposeLeaseCounters) {
  SessionId session = client_.GenID();
  client_.IQget("missing", session);
  std::string stats = client_.Stats();
  EXPECT_NE(stats.find("STAT i_leases_granted 1"), std::string::npos);
  EXPECT_NE(stats.find("STAT get_misses"), std::string::npos);
}

TEST_F(RemoteTest, StatsExposeCommandLatencies) {
  SessionId session = client_.GenID();
  client_.IQget("missing", session);
  client_.Set("k", "v");
  std::string stats = client_.Stats();
  // The dispatcher records one observation per request, keyed by command
  // class, and FormatStats renders count/mean/p95/p99/max per class.
  EXPECT_NE(stats.find("STAT cmd_iqget_count 1"), std::string::npos);
  EXPECT_NE(stats.find("STAT cmd_store_count 1"), std::string::npos);
  EXPECT_NE(stats.find("STAT cmd_iqget_p95_us"), std::string::npos);
  EXPECT_NE(stats.find("STAT cmd_store_max_us"), std::string::npos);
  // No delete was issued, so its class is omitted entirely.
  EXPECT_EQ(stats.find("STAT cmd_delete_"), std::string::npos);
}

TEST_F(RemoteTest, MalformedRequestYieldsError) {
  std::string reply;
  ASSERT_TRUE(channel_.RoundTrip("bogus nonsense\r\n", &reply));
  EXPECT_NE(reply.find("CLIENT_ERROR"), std::string::npos);
}

TEST(LoopbackLatency, InjectedLatencySlowsRoundTrip) {
  IQServer server;
  LoopbackChannel channel(server, /*one_way_latency=*/kNanosPerMilli);
  RemoteCacheClient client(channel);
  Nanos t0 = SteadyClock::Instance().Now();
  client.Set("k", "v");
  EXPECT_GE(SteadyClock::Instance().Now() - t0, 2 * kNanosPerMilli);
}

TEST(RemoteConcurrency, RefreshProtocolSerializesOverTheWire) {
  // Several remote clients run the full QaRead/SaR protocol on one counter
  // concurrently; rejections force retries. The counter must equal the
  // number of successful sessions (no lost updates over the wire).
  IQServer server;
  LoopbackChannel channel(server);
  {
    RemoteCacheClient setup(channel);
    setup.Set("n", "0");
  }
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &channel, &committed] {
      RemoteCacheClient client(channel);
      for (int i = 0; i < kIncrements; ++i) {
        SessionId session = client.GenID();
        QaReadReply q = client.QaRead("n", session);
        if (q.status != QaReadReply::Status::kGranted) {
          client.Abort(session);
          --i;  // retry
          SleepFor(server.clock(), 20 * kNanosPerMicro);
          continue;
        }
        std::string next = std::to_string(std::stoll(*q.value) + 1);
        client.SaR("n", std::optional<std::string>(next), q.token);
        committed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  RemoteCacheClient check(channel);
  EXPECT_EQ(check.Get("n")->value, std::to_string(committed.load()));
  EXPECT_EQ(committed.load(), kThreads * kIncrements);
}

TEST(LoopbackPipelining, MultipleRequestsInOneRoundTrip) {
  IQServer server;
  LoopbackChannel channel(server);
  std::string reply;
  ASSERT_TRUE(channel.RoundTrip(
      "set a 0 0 1\r\nx\r\nset b 0 0 1\r\ny\r\nget a\r\n", &reply));
  EXPECT_NE(reply.find("STORED\r\nSTORED\r\nVALUE a"), std::string::npos);
  EXPECT_EQ(channel.requests(), 3u);
}

// ---- multi-key get ----------------------------------------------------------

TEST(RequestParser, ParsesMultiKeyGet) {
  RequestParser p;
  p.Feed("get a b c\r\ngets x y\r\n");
  Request r;
  std::string err;
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.command, Command::kGet);
  EXPECT_EQ(r.key, "a");
  ASSERT_EQ(r.keys.size(), 3u);
  EXPECT_EQ(r.keys[1], "b");
  EXPECT_EQ(r.keys[2], "c");
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.command, Command::kGets);
  ASSERT_EQ(r.keys.size(), 2u);
  EXPECT_EQ(r.keys[0], "x");
  EXPECT_EQ(r.keys[1], "y");
}

TEST(ResponseCodec, MultiValueRoundTrip) {
  Response r;
  r.type = ResponseType::kValue;
  r.values.push_back({"a", "one", 1, 0});
  r.values.push_back({"c", "three", 3, 0});
  std::string bytes = Serialize(r);
  std::size_t consumed = 0;
  auto parsed = ParseResponse(bytes, &consumed);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(consumed, bytes.size());
  ASSERT_EQ(parsed->values.size(), 2u);
  EXPECT_EQ(parsed->values[0].key, "a");
  EXPECT_EQ(parsed->values[0].data, "one");
  EXPECT_EQ(parsed->values[1].key, "c");
  EXPECT_EQ(parsed->values[1].data, "three");
  // The first entry mirrors into the legacy single-value fields.
  EXPECT_EQ(parsed->key, "a");
  EXPECT_EQ(parsed->data, "one");
}

TEST(LoopbackMultiGet, MissesAreOmittedAndOrderIsPreserved) {
  IQServer server;
  LoopbackChannel channel(server);
  RemoteCacheClient client(channel);
  client.Set("a", "one");
  client.Set("c", "three");
  auto hits = client.MultiGet({"a", "missing", "c"});
  ASSERT_EQ(hits.size(), 3u);
  ASSERT_TRUE(hits[0].has_value());
  EXPECT_EQ(hits[0]->value, "one");
  EXPECT_FALSE(hits[1].has_value());
  ASSERT_TRUE(hits[2].has_value());
  EXPECT_EQ(hits[2]->value, "three");
  EXPECT_EQ(channel.requests(), 3u);  // 2 sets + 1 multi-get round trip
}

TEST(LoopbackMultiGet, GetsCarriesCasPerValue) {
  IQServer server;
  LoopbackChannel channel(server);
  RemoteCacheClient client(channel);
  client.Set("a", "one");
  client.Set("b", "two");
  auto hits = client.MultiGet({"a", "b"}, /*with_cas=*/true);
  ASSERT_EQ(hits.size(), 2u);
  ASSERT_TRUE(hits[0].has_value());
  ASSERT_TRUE(hits[1].has_value());
  EXPECT_NE(hits[0]->cas, 0u);
  EXPECT_NE(hits[1]->cas, 0u);
  EXPECT_NE(hits[0]->cas, hits[1]->cas);
}

// ---- parser cursor & compaction ---------------------------------------------

TEST(RequestParser, BufferedTracksCursorAcrossSplitFeeds) {
  RequestParser p;
  Request r;
  std::string err;
  EXPECT_EQ(p.buffered(), 0u);
  p.Feed("get a\r\nget b");  // one complete request + a partial one
  EXPECT_EQ(p.buffered(), 12u);
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.key, "a");
  EXPECT_EQ(p.buffered(), 5u);  // "get b" survives the consumed prefix
  EXPECT_EQ(p.Next(&r, &err), RequestParser::Status::kNeedMore);
  p.Feed("\r\n");
  EXPECT_EQ(p.buffered(), 7u);
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.key, "b");
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(RequestParser, CompactionKeepsPipelinedTailIntact) {
  // A long run of pipelined requests consumed one at a time exercises both
  // compaction branches (consumed > half the buffer, and full clear) while
  // feeds keep splitting requests at awkward offsets.
  RequestParser p;
  std::string stream;
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i) {
    char payload[4] = {'v', static_cast<char>('0' + i % 10),
                       static_cast<char>('0' + (i / 10) % 10), '\0'};
    stream += "set key" + std::to_string(i) + " 0 0 3\r\n" + payload + "\r\n";
  }
  // Feed in 7-byte slivers, draining after each feed.
  Request r;
  std::string err;
  int seen = 0;
  for (std::size_t off = 0; off < stream.size(); off += 7) {
    p.Feed(stream.substr(off, 7));
    while (p.Next(&r, &err) == RequestParser::Status::kOk) {
      EXPECT_EQ(r.key, "key" + std::to_string(seen));
      ++seen;
    }
  }
  EXPECT_EQ(seen, kN);
  EXPECT_EQ(p.buffered(), 0u);
}

// ---- length-claim hardening -------------------------------------------------

TEST(RequestParser, RejectsPayloadLengthClaimAboveProtocolLimit) {
  // A <bytes> field near SIZE_MAX must not wrap the terminator arithmetic
  // back onto the command line (which would accept the request and leave the
  // following bytes to be re-executed as commands — request smuggling).
  RequestParser p;
  Request r;
  std::string err;
  p.Feed("set k 0 0 18446744073709551614\r\nget probe\r\n");
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kError);
  EXPECT_NE(err.find("payload exceeds"), std::string::npos) << err;
  // The parser resynced exactly past the bad line; the next request parses.
  ASSERT_EQ(p.Next(&r, &err), RequestParser::Status::kOk);
  EXPECT_EQ(r.command, Command::kGet);
  EXPECT_EQ(r.key, "probe");
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(RequestParser, RejectsPayloadJustAboveCapAndAcceptsAtCap) {
  RequestParser p;
  Request r;
  std::string err;
  p.Feed("sar k 1 " + std::to_string(kMaxPayloadBytes + 1) + "\r\n");
  EXPECT_EQ(p.Next(&r, &err), RequestParser::Status::kError);

  // At the cap the claim is legal and the parser simply waits for the data.
  RequestParser q;
  q.Feed("set k 0 0 " + std::to_string(kMaxPayloadBytes) + "\r\n");
  EXPECT_EQ(q.Next(&r, &err), RequestParser::Status::kNeedMore);
}

TEST(ResponseCodec, HugeLengthClaimsNeverCompleteNorWrap) {
  // Client side of the same hardening: VALUE/QVALUE sizes near SIZE_MAX must
  // not wrap `block_eol + 2 + size + 2` into an accepted parse.
  std::size_t consumed = 0;
  EXPECT_FALSE(ParseResponse("VALUE k 0 18446744073709551614\r\nEND\r\n",
                             &consumed)
                   .has_value());
  EXPECT_FALSE(
      ParseResponse("QVALUE 7 18446744073709551614\r\nx\r\n", &consumed)
          .has_value());
}

// ---- release command ----------------------------------------------------------

TEST_F(RemoteTest, ReleaseDropsOneLeaseAndKeepsBufferedWork) {
  // The whole point of `release` over `abort`: the session's buffered work
  // on other keys must survive (a plain abort would discard the delta).
  client_.Set("count", "10");
  client_.Set("held", "x");
  SessionId tid = client_.GenID();
  ASSERT_EQ(client_.IQDelta(tid, "count", DeltaOp{DeltaOp::Kind::kIncr, {}, 5}),
            QuarantineResult::kGranted);
  QaReadReply q = client_.QaRead("held", tid);
  ASSERT_EQ(q.status, QaReadReply::Status::kGranted);
  client_.Release(tid, "held");
  // The Q lease on "held" is gone: another session acquires it immediately.
  SessionId other = client_.GenID();
  EXPECT_EQ(client_.QaRead("held", other).status,
            QaReadReply::Status::kGranted);
  client_.Abort(other);
  client_.Commit(tid);
  EXPECT_EQ(client_.Get("count")->value, "15");  // delta survived the release
}

TEST_F(RemoteTest, RemoteBackendReleaseKeyMatchesInProcessSemantics) {
  RemoteBackend backend(channel_);
  backend.Set("count", "1");
  backend.Set("aux", "v");
  SessionId tid = backend.GenID();
  ASSERT_EQ(backend.IQDelta(tid, "count", DeltaOp{DeltaOp::Kind::kIncr, {}, 2}),
            QuarantineResult::kGranted);
  ASSERT_EQ(backend.QaRead("aux", tid).status, QaReadReply::Status::kGranted);
  // Before the `release` wire command this mapped to Abort(tid) and silently
  // discarded the buffered delta on "count".
  backend.ReleaseKey(tid, "aux");
  backend.Commit(tid);
  EXPECT_EQ(backend.Get("count")->value, "3");
  EXPECT_EQ(server_.LeaseCount(), 0u);
}

// ---- stats parsing ------------------------------------------------------------

TEST_F(RemoteTest, ParseIQStatsInvertsFormatStats) {
  SessionId session = client_.GenID();
  client_.IQget("missing", session);  // grants one I lease
  client_.Set("k", "v");
  SessionId tid = client_.GenID();
  ASSERT_EQ(client_.QaRead("k", tid).status, QaReadReply::Status::kGranted);
  client_.Commit(tid);
  client_.Abort(session);
  IQServerStats parsed = ParseIQStats(client_.Stats());
  IQServerStats direct = server_.Stats();
  EXPECT_EQ(parsed.i_granted, direct.i_granted);
  EXPECT_EQ(parsed.q_ref_granted, direct.q_ref_granted);
  EXPECT_EQ(parsed.commits, direct.commits);
  EXPECT_EQ(parsed.aborts, direct.aborts);
  EXPECT_EQ(parsed.q_rejected, direct.q_rejected);
}

TEST(ParseIQStats, IgnoresForeignLinesAndGarbage) {
  IQServerStats s = ParseIQStats(
      "STAT bytes_used 4096\r\n"
      "STAT commits 7\r\n"
      "STAT cmd_iqget_p95_us 12\r\n"
      "STAT aborts notanumber\r\n"
      "garbage line\r\n"
      "STAT q_rejected 3\r\n");
  EXPECT_EQ(s.commits, 7u);
  EXPECT_EQ(s.q_rejected, 3u);
  EXPECT_EQ(s.aborts, 0u);  // unparsable value left at zero
}

// ---- endpoint parsing ----------------------------------------------------------

TEST(ParseEndpoints, SingleAndMultiWithDefaults) {
  std::string error;
  auto one = ParseEndpoints("127.0.0.1:4242", &error);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].host, "127.0.0.1");
  EXPECT_EQ(one[0].port, 4242);

  auto defaulted = ParseEndpoints("cache-host", &error);
  ASSERT_EQ(defaulted.size(), 1u);
  EXPECT_EQ(defaulted[0].port, 11211);  // memcached default

  auto many = ParseEndpoints("a:1,b:2,c", &error);
  ASSERT_EQ(many.size(), 3u);
  EXPECT_EQ(many[0], (Endpoint{"a", 1}));
  EXPECT_EQ(many[1], (Endpoint{"b", 2}));
  EXPECT_EQ(many[2], (Endpoint{"c", 11211}));
  EXPECT_EQ(Name(many[1]), "b:2");
}

TEST(ParseEndpoints, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_TRUE(ParseEndpoints("", &error).empty());
  EXPECT_TRUE(ParseEndpoints("a:1,,b:2", &error).empty());
  EXPECT_NE(error.find("empty endpoint"), std::string::npos);
  EXPECT_TRUE(ParseEndpoints("host:notaport", &error).empty());
  EXPECT_TRUE(ParseEndpoints("host:0", &error).empty());
  EXPECT_TRUE(ParseEndpoints(":1234", &error).empty());
  EXPECT_TRUE(ParseEndpoints("host:99999", &error).empty());
}

}  // namespace
}  // namespace iq::net
