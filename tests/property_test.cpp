// Randomized property tests over the full stack, parameterized by seed.
//
// Property 1 (mixed techniques): the paper's implementation "enables an
// application to use invalidate, refresh, and incremental update
// simultaneously" (Sections 5, 7). Sessions of all three techniques mutate
// the same keys concurrently; afterwards no lease survives, the cache
// matches the database exactly, and every read observed en route was
// justified by some legal serialization (BG-style interval validation).
//
// Property 2 (lease hygiene): whatever mixture of session outcomes occurs
// (commit, abort, conflict-restart), the server ends with zero leases and
// zero pending deltas.
#include <gtest/gtest.h>

#include <atomic>

#include "core/iq_server.h"
#include "bg/validation.h"
#include "casql/casql.h"
#include "util/worker_group.h"

namespace iq {
namespace {

using casql::CasqlConfig;
using casql::CasqlSystem;
using casql::Consistency;
using casql::KeyUpdate;
using casql::Technique;
using casql::WriteSpec;
using sql::SchemaBuilder;
using sql::Transaction;
using sql::TxnResult;
using sql::V;

constexpr int kKeys = 4;

std::string Key(int k) { return "counter:" + std::to_string(k); }
bg::EntityId Entity(int k) { return "counter:" + std::to_string(k); }

casql::ComputeFn Compute(int k) {
  return [k](Transaction& txn) -> std::optional<std::string> {
    auto row = txn.SelectByPk("T", {V(k)});
    if (!row) return std::nullopt;
    return std::to_string(*sql::AsInt((*row)[1]));
  };
}

WriteSpec AddOne(int k, Technique technique) {
  WriteSpec spec;
  spec.body = [k](Transaction& txn) {
    return txn.UpdateByPk("T", {V(k)}, [](sql::Row& row) {
             row[1] = V(*sql::AsInt(row[1]) + 1);
           }) == TxnResult::kOk;
  };
  KeyUpdate u;
  u.key = Key(k);
  switch (technique) {
    case Technique::kInvalidate:
      u.invalidate = true;
      break;
    case Technique::kRefresh:
      u.refresh = [](const std::optional<std::string>& old)
          -> std::optional<std::string> {
        if (!old) return std::nullopt;
        return std::to_string(std::stoll(*old) + 1);
      };
      break;
    case Technique::kIncremental:
      u.delta = DeltaOp{DeltaOp::Kind::kIncr, {}, 1};
      break;
  }
  spec.updates.push_back(std::move(u));
  return spec;
}

class MixedTechniqueTortureTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MixedTechniqueTortureTest, CacheDbAndReadsAllConsistent) {
  const std::uint64_t seed = GetParam();
  sql::Database db;
  db.CreateTable(
      SchemaBuilder("T").AddInt("id").AddInt("n").PrimaryKey({"id"}).Build());
  {
    auto txn = db.Begin();
    for (int k = 0; k < kKeys; ++k) txn->Insert("T", {V(k), V(0)});
    txn->Commit();
  }
  IQServer server;

  // One system per technique, all sharing the database and the server.
  std::vector<std::unique_ptr<CasqlSystem>> systems;
  for (Technique t : {Technique::kInvalidate, Technique::kRefresh,
                      Technique::kIncremental}) {
    CasqlConfig cfg;
    cfg.technique = t;
    cfg.consistency = Consistency::kIQ;
    cfg.client.backoff_base = 20 * kNanosPerMicro;
    cfg.client.backoff_cap = kNanosPerMilli;
    cfg.client.seed = seed + static_cast<std::uint64_t>(t);
    systems.push_back(std::make_unique<CasqlSystem>(db, server, cfg));
  }

  constexpr int kWriters = 3;
  constexpr int kReaders = 3;
  constexpr int kOpsPerWriter = 40;
  const Clock& clock = server.clock();

  bg::Validator validator;
  for (int k = 0; k < kKeys; ++k) validator.SetInitialCounter(Entity(k), 0);
  std::vector<bg::ThreadLog> logs(kWriters + kReaders);
  std::atomic<int> committed{0};

  Rng seeder(seed);
  std::vector<Rng> rngs;
  for (int i = 0; i < kWriters + kReaders; ++i) rngs.push_back(seeder.Fork());

  WorkerGroup group;
  group.Start(kWriters + kReaders, [&](int id, const std::atomic<bool>&) {
    Rng rng = rngs[static_cast<std::size_t>(id)];
    bg::ThreadLog& log = logs[static_cast<std::size_t>(id)];
    if (id < kWriters) {
      // Writer: random key, random technique per session.
      std::vector<std::unique_ptr<casql::CasqlConnection>> conns;
      for (auto& s : systems) conns.push_back(s->Connect());
      for (int i = 0; i < kOpsPerWriter; ++i) {
        int k = static_cast<int>(rng.NextUint64(kKeys));
        std::size_t sys = rng.NextUint64(systems.size());
        Technique technique = systems[sys]->config().technique;
        Nanos start = clock.Now();
        auto out = conns[sys]->Write(AddOne(k, technique));
        Nanos end = clock.Now();
        if (out.committed) {
          committed.fetch_add(1);
          log.LogCounterWrite(Entity(k), start, end, +1);
        }
      }
    } else {
      // Reader: leased read-through with observation logging.
      auto conn = systems[static_cast<std::size_t>(id) % systems.size()]->Connect();
      for (int i = 0; i < kOpsPerWriter * 2; ++i) {
        int k = static_cast<int>(rng.NextUint64(kKeys));
        Nanos start = clock.Now();
        auto out = conn->Read(Key(k), Compute(k));
        Nanos end = clock.Now();
        if (out.value) {
          log.LogCounterRead(Entity(k), start, end, std::stoll(*out.value));
        }
      }
    }
  });
  group.StopAndJoin();

  // Property 2: no leases or sessions survive.
  EXPECT_EQ(server.LeaseCount(), 0u);

  // Every committed increment reached the database.
  std::int64_t db_total = 0;
  auto txn = db.Begin();
  for (int k = 0; k < kKeys; ++k) {
    db_total += *sql::AsInt((*txn->SelectByPk("T", {V(k)}))[1]);
  }
  EXPECT_EQ(db_total, committed.load());

  // The cache converges to the database for every key.
  auto conn = systems[0]->Connect();
  for (int k = 0; k < kKeys; ++k) {
    auto out = conn->Read(Key(k), Compute(k));
    ASSERT_TRUE(out.value);
    EXPECT_EQ(std::stoll(*out.value),
              *sql::AsInt((*txn->SelectByPk("T", {V(k)}))[1]))
        << "key " << k;
  }

  // Property 1: every observed read was legal.
  for (auto& log : logs) validator.Absorb(std::move(log));
  auto report = validator.Validate();
  EXPECT_GT(report.reads_checked, 0u);
  EXPECT_EQ(report.unpredictable, 0u)
      << report.StalePercent() << "% unpredictable reads at seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedTechniqueTortureTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace iq
